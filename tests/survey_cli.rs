//! Survey CLI edge cases: malformed invocations must fail fast, with a
//! clear message on stderr and a nonzero exit code — never run a partial
//! survey or fall back to a silent default.

use std::process::Command;

/// Run the `survey` binary and return (exit code, stderr).
fn survey(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_survey"))
        .args(args)
        .output()
        .expect("survey binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn jobs_zero_is_rejected() {
    let (code, err) = survey(&["--jobs", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--jobs must be at least 1"), "{err}");
}

#[test]
fn fleet_size_zero_is_rejected() {
    let (code, err) = survey(&["--fleet-size", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fleet-size must be at least 1"), "{err}");
}

#[test]
fn non_numeric_fleet_size_is_rejected() {
    let (code, err) = survey(&["--fleet-size", "many"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fleet-size"), "{err}");
    assert!(err.contains("many"), "{err}");
}

#[test]
fn unknown_only_id_is_rejected() {
    let (code, err) = survey(&["--only", "no_such_experiment"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown experiment id"), "{err}");
    assert!(err.contains("no_such_experiment"), "{err}");
    // The message lists the known ids so the typo is easy to fix.
    assert!(err.contains("fleet_cap_spread"), "{err}");
}

#[test]
fn unknown_argument_is_rejected() {
    let (code, err) = survey(&["--fleet", "8"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown argument"), "{err}");
}

#[test]
fn flag_missing_its_value_is_rejected() {
    let (code, err) = survey(&["--fleet-size"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("needs a value"), "{err}");
}

#[test]
fn unknown_platform_is_rejected() {
    let (code, err) = survey(&["--platform", "broadwell"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--platform"), "{err}");
    assert!(err.contains("broadwell"), "{err}");
    assert!(err.contains("haswell|skylake-sp"), "{err}");
}

#[test]
fn platform_missing_its_value_is_rejected() {
    let (code, err) = survey(&["--platform"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("needs a value"), "{err}");
}

#[test]
fn list_on_skylake_names_the_skx_experiments() {
    let out = Command::new(env!("CARGO_BIN_EXE_survey"))
        .args(["--list", "--platform", "skylake-sp"])
        .output()
        .expect("survey binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("skx_license_table"), "{stdout}");
    assert!(stdout.contains("skx_ufs_mesh"), "{stdout}");
    assert!(!stdout.contains("fleet_cap_spread"), "{stdout}");
}

#[test]
fn banner_names_the_platform() {
    // A real (tiny) run on each platform: the stderr banner states which
    // machine is modeled, and the run exits cleanly.
    let (code, err) = survey(&[
        "--platform",
        "skylake-sp",
        "--only",
        "skx_license_table",
        "--out",
        "-",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(err.contains("platform=skylake-sp"), "{err}");
}

#[test]
fn haswell_rejects_skx_only_ids() {
    // Registries are per platform: an SKX id is unknown on the default
    // Haswell platform and must fail fast like any other typo.
    let (code, err) = survey(&["--only", "skx_ufs_mesh"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown experiment id"), "{err}");
}

#[test]
fn analytic_fidelity_rejects_experiments_without_surrogate_support() {
    // `--fidelity analytic` only answers experiments that opted into the
    // surrogate tier; anything else must fail fast with the capable list.
    let (code, err) = survey(&["--fidelity", "analytic", "--only", "table3,table4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("no surrogate support"), "{err}");
    assert!(err.contains("table3"), "{err}");
    assert!(err.contains("analytic_accuracy"), "{err}");
}

#[test]
fn unknown_fidelity_names_the_analytic_tier() {
    let (code, err) = survey(&["--fidelity", "exact"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("quick|paper|analytic"), "{err}");
}

#[test]
fn list_exits_zero_and_names_the_fleet_experiments() {
    let out = Command::new(env!("CARGO_BIN_EXE_survey"))
        .arg("--list")
        .output()
        .expect("survey binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fleet_cap_spread"), "{stdout}");
    assert!(stdout.contains("fleet_straggler"), "{stdout}");
}
