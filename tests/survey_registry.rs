//! The survey runner's contract: a complete registry, scheduling-free
//! determinism, and strict id validation.

use haswell_survey_repro::survey::survey::{experiment_seed, registry, run_survey, SurveyConfig};
use haswell_survey_repro::survey::Fidelity;
use hsw_node::EngineMode;

#[test]
fn registry_covers_all_20_experiments_with_unique_ids() {
    let reg = registry();
    assert_eq!(reg.len(), 20);
    let mut ids: Vec<&str> = reg.iter().map(|e| e.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 20);
    for required in [
        "fig1",
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "fig2",
        "fig3",
        "fig4",
        "fig56",
        "fig7",
        "fig8",
        "section2c_epb",
        "section6b_governor",
        "section8",
        "sku_extrapolation",
        "fleet_cap_spread",
        "fleet_straggler",
        "analytic_accuracy",
        "fleet_analytic_scale",
    ] {
        assert!(ids.contains(&required), "missing {required}");
    }
}

#[test]
fn json_is_identical_across_job_counts() {
    // A subset that includes a seeded experiment (the governor draws its
    // idle-interval distribution from the survey seed) and deterministic
    // ones, so the check exercises the seed-derivation path.
    let only = Some(vec![
        "section6b_governor".to_string(),
        "fig4".to_string(),
        "fig7".to_string(),
        "section8".to_string(),
    ]);
    let serial = run_survey(&SurveyConfig {
        fidelity: Fidelity::Quick,
        seed: 1234,
        jobs: 1,
        only: only.clone(),
        engine: EngineMode::default(),
        warm_start: true,
        fleet_size: None,
        platform: Default::default(),
    })
    .unwrap();
    let parallel = run_survey(&SurveyConfig {
        fidelity: Fidelity::Quick,
        seed: 1234,
        jobs: 4,
        only,
        engine: EngineMode::default(),
        warm_start: true,
        fleet_size: None,
        platform: Default::default(),
    })
    .unwrap();
    assert_eq!(serial.to_json(), parallel.to_json());
    // And a different root seed must actually reach the seeded experiment.
    assert_ne!(
        experiment_seed(1234, "section6b_governor"),
        experiment_seed(1235, "section6b_governor")
    );
}

#[test]
fn results_come_back_in_registry_order() {
    let run = run_survey(&SurveyConfig {
        only: Some(vec![
            // Deliberately not in registry order.
            "section8".to_string(),
            "fig4".to_string(),
            "fig7".to_string(),
        ]),
        ..SurveyConfig::default()
    })
    .unwrap();
    let ids: Vec<&str> = run.results.iter().map(|r| r.id).collect();
    assert_eq!(ids, ["fig4", "fig7", "section8"]);
    assert_eq!(run.timings_s.len(), run.results.len());
}

#[test]
fn unknown_only_ids_are_rejected_with_the_known_list() {
    let err = run_survey(&SurveyConfig {
        only: Some(vec!["fig9".to_string()]),
        ..SurveyConfig::default()
    })
    .unwrap_err();
    assert!(err.contains("fig9"), "{err}");
    assert!(err.contains("fig8"), "should list known ids: {err}");
}

#[test]
fn empty_selection_is_rejected() {
    let err = run_survey(&SurveyConfig {
        only: Some(vec![]),
        ..SurveyConfig::default()
    })
    .unwrap_err();
    assert!(err.contains("no experiments selected"), "{err}");
}

#[test]
fn deterministic_experiments_report_seed_zero() {
    let run = run_survey(&SurveyConfig {
        only: Some(vec!["fig7".to_string(), "section6b_governor".to_string()]),
        seed: 99,
        ..SurveyConfig::default()
    })
    .unwrap();
    let fig7 = run.results.iter().find(|r| r.id == "fig7").unwrap();
    let gov = run
        .results
        .iter()
        .find(|r| r.id == "section6b_governor")
        .unwrap();
    assert_eq!(fig7.seed, 0);
    assert_eq!(gov.seed, experiment_seed(99, "section6b_governor"));
}
