//! Heterogeneous per-core workloads: the PCPS scenario the paper motivates
//! (Section II-D — "energy-aware runtimes ... lower the power consumption
//! of single cores while keeping the performance of other cores at a high
//! level") with *different programs* on different cores.

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::node::{CpuId, Node, NodeConfig};
use haswell_survey_repro::tools::perfctr::PerfCtr;

/// dgemm on cores 0–3, a memory streamer on cores 4–7, the rest idle.
fn mixed_node() -> Node {
    let mut node = Node::new(NodeConfig::paper_default());
    node.idle_all();
    for c in 0..4 {
        node.assign(CpuId::new(0, c, 0), Some(WorkloadProfile::dgemm()));
    }
    for c in 4..8 {
        node.assign(CpuId::new(0, c, 0), Some(WorkloadProfile::memory_bound()));
    }
    node.set_setting_all(FreqSetting::from_mhz(2500));
    node.advance_s(0.5);
    node
}

#[test]
fn mixed_profiles_run_concurrently_with_distinct_ipc() {
    let mut node = mixed_node();
    let pc_gemm = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let pc_mem = PerfCtr::new(&node, CpuId::new(0, 5, 0));
    let (a, b) = (pc_gemm.sample(&node), pc_mem.sample(&node));
    node.advance_s(1.0);
    let (a2, b2) = (pc_gemm.sample(&node), pc_mem.sample(&node));
    let gemm = pc_gemm.derive(&a, &a2);
    let mem = pc_mem.derive(&b, &b2);
    // dgemm retires ~2 IPC; the streamer well below 1.
    assert!(gemm.gips > 2.0 * mem.gips, "{} vs {}", gemm.gips, mem.gips);
}

#[test]
fn memory_cores_drive_the_uncore_up_for_everyone() {
    // The hungriest core's stalls dominate the UFS decision: with the
    // streamer present the uncore rises toward 3.0 GHz although dgemm alone
    // would sit near the schedule value.
    let mut dgemm_only = Node::new(NodeConfig::paper_default());
    dgemm_only.idle_all();
    for c in 0..4 {
        dgemm_only.assign(CpuId::new(0, c, 0), Some(WorkloadProfile::dgemm()));
    }
    dgemm_only.set_setting_all(FreqSetting::from_mhz(2500));
    dgemm_only.advance_s(0.5);
    let unc_dgemm = dgemm_only.sockets()[0].true_uncore_mhz();

    let mixed = mixed_node();
    let unc_mixed = mixed.sockets()[0].true_uncore_mhz();
    assert!(
        unc_mixed > unc_dgemm + 300.0,
        "mixed {unc_mixed:.0} MHz vs dgemm-only {unc_dgemm:.0} MHz"
    );
}

#[test]
fn dram_demand_sums_across_profile_groups() {
    let node = mixed_node();
    let bw = node.dram_bandwidth_gbs(0);
    // 4 streamer cores ≈ 55·(4/8) = 27.5 GB/s plus dgemm's 8·(4/12) ≈ 2.7.
    assert!(
        (24.0..36.0).contains(&bw),
        "mixed DRAM bandwidth {bw:.1} GB/s"
    );
}

#[test]
fn avx_license_is_per_core() {
    // dgemm cores carry the AVX license; busy-wait cores do not. The AVX
    // frequency ceiling must still bind the socket (licenses are per core,
    // the clock domain fallout is shared via the PCU).
    let mut node = Node::new(NodeConfig::paper_default());
    node.idle_all();
    node.assign(CpuId::new(0, 0, 0), Some(WorkloadProfile::dgemm()));
    node.assign(CpuId::new(0, 1, 0), Some(WorkloadProfile::busy_wait()));
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.3);
    // With two active cores the non-AVX turbo bin is 3.3 GHz but the AVX
    // ceiling is 3.1 GHz — the dgemm license caps the grant.
    let f0 = node.sockets()[0].true_core_mhz(0);
    assert!(f0 <= 3100.0 + 1.0, "AVX ceiling must bind: {f0:.0} MHz");
}

#[test]
fn idle_cores_next_to_busy_ones_stay_gated() {
    let node = mixed_node();
    let s = &node.sockets()[0];
    for c in 8..12 {
        assert!(
            s.core_cstate(c).power_gated(),
            "core {c} should sit in C6 beside the busy cores"
        );
    }
    assert_eq!(s.package_cstate().name(), "PC0");
}
