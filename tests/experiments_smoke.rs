//! End-to-end smoke tests over the fast experiments, exercised through the
//! root facade exactly as the examples use it.

use haswell_survey_repro::survey::{experiments, Fidelity};

#[test]
fn table1_renders_and_validates() {
    let t1 = experiments::table1::run();
    assert!((t1.measured_flops_hsw - 16.0).abs() < 0.5);
    assert!(t1.to_string().contains("FLOPS/cycle"));
}

#[test]
fn table2_reports_the_test_system() {
    let t2 = experiments::table2::run(Fidelity::Quick);
    assert!((t2.idle_power_w - 261.5).abs() < 8.0);
}

#[test]
fn fig4_timeline_shows_the_500us_grid() {
    let f4 = experiments::fig4::run();
    assert!((f4.estimated_period_us - 500.0).abs() < 35.0);
    assert!(f4.entries.len() >= 12);
}

#[test]
fn fig7_and_fig8_have_paper_shapes() {
    let f7 = experiments::fig7::run();
    assert!(f7.low_end(false, "Haswell-EP") > 0.97);
    assert!(f7.low_end(false, "Sandy Bridge-EP") < 0.6);

    let f8 = experiments::fig8::run();
    let sat = f8.at(8, 2.5).unwrap().dram_gbs;
    let full = f8.at(12, 2.5).unwrap().dram_gbs;
    assert!((sat / full - 1.0).abs() < 0.03);
}

#[test]
fn section8_validates_firestarter() {
    let s8 = experiments::section8::run();
    assert!((s8.ipc_ht - 3.1).abs() < 0.15);
    assert!((s8.ipc_no_ht - 2.8).abs() < 0.15);
}

#[test]
fn experiment_results_serialize() {
    // The EXPERIMENTS.md generator relies on serde round-trips.
    let f7 = experiments::fig7::run();
    let json = serde_json::to_string(&f7).unwrap();
    let back: experiments::fig7::Fig7 = serde_json::from_str(&json).unwrap();
    assert_eq!(back.l3.len(), f7.l3.len());
}
