//! Cross-crate integration: the measurement tools driving the simulated
//! node through the MSR surface, and hardware semantics that only appear
//! when the full stack is assembled.

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::hwspec::{calib, EpbClass};
use haswell_survey_repro::msr::{addresses as msra, MsrError};
use haswell_survey_repro::node::{CpuId, Node, NodeConfig};
use haswell_survey_repro::power::DramRaplMode;
use haswell_survey_repro::tools::perfctr::{median_of, PerfCtr};

fn firestarter_node() -> Node {
    let mut node = Node::new(NodeConfig::paper_default());
    let fs = WorkloadProfile::firestarter();
    for s in 0..2 {
        node.run_on_socket(s, &fs, 12, 2);
    }
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.6);
    node
}

#[test]
fn pp0_domain_is_absent_via_the_full_stack() {
    // Paper Section IV: PP0 is not supported on Haswell-EP. A tool reading
    // it through the node must see the #GP, not zeros.
    let node = Node::new(NodeConfig::paper_default());
    assert_eq!(
        node.rdmsr(CpuId::new(0, 0, 0), msra::MSR_PP0_ENERGY_STATUS),
        Err(MsrError::Unsupported(msra::MSR_PP0_ENERGY_STATUS))
    );
}

#[test]
fn dram_mode0_reads_unreasonably_high_through_the_node() {
    // Paper Section IV: "Using DRAM mode 0 will result in unspecified
    // behavior" / "unreasonable high values for DRAM power consumption".
    let measure = |mode: DramRaplMode| {
        let mut node = Node::new(NodeConfig::paper_default().with_dram_mode(mode));
        node.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 1);
        node.advance_s(0.5);
        let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
        let a = pc.sample(&node);
        node.advance_s(1.0);
        let b = pc.sample(&node);
        pc.derive(&a, &b).dram_w
    };
    let mode1 = measure(DramRaplMode::Mode1);
    let mode0 = measure(DramRaplMode::Mode0);
    assert!(mode1 > 5.0 && mode1 < 60.0, "mode1 = {mode1:.1} W");
    assert!(
        mode0 > 3.0 * mode1,
        "mode0 {mode0:.1} W should be unreasonably high vs mode1 {mode1:.1} W"
    );
}

#[test]
fn both_sockets_hit_tdp_but_socket1_runs_faster() {
    let mut node = firestarter_node();
    let pc0 = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let pc1 = PerfCtr::new(&node, CpuId::new(1, 0, 0));
    let (a0, a1) = (pc0.sample(&node), pc1.sample(&node));
    node.advance_s(2.0);
    let (b0, b1) = (pc0.sample(&node), pc1.sample(&node));
    let d0 = pc0.derive(&a0, &b0);
    let d1 = pc1.derive(&a1, &b1);
    assert!((d0.pkg_w - 120.0).abs() < 4.0, "socket0 {:.1} W", d0.pkg_w);
    assert!((d1.pkg_w - 120.0).abs() < 4.0, "socket1 {:.1} W", d1.pkg_w);
    // Section III: socket 0 uses lower sustained turbo frequencies.
    assert!(d0.core_ghz <= d1.core_ghz + 0.005);
}

#[test]
fn effective_frequency_is_opportunistic_above_avx_base() {
    // Section II-F: every frequency above AVX base is opportunistic. Under
    // FIRESTARTER the nominal setting cannot be sustained …
    let mut node = firestarter_node();
    node.set_setting_all(FreqSetting::from_mhz(2500));
    node.advance_s(0.5);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let samples = pc.monitor(&mut node, 8, 0.25);
    let eff = median_of(&samples, |d| d.core_ghz);
    assert!(eff < 2.45, "2.5 GHz setting sustained {eff:.3} GHz");
    // … but the AVX base frequency itself is guaranteed.
    assert!(eff > 2.1, "must never drop below AVX base, got {eff:.3}");
}

#[test]
fn epb_programming_changes_uncore_behavior_end_to_end() {
    // Table III footnote: EPB=performance pins the uncore at 3.0 GHz.
    let mut node = Node::new(NodeConfig::paper_default());
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    node.set_setting_all(FreqSetting::from_mhz(1800));
    node.advance_s(0.3);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let s0 = pc.sample(&node);
    node.advance_s(0.5);
    let s1 = pc.sample(&node);
    let balanced_unc = pc.derive(&s0, &s1).uncore_ghz;
    assert!(
        (balanced_unc - 1.6).abs() < 0.1,
        "balanced: {balanced_unc:.2}"
    );

    node.set_epb_all(EpbClass::Performance);
    node.advance_s(0.3);
    let s2 = pc.sample(&node);
    node.advance_s(0.5);
    let s3 = pc.sample(&node);
    let perf_unc = pc.derive(&s2, &s3).uncore_ghz;
    assert!((perf_unc - 3.0).abs() < 0.1, "performance: {perf_unc:.2}");
}

#[test]
fn turbo_disable_caps_the_effective_frequency() {
    let mut node = Node::new(NodeConfig::paper_default());
    node.run_on_socket(0, &WorkloadProfile::compute(), 2, 1);
    node.set_setting_all(FreqSetting::Turbo);
    node.set_turbo(false);
    node.advance_s(0.5);
    let f = node.sockets()[0].true_core_mhz(0);
    assert!(
        f <= 2500.0 + 1.0,
        "turbo disabled must cap at nominal, got {f:.0} MHz"
    );
}

#[test]
fn rapl_energy_counters_wrap_correctly_in_long_runs() {
    // The 32-bit DRAM counter wraps every ~65 kJ; differencing through the
    // tool layer must survive a synthetic long accumulation.
    let mut node = Node::new(NodeConfig::paper_default());
    node.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 2);
    node.advance_s(0.5);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let mut prev = pc.sample(&node);
    for _ in 0..5 {
        node.advance_s(0.5);
        let cur = pc.sample(&node);
        let d = pc.derive(&prev, &cur);
        assert!(d.dram_w > 0.0 && d.dram_w < 80.0, "dram {:.1}", d.dram_w);
        assert!(d.pkg_w > 0.0 && d.pkg_w < 130.0, "pkg {:.1}", d.pkg_w);
        prev = cur;
    }
}

#[test]
fn idle_rapl_matches_fig2_intercept_through_msrs() {
    let mut node = Node::new(NodeConfig::paper_default());
    node.idle_all();
    node.advance_s(0.5);
    let read = |node: &Node, s: usize| {
        node.rdmsr(CpuId::new(s, 0, 0), msra::MSR_PKG_ENERGY_STATUS)
            .unwrap() as u32
    };
    let before = [read(&node, 0), read(&node, 1)];
    node.advance_s(2.0);
    let mut watts = 0.0;
    for (s, b) in before.iter().enumerate() {
        let d = read(&node, s).wrapping_sub(*b) as f64;
        watts += d * calib::PKG_ENERGY_UNIT_UJ * 1e-6 / 2.0;
    }
    assert!(
        (15.0..40.0).contains(&watts),
        "idle package power (both sockets) = {watts:.1} W"
    );
}
