//! The paper's energy-efficiency conclusions, verified end to end:
//!
//! * DVFS for memory-bound codes is viable again on Haswell-EP (DRAM
//!   bandwidth is core-frequency independent, so downclocking saves power
//!   at equal throughput) — Conclusions / Section VII.
//! * DCT (dynamic concurrency throttling) is viable: 8 cores saturate the
//!   memory bandwidth, so parking the rest saves power.
//! * Per-core p-states allow saving power on one core while another stays
//!   fast (Section II-D).

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::hwspec::PState;
use haswell_survey_repro::node::{Node, NodeConfig};

fn memory_node(cores: usize, setting: FreqSetting) -> (f64, f64) {
    let mut node = Node::new(NodeConfig::paper_default());
    node.run_on_socket(0, &WorkloadProfile::memory_bound(), cores, 1);
    node.set_setting_all(setting);
    node.advance_s(0.8);
    let mut bw = 0.0;
    let mut pw = 0.0;
    let n = 10;
    for _ in 0..n {
        node.advance_s(0.1);
        bw += node.dram_bandwidth_gbs(0);
        pw += node.true_pkg_power_w(0) + node.true_dram_power_w(0);
    }
    (bw / n as f64, pw / n as f64)
}

#[test]
fn dvfs_saves_power_at_equal_bandwidth_for_memory_bound_codes() {
    // "the core frequency can be reduced to save energy in memory-bound
    // applications" (Section VII).
    let (bw_fast, p_fast) = memory_node(12, FreqSetting::from_mhz(2500));
    let (bw_slow, p_slow) = memory_node(12, FreqSetting::from_mhz(1200));
    assert!(
        (bw_slow / bw_fast) > 0.97,
        "bandwidth must be frequency independent: {bw_slow:.1} vs {bw_fast:.1} GB/s"
    );
    assert!(
        p_slow < p_fast * 0.80,
        "downclocking must save power: {p_slow:.1} vs {p_fast:.1} W"
    );
}

#[test]
fn dct_saves_power_at_equal_bandwidth_beyond_saturation() {
    // Fig. 8: DRAM saturates at 8 cores → running 8 instead of 12 is free
    // in throughput and cheaper in power.
    let (bw_12, p_12) = memory_node(12, FreqSetting::from_mhz(2500));
    let (bw_8, p_8) = memory_node(8, FreqSetting::from_mhz(2500));
    assert!(
        bw_8 / bw_12 > 0.95,
        "8 cores must sustain the bandwidth: {bw_8:.1} vs {bw_12:.1} GB/s"
    );
    assert!(
        p_8 < p_12 - 3.0,
        "parking 4 cores must save power: {p_8:.1} vs {p_12:.1} W"
    );
}

#[test]
fn per_core_pstates_keep_one_core_fast_while_others_downclock() {
    // PCPS (Section II-D): an energy-aware runtime lowers some cores while
    // keeping the performance of others.
    let mut node = Node::new(NodeConfig::paper_default());
    node.run_on_socket(0, &WorkloadProfile::compute(), 4, 1);
    // Core 0 stays at nominal; cores 1–3 are downclocked individually.
    node.set_setting(0, 0, FreqSetting::from_mhz(2500));
    for c in 1..4 {
        node.set_setting(0, c, FreqSetting::from_mhz(1200));
    }
    node.advance_s(0.5);
    let s = &node.sockets()[0];
    assert!(
        (s.true_core_mhz(0) - 2500.0).abs() < 20.0,
        "fast core at {:.0} MHz",
        s.true_core_mhz(0)
    );
    for c in 1..4 {
        assert!(
            (s.true_core_mhz(c) - 1200.0).abs() < 20.0,
            "slow core {c} at {:.0} MHz",
            s.true_core_mhz(c)
        );
    }
}

#[test]
fn per_core_pstates_reduce_power_vs_chip_wide_fast() {
    let run = |slow_cores: bool| {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &WorkloadProfile::compute(), 4, 1);
        node.set_setting(0, 0, FreqSetting::from_mhz(2500));
        let others = if slow_cores { 1200 } else { 2500 };
        for c in 1..4 {
            node.set_setting(0, c, FreqSetting::from_mhz(others));
        }
        node.advance_s(0.6);
        node.true_pkg_power_w(0)
    };
    let mixed = run(true);
    let all_fast = run(false);
    assert!(
        mixed < all_fast - 5.0,
        "PCPS mixed {mixed:.1} W vs all-fast {all_fast:.1} W"
    );
}

#[test]
fn pstate_requests_on_one_core_do_not_move_siblings() {
    // The PCPS domain granularity, observable through ground truth.
    let mut node = Node::new(NodeConfig::paper_default().with_tick_us(10));
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 2, 1);
    node.set_setting(0, 0, FreqSetting::Fixed(PState::from_mhz(1400)));
    node.set_setting(0, 1, FreqSetting::Fixed(PState::from_mhz(2200)));
    node.advance_s(0.1);
    let s = &node.sockets()[0];
    assert!((s.true_core_mhz(0) - 1400.0).abs() < 10.0);
    assert!((s.true_core_mhz(1) - 2200.0).abs() < 10.0);
}
