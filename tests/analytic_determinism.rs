//! The analytic surrogate tier, end to end through the `survey` binary:
//! `--fidelity analytic` output must be byte-identical at any `--jobs`
//! value, any worker-pool width, and either `--warm-start` setting — on
//! both platforms — and the spot-check sample it embeds must match a
//! full-fidelity run of the same points exactly.

use std::process::Command;

use serde_json::Value;

/// Run the `survey` binary with `args` and return the JSON bytes it wrote.
fn survey_json(tag: &str, args: &[&str], pool: &str) -> Vec<u8> {
    let out = std::env::temp_dir().join(format!("analytic_determinism_{tag}.json"));
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_survey"))
        .args(args)
        .arg("--out")
        .arg(&out)
        .env("RAYON_NUM_THREADS", pool)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("survey binary runs");
    assert!(status.success(), "survey {args:?} pool {pool} failed");
    let bytes = std::fs::read(&out).expect("survey wrote its output file");
    let _ = std::fs::remove_file(&out);
    bytes
}

/// The Haswell surrogate subset: both converted experiments plus both new
/// registrations, at a small fleet size so the matrix stays fast.
const HSW: &[&str] = &[
    "--fidelity",
    "analytic",
    "--only",
    "table4,fleet_cap_spread,analytic_accuracy,fleet_analytic_scale",
    "--fleet-size",
    "48",
    "--seed",
    "7",
];

#[test]
fn analytic_survey_is_byte_identical_across_jobs_pool_and_warm_start() {
    let baseline = survey_json("j1p1", &[HSW, &["--jobs", "1"]].concat(), "1");
    assert!(!baseline.is_empty());
    for (tag, jobs, pool, warm) in [
        ("j4p1", "4", "1", "on"),
        ("j1p4", "1", "4", "on"),
        ("j4p4", "4", "4", "on"),
        ("j2p2cold", "2", "2", "off"),
    ] {
        let other = survey_json(
            tag,
            &[HSW, &["--jobs", jobs, "--warm-start", warm]].concat(),
            pool,
        );
        assert_eq!(
            baseline, other,
            "analytic survey.json differs at --jobs {jobs} / pool {pool} / warm-start {warm}"
        );
    }
}

#[test]
fn skylake_analytic_survey_is_byte_identical_across_the_same_matrix() {
    let skx: &[&str] = &[
        "--platform",
        "skylake-sp",
        "--fidelity",
        "analytic",
        "--only",
        "analytic_accuracy,fleet_analytic_scale",
        "--fleet-size",
        "48",
        "--seed",
        "7",
    ];
    let baseline = survey_json("skx_j1p1", &[skx, &["--jobs", "1"]].concat(), "1");
    assert!(!baseline.is_empty());
    for (tag, jobs, pool, warm) in [
        ("skx_j4p4", "4", "4", "on"),
        ("skx_j2p2cold", "2", "2", "off"),
    ] {
        let other = survey_json(
            tag,
            &[skx, &["--jobs", jobs, "--warm-start", warm]].concat(),
            pool,
        );
        assert_eq!(
            baseline, other,
            "skylake-sp analytic survey.json differs at --jobs {jobs} / pool {pool} / warm-start {warm}"
        );
    }
}

/// Navigate an object field.
fn field<'a>(v: &'a Value, name: &str) -> &'a Value {
    match v {
        Value::Object(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing field {name}")),
        other => panic!("expected object for {name}, got {other:?}"),
    }
}

fn array(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        other => panic!("expected array, got {other:?}"),
    }
}

/// The artifact of experiment `id` in a survey document.
fn artifact<'a>(doc: &'a Value, id: &str) -> &'a Value {
    let exp = array(field(doc, "experiments"))
        .iter()
        .find(|e| matches!(field(e, "id"), Value::Str(s) if s == id))
        .unwrap_or_else(|| panic!("no experiment {id}"));
    field(exp, "artifact")
}

#[test]
fn embedded_spot_checks_equal_a_full_fidelity_run_of_the_same_points() {
    // The surrogate contract at the JSON level: the `full` answer recorded
    // for each spot-checked Table IV column under `--fidelity analytic`
    // must serialize to the very same JSON as that column in a
    // `--fidelity quick` run at the same seed (same f64 bits → same
    // shortest-roundtrip rendering).
    let common: &[&str] = &["--only", "table4", "--seed", "11", "--jobs", "2"];
    let analytic = survey_json(
        "cross_a",
        &[&["--fidelity", "analytic"], common].concat(),
        "2",
    );
    let quick = survey_json("cross_q", &[&["--fidelity", "quick"], common].concat(), "2");
    let adoc: Value = serde_json::from_str(&String::from_utf8(analytic).unwrap()).unwrap();
    let qdoc: Value = serde_json::from_str(&String::from_utf8(quick).unwrap()).unwrap();
    let spot_checks = array(field(artifact(&adoc, "table4"), "spot_checks"));
    assert!(
        !spot_checks.is_empty(),
        "analytic run recorded no spot checks"
    );
    let quick_points = array(field(artifact(&qdoc, "table4"), "points"));
    for sc in spot_checks {
        let index = match field(sc, "index") {
            Value::UInt(n) => *n as usize,
            Value::Int(n) => *n as usize,
            other => panic!("bad index {other:?}"),
        };
        assert_eq!(
            serde_json::to_string(field(sc, "full")).unwrap(),
            serde_json::to_string(&quick_points[index]).unwrap(),
            "spot-checked column {index} diverges from the quick-fidelity run"
        );
    }
}
