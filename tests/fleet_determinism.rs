//! The fleet executor's determinism contract, end to end: `fleet.json`
//! (the survey output restricted to the fleet experiments) must be
//! byte-identical for any `--jobs` value, any worker-pool width
//! (`RAYON_NUM_THREADS`), and either `--warm-start` mode — a fleet member's
//! chip identity and measurement depend on its node id and the sweep base
//! only, never on scheduling. Plus the headline acceptance run: a 256-node
//! cap-and-measure fleet reproduces the Schuchart-style spread inversion.

use std::process::Command;

/// Run the `survey` binary on the fleet experiments and return the bytes of
/// the `fleet.json` it wrote plus its exit status.
fn fleet_json_with(
    tag: &str,
    only: &str,
    fleet_size: &str,
    jobs: &str,
    pool: &str,
    extra: &[&str],
) -> (Vec<u8>, std::process::ExitStatus) {
    let dir = std::env::temp_dir().join(format!("fleet_determinism_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = dir.join("fleet.json");
    let status = Command::new(env!("CARGO_BIN_EXE_survey"))
        .args(["--only", only, "--seed", "7", "--jobs", jobs])
        .args(["--fleet-size", fleet_size])
        .args(extra)
        .arg("--out")
        .arg(&out)
        .env("RAYON_NUM_THREADS", pool)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("survey binary runs");
    let bytes = std::fs::read(&out).expect("survey wrote fleet.json");
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, status)
}

fn fleet_json(tag: &str, only: &str, fleet_size: &str, jobs: &str, pool: &str) -> Vec<u8> {
    let (bytes, status) = fleet_json_with(tag, only, fleet_size, jobs, pool, &[]);
    assert!(status.success(), "survey failed for {tag}");
    bytes
}

#[test]
fn fleet_json_is_byte_identical_across_jobs_and_pool_sizes() {
    const ONLY: &str = "fleet_cap_spread,fleet_straggler";
    let baseline = fleet_json("j1p1", ONLY, "12", "1", "1");
    assert!(!baseline.is_empty());
    for (jobs, pool) in [("2", "1"), ("1", "4"), ("4", "4")] {
        let other = fleet_json(&format!("j{jobs}p{pool}"), ONLY, "12", jobs, pool);
        assert_eq!(
            baseline, other,
            "fleet.json differs at --jobs {jobs} / RAYON_NUM_THREADS={pool}"
        );
    }
}

#[test]
fn fleet_json_is_byte_identical_across_warm_start_modes() {
    // Cold mode re-runs the golden warmup per member; warm mode forks one
    // snapshot. Both feed the identical per-chip fork construction, so the
    // fleet bytes must agree.
    let (on, s_on) = fleet_json_with(
        "warm_on",
        "fleet_cap_spread",
        "8",
        "2",
        "2",
        &["--warm-start", "on"],
    );
    let (off, s_off) = fleet_json_with(
        "warm_off",
        "fleet_cap_spread",
        "8",
        "2",
        "2",
        &["--warm-start", "off"],
    );
    assert!(s_on.success() && s_off.success());
    assert_eq!(on, off, "warm-start fork leaked state into fleet.json");
}

#[test]
fn fleet_size_changes_the_document() {
    // --fleet-size is part of the determinism key: different sizes must
    // produce different (but individually stable) documents.
    let a = fleet_json("size8", "fleet_cap_spread", "8", "1", "2");
    let b = fleet_json("size9", "fleet_cap_spread", "9", "1", "2");
    assert_ne!(a, b);
}

/// The headline acceptance run: a 256-node cap-and-measure fleet is
/// byte-identical at pool width 1 vs 4, and the binary exits 0 — i.e. every
/// registered check passed, including "tight cap expands performance spread
/// beyond uncapped" and "tight cap collapses power spread below uncapped"
/// (the Schuchart-style inversion).
#[test]
fn acceptance_256_node_fleet_is_deterministic_and_reproduces_the_inversion() {
    let (narrow, s1) = fleet_json_with("acc_p1", "fleet_cap_spread", "256", "1", "1", &[]);
    let (wide, s4) = fleet_json_with("acc_p4", "fleet_cap_spread", "256", "1", "4", &[]);
    assert!(
        s1.success() && s4.success(),
        "a fleet check failed (survey exits nonzero when any check fails)"
    );
    assert_eq!(
        narrow, wide,
        "256-node fleet.json differs between RAYON_NUM_THREADS=1 and =4"
    );
    let doc = String::from_utf8(narrow).expect("fleet.json is UTF-8");
    assert!(doc.contains("tight cap expands performance spread beyond uncapped"));
    assert!(doc.contains("tight cap collapses power spread below uncapped"));
    assert!(
        !doc.contains("\"passed\": false"),
        "a registered fleet check failed"
    );
}
