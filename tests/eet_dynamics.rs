//! Energy-efficient turbo under phase-changing workloads — the paper's
//! caveat quantified end to end (Section II-E: the stall data is polled
//! only sporadically, "therefore, EET may impair performance and energy
//! efficiency of workloads that change their characteristics at an
//! unfavorable rate").

use haswell_survey_repro::exec::{DutyCycle, IpcModel, WorkloadProfile};
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::node::{CpuId, Node, NodeConfig};
use haswell_survey_repro::tools::perfctr::{median_of, PerfCtr};

/// A workload flipping between memory-bound and compute-bound character.
/// `phase_s` controls the flip rate relative to EET's 1 ms poll.
fn phase_flipper(phase_s: f64) -> WorkloadProfile {
    let mut p = WorkloadProfile::memory_bound();
    p.name = "phase flipper";
    // Duty modulates the *effective* stall signal EET samples: high-duty
    // phases look memory-bound, low-duty phases compute-bound.
    p.duty = DutyCycle::Phases(vec![(phase_s, 1.0), (phase_s, 0.12)]);
    p.ipc_smt = IpcModel::Constant(1.2);
    p.ipc_single = IpcModel::Constant(1.4);
    p
}

fn measure_gips(eet: bool, phase_s: f64, seed: u64) -> f64 {
    let mut node = Node::new(
        NodeConfig::paper_default()
            .with_eet(eet)
            .with_seed(seed)
            .with_tick_us(50),
    );
    node.run_on_socket(0, &phase_flipper(phase_s), 12, 1);
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.4);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let samples = pc.monitor(&mut node, 12, 0.25);
    median_of(&samples, |d| d.gips)
}

#[test]
fn eet_caps_turbo_for_truly_stalled_phases() {
    // Sanity: for a *steadily* memory-bound workload EET's cap is correct
    // behavior — frequency drops, throughput barely moves.
    let mut with_eet = Node::new(NodeConfig::paper_default().with_eet(true));
    with_eet.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 1);
    with_eet.set_setting_all(FreqSetting::Turbo);
    with_eet.advance_s(0.5);
    let mut without = Node::new(NodeConfig::paper_default().with_eet(false));
    without.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 1);
    without.set_setting_all(FreqSetting::Turbo);
    without.advance_s(0.5);
    let f_eet = with_eet.sockets()[0].true_core_mhz(0);
    let f_no = without.sockets()[0].true_core_mhz(0);
    assert!(
        f_eet <= f_no,
        "EET must not raise frequency: {f_eet:.0} vs {f_no:.0}"
    );
    // And it saves package power.
    assert!(with_eet.true_pkg_power_w(0) <= without.true_pkg_power_w(0) + 0.5);
}

/// Fraction of samples where EET's frequency decision contradicts the
/// workload's *instantaneous* character: capped (≤ base) during a
/// compute-bound phase, or uncapped (> base) during a memory-bound phase.
fn misprediction_rate(phase_s: f64, seed: u64) -> f64 {
    let mut node = Node::new(
        NodeConfig::paper_default()
            .with_eet(true)
            .with_seed(seed)
            .with_tick_us(50),
    );
    node.run_on_socket(0, &phase_flipper(phase_s), 12, 1);
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.4);
    let mut wrong = 0usize;
    let mut total = 0usize;
    let step_s = phase_s / 4.0;
    for _ in 0..400 {
        node.advance_s(step_s);
        // Which phase is the duty cycle in right now?
        let in_memory_phase = node.now_s() % (2.0 * phase_s) < phase_s;
        let capped = node.sockets()[0].true_core_mhz(0) <= 2500.0 + 1.0;
        if in_memory_phase != capped {
            wrong += 1;
        }
        total += 1;
    }
    wrong as f64 / total as f64
}

#[test]
fn unfavorable_phase_rate_mispredicts_more_than_favorable() {
    // Flip every 0.8 ms (just under the 1 ms poll → chronically stale
    // samples) vs every 50 ms (the poll tracks phases fine): the paper's
    // "unfavorable rate" caveat as a misprediction rate.
    let unfavorable = misprediction_rate(0.0008, 100);
    let favorable = misprediction_rate(0.050, 200);
    assert!(
        unfavorable > favorable + 0.15,
        "unfavorable {unfavorable:.2} vs favorable {favorable:.2}"
    );
}

#[test]
fn eet_penalty_is_measurable_through_counters() {
    // Whatever the phase rate, disabling EET must never *reduce*
    // throughput for this flipper (EET only ever caps).
    for (phase_s, seed) in [(0.0008, 300u64), (0.050, 400)] {
        let on = measure_gips(true, phase_s, seed);
        let off = measure_gips(false, phase_s, seed + 1);
        assert!(
            off >= on - 0.02,
            "phase {phase_s}: EET off {off:.3} vs on {on:.3} GIPS"
        );
    }
}

#[test]
fn eet_never_throttles_below_base() {
    let mut node = Node::new(NodeConfig::paper_default().with_eet(true));
    node.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 2);
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.6);
    let f = node.sockets()[0].true_core_mhz(0);
    assert!(
        f >= 2500.0 - 1.0,
        "EET caps at nominal, never below: {f:.0} MHz"
    );
}
