//! The survey's parallel-determinism contract, end to end: `survey.json`
//! must be byte-identical for any `--jobs` value and any worker-pool size
//! (`RAYON_NUM_THREADS`). Each sweep point's seed is a pure function of
//! `(experiment seed, point index)`, and the pool collects results in index
//! order, so neither the experiment-level fan-out nor the point-level
//! stealing may leak into the output bytes.

use std::process::Command;

/// Run the release `survey` binary on `subset` with extra flags and return
/// the JSON bytes it wrote.
fn survey_json_with(tag: &str, subset: &str, jobs: &str, pool: &str, extra: &[&str]) -> Vec<u8> {
    let out = std::env::temp_dir().join(format!("sweep_determinism_{tag}.json"));
    let _ = std::fs::remove_file(&out);
    let status = Command::new(env!("CARGO_BIN_EXE_survey"))
        .args(["--only", subset, "--seed", "7", "--jobs", jobs])
        .args(extra)
        .arg("--out")
        .arg(&out)
        .env("RAYON_NUM_THREADS", pool)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("survey binary runs");
    assert!(status.success(), "survey --jobs {jobs} pool {pool} failed");
    let bytes = std::fs::read(&out).expect("survey wrote its output file");
    let _ = std::fs::remove_file(&out);
    bytes
}

/// Run the release `survey` binary on `subset` and return the JSON bytes
/// it wrote.
fn survey_json(tag: &str, subset: &str, jobs: &str, pool: &str) -> Vec<u8> {
    survey_json_with(tag, subset, jobs, pool, &[])
}

#[test]
fn survey_json_is_byte_identical_across_jobs_and_pool_sizes() {
    const SUBSET: &str = "fig4,fig7,section6b_governor";
    let baseline = survey_json("j1p1", SUBSET, "1", "1");
    assert!(!baseline.is_empty());
    for (jobs, pool) in [("2", "1"), ("8", "1"), ("1", "4"), ("2", "4"), ("8", "4")] {
        let other = survey_json(&format!("j{jobs}p{pool}"), SUBSET, jobs, pool);
        assert_eq!(
            baseline, other,
            "survey.json differs at --jobs {jobs} / RAYON_NUM_THREADS={pool}"
        );
    }
}

#[test]
fn warm_start_on_and_off_are_byte_identical() {
    // The warm-start contract: forking every sweep point from one shared
    // warmup snapshot (`--warm-start on`, the default) must produce the
    // same bytes as re-running the warmup per point (`off`), because both
    // paths build the point node the same way and the node's noise is
    // keyed by (seed, domain, sim-time), not step count. fig2 exercises
    // the node-forking executor; fig7 the shared-prep analytic variant.
    const SUBSET: &str = "fig2,fig7,section2c_epb";
    let on = survey_json_with("warm_on", SUBSET, "2", "2", &["--warm-start", "on"]);
    let off = survey_json_with("warm_off", SUBSET, "2", "2", &["--warm-start", "off"]);
    assert!(!on.is_empty());
    assert_eq!(on, off, "warm-start fork leaked state into the JSON");
}

#[test]
fn skylake_survey_json_is_byte_identical_across_jobs_and_pool_sizes() {
    // The determinism matrix's second row: the Skylake-SP registry (one
    // analytic sweep, one session-based measurement over the 2×26-core
    // mesh node) through the same jobs × pool grid as the Haswell set.
    const SUBSET: &str = "skx_license_table,skx_ufs_mesh";
    const PLATFORM: &[&str] = &["--platform", "skylake-sp"];
    let baseline = survey_json_with("skx_j1p1", SUBSET, "1", "1", PLATFORM);
    assert!(!baseline.is_empty());
    for (jobs, pool) in [("2", "2"), ("8", "4")] {
        let other = survey_json_with(&format!("skx_j{jobs}p{pool}"), SUBSET, jobs, pool, PLATFORM);
        assert_eq!(
            baseline, other,
            "skylake-sp survey.json differs at --jobs {jobs} / RAYON_NUM_THREADS={pool}"
        );
    }
}

#[test]
fn skylake_warm_start_on_and_off_are_byte_identical() {
    // Same contract as the Haswell leg: HWP/mesh state forked from a warm
    // snapshot must not differ from a cold settle.
    const SUBSET: &str = "skx_license_table,skx_ufs_mesh";
    let on = survey_json_with(
        "skx_warm_on",
        SUBSET,
        "2",
        "2",
        &["--platform", "skylake-sp", "--warm-start", "on"],
    );
    let off = survey_json_with(
        "skx_warm_off",
        SUBSET,
        "2",
        "2",
        &["--platform", "skylake-sp", "--warm-start", "off"],
    );
    assert!(!on.is_empty());
    assert_eq!(on, off, "warm-start fork leaked state into the SKX JSON");
}

#[test]
fn seeded_sweeps_are_pool_size_independent() {
    // A seeded sweep (fig56 consumes per-point node and RNG streams)
    // through pools of different widths; any schedule dependence in seed
    // derivation or collection order shows up here.
    let a = survey_json("seeded_p1", "fig56", "1", "1");
    let b = survey_json("seeded_p3", "fig56", "3", "3");
    assert_eq!(a, b, "seeded sweep leaked schedule state into the JSON");
}
