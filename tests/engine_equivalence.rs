//! Golden engine-equivalence test: the survey must serialize to
//! byte-identical JSON whether it runs on the fixed-tick engine or the
//! coalescing event engine, and regardless of worker-thread count. This is
//! the contract that makes `--engine event` a pure wall-time optimization.

use haswell_survey::survey::{run_survey, SurveyConfig};
use haswell_survey::Fidelity;
use hsw_node::EngineMode;

/// A fast subset that still exercises node construction, RAPL/meter noise,
/// p-state transitions, and an analytic (node-free) experiment.
fn subset() -> Vec<String> {
    ["fig4", "fig7", "section6b_governor"]
        .into_iter()
        .map(String::from)
        .collect()
}

fn survey_json(engine: EngineMode, jobs: usize, seed: u64) -> String {
    let cfg = SurveyConfig {
        fidelity: Fidelity::Quick,
        seed,
        jobs,
        only: Some(subset()),
        engine,
        warm_start: true,
        fleet_size: None,
        platform: Default::default(),
    };
    run_survey(&cfg).expect("survey subset runs").to_json()
}

#[test]
fn fixed_and_event_surveys_are_byte_identical() {
    let fixed = survey_json(EngineMode::Fixed, 1, 7);
    let event = survey_json(EngineMode::Event, 1, 7);
    assert_eq!(
        fixed, event,
        "fixed and event engines must serialize identically"
    );
}

#[test]
fn engine_identity_holds_across_jobs_and_seeds() {
    for seed in [0, 42] {
        let fixed = survey_json(EngineMode::Fixed, 1, seed);
        let event = survey_json(EngineMode::Event, 4, seed);
        assert_eq!(fixed, event, "divergence at seed {seed}");
    }
}

#[test]
fn survey_json_carries_no_engine_or_wall_time_fields() {
    // The byte-identity contract depends on the JSON staying free of
    // engine tags and wall-clock timings; only deterministic fields
    // (including simulated time) may appear.
    let json = survey_json(EngineMode::Event, 1, 7);
    assert!(!json.contains("wall_time"), "wall time leaked into JSON");
    assert!(!json.contains("\"engine\""), "engine tag leaked into JSON");
    assert!(json.contains("sim_time_s"), "sim_time_s missing from JSON");
}
