//! Property-based invariants of the full simulated node under randomized
//! workload placements and settings. Each case runs a real simulation, so
//! the case count is kept small; the assertions are the physical laws any
//! configuration must obey.

use haswell_survey_repro::exec::WorkloadProfile;
use haswell_survey_repro::hwspec::freq::FreqSetting;
use haswell_survey_repro::hwspec::NodeSpec;
use haswell_survey_repro::msr::addresses as msra;
use haswell_survey_repro::node::{CpuId, Node, NodeConfig};
use proptest::prelude::*;

fn profile_for(idx: usize) -> WorkloadProfile {
    match idx % 6 {
        0 => WorkloadProfile::busy_wait(),
        1 => WorkloadProfile::memory_bound(),
        2 => WorkloadProfile::compute(),
        3 => WorkloadProfile::dgemm(),
        4 => WorkloadProfile::firestarter(),
        _ => WorkloadProfile::mprime(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    #[test]
    fn prop_node_invariants_hold_under_random_load(
        seed in 0u64..1000,
        profile_idx in 0usize..6,
        cores0 in 0usize..=12,
        cores1 in 0usize..=12,
        ht in any::<bool>(),
        setting_ratio in 12u32..=25,
        turbo in any::<bool>(),
    ) {
        let mut node = Node::new(NodeConfig::paper_default().with_seed(seed));
        let p = profile_for(profile_idx);
        let tpc = if ht { 2 } else { 1 };
        node.run_on_socket(0, &p, cores0, tpc);
        node.run_on_socket(1, &p, cores1, tpc);
        let setting = if turbo {
            FreqSetting::Turbo
        } else {
            FreqSetting::from_mhz(setting_ratio * 100)
        };
        node.set_setting_all(setting);
        node.advance_s(0.4);

        let cpu0 = CpuId::new(0, 0, 0);
        let pkg_before = node.rdmsr(cpu0, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        node.advance_s(0.4);
        let pkg_after = node.rdmsr(cpu0, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;

        // 1. Energy counters advance whenever the socket draws power.
        prop_assert!(pkg_after.wrapping_sub(pkg_before) > 0);

        for s in 0..2 {
            let sock = &node.sockets()[s];
            // 2. Package power within physical bounds: positive, and under
            //    TDP once the limiter settled (small tolerance).
            let pw = node.true_pkg_power_w(s);
            prop_assert!(pw > 0.0, "socket {s} pkg {pw}");
            prop_assert!(pw < 120.0 * 1.05, "socket {s} pkg {pw}");

            // 3. Core frequencies within [min, single-core turbo].
            for c in 0..12 {
                let f = sock.true_core_mhz(c);
                prop_assert!((1200.0..=3300.0).contains(&f), "S{s}C{c}: {f}");
            }

            // 4. Uncore within its bounds (or halted in deep package sleep).
            let u = sock.true_uncore_mhz();
            prop_assert!(
                u == 0.0 || (1200.0..=3000.0).contains(&u),
                "S{s} uncore {u}"
            );
            if u == 0.0 {
                prop_assert!(sock.package_cstate().uncore_halted());
            }

            // 5. Fixed settings are never exceeded (turbo aside).
            if let FreqSetting::Fixed(ps) = setting {
                let busy = (0..12).filter(|c| {
                    sock.core_cstate(*c) == haswell_survey_repro::cstates::CoreCState::C0
                });
                for c in busy {
                    prop_assert!(
                        sock.true_core_mhz(c) <= ps.mhz() as f64 + 1.0,
                        "S{s}C{c} exceeds the fixed setting"
                    );
                }
            }
        }

        // 6. AC power is consistent with the electrical design.
        let ac = node.true_ac_power_w();
        let rapl = node.true_rapl_power_w();
        prop_assert!(ac > rapl, "AC {ac} must exceed RAPL {rapl}");
        prop_assert!(ac < 700.0, "AC {ac} out of range");
    }

    #[test]
    fn prop_counters_are_monotone_across_random_advances(
        seed in 0u64..1000,
        steps in proptest::collection::vec(1u64..200_000, 1..6),
    ) {
        let mut node = Node::new(NodeConfig::paper_default().with_seed(seed));
        node.run_on_socket(0, &WorkloadProfile::compute(), 6, 1);
        node.advance_s(0.05);
        let cpu = CpuId::new(0, 0, 0);
        let mut prev_tsc = node.rdmsr(cpu, msra::IA32_TIME_STAMP_COUNTER).unwrap();
        let mut prev_aperf = node.rdmsr(cpu, msra::IA32_APERF).unwrap();
        let mut prev_instr = node.rdmsr(cpu, msra::IA32_FIXED_CTR0_INST_RETIRED).unwrap();
        for us in steps {
            node.advance_us(us);
            let tsc = node.rdmsr(cpu, msra::IA32_TIME_STAMP_COUNTER).unwrap();
            let aperf = node.rdmsr(cpu, msra::IA32_APERF).unwrap();
            let instr = node.rdmsr(cpu, msra::IA32_FIXED_CTR0_INST_RETIRED).unwrap();
            prop_assert!(tsc > prev_tsc, "TSC must always advance");
            prop_assert!(aperf >= prev_aperf);
            prop_assert!(instr >= prev_instr);
            // TSC runs at nominal: counts ≈ 2.5 GHz × Δt.
            let expect = us as f64 * 2500.0;
            let got = (tsc - prev_tsc) as f64;
            prop_assert!((got / expect - 1.0).abs() < 0.01, "TSC rate {got} vs {expect}");
            prev_tsc = tsc;
            prev_aperf = aperf;
            prev_instr = instr;
        }
    }

    #[test]
    fn prop_skylake_snapshot_round_trips_hwp_and_mesh_state(
        seed in 0u64..500,
        profile_idx in 0usize..6,
        cores in 1usize..=26,
        warm_ms in 50u64..300,
        run_ms in 50u64..300,
    ) {
        // The warm-start contract on the new backend: snapshotting a
        // Skylake-SP node mid-flight (HWP p-state engine, per-socket mesh
        // clock, AVX license levels, uniform-unit RAPL counters) and
        // restoring into a fresh same-seed node must continue
        // bit-identically with the uninterrupted run.
        let cfg = || {
            NodeConfig::paper_default()
                .with_spec(NodeSpec::skylake_sp_node())
                .with_seed(seed)
        };
        let mut a = Node::new(cfg());
        a.run_on_socket(0, &profile_for(profile_idx), cores, 2);
        a.advance_us(warm_ms * 1000);
        let snap = a.snapshot();

        let mut b = Node::new(cfg());
        b.restore(&snap);
        prop_assert_eq!(b.now_ns(), a.now_ns());
        a.advance_us(run_ms * 1000);
        b.advance_us(run_ms * 1000);

        for s in 0..2 {
            prop_assert_eq!(
                a.true_pkg_power_w(s).to_bits(),
                b.true_pkg_power_w(s).to_bits(),
                "socket {} package power diverged", s
            );
            prop_assert_eq!(
                a.sockets()[s].true_uncore_mhz().to_bits(),
                b.sockets()[s].true_uncore_mhz().to_bits(),
                "socket {} mesh clock diverged", s
            );
            let cpu = CpuId::new(s, 0, 0);
            for addr in [
                msra::MSR_PKG_ENERGY_STATUS,
                msra::MSR_DRAM_ENERGY_STATUS,
                msra::MSR_U_PMON_UCLK_FIXED_CTR,
                msra::IA32_APERF,
            ] {
                prop_assert_eq!(
                    a.rdmsr(cpu, addr).unwrap(),
                    b.rdmsr(cpu, addr).unwrap(),
                    "socket {} MSR {:#x} diverged", s, addr
                );
            }
        }
    }

    #[test]
    fn prop_skylake_fork_with_new_seed_diverges_only_in_noise(
        seed in 0u64..200,
        fork_seed in 1000u64..1200,
    ) {
        // Re-seeded forks keep the captured HWP/mesh state but re-key the
        // noise streams — the fleet and warm-start machinery relies on it.
        let mut warm = Node::new(
            NodeConfig::paper_default()
                .with_spec(NodeSpec::skylake_sp_node())
                .with_seed(seed),
        );
        warm.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
        warm.advance_s(0.1);
        let snap = warm.snapshot();

        let mut fork = Node::new(
            NodeConfig::paper_default()
                .with_spec(NodeSpec::skylake_sp_node())
                .with_seed(fork_seed),
        );
        fork.restore(&snap);
        prop_assert_eq!(fork.now_ns(), warm.now_ns());
        let a = warm.measure_ac_average(0.1);
        let b = fork.measure_ac_average(0.1);
        prop_assert_ne!(a.to_bits(), b.to_bits(), "meter noise must re-key");
        prop_assert!((a - b).abs() < 10.0, "same state, only noise differs: {} vs {}", a, b);
    }

    #[test]
    fn prop_determinism_same_seed_same_trajectory(
        seed in 0u64..500,
        profile_idx in 0usize..6,
    ) {
        let run = |seed: u64| {
            let mut node = Node::new(NodeConfig::paper_default().with_seed(seed));
            node.run_on_socket(0, &profile_for(profile_idx), 12, 2);
            node.set_setting_all(FreqSetting::Turbo);
            node.advance_s(0.5);
            (
                node.true_rapl_power_w(),
                node.sockets()[0].true_core_mhz(0),
                node.rdmsr(CpuId::new(0, 0, 0), msra::MSR_PKG_ENERGY_STATUS).unwrap(),
            )
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.0.to_bits(), b.0.to_bits());
        prop_assert_eq!(a.1.to_bits(), b.1.to_bits());
        prop_assert_eq!(a.2, b.2);
    }
}
