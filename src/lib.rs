//! # haswell-survey-repro — root facade
//!
//! Re-exports the workspace crates under one roof for the examples and
//! integration tests. See README.md for the architecture and
//! `haswell_survey::experiments` for the per-table/figure reproduction
//! entry points.

pub use haswell_survey as survey;
pub use hsw_cstates as cstates;
pub use hsw_exec as exec;
pub use hsw_fleet as fleet;
pub use hsw_hwspec as hwspec;
pub use hsw_memhier as memhier;
pub use hsw_msr as msr;
pub use hsw_node as node;
pub use hsw_pcu as pcu;
pub use hsw_power as power;
pub use hsw_tools as tools;
