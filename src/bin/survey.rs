//! `survey` — run the full paper reproduction and write `survey.json`.
//!
//! ```text
//! survey [--list] [--only <id>[,<id>...]] [--seed <u64>] [--jobs <n>]
//!        [--fidelity quick|paper|analytic] [--engine fixed|event]
//!        [--warm-start on|off] [--fleet-size <n>]
//!        [--platform haswell|skylake-sp] [--out <path>]
//! ```
//!
//! Determinism contract: the JSON document depends only on
//! `(--platform, --fidelity, --seed, --only, --fleet-size)` — the same flags produce
//! byte-identical `survey.json` for any `--jobs` value, either `--engine`
//! mode, and either `--warm-start` setting. Wall-clock timings go to the
//! scoreboard and stderr only.

use std::process::ExitCode;

use haswell_survey::survey::{registry_for, run_survey, SurveyConfig};
use haswell_survey::Fidelity;
use hsw_node::{EngineMode, PlatformKind};

const USAGE: &str = "\
usage: survey [options]

Run the Haswell energy-efficiency survey reproduction and write the
machine-readable results to survey.json.

options:
  --list              list experiment ids and exit
  --only <ids>        run only these comma-separated ids (repeatable)
  --seed <u64>        root RNG seed (default 42)
  --jobs <n>          worker threads (default: available parallelism)
  --fidelity <f>      quick | paper | analytic (default quick); `analytic`
                      answers sweep points from the hsw-analytic closed form
                      and spot-checks a deterministic sample on the full
                      simulator (surrogate-capable experiments only)
  --engine <e>        fixed | event (default event; both are bit-identical,
                      `fixed` is the validation escape hatch)
  --warm-start <w>    on | off (default on): fork sweep points from a shared
                      warm snapshot instead of re-running each settle phase;
                      both settings are bit-identical, `off` is the
                      validation escape hatch
  --fleet-size <n>    nodes per fleet experiment (default: fidelity preset,
                      32 quick / 256 paper / 65536 analytic)
  --platform <p>      haswell | skylake-sp (default haswell): which surveyed
                      machine to model; selects the experiment registry
  --out <path>        output path (default survey.json, `-` for stdout)
  -h, --help          show this help
";

struct Args {
    list: bool,
    cfg: SurveyConfig,
    out: String,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        cfg: SurveyConfig {
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            ..SurveyConfig::default()
        },
        out: "survey.json".to_string(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--list" => args.list = true,
            "--only" => {
                let ids = args.cfg.only.get_or_insert_with(Vec::new);
                ids.extend(value("--only")?.split(',').map(|s| s.trim().to_string()));
            }
            "--seed" => {
                let v = value("--seed")?;
                args.cfg.seed = v
                    .parse()
                    .map_err(|_| format!("--seed: `{v}` is not a u64"))?;
            }
            "--jobs" => {
                let v = value("--jobs")?;
                args.cfg.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: `{v}` is not a thread count"))?;
                if args.cfg.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--fidelity" => {
                args.cfg.fidelity = value("--fidelity")?.parse::<Fidelity>()?;
            }
            "--engine" => {
                args.cfg.engine = value("--engine")?.parse::<EngineMode>()?;
            }
            "--warm-start" => {
                args.cfg.warm_start = match value("--warm-start")?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--warm-start: `{other}` is not on|off")),
                };
            }
            "--fleet-size" => {
                let v = value("--fleet-size")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--fleet-size: `{v}` is not a node count"))?;
                if n == 0 {
                    return Err("--fleet-size must be at least 1".to_string());
                }
                args.cfg.fleet_size = Some(n);
            }
            "--platform" => {
                let v = value("--platform")?;
                args.cfg.platform = PlatformKind::parse(&v)
                    .ok_or_else(|| format!("--platform: `{v}` is not haswell|skylake-sp"))?;
            }
            "--out" => args.out = value("--out")?,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("survey: {e}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for exp in registry_for(args.cfg.platform) {
            println!(
                "{:<20} {:<28} {}{}",
                exp.id(),
                exp.anchor(),
                exp.title(),
                if exp.seeded() { "" } else { " (deterministic)" }
            );
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "survey: platform={} fidelity={} seed={} jobs={} pool={} engine={} warm-start={} fleet-size={}",
        args.cfg.platform,
        args.cfg.fidelity.label(),
        args.cfg.seed,
        args.cfg.jobs,
        haswell_survey::survey::pool_threads(),
        args.cfg.engine,
        if args.cfg.warm_start { "on" } else { "off" },
        args.cfg
            .fleet_size
            .unwrap_or_else(|| args.cfg.fidelity.fleet_size())
    );
    let run = match run_survey(&args.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("survey: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", run.text_report());
    for (r, wall_s) in run.results.iter().zip(&run.timings_s) {
        eprintln!("survey: {:<20} {wall_s:>7.2} s", r.id);
    }

    let json = run.to_json();
    if args.out == "-" {
        print!("{json}");
    } else if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("survey: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    } else {
        eprintln!("survey: wrote {}", args.out);
    }

    if run.results.iter().all(|r| r.checks_passed()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
