//! A Linux-cpufreq-like view of the simulated hardware — and a
//! demonstration of why the paper had to modify FTaLaT.
//!
//! The original FTaLaT read `scaling_cur_freq` from the cpufreq subsystem
//! to verify frequency settings; the paper found these readings are "not
//! \[a\] reliable indicator for an actual frequency switch in hardware" and
//! switched to hardware cycle counters. This module implements both views:
//! `scaling_cur_freq` (the *requested* p-state, updated instantly on the
//! write) and the counter-based effective frequency — so the discrepancy
//! during the ~500 µs transition window is directly observable.

use hsw_hwspec::PState;
use hsw_msr::{addresses as msra, fields};
use hsw_node::{CpuId, Node};

/// The userspace-governor style cpufreq interface of one logical CPU.
#[derive(Debug, Clone, Copy)]
pub struct CpuFreq {
    pub cpu: CpuId,
}

impl CpuFreq {
    pub fn new(cpu: CpuId) -> Self {
        CpuFreq { cpu }
    }

    /// `scaling_setspeed`: request a frequency (userspace governor).
    pub fn set_speed(&self, node: &mut Node, khz: u64) {
        let p = PState::from_mhz((khz / 1000) as u32);
        node.wrmsr(self.cpu, msra::IA32_PERF_CTL, fields::encode_perf_ctl(p))
            .expect("PERF_CTL");
    }

    /// `scaling_cur_freq` in kHz: what cpufreq *believes* — the last
    /// requested p-state, read back from `IA32_PERF_CTL`. This updates
    /// immediately on the request, long before the hardware switches.
    pub fn scaling_cur_freq_khz(&self, node: &Node) -> u64 {
        let v = node.rdmsr(self.cpu, msra::IA32_PERF_CTL).unwrap_or(0);
        fields::decode_perf_ctl(v).mhz() as u64 * 1000
    }

    /// `cpuinfo_cur_freq` in kHz: the hardware's own report
    /// (`IA32_PERF_STATUS`), which follows the actual transition.
    pub fn cpuinfo_cur_freq_khz(&self, node: &Node) -> u64 {
        let v = node.rdmsr(self.cpu, msra::IA32_PERF_STATUS).unwrap_or(0);
        fields::decode_perf_status(v).mhz() as u64 * 1000
    }

    /// Effective frequency over a measurement window from APERF/MPERF —
    /// the verification method the paper's modified FTaLaT uses.
    pub fn effective_freq_khz(&self, node: &mut Node, window_us: u64) -> u64 {
        let a0 = node.rdmsr(self.cpu, msra::IA32_APERF).unwrap_or(0);
        let m0 = node.rdmsr(self.cpu, msra::IA32_MPERF).unwrap_or(0);
        node.advance_us(window_us);
        let a1 = node.rdmsr(self.cpu, msra::IA32_APERF).unwrap_or(0);
        let m1 = node.rdmsr(self.cpu, msra::IA32_MPERF).unwrap_or(0);
        let nominal_khz = node.config().spec.sku.freq.base_mhz as u64 * 1000;
        let da = a1.wrapping_sub(a0) as f64;
        let dm = m1.wrapping_sub(m0) as f64;
        if dm <= 0.0 {
            return 0;
        }
        (nominal_khz as f64 * da / dm) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_node::{Platform, Resolution};

    fn node() -> Node {
        let mut node = Platform::paper()
            .session()
            .resolution(Resolution::Latency)
            .build()
            .into_node();
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        node.advance_s(0.01);
        node
    }

    #[test]
    fn scaling_cur_freq_lies_during_the_transition_window() {
        // The paper's rationale for modifying FTaLaT, reproduced: right
        // after the request, cpufreq reports the new frequency while the
        // hardware still runs the old one.
        let mut n = node();
        let cf = CpuFreq::new(CpuId::new(0, 0, 0));
        cf.set_speed(&mut n, 1_200_000);
        n.advance_us(1_200); // settle at 1.2 GHz
        cf.set_speed(&mut n, 1_300_000);
        // Immediately after the wrmsr:
        assert_eq!(cf.scaling_cur_freq_khz(&n), 1_300_000, "cpufreq view");
        let eff = cf.effective_freq_khz(&mut n, 10);
        assert!(
            eff < 1_250_000,
            "hardware still at 1.2 GHz ({eff} kHz) while cpufreq claims 1.3"
        );
    }

    #[test]
    fn views_agree_after_the_transition_completes() {
        let mut n = node();
        let cf = CpuFreq::new(CpuId::new(0, 0, 0));
        cf.set_speed(&mut n, 1_400_000);
        n.advance_us(1_200);
        assert_eq!(cf.scaling_cur_freq_khz(&n), 1_400_000);
        assert_eq!(cf.cpuinfo_cur_freq_khz(&n), 1_400_000);
        let eff = cf.effective_freq_khz(&mut n, 100);
        assert!((eff as i64 - 1_400_000).unsigned_abs() < 30_000, "{eff}");
    }

    #[test]
    fn perf_status_follows_the_hardware_not_the_request() {
        let mut n = node();
        let cf = CpuFreq::new(CpuId::new(0, 0, 0));
        cf.set_speed(&mut n, 1_200_000);
        n.advance_us(1_200);
        cf.set_speed(&mut n, 1_300_000);
        n.advance_us(4); // well inside the opportunity window
        assert_eq!(
            cf.cpuinfo_cur_freq_khz(&n),
            1_200_000,
            "PERF_STATUS must lag the request"
        );
    }
}
