//! LIKWID-style performance-counter sampling (paper \[22\]).
//!
//! The paper samples "core and uncore cycles, instructions, and RAPL values
//! for both processors once per second via LIKWID on one core per
//! processor" (Section V-B). This module reproduces that methodology:
//! counter snapshots via `rdmsr`, differences over sampling intervals, and
//! derived metrics (effective core frequency from APERF/MPERF, uncore
//! frequency from the U-box fixed counter, instructions per second, RAPL
//! power).

use hsw_hwspec::calib;
use hsw_msr::addresses as msra;
use hsw_node::{CpuId, Node};

/// One snapshot of the counters the paper's methodology reads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CounterSample {
    pub t_ns: u64,
    pub tsc: u64,
    pub aperf: u64,
    pub mperf: u64,
    pub instr: u64,
    pub core_cycles: u64,
    pub uclk: u64,
    pub pkg_energy_raw: u32,
    pub dram_energy_raw: u32,
}

/// Metrics derived from two snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Derived {
    pub interval_s: f64,
    /// Effective core frequency in GHz (APERF/MPERF × nominal).
    pub core_ghz: f64,
    /// Uncore frequency in GHz (U-box clockticks / wall time).
    pub uncore_ghz: f64,
    /// Instructions per second of the sampled hardware thread (×10⁹).
    pub gips: f64,
    /// RAPL package power in W.
    pub pkg_w: f64,
    /// RAPL DRAM power in W.
    pub dram_w: f64,
}

/// The counter-sampling tool, bound to one hardware thread.
#[derive(Debug, Clone, Copy)]
pub struct PerfCtr {
    pub cpu: CpuId,
    nominal_ghz: f64,
}

impl PerfCtr {
    pub fn new(node: &Node, cpu: CpuId) -> Self {
        PerfCtr {
            cpu,
            nominal_ghz: node.config().spec.sku.freq.base_mhz as f64 / 1000.0,
        }
    }

    /// Snapshot all counters (a batch of `rdmsr`s, as LIKWID does).
    pub fn sample(&self, node: &Node) -> CounterSample {
        let rd = |addr| node.rdmsr(self.cpu, addr).unwrap_or(0);
        CounterSample {
            t_ns: node.now_ns(),
            tsc: rd(msra::IA32_TIME_STAMP_COUNTER),
            aperf: rd(msra::IA32_APERF),
            mperf: rd(msra::IA32_MPERF),
            instr: rd(msra::IA32_FIXED_CTR0_INST_RETIRED),
            core_cycles: rd(msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED),
            uclk: rd(msra::MSR_U_PMON_UCLK_FIXED_CTR),
            pkg_energy_raw: rd(msra::MSR_PKG_ENERGY_STATUS) as u32,
            dram_energy_raw: rd(msra::MSR_DRAM_ENERGY_STATUS) as u32,
        }
    }

    /// Derive rates from two snapshots, handling counter wraparound the way
    /// measurement software must.
    pub fn derive(&self, a: &CounterSample, b: &CounterSample) -> Derived {
        let dt_s = (b.t_ns - a.t_ns) as f64 * 1e-9;
        let d = |x: u64, y: u64| y.wrapping_sub(x) as f64;
        let mperf = d(a.mperf, b.mperf).max(1.0);
        Derived {
            interval_s: dt_s,
            core_ghz: d(a.aperf, b.aperf) / mperf * self.nominal_ghz,
            uncore_ghz: d(a.uclk, b.uclk) / (dt_s * 1e9),
            gips: d(a.instr, b.instr) / (dt_s * 1e9),
            pkg_w: b.pkg_energy_raw.wrapping_sub(a.pkg_energy_raw) as f64
                * calib::PKG_ENERGY_UNIT_UJ
                * 1e-6
                / dt_s,
            dram_w: b.dram_energy_raw.wrapping_sub(a.dram_energy_raw) as f64
                * calib::DRAM_ENERGY_UNIT_UJ
                * 1e-6
                / dt_s,
        }
    }

    /// The paper's Section V-B methodology: `n` samples at `interval_s`
    /// spacing; returns the per-interval derived metrics.
    pub fn monitor(&self, node: &mut Node, n: usize, interval_s: f64) -> Vec<Derived> {
        let mut out = Vec::with_capacity(n);
        let mut prev = self.sample(node);
        for _ in 0..n {
            node.advance_s(interval_s);
            let cur = self.sample(node);
            out.push(self.derive(&prev, &cur));
            prev = cur;
        }
        out
    }
}

/// Median of a value extracted from monitoring samples (the paper uses
/// 50-sample medians for Table IV).
pub fn median_of(samples: &[Derived], f: impl Fn(&Derived) -> f64) -> f64 {
    let mut v: Vec<f64> = samples.iter().map(f).collect();
    v.sort_by(f64::total_cmp);
    if v.is_empty() {
        return f64::NAN;
    }
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        0.5 * (v[mid - 1] + v[mid])
    } else {
        v[mid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_hwspec::freq::FreqSetting;
    use hsw_node::Platform;

    fn loaded_node() -> Node {
        let mut node = Platform::paper().session().build().into_node();
        let fs = WorkloadProfile::firestarter();
        for s in 0..2 {
            node.run_on_socket(s, &fs, 12, 2);
        }
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.5);
        node
    }

    #[test]
    fn derived_metrics_are_consistent_with_ground_truth() {
        let mut node = loaded_node();
        let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
        let samples = pc.monitor(&mut node, 5, 0.2);
        let core = median_of(&samples, |d| d.core_ghz);
        let uncore = median_of(&samples, |d| d.uncore_ghz);
        let truth_core = node.sockets()[0].true_core_mhz(0) / 1000.0;
        let truth_unc = node.sockets()[0].true_uncore_mhz() / 1000.0;
        assert!((core - truth_core).abs() < 0.05, "{core} vs {truth_core}");
        assert!((uncore - truth_unc).abs() < 0.05, "{uncore} vs {truth_unc}");
    }

    #[test]
    fn firestarter_gips_matches_table4_band() {
        let mut node = loaded_node();
        let pc = PerfCtr::new(&node, CpuId::new(1, 0, 0));
        let samples = pc.monitor(&mut node, 10, 0.2);
        let gips = median_of(&samples, |d| d.gips);
        assert!((3.4..=3.75).contains(&gips), "GIPS = {gips:.3}");
    }

    #[test]
    fn rapl_power_reads_tdp_under_firestarter() {
        let mut node = loaded_node();
        let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
        let samples = pc.monitor(&mut node, 5, 0.5);
        let pkg = median_of(&samples, |d| d.pkg_w);
        assert!((pkg - 120.0).abs() < 4.0, "pkg = {pkg:.1} W");
    }

    #[test]
    fn median_is_robust() {
        let mk = |v: f64| Derived {
            interval_s: 1.0,
            core_ghz: v,
            uncore_ghz: 0.0,
            gips: 0.0,
            pkg_w: 0.0,
            dram_w: 0.0,
        };
        let samples = vec![mk(2.3), mk(2.31), mk(9.9), mk(2.29), mk(2.3)];
        let m = median_of(&samples, |d| d.core_ghz);
        assert!((m - 2.3).abs() < 1e-9);
    }
}
