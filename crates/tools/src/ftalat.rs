//! FTaLaT — frequency-transition latency measurement (paper Section VI-A,
//! \[26\]), with the paper's modifications:
//!
//! * frequency changes are verified by reading the hardware cycle counter
//!   (`PERF_COUNT_HW_CPU_CYCLES` = fixed counter 1) over 20 µs busy-wait
//!   windows, because `scaling_cur_freq` is "not a reliable indicator for
//!   an actual frequency switch in hardware";
//! * 1000 measurements per start/target pair;
//! * controlled delay between the detected completion of one transition and
//!   the next request (the four regimes of paper Figure 3).

use hsw_hwspec::PState;
use hsw_msr::{addresses as msra, fields};
use hsw_node::{CpuId, Node};
use rand::Rng;

/// The busy-wait verification window (paper: "a 20 µs busy-wait loop").
pub const VERIFY_WINDOW_US: u64 = 20;

/// When, relative to the previous transition, the next request is issued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayRegime {
    /// Request at a random time (uniform µs in the given range) after the
    /// last change.
    Random { min_us: u64, max_us: u64 },
    /// Request instantly after the previous change is detected.
    Immediate,
    /// Request a fixed delay after the previous change was detected.
    AfterUs(u64),
}

impl DelayRegime {
    pub fn label(&self) -> String {
        match self {
            DelayRegime::Random { .. } => "random".to_string(),
            DelayRegime::Immediate => "0 µs delay".to_string(),
            DelayRegime::AfterUs(us) => format!("{us} µs delay"),
        }
    }
}

/// One measured transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySample {
    pub from: PState,
    pub to: PState,
    pub latency_us: f64,
}

/// The measurement tool, pinned to one hardware thread (which must be
/// running a busy loop so the cycle counters advance).
pub struct FtaLat {
    pub cpu: CpuId,
}

impl FtaLat {
    pub fn new(cpu: CpuId) -> Self {
        FtaLat { cpu }
    }

    /// Measure the effective frequency over one verification window (GHz).
    fn freq_window(&self, node: &mut Node) -> f64 {
        let c0 = node
            .rdmsr(self.cpu, msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED)
            .unwrap_or(0);
        node.advance_us(VERIFY_WINDOW_US);
        let c1 = node
            .rdmsr(self.cpu, msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED)
            .unwrap_or(0);
        c1.wrapping_sub(c0) as f64 / (VERIFY_WINDOW_US as f64 * 1e3)
    }

    /// Request a transition to `to` and busy-wait until the cycle counter
    /// confirms it; returns the observed latency in µs.
    ///
    /// `timeout_us` bounds the wait (a pathological stall aborts the
    /// sample, as the original tool would re-measure).
    pub fn measure_transition(
        &self,
        node: &mut Node,
        from: PState,
        to: PState,
        timeout_us: u64,
    ) -> Option<LatencySample> {
        let t0 = node.now_ns();
        node.wrmsr(self.cpu, msra::IA32_PERF_CTL, fields::encode_perf_ctl(to))
            .ok()?;
        let threshold = 0.5 * (from.ghz() + to.ghz());
        let rising = to > from;
        let mut waited = 0;
        loop {
            let f = self.freq_window(node);
            let crossed = if rising { f > threshold } else { f < threshold };
            if crossed {
                let elapsed_us = (node.now_ns() - t0) as f64 / 1e3;
                // The change happened somewhere inside the last window; the
                // window midpoint is the unbiased estimate.
                return Some(LatencySample {
                    from,
                    to,
                    latency_us: (elapsed_us - VERIFY_WINDOW_US as f64 / 2.0).max(0.0),
                });
            }
            waited += VERIFY_WINDOW_US;
            if waited > timeout_us {
                return None;
            }
        }
    }

    /// Ensure the core is settled at `p` (request + wait out any pending
    /// opportunity).
    pub fn settle(&self, node: &mut Node, p: PState) {
        node.wrmsr(self.cpu, msra::IA32_PERF_CTL, fields::encode_perf_ctl(p))
            .ok();
        node.advance_us(1_200);
    }

    /// A full campaign: `n` alternating transitions between `a` and `b`
    /// under the given delay regime (paper: 1000 measurements for
    /// 1.2 ↔ 1.3 GHz).
    pub fn campaign<R: Rng>(
        &self,
        node: &mut Node,
        a: PState,
        b: PState,
        regime: DelayRegime,
        n: usize,
        rng: &mut R,
    ) -> Vec<LatencySample> {
        self.settle(node, a);
        let mut cur = a;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let target = if cur == a { b } else { a };
            // Position the request relative to the last detected change.
            match regime {
                DelayRegime::Random { min_us, max_us } => {
                    node.advance_us(rng.gen_range(min_us..=max_us));
                }
                DelayRegime::Immediate => {}
                DelayRegime::AfterUs(us) => node.advance_us(us),
            }
            // OS scheduling and wrmsr overhead jitter of the real tool —
            // without it the 20 µs verify windows phase-lock against the
            // 500 µs opportunity clock.
            node.advance_us(rng.gen_range(0..13));
            if let Some(s) = self.measure_transition(node, cur, target, 3_000) {
                out.push(s);
            }
            cur = target;
        }
        out
    }
}

/// Mean, standard deviation and 99 % confidence half-width (the paper
/// raises FTaLaT's confidence level from 95 % to 99 %).
pub fn stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    if samples.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n.max(2.0);
    let sd = var.sqrt();
    // z(99 %) = 2.576
    (mean, sd, 2.576 * sd / n.sqrt())
}

/// Histogram helper for the Figure 3 rendering.
pub fn histogram(samples: &[f64], bin_us: f64, max_us: f64) -> Vec<(f64, usize)> {
    let bins = (max_us / bin_us).ceil() as usize;
    let mut h = vec![0usize; bins];
    for &s in samples {
        let idx = ((s / bin_us) as usize).min(bins - 1);
        h[idx] += 1;
    }
    h.into_iter()
        .enumerate()
        .map(|(i, c)| (i as f64 * bin_us, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_node::{Platform, Resolution};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn latency_node() -> Node {
        let mut node = Platform::paper()
            .session()
            .resolution(Resolution::Latency)
            .build()
            .into_node();
        // The FTaLaT busy loop keeps the measured core in C0.
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        node.advance_s(0.01);
        node
    }

    fn tool() -> FtaLat {
        FtaLat::new(CpuId::new(0, 0, 0))
    }

    #[test]
    fn random_requests_span_the_figure3_range() {
        let mut node = latency_node();
        let mut rng = SmallRng::seed_from_u64(11);
        let samples = tool().campaign(
            &mut node,
            PState::from_mhz(1200),
            PState::from_mhz(1300),
            DelayRegime::Random {
                min_us: 3,
                max_us: 991,
            },
            120,
            &mut rng,
        );
        assert!(samples.len() >= 110);
        let lats: Vec<f64> = samples.iter().map(|s| s.latency_us).collect();
        let lo = lats.iter().cloned().fold(f64::MAX, f64::min);
        let hi = lats.iter().cloned().fold(0.0, f64::max);
        assert!(lo < 80.0, "min {lo}");
        assert!(hi > 420.0, "max {hi}");
        assert!(hi < 560.0, "max {hi}");
    }

    #[test]
    fn immediate_rerequest_costs_a_full_period() {
        let mut node = latency_node();
        let mut rng = SmallRng::seed_from_u64(12);
        let samples = tool().campaign(
            &mut node,
            PState::from_mhz(1200),
            PState::from_mhz(1300),
            DelayRegime::Immediate,
            40,
            &mut rng,
        );
        let lats: Vec<f64> = samples.iter().map(|s| s.latency_us).collect();
        let (mean, _, _) = stats(&lats);
        assert!((440.0..=540.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn delay_400us_lands_near_100us() {
        let mut node = latency_node();
        let mut rng = SmallRng::seed_from_u64(13);
        let samples = tool().campaign(
            &mut node,
            PState::from_mhz(1200),
            PState::from_mhz(1300),
            DelayRegime::AfterUs(400),
            40,
            &mut rng,
        );
        let lats: Vec<f64> = samples.iter().map(|s| s.latency_us).collect();
        let (mean, _, _) = stats(&lats);
        assert!((60.0..=150.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn delay_500us_is_bimodal() {
        // Paper: "If the delay is in the order of 500 µs, the transition
        // latencies can be split into two different classes".
        let mut node = latency_node();
        let mut rng = SmallRng::seed_from_u64(14);
        let samples = tool().campaign(
            &mut node,
            PState::from_mhz(1200),
            PState::from_mhz(1300),
            // ~460 µs: together with the detection lag (~21 µs switch plus
            // up to one 20 µs verify window) the re-request straddles the
            // next opportunity boundary, splitting the samples in two.
            DelayRegime::AfterUs(460),
            80,
            &mut rng,
        );
        let lats: Vec<f64> = samples.iter().map(|s| s.latency_us).collect();
        let fast = lats.iter().filter(|l| **l < 150.0).count();
        let slow = lats.iter().filter(|l| **l > 350.0).count();
        assert!(fast >= 5, "fast class {fast}");
        assert!(slow >= 5, "slow class {slow}");
        assert!(
            fast + slow >= lats.len() * 8 / 10,
            "distribution must be bimodal: {fast}+{slow}/{}",
            lats.len()
        );
    }

    #[test]
    fn histogram_buckets_cover_all_samples() {
        let h = histogram(&[10.0, 22.0, 510.0, 523.9], 25.0, 525.0);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
    }
}
