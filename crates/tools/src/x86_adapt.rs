//! An `x86_adapt`-style knob interface.
//!
//! The paper's group maintains `x86_adapt`, a library exposing low-level
//! power-management controls (uncore ratio limits, EPB, turbo disengage) as
//! named, range-checked knobs instead of raw MSR pokes. This module
//! reproduces that interface against the simulated node — including the
//! knob the paper wished were documented: the uncore ratio limit of
//! Section II-D ("it can be specified via the MSR `UNCORE_RATIO_LIMIT`.
//! However, neither the actual number of this MSR nor the encoded
//! information is available").

use hsw_msr::{addresses as msra, fields};
use hsw_node::{CpuId, Node};

/// The knobs this build knows (named as libx86_adapt names them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Minimum uncore ratio (×100 MHz), package scope.
    UncoreMinRatio,
    /// Maximum uncore ratio (×100 MHz), package scope.
    UncoreMaxRatio,
    /// The 4-bit EPB field, per hardware thread.
    EnergyPerfBias,
    /// Turbo disengage (1 = turbo off), package scope.
    TurboDisable,
}

impl Knob {
    pub fn name(self) -> &'static str {
        match self {
            Knob::UncoreMinRatio => "Intel_UNCORE_MIN_RATIO",
            Knob::UncoreMaxRatio => "Intel_UNCORE_MAX_RATIO",
            Knob::EnergyPerfBias => "Intel_ENERGY_PERF_BIAS",
            Knob::TurboDisable => "Intel_TURBO_DISABLE",
        }
    }

    /// Valid value range (inclusive).
    pub fn range(self) -> (u64, u64) {
        match self {
            Knob::UncoreMinRatio | Knob::UncoreMaxRatio => (12, 30), // 1.2–3.0 GHz
            Knob::EnergyPerfBias => (0, 15),
            Knob::TurboDisable => (0, 1),
        }
    }
}

/// Knob-access errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnobError {
    OutOfRange { knob: &'static str, value: u64 },
    Hardware(String),
}

/// Read a knob on the given socket (thread 0 for thread-scope knobs).
pub fn get(node: &Node, socket: usize, knob: Knob) -> Result<u64, KnobError> {
    let cpu = CpuId::new(socket, 0, 0);
    let rd = |addr| {
        node.rdmsr(cpu, addr)
            .map_err(|e| KnobError::Hardware(e.to_string()))
    };
    match knob {
        Knob::UncoreMinRatio => {
            Ok(fields::decode_uncore_ratio_limit(rd(msra::MSR_UNCORE_RATIO_LIMIT)?).0 as u64)
        }
        Knob::UncoreMaxRatio => {
            Ok(fields::decode_uncore_ratio_limit(rd(msra::MSR_UNCORE_RATIO_LIMIT)?).1 as u64)
        }
        Knob::EnergyPerfBias => Ok(rd(msra::IA32_ENERGY_PERF_BIAS)? & 0xF),
        Knob::TurboDisable => Ok(u64::from(
            rd(msra::IA32_MISC_ENABLE)? & msra::MISC_ENABLE_TURBO_DISABLE_BIT != 0,
        )),
    }
}

/// Set a knob on the given socket.
pub fn set(node: &mut Node, socket: usize, knob: Knob, value: u64) -> Result<(), KnobError> {
    let (lo, hi) = knob.range();
    if !(lo..=hi).contains(&value) {
        return Err(KnobError::OutOfRange {
            knob: knob.name(),
            value,
        });
    }
    let cpu = CpuId::new(socket, 0, 0);
    let hw = |e: hsw_msr::MsrError| KnobError::Hardware(e.to_string());
    match knob {
        Knob::UncoreMinRatio | Knob::UncoreMaxRatio => {
            let cur = node.rdmsr(cpu, msra::MSR_UNCORE_RATIO_LIMIT).map_err(hw)?;
            let (mut min_r, mut max_r) = fields::decode_uncore_ratio_limit(cur);
            if cur == 0 {
                // Unprogrammed: initialize to the hardware bounds.
                min_r = 12;
                max_r = 30;
            }
            match knob {
                Knob::UncoreMinRatio => min_r = value as u8,
                _ => max_r = value as u8,
            }
            if min_r > max_r {
                return Err(KnobError::OutOfRange {
                    knob: knob.name(),
                    value,
                });
            }
            node.wrmsr(
                cpu,
                msra::MSR_UNCORE_RATIO_LIMIT,
                fields::encode_uncore_ratio_limit(min_r, max_r),
            )
            .map_err(hw)
        }
        Knob::EnergyPerfBias => {
            // Thread scope: program every hardware thread of the socket.
            let spec = node.config().spec.sku.clone();
            for c in 0..spec.cores {
                for t in 0..spec.threads_per_core {
                    node.wrmsr(CpuId::new(socket, c, t), msra::IA32_ENERGY_PERF_BIAS, value)
                        .map_err(hw)?;
                }
            }
            Ok(())
        }
        Knob::TurboDisable => {
            // MISC_ENABLE is modeled package-wide; route through the node's
            // canonical toggle.
            node.set_turbo(value == 0);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_hwspec::freq::FreqSetting;
    use hsw_node::Platform;
    use hsw_tools_test_helpers::uncore_ghz_of;

    // Local measurement helper shared by the knob tests.
    mod hsw_tools_test_helpers {
        use super::*;
        use crate::perfctr::PerfCtr;

        pub fn uncore_ghz_of(node: &mut Node, socket: usize) -> f64 {
            let pc = PerfCtr::new(node, CpuId::new(socket, 0, 0));
            let a = pc.sample(node);
            node.advance_s(0.4);
            let b = pc.sample(node);
            pc.derive(&a, &b).uncore_ghz
        }
    }

    fn busy_node() -> Node {
        let mut node = Platform::paper().session().build().into_node();
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        node.set_setting_all(FreqSetting::from_mhz(2500));
        node.advance_s(0.3);
        node
    }

    #[test]
    fn uncore_max_ratio_caps_the_ufs_grant() {
        // Pin the uncore *below* the Table III schedule value (2.2 GHz at
        // the 2.5 GHz setting) and observe the clamp.
        let mut node = busy_node();
        set(&mut node, 0, Knob::UncoreMaxRatio, 15).unwrap(); // 1.5 GHz
        node.advance_s(0.2);
        let u = uncore_ghz_of(&mut node, 0);
        assert!((u - 1.5).abs() < 0.08, "uncore {u:.2}");
    }

    #[test]
    fn uncore_min_ratio_raises_the_floor() {
        let mut node = busy_node();
        set(&mut node, 0, Knob::UncoreMinRatio, 28).unwrap(); // ≥2.8 GHz
        node.advance_s(0.2);
        let u = uncore_ghz_of(&mut node, 0);
        assert!(u > 2.7, "uncore {u:.2}");
    }

    #[test]
    fn knob_round_trips_and_ranges() {
        let mut node = busy_node();
        set(&mut node, 0, Knob::UncoreMaxRatio, 20).unwrap();
        assert_eq!(get(&node, 0, Knob::UncoreMaxRatio).unwrap(), 20);
        assert_eq!(get(&node, 0, Knob::UncoreMinRatio).unwrap(), 12);
        assert_eq!(
            set(&mut node, 0, Knob::UncoreMaxRatio, 35),
            Err(KnobError::OutOfRange {
                knob: "Intel_UNCORE_MAX_RATIO",
                value: 35
            })
        );
        // min > max rejected.
        assert!(set(&mut node, 0, Knob::UncoreMinRatio, 25).is_err());
    }

    #[test]
    fn epb_knob_programs_all_threads() {
        let mut node = busy_node();
        set(&mut node, 0, Knob::EnergyPerfBias, 0).unwrap();
        assert_eq!(get(&node, 0, Knob::EnergyPerfBias).unwrap(), 0);
        // EPB=performance through the knob pins the uncore at 3.0 GHz
        // (Table III footnote) — end to end through x86_adapt.
        node.advance_s(0.2);
        let u = uncore_ghz_of(&mut node, 0);
        assert!((u - 3.0).abs() < 0.08, "uncore {u:.2}");
    }

    #[test]
    fn turbo_disable_knob_round_trips() {
        let mut node = busy_node();
        assert_eq!(get(&node, 0, Knob::TurboDisable).unwrap(), 0);
        set(&mut node, 0, Knob::TurboDisable, 1).unwrap();
        assert_eq!(get(&node, 0, Knob::TurboDisable).unwrap(), 1);
    }
}
