//! C-state wake-up latency measurement (paper Section VI-B, Figures 5/6;
//! tooling of Schöne et al. \[27\]).
//!
//! The real tool arms a wakee core in a chosen idle state and lets a waker
//! core write to a shared cache line; the time from store to the wakee's
//! first instruction is the wake-up latency. Our simulated node resolves
//! idle states at tick granularity, so the sub-µs event itself is computed
//! from the calibrated latency model (`hsw-cstates`) — but the *scenario*
//! is realized on the node (waker placement, the third "keep-awake" core,
//! package-state verification), and the tool adds the measurement jitter a
//! cache-line-handshake method exhibits.

use hsw_cstates::{wake_latency_us, CoreCState, WakeScenario};
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::CpuGeneration;
use hsw_node::{CpuId, Node};
use rand::Rng;

/// One point of a Figure 5/6 series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CStateLatencyPoint {
    pub freq_ghz: f64,
    pub state: CoreCState,
    pub scenario: WakeScenario,
    pub latency_us: f64,
}

/// Configure the node for a scenario and measure the wake-up latency of
/// `state` at the wakee's current frequency, averaged over `iterations`
/// handshakes.
///
/// Placement follows the paper: waker on socket 0 core 0; wakee on socket 0
/// core 1 (local) or socket 1 core 0 (remote); for remote-active a third
/// core on the wakee's socket spins to keep the package out of PC3/PC6.
pub fn measure_wake_latency_us<R: Rng>(
    node: &mut Node,
    generation: CpuGeneration,
    state: CoreCState,
    scenario: WakeScenario,
    freq: FreqSetting,
    iterations: usize,
    rng: &mut R,
) -> CStateLatencyPoint {
    node.idle_all();
    let busy = WorkloadProfile::busy_wait();
    // Waker always runs on socket 0.
    node.assign(CpuId::new(0, 0, 0), Some(busy.clone()));
    let wakee_socket = match scenario {
        WakeScenario::Local => 0,
        WakeScenario::RemoteActive | WakeScenario::RemoteIdle => 1,
    };
    if scenario == WakeScenario::RemoteActive {
        // A third core prevents the remote package c-state.
        node.assign(CpuId::new(1, 2, 0), Some(busy.clone()));
    }
    node.set_setting_all(freq);
    node.advance_s(0.01);

    // Scenario sanity: the package state of the wakee's socket must match
    // what the experiment assumes.
    let pkg = node.sockets()[wakee_socket].package_cstate();
    match scenario {
        WakeScenario::Local => debug_assert_eq!(pkg.name(), "PC0"),
        WakeScenario::RemoteActive => debug_assert_eq!(pkg.name(), "PC0"),
        WakeScenario::RemoteIdle => debug_assert_eq!(pkg.name(), "PC2"),
    }

    let f_ghz = match freq {
        FreqSetting::Turbo => node.config().spec.sku.freq.turbo_mhz(1) as f64 / 1000.0,
        FreqSetting::Fixed(p) => p.ghz(),
    };
    let ideal = wake_latency_us(generation, state, scenario, f_ghz);
    // Cache-line handshake measurement noise: sub-100 ns per sample,
    // averaged over the campaign.
    let mut sum = 0.0;
    for _ in 0..iterations.max(1) {
        sum += ideal + rng.gen_range(-0.08..=0.08);
        node.advance_us(50);
    }
    CStateLatencyPoint {
        freq_ghz: f_ghz,
        state,
        scenario,
        latency_us: sum / iterations.max(1) as f64,
    }
}

/// Sweep a full Figure 5/6 series: one scenario and state across the
/// selectable frequency range.
pub fn sweep_series<R: Rng>(
    node: &mut Node,
    generation: CpuGeneration,
    state: CoreCState,
    scenario: WakeScenario,
    iterations: usize,
    rng: &mut R,
) -> Vec<CStateLatencyPoint> {
    let settings: Vec<FreqSetting> = node
        .config()
        .spec
        .sku
        .freq
        .selectable_pstates()
        .into_iter()
        .rev() // low to high frequency, as plotted
        .map(FreqSetting::Fixed)
        .collect();
    settings
        .into_iter()
        .map(|f| measure_wake_latency_us(node, generation, state, scenario, f, iterations, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_node::Platform;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const HSW: CpuGeneration = CpuGeneration::HaswellEp;

    fn node() -> Node {
        Platform::paper().session().build().into_node()
    }

    #[test]
    fn measured_latencies_track_the_model_within_noise() {
        let mut n = node();
        let mut rng = SmallRng::seed_from_u64(5);
        for state in [CoreCState::C3, CoreCState::C6] {
            for scen in WakeScenario::ALL {
                let p = measure_wake_latency_us(
                    &mut n,
                    HSW,
                    state,
                    scen,
                    FreqSetting::from_mhz(2000),
                    25,
                    &mut rng,
                );
                let ideal = wake_latency_us(HSW, state, scen, 2.0);
                assert!(
                    (p.latency_us - ideal).abs() < 0.1,
                    "{state:?}/{scen:?}: {} vs {ideal}",
                    p.latency_us
                );
            }
        }
    }

    #[test]
    fn series_covers_the_selectable_range() {
        let mut n = node();
        let mut rng = SmallRng::seed_from_u64(6);
        let series = sweep_series(
            &mut n,
            HSW,
            CoreCState::C6,
            WakeScenario::Local,
            5,
            &mut rng,
        );
        assert_eq!(series.len(), 14); // 1.2 … 2.5 GHz
        assert!((series.first().unwrap().freq_ghz - 1.2).abs() < 1e-9);
        assert!((series.last().unwrap().freq_ghz - 2.5).abs() < 1e-9);
        // C6 latency falls with frequency (Figure 6 shape).
        assert!(series.first().unwrap().latency_us > series.last().unwrap().latency_us + 3.0);
    }

    #[test]
    fn remote_idle_scenario_reaches_a_package_idle_state() {
        // The debug assertion inside the measurement verifies the package
        // state; this test exercises that path.
        let mut n = node();
        let mut rng = SmallRng::seed_from_u64(7);
        let p = measure_wake_latency_us(
            &mut n,
            HSW,
            CoreCState::C6,
            WakeScenario::RemoteIdle,
            FreqSetting::from_mhz(1200),
            5,
            &mut rng,
        );
        assert!(p.latency_us > 15.0);
    }
}
