//! # hsw-tools — re-implementations of the paper's measurement tools
//!
//! Each tool interacts with the simulated node through the same interfaces
//! the real tools use on real hardware (MSR reads/writes, cycle counters,
//! the AC power meter):
//!
//! * [`perfctr`]: LIKWID-style counter sampling — TSC/APERF/MPERF, fixed
//!   counters, the U-box uncore clock counter (`UNCORE_CLOCK:UBOXFIX`,
//!   paper Section V-A footnote 3) and RAPL energy deltas.
//! * [`ftalat`]: the modified FTaLaT of paper Section VI-A — frequency
//!   verification via hardware cycle counters (not `scaling_cur_freq`),
//!   1000-sample campaigns, controlled delay after the previous transition.
//! * [`cstate_lat`]: the waker/wakee idle-latency tool of \[27\] — local,
//!   remote-active and remote-idle scenarios across the frequency range.
//! * [`stress`]: the Table V harness — run a stress test, record the meter,
//!   extract the 1-minute maximum-average window and the measured core
//!   frequency.

pub mod cpufreq;
pub mod cstate_lat;
pub mod ftalat;
pub mod groups;
pub mod perfctr;
pub mod stress;
pub mod x86_adapt;

pub use cpufreq::CpuFreq;
pub use cstate_lat::{measure_wake_latency_us, CStateLatencyPoint};
pub use ftalat::{DelayRegime, FtaLat, LatencySample};
pub use groups::{measure_group, EventGroup, GroupReport};
pub use perfctr::{CounterSample, Derived, PerfCtr};
pub use stress::{assign_stress_load, measure_stress, run_stress, StressResult};
pub use x86_adapt::{Knob, KnobError};
