//! The Table V stress-test harness (paper Section VIII).
//!
//! Runs a stress test under a given frequency setting / EPB / turbo /
//! Hyper-Threading configuration, records the LMG450 AC trace, and extracts
//! the 1-minute interval with the highest average power — the paper's
//! methodology, which "favors LINPACK and mprime, as their power
//! consumption is not as constant over time". The measured core frequency
//! over the same interval comes from APERF/MPERF sampling.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_node::{CpuId, Node};

use crate::perfctr::{median_of, PerfCtr};

/// Result of one stress run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressResult {
    /// Highest 1-minute average AC power (W).
    pub max_window_power_w: f64,
    /// Median effective core frequency during the run (GHz).
    pub core_ghz: f64,
    /// Standard deviation of the AC samples (constancy metric — the paper
    /// stresses that FIRESTARTER is "extremely constant").
    pub power_stddev_w: f64,
}

/// Sliding-window maximum average.
fn max_window_avg(samples: &[f64], window: usize) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let window = window.clamp(1, samples.len());
    let mut sum: f64 = samples[..window].iter().sum();
    let mut best = sum;
    for i in window..samples.len() {
        sum += samples[i] - samples[i - window];
        best = best.max(sum);
    }
    best / window as f64
}

/// Assign `profile` to every core of both sockets — the configuration-
/// independent half of a stress run, shareable across Table V cells of the
/// same benchmark via warm-start snapshots. `ht` enables two threads per
/// core (Table V: Hyper-Threading not active).
pub fn assign_stress_load(node: &mut Node, profile: &WorkloadProfile, ht: bool) {
    let threads = if ht { 2 } else { 1 };
    let cores = node.config().spec.sku.cores;
    for s in 0..node.config().spec.sockets {
        node.run_on_socket(s, profile, cores, threads);
    }
}

/// The per-configuration half of a stress run: apply the frequency setting
/// / EPB / turbo knobs to a node whose workload is already assigned (see
/// [`assign_stress_load`]), settle, and measure. `run_s` is the recorded
/// duration; `window_s` the extraction window (60 s in the paper; shorter
/// in tests).
pub fn measure_stress(
    node: &mut Node,
    setting: FreqSetting,
    epb: EpbClass,
    turbo: bool,
    run_s: f64,
    window_s: f64,
) -> StressResult {
    node.set_epb_all(epb);
    node.set_turbo(turbo);
    node.set_setting_all(setting);
    node.advance_s(0.3); // settle transients

    // Interleave meter recording with 1 s frequency sampling.
    let pc = PerfCtr::new(node, CpuId::new(0, 0, 0));
    let mut ac = Vec::new();
    let mut freq_samples = Vec::new();
    let mut elapsed = 0.0;
    let mut prev = pc.sample(node);
    while elapsed < run_s {
        let chunk = 1.0_f64.min(run_s - elapsed);
        ac.extend(node.record_ac_trace(chunk));
        let cur = pc.sample(node);
        freq_samples.push(pc.derive(&prev, &cur));
        prev = cur;
        elapsed += chunk;
    }

    let samples_per_s = 20.0; // LMG450 rate
    let window = (window_s * samples_per_s).round() as usize;
    let mean = ac.iter().sum::<f64>() / ac.len() as f64;
    let var = ac.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / ac.len() as f64;
    StressResult {
        max_window_power_w: max_window_avg(&ac, window),
        core_ghz: median_of(&freq_samples, |d| d.core_ghz),
        power_stddev_w: var.sqrt(),
    }
}

/// Run `profile` on every core of both sockets and measure — the one-shot
/// composition of [`assign_stress_load`] and [`measure_stress`].
#[allow(clippy::too_many_arguments)]
pub fn run_stress(
    node: &mut Node,
    profile: &WorkloadProfile,
    setting: FreqSetting,
    epb: EpbClass,
    turbo: bool,
    ht: bool,
    run_s: f64,
    window_s: f64,
) -> StressResult {
    assign_stress_load(node, profile, ht);
    measure_stress(node, setting, epb, turbo, run_s, window_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_node::{Platform, Resolution};

    fn node() -> Node {
        Platform::paper()
            .session()
            .resolution(Resolution::Coarse)
            .build()
            .into_node()
    }

    #[test]
    fn max_window_avg_finds_the_hot_interval() {
        let mut v = vec![100.0; 100];
        for x in v.iter_mut().skip(40).take(20) {
            *x = 200.0;
        }
        assert!((max_window_avg(&v, 20) - 200.0).abs() < 1e-9);
        assert!(max_window_avg(&v, 50) < 200.0);
    }

    #[test]
    fn firestarter_beats_linpack_in_max_window_power() {
        // Table V: FIRESTARTER 560.4 W vs LINPACK 547.9 W (balanced EPB,
        // 2.5 GHz setting, HT off).
        let mut n = node();
        let fs = run_stress(
            &mut n,
            &WorkloadProfile::firestarter(),
            FreqSetting::from_mhz(2500),
            EpbClass::Balanced,
            true,
            false,
            8.0,
            4.0,
        );
        let mut n = node();
        let lp = run_stress(
            &mut n,
            &WorkloadProfile::linpack(),
            FreqSetting::from_mhz(2500),
            EpbClass::Balanced,
            true,
            false,
            8.0,
            4.0,
        );
        assert!(
            fs.max_window_power_w > lp.max_window_power_w,
            "FS {:.1} W vs LINPACK {:.1} W",
            fs.max_window_power_w,
            lp.max_window_power_w
        );
        // LINPACK runs at the lowest frequency of the stress tests.
        assert!(lp.core_ghz < fs.core_ghz);
    }

    #[test]
    fn firestarter_power_is_the_most_constant() {
        let mut n = node();
        let fs = run_stress(
            &mut n,
            &WorkloadProfile::firestarter(),
            FreqSetting::from_mhz(2500),
            EpbClass::Balanced,
            true,
            false,
            6.0,
            3.0,
        );
        let mut n = node();
        let mp = run_stress(
            &mut n,
            &WorkloadProfile::mprime(),
            FreqSetting::from_mhz(2500),
            EpbClass::Balanced,
            true,
            false,
            6.0,
            3.0,
        );
        assert!(
            fs.power_stddev_w < mp.power_stddev_w,
            "FS σ={:.2} vs mprime σ={:.2}",
            fs.power_stddev_w,
            mp.power_stddev_w
        );
    }

    #[test]
    fn mprime_exceeds_nominal_frequency_under_turbo() {
        // Table V: mprime's measured frequency is 2.60–2.62 GHz at the
        // Turbo setting — above the 2.5 GHz nominal.
        let mut n = node();
        let mp = run_stress(
            &mut n,
            &WorkloadProfile::mprime(),
            FreqSetting::Turbo,
            EpbClass::Balanced,
            true,
            false,
            6.0,
            3.0,
        );
        assert!(mp.core_ghz > 2.5, "mprime at {:.3} GHz", mp.core_ghz);
    }
}
