//! LIKWID-style performance groups (`likwid-perfctr -g <GROUP>`).
//!
//! The paper drives its measurements through LIKWID's named event groups
//! (e.g. the `UNCORE_CLOCK:UBOXFIX` event of Section V-A footnote 3). This
//! module reproduces that workflow: a group names a set of events plus
//! derived metrics; measuring a group programs/reads the counters over a
//! window and renders the familiar metric table.

use hsw_hwspec::calib;
use hsw_msr::addresses as msra;
use hsw_node::{CpuId, Node};

/// The groups the survey uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventGroup {
    /// RAPL package/DRAM power and energy (likwid `ENERGY`).
    Energy,
    /// Core effective clock, CPI (likwid `CLOCK`).
    Clock,
    /// Uncore clock via the U-box fixed counter (likwid `UNCORE_CLOCK`).
    UncoreClock,
    /// Core and package idle-state residencies (likwid `CSTATES`-style).
    CStates,
}

impl EventGroup {
    pub fn name(self) -> &'static str {
        match self {
            EventGroup::Energy => "ENERGY",
            EventGroup::Clock => "CLOCK",
            EventGroup::UncoreClock => "UNCORE_CLOCK",
            EventGroup::CStates => "CSTATES",
        }
    }
}

/// A measured group: derived metrics in likwid's (name, value, unit) form.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    pub group: &'static str,
    pub cpu: CpuId,
    pub duration_s: f64,
    pub metrics: Vec<(String, f64, &'static str)>,
}

impl GroupReport {
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, v, _)| *v)
    }
}

impl std::fmt::Display for GroupReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Group {} | S{}C{}T{} | {:.2} s",
            self.group, self.cpu.socket, self.cpu.core, self.cpu.thread, self.duration_s
        )?;
        for (name, value, unit) in &self.metrics {
            writeln!(f, "| {name:<28} | {value:>12.4} {unit:<6} |")?;
        }
        Ok(())
    }
}

/// Measure one group over `duration_s` on the given hardware thread.
pub fn measure_group(
    node: &mut Node,
    cpu: CpuId,
    group: EventGroup,
    duration_s: f64,
) -> GroupReport {
    let rd = |node: &Node, addr: u32| node.rdmsr(cpu, addr).unwrap_or(0);
    let before: Vec<u64> = EVENTS.iter().map(|a| rd(node, *a)).collect();
    node.advance_s(duration_s);
    let after: Vec<u64> = EVENTS.iter().map(|a| rd(node, *a)).collect();
    let d = |i: usize| after[i].wrapping_sub(before[i]) as f64;

    let dt = duration_s;
    let nominal_ghz = node.config().spec.sku.freq.base_mhz as f64 / 1000.0;
    let mut metrics = Vec::new();
    match group {
        EventGroup::Energy => {
            let pkg_j = d(IDX_PKG) * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
            let dram_j = d(IDX_DRAM) * calib::DRAM_ENERGY_UNIT_UJ * 1e-6;
            metrics.push(("Energy PKG".to_string(), pkg_j, "J"));
            metrics.push(("Power PKG".to_string(), pkg_j / dt, "W"));
            metrics.push(("Energy DRAM".to_string(), dram_j, "J"));
            metrics.push(("Power DRAM".to_string(), dram_j / dt, "W"));
        }
        EventGroup::Clock => {
            let aperf = d(IDX_APERF);
            let mperf = d(IDX_MPERF).max(1.0);
            let instr = d(IDX_INSTR).max(1.0);
            let cycles = d(IDX_CYCLES);
            metrics.push((
                "Clock [GHz]".to_string(),
                aperf / mperf * nominal_ghz,
                "GHz",
            ));
            metrics.push(("CPI".to_string(), cycles / instr, ""));
            metrics.push(("Instructions".to_string(), instr, ""));
        }
        EventGroup::UncoreClock => {
            metrics.push((
                "Uncore Clock [GHz]".to_string(),
                d(IDX_UCLK) / (dt * 1e9),
                "GHz",
            ));
        }
        EventGroup::CStates => {
            let wall_ref = dt * nominal_ghz * 1e9;
            metrics.push((
                "Core C3 residency".to_string(),
                d(IDX_C3) / wall_ref * 100.0,
                "%",
            ));
            metrics.push((
                "Core C6 residency".to_string(),
                d(IDX_C6) / wall_ref * 100.0,
                "%",
            ));
            metrics.push((
                "Pkg C6 residency".to_string(),
                d(IDX_PC6) / wall_ref * 100.0,
                "%",
            ));
        }
    }
    GroupReport {
        group: group.name(),
        cpu,
        duration_s,
        metrics,
    }
}

const EVENTS: [u32; 10] = [
    msra::MSR_PKG_ENERGY_STATUS,
    msra::MSR_DRAM_ENERGY_STATUS,
    msra::IA32_APERF,
    msra::IA32_MPERF,
    msra::IA32_FIXED_CTR0_INST_RETIRED,
    msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED,
    msra::MSR_U_PMON_UCLK_FIXED_CTR,
    msra::MSR_CORE_C3_RESIDENCY,
    msra::MSR_CORE_C6_RESIDENCY,
    msra::MSR_PKG_C6_RESIDENCY,
];
const IDX_PKG: usize = 0;
const IDX_DRAM: usize = 1;
const IDX_APERF: usize = 2;
const IDX_MPERF: usize = 3;
const IDX_INSTR: usize = 4;
const IDX_CYCLES: usize = 5;
const IDX_UCLK: usize = 6;
const IDX_C3: usize = 7;
const IDX_C6: usize = 8;
const IDX_PC6: usize = 9;

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_hwspec::freq::FreqSetting;
    use hsw_node::Platform;

    #[test]
    fn energy_group_reads_tdp_under_firestarter() {
        let mut node = Platform::paper().session().build().into_node();
        node.run_on_socket(0, &WorkloadProfile::firestarter(), 12, 2);
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.6);
        let r = measure_group(&mut node, CpuId::new(0, 0, 0), EventGroup::Energy, 1.0);
        let pkg = r.metric("Power PKG").unwrap();
        assert!((pkg - 120.0).abs() < 5.0, "pkg = {pkg:.1}");
        assert!(r.metric("Power DRAM").unwrap() > 5.0);
    }

    #[test]
    fn clock_group_shows_throttled_frequency_and_cpi() {
        let mut node = Platform::paper().session().build().into_node();
        node.run_on_socket(0, &WorkloadProfile::firestarter(), 12, 2);
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.6);
        let r = measure_group(&mut node, CpuId::new(0, 0, 0), EventGroup::Clock, 1.0);
        let ghz = r.metric("Clock [GHz]").unwrap();
        assert!((2.2..2.4).contains(&ghz), "clock {ghz:.3}");
        // Per-thread IPC ≈ 1.55 → CPI ≈ 0.65.
        let cpi = r.metric("CPI").unwrap();
        assert!((0.55..0.75).contains(&cpi), "cpi {cpi:.3}");
    }

    #[test]
    fn uncore_group_reproduces_the_table3_cell() {
        let mut node = Platform::paper().session().build().into_node();
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        node.set_setting_all(FreqSetting::from_mhz(2500));
        node.advance_s(0.3);
        let r = measure_group(&mut node, CpuId::new(0, 0, 0), EventGroup::UncoreClock, 1.0);
        let u = r.metric("Uncore Clock [GHz]").unwrap();
        assert!((u - 2.2).abs() < 0.08, "uncore {u:.3}");
    }

    #[test]
    fn cstates_group_shows_deep_idle() {
        let mut node = Platform::paper().session().build().into_node();
        node.idle_all();
        node.advance_s(0.3);
        let r = measure_group(&mut node, CpuId::new(0, 0, 0), EventGroup::CStates, 1.0);
        assert!(r.metric("Core C6 residency").unwrap() > 95.0);
        assert!(r.metric("Pkg C6 residency").unwrap() > 95.0);
    }

    #[test]
    fn report_renders_likwid_style() {
        let mut node = Platform::paper().session().build().into_node();
        node.idle_all();
        node.advance_s(0.2);
        let r = measure_group(&mut node, CpuId::new(0, 0, 0), EventGroup::Energy, 0.5);
        let text = r.to_string();
        assert!(text.contains("Group ENERGY"));
        assert!(text.contains("Power PKG"));
    }
}
