//! # hsw-fleet — manufacturing variation for fleet-scale simulation
//!
//! The paper surveys one chip; Schuchart et al. ("The Shift from Processor
//! Power Consumption to Performance Variations") show what happens when the
//! same SKU is deployed by the hundreds: under a package power cap,
//! nominally identical processors converge in *power* and diverge in
//! *performance*, because the cap turns chip-to-chip electrical spread into
//! frequency spread. Hofmann et al. (arXiv:1702.07554) quantify the
//! underlying per-chip variation.
//!
//! This crate is the variation layer over `hsw-hwspec`: a documented
//! distribution model ([`VariationModel`]), the per-chip draw
//! ([`ChipVariation`]) sampled through the keyed [`DomainNoise`] stream
//! (`domain::FLEET`), the spec transformation that turns a nominal
//! [`NodeSpec`](hsw_hwspec::NodeSpec) into one concrete manufactured unit,
//! and the NaN-free spread statistics ([`Spread`]) the fleet experiments
//! report. The fleet *executor* — golden-node warmup plus per-node snapshot
//! forking — lives in `haswell_survey::survey` next to the other sweep
//! executors; this crate holds everything that is a property of a chip
//! rather than of the harness.
//!
//! Determinism contract: a chip's variation is a pure function of its node
//! seed (itself `mix_seed`-derived from the experiment base and the node
//! id), never of pool width, `--jobs`, or sampling order — so a fleet is
//! byte-identical however it is scheduled.

pub mod stats;
pub mod variation;

pub use stats::Spread;
pub use variation::{ChipVariation, VariationModel};

// Re-exported so executor code can key fleet draws without importing
// hsw-hwspec directly.
pub use hsw_hwspec::clock::{domain, DomainNoise};
