//! Per-chip manufacturing variation: the distribution model and the draw.
//!
//! Four parameters carry the chip-to-chip spread that matters for the
//! Schuchart/Hofmann phenomenology:
//!
//! * **Leakage scale** — process corners spread static power by tens of
//!   percent between the best and worst die of a SKU (Hofmann et al.,
//!   arXiv:1702.07554, report ~10 % package-power spread across 100+
//!   chips, dominated by leakage). Modeled log-uniform so the scale is
//!   symmetric in ratio: `exp(U[-ln s, +ln s])`.
//! * **Voltage-corner offset** — the fused V/f curve of a unit sits a few
//!   tens of millivolts above or below nominal. Modeled as a uniform shift
//!   applied to the whole core curve (`vmin` *and* `v_at_max`), i.e. a
//!   process-corner translation rather than a floor-only tweak, so the
//!   offset is felt at operating frequencies too (P ∝ V²).
//! * **Turbo-bin draw** — speed binning quantizes chip quality into
//!   ±1 × 100 MHz on the fused turbo tables (regular and AVX alike); the
//!   middle of the distribution ships the nominal bins.
//! * **RAPL-unit trim** — the fused energy-meter calibration is accurate
//!   to a couple of percent per unit (paper Section IV establishes the
//!   measured-RAPL accuracy band); since tools convert counts with the
//!   nominal datasheet unit, a trim shows up as a gain on reported power
//!   and on the PL1 enforcement alike.
//!
//! All draws come from `DomainNoise::new(node_seed, domain::FLEET)` at
//! t = 0 — one draw per parameter, keyed, so a chip's identity is a pure
//! function of its node seed.

use serde::{Deserialize, Serialize};

use hsw_hwspec::clock::{domain, DomainNoise};
use hsw_hwspec::NodeSpec;

/// Distribution widths for one fleet's manufacturing spread.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Worst-case leakage ratio `s`: leakage scale is log-uniform in
    /// `[1/s, s]`. 1.0 disables leakage spread.
    pub leak_scale_span: f64,
    /// Half-width of the uniform voltage-corner offset in volts, applied
    /// to the whole core V/f curve. 0.0 disables it.
    pub vcorner_span_v: f64,
    /// One turbo bin in MHz (100 on Haswell-EP).
    pub turbo_bin_mhz: u32,
    /// Probability that a chip bins one step *down*; the same probability
    /// applies to one step *up*. 0.0 ships every chip the nominal bins.
    pub turbo_bin_prob: f64,
    /// Half-width of the uniform RAPL trim-gain band (gain in
    /// `[1 − w, 1 + w]`). 0.0 disables metering spread.
    pub rapl_trim_span: f64,
}

impl VariationModel {
    /// The documented fleet model used by the survey's fleet experiments:
    /// 1.5× worst-case leakage ratio, ±50 mV voltage corner, 25 %/25 %
    /// one-bin down/up binning, ±2 % RAPL trim. The electrical widths sit
    /// at the upper end of the published per-chip spreads (Hofmann et al.
    /// report >20 % power variation between extremal units of one SKU);
    /// together they produce roughly ±6 % package power at a fixed
    /// frequency — comfortably wider than one turbo bin once a power cap
    /// converts them into frequency.
    pub fn paper_fleet() -> Self {
        VariationModel {
            leak_scale_span: 1.5,
            vcorner_span_v: 0.050,
            turbo_bin_mhz: 100,
            turbo_bin_prob: 0.25,
            rapl_trim_span: 0.02,
        }
    }

    /// Zero-width distributions: every chip draws exactly the nominal
    /// part. Degenerate on purpose — fleet statistics over an identical
    /// fleet must come out as exactly zero spread.
    pub fn identical() -> Self {
        VariationModel {
            leak_scale_span: 1.0,
            vcorner_span_v: 0.0,
            turbo_bin_mhz: 100,
            turbo_bin_prob: 0.0,
            rapl_trim_span: 0.0,
        }
    }
}

/// One manufactured unit: the multiplicative/additive deviations of this
/// chip from its SKU's nominal spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipVariation {
    /// Static-leakage scale (multiplies `core_leak_w_per_v2`).
    pub leak_scale: f64,
    /// Voltage-corner offset in volts (adds to `vmin` and `v_at_max` of
    /// the core curve).
    pub vcorner_v: f64,
    /// Whole-table turbo-bin shift in MHz (−bin, 0, or +bin).
    pub turbo_offset_mhz: i64,
    /// Energy-meter calibration gain (multiplies `rapl_trim_gain`).
    pub rapl_gain: f64,
}

impl ChipVariation {
    /// The reference chip: exactly the nominal spec.
    pub fn nominal() -> Self {
        ChipVariation {
            leak_scale: 1.0,
            vcorner_v: 0.0,
            turbo_offset_mhz: 0,
            rapl_gain: 1.0,
        }
    }

    /// Draw this chip's variation from its node seed. Pure in
    /// `(model, node_seed)`: the same chip id in the same fleet always
    /// manufactures the same unit, at any pool width and in any order.
    pub fn sample(model: &VariationModel, node_seed: u64) -> Self {
        let noise = DomainNoise::new(node_seed, domain::FLEET);
        let span = model.leak_scale_span.max(1.0);
        let leak_scale = (noise.symmetric(0, 0) * span.ln()).exp();
        let vcorner_v = noise.symmetric(0, 1) * model.vcorner_span_v;
        let u = noise.unit(0, 2);
        let turbo_offset_mhz = if u < model.turbo_bin_prob {
            -(model.turbo_bin_mhz as i64)
        } else if u >= 1.0 - model.turbo_bin_prob {
            model.turbo_bin_mhz as i64
        } else {
            0
        };
        let rapl_gain = 1.0 + noise.symmetric(0, 3) * model.rapl_trim_span;
        ChipVariation {
            leak_scale,
            vcorner_v,
            turbo_offset_mhz,
            rapl_gain,
        }
    }

    /// Manufacture one concrete unit: the nominal node spec with this
    /// chip's deviations applied to every socket. The transformation only
    /// rewrites existing spec fields, so everything downstream (power
    /// model, PCU, RAPL) picks the variation up without fleet-specific
    /// code paths.
    pub fn apply(&self, nominal: &NodeSpec) -> NodeSpec {
        let mut spec = nominal.clone();
        let sku = &mut spec.sku;
        sku.power.core_leak_w_per_v2 *= self.leak_scale;
        sku.power.rapl_trim_gain *= self.rapl_gain;
        sku.core_vf.vmin = (sku.core_vf.vmin + self.vcorner_v).max(0.5);
        sku.core_vf.v_at_max = (sku.core_vf.v_at_max + self.vcorner_v).max(sku.core_vf.vmin);
        let shift = |mhz: u32, floor: u32| -> u32 {
            (mhz as i64 + self.turbo_offset_mhz).max(floor as i64) as u32
        };
        // A shifted bin may never fall to (or below) the sustained base
        // frequency — binning moves the boost window, not the base clock.
        let floor = sku.freq.base_mhz + 100;
        for bin in &mut sku.freq.turbo_by_active_cores_mhz {
            *bin = shift(*bin, floor);
        }
        let avx_floor = sku.freq.avx_base_mhz.unwrap_or(sku.freq.min_mhz);
        for bin in &mut sku.freq.avx_turbo_by_active_cores_mhz {
            *bin = shift(*bin, avx_floor);
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_pure_in_model_and_seed() {
        let m = VariationModel::paper_fleet();
        assert_eq!(ChipVariation::sample(&m, 7), ChipVariation::sample(&m, 7));
        assert_ne!(ChipVariation::sample(&m, 7), ChipVariation::sample(&m, 8));
    }

    #[test]
    fn identical_model_always_draws_the_nominal_chip() {
        let m = VariationModel::identical();
        for seed in 0..256u64 {
            assert_eq!(ChipVariation::sample(&m, seed), ChipVariation::nominal());
        }
    }

    #[test]
    fn draws_stay_inside_the_documented_bands() {
        let m = VariationModel::paper_fleet();
        let mut bins = [0usize; 3];
        for seed in 0..2048u64 {
            let v = ChipVariation::sample(&m, seed);
            assert!((1.0 / 1.5..=1.5).contains(&v.leak_scale), "{v:?}");
            assert!(v.vcorner_v.abs() <= 0.050, "{v:?}");
            assert!((0.98..=1.02).contains(&v.rapl_gain), "{v:?}");
            match v.turbo_offset_mhz {
                -100 => bins[0] += 1,
                0 => bins[1] += 1,
                100 => bins[2] += 1,
                other => panic!("unexpected turbo offset {other}"),
            }
        }
        // ~25/50/25 split.
        assert!(bins.iter().all(|&b| b > 2048 / 8), "binning split {bins:?}");
        assert!(bins[1] > bins[0] && bins[1] > bins[2], "{bins:?}");
    }

    #[test]
    fn nominal_variation_applies_to_an_identical_spec() {
        let nominal = NodeSpec::paper_test_node();
        assert_eq!(ChipVariation::nominal().apply(&nominal), nominal);
    }

    #[test]
    fn applied_spec_moves_the_expected_fields_and_nothing_else() {
        let nominal = NodeSpec::paper_test_node();
        let v = ChipVariation {
            leak_scale: 1.2,
            vcorner_v: 0.02,
            turbo_offset_mhz: -100,
            rapl_gain: 1.01,
        };
        let spec = v.apply(&nominal);
        let (s, n) = (&spec.sku, &nominal.sku);
        assert!((s.power.core_leak_w_per_v2 - n.power.core_leak_w_per_v2 * 1.2).abs() < 1e-12);
        assert!((s.power.rapl_trim_gain - 1.01).abs() < 1e-12);
        assert!((s.core_vf.vmin - (n.core_vf.vmin + 0.02)).abs() < 1e-12);
        assert!((s.core_vf.v_at_max - (n.core_vf.v_at_max + 0.02)).abs() < 1e-12);
        assert_eq!(s.freq.turbo_mhz(1), n.freq.turbo_mhz(1) - 100);
        // Unchanged: dynamic coefficients, base clock, geometry, uncore.
        assert_eq!(s.power.core_dyn_w_per_v2ghz, n.power.core_dyn_w_per_v2ghz);
        assert_eq!(s.freq.base_mhz, n.freq.base_mhz);
        assert_eq!(s.cores, n.cores);
        assert_eq!(s.uncore_vf, n.uncore_vf);
        assert_eq!(spec.sockets, nominal.sockets);
    }

    #[test]
    fn turbo_bins_never_fall_to_the_base_clock() {
        let nominal = NodeSpec::paper_test_node();
        let v = ChipVariation {
            leak_scale: 1.0,
            vcorner_v: 0.0,
            turbo_offset_mhz: -10_000,
            rapl_gain: 1.0,
        };
        let spec = v.apply(&nominal);
        let base = spec.sku.freq.base_mhz;
        for &bin in &spec.sku.freq.turbo_by_active_cores_mhz {
            assert!(bin > base, "bin {bin} vs base {base}");
        }
        for w in spec.sku.freq.turbo_by_active_cores_mhz.windows(2) {
            assert!(w[0] >= w[1], "monotonicity broke: {w:?}");
        }
    }
}
