//! NaN-free spread statistics for fleet-wide observables.
//!
//! Fleet experiments summarize a per-node metric (power, effective
//! frequency, throughput) into its across-the-fleet spread. The degenerate
//! cases matter and are pinned by tests: an empty fleet and a one-node
//! fleet both report a spread of exactly `0.0` — never NaN — so JSON output
//! stays byte-stable and comparisons against thresholds stay meaningful.

use serde::{Deserialize, Serialize};

/// Summary of one metric across a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spread {
    /// Number of samples.
    pub n: usize,
    /// Smallest sample (0.0 when empty).
    pub min: f64,
    /// Largest sample (0.0 when empty).
    pub max: f64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Relative spread `(max − min) / |mean|` (non-negative). Exactly 0.0
    /// for fleets of size ≤ 1, for all-identical samples, and whenever the
    /// mean is 0 — never NaN or infinite.
    pub rel_spread: f64,
}

impl Spread {
    /// Summarize `samples`. Panics only if a sample is NaN (a NaN metric is
    /// an upstream bug, not a fleet property).
    pub fn of(samples: &[f64]) -> Self {
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "fleet metric contains NaN"
        );
        if samples.is_empty() {
            return Spread {
                n: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                rel_spread: 0.0,
            };
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for &s in samples {
            min = min.min(s);
            max = max.max(s);
            sum += s;
        }
        let mean = sum / samples.len() as f64;
        let rel_spread = if samples.len() <= 1 || max == min || mean == 0.0 {
            0.0
        } else {
            (max - min) / mean.abs()
        };
        Spread {
            n: samples.len(),
            min,
            max,
            mean,
            rel_spread,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_fleet_is_all_zeros() {
        let s = Spread::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.rel_spread, 0.0);
    }

    #[test]
    fn single_node_fleet_has_exactly_zero_spread() {
        let s = Spread::of(&[83.7]);
        assert_eq!(s.n, 1);
        assert_eq!(s.min, 83.7);
        assert_eq!(s.max, 83.7);
        assert_eq!(s.mean, 83.7);
        assert_eq!(s.rel_spread, 0.0);
        assert!(!s.rel_spread.is_nan());
    }

    #[test]
    fn identical_samples_have_exactly_zero_spread() {
        let s = Spread::of(&[2.5; 64]);
        assert_eq!(s.rel_spread, 0.0);
        assert_eq!(s.mean, 2.5);
    }

    #[test]
    fn zero_mean_does_not_divide_by_zero() {
        let s = Spread::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.rel_spread, 0.0);
        assert!(!s.rel_spread.is_nan());
    }

    #[test]
    fn ordinary_spread_is_max_minus_min_over_mean() {
        let s = Spread::of(&[90.0, 100.0, 110.0]);
        assert_eq!(s.n, 3);
        assert!((s.rel_spread - 0.2).abs() < 1e-12);
        assert_eq!(s.min, 90.0);
        assert_eq!(s.max, 110.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_samples_are_an_upstream_bug() {
        let _ = Spread::of(&[1.0, f64::NAN]);
    }

    proptest! {
        #[test]
        fn prop_spread_is_finite_and_ordered(
            samples in proptest::collection::vec(-1e6f64..1e6, 0..64)
        ) {
            let s = Spread::of(&samples);
            prop_assert!(s.rel_spread.is_finite());
            prop_assert!(s.min <= s.max || s.n == 0);
            // Summation rounding may push the mean an ulp past the extremes.
            let slack = 1e-9 * (s.max.abs() + s.min.abs() + 1.0);
            prop_assert!(s.n == 0 || (s.min - slack <= s.mean && s.mean <= s.max + slack));
            prop_assert!(s.rel_spread >= 0.0);
        }
    }
}
