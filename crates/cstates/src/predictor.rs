//! Idle-interval prediction, menu-governor style.
//!
//! The governor in [`crate::governor`] needs a *predicted* idle length.
//! Linux's menu governor derives it from the next timer event, scaled by a
//! correction factor learned from how past predictions panned out, with a
//! recent-intervals heuristic for repetitive interrupt patterns. This
//! module implements that predictor so governor behavior can be studied on
//! realistic event traces — including the interaction with the wrong ACPI
//! tables the paper criticizes.

/// Number of recent intervals kept for the repeating-pattern detector.
const HISTORY: usize = 8;

/// Menu-style idle-interval predictor.
#[derive(Debug, Clone)]
pub struct IdlePredictor {
    /// Multiplicative correction factor (EWMA of actual/predicted).
    correction: f64,
    /// Recent observed intervals in µs.
    recent: [u32; HISTORY],
    filled: usize,
    next_slot: usize,
}

impl Default for IdlePredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl IdlePredictor {
    pub fn new() -> Self {
        IdlePredictor {
            correction: 1.0,
            recent: [0; HISTORY],
            filled: 0,
            next_slot: 0,
        }
    }

    /// Predict the upcoming idle interval given the time to the next timer
    /// event (µs).
    pub fn predict(&self, next_timer_us: u32) -> u32 {
        let timer_based = (next_timer_us as f64 * self.correction) as u32;
        // Repetitive-pattern detector: if the recent intervals are tightly
        // clustered, trust their mean over the timer bound.
        if self.filled == HISTORY {
            let mean = self.recent.iter().map(|x| *x as f64).sum::<f64>() / HISTORY as f64;
            let var = self
                .recent
                .iter()
                .map(|x| (*x as f64 - mean).powi(2))
                .sum::<f64>()
                / HISTORY as f64;
            if var.sqrt() < mean * 0.2 {
                return (mean as u32).min(timer_based);
            }
        }
        timer_based
    }

    /// Learn from the actual outcome of the last prediction.
    pub fn observe(&mut self, predicted_us: u32, actual_us: u32) {
        let ratio = actual_us as f64 / predicted_us.max(1) as f64;
        // EWMA with the menu governor's conservative weighting.
        self.correction = (self.correction * 7.0 + ratio.clamp(0.0, 1.5)) / 8.0;
        self.recent[self.next_slot] = actual_us;
        self.next_slot = (self.next_slot + 1) % HISTORY;
        self.filled = (self.filled + 1).min(HISTORY);
    }

    pub fn correction(&self) -> f64 {
        self.correction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::select_core_state;
    use crate::state::CoreCState;
    use hsw_hwspec::AcpiLatencyTable;
    use proptest::prelude::*;

    #[test]
    fn early_wakeups_shrink_the_correction_factor() {
        // A device that always interrupts long before the timer teaches the
        // predictor to discount the timer bound.
        let mut p = IdlePredictor::new();
        for _ in 0..50 {
            let pred = p.predict(10_000);
            p.observe(pred, 1_000);
        }
        // Whether via the correction factor or the repeating-pattern
        // detector, the prediction must land near the real ~1 ms.
        assert!(p.predict(10_000) < 4_000, "pred {}", p.predict(10_000));
    }

    #[test]
    fn repetitive_interrupts_override_the_timer_bound() {
        // A steady 100 µs interrupt pattern: the pattern detector should
        // predict ~100 µs although the next timer is 10 ms away.
        let mut p = IdlePredictor::new();
        for _ in 0..HISTORY {
            let pred = p.predict(10_000);
            p.observe(pred, 100);
        }
        let pred = p.predict(10_000);
        assert!(pred <= 130, "pred {pred}");
    }

    #[test]
    fn accurate_timers_keep_correction_near_one() {
        let mut p = IdlePredictor::new();
        for _ in 0..50 {
            let pred = p.predict(500);
            p.observe(pred, 500);
        }
        assert!((p.correction() - 1.0).abs() < 0.1);
    }

    #[test]
    fn predictor_guides_the_governor_to_shallower_states_under_interrupt_load() {
        // With frequent early wakeups the governor learns to pick shallow
        // states even when the timer is far away — combining predictor and
        // governor end to end.
        let table = AcpiLatencyTable::haswell_ep();
        let mut p = IdlePredictor::new();
        // Train: wakeups every 150 µs despite 10 ms timers.
        for _ in 0..30 {
            let pred = p.predict(10_000);
            p.observe(pred, 150);
        }
        let state = select_core_state(&table, p.predict(10_000));
        assert!(state <= CoreCState::C3, "picked {state:?}");
    }

    proptest! {
        #[test]
        fn prop_correction_stays_in_sane_bounds(
            outcomes in proptest::collection::vec((1u32..100_000, 1u32..100_000), 1..200)
        ) {
            let mut p = IdlePredictor::new();
            for (timer, actual) in outcomes {
                let pred = p.predict(timer);
                p.observe(pred, actual);
                prop_assert!((0.0..=1.5).contains(&p.correction()));
            }
        }

        #[test]
        fn prop_prediction_never_exceeds_corrected_timer(timer in 1u32..1_000_000) {
            let p = IdlePredictor::new();
            prop_assert!(p.predict(timer) <= (timer as f64 * 1.5) as u32);
        }
    }
}
