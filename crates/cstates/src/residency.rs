//! C-state residency accounting.
//!
//! Mirrors what the hardware residency counters (`MSR_CORE_C*_RESIDENCY`,
//! `MSR_PKG_C*_RESIDENCY`) measure, plus governor-quality statistics: how
//! often the menu governor's choice matched what the (hindsight) optimal
//! state would have been given the ACPI tables it used — the measurable
//! consequence of the paper's "the discrepancy between the measured and
//! defined latencies underlines the need for an interface to change these
//! tables at runtime".

use crate::state::CoreCState;

/// Accumulated residency of one core.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Residency {
    pub c0_us: f64,
    pub c1_us: f64,
    pub c3_us: f64,
    pub c6_us: f64,
}

impl Residency {
    pub fn total_us(&self) -> f64 {
        self.c0_us + self.c1_us + self.c3_us + self.c6_us
    }

    pub fn add(&mut self, state: CoreCState, us: f64) {
        debug_assert!(us >= 0.0);
        match state {
            CoreCState::C0 => self.c0_us += us,
            CoreCState::C1 => self.c1_us += us,
            CoreCState::C3 => self.c3_us += us,
            CoreCState::C6 => self.c6_us += us,
        }
    }

    /// Fraction of time in the given state.
    pub fn fraction(&self, state: CoreCState) -> f64 {
        let total = self.total_us();
        if total <= 0.0 {
            return 0.0;
        }
        let v = match state {
            CoreCState::C0 => self.c0_us,
            CoreCState::C1 => self.c1_us,
            CoreCState::C3 => self.c3_us,
            CoreCState::C6 => self.c6_us,
        };
        v / total
    }
}

/// One observed idle episode: what the governor picked and how long the
/// idle actually lasted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdleEpisode {
    pub selected: CoreCState,
    pub actual_idle_us: u32,
}

/// The deepest state whose *true* break-even (measured exit latency, not
/// the ACPI claim) fits the idle interval.
pub fn hindsight_optimal(
    actual_idle_us: u32,
    measured_c3_exit_us: f64,
    measured_c6_exit_us: f64,
) -> CoreCState {
    // Break-even at ~3× exit latency, like the governor's residency rule.
    if actual_idle_us as f64 >= 3.0 * measured_c6_exit_us {
        CoreCState::C6
    } else if actual_idle_us as f64 >= 3.0 * measured_c3_exit_us {
        CoreCState::C3
    } else if actual_idle_us >= 5 {
        CoreCState::C1
    } else {
        CoreCState::C0
    }
}

/// Governor-quality statistics over a set of episodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GovernorStats {
    pub episodes: usize,
    /// Governor picked shallower than hindsight-optimal (energy left on the
    /// table — the inflated-ACPI-table effect).
    pub too_shallow: usize,
    /// Governor picked deeper than optimal (latency paid for nothing).
    pub too_deep: usize,
}

impl GovernorStats {
    pub fn evaluate(
        episodes: &[IdleEpisode],
        measured_c3_exit_us: f64,
        measured_c6_exit_us: f64,
    ) -> GovernorStats {
        let mut stats = GovernorStats::default();
        for e in episodes {
            stats.episodes += 1;
            let optimal =
                hindsight_optimal(e.actual_idle_us, measured_c3_exit_us, measured_c6_exit_us);
            if e.selected < optimal {
                stats.too_shallow += 1;
            } else if e.selected > optimal {
                stats.too_deep += 1;
            }
        }
        stats
    }

    pub fn accuracy(&self) -> f64 {
        if self.episodes == 0 {
            return 1.0;
        }
        1.0 - (self.too_shallow + self.too_deep) as f64 / self.episodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::select_core_state;
    use crate::latency::{wake_latency_us, WakeScenario};
    use hsw_hwspec::AcpiLatencyTable;
    use hsw_hwspec::CpuGeneration;
    use proptest::prelude::*;

    #[test]
    fn residency_fractions_sum_to_one() {
        let mut r = Residency::default();
        r.add(CoreCState::C0, 250.0);
        r.add(CoreCState::C6, 750.0);
        assert!((r.fraction(CoreCState::C0) - 0.25).abs() < 1e-12);
        assert!((r.fraction(CoreCState::C6) - 0.75).abs() < 1e-12);
        assert_eq!(r.total_us(), 1000.0);
    }

    #[test]
    fn inflated_acpi_tables_cause_too_shallow_choices() {
        // The paper's point, quantified: with measured C6 exits of ~15 µs
        // but an ACPI claim of 133 µs, mid-length idles (100–390 µs) get C3
        // (or shallower) although C6 would pay off.
        let table = AcpiLatencyTable::haswell_ep();
        let measured_c3 = wake_latency_us(
            CpuGeneration::HaswellEp,
            CoreCState::C3,
            WakeScenario::Local,
            2.5,
        );
        let measured_c6 = wake_latency_us(
            CpuGeneration::HaswellEp,
            CoreCState::C6,
            WakeScenario::Local,
            2.5,
        );
        let episodes: Vec<IdleEpisode> = (0..50)
            .map(|i| {
                let idle = 60 + i * 6; // 60–354 µs
                IdleEpisode {
                    selected: select_core_state(&table, idle),
                    actual_idle_us: idle,
                }
            })
            .collect();
        let stats = GovernorStats::evaluate(&episodes, measured_c3, measured_c6);
        assert!(
            stats.too_shallow > stats.episodes / 2,
            "too_shallow {}/{}",
            stats.too_shallow,
            stats.episodes
        );
        assert_eq!(stats.too_deep, 0);
        assert!(stats.accuracy() < 0.5);
    }

    #[test]
    fn accurate_tables_would_fix_the_governor() {
        // With tables reflecting the *measured* latencies, the same
        // episodes are classified correctly — the runtime-interface ask.
        let measured_c3 = 9.5;
        let measured_c6 = 15.0;
        let honest = AcpiLatencyTable {
            pstate_transition_us: 500,
            c1_exit_us: 2,
            c3_exit_us: measured_c3 as u32,
            c6_exit_us: measured_c6 as u32,
        };
        let episodes: Vec<IdleEpisode> = (0..50)
            .map(|i| {
                let idle = 60 + i * 6;
                IdleEpisode {
                    selected: select_core_state(&honest, idle),
                    actual_idle_us: idle,
                }
            })
            .collect();
        let stats = GovernorStats::evaluate(&episodes, measured_c3, measured_c6);
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn hindsight_depth_is_monotone_in_idle_length() {
        let mut prev = CoreCState::C0;
        for idle in (0..500).step_by(10) {
            let s = hindsight_optimal(idle, 9.5, 15.0);
            assert!(s >= prev, "depth regressed at {idle} µs");
            prev = s;
        }
    }

    proptest! {
        #[test]
        fn prop_residency_totals_conserve_time(
            adds in proptest::collection::vec((0usize..4, 0.0f64..1000.0), 0..100)
        ) {
            let mut r = Residency::default();
            let mut total = 0.0;
            for (idx, us) in adds {
                let st = [CoreCState::C0, CoreCState::C1, CoreCState::C3, CoreCState::C6][idx];
                r.add(st, us);
                total += us;
            }
            prop_assert!((r.total_us() - total).abs() < 1e-6);
        }

        #[test]
        fn prop_governor_stats_partition_episodes(
            idles in proptest::collection::vec(0u32..2000, 1..100)
        ) {
            let table = AcpiLatencyTable::haswell_ep();
            let episodes: Vec<IdleEpisode> = idles
                .iter()
                .map(|idle| IdleEpisode {
                    selected: select_core_state(&table, *idle),
                    actual_idle_us: *idle,
                })
                .collect();
            let stats = GovernorStats::evaluate(&episodes, 9.5, 15.0);
            prop_assert!(stats.too_shallow + stats.too_deep <= stats.episodes);
            prop_assert!((0.0..=1.0).contains(&stats.accuracy()));
        }
    }
}
