//! Wake-up latency model (paper Figures 5/6, Section VI-B).
//!
//! The latency of returning a core to C0 depends on the idle state, the
//! core frequency, the relationship between waker and wakee, and the
//! package state of the wakee's socket. The per-generation exit-latency
//! table comes from the generation's [`CStateExitPolicy`]; this module
//! combines it per scenario.

use hsw_hwspec::{CStateExitPolicy, CpuGeneration};

use crate::state::CoreCState;

/// Relationship between the waking and the woken core in the measurement
/// (paper Figure 5 caption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeScenario {
    /// Waker and wakee on the same processor (no package c-state involved —
    /// the waker keeps its package in PC0).
    Local,
    /// Waker on the other processor, a third core keeping the wakee's
    /// processor out of package c-states.
    RemoteActive,
    /// Waker on the other processor, wakee's processor fully idle — the
    /// wakee is in a *package* C3/C6.
    RemoteIdle,
}

impl WakeScenario {
    pub const ALL: [WakeScenario; 3] = [
        WakeScenario::Local,
        WakeScenario::RemoteActive,
        WakeScenario::RemoteIdle,
    ];

    pub fn name(self) -> &'static str {
        match self {
            WakeScenario::Local => "local",
            WakeScenario::RemoteActive => "remote active",
            WakeScenario::RemoteIdle => "remote idle",
        }
    }
}

/// Position of `freq_ghz` inside the policy's state-restore frequency
/// window: 1.0 at the low end (slowest restore), 0.0 at the high end.
fn restore_slowness(p: &CStateExitPolicy, freq_ghz: f64) -> f64 {
    let f = freq_ghz.clamp(p.restore_freq_lo_ghz, p.restore_freq_hi_ghz);
    (p.restore_freq_hi_ghz - f) / (p.restore_freq_hi_ghz - p.restore_freq_lo_ghz)
}

/// Frequency-dependent part of the C6 exit (state restore + cache refill
/// runs at core speed): +2 µs at the top frequency, +8 µs at 1.2 GHz.
fn c6_extra_us(p: &CStateExitPolicy, freq_ghz: f64) -> f64 {
    let t = restore_slowness(p, freq_ghz);
    p.c6_extra_min_us + t * (p.c6_extra_max_us - p.c6_extra_min_us)
}

/// Package-C3 adder: "another two to four microseconds", shrinking as the
/// (uncore restart helping) frequency grows.
fn pkg_c3_extra_us(p: &CStateExitPolicy, freq_ghz: f64) -> f64 {
    let t = restore_slowness(p, freq_ghz);
    p.pkg_c3_extra_min_us + t * (p.pkg_c3_extra_max_us - p.pkg_c3_extra_min_us)
}

/// The scenario-resolved exit latency before the policy's deep-state
/// generation deltas.
fn base_latency_us(
    p: &CStateExitPolicy,
    state: CoreCState,
    scenario: WakeScenario,
    freq_ghz: f64,
) -> f64 {
    match state {
        CoreCState::C0 => 0.0,
        CoreCState::C1 => {
            let base = p.c1_base_us + p.c1_cycles_k / freq_ghz.max(0.1);
            match scenario {
                WakeScenario::Local => base,
                // C1 does not involve package states; remote adds the QPI hop.
                WakeScenario::RemoteActive | WakeScenario::RemoteIdle => {
                    base + p.c1_remote_extra_us
                }
            }
        }
        CoreCState::C3 => {
            let mut lat = p.c3_base_us;
            if freq_ghz > p.c3_highfreq_threshold_ghz {
                lat += p.c3_highfreq_step_us;
            }
            match scenario {
                WakeScenario::Local => lat,
                WakeScenario::RemoteActive => lat + p.c3_remote_extra_us,
                WakeScenario::RemoteIdle => {
                    lat + p.c3_remote_extra_us + pkg_c3_extra_us(p, freq_ghz)
                }
            }
        }
        CoreCState::C6 => {
            let c3 = base_latency_us(p, CoreCState::C3, scenario, freq_ghz);
            let extra = c6_extra_us(p, freq_ghz);
            match scenario {
                WakeScenario::Local | WakeScenario::RemoteActive => c3 + extra,
                // Package C6 adds 8 µs over package C3 (paper Section VI-B).
                WakeScenario::RemoteIdle => c3 + extra + p.pkg_c6_extra_us,
            }
        }
    }
}

/// Wake-up latency in µs for returning `state` to C0.
///
/// `freq_ghz` is the core frequency of the wakee at wake time. For
/// [`WakeScenario::RemoteIdle`] the wakee's package is assumed to be in the
/// package state corresponding to `state` (PC3 for C3, PC6 for C6), which is
/// what the paper's "remote idle" experiment produces.
pub fn wake_latency_us(
    generation: CpuGeneration,
    state: CoreCState,
    scenario: WakeScenario,
    freq_ghz: f64,
) -> f64 {
    let p = generation.policy().cstate_exit();
    let base = base_latency_us(&p, state, scenario, freq_ghz);
    // Grey reference curves in Figures 5/6: pre-Haswell exits from deep
    // states were slightly slower; the policy carries the deltas (zero on
    // Haswell and Skylake-SP).
    match state {
        CoreCState::C3 => base + p.deep_c3_extra_us,
        CoreCState::C6 => base + p.deep_c6_extra_us,
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib::cstate as cal;
    use proptest::prelude::*;

    const HSW: CpuGeneration = CpuGeneration::HaswellEp;
    const SNB: CpuGeneration = CpuGeneration::SandyBridgeEp;

    #[test]
    fn c1_matches_section_vi_b() {
        // "Transitions from C1 are below 1.6 µs for local measurement and up
        // to 2.1 µs for remote measurement (at 1.2 GHz core frequency)."
        let local = wake_latency_us(HSW, CoreCState::C1, WakeScenario::Local, 1.2);
        let remote = wake_latency_us(HSW, CoreCState::C1, WakeScenario::RemoteActive, 1.2);
        assert!(local < 1.6, "local = {local}");
        assert!(remote <= 2.1, "remote = {remote}");
        assert!(remote > local);
    }

    #[test]
    fn haswell_policy_reproduces_the_calibration_table() {
        // Satellite regression: the policy-driven model must pin the exact
        // values the calib constants produced before the refactor.
        let c1 = wake_latency_us(HSW, CoreCState::C1, WakeScenario::Local, 1.2);
        assert_eq!(c1, cal::C1_BASE_US + cal::C1_CYCLES_K / 1.2);
        let c3_lo = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 1.2);
        assert_eq!(c3_lo, cal::C3_BASE_US);
        let c3_hi = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 2.5);
        assert_eq!(c3_hi, cal::C3_BASE_US + cal::C3_HIGHFREQ_STEP_US);
        let c6_slow = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, 1.2);
        assert_eq!(c6_slow, cal::C3_BASE_US + cal::C6_EXTRA_MAX_US);
        let c6_pkg = wake_latency_us(HSW, CoreCState::C6, WakeScenario::RemoteIdle, 1.2);
        assert_eq!(
            c6_pkg,
            cal::C3_BASE_US
                + cal::C3_REMOTE_EXTRA_US
                + cal::PKG_C3_EXTRA_MAX_US
                + cal::C6_EXTRA_MAX_US
                + cal::PKG_C6_EXTRA_US
        );
    }

    #[test]
    fn c3_is_mostly_frequency_independent_with_a_step() {
        // "transition times for C3 states are mostly independent of the core
        // frequencies. However, the latency is 1.5 µs higher when frequencies
        // are greater than 1.5 GHz."
        let lo = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 1.3);
        let at = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 1.5);
        let hi = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 2.5);
        assert_eq!(lo, at);
        assert!((hi - lo - 1.5).abs() < 1e-9);
        // And independent within each side of the step.
        assert_eq!(
            wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, 1.6),
            hi
        );
    }

    #[test]
    fn package_c3_adds_two_to_four_microseconds() {
        for f in [1.2, 1.8, 2.5] {
            let active = wake_latency_us(HSW, CoreCState::C3, WakeScenario::RemoteActive, f);
            let idle = wake_latency_us(HSW, CoreCState::C3, WakeScenario::RemoteIdle, f);
            let d = idle - active;
            assert!((2.0..=4.0).contains(&d), "delta = {d} at {f} GHz");
        }
    }

    #[test]
    fn c6_depends_strongly_on_frequency() {
        // "Transition times from C6 states depend strongly on the processor
        // frequency ... Compared to C3, the latency is increased by 2 to
        // 8 µs in the local C6 case."
        for f in [1.2, 1.8, 2.5] {
            let c3 = wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, f);
            let c6 = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, f);
            let d = c6 - c3;
            assert!((2.0..=8.0).contains(&d), "delta = {d} at {f} GHz");
        }
        let slow = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, 1.2);
        let fast = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, 2.5);
        // 6 µs of C6-restore spread minus the 1.5 µs C3 step = 4.5 µs net.
        assert!(slow - fast >= 4.0, "C6 spread {} too small", slow - fast);
    }

    #[test]
    fn package_c6_adds_eight_microseconds_over_package_c3() {
        for f in [1.2, 2.0, 2.5] {
            let c3_pkg = wake_latency_us(HSW, CoreCState::C3, WakeScenario::RemoteIdle, f);
            let c6_pkg = wake_latency_us(HSW, CoreCState::C6, WakeScenario::RemoteIdle, f);
            let c6_extra_local = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, f)
                - wake_latency_us(HSW, CoreCState::C3, WakeScenario::Local, f);
            let d = c6_pkg - c3_pkg - c6_extra_local;
            assert!((d - 8.0).abs() < 1e-9, "pkg C6 adder = {d}");
        }
    }

    #[test]
    fn all_measured_latencies_are_below_acpi_tables() {
        // Paper Section VI-B: "the measured transition times for C3 and C6
        // are lower than the definitions in the respective ACPI tables
        // (33 and 133 µs)".
        for f in [1.2, 1.5, 2.0, 2.5, 3.3] {
            for scen in WakeScenario::ALL {
                assert!(wake_latency_us(HSW, CoreCState::C3, scen, f) < 33.0);
                assert!(wake_latency_us(HSW, CoreCState::C6, scen, f) < 133.0);
            }
        }
    }

    #[test]
    fn sandy_bridge_deep_exits_are_slower() {
        // Conclusions: "transition latencies from deep c-states have slightly
        // improved" on Haswell.
        for f in [1.2, 2.0, 2.5] {
            for scen in WakeScenario::ALL {
                assert!(
                    wake_latency_us(SNB, CoreCState::C6, scen, f)
                        > wake_latency_us(HSW, CoreCState::C6, scen, f)
                );
                assert!(
                    wake_latency_us(SNB, CoreCState::C3, scen, f)
                        > wake_latency_us(HSW, CoreCState::C3, scen, f)
                );
            }
        }
    }

    #[test]
    fn skylake_deep_exits_match_haswell_over_its_restore_window() {
        // 1905.12468 Table VI: Skylake-SP deep-state exits are in the same
        // range as Haswell's; only the restore window's upper clamp differs
        // (2.1 GHz base). At the low clamp they coincide exactly.
        let skx = CpuGeneration::SkylakeSp;
        assert_eq!(
            wake_latency_us(skx, CoreCState::C6, WakeScenario::Local, 1.2),
            wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, 1.2),
        );
        // Above its (lower) restore ceiling the SKX C6 exit stops shrinking.
        assert_eq!(
            wake_latency_us(skx, CoreCState::C6, WakeScenario::Local, 2.1),
            wake_latency_us(skx, CoreCState::C6, WakeScenario::Local, 2.5),
        );
        // Inside both windows the narrower SKX window restores faster at the
        // same absolute frequency (its base clock is lower).
        assert!(
            wake_latency_us(skx, CoreCState::C6, WakeScenario::Local, 1.8)
                < wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, 1.8)
        );
    }

    #[test]
    fn cstate_wakes_are_faster_than_pstate_transitions() {
        // Paper Section VI-B: "the c-state transitions happen faster than
        // p-state (core frequency) transitions" — worst c-state wake vs.
        // the ~500 µs p-state quantum.
        let worst = wake_latency_us(HSW, CoreCState::C6, WakeScenario::RemoteIdle, 1.2);
        assert!(worst < hsw_hwspec::calib::PSTATE_OPPORTUNITY_PERIOD_US as f64);
    }

    proptest! {
        #[test]
        fn prop_latency_ordering_c1_c3_c6(
            f in 1.2f64..3.3,
            scen_idx in 0usize..3,
        ) {
            let scen = WakeScenario::ALL[scen_idx];
            let c1 = wake_latency_us(HSW, CoreCState::C1, scen, f);
            let c3 = wake_latency_us(HSW, CoreCState::C3, scen, f);
            let c6 = wake_latency_us(HSW, CoreCState::C6, scen, f);
            prop_assert!(c1 < c3 && c3 < c6);
        }

        #[test]
        fn prop_remote_never_faster_than_local(f in 1.2f64..3.3) {
            for st in CoreCState::IDLE_STATES {
                let local = wake_latency_us(HSW, st, WakeScenario::Local, f);
                let ra = wake_latency_us(HSW, st, WakeScenario::RemoteActive, f);
                let ri = wake_latency_us(HSW, st, WakeScenario::RemoteIdle, f);
                prop_assert!(local <= ra);
                prop_assert!(ra <= ri);
            }
        }

        #[test]
        // Above the C3 high-frequency step the C6 exit time shrinks with
        // frequency (state restore runs at core speed). Below 1.5 GHz the
        // +1.5 µs C3 step makes the total non-monotone, as in the paper.
        fn prop_c6_latency_monotone_nonincreasing_in_frequency(f in 1.5f64..2.4) {
            let slow = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, f);
            let fast = wake_latency_us(HSW, CoreCState::C6, WakeScenario::Local, f + 0.1);
            prop_assert!(fast <= slow + 1e-9);
        }

        #[test]
        // Every generation's latency table keeps the depth ordering — the
        // policy cannot produce a deep state that wakes faster than a
        // shallow one.
        fn prop_depth_ordering_for_all_generations(
            f in 1.2f64..3.3,
            scen_idx in 0usize..3,
        ) {
            let scen = WakeScenario::ALL[scen_idx];
            for gen in [
                CpuGeneration::WestmereEp,
                CpuGeneration::SandyBridgeEp,
                CpuGeneration::IvyBridgeEp,
                CpuGeneration::HaswellEp,
                CpuGeneration::HaswellHe,
                CpuGeneration::SkylakeSp,
            ] {
                let c1 = wake_latency_us(gen, CoreCState::C1, scen, f);
                let c3 = wake_latency_us(gen, CoreCState::C3, scen, f);
                let c6 = wake_latency_us(gen, CoreCState::C6, scen, f);
                prop_assert!(c1 < c3 && c3 < c6, "{}", gen.name());
            }
        }
    }
}
