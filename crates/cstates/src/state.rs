//! Core and package C-state definitions.

use serde::{Deserialize, Serialize};

/// Core-level idle states as used on the covered generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CoreCState {
    /// Active (executing).
    C0,
    /// Halted; caches coherent, wake is nearly instant.
    C1,
    /// Clock gated; L1/L2 flushed to L3.
    C3,
    /// Power gated; architectural state saved, caches flushed, V ≈ 0.
    C6,
}

impl CoreCState {
    /// All idle states, shallowest first.
    pub const IDLE_STATES: [CoreCState; 3] = [CoreCState::C1, CoreCState::C3, CoreCState::C6];

    pub fn is_idle(self) -> bool {
        self != CoreCState::C0
    }

    /// Whether the core is power gated (drops out of the leakage sum).
    pub fn power_gated(self) -> bool {
        self == CoreCState::C6
    }

    pub fn name(self) -> &'static str {
        match self {
            CoreCState::C0 => "C0",
            CoreCState::C1 => "C1",
            CoreCState::C3 => "C3",
            CoreCState::C6 => "C6",
        }
    }
}

/// Package-level idle states. PC3/PC6 halt the uncore clock
/// (paper Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PkgCState {
    /// At least one core active.
    PC0,
    /// All cores idle but package-level agents still snooping.
    PC2,
    /// Uncore clock halted, L3 retained.
    PC3,
    /// Deepest package sleep.
    PC6,
}

impl PkgCState {
    /// Whether the uncore clock is halted in this state
    /// (paper Section V-A: "the uncore clock is halted when a processor
    /// goes into deep package sleep state (PC-3/PC-6)").
    pub fn uncore_halted(self) -> bool {
        matches!(self, PkgCState::PC3 | PkgCState::PC6)
    }

    pub fn name(self) -> &'static str {
        match self {
            PkgCState::PC0 => "PC0",
            PkgCState::PC2 => "PC2",
            PkgCState::PC3 => "PC3",
            PkgCState::PC6 => "PC6",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_depth_ordering() {
        assert!(CoreCState::C0 < CoreCState::C1);
        assert!(CoreCState::C1 < CoreCState::C3);
        assert!(CoreCState::C3 < CoreCState::C6);
        assert!(PkgCState::PC0 < PkgCState::PC2);
        assert!(PkgCState::PC2 < PkgCState::PC3);
        assert!(PkgCState::PC3 < PkgCState::PC6);
    }

    #[test]
    fn only_c6_power_gates() {
        assert!(CoreCState::C6.power_gated());
        assert!(!CoreCState::C3.power_gated());
        assert!(!CoreCState::C1.power_gated());
        assert!(!CoreCState::C0.power_gated());
    }

    #[test]
    fn uncore_halts_only_in_deep_package_states() {
        assert!(!PkgCState::PC0.uncore_halted());
        assert!(!PkgCState::PC2.uncore_halted());
        assert!(PkgCState::PC3.uncore_halted());
        assert!(PkgCState::PC6.uncore_halted());
    }
}
