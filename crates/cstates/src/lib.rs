//! # hsw-cstates — processor idle states and wake-up latencies
//!
//! Implements the ACPI processor power-state machinery of the simulated
//! node: core C-states (C0/C1/C3/C6), package C-states (PC0/PC2/PC3/PC6),
//! the wake-up-latency model calibrated to paper Figures 5/6 and
//! Section VI-B, a menu-style OS governor driven by the (inaccurate) ACPI
//! tables, and the cross-socket package-state coupling the paper observed
//! ("these states are not used when there is still any core active in the
//! system—even if this core is located on the other processor").
//!
//! ## Snapshot coverage
//!
//! The node-resident c-state picture is just [`CoreCState`]/[`PkgCState`]
//! values (both `Copy`), which `hsw-node`'s warm-start snapshots capture
//! directly; residency counters live in the MSR bank and travel with its
//! snapshot. [`select_core_state`] and [`resolve_package_state`] are pure
//! functions of that state, so nothing else needs capturing here.

pub mod governor;
pub mod latency;
pub mod predictor;
pub mod residency;
pub mod state;

pub use governor::{fill_core_states, resolve_package_state, select_core_state};
pub use latency::{wake_latency_us, WakeScenario};
pub use predictor::IdlePredictor;
pub use residency::{GovernorStats, IdleEpisode, Residency};
pub use state::{CoreCState, PkgCState};
