//! The OS idle governor and the hardware package-state resolution.
//!
//! The governor mimics Linux's menu governor: it picks the deepest state
//! whose ACPI *target residency* fits the predicted idle interval — using
//! the ACPI latency tables that the paper shows to be wrong in both
//! directions (Section VI). The package-state resolution implements the
//! hardware rule the paper measured: deep package states are only entered
//! when *no core in the whole system* (both sockets) is active.

use hsw_hwspec::{AcpiCState, AcpiLatencyTable};

use crate::state::{CoreCState, PkgCState};

/// Pick the core idle state for a predicted idle interval, menu-governor
/// style: deepest state whose target residency fits.
pub fn select_core_state(table: &AcpiLatencyTable, predicted_idle_us: u32) -> CoreCState {
    if predicted_idle_us >= table.target_residency_us(AcpiCState::C6) {
        CoreCState::C6
    } else if predicted_idle_us >= table.target_residency_us(AcpiCState::C3) {
        CoreCState::C3
    } else if predicted_idle_us >= table.target_residency_us(AcpiCState::C1) {
        CoreCState::C1
    } else {
        // Not worth entering any state; poll in C0.
        CoreCState::C0
    }
}

/// Fill a socket's per-core c-state plane in one pass: busy cores run in
/// C0, idle cores all take the governor's pick for the (shared) predicted
/// idle interval. Structure-of-arrays companion to [`select_core_state`]:
/// the selection is a pure table lookup, so it is hoisted out of the
/// per-core loop and the loop itself is a tight walk over two slices.
pub fn fill_core_states(
    table: &AcpiLatencyTable,
    busy: &[bool],
    predicted_idle_us: u32,
    out: &mut [CoreCState],
) {
    debug_assert_eq!(busy.len(), out.len());
    let idle = select_core_state(table, predicted_idle_us);
    for (state, &b) in out.iter_mut().zip(busy) {
        *state = if b { CoreCState::C0 } else { idle };
    }
}

/// Resolve the package state of a socket from its core states and the
/// activity of the rest of the system.
///
/// `any_other_socket_active` implements the paper's observation
/// (Section V-A): "these states are not used when there is still any core
/// active in the system—even if this core is located on the other
/// processor."
pub fn resolve_package_state(
    core_states: &[CoreCState],
    any_other_socket_active: bool,
) -> PkgCState {
    if core_states.contains(&CoreCState::C0) {
        return PkgCState::PC0;
    }
    if any_other_socket_active {
        // All local cores idle, but the system is not: stay in PC2.
        return PkgCState::PC2;
    }
    let min_state = core_states.iter().copied().min().unwrap_or(CoreCState::C0);
    match min_state {
        CoreCState::C0 => PkgCState::PC0,
        CoreCState::C1 => PkgCState::PC2,
        CoreCState::C3 => PkgCState::PC3,
        CoreCState::C6 => PkgCState::PC6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table() -> AcpiLatencyTable {
        AcpiLatencyTable::haswell_ep()
    }

    #[test]
    fn long_idle_selects_c6() {
        assert_eq!(select_core_state(&table(), 1_000_000), CoreCState::C6);
    }

    #[test]
    fn governor_thresholds_follow_acpi_residencies() {
        let t = table();
        let c6_res = t.target_residency_us(AcpiCState::C6);
        let c3_res = t.target_residency_us(AcpiCState::C3);
        assert_eq!(select_core_state(&t, c6_res), CoreCState::C6);
        assert_eq!(select_core_state(&t, c6_res - 1), CoreCState::C3);
        assert_eq!(select_core_state(&t, c3_res), CoreCState::C3);
        assert_eq!(select_core_state(&t, c3_res - 1), CoreCState::C1);
        assert_eq!(select_core_state(&t, 0), CoreCState::C0);
    }

    #[test]
    fn inflated_acpi_tables_make_governor_conservative() {
        // Because the ACPI C6 latency (133 µs) is far above the measured
        // ~15–25 µs, the governor refuses C6 for idle intervals where it
        // would actually pay off — the inefficiency the paper points out.
        let t = table();
        let measured_c6_us = 20.0;
        let idle_us = (measured_c6_us * 3.0) as u32; // worth it in reality
        assert_ne!(select_core_state(&t, idle_us), CoreCState::C6);
    }

    #[test]
    fn fill_core_states_matches_per_core_selection() {
        let t = table();
        let busy = [true, false, true, false, false];
        let mut filled = [CoreCState::C0; 5];
        fill_core_states(&t, &busy, 1_000_000, &mut filled);
        for (c, &b) in busy.iter().enumerate() {
            let expect = if b {
                CoreCState::C0
            } else {
                select_core_state(&t, 1_000_000)
            };
            assert_eq!(filled[c], expect, "core {c}");
        }
    }

    #[test]
    fn package_state_requires_whole_system_idle() {
        let all_c6 = vec![CoreCState::C6; 12];
        assert_eq!(resolve_package_state(&all_c6, false), PkgCState::PC6);
        // Any active core on the *other* socket blocks deep package states.
        assert_eq!(resolve_package_state(&all_c6, true), PkgCState::PC2);
    }

    #[test]
    fn any_local_active_core_keeps_pc0() {
        let mut states = vec![CoreCState::C6; 12];
        states[5] = CoreCState::C0;
        assert_eq!(resolve_package_state(&states, false), PkgCState::PC0);
        assert_eq!(resolve_package_state(&states, true), PkgCState::PC0);
    }

    #[test]
    fn package_state_is_bounded_by_shallowest_core() {
        let mixed = vec![CoreCState::C6, CoreCState::C3, CoreCState::C6];
        assert_eq!(resolve_package_state(&mixed, false), PkgCState::PC3);
        let shallow = vec![CoreCState::C6, CoreCState::C1];
        assert_eq!(resolve_package_state(&shallow, false), PkgCState::PC2);
    }

    proptest! {
        #[test]
        fn prop_deeper_idle_never_selects_shallower_state(
            idle in 0u32..1_000_000,
            extra in 1u32..1_000_000,
        ) {
            let t = table();
            prop_assert!(
                select_core_state(&t, idle.saturating_add(extra))
                    >= select_core_state(&t, idle)
            );
        }

        #[test]
        fn prop_other_socket_activity_never_deepens_package_state(
            states in proptest::collection::vec(
                prop_oneof![
                    Just(CoreCState::C1),
                    Just(CoreCState::C3),
                    Just(CoreCState::C6),
                ],
                1..24,
            )
        ) {
            prop_assert!(
                resolve_package_state(&states, true)
                    <= resolve_package_state(&states, false)
            );
        }
    }
}
