//! CPU generations and their energy-management properties.
//!
//! The paper contrasts Haswell-EP against Westmere-EP, Sandy Bridge-EP and
//! (for some experiments) Ivy Bridge-EP and the desktop/workstation
//! Haswell-HE part. The cross-generation differences relevant to the paper's
//! experiments reduce to a small set of architectural properties captured
//! here; everything else is parameterized through [`crate::SkuSpec`].

use serde::{Deserialize, Serialize};

/// x86 server processor generations covered by the survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuGeneration {
    /// Westmere-EP (e.g. Xeon X5670): fixed uncore clock, modeled RAPL absent
    /// (no RAPL at all; pre-SNB), immediate p-state transitions.
    WestmereEp,
    /// Sandy Bridge-EP (e.g. Xeon E5-2690): uncore clock coupled to the core
    /// clock, *modeled* RAPL (per-workload bias, paper Fig. 2a), immediate
    /// p-state transitions, chip-wide p-state domain.
    SandyBridgeEp,
    /// Ivy Bridge-EP: same energy-management structure as Sandy Bridge-EP.
    IvyBridgeEp,
    /// Haswell-EP (Xeon E5-1600/2600 v3): FIVR, per-core p-states, independent
    /// uncore frequency (UFS), *measured* RAPL, 500 µs p-state opportunity
    /// mechanism, AVX frequencies.
    HaswellEp,
    /// Haswell "HE" (client/workstation): FIVR and measured RAPL, but
    /// immediate p-state transitions (paper Section VI-A) and no per-core
    /// p-state domains.
    HaswellHe,
    /// Skylake-SP (e.g. Xeon Platinum 8170; arXiv 1905.12468): mesh uncore
    /// with per-core UFS requests, HWP autonomous p-states, AVX-512
    /// frequency-license levels, uniform-unit RAPL, mainboard VRs. Not part
    /// of [`CpuGeneration::ALL`] — the survey's cross-generation figures
    /// cover the paper's five parts.
    SkylakeSp,
}

/// How the uncore (L3 ring, IMC frontend) is clocked in a generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UncoreClockSource {
    /// A fixed frequency independent of core p-states (Westmere-EP).
    Fixed,
    /// The uncore follows the (chip-wide) core clock (Sandy Bridge-EP,
    /// Ivy Bridge-EP). DRAM bandwidth therefore scales with core frequency.
    CoreCoupled,
    /// An independent domain managed by the PCU: uncore frequency scaling
    /// (Haswell-EP). See paper Sections II-D and V-A.
    Independent,
}

/// Whether RAPL energy counters are backed by a model or by measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaplMode {
    /// No RAPL interface at all (Westmere-EP).
    Unavailable,
    /// Event-counter-driven *model* of energy consumption; exhibits
    /// per-workload bias (paper Fig. 2a, \[20\]).
    Modeled,
    /// FIVR-based *measurement*; near-perfect correlation with a reference
    /// meter (paper Fig. 2b).
    Measured,
}

/// How p-state change requests are carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PStateTransitionMode {
    /// The request is serviced immediately; only the switching time applies
    /// (pre-Haswell-EP and Haswell-HE; paper Section VI-A).
    Immediate,
    /// Requests latch at the next PCU "opportunity" which recurs with the
    /// period given in microseconds (≈500 µs on Haswell-EP, paper Fig. 4).
    OpportunityWindow { period_us: u32 },
    /// Hardware-managed p-states (HWP, Skylake-SP; 1905.12468 Section
    /// II-D): the PCU grants requests autonomously without an opportunity
    /// clock, paying only the switching time — like
    /// [`PStateTransitionMode::Immediate`] but hardware-initiated.
    HwpAutonomous,
}

impl CpuGeneration {
    /// All generations in chronological order.
    pub const ALL: [CpuGeneration; 5] = [
        CpuGeneration::WestmereEp,
        CpuGeneration::SandyBridgeEp,
        CpuGeneration::IvyBridgeEp,
        CpuGeneration::HaswellEp,
        CpuGeneration::HaswellHe,
    ];

    /// Marketing-style name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            CpuGeneration::WestmereEp => "Westmere-EP",
            CpuGeneration::SandyBridgeEp => "Sandy Bridge-EP",
            CpuGeneration::IvyBridgeEp => "Ivy Bridge-EP",
            CpuGeneration::HaswellEp => "Haswell-EP",
            CpuGeneration::HaswellHe => "Haswell-HE",
            CpuGeneration::SkylakeSp => "Skylake-SP",
        }
    }

    /// The firmware behavior bundle for this generation (see
    /// [`crate::policy`]). Everything below is a convenience delegation.
    pub fn policy(self) -> &'static dyn crate::policy::FirmwarePolicy {
        crate::policy::policy_for(self)
    }

    /// Clock source of the uncore domain.
    pub fn uncore_clock(self) -> UncoreClockSource {
        self.policy().uncore().source
    }

    /// RAPL backing for this generation.
    pub fn rapl_mode(self) -> RaplMode {
        self.policy().rapl().mode
    }

    /// P-state transition servicing discipline.
    pub fn pstate_transition_mode(self) -> PStateTransitionMode {
        self.policy().pstate().transition
    }

    /// Whether each core has its own voltage regulator and p-state domain
    /// (FIVR + PCPS; paper Sections II-B/II-D).
    pub fn per_core_pstates(self) -> bool {
        self.policy().pstate().per_core_domains
    }

    /// Whether the part implements on-die fully integrated voltage regulators.
    pub fn has_fivr(self) -> bool {
        self.policy().vr().has_fivr
    }

    /// Whether AVX frequencies (a reduced guaranteed clock under wide-vector
    /// load) exist on this generation (paper Section II-F).
    pub fn has_avx_frequencies(self) -> bool {
        self.policy().license().levels >= 1
    }

    /// Whether a RAPL DRAM domain is exposed. On desktop platforms of
    /// previous generations it is absent (paper Section IV).
    pub fn has_dram_rapl_domain(self) -> bool {
        self.policy().rapl().has_dram_domain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_ep_is_the_only_pcps_generation() {
        for gen in CpuGeneration::ALL {
            assert_eq!(gen.per_core_pstates(), gen == CpuGeneration::HaswellEp);
        }
    }

    #[test]
    fn haswell_ep_uses_opportunity_window() {
        match CpuGeneration::HaswellEp.pstate_transition_mode() {
            PStateTransitionMode::OpportunityWindow { period_us } => {
                assert_eq!(period_us, 500);
            }
            other => panic!("expected opportunity window, got {other:?}"),
        }
    }

    #[test]
    fn pre_haswell_transitions_are_immediate() {
        for gen in [
            CpuGeneration::WestmereEp,
            CpuGeneration::SandyBridgeEp,
            CpuGeneration::IvyBridgeEp,
            CpuGeneration::HaswellHe,
        ] {
            assert_eq!(
                gen.pstate_transition_mode(),
                PStateTransitionMode::Immediate,
                "{}",
                gen.name()
            );
        }
    }

    #[test]
    fn uncore_clock_sources_follow_the_paper() {
        assert_eq!(
            CpuGeneration::WestmereEp.uncore_clock(),
            UncoreClockSource::Fixed
        );
        assert_eq!(
            CpuGeneration::SandyBridgeEp.uncore_clock(),
            UncoreClockSource::CoreCoupled
        );
        assert_eq!(
            CpuGeneration::HaswellEp.uncore_clock(),
            UncoreClockSource::Independent
        );
    }

    #[test]
    fn rapl_modes_follow_the_paper() {
        assert_eq!(CpuGeneration::SandyBridgeEp.rapl_mode(), RaplMode::Modeled);
        assert_eq!(CpuGeneration::HaswellEp.rapl_mode(), RaplMode::Measured);
        assert_eq!(CpuGeneration::WestmereEp.rapl_mode(), RaplMode::Unavailable);
    }

    #[test]
    fn only_haswell_ep_has_avx_frequencies() {
        for gen in CpuGeneration::ALL {
            assert_eq!(gen.has_avx_frequencies(), gen == CpuGeneration::HaswellEp);
        }
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = CpuGeneration::ALL.iter().map(|g| g.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CpuGeneration::ALL.len());
    }
}
