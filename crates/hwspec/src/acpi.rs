//! ACPI-reported latency tables (paper Sections VI-A and VI-B).
//!
//! The paper shows that the static ACPI claims diverge from measured
//! behavior in both directions: p-state transitions are *much slower* than
//! the claimed 10 µs, while C3/C6 exits are *faster* than the claimed
//! 33/133 µs — "the discrepancy ... underlines the need for an interface to
//! change these tables at runtime".

use serde::{Deserialize, Serialize};

use crate::calib;

/// The latency values an OS reads from the ACPI `_PSS`/`_CST` objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcpiLatencyTable {
    /// Claimed p-state transition latency in µs.
    pub pstate_transition_us: u32,
    /// Claimed C1 exit latency in µs.
    pub c1_exit_us: u32,
    /// Claimed C3 exit latency in µs.
    pub c3_exit_us: u32,
    /// Claimed C6 exit latency in µs.
    pub c6_exit_us: u32,
}

impl AcpiLatencyTable {
    /// The table exposed by the test system's firmware.
    pub fn haswell_ep() -> Self {
        AcpiLatencyTable {
            pstate_transition_us: calib::ACPI_PSTATE_LATENCY_US,
            c1_exit_us: 2,
            c3_exit_us: calib::cstate::ACPI_C3_US as u32,
            c6_exit_us: calib::cstate::ACPI_C6_US as u32,
        }
    }

    /// The table exposed by the Skylake-SP follow-up system's firmware
    /// (1905.12468): the C3 slot carries C1E (Skylake-SP drops core C3 but
    /// keeps an intermediate state between C1 and C6).
    pub fn skylake_sp() -> Self {
        AcpiLatencyTable {
            pstate_transition_us: calib::ACPI_PSTATE_LATENCY_US,
            c1_exit_us: 2,
            c3_exit_us: 10,
            c6_exit_us: calib::cstate::ACPI_C6_US as u32,
        }
    }

    /// Target residency the OS governor requires before entering a state:
    /// conventionally a small multiple of the exit latency.
    pub fn target_residency_us(&self, state: AcpiCState) -> u32 {
        match state {
            AcpiCState::C1 => self.c1_exit_us * 2,
            AcpiCState::C3 => self.c3_exit_us * 3,
            AcpiCState::C6 => self.c6_exit_us * 3,
        }
    }
}

/// The ACPI-visible processor idle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcpiCState {
    C1,
    C3,
    C6,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_claims() {
        let t = AcpiLatencyTable::haswell_ep();
        assert_eq!(t.pstate_transition_us, 10);
        assert_eq!(t.c3_exit_us, 33);
        assert_eq!(t.c6_exit_us, 133);
    }

    #[test]
    fn residency_grows_with_state_depth() {
        let t = AcpiLatencyTable::haswell_ep();
        assert!(t.target_residency_us(AcpiCState::C1) < t.target_residency_us(AcpiCState::C3));
        assert!(t.target_residency_us(AcpiCState::C3) < t.target_residency_us(AcpiCState::C6));
    }
}
