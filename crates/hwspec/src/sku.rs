//! SKU definitions: concrete processor models and the test-node description
//! (paper Table II), including the electrical calibration coefficients used
//! by the power model.

use serde::{Deserialize, Serialize};

use crate::acpi::AcpiLatencyTable;
use crate::calib;
use crate::die::DieLayout;
use crate::freq::FrequencyTable;
use crate::generation::CpuGeneration;
use crate::memcfg::MemSpec;
use crate::vf::VfCurveSpec;

/// Cache geometry of a SKU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSpec {
    pub line_bytes: usize,
    pub l1d_kib: usize,
    pub l1d_ways: usize,
    pub l1i_kib: usize,
    pub l2_kib: usize,
    pub l2_ways: usize,
    /// L3 capacity per slice (one slice per core on ring architectures).
    pub l3_slice_kib: usize,
    pub l3_ways: usize,
}

impl CacheSpec {
    /// Haswell-EP / Sandy Bridge-EP cache geometry (32K/256K/2.5M-per-slice).
    pub fn xeon_ep() -> Self {
        CacheSpec {
            line_bytes: 64,
            l1d_kib: 32,
            l1d_ways: 8,
            l1i_kib: 32,
            l2_kib: 256,
            l2_ways: 8,
            l3_slice_kib: 2560,
            l3_ways: 20,
        }
    }

    /// Total L3 capacity for a SKU with `cores` enabled cores in KiB.
    pub fn l3_total_kib(&self, cores: usize) -> usize {
        self.l3_slice_kib * cores
    }
}

/// Electrical calibration coefficients of the package power model:
///
/// `P_pkg = pkg_base_w`
/// `      + Σ_{cores not in C6} core_leak_w_per_v2 · V²`
/// `      + Σ_{cores} core_dyn_w_per_v2ghz · V² · f_GHz · activity`
/// `      + uncore_dyn_w_per_v2ghz · Vu² · fu_GHz`
///
/// The Haswell-EP coefficients are calibrated so the FIRESTARTER equilibria
/// of paper Table IV (core/uncore frequency pairs at the 120 W TDP) and the
/// "< 120 W at 2.1 GHz" observation all hold; see `hsw-pcu` tests.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCoeffs {
    /// Always-on package power (PLLs, fuses, IO) in W.
    pub pkg_base_w: f64,
    /// Per-core leakage in W per V² (zero while power-gated in C6).
    pub core_leak_w_per_v2: f64,
    /// Per-core dynamic power in W per (V² · GHz) at activity 1.0.
    pub core_dyn_w_per_v2ghz: f64,
    /// Extra dynamic power multiplier while the AVX license is active
    /// (wider datapaths switching; drives the AVX frequency mechanism).
    pub avx_power_mult: f64,
    /// Extra dynamic power multiplier at license level 2 (512-bit
    /// datapaths; 1905.12468 Section II-C). Equal to `avx_power_mult` on
    /// generations without AVX-512.
    pub avx512_power_mult: f64,
    /// Uncore dynamic power in W per (V² · GHz).
    pub uncore_dyn_w_per_v2ghz: f64,
    /// DRAM background power per socket in W (clock, refresh).
    pub dram_idle_w: f64,
    /// DRAM access power in W per GB/s of traffic.
    pub dram_w_per_gbs: f64,
    /// Per-chip RAPL calibration gain: the fused energy-counter trim of
    /// this unit relative to the nominal energy unit. Measurement software
    /// always converts raw counts with the nominal datasheet unit, so a
    /// chip with gain ≠ 1 *reports* (and its PL1 limiter *enforces*)
    /// power scaled by this factor. 1.0 on the reference chip.
    pub rapl_trim_gain: f64,
}

impl PowerCoeffs {
    pub fn haswell_ep() -> Self {
        PowerCoeffs {
            pkg_base_w: 5.5,
            core_leak_w_per_v2: 1.33,
            core_dyn_w_per_v2ghz: 3.352,
            avx_power_mult: 1.25,
            avx512_power_mult: 1.25,
            uncore_dyn_w_per_v2ghz: 9.17,
            dram_idle_w: 4.0,
            dram_w_per_gbs: 0.55,
            rapl_trim_gain: 1.0,
        }
    }

    /// Sandy Bridge-EP (E5-2690, 135 W TDP, 8 cores on 32 nm-class power).
    pub fn sandy_bridge_ep() -> Self {
        PowerCoeffs {
            pkg_base_w: 7.0,
            core_leak_w_per_v2: 2.1,
            core_dyn_w_per_v2ghz: 4.9,
            avx_power_mult: 1.15,
            avx512_power_mult: 1.15,
            uncore_dyn_w_per_v2ghz: 7.5,
            dram_idle_w: 6.0,
            dram_w_per_gbs: 0.7,
            rapl_trim_gain: 1.0,
        }
    }

    /// Skylake-SP (Xeon Platinum 8170, 165 W TDP, 26 cores, mesh uncore;
    /// arXiv 1905.12468). Calibrated in [`calib::skx`].
    pub fn skylake_sp() -> Self {
        PowerCoeffs {
            pkg_base_w: calib::skx::PKG_BASE_W,
            core_leak_w_per_v2: calib::skx::CORE_LEAK_W_PER_V2,
            core_dyn_w_per_v2ghz: calib::skx::CORE_DYN_W_PER_V2GHZ,
            avx_power_mult: calib::skx::AVX_POWER_MULT,
            avx512_power_mult: calib::skx::AVX512_POWER_MULT,
            uncore_dyn_w_per_v2ghz: calib::skx::UNCORE_DYN_W_PER_V2GHZ,
            dram_idle_w: calib::skx::DRAM_IDLE_W,
            dram_w_per_gbs: calib::skx::DRAM_W_PER_GBS,
            rapl_trim_gain: 1.0,
        }
    }
}

/// A concrete processor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuSpec {
    pub generation: CpuGeneration,
    pub model: &'static str,
    /// Enabled cores.
    pub cores: usize,
    /// Hardware threads per core (2 with Hyper-Threading).
    pub threads_per_core: usize,
    pub die: DieLayout,
    pub freq: FrequencyTable,
    pub tdp_w: f64,
    pub cache: CacheSpec,
    pub mem: MemSpec,
    pub core_vf: VfCurveSpec,
    pub uncore_vf: VfCurveSpec,
    pub power: PowerCoeffs,
    pub acpi: AcpiLatencyTable,
}

impl SkuSpec {
    /// The paper's test processor: Intel Xeon E5-2680 v3
    /// (12 cores, 2.5 GHz base, 3.3 GHz max turbo, 2.1 GHz AVX base,
    /// 120 W TDP; paper Table II).
    pub fn xeon_e5_2680_v3() -> Self {
        SkuSpec {
            generation: CpuGeneration::HaswellEp,
            model: "Intel Xeon E5-2680 v3",
            cores: 12,
            threads_per_core: 2,
            die: DieLayout::die12(),
            freq: FrequencyTable {
                min_mhz: 1200,
                base_mhz: 2500,
                // 1..=12 active cores: 3.3 GHz single-core down to 2.9 all-core.
                turbo_by_active_cores_mhz: vec![
                    3300, 3300, 3100, 3100, 3000, 3000, 2900, 2900, 2900, 2900, 2900, 2900,
                ],
                avx_base_mhz: Some(2100),
                // Section II-F: AVX turbo between 2.8 and 3.1 GHz depending on
                // the number of active cores.
                avx_turbo_by_active_cores_mhz: vec![
                    3100, 3100, 3000, 3000, 2900, 2900, 2800, 2800, 2800, 2800, 2800, 2800,
                ],
                avx512_base_mhz: None,
                avx512_turbo_by_active_cores_mhz: vec![],
                uncore_min_mhz: calib::UNCORE_MIN_MHZ,
                uncore_max_mhz: calib::UNCORE_MAX_MHZ,
            },
            tdp_w: calib::powercal::E5_2680V3_TDP_W,
            cache: CacheSpec::xeon_ep(),
            mem: MemSpec::ddr4_2133_quad(),
            core_vf: VfCurveSpec::haswell_core(),
            uncore_vf: VfCurveSpec::haswell_uncore(),
            power: PowerCoeffs::haswell_ep(),
            acpi: AcpiLatencyTable::haswell_ep(),
        }
    }

    /// Sandy Bridge-EP comparison part: Xeon E5-2690
    /// (8 cores, 2.9 GHz base, 3.8 GHz max turbo, 135 W TDP).
    pub fn xeon_e5_2690() -> Self {
        SkuSpec {
            generation: CpuGeneration::SandyBridgeEp,
            model: "Intel Xeon E5-2690",
            cores: 8,
            threads_per_core: 2,
            die: DieLayout::monolithic("SNB-EP 8-core die", 8, 4),
            freq: FrequencyTable {
                min_mhz: 1200,
                base_mhz: 2900,
                turbo_by_active_cores_mhz: vec![3800, 3700, 3600, 3500, 3400, 3300, 3300, 3300],
                avx_base_mhz: None,
                avx_turbo_by_active_cores_mhz: vec![],
                avx512_base_mhz: None,
                avx512_turbo_by_active_cores_mhz: vec![],
                uncore_min_mhz: 1200,
                uncore_max_mhz: 3800,
            },
            tdp_w: 135.0,
            cache: CacheSpec::xeon_ep(),
            mem: MemSpec::ddr3_1600_quad(),
            core_vf: VfCurveSpec::sandy_bridge_core(),
            uncore_vf: VfCurveSpec::sandy_bridge_core(),
            power: PowerCoeffs::sandy_bridge_ep(),
            acpi: AcpiLatencyTable::haswell_ep(),
        }
    }

    /// Westmere-EP comparison part: Xeon X5670
    /// (6 cores, 2.93 GHz base, fixed-uncore generation).
    pub fn xeon_x5670() -> Self {
        SkuSpec {
            generation: CpuGeneration::WestmereEp,
            model: "Intel Xeon X5670",
            cores: 6,
            threads_per_core: 2,
            die: DieLayout::monolithic("WSM-EP 6-core die", 6, 3),
            freq: FrequencyTable {
                min_mhz: 1600,
                base_mhz: 2930,
                turbo_by_active_cores_mhz: vec![3330, 3330, 3060, 3060, 3060, 3060],
                avx_base_mhz: None,
                avx_turbo_by_active_cores_mhz: vec![],
                avx512_base_mhz: None,
                avx512_turbo_by_active_cores_mhz: vec![],
                uncore_min_mhz: 2660,
                uncore_max_mhz: 2660, // fixed uncore clock
            },
            tdp_w: 95.0,
            cache: CacheSpec {
                line_bytes: 64,
                l1d_kib: 32,
                l1d_ways: 8,
                l1i_kib: 32,
                l2_kib: 256,
                l2_ways: 8,
                l3_slice_kib: 2048,
                l3_ways: 16,
            },
            mem: MemSpec::ddr3_1333_triple(),
            core_vf: VfCurveSpec::sandy_bridge_core(),
            uncore_vf: VfCurveSpec::sandy_bridge_core(),
            power: PowerCoeffs::sandy_bridge_ep(),
            acpi: AcpiLatencyTable::haswell_ep(),
        }
    }

    /// The follow-up survey's Skylake-SP part: Intel Xeon Platinum 8170
    /// (26 cores, 2.1 GHz base, 3.7 GHz max turbo, AVX-512 license levels,
    /// 165 W TDP, mesh uncore at 1.2–2.4 GHz; arXiv 1905.12468).
    pub fn xeon_platinum_8170() -> Self {
        SkuSpec {
            generation: CpuGeneration::SkylakeSp,
            model: "Intel Xeon Platinum 8170",
            cores: 26,
            threads_per_core: 2,
            die: DieLayout::monolithic("SKX XCC 28-core mesh die", 26, 6),
            freq: FrequencyTable {
                min_mhz: 1200,
                base_mhz: 2100,
                // 1..=26 active cores: 3.7 GHz dual-core turbo down to
                // 2.8 GHz all-core.
                turbo_by_active_cores_mhz: vec![
                    3700, 3700, 3500, 3500, 3400, 3400, 3400, 3400, 3300, 3300, 3300, 3300, 3200,
                    3200, 3200, 3200, 3000, 3000, 3000, 3000, 2900, 2900, 2900, 2900, 2800, 2800,
                ],
                // License level 1 (heavy AVX2): 1.7 GHz base.
                avx_base_mhz: Some(1700),
                avx_turbo_by_active_cores_mhz: vec![
                    3600, 3600, 3400, 3400, 3200, 3200, 3200, 3200, 3100, 3100, 3100, 3100, 2900,
                    2900, 2900, 2900, 2700, 2700, 2700, 2700, 2500, 2500, 2500, 2500, 2400, 2400,
                ],
                // License level 2 (heavy AVX-512): 1.3 GHz base.
                avx512_base_mhz: Some(1300),
                avx512_turbo_by_active_cores_mhz: vec![
                    3500, 3500, 3300, 3300, 2900, 2900, 2900, 2900, 2700, 2700, 2700, 2700, 2500,
                    2500, 2500, 2500, 2200, 2200, 2200, 2200, 2100, 2100, 2100, 2100, 1900, 1900,
                ],
                uncore_min_mhz: calib::skx::UNCORE_MIN_MHZ,
                uncore_max_mhz: calib::skx::UNCORE_MAX_MHZ,
            },
            tdp_w: 165.0,
            cache: CacheSpec {
                line_bytes: 64,
                l1d_kib: 32,
                l1d_ways: 8,
                l1i_kib: 32,
                l2_kib: 1024,
                l2_ways: 16,
                // Non-inclusive 1.375 MiB L3 slice per core.
                l3_slice_kib: 1408,
                l3_ways: 11,
            },
            mem: MemSpec::ddr4_2666_hex(),
            core_vf: VfCurveSpec::skylake_core(),
            uncore_vf: VfCurveSpec::skylake_mesh(),
            power: PowerCoeffs::skylake_sp(),
            acpi: AcpiLatencyTable::skylake_sp(),
        }
    }

    /// Logical CPUs (hardware threads) on this SKU.
    pub fn hw_threads(&self) -> usize {
        self.cores * self.threads_per_core
    }
}

/// PSU loss curve: `loss(P_dc) = a2·P_dc² + a1·P_dc + a0` (W). Chosen so the
/// measured AC-vs-RAPL relation reproduces the paper's quadratic fit
/// (footnote 2) given the node's constant non-RAPL DC load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PsuCurve {
    pub a2: f64,
    pub a1: f64,
    pub a0_w: f64,
}

/// The full compute-node description (paper Table II / Section III:
/// bullx R421 E4, two E5-2680 v3, fans at maximum, LMG450 metered).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub name: &'static str,
    pub sku: SkuSpec,
    pub sockets: usize,
    /// Per-socket dynamic-power multiplier (paper Section III: socket 0 is
    /// less efficient than socket 1).
    pub socket_power_mult: Vec<f64>,
    /// Constant DC load besides the RAPL domains: fans at maximum speed,
    /// mainboard, mainboard VR losses (W).
    pub rest_dc_w: f64,
    pub psu: PsuCurve,
}

impl NodeSpec {
    /// The paper's test node: two E5-2680 v3, fans pinned at maximum.
    pub fn paper_test_node() -> Self {
        NodeSpec {
            name: "bullx R421 E4 (2× Xeon E5-2680 v3)",
            sku: SkuSpec::xeon_e5_2680_v3(),
            sockets: 2,
            socket_power_mult: calib::SOCKET_POWER_EFFICIENCY.to_vec(),
            // Fans at max (~110 W) + mainboard (~25 W) + VR losses (~15 W).
            rest_dc_w: 150.0,
            // Derived so AC(P_rapl) = 0.0003·P² + 1.097·P + 225.7 exactly:
            // AC = P_dc + loss(P_dc), P_dc = P_rapl + rest_dc_w.
            psu: PsuCurve {
                a2: calib::AC_FIT_A2,
                a1: 0.007,
                a0_w: 67.9,
            },
        }
    }

    /// A Sandy Bridge-EP comparison node (two E5-2690).
    pub fn sandy_bridge_node() -> Self {
        NodeSpec {
            name: "SNB-EP reference (2× Xeon E5-2690)",
            sku: SkuSpec::xeon_e5_2690(),
            sockets: 2,
            socket_power_mult: vec![1.0, 1.0],
            rest_dc_w: 60.0, // normal fan policy on the reference machine
            psu: PsuCurve {
                a2: 0.0004,
                a1: 0.01,
                a0_w: 40.0,
            },
        }
    }

    /// A Westmere-EP comparison node (two X5670).
    pub fn westmere_node() -> Self {
        NodeSpec {
            name: "WSM-EP reference (2× Xeon X5670)",
            sku: SkuSpec::xeon_x5670(),
            sockets: 2,
            socket_power_mult: vec![1.0, 1.0],
            rest_dc_w: 55.0,
            psu: PsuCurve {
                a2: 0.0004,
                a1: 0.01,
                a0_w: 40.0,
            },
        }
    }

    /// The follow-up survey's Skylake-SP test node: two Xeon Platinum 8170
    /// (1905.12468 Section III; same HDEEM-instrumented bull chassis family
    /// as the Haswell node).
    pub fn skylake_sp_node() -> Self {
        NodeSpec {
            name: "bull sequana (2× Xeon Platinum 8170)",
            sku: SkuSpec::xeon_platinum_8170(),
            sockets: 2,
            socket_power_mult: vec![1.0, 1.0],
            // Fans + mainboard + board-VR losses; higher than the Haswell
            // node (more DIMMs, bigger VRs for the 165 W sockets).
            rest_dc_w: 160.0,
            psu: PsuCurve {
                a2: 0.0002,
                a1: 0.012,
                a0_w: 55.0,
            },
        }
    }

    /// Total hardware threads across all sockets.
    pub fn total_hw_threads(&self) -> usize {
        self.sockets * self.sku.hw_threads()
    }

    /// AC power predicted by the node's electrical design for a given total
    /// RAPL (package + DRAM, all sockets) power. This is the *design ground
    /// truth*; the Figure 2 experiment must re-discover it from noisy meter
    /// samples.
    pub fn design_ac_power_w(&self, p_rapl_w: f64) -> f64 {
        let p_dc = p_rapl_w + self.rest_dc_w;
        p_dc + self.psu.a2 * p_dc * p_dc + self.psu.a1 * p_dc + self.psu.a0_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_2680v3_matches_table2() {
        let sku = SkuSpec::xeon_e5_2680_v3();
        assert_eq!(sku.cores, 12);
        assert_eq!(sku.freq.min_mhz, 1200);
        assert_eq!(sku.freq.base_mhz, 2500);
        assert_eq!(sku.freq.turbo_mhz(1), 3300);
        assert_eq!(sku.freq.avx_base_mhz, Some(2100));
        assert_eq!(sku.tdp_w, 120.0);
        assert_eq!(sku.hw_threads(), 24);
    }

    #[test]
    fn e5_2680v3_l3_is_30_mib() {
        let sku = SkuSpec::xeon_e5_2680_v3();
        assert_eq!(sku.cache.l3_total_kib(sku.cores), 30 * 1024);
    }

    #[test]
    fn westmere_uncore_is_fixed() {
        let sku = SkuSpec::xeon_x5670();
        assert_eq!(sku.freq.uncore_min_mhz, sku.freq.uncore_max_mhz);
    }

    #[test]
    fn paper_node_reproduces_published_ac_fit() {
        // The node's electrical design must land exactly on the paper's
        // quadratic: AC = 0.0003·P² + 1.097·P + 225.7.
        let node = NodeSpec::paper_test_node();
        for p in [0.0_f64, 50.0, 100.0, 150.0, 200.0, 250.0, 287.0] {
            let expect = calib::AC_FIT_A2 * p * p + calib::AC_FIT_A1 * p + calib::AC_FIT_A0_W;
            let got = node.design_ac_power_w(p);
            assert!(
                (got - expect).abs() < 1e-6,
                "P_rapl={p}: design {got} vs fit {expect}"
            );
        }
    }

    #[test]
    fn paper_node_idle_power_is_261_5_w() {
        // Table II: idle power 261.5 W with ~32 W idle RAPL.
        let node = NodeSpec::paper_test_node();
        let ac = node.design_ac_power_w(32.0);
        assert!((ac - calib::IDLE_NODE_POWER_W).abs() < 1.5, "ac = {ac}");
    }

    #[test]
    fn socket0_is_less_efficient() {
        let node = NodeSpec::paper_test_node();
        assert!(node.socket_power_mult[0] > node.socket_power_mult[1]);
    }

    #[test]
    fn all_reference_nodes_have_two_sockets() {
        for node in [
            NodeSpec::paper_test_node(),
            NodeSpec::sandy_bridge_node(),
            NodeSpec::westmere_node(),
        ] {
            assert_eq!(node.sockets, 2);
            assert_eq!(node.socket_power_mult.len(), 2);
        }
    }
}
