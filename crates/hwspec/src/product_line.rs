//! The Xeon E5-2600 v3 product line (paper Section II-A: "Haswell-EP
//! processors are available with 4 to 18 cores. Three different dies cover
//! this range").
//!
//! Frequency data from the Intel specification update the paper cites
//! (\[10\]); turbo/AVX bins are generated from the published single-core
//! maximum and all-core values with the standard 100 MHz-per-2-cores
//! stagger, since the full per-core-count tables are SKU datasheet
//! material.

use crate::die::DieLayout;
use crate::freq::FrequencyTable;
use crate::generation::CpuGeneration;
use crate::memcfg::MemSpec;
use crate::sku::{CacheSpec, PowerCoeffs, SkuSpec};
use crate::vf::VfCurveSpec;
use crate::{calib, AcpiLatencyTable};

/// Construct a Haswell-EP SKU from its headline numbers.
pub fn haswell_ep_sku(
    model: &'static str,
    cores: usize,
    base_mhz: u32,
    max_turbo_mhz: u32,
    tdp_w: f64,
) -> SkuSpec {
    assert!((4..=18).contains(&cores), "Haswell-EP spans 4–18 cores");
    // Turbo bins: single-core max, dropping 100 MHz per two additional
    // active cores until the all-core bin.
    let turbo: Vec<u32> = (0..cores)
        .map(|active| {
            let steps = (active / 2) as u32 * 100;
            max_turbo_mhz.saturating_sub(steps).max(base_mhz + 200)
        })
        .collect();
    // AVX base sits ~400 MHz below nominal; AVX turbo ~200 MHz below the
    // regular bins (the test SKU's published 2.1/2.8–3.1 pattern).
    let avx_base = base_mhz.saturating_sub(400).max(1200);
    let avx_turbo: Vec<u32> = turbo
        .iter()
        .map(|t| t.saturating_sub(200).max(avx_base))
        .collect();
    SkuSpec {
        generation: CpuGeneration::HaswellEp,
        model,
        cores,
        threads_per_core: 2,
        die: DieLayout::for_haswell_core_count(cores),
        freq: FrequencyTable {
            min_mhz: 1200,
            base_mhz,
            turbo_by_active_cores_mhz: turbo,
            avx_base_mhz: Some(avx_base),
            avx_turbo_by_active_cores_mhz: avx_turbo,
            avx512_base_mhz: None,
            avx512_turbo_by_active_cores_mhz: vec![],
            uncore_min_mhz: calib::UNCORE_MIN_MHZ,
            uncore_max_mhz: calib::UNCORE_MAX_MHZ,
        },
        tdp_w,
        cache: CacheSpec::xeon_ep(),
        mem: MemSpec::ddr4_2133_quad(),
        core_vf: VfCurveSpec::haswell_core(),
        uncore_vf: VfCurveSpec::haswell_uncore(),
        power: PowerCoeffs::haswell_ep(),
        acpi: AcpiLatencyTable::haswell_ep(),
    }
}

/// Representative SKUs across the three dies.
pub fn e5_2600_v3_line() -> Vec<SkuSpec> {
    vec![
        haswell_ep_sku("Intel Xeon E5-2623 v3", 4, 3000, 3500, 105.0),
        haswell_ep_sku("Intel Xeon E5-2620 v3", 6, 2400, 3200, 85.0),
        haswell_ep_sku("Intel Xeon E5-2630 v3", 8, 2400, 3200, 85.0),
        haswell_ep_sku("Intel Xeon E5-2650 v3", 10, 2300, 3000, 105.0),
        haswell_ep_sku("Intel Xeon E5-2680 v3", 12, 2500, 3300, 120.0),
        haswell_ep_sku("Intel Xeon E5-2690 v3", 12, 2600, 3500, 135.0),
        haswell_ep_sku("Intel Xeon E5-2695 v3", 14, 2300, 3300, 120.0),
        haswell_ep_sku("Intel Xeon E5-2697 v3", 14, 2600, 3600, 145.0),
        haswell_ep_sku("Intel Xeon E5-2698 v3", 16, 2300, 3600, 135.0),
        haswell_ep_sku("Intel Xeon E5-2699 v3", 18, 2300, 3600, 145.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_covers_all_three_dies() {
        let line = e5_2600_v3_line();
        let mut die_names: Vec<&str> = line.iter().map(|s| s.die.name).collect();
        die_names.sort_unstable();
        die_names.dedup();
        assert_eq!(die_names.len(), 3, "{die_names:?}");
    }

    #[test]
    fn die_selection_matches_figure1() {
        for sku in e5_2600_v3_line() {
            let expect = match sku.cores {
                4..=8 => 8,
                9..=12 => 12,
                _ => 18,
            };
            assert_eq!(
                sku.die.physical_cores, expect,
                "{} ({} cores)",
                sku.model, sku.cores
            );
        }
    }

    #[test]
    fn l3_scales_at_2_5_mib_per_core() {
        for sku in e5_2600_v3_line() {
            assert_eq!(
                sku.cache.l3_total_kib(sku.cores),
                sku.cores * 2560,
                "{}",
                sku.model
            );
        }
    }

    #[test]
    fn turbo_bins_are_monotone_and_bounded() {
        for sku in e5_2600_v3_line() {
            let bins = &sku.freq.turbo_by_active_cores_mhz;
            assert_eq!(bins.len(), sku.cores, "{}", sku.model);
            for w in bins.windows(2) {
                assert!(w[0] >= w[1], "{}: {bins:?}", sku.model);
            }
            assert!(bins[0] > sku.freq.base_mhz, "{}", sku.model);
        }
    }

    #[test]
    fn avx_bins_sit_below_regular_bins() {
        for sku in e5_2600_v3_line() {
            let avx_base = sku.freq.avx_base_mhz.unwrap();
            assert!(avx_base < sku.freq.base_mhz, "{}", sku.model);
            for (avx, reg) in sku
                .freq
                .avx_turbo_by_active_cores_mhz
                .iter()
                .zip(&sku.freq.turbo_by_active_cores_mhz)
            {
                assert!(avx <= reg, "{}", sku.model);
                assert!(*avx >= avx_base, "{}", sku.model);
            }
        }
    }

    #[test]
    fn generated_2680v3_matches_the_hand_written_test_sku() {
        let generated = haswell_ep_sku("Intel Xeon E5-2680 v3", 12, 2500, 3300, 120.0);
        let reference = SkuSpec::xeon_e5_2680_v3();
        assert_eq!(generated.cores, reference.cores);
        assert_eq!(generated.freq.base_mhz, reference.freq.base_mhz);
        assert_eq!(generated.freq.turbo_mhz(1), reference.freq.turbo_mhz(1));
        assert_eq!(generated.freq.avx_base_mhz, reference.freq.avx_base_mhz);
        assert_eq!(generated.tdp_w, reference.tdp_w);
        assert_eq!(generated.die.name, reference.die.name);
    }

    #[test]
    #[should_panic]
    fn twenty_cores_is_rejected() {
        let _ = haswell_ep_sku("bogus", 20, 2000, 2500, 100.0);
    }
}
