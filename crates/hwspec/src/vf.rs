//! Voltage/frequency curve specification for the FIVR model.
//!
//! The actual electrical model lives in `hsw-power`; this module only holds
//! the curve parameters so that all SKU data stays in `hsw-hwspec`.

use serde::{Deserialize, Serialize};

/// Parameters of a piecewise-linear V/f curve: below `knee_mhz` the voltage
/// floor `vmin` applies; above it voltage rises linearly to `v_at_max` at
/// `max_mhz`. This is the standard shape for FIVR-era parts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfCurveSpec {
    /// Minimum operating voltage (V) — applies at and below the knee.
    pub vmin: f64,
    /// Frequency (MHz) up to which `vmin` suffices.
    pub knee_mhz: u32,
    /// Voltage at the maximum boost frequency (V).
    pub v_at_max: f64,
    /// Maximum boost frequency (MHz) anchoring `v_at_max`.
    pub max_mhz: u32,
}

impl VfCurveSpec {
    /// Typical Haswell-EP core V/f curve: ~0.7 V floor up to 1.2 GHz,
    /// ~1.15 V at 3.3 GHz single-core turbo.
    pub fn haswell_core() -> Self {
        VfCurveSpec {
            vmin: 0.70,
            knee_mhz: 1200,
            v_at_max: 1.15,
            max_mhz: 3300,
        }
    }

    /// Haswell-EP uncore V/f curve (ring + LLC domain).
    pub fn haswell_uncore() -> Self {
        VfCurveSpec {
            vmin: 0.75,
            knee_mhz: 1200,
            v_at_max: 1.10,
            max_mhz: 3000,
        }
    }

    /// Skylake-SP core V/f curve (14 nm; per-core domains fed from the
    /// mainboard VR, 1905.12468): ~0.65 V floor, ~1.05 V at the 3.7 GHz
    /// dual-core turbo.
    pub fn skylake_core() -> Self {
        VfCurveSpec {
            vmin: 0.65,
            knee_mhz: 1200,
            v_at_max: 1.05,
            max_mhz: 3700,
        }
    }

    /// Skylake-SP mesh (uncore) V/f curve: 1.2–2.4 GHz range.
    pub fn skylake_mesh() -> Self {
        VfCurveSpec {
            vmin: 0.70,
            knee_mhz: 1200,
            v_at_max: 0.95,
            max_mhz: 2400,
        }
    }

    /// Sandy Bridge-EP core curve (chip-wide domain; mainboard VR).
    pub fn sandy_bridge_core() -> Self {
        VfCurveSpec {
            vmin: 0.80,
            knee_mhz: 1200,
            v_at_max: 1.20,
            max_mhz: 3800,
        }
    }

    /// Operating voltage (V) at `mhz`, clamped to the curve's range.
    pub fn voltage_at(&self, mhz: u32) -> f64 {
        if mhz <= self.knee_mhz {
            return self.vmin;
        }
        let mhz = mhz.min(self.max_mhz);
        let t = (mhz - self.knee_mhz) as f64 / (self.max_mhz - self.knee_mhz) as f64;
        self.vmin + t * (self.v_at_max - self.vmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_is_monotone_in_frequency() {
        let c = VfCurveSpec::haswell_core();
        let mut prev = 0.0;
        for mhz in (1200..=3300).step_by(100) {
            let v = c.voltage_at(mhz);
            assert!(v >= prev, "voltage dropped at {mhz} MHz");
            prev = v;
        }
    }

    #[test]
    fn voltage_floor_below_knee() {
        let c = VfCurveSpec::haswell_core();
        assert_eq!(c.voltage_at(800), c.vmin);
        assert_eq!(c.voltage_at(1200), c.vmin);
    }

    #[test]
    fn voltage_clamps_at_max() {
        let c = VfCurveSpec::haswell_core();
        assert_eq!(c.voltage_at(3300), c.v_at_max);
        assert_eq!(c.voltage_at(5000), c.v_at_max);
    }

    #[test]
    fn endpoints_are_exact() {
        let c = VfCurveSpec::haswell_uncore();
        assert!((c.voltage_at(c.knee_mhz) - c.vmin).abs() < 1e-12);
        assert!((c.voltage_at(c.max_mhz) - c.v_at_max).abs() < 1e-12);
    }
}
