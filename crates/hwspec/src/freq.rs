//! P-states, frequency tables, turbo and AVX frequency bins.
//!
//! Frequencies are kept in MHz as `u32`; p-states are expressed as bus-ratio
//! multipliers of the 100 MHz BCLK, matching the `IA32_PERF_CTL` encoding.

use serde::{Deserialize, Serialize};

/// MHz per bus-ratio step (100 MHz BCLK on all covered generations).
pub const MHZ_PER_RATIO: u32 = 100;

/// A performance state expressed as a bus ratio (frequency = ratio × 100 MHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PState(pub u8);

impl PState {
    /// Construct from a frequency in MHz (must be a multiple of 100 MHz).
    pub fn from_mhz(mhz: u32) -> Self {
        debug_assert_eq!(mhz % MHZ_PER_RATIO, 0, "p-states are 100 MHz granular");
        PState((mhz / MHZ_PER_RATIO) as u8)
    }

    /// Frequency in MHz.
    pub fn mhz(self) -> u32 {
        self.0 as u32 * MHZ_PER_RATIO
    }

    /// Frequency in GHz.
    pub fn ghz(self) -> f64 {
        self.mhz() as f64 / 1000.0
    }
}

/// A core-frequency *setting*: either a fixed p-state or turbo mode
/// (the OS requests the turbo ratio; the PCU picks the actual frequency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FreqSetting {
    /// A specific selectable p-state.
    Fixed(PState),
    /// Turbo mode: opportunistic frequencies above nominal.
    Turbo,
}

impl FreqSetting {
    pub fn from_mhz(mhz: u32) -> Self {
        FreqSetting::Fixed(PState::from_mhz(mhz))
    }

    /// Label used in result tables ("Turbo", "2.5", ...).
    pub fn label(&self) -> String {
        match self {
            FreqSetting::Turbo => "Turbo".to_string(),
            FreqSetting::Fixed(p) => format!("{:.1}", p.ghz()),
        }
    }
}

/// The full frequency specification of a SKU: selectable p-state range,
/// turbo bins by active core count, and AVX frequency bins
/// (paper Sections II-E/II-F, Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    /// Lowest selectable p-state frequency in MHz (1.2 GHz on the test SKU).
    pub min_mhz: u32,
    /// Nominal ("base") frequency in MHz (2.5 GHz on the test SKU).
    pub base_mhz: u32,
    /// Maximum turbo frequency by number of active cores: index 0 is the
    /// single-core turbo, last entry the all-core turbo. Empty if the SKU has
    /// no turbo.
    pub turbo_by_active_cores_mhz: Vec<u32>,
    /// AVX base frequency (minimal guaranteed frequency under AVX load) in
    /// MHz; `None` for generations without AVX frequencies.
    pub avx_base_mhz: Option<u32>,
    /// AVX turbo frequencies by active core count (paper: 2.8–3.1 GHz
    /// depending on the number of active cores).
    pub avx_turbo_by_active_cores_mhz: Vec<u32>,
    /// AVX-512 (license level 2) base frequency in MHz; `None` before
    /// Skylake-SP (1905.12468 Section II-C).
    pub avx512_base_mhz: Option<u32>,
    /// AVX-512 turbo frequencies by active core count.
    pub avx512_turbo_by_active_cores_mhz: Vec<u32>,
    /// Uncore frequency bounds in MHz.
    pub uncore_min_mhz: u32,
    pub uncore_max_mhz: u32,
}

impl FrequencyTable {
    /// Maximum non-AVX turbo frequency for `active` active cores.
    /// `active == 0` is treated as 1 (a waking core).
    pub fn turbo_mhz(&self, active: usize) -> u32 {
        if self.turbo_by_active_cores_mhz.is_empty() {
            return self.base_mhz;
        }
        let idx = active.max(1).min(self.turbo_by_active_cores_mhz.len()) - 1;
        self.turbo_by_active_cores_mhz[idx]
    }

    /// Maximum AVX turbo frequency for `active` active cores; falls back to
    /// the regular turbo table when the SKU has no AVX bins.
    pub fn avx_turbo_mhz(&self, active: usize) -> u32 {
        if self.avx_turbo_by_active_cores_mhz.is_empty() {
            return self.turbo_mhz(active);
        }
        let idx = active.max(1).min(self.avx_turbo_by_active_cores_mhz.len()) - 1;
        self.avx_turbo_by_active_cores_mhz[idx]
    }

    /// Maximum AVX-512 turbo frequency for `active` active cores; falls
    /// back to the AVX table (and transitively the regular turbo table)
    /// when the SKU has no 512-bit bins.
    pub fn avx512_turbo_mhz(&self, active: usize) -> u32 {
        if self.avx512_turbo_by_active_cores_mhz.is_empty() {
            return self.avx_turbo_mhz(active);
        }
        let idx = active
            .max(1)
            .min(self.avx512_turbo_by_active_cores_mhz.len())
            - 1;
        self.avx512_turbo_by_active_cores_mhz[idx]
    }

    /// Turbo ceiling for a vector-license level: 0 = scalar/128-bit,
    /// 1 = AVX(2), 2 = AVX-512 (1905.12468 Section II-C).
    pub fn license_turbo_mhz(&self, level: u8, active: usize) -> u32 {
        match level {
            0 => self.turbo_mhz(active),
            1 => self.avx_turbo_mhz(active),
            _ => self.avx512_turbo_mhz(active),
        }
    }

    /// Guaranteed base frequency for a vector-license level.
    pub fn license_base_mhz(&self, level: u8) -> u32 {
        match level {
            0 => self.base_mhz,
            1 => self.avx_base_mhz.unwrap_or(self.base_mhz),
            _ => self
                .avx512_base_mhz
                .or(self.avx_base_mhz)
                .unwrap_or(self.base_mhz),
        }
    }

    /// All selectable fixed p-states, highest first (as listed in the
    /// paper's tables: 2.5, 2.4, …, 1.2).
    pub fn selectable_pstates(&self) -> Vec<PState> {
        let mut v = Vec::new();
        let mut mhz = self.base_mhz;
        while mhz >= self.min_mhz {
            v.push(PState::from_mhz(mhz));
            mhz -= MHZ_PER_RATIO;
        }
        v
    }

    /// All settings swept by the paper's tables: Turbo followed by the fixed
    /// p-states, highest first.
    pub fn all_settings(&self) -> Vec<FreqSetting> {
        let mut v = vec![FreqSetting::Turbo];
        v.extend(
            self.selectable_pstates()
                .into_iter()
                .map(FreqSetting::Fixed),
        );
        v
    }

    /// The frequency ceiling granted for a given setting before power limits:
    /// fixed settings cap at their own frequency, turbo at the active-core
    /// turbo bin.
    pub fn ceiling_mhz(&self, setting: FreqSetting, active: usize) -> u32 {
        match setting {
            FreqSetting::Fixed(p) => p.mhz(),
            FreqSetting::Turbo => self.turbo_mhz(active),
        }
    }

    /// Whether a frequency is opportunistic, i.e. above the AVX base
    /// frequency and hence only sustained if power/thermal limits allow
    /// (paper Section II-F: "Every frequency above AVX base, (even the base
    /// frequency) can be considered turbo").
    pub fn is_opportunistic(&self, mhz: u32) -> bool {
        match self.avx_base_mhz {
            Some(avx_base) => mhz > avx_base,
            // Pre-AVX-frequency generations: only above-nominal is turbo.
            None => mhz > self.base_mhz,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e5_2680v3_table() -> FrequencyTable {
        crate::sku::SkuSpec::xeon_e5_2680_v3().freq
    }

    #[test]
    fn pstate_mhz_round_trip() {
        for mhz in (1200..=3300).step_by(100) {
            assert_eq!(PState::from_mhz(mhz).mhz(), mhz);
        }
    }

    #[test]
    fn selectable_pstates_match_table2_range() {
        // Table II: selectable p-states 1.2 – 2.5 GHz → 14 states.
        let t = e5_2680v3_table();
        let ps = t.selectable_pstates();
        assert_eq!(ps.len(), 14);
        assert_eq!(ps.first().unwrap().mhz(), 2500);
        assert_eq!(ps.last().unwrap().mhz(), 1200);
    }

    #[test]
    fn all_settings_is_turbo_plus_pstates() {
        let t = e5_2680v3_table();
        let s = t.all_settings();
        assert_eq!(s.len(), 15);
        assert_eq!(s[0], FreqSetting::Turbo);
        assert_eq!(s[0].label(), "Turbo");
        assert_eq!(s[1].label(), "2.5");
        assert_eq!(s[14].label(), "1.2");
    }

    #[test]
    fn turbo_bins_monotone_nonincreasing_with_active_cores() {
        let t = e5_2680v3_table();
        for a in 1..t.turbo_by_active_cores_mhz.len() {
            assert!(t.turbo_mhz(a) >= t.turbo_mhz(a + 1));
        }
    }

    #[test]
    fn single_core_turbo_is_3300() {
        // Table II: turbo frequency up to 3.3 GHz.
        assert_eq!(e5_2680v3_table().turbo_mhz(1), 3300);
    }

    #[test]
    fn avx_turbo_range_matches_paper() {
        // Section II-F: AVX turbo between 2.8 and 3.1 GHz.
        let t = e5_2680v3_table();
        let bins = &t.avx_turbo_by_active_cores_mhz;
        assert_eq!(*bins.iter().max().unwrap(), 3100);
        assert_eq!(*bins.iter().min().unwrap(), 2800);
    }

    #[test]
    fn everything_above_avx_base_is_opportunistic() {
        let t = e5_2680v3_table();
        assert!(t.is_opportunistic(2200));
        assert!(t.is_opportunistic(2500)); // nominal frequency included!
        assert!(!t.is_opportunistic(2100)); // AVX base itself is guaranteed
        assert!(!t.is_opportunistic(1200));
    }

    #[test]
    fn ceiling_respects_setting() {
        let t = e5_2680v3_table();
        assert_eq!(t.ceiling_mhz(FreqSetting::from_mhz(1800), 12), 1800);
        assert_eq!(t.ceiling_mhz(FreqSetting::Turbo, 1), 3300);
        assert!(t.ceiling_mhz(FreqSetting::Turbo, 12) < 3300);
    }
}
