//! Performance and Energy Bias Hint (EPB) semantics (paper Section II-C).
//!
//! The EPB is a 4-bit field in `IA32_ENERGY_PERF_BIAS`. Only three of the 16
//! settings are architecturally defined (0 = performance, 6 = balanced,
//! 15 = energy saving); the paper measured that the remaining values map to
//! the classes encoded in [`EpbClass::from_raw`].

use serde::{Deserialize, Serialize};

/// Semantic class of an EPB setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EpbClass {
    /// Optimal performance: turbo stays active even at the base-frequency
    /// setting; UFS pins the uncore at its maximum (paper Table III note).
    Performance,
    /// Balanced between performance and energy (firmware default on the test
    /// system, paper Table II).
    Balanced,
    /// Low power.
    EnergySaving,
}

impl EpbClass {
    /// Canonical raw register values for each class (0, 6, 15).
    pub fn canonical_raw(self) -> u8 {
        match self {
            EpbClass::Performance => 0,
            EpbClass::Balanced => 6,
            EpbClass::EnergySaving => 15,
        }
    }

    /// Decode a 4-bit EPB register value into its measured semantic class
    /// (paper Section II-C: "other settings are mapped to balanced (1-7) and
    /// energy saving (8-14)").
    pub fn from_raw(raw: u8) -> EpbClass {
        match raw & 0xF {
            0 => EpbClass::Performance,
            1..=7 => EpbClass::Balanced,
            _ => EpbClass::EnergySaving,
        }
    }

    /// Short label used in Table V headers ("perf", "bal", "power").
    pub fn short_label(self) -> &'static str {
        match self {
            EpbClass::Performance => "perf",
            EpbClass::Balanced => "bal",
            EpbClass::EnergySaving => "power",
        }
    }

    /// All classes in the paper's Table V column order (power, bal, perf).
    pub const TABLE5_ORDER: [EpbClass; 3] = [
        EpbClass::EnergySaving,
        EpbClass::Balanced,
        EpbClass::Performance,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_values_decode_to_themselves() {
        for class in [
            EpbClass::Performance,
            EpbClass::Balanced,
            EpbClass::EnergySaving,
        ] {
            assert_eq!(EpbClass::from_raw(class.canonical_raw()), class);
        }
    }

    #[test]
    fn measured_mapping_matches_paper() {
        assert_eq!(EpbClass::from_raw(0), EpbClass::Performance);
        for raw in 1..=7 {
            assert_eq!(EpbClass::from_raw(raw), EpbClass::Balanced, "raw={raw}");
        }
        for raw in 8..=15 {
            assert_eq!(EpbClass::from_raw(raw), EpbClass::EnergySaving, "raw={raw}");
        }
    }

    #[test]
    fn only_low_4_bits_matter() {
        assert_eq!(EpbClass::from_raw(0x10), EpbClass::Performance);
        assert_eq!(EpbClass::from_raw(0xF6), EpbClass::Balanced);
    }
}
