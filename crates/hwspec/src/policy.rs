//! The generation policy layer: firmware behavior behind a trait.
//!
//! The survey's cross-generation story (paper Section II, and the
//! follow-up Skylake-SP survey, arXiv 1905.12468) is a story about
//! *firmware policy*, not just SKU numbers: how the uncore is clocked, how
//! p-state requests are serviced, how vector licenses gate the clock, what
//! backs the RAPL counters, and how c-state exits price out. This module
//! collects those mechanisms into plain-data policy descriptors returned
//! by a [`FirmwarePolicy`] implementation per [`CpuGeneration`], so the
//! model crates (`hsw-pcu`, `hsw-cstates`, `hsw-power`, `hsw-msr`) consume
//! the policy instead of matching on the generation enum. hsw-lint rule M5
//! enforces that no generation matching happens outside this module and
//! [`crate::generation`].
//!
//! Everything here is pure data; the Haswell values are bit-for-bit the
//! calibration constants from [`crate::calib`], so the refactor leaves
//! `survey.json` byte-identical.

use crate::calib;
use crate::generation::{CpuGeneration, PStateTransitionMode, RaplMode, UncoreClockSource};

/// Interconnect fabric carrying L3 and the memory controllers: the ring
/// of paper Figure 1, or the Skylake-SP mesh (1905.12468 Section II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UncoreFabric {
    Ring,
    Mesh,
}

/// How p-state change requests are serviced (paper Section VI-A;
/// 1905.12468 Section II-D for HWP).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PStatePolicy {
    pub transition: PStateTransitionMode,
    /// Per-core p-state domains (PCPS) vs. one chip-wide domain.
    pub per_core_domains: bool,
    /// Voltage/frequency switching time once a request is latched (µs).
    pub switching_time_us: u32,
    /// Jitter of the opportunity period (± µs, opportunity mode only).
    pub opportunity_jitter_us: u32,
    /// Cadence at which the PCU re-evaluates its power-limit / uncore
    /// solve (µs).
    pub pcu_eval_period_us: u32,
}

/// Uncore clock management (paper Sections II-D and V-A; 1905.12468
/// Section II-B for the per-core-requested mesh UFS).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncorePolicy {
    pub source: UncoreClockSource,
    pub fabric: UncoreFabric,
    /// Whether UFS requests are tracked per core (Skylake-SP) or derived
    /// from the fastest active core chip-wide (Haswell-EP Table III).
    pub per_core_requests: bool,
    /// UFS schedule, indexed by core-frequency setting (0 = Turbo, then
    /// base downward in 100 MHz bins), for a socket with active cores.
    pub active_schedule_mhz: &'static [u32],
    /// Same schedule for a passive socket tracking the active one.
    pub passive_schedule_mhz: &'static [u32],
    /// Memory-stall fraction at which the UFS ramp reaches the uncore
    /// maximum.
    pub stall_ramp_full: f64,
    /// Stall fraction above which leftover power budget may boost the
    /// uncore beyond the schedule.
    pub stall_boost_threshold: f64,
}

/// Vector-width frequency licensing (paper Section II-F; 1905.12468
/// Section II-C for the AVX-512 license levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LicensePolicy {
    /// Number of reduced-frequency license levels: 0 = no licensing,
    /// 1 = one AVX level (Haswell-EP), 2 = AVX2 + AVX-512 (Skylake-SP).
    pub levels: u8,
    /// Voltage-ramp time entering a license (µs); AVX throughput is
    /// reduced while ramping.
    pub ramp_us: u32,
    /// Return-to-normal delay after the last wide instruction (µs).
    pub relax_us: u32,
    /// Execution-throughput factor while the voltage ramps.
    pub ramp_throughput_factor: f64,
}

/// RAPL semantics: backing, counter geometry, and units (paper Section
/// III; 1905.12468 Section II-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaplPolicy {
    pub mode: RaplMode,
    /// Package-domain energy status unit (µJ per count).
    pub pkg_energy_unit_uj: f64,
    /// DRAM-domain energy status unit (µJ per count). Haswell-EP fixes
    /// this at 15.3 µJ regardless of `MSR_RAPL_POWER_UNIT`; Skylake-SP
    /// returns to the uniform package unit.
    pub dram_energy_unit_uj: f64,
    /// Width of the energy status counters in bits.
    pub counter_bits: u32,
    /// Relative noise amplitude of the measured (FIVR/IMON) readout.
    pub measured_noise_frac: f64,
    /// Relative noise amplitude of the modeled readout.
    pub modeled_noise_frac: f64,
    /// Whether a DRAM RAPL domain is exposed (paper Section IV).
    pub has_dram_domain: bool,
    /// Whether the PP0 (core) energy domain is exposed.
    pub has_pp0_domain: bool,
    /// Whether `MSR_UNCORE_RATIO_LIMIT` exists.
    pub has_uncore_ratio_limit_msr: bool,
}

/// C-state exit-latency table (paper Figures 5/6, Section VI-B). The
/// Haswell values are the `calib::cstate` constants; other generations
/// carry additive deep-exit deltas on top of the same structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CStateExitPolicy {
    pub c1_base_us: f64,
    pub c1_cycles_k: f64,
    pub c1_remote_extra_us: f64,
    pub c3_base_us: f64,
    pub c3_highfreq_step_us: f64,
    pub c3_highfreq_threshold_ghz: f64,
    pub c3_remote_extra_us: f64,
    pub pkg_c3_extra_min_us: f64,
    pub pkg_c3_extra_max_us: f64,
    pub c6_extra_min_us: f64,
    pub c6_extra_max_us: f64,
    pub pkg_c6_extra_us: f64,
    /// Additive generation delta on every C3 exit (0 on Haswell).
    pub deep_c3_extra_us: f64,
    /// Additive generation delta on every C6 exit (0 on Haswell).
    pub deep_c6_extra_us: f64,
    /// Core-frequency range over which the frequency-dependent restore
    /// components interpolate (GHz).
    pub restore_freq_lo_ghz: f64,
    pub restore_freq_hi_ghz: f64,
}

/// Voltage-regulation topology (paper Section II-B): on-die FIVR fed by a
/// single mainboard `VCCin` rail on Haswell; Skylake-SP returns voltage
/// regulation to the mainboard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VrPolicy {
    /// Whether the part implements on-die fully integrated voltage
    /// regulators.
    pub has_fivr: bool,
    /// Nominal VR input-rail voltage commanded over SVID (V).
    pub vccin_v: f64,
    /// Legal core-voltage command range (V).
    pub core_v_lo: f64,
    pub core_v_hi: f64,
    /// FIVR efficiency curve η(P) = peak − light/P − slope·P, clamped.
    pub fivr_eff_peak: f64,
    pub fivr_eff_light_w: f64,
    pub fivr_eff_slope_per_w: f64,
    pub fivr_eff_lo: f64,
    pub fivr_eff_hi: f64,
    /// Settle criterion: a 100 mV step settles to within 1/ratio of the
    /// step in the p-state switching time.
    pub fivr_settle_ratio: f64,
    /// Settled-band half-width (V).
    pub fivr_settle_tol_v: f64,
    /// Legal SVID input-rail command range (V).
    pub svid_lo_v: f64,
    pub svid_hi_v: f64,
    /// Estimated-power thresholds for the mainboard VR phase-shedding
    /// states, with hysteresis (W).
    pub mbvr_ps1_below_w: f64,
    pub mbvr_ps2_below_w: f64,
    pub mbvr_hysteresis_w: f64,
}

/// The per-generation firmware behavior bundle. Implementations are
/// zero-sized and returned as `&'static dyn` by [`policy_for`] /
/// [`CpuGeneration::policy`].
pub trait FirmwarePolicy: Sync {
    fn generation(&self) -> CpuGeneration;
    fn pstate(&self) -> PStatePolicy;
    fn uncore(&self) -> UncorePolicy;
    fn license(&self) -> LicensePolicy;
    fn rapl(&self) -> RaplPolicy;
    fn cstate_exit(&self) -> CStateExitPolicy;
    fn vr(&self) -> VrPolicy;
}

/// The Haswell c-state exit table, straight from [`calib::cstate`].
fn haswell_cstate_exit() -> CStateExitPolicy {
    use calib::cstate as c;
    CStateExitPolicy {
        c1_base_us: c::C1_BASE_US,
        c1_cycles_k: c::C1_CYCLES_K,
        c1_remote_extra_us: c::C1_REMOTE_EXTRA_US,
        c3_base_us: c::C3_BASE_US,
        c3_highfreq_step_us: c::C3_HIGHFREQ_STEP_US,
        c3_highfreq_threshold_ghz: c::C3_HIGHFREQ_THRESHOLD_GHZ,
        c3_remote_extra_us: c::C3_REMOTE_EXTRA_US,
        pkg_c3_extra_min_us: c::PKG_C3_EXTRA_MIN_US,
        pkg_c3_extra_max_us: c::PKG_C3_EXTRA_MAX_US,
        c6_extra_min_us: c::C6_EXTRA_MIN_US,
        c6_extra_max_us: c::C6_EXTRA_MAX_US,
        pkg_c6_extra_us: c::PKG_C6_EXTRA_US,
        deep_c3_extra_us: 0.0,
        deep_c6_extra_us: 0.0,
        restore_freq_lo_ghz: 1.2,
        restore_freq_hi_ghz: 2.5,
    }
}

/// The pre-Haswell exit table: same structure, with the grey reference
/// curves' deep-exit deltas from Figures 5/6.
fn pre_haswell_cstate_exit() -> CStateExitPolicy {
    CStateExitPolicy {
        deep_c3_extra_us: calib::cstate::SNB_C3_EXTRA_US,
        deep_c6_extra_us: calib::cstate::SNB_C6_EXTRA_US,
        ..haswell_cstate_exit()
    }
}

/// The Haswell board/FIVR voltage-regulation bundle (paper Section II-B).
fn haswell_vr(has_fivr: bool) -> VrPolicy {
    VrPolicy {
        has_fivr,
        vccin_v: 1.80,
        core_v_lo: 0.4,
        core_v_hi: 1.4,
        fivr_eff_peak: 0.905,
        fivr_eff_light_w: 0.35,
        fivr_eff_slope_per_w: 0.0004,
        fivr_eff_lo: 0.5,
        fivr_eff_hi: 0.92,
        fivr_settle_ratio: 50.0,
        fivr_settle_tol_v: 0.002,
        svid_lo_v: 1.6,
        svid_hi_v: 2.0,
        mbvr_ps1_below_w: 45.0,
        mbvr_ps2_below_w: 15.0,
        mbvr_hysteresis_w: 4.0,
    }
}

/// Shared p-state mechanics for the immediate-transition generations.
fn immediate_pstate() -> PStatePolicy {
    PStatePolicy {
        transition: PStateTransitionMode::Immediate,
        per_core_domains: false,
        switching_time_us: calib::PSTATE_SWITCHING_TIME_US,
        opportunity_jitter_us: calib::PSTATE_OPPORTUNITY_JITTER_US,
        pcu_eval_period_us: calib::PSTATE_OPPORTUNITY_PERIOD_US,
    }
}

/// RAPL bundle for the modeled-RAPL EP generations (SNB/IVB).
fn modeled_rapl() -> RaplPolicy {
    RaplPolicy {
        mode: RaplMode::Modeled,
        pkg_energy_unit_uj: calib::PKG_ENERGY_UNIT_UJ,
        dram_energy_unit_uj: calib::DRAM_ENERGY_UNIT_UJ,
        counter_bits: 32,
        measured_noise_frac: 0.004,
        modeled_noise_frac: 0.01,
        has_dram_domain: true,
        has_pp0_domain: true,
        has_uncore_ratio_limit_msr: false,
    }
}

/// No vector licensing (pre-Haswell-EP; paper Section II-F).
fn no_license() -> LicensePolicy {
    LicensePolicy {
        levels: 0,
        ramp_us: calib::PSTATE_SWITCHING_TIME_US,
        relax_us: calib::AVX_RELAX_PERIOD_US,
        ramp_throughput_factor: 0.25,
    }
}

/// Westmere-EP: fixed uncore, no RAPL, immediate transitions.
pub struct WestmereEpPolicy;

impl FirmwarePolicy for WestmereEpPolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::WestmereEp
    }

    fn pstate(&self) -> PStatePolicy {
        immediate_pstate()
    }

    fn uncore(&self) -> UncorePolicy {
        UncorePolicy {
            source: UncoreClockSource::Fixed,
            fabric: UncoreFabric::Ring,
            per_core_requests: false,
            active_schedule_mhz: &calib::UFS_ACTIVE_SCHEDULE_MHZ,
            passive_schedule_mhz: &calib::UFS_PASSIVE_SCHEDULE_MHZ,
            stall_ramp_full: 0.85,
            stall_boost_threshold: 0.10,
        }
    }

    fn license(&self) -> LicensePolicy {
        no_license()
    }

    fn rapl(&self) -> RaplPolicy {
        RaplPolicy {
            mode: RaplMode::Unavailable,
            has_dram_domain: false,
            has_pp0_domain: false,
            ..modeled_rapl()
        }
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        pre_haswell_cstate_exit()
    }

    fn vr(&self) -> VrPolicy {
        haswell_vr(false)
    }
}

/// Sandy Bridge-EP: core-coupled uncore, modeled RAPL, chip-wide p-states.
pub struct SandyBridgeEpPolicy;

impl FirmwarePolicy for SandyBridgeEpPolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::SandyBridgeEp
    }

    fn pstate(&self) -> PStatePolicy {
        immediate_pstate()
    }

    fn uncore(&self) -> UncorePolicy {
        UncorePolicy {
            source: UncoreClockSource::CoreCoupled,
            fabric: UncoreFabric::Ring,
            per_core_requests: false,
            active_schedule_mhz: &calib::UFS_ACTIVE_SCHEDULE_MHZ,
            passive_schedule_mhz: &calib::UFS_PASSIVE_SCHEDULE_MHZ,
            stall_ramp_full: 0.85,
            stall_boost_threshold: 0.10,
        }
    }

    fn license(&self) -> LicensePolicy {
        no_license()
    }

    fn rapl(&self) -> RaplPolicy {
        modeled_rapl()
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        pre_haswell_cstate_exit()
    }

    fn vr(&self) -> VrPolicy {
        haswell_vr(false)
    }
}

/// Ivy Bridge-EP: same energy-management structure as Sandy Bridge-EP.
pub struct IvyBridgeEpPolicy;

impl FirmwarePolicy for IvyBridgeEpPolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::IvyBridgeEp
    }

    fn pstate(&self) -> PStatePolicy {
        SandyBridgeEpPolicy.pstate()
    }

    fn uncore(&self) -> UncorePolicy {
        SandyBridgeEpPolicy.uncore()
    }

    fn license(&self) -> LicensePolicy {
        SandyBridgeEpPolicy.license()
    }

    fn rapl(&self) -> RaplPolicy {
        SandyBridgeEpPolicy.rapl()
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        SandyBridgeEpPolicy.cstate_exit()
    }

    fn vr(&self) -> VrPolicy {
        SandyBridgeEpPolicy.vr()
    }
}

/// Haswell-EP: the paper's subject — FIVR, PCPS, 500 µs opportunity
/// windows, independent ring UFS, AVX frequencies, measured RAPL.
pub struct HaswellEpPolicy;

impl FirmwarePolicy for HaswellEpPolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::HaswellEp
    }

    fn pstate(&self) -> PStatePolicy {
        PStatePolicy {
            transition: PStateTransitionMode::OpportunityWindow {
                period_us: calib::PSTATE_OPPORTUNITY_PERIOD_US,
            },
            per_core_domains: true,
            ..immediate_pstate()
        }
    }

    fn uncore(&self) -> UncorePolicy {
        UncorePolicy {
            source: UncoreClockSource::Independent,
            fabric: UncoreFabric::Ring,
            per_core_requests: false,
            active_schedule_mhz: &calib::UFS_ACTIVE_SCHEDULE_MHZ,
            passive_schedule_mhz: &calib::UFS_PASSIVE_SCHEDULE_MHZ,
            stall_ramp_full: 0.85,
            stall_boost_threshold: 0.10,
        }
    }

    fn license(&self) -> LicensePolicy {
        LicensePolicy {
            levels: 1,
            ..no_license()
        }
    }

    fn rapl(&self) -> RaplPolicy {
        RaplPolicy {
            mode: RaplMode::Measured,
            has_pp0_domain: false,
            has_uncore_ratio_limit_msr: true,
            ..modeled_rapl()
        }
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        haswell_cstate_exit()
    }

    fn vr(&self) -> VrPolicy {
        haswell_vr(true)
    }
}

/// Haswell "HE" (client/workstation): FIVR and measured RAPL, but
/// immediate transitions and no per-core p-state domains.
pub struct HaswellHePolicy;

impl FirmwarePolicy for HaswellHePolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::HaswellHe
    }

    fn pstate(&self) -> PStatePolicy {
        immediate_pstate()
    }

    fn uncore(&self) -> UncorePolicy {
        HaswellEpPolicy.uncore()
    }

    fn license(&self) -> LicensePolicy {
        no_license()
    }

    fn rapl(&self) -> RaplPolicy {
        RaplPolicy {
            has_uncore_ratio_limit_msr: false,
            ..HaswellEpPolicy.rapl()
        }
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        haswell_cstate_exit()
    }

    fn vr(&self) -> VrPolicy {
        haswell_vr(true)
    }
}

/// Skylake-SP (1905.12468): mesh uncore with per-core UFS requests, HWP
/// autonomous p-states, AVX-512 license levels, uniform-unit RAPL, and
/// voltage regulation back on the mainboard.
pub struct SkylakeSpPolicy;

impl FirmwarePolicy for SkylakeSpPolicy {
    fn generation(&self) -> CpuGeneration {
        CpuGeneration::SkylakeSp
    }

    fn pstate(&self) -> PStatePolicy {
        PStatePolicy {
            transition: PStateTransitionMode::HwpAutonomous,
            per_core_domains: true,
            switching_time_us: calib::skx::PSTATE_SWITCHING_TIME_US,
            opportunity_jitter_us: 0,
            pcu_eval_period_us: calib::PSTATE_OPPORTUNITY_PERIOD_US,
        }
    }

    fn uncore(&self) -> UncorePolicy {
        UncorePolicy {
            source: UncoreClockSource::Independent,
            fabric: UncoreFabric::Mesh,
            per_core_requests: true,
            active_schedule_mhz: &calib::skx::UFS_ACTIVE_SCHEDULE_MHZ,
            passive_schedule_mhz: &calib::skx::UFS_PASSIVE_SCHEDULE_MHZ,
            stall_ramp_full: 0.85,
            stall_boost_threshold: 0.10,
        }
    }

    fn license(&self) -> LicensePolicy {
        LicensePolicy {
            levels: 2,
            ramp_us: calib::skx::LICENSE_RAMP_US,
            relax_us: calib::skx::LICENSE_RELAX_US,
            ramp_throughput_factor: 0.25,
        }
    }

    fn rapl(&self) -> RaplPolicy {
        RaplPolicy {
            mode: RaplMode::Measured,
            // 1905.12468 Section II-E: Skylake-SP reports DRAM energy in
            // the same unit as the package domain (no fixed 15.3 µJ
            // Haswell quirk).
            dram_energy_unit_uj: calib::PKG_ENERGY_UNIT_UJ,
            has_pp0_domain: false,
            has_uncore_ratio_limit_msr: true,
            ..modeled_rapl()
        }
    }

    fn cstate_exit(&self) -> CStateExitPolicy {
        CStateExitPolicy {
            // The restore components scale over the 8170's 1.2–2.1 GHz
            // selectable range.
            restore_freq_lo_ghz: 1.2,
            restore_freq_hi_ghz: 2.1,
            ..haswell_cstate_exit()
        }
    }

    fn vr(&self) -> VrPolicy {
        // Skylake-SP moved voltage regulation back to the mainboard
        // (1905.12468 Section II-A); the board VR model still applies.
        haswell_vr(false)
    }
}

/// The policy bundle for a generation.
pub fn policy_for(generation: CpuGeneration) -> &'static dyn FirmwarePolicy {
    match generation {
        CpuGeneration::WestmereEp => &WestmereEpPolicy,
        CpuGeneration::SandyBridgeEp => &SandyBridgeEpPolicy,
        CpuGeneration::IvyBridgeEp => &IvyBridgeEpPolicy,
        CpuGeneration::HaswellEp => &HaswellEpPolicy,
        CpuGeneration::HaswellHe => &HaswellHePolicy,
        CpuGeneration::SkylakeSp => &SkylakeSpPolicy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_with_skx() -> Vec<CpuGeneration> {
        let mut v = CpuGeneration::ALL.to_vec();
        v.push(CpuGeneration::SkylakeSp);
        v
    }

    #[test]
    fn policy_round_trips_its_generation() {
        for gen in all_with_skx() {
            assert_eq!(policy_for(gen).generation(), gen);
        }
    }

    #[test]
    fn haswell_policy_matches_the_calibration_constants() {
        let p = policy_for(CpuGeneration::HaswellEp);
        assert_eq!(
            p.pstate().transition,
            PStateTransitionMode::OpportunityWindow {
                period_us: calib::PSTATE_OPPORTUNITY_PERIOD_US
            }
        );
        assert_eq!(
            p.pstate().switching_time_us,
            calib::PSTATE_SWITCHING_TIME_US
        );
        assert_eq!(
            p.pstate().opportunity_jitter_us,
            calib::PSTATE_OPPORTUNITY_JITTER_US
        );
        assert_eq!(
            p.uncore().active_schedule_mhz,
            &calib::UFS_ACTIVE_SCHEDULE_MHZ
        );
        assert_eq!(p.rapl().pkg_energy_unit_uj, calib::PKG_ENERGY_UNIT_UJ);
        assert_eq!(p.rapl().dram_energy_unit_uj, calib::DRAM_ENERGY_UNIT_UJ);
        assert_eq!(p.cstate_exit().c3_base_us, calib::cstate::C3_BASE_US);
        assert_eq!(p.cstate_exit().deep_c3_extra_us, 0.0);
    }

    #[test]
    fn haswell_vr_policy_pins_the_board_values() {
        // Regression pins for the literals swept out of power/fivr.rs and
        // power/mbvr.rs.
        let v = policy_for(CpuGeneration::HaswellEp).vr();
        assert!(v.has_fivr);
        assert_eq!(v.vccin_v, 1.80);
        assert_eq!((v.core_v_lo, v.core_v_hi), (0.4, 1.4));
        assert_eq!(v.fivr_eff_peak, 0.905);
        assert_eq!(v.fivr_eff_light_w, 0.35);
        assert_eq!(v.fivr_eff_slope_per_w, 0.0004);
        assert_eq!((v.fivr_eff_lo, v.fivr_eff_hi), (0.5, 0.92));
        assert_eq!(v.fivr_settle_ratio, 50.0);
        assert_eq!(v.fivr_settle_tol_v, 0.002);
        assert_eq!((v.svid_lo_v, v.svid_hi_v), (1.6, 2.0));
        assert_eq!(v.mbvr_ps1_below_w, 45.0);
        assert_eq!(v.mbvr_ps2_below_w, 15.0);
        assert_eq!(v.mbvr_hysteresis_w, 4.0);
    }

    #[test]
    fn deep_exit_deltas_only_on_pre_haswell() {
        for gen in [CpuGeneration::WestmereEp, CpuGeneration::SandyBridgeEp] {
            let c = policy_for(gen).cstate_exit();
            assert_eq!(c.deep_c3_extra_us, calib::cstate::SNB_C3_EXTRA_US);
            assert_eq!(c.deep_c6_extra_us, calib::cstate::SNB_C6_EXTRA_US);
        }
        for gen in [
            CpuGeneration::HaswellEp,
            CpuGeneration::HaswellHe,
            CpuGeneration::SkylakeSp,
        ] {
            let c = policy_for(gen).cstate_exit();
            assert_eq!((c.deep_c3_extra_us, c.deep_c6_extra_us), (0.0, 0.0));
        }
    }

    #[test]
    fn skylake_policy_is_the_mesh_hwp_avx512_bundle() {
        let p = policy_for(CpuGeneration::SkylakeSp);
        assert_eq!(p.pstate().transition, PStateTransitionMode::HwpAutonomous);
        assert!(p.pstate().per_core_domains);
        let u = p.uncore();
        assert_eq!(u.source, UncoreClockSource::Independent);
        assert_eq!(u.fabric, UncoreFabric::Mesh);
        assert!(u.per_core_requests);
        assert_eq!(p.license().levels, 2);
        assert_eq!(p.rapl().mode, RaplMode::Measured);
        // Uniform RAPL units: the Haswell DRAM quirk is gone.
        assert_eq!(p.rapl().dram_energy_unit_uj, p.rapl().pkg_energy_unit_uj);
        assert!(!p.vr().has_fivr, "Skylake-SP dropped FIVR");
    }

    #[test]
    fn only_haswell_ring_uses_the_mesh_free_fabric() {
        for gen in all_with_skx() {
            let fabric = policy_for(gen).uncore().fabric;
            assert_eq!(
                fabric == UncoreFabric::Mesh,
                gen == CpuGeneration::SkylakeSp,
                "{}",
                gen.name()
            );
        }
    }

    #[test]
    fn schedules_have_matching_lengths() {
        for gen in all_with_skx() {
            let u = policy_for(gen).uncore();
            assert_eq!(
                u.active_schedule_mhz.len(),
                u.passive_schedule_mhz.len(),
                "{}",
                gen.name()
            );
            assert!(!u.active_schedule_mhz.is_empty());
        }
    }
}
