//! Clock-domain vocabulary shared by every subsystem the simulation engine
//! steps: nanosecond time, the [`ClockDomain`] trait, and the deterministic
//! keyed noise streams that decouple RNG draws from the stepping policy.
//!
//! The paper's experiments span five orders of magnitude in time resolution
//! — microsecond c-state wake-ups next to multi-second power averages — so
//! the simulator cannot afford one global tick. Instead, each subsystem
//! (p-state engine, EET poller, RAPL accumulation, thermal RC, meter) is a
//! *clock domain*: it declares its native period and its next pending
//! event, and the engine advances to event horizons instead of marching
//! fixed ticks. For that to be deterministic, every random draw must be a
//! pure function of *(seed, domain, event time)* — never of how many steps
//! the engine happened to take — which is what [`DomainNoise`] provides.

/// Simulation time in nanoseconds (the engine-wide clock unit).
pub type Ns = u64;

/// One microsecond in [`Ns`].
pub const US: Ns = 1_000;

/// One millisecond in [`Ns`].
pub const MS: Ns = 1_000_000;

/// A subsystem with its own native time base, as seen by the simulation
/// engine. Implementations are descriptive: they let the engine (and
/// diagnostics) reason about how finely a subsystem needs to be stepped
/// and whether it currently has latent events.
pub trait ClockDomain {
    /// Short stable name for diagnostics ("pstate", "eet", "rapl", …).
    fn name(&self) -> &'static str;

    /// The domain's native update period in ns (0 = continuous: the domain
    /// integrates over whatever step it is given).
    fn native_period_ns(&self) -> Ns;

    /// The next instant at which this domain changes state on its own,
    /// if one is scheduled (e.g. an in-flight p-state switch completing).
    /// `None` means no latent event: the domain only reacts to inputs.
    fn next_event_ns(&self, now: Ns) -> Option<Ns>;

    /// Whether the domain is quiescent: no latent event pending and its
    /// observable state is constant while its inputs are constant. The
    /// engine may only coalesce steps across an interval in which every
    /// domain is quiescent.
    fn quiescent(&self) -> bool {
        true
    }
}

/// Stable domain tags for keyed noise streams. The values are part of the
/// determinism contract (they feed the hash): renumbering them changes
/// every seeded simulation.
pub mod domain {
    /// P-state opportunity-clock jitter (plus the socket id).
    pub const PSTATE: u64 = 0x10;
    /// RAPL measurement-error stream (plus the socket id).
    pub const RAPL: u64 = 0x20;
    /// LMG450 meter: per-instrument gain and per-sample noise.
    pub const METER: u64 = 0x30;
    /// Manufacturing variation of one fleet chip (leakage, Vmin, turbo
    /// binning, RAPL calibration trim). Drawn once per node at t = 0.
    pub const FLEET: u64 = 0x40;
}

/// SplitMix64 finalizer — the mixer behind every keyed draw.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from a parent seed and a salt (campaign index,
/// socket id, sweep point, …). Pure and order-free: the child depends on
/// `(seed, salt)` only, never on how many seeds were derived before.
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    splitmix64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A deterministic noise stream keyed by *(seed, domain, event time)*.
///
/// Unlike a sequential RNG, a draw does not consume hidden state: the value
/// at `(t_ns, salt)` is a pure function of the key, so two simulations that
/// evaluate the same domain at the same instants agree bit-for-bit no
/// matter how their engines subdivided the time in between. This is the
/// property that lets `--engine fixed` and `--engine event` produce
/// byte-identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainNoise {
    key: u64,
}

impl DomainNoise {
    /// Create the stream for `domain` under a simulation `seed`.
    pub fn new(seed: u64, domain: u64) -> Self {
        DomainNoise {
            key: splitmix64(seed ^ splitmix64(domain)),
        }
    }

    /// Raw keyed draw.
    #[inline]
    pub fn draw_u64(&self, t_ns: Ns, salt: u64) -> u64 {
        splitmix64(self.key ^ splitmix64(t_ns.wrapping_add(salt.rotate_left(32))))
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&self, t_ns: Ns, salt: u64) -> f64 {
        // 53 mantissa bits, the standard u64→f64 uniform construction.
        (self.draw_u64(t_ns, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[-1, 1]`.
    #[inline]
    pub fn symmetric(&self, t_ns: Ns, salt: u64) -> f64 {
        2.0 * self.unit(t_ns, salt) - 1.0
    }

    /// Uniform integer draw in `lo..=hi`.
    #[inline]
    pub fn range_i64(&self, t_ns: Ns, salt: u64, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.draw_u64(t_ns, salt) % span) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_the_key() {
        let a = DomainNoise::new(42, domain::RAPL);
        let b = DomainNoise::new(42, domain::RAPL);
        assert_eq!(a.draw_u64(1_000, 3), b.draw_u64(1_000, 3));
        assert_eq!(a.unit(7, 0), b.unit(7, 0));
    }

    #[test]
    fn seed_domain_time_and_salt_all_matter() {
        let n = DomainNoise::new(1, domain::PSTATE);
        assert_ne!(
            n.draw_u64(5, 0),
            DomainNoise::new(2, domain::PSTATE).draw_u64(5, 0)
        );
        assert_ne!(
            n.draw_u64(5, 0),
            DomainNoise::new(1, domain::RAPL).draw_u64(5, 0)
        );
        assert_ne!(n.draw_u64(5, 0), n.draw_u64(6, 0));
        assert_ne!(n.draw_u64(5, 0), n.draw_u64(5, 1));
    }

    #[test]
    fn unit_is_uniform_enough() {
        let n = DomainNoise::new(9, domain::METER);
        let mut sum = 0.0;
        let mut min = f64::MAX;
        let mut max: f64 = 0.0;
        for t in 0..10_000u64 {
            let u = n.unit(t * 50, 0);
            assert!((0.0..1.0).contains(&u));
            sum += u;
            min = min.min(u);
            max = max.max(u);
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(min < 0.01 && max > 0.99);
    }

    #[test]
    fn range_covers_both_endpoints() {
        let n = DomainNoise::new(3, domain::PSTATE);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for t in 0..10_000u64 {
            let v = n.range_i64(t, 0, -25, 25);
            assert!((-25..=25).contains(&v));
            seen_lo |= v == -25;
            seen_hi |= v == 25;
        }
        assert!(seen_lo && seen_hi);
    }
}
