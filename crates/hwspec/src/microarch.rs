//! Microarchitecture parameters (paper Table I).
//!
//! These are used both to print the Table I comparison and to parameterize
//! the port-level pipeline model in `hsw-exec`.

use serde::{Deserialize, Serialize};

use crate::generation::CpuGeneration;

/// Core microarchitecture parameters as compared in paper Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroArch {
    pub generation: CpuGeneration,
    /// x86 instructions decoded per cycle (both are 4(+1) with macro fusion).
    pub decode_width: usize,
    /// Allocation queue entries (per thread on SNB, shared 56 on HSW).
    pub allocation_queue: usize,
    /// Micro-ops issued to execution ports per cycle.
    pub execute_uops_per_cycle: usize,
    /// Micro-ops retired per cycle.
    pub retire_uops_per_cycle: usize,
    /// Unified scheduler (reservation station) entries.
    pub scheduler_entries: usize,
    /// Re-order buffer entries.
    pub rob_entries: usize,
    /// Integer / floating-point physical register file sizes.
    pub int_regfile: usize,
    pub fp_regfile: usize,
    /// Widest SIMD ISA ("AVX" / "AVX2").
    pub simd_isa: &'static str,
    /// Double-precision FLOPS per cycle per core at peak.
    pub flops_per_cycle_f64: usize,
    /// Load / store buffer entries.
    pub load_buffers: usize,
    pub store_buffers: usize,
    /// L1D load/store port widths: (loads per cycle, bytes per load,
    /// stores per cycle, bytes per store).
    pub l1d_loads_per_cycle: usize,
    pub l1d_load_bytes: usize,
    pub l1d_stores_per_cycle: usize,
    pub l1d_store_bytes: usize,
    /// L2 bandwidth to L1 in bytes per cycle.
    pub l2_bytes_per_cycle: usize,
    /// Whether FMA (fused multiply-add) is supported.
    pub has_fma: bool,
    /// Number of execution ports.
    pub ports: usize,
    /// Ports that can issue a 256-bit FP multiply/FMA.
    pub fp_mul_ports: usize,
    /// Ports that can issue a 256-bit FP add. Haswell has FMA on two ports
    /// but a dedicated FP add on only one (paper Section II-A: "Two AVX or
    /// FMA operations can be issued per cycle, except for AVX additions").
    pub fp_add_ports: usize,
    /// Micro-op cache capacity in µops (both generations: 1.5 K).
    pub uop_cache_uops: usize,
    /// Instruction fetch window in bytes.
    pub fetch_window_bytes: usize,
}

impl MicroArch {
    /// Sandy Bridge-EP core (paper Table I left column).
    pub fn sandy_bridge_ep() -> Self {
        MicroArch {
            generation: CpuGeneration::SandyBridgeEp,
            decode_width: 4,
            allocation_queue: 28, // per thread
            execute_uops_per_cycle: 6,
            retire_uops_per_cycle: 4,
            scheduler_entries: 54,
            rob_entries: 168,
            int_regfile: 160,
            fp_regfile: 144,
            simd_isa: "AVX",
            flops_per_cycle_f64: 8, // 1×256-bit add + 1×256-bit mul
            load_buffers: 64,
            store_buffers: 36,
            l1d_loads_per_cycle: 2,
            l1d_load_bytes: 16,
            l1d_stores_per_cycle: 1,
            l1d_store_bytes: 16,
            l2_bytes_per_cycle: 32,
            has_fma: false,
            ports: 6,
            fp_mul_ports: 1,
            fp_add_ports: 1,
            uop_cache_uops: 1536,
            fetch_window_bytes: 16,
        }
    }

    /// Haswell-EP core (paper Table I right column).
    pub fn haswell_ep() -> Self {
        MicroArch {
            generation: CpuGeneration::HaswellEp,
            decode_width: 4,
            allocation_queue: 56, // shared
            execute_uops_per_cycle: 8,
            retire_uops_per_cycle: 4,
            scheduler_entries: 60,
            rob_entries: 192,
            int_regfile: 168,
            fp_regfile: 168,
            simd_isa: "AVX2",
            flops_per_cycle_f64: 16, // 2×256-bit FMA
            load_buffers: 72,
            store_buffers: 42,
            l1d_loads_per_cycle: 2,
            l1d_load_bytes: 32,
            l1d_stores_per_cycle: 1,
            l1d_store_bytes: 32,
            l2_bytes_per_cycle: 64,
            has_fma: true,
            ports: 8,
            fp_mul_ports: 2, // FMA on ports 0 and 1
            fp_add_ports: 1, // dedicated FP add only on port 1
            uop_cache_uops: 1536,
            fetch_window_bytes: 16,
        }
    }

    /// Westmere-EP core (pre-AVX, SSE 128-bit).
    pub fn westmere_ep() -> Self {
        MicroArch {
            generation: CpuGeneration::WestmereEp,
            decode_width: 4,
            allocation_queue: 28,
            execute_uops_per_cycle: 6,
            retire_uops_per_cycle: 4,
            scheduler_entries: 36,
            rob_entries: 128,
            int_regfile: 0, // unified RRF architecture, not separately sized
            fp_regfile: 0,
            simd_isa: "SSE4.2",
            flops_per_cycle_f64: 4,
            load_buffers: 48,
            store_buffers: 32,
            l1d_loads_per_cycle: 1,
            l1d_load_bytes: 16,
            l1d_stores_per_cycle: 1,
            l1d_store_bytes: 16,
            l2_bytes_per_cycle: 32,
            has_fma: false,
            ports: 6,
            fp_mul_ports: 1,
            fp_add_ports: 1,
            uop_cache_uops: 0, // no µop cache before Sandy Bridge
            fetch_window_bytes: 16,
        }
    }

    /// Skylake-SP core (1905.12468 Section II): AVX-512, 2×512-bit FMA,
    /// wider scheduler/ROB, 1 MiB private L2.
    pub fn skylake_sp() -> Self {
        MicroArch {
            generation: CpuGeneration::SkylakeSp,
            decode_width: 4,
            allocation_queue: 64,
            execute_uops_per_cycle: 8,
            retire_uops_per_cycle: 4,
            scheduler_entries: 97,
            rob_entries: 224,
            int_regfile: 180,
            fp_regfile: 168,
            simd_isa: "AVX-512",
            flops_per_cycle_f64: 32, // 2×512-bit FMA
            load_buffers: 72,
            store_buffers: 56,
            l1d_loads_per_cycle: 2,
            l1d_load_bytes: 64,
            l1d_stores_per_cycle: 1,
            l1d_store_bytes: 64,
            l2_bytes_per_cycle: 64,
            has_fma: true,
            ports: 8,
            fp_mul_ports: 2,
            fp_add_ports: 2, // FP add on ports 0 and 1 since Skylake
            uop_cache_uops: 1536,
            fetch_window_bytes: 16,
        }
    }

    /// The microarchitecture for a generation.
    pub fn for_generation(generation: CpuGeneration) -> Self {
        match generation {
            CpuGeneration::WestmereEp => Self::westmere_ep(),
            CpuGeneration::SandyBridgeEp | CpuGeneration::IvyBridgeEp => {
                let mut m = Self::sandy_bridge_ep();
                m.generation = generation;
                m
            }
            CpuGeneration::HaswellEp | CpuGeneration::HaswellHe => {
                let mut m = Self::haswell_ep();
                m.generation = generation;
                m
            }
            CpuGeneration::SkylakeSp => Self::skylake_sp(),
        }
    }

    /// Peak L1D load bandwidth in bytes per cycle.
    pub fn l1d_load_bytes_per_cycle(&self) -> usize {
        self.l1d_loads_per_cycle * self.l1d_load_bytes
    }

    /// Peak L1D store bandwidth in bytes per cycle.
    pub fn l1d_store_bytes_per_cycle(&self) -> usize {
        self.l1d_stores_per_cycle * self.l1d_store_bytes
    }

    /// Peak 256-bit FP operations issued per cycle: two on Haswell
    /// (FMA/mul), except pure-add streams which are limited by the dedicated
    /// add port (paper Section II-A).
    pub fn max_avx_ops_per_cycle(&self, pure_adds: bool) -> usize {
        if pure_adds {
            self.fp_add_ports
        } else {
            self.fp_mul_ports.max(self.fp_add_ports)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_flops_per_cycle() {
        assert_eq!(MicroArch::sandy_bridge_ep().flops_per_cycle_f64, 8);
        assert_eq!(MicroArch::haswell_ep().flops_per_cycle_f64, 16);
    }

    #[test]
    fn table1_l1d_bandwidth_doubled() {
        let snb = MicroArch::sandy_bridge_ep();
        let hsw = MicroArch::haswell_ep();
        assert_eq!(snb.l1d_load_bytes_per_cycle(), 32); // 2×16 B
        assert_eq!(hsw.l1d_load_bytes_per_cycle(), 64); // 2×32 B
        assert_eq!(snb.l1d_store_bytes_per_cycle(), 16);
        assert_eq!(hsw.l1d_store_bytes_per_cycle(), 32);
    }

    #[test]
    fn table1_l2_bandwidth_doubled() {
        assert_eq!(MicroArch::sandy_bridge_ep().l2_bytes_per_cycle, 32);
        assert_eq!(MicroArch::haswell_ep().l2_bytes_per_cycle, 64);
    }

    #[test]
    fn table1_ooo_resources_increased() {
        let snb = MicroArch::sandy_bridge_ep();
        let hsw = MicroArch::haswell_ep();
        assert!(hsw.rob_entries > snb.rob_entries);
        assert!(hsw.scheduler_entries > snb.scheduler_entries);
        assert!(hsw.execute_uops_per_cycle > snb.execute_uops_per_cycle);
        assert!(hsw.load_buffers > snb.load_buffers);
        assert!(hsw.store_buffers > snb.store_buffers);
        assert_eq!(hsw.decode_width, snb.decode_width); // decode stays 4-wide
        assert_eq!(hsw.retire_uops_per_cycle, snb.retire_uops_per_cycle);
    }

    #[test]
    fn avx_add_port_asymmetry() {
        // "Two AVX or FMA operations can be issued per cycle, except for AVX
        // additions" — pure adds are limited to one per cycle.
        let hsw = MicroArch::haswell_ep();
        assert_eq!(hsw.max_avx_ops_per_cycle(false), 2);
        assert_eq!(hsw.max_avx_ops_per_cycle(true), 1);
    }

    #[test]
    fn generation_lookup_is_consistent() {
        for gen in CpuGeneration::ALL {
            assert_eq!(MicroArch::for_generation(gen).generation, gen);
        }
    }
}
