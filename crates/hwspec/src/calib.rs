//! Calibration constants derived from the paper's published measurements.
//!
//! Every constant cites the paper table/figure it reproduces. These are the
//! *only* magic numbers in the workspace; all mechanism code takes them from
//! here so that a different calibration (e.g. a different SKU) is a data
//! change, not a code change.

/// Period of the PCU p-state "opportunity" clock on Haswell-EP in µs
/// (paper Section VI-A / Figure 4: "frequency changes only occur in regular
/// intervals of about 500 µs").
pub const PSTATE_OPPORTUNITY_PERIOD_US: u32 = 500;

/// FIVR voltage/frequency switching time in µs once an opportunity is taken
/// (paper Figure 3: minimum observed latency is 21 µs).
pub const PSTATE_SWITCHING_TIME_US: u32 = 21;

/// Jitter (± µs) of the opportunity period, reflecting the "about" in the
/// paper's 500 µs estimate and the spread visible in Figure 3.
pub const PSTATE_OPPORTUNITY_JITTER_US: u32 = 3;

/// P-state transition latency reported by the ACPI tables in µs, which the
/// paper shows to be inapplicable (Section VI-A).
pub const ACPI_PSTATE_LATENCY_US: u32 = 10;

/// EET stall-polling period in µs (patent \[17\] cited in Section II-E lists
/// 1 ms).
pub const EET_POLL_PERIOD_US: u32 = 1_000;

/// Time after the last heavy-AVX instruction until the PCU returns to
/// non-AVX operating mode, in µs (paper Section II-F: 1 ms).
pub const AVX_RELAX_PERIOD_US: u32 = 1_000;

/// RAPL running-average window used by the package power limiter, in µs.
/// The paper's Table IV equilibria are steady-state, so only the settled
/// value matters; the window length governs how long PL2 bursts last.
pub const RAPL_LIMIT_WINDOW_US: u32 = 150_000;

/// Short-term power limit (PL2) as a multiple of TDP: sustained while the
/// running-average package power is still below PL1 — the burst headroom
/// new workloads enjoy before the limiter clamps them to TDP.
pub const PL2_TDP_MULT: f64 = 1.2;

/// Package RAPL energy status unit in µJ (1/2¹⁴ J ≈ 61 µJ, the common
/// Haswell-EP `MSR_RAPL_POWER_UNIT` encoding ESU=14).
pub const PKG_ENERGY_UNIT_UJ: f64 = 61.035_156_25;

/// DRAM RAPL energy unit in µJ: fixed 15.3 µJ on Haswell-EP regardless of
/// `MSR_RAPL_POWER_UNIT` (paper Section IV, quoting \[21\] Section 5.3.3:
/// "ENERGY UNIT for DRAM domain is 15.3 µJ" = 1/2¹⁶ J).
pub const DRAM_ENERGY_UNIT_UJ: f64 = 15.258_789_062_5;

/// Quadratic AC-vs-RAPL fit published for the Haswell-EP system
/// (paper footnote 2): `P_AC = A2·P² + A1·P + A0`, R² > 0.9998.
/// Used as ground truth when designing the PSU/fan model, and as the
/// reference the Figure 2b experiment must re-discover.
pub const AC_FIT_A2: f64 = 0.0003;
pub const AC_FIT_A1: f64 = 1.097;
pub const AC_FIT_A0_W: f64 = 225.7;

/// Idle AC power of the test node with fans at maximum (paper Table II).
pub const IDLE_NODE_POWER_W: f64 = 261.5;

/// Maximum residual of RAPL samples from the quadratic fit (paper
/// Section IV: "below 3 W").
pub const AC_FIT_MAX_RESIDUAL_W: f64 = 3.0;

/// Average extra package power from OS housekeeping on an otherwise idle
/// socket (timer ticks and kernel threads periodically waking cores out of
/// C6). Calibrated so the idle node draws Table II's 261.5 W AC.
pub const IDLE_PKG_HOUSEKEEPING_W: f64 = 3.6;

/// Fraction of time the uncore clock still runs (at its floor frequency)
/// on a package that is nominally eligible for PC6 — wakeups keep breaking
/// the deep package state on a running OS.
pub const IDLE_UNCORE_RESIDENCY: f64 = 0.5;

/// LMG450 power meter sample rate (paper Section III: 20 Sa/s).
pub const LMG450_SAMPLE_RATE_HZ: f64 = 20.0;

/// LMG450 accuracy: relative fraction and absolute offset
/// (paper Table II: 0.07 % + 0.23 W).
pub const LMG450_REL_ACCURACY: f64 = 0.0007;
pub const LMG450_ABS_ACCURACY_W: f64 = 0.23;

/// Uncore frequency schedule measured in the single-threaded, no-memory-stall
/// scenario on the *active* socket (paper Table III). Index 0 is the Turbo
/// setting, then 2.5 GHz down to 1.2 GHz in 100 MHz steps. Values in MHz.
pub const UFS_ACTIVE_SCHEDULE_MHZ: [u32; 15] = [
    3000, // Turbo setting
    2200, // 2.5 GHz (3.0 GHz when EPB = performance)
    2100, // 2.4
    2000, // 2.3
    1900, // 2.2
    1800, // 2.1
    1750, // 2.0
    1650, // 1.9
    1600, // 1.8
    1500, // 1.7
    1400, // 1.6
    1300, // 1.5
    1200, // 1.4
    1200, // 1.3
    1200, // 1.2
];

/// Same schedule for the *passive* socket (no thread running there); it
/// tracks roughly one bin below the active socket with a 1.2 GHz floor
/// (paper Table III, second row).
pub const UFS_PASSIVE_SCHEDULE_MHZ: [u32; 15] = [
    2950, // Turbo setting (2.9–3.0 in the paper; 3.0 with EPB = performance)
    2100, // 2.5 GHz
    2000, // 2.4
    1900, // 2.3
    1800, // 2.2
    1700, // 2.1
    1650, // 2.0
    1550, // 1.9
    1500, // 1.8
    1400, // 1.7
    1200, // 1.6
    1200, // 1.5
    1200, // 1.4
    1200, // 1.3
    1200, // 1.2
];

/// Upper bound of the uncore frequency in memory-stall scenarios
/// (paper Section V-A: 3.0 GHz "also for lower core frequencies").
pub const UNCORE_MAX_MHZ: u32 = 3_000;

/// Lower bound of the uncore frequency (floor of Table III).
pub const UNCORE_MIN_MHZ: u32 = 1_200;

/// Stall-cycle fraction above which UFS considers a workload memory-bound
/// and drives the uncore toward its maximum.
pub const UFS_STALL_THRESHOLD: f64 = 0.25;

/// FIRESTARTER instruction-group distribution over memory-hierarchy levels
/// (paper Section VIII): reg, L1, L2, L3, mem.
pub const FIRESTARTER_LEVEL_RATIOS: [f64; 5] = [0.278, 0.627, 0.071, 0.008, 0.016];

/// FIRESTARTER achieved instructions per cycle per core (paper Section VIII).
pub const FIRESTARTER_IPC_HT: f64 = 3.1;
pub const FIRESTARTER_IPC_NO_HT: f64 = 2.8;

/// Per-thread IPC model for FIRESTARTER as a function of the core:uncore
/// frequency ratio, fitted to paper Table IV:
/// `ipc_thread = FS_IPC_A - FS_IPC_B · (f_core / f_uncore)`.
/// (Derived: the four (core, uncore, GIPS) equilibria of Table IV lie on this
/// line with residual < 0.006 IPC.)
pub const FS_IPC_A: f64 = 2.011;
pub const FS_IPC_B: f64 = 0.476;

/// Socket efficiency variation (paper Section III: "the cores of the second
/// processor have a higher voltage ... the first processor also appears to
/// use lower sustained turbo frequencies"). Multiplier on dynamic power,
/// socket 0 (less efficient) and socket 1.
pub const SOCKET_POWER_EFFICIENCY: [f64; 2] = [1.012, 1.0];

/// C-state wake-up latency calibration, all in µs (paper Figures 5/6 and
/// Section VI-B). `*_BASE` is the frequency-independent component; the
/// frequency-dependent component is `*_CYCLES_K / f_ghz`.
pub mod cstate {
    /// C1 local wake at 1.2 GHz is ≤1.6 µs; remote up to 2.1 µs.
    pub const C1_BASE_US: f64 = 0.55;
    pub const C1_CYCLES_K: f64 = 1.2; // µs·GHz → 1.0 µs at 1.2 GHz
    pub const C1_REMOTE_EXTRA_US: f64 = 0.5;

    /// C3 local: mostly frequency independent; +1.5 µs above 1.5 GHz
    /// (paper Section VI-B).
    pub const C3_BASE_US: f64 = 8.0;
    pub const C3_HIGHFREQ_STEP_US: f64 = 1.5;
    pub const C3_HIGHFREQ_THRESHOLD_GHZ: f64 = 1.5;
    /// Remote-active adds the QPI round trip.
    pub const C3_REMOTE_EXTRA_US: f64 = 1.0;
    /// Package C3 adds "another two to four microseconds"; we model the
    /// spread as frequency dependent between these bounds.
    pub const PKG_C3_EXTRA_MIN_US: f64 = 2.0;
    pub const PKG_C3_EXTRA_MAX_US: f64 = 4.0;

    /// C6 = C3 + 2..8 µs depending (strongly) on frequency: flushing and
    /// restoring architectural state + caches runs at core speed.
    pub const C6_EXTRA_MIN_US: f64 = 2.0;
    pub const C6_EXTRA_MAX_US: f64 = 8.0;
    /// Package C6 adds 8 µs over package C3.
    pub const PKG_C6_EXTRA_US: f64 = 8.0;

    /// Sandy Bridge-EP comparison offsets (grey curves in Figures 5/6):
    /// deep c-state exits were slightly slower (paper Conclusions:
    /// "transition latencies from deep c-states have slightly improved").
    pub const SNB_C3_EXTRA_US: f64 = 1.5;
    pub const SNB_C6_EXTRA_US: f64 = 3.0;

    /// ACPI-table claims (paper Section VI-B): C3 33 µs, C6 133 µs.
    pub const ACPI_C3_US: f64 = 33.0;
    pub const ACPI_C6_US: f64 = 133.0;
}

/// Memory-bandwidth calibration (paper Figures 7/8 and Table I).
pub mod bandwidth {
    /// Effective peak DRAM read bandwidth per socket in GB/s. Theoretical
    /// peak for 4×DDR4-2133 is 68.2 GB/s (Table I); the read-only stream
    /// achieves ~88 % of that.
    pub const HSW_DRAM_PEAK_GBS: f64 = 60.0;
    /// 4×DDR3-1600 = 51.2 GB/s theoretical; SNB-EP read streams reach ~80 %.
    pub const SNB_DRAM_PEAK_GBS: f64 = 41.0;
    /// 3×DDR3-1333 = 32.0 GB/s theoretical on Westmere-EP; ~75 %.
    pub const WSM_DRAM_PEAK_GBS: f64 = 24.0;

    /// Number of cores at which a socket's DRAM read bandwidth saturates
    /// (paper Fig. 8: "saturates at 8 cores").
    pub const DRAM_SATURATION_CORES: usize = 8;
    /// Core count from which DRAM bandwidth becomes independent of core
    /// frequency (paper Fig. 8: "if ten cores are active").
    pub const DRAM_FREQ_INDEPENDENT_CORES: usize = 10;

    /// Per-core L3 read bandwidth demand in bytes per core cycle for the
    /// read benchmark (Haswell can sustain 2×32 B loads/cycle from L1; from
    /// L3 the demand side sustains ~10 B/cycle).
    pub const HSW_L3_BYTES_PER_CORE_CYCLE: f64 = 10.0;
    pub const SNB_L3_BYTES_PER_CORE_CYCLE: f64 = 6.5;
    pub const WSM_L3_BYTES_PER_CORE_CYCLE: f64 = 5.0;

    /// Service capability of one L3 slice in bytes per uncore cycle.
    pub const L3_SLICE_BYTES_PER_UNCORE_CYCLE: f64 = 16.0;

    /// Hyper-threading L3 bandwidth gain at low concurrency (paper Fig. 8:
    /// "multiple threads per core only is beneficial for low-concurrency
    /// scenarios").
    pub const HT_LOW_CONCURRENCY_GAIN: f64 = 1.18;
}

/// Workload/TDP calibration for Tables IV/V.
pub mod powercal {
    /// TDP of the Xeon E5-2680 v3 in W.
    pub const E5_2680V3_TDP_W: f64 = 120.0;

    /// Package power (RAPL) per socket below which no throttling occurs for
    /// FIRESTARTER (paper Section V-B: "for 2.1 GHz and slower, both
    /// processors use less than 120 W").
    pub const FS_NO_THROTTLE_BELOW_W: f64 = 120.0;

    /// Table V reference AC power values in W (1-minute max window,
    /// HT off, 2.5 GHz, balanced EPB).
    pub const TABLE5_FIRESTARTER_W: f64 = 560.4;
    pub const TABLE5_LINPACK_W: f64 = 547.9;
    pub const TABLE5_MPRIME_W: f64 = 558.6;

    /// Table V measured core frequencies in GHz (same configuration).
    pub const TABLE5_FIRESTARTER_GHZ: f64 = 2.45;
    pub const TABLE5_LINPACK_GHZ: f64 = 2.28;
    pub const TABLE5_MPRIME_GHZ: f64 = 2.49;
}

/// Skylake-SP calibration (the follow-up survey, arXiv 1905.12468,
/// measured on a 2-socket Xeon Platinum 8170 system). Only the constants
/// that differ from the Haswell firmware policy live here; everything
/// shared keeps the top-level values.
pub mod skx {
    /// HWP voltage/frequency switching time in µs. The follow-up survey
    /// measures frequency transitions an order of magnitude faster than
    /// Haswell's opportunity mechanism; only the regulator ramp remains.
    pub const PSTATE_SWITCHING_TIME_US: u32 = 12;

    /// Voltage-ramp time entering an AVX-512 (or AVX2) license, in µs
    /// (1905.12468 Section II-C: execution throttled while the ramp runs).
    pub const LICENSE_RAMP_US: u32 = 25;

    /// Return-to-L0 delay after the last wide instruction, in µs. The
    /// follow-up survey measures ~670 µs before the core leaves a reduced
    /// license level (vs. the fixed 1 ms on Haswell-EP).
    pub const LICENSE_RELAX_US: u32 = 670;

    /// Mesh (uncore) frequency range in MHz (1905.12468 Section II-B:
    /// 1.2–2.4 GHz on the Platinum 8170).
    pub const UNCORE_MIN_MHZ: u32 = 1200;
    pub const UNCORE_MAX_MHZ: u32 = 2400;

    /// UFS schedule for an active socket, indexed by core-frequency
    /// setting: 0 = Turbo, 1 = base (2.1 GHz), … 10 = 1.2 GHz. The mesh
    /// floor is high relative to Haswell's ring: the no-stall schedule
    /// tracks the core setting down to the 1.2 GHz floor.
    pub const UFS_ACTIVE_SCHEDULE_MHZ: [u32; 11] = [
        2400, 2000, 1900, 1800, 1700, 1600, 1500, 1400, 1300, 1200, 1200,
    ];

    /// Same schedule for a passive socket (one bin lower, floored).
    pub const UFS_PASSIVE_SCHEDULE_MHZ: [u32; 11] = [
        2300, 1900, 1800, 1700, 1600, 1500, 1400, 1300, 1200, 1200, 1200,
    ];

    /// Package power model coefficients for the Xeon Platinum 8170
    /// (165 W TDP, 26 cores). Fit the same way as the Haswell
    /// [`crate::sku::PowerCoeffs`]: idle ~21 W/socket package
    /// floor, full-load FMA near TDP.
    pub const PKG_BASE_W: f64 = 9.0;
    pub const CORE_LEAK_W_PER_V2: f64 = 0.95;
    pub const CORE_DYN_W_PER_V2GHZ: f64 = 2.35;
    pub const AVX_POWER_MULT: f64 = 1.22;
    pub const AVX512_POWER_MULT: f64 = 1.45;
    pub const UNCORE_DYN_W_PER_V2GHZ: f64 = 16.5;
    pub const DRAM_IDLE_W: f64 = 6.0;
    pub const DRAM_W_PER_GBS: f64 = 0.45;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_energy_unit_matches_paper_quote() {
        // "ENERGY UNIT for DRAM domain is 15.3 µJ"
        assert!((DRAM_ENERGY_UNIT_UJ - 15.3).abs() < 0.05);
        // and it is exactly 2^-16 J
        assert!((DRAM_ENERGY_UNIT_UJ - 1e6 / 65_536.0).abs() < 1e-9);
    }

    #[test]
    fn pkg_energy_unit_is_2_pow_minus_14_joule() {
        assert!((PKG_ENERGY_UNIT_UJ - 1e6 / 16_384.0).abs() < 1e-9);
    }

    #[test]
    fn firestarter_level_ratios_sum_to_one() {
        let sum: f64 = FIRESTARTER_LEVEL_RATIOS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn ufs_schedules_have_full_setting_range() {
        assert_eq!(UFS_ACTIVE_SCHEDULE_MHZ.len(), 15); // Turbo + 2.5..=1.2
        assert_eq!(UFS_PASSIVE_SCHEDULE_MHZ.len(), 15);
    }

    #[test]
    fn ufs_passive_never_exceeds_active() {
        for (a, p) in UFS_ACTIVE_SCHEDULE_MHZ
            .iter()
            .zip(UFS_PASSIVE_SCHEDULE_MHZ.iter())
        {
            assert!(p <= a, "passive {p} > active {a}");
        }
    }

    #[test]
    fn ufs_schedules_respect_bounds() {
        for &m in UFS_ACTIVE_SCHEDULE_MHZ
            .iter()
            .chain(UFS_PASSIVE_SCHEDULE_MHZ.iter())
        {
            assert!((UNCORE_MIN_MHZ..=UNCORE_MAX_MHZ).contains(&m));
        }
    }

    #[test]
    fn ufs_schedules_are_monotone_nonincreasing_after_turbo() {
        for sched in [&UFS_ACTIVE_SCHEDULE_MHZ, &UFS_PASSIVE_SCHEDULE_MHZ] {
            for w in sched[1..].windows(2) {
                assert!(w[0] >= w[1], "schedule not monotone: {w:?}");
            }
        }
    }

    #[test]
    fn fs_ipc_line_matches_table4_equilibria() {
        // (core GHz, uncore GHz, GIPS) medians from paper Table IV, socket 0.
        let rows = [
            (2.31_f64, 2.34_f64, 3.56_f64),
            (2.27, 2.46, 3.58),
            (2.19, 2.80, 3.58),
            (2.09, 3.00, 3.51),
        ];
        for (fc, fu, gips) in rows {
            let ipc = FS_IPC_A - FS_IPC_B * (fc / fu);
            let model_gips = ipc * fc;
            assert!(
                (model_gips - gips).abs() < 0.06,
                "core {fc} uncore {fu}: model {model_gips:.3} vs paper {gips}"
            );
        }
    }

    #[test]
    fn ac_fit_reproduces_idle_power() {
        // Idle: both sockets + DRAM around 32 W RAPL total → 261.5 W AC.
        let p_rapl = 32.0_f64;
        let ac = AC_FIT_A2 * p_rapl * p_rapl + AC_FIT_A1 * p_rapl + AC_FIT_A0_W;
        assert!((ac - IDLE_NODE_POWER_W).abs() < 1.5, "ac = {ac}");
    }

    #[test]
    fn cstate_latencies_are_below_acpi_claims() {
        // Measured C3/C6 latencies are lower than the ACPI tables
        // (paper Section VI-B) — the calibration must keep it that way even
        // for the worst case (package C6 at the lowest frequency).
        let worst_c6 = cstate::C3_BASE_US
            + cstate::C3_HIGHFREQ_STEP_US
            + cstate::C6_EXTRA_MAX_US
            + cstate::PKG_C3_EXTRA_MAX_US
            + cstate::PKG_C6_EXTRA_US
            + cstate::SNB_C6_EXTRA_US;
        assert!(worst_c6 < cstate::ACPI_C6_US);
        let worst_c3 = cstate::C3_BASE_US
            + cstate::C3_HIGHFREQ_STEP_US
            + cstate::PKG_C3_EXTRA_MAX_US
            + cstate::SNB_C3_EXTRA_US;
        assert!(worst_c3 < cstate::ACPI_C3_US);
    }
}
