//! Memory subsystem configuration (paper Table I bottom rows).

use serde::{Deserialize, Serialize};

/// DRAM technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DramKind {
    Ddr3,
    Ddr4,
}

/// Per-socket memory configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemSpec {
    pub kind: DramKind,
    /// Number of populated channels.
    pub channels: usize,
    /// Mega-transfers per second per channel (e.g. 2133 for DDR4-2133).
    pub mts: u32,
    /// Bytes transferred per channel transfer (8 for a 64-bit channel).
    pub bytes_per_transfer: usize,
    /// QPI link speed in GT/s (cross-socket traffic).
    pub qpi_gts: f64,
}

impl MemSpec {
    /// 4×DDR4-2133 as on Haswell-EP (Table I: up to 68.2 GB/s).
    pub fn ddr4_2133_quad() -> Self {
        MemSpec {
            kind: DramKind::Ddr4,
            channels: 4,
            mts: 2133,
            bytes_per_transfer: 8,
            qpi_gts: 9.6,
        }
    }

    /// 4×DDR3-1600 as on Sandy Bridge-EP (Table I: up to 51.2 GB/s).
    pub fn ddr3_1600_quad() -> Self {
        MemSpec {
            kind: DramKind::Ddr3,
            channels: 4,
            mts: 1600,
            bytes_per_transfer: 8,
            qpi_gts: 8.0,
        }
    }

    /// 6×DDR4-2666 as on Skylake-SP (1905.12468 Table I: up to 128 GB/s;
    /// the QPI field carries the UPI link speed, 10.4 GT/s).
    pub fn ddr4_2666_hex() -> Self {
        MemSpec {
            kind: DramKind::Ddr4,
            channels: 6,
            mts: 2666,
            bytes_per_transfer: 8,
            qpi_gts: 10.4,
        }
    }

    /// 3×DDR3-1333 as on Westmere-EP.
    pub fn ddr3_1333_triple() -> Self {
        MemSpec {
            kind: DramKind::Ddr3,
            channels: 3,
            mts: 1333,
            bytes_per_transfer: 8,
            qpi_gts: 6.4,
        }
    }

    /// Theoretical peak DRAM bandwidth in GB/s (decimal GB as in the paper).
    pub fn peak_bandwidth_gbs(&self) -> f64 {
        self.channels as f64 * self.mts as f64 * 1e6 * self.bytes_per_transfer as f64 / 1e9
    }

    /// QPI peak bandwidth in GB/s (2 bytes per transfer per direction,
    /// paper Table I: 9.6 GT/s → 38.4 GB/s).
    pub fn qpi_bandwidth_gbs(&self) -> f64 {
        self.qpi_gts * 2.0 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_peak_matches_table1() {
        let bw = MemSpec::ddr4_2133_quad().peak_bandwidth_gbs();
        assert!((bw - 68.256).abs() < 0.1, "bw = {bw}");
    }

    #[test]
    fn ddr3_peak_matches_table1() {
        let bw = MemSpec::ddr3_1600_quad().peak_bandwidth_gbs();
        assert!((bw - 51.2).abs() < 0.1, "bw = {bw}");
    }

    #[test]
    fn qpi_matches_table1() {
        assert!((MemSpec::ddr4_2133_quad().qpi_bandwidth_gbs() - 38.4).abs() < 1e-9);
        assert!((MemSpec::ddr3_1600_quad().qpi_bandwidth_gbs() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn ddr4_outpaces_ddr3() {
        assert!(
            MemSpec::ddr4_2133_quad().peak_bandwidth_gbs()
                > MemSpec::ddr3_1600_quad().peak_bandwidth_gbs()
        );
    }
}
