//! # hsw-hwspec — hardware specifications for the Haswell energy-efficiency survey
//!
//! This crate is the single source of truth for every architectural parameter
//! used by the simulator and the experiments: CPU generations and their
//! energy-management properties, die layouts and ring-interconnect topology
//! (paper Figure 1), frequency/turbo/AVX tables, cache and memory geometry,
//! voltage/frequency curve specifications, ACPI latency tables, and the
//! calibration constants derived from the paper's published measurements.
//!
//! Nothing in this crate has behavior beyond pure data and small derived
//! queries; the mechanisms that *use* these specifications live in `hsw-pcu`,
//! `hsw-power`, `hsw-cstates`, `hsw-memhier` and `hsw-node`.

pub mod acpi;
pub mod calib;
pub mod clock;
pub mod die;
pub mod epb;
pub mod freq;
pub mod generation;
pub mod memcfg;
pub mod microarch;
pub mod policy;
pub mod product_line;
pub mod sku;
pub mod vf;

pub use acpi::{AcpiCState, AcpiLatencyTable};
pub use clock::{mix_seed, ClockDomain, DomainNoise, Ns};
pub use die::{DieLayout, RingPartition};
pub use epb::EpbClass;
pub use freq::{FrequencyTable, PState, MHZ_PER_RATIO};
pub use generation::{CpuGeneration, PStateTransitionMode, RaplMode, UncoreClockSource};
pub use memcfg::MemSpec;
pub use microarch::MicroArch;
pub use policy::{
    policy_for, CStateExitPolicy, FirmwarePolicy, LicensePolicy, PStatePolicy, RaplPolicy,
    UncoreFabric, UncorePolicy, VrPolicy,
};
pub use product_line::{e5_2600_v3_line, haswell_ep_sku};
pub use sku::{CacheSpec, NodeSpec, SkuSpec};
pub use vf::VfCurveSpec;
