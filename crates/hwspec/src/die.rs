//! Die layouts and ring-interconnect topology (paper Figure 1).
//!
//! Haswell-EP is built from three dies: an 8-core die with a single
//! bidirectional ring, a 12-core die with an 8-core and a 4-core partition,
//! and an 18-core die with an 8-core and a 10-core partition. Partitions are
//! connected by buffered queues; each partition has its own integrated memory
//! controller (IMC) serving two DDR channels.

use serde::{Deserialize, Serialize};

/// One ring partition: a bidirectional ring connecting cores, their L3
/// slices, and one IMC with two memory channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingPartition {
    /// Number of core/L3-slice ring stops in this partition.
    pub cores: usize,
    /// Number of DDR channels behind this partition's IMC.
    pub memory_channels: usize,
}

/// A physical die: one or two ring partitions plus shared uncore agents
/// (QPI, PCIe).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieLayout {
    pub name: &'static str,
    pub partitions: Vec<RingPartition>,
    /// Cores physically present on the die (some may be fused off in a SKU).
    pub physical_cores: usize,
}

impl DieLayout {
    /// The 8-core die (4/6/8-core SKUs): one bidirectional ring.
    pub fn die8() -> Self {
        DieLayout {
            name: "HSW-EP 8-core die",
            partitions: vec![RingPartition {
                cores: 8,
                memory_channels: 4,
            }],
            physical_cores: 8,
        }
    }

    /// The 12-core die (10/12-core SKUs): 8-core + 4-core partitions
    /// (Figure 1a), two channels per IMC.
    pub fn die12() -> Self {
        DieLayout {
            name: "HSW-EP 12-core die",
            partitions: vec![
                RingPartition {
                    cores: 8,
                    memory_channels: 2,
                },
                RingPartition {
                    cores: 4,
                    memory_channels: 2,
                },
            ],
            physical_cores: 12,
        }
    }

    /// The 18-core die (14/16/18-core SKUs): 8-core + 10-core partitions
    /// (Figure 1b).
    pub fn die18() -> Self {
        DieLayout {
            name: "HSW-EP 18-core die",
            partitions: vec![
                RingPartition {
                    cores: 8,
                    memory_channels: 2,
                },
                RingPartition {
                    cores: 10,
                    memory_channels: 2,
                },
            ],
            physical_cores: 18,
        }
    }

    /// Single-ring layouts for the older generations (Westmere-EP,
    /// Sandy Bridge-EP) with the given core and channel counts.
    pub fn monolithic(name: &'static str, cores: usize, channels: usize) -> Self {
        DieLayout {
            name,
            partitions: vec![RingPartition {
                cores,
                memory_channels: channels,
            }],
            physical_cores: cores,
        }
    }

    /// Select the Haswell-EP die used to build a SKU with `cores` enabled
    /// cores (paper Section II-A: 4–18 cores from three dies).
    pub fn for_haswell_core_count(cores: usize) -> Self {
        match cores {
            1..=8 => Self::die8(),
            9..=12 => Self::die12(),
            13..=18 => Self::die18(),
            _ => panic!("Haswell-EP SKUs have 4–18 cores, got {cores}"),
        }
    }

    /// Total DDR channels across all partitions.
    pub fn total_memory_channels(&self) -> usize {
        self.partitions.iter().map(|p| p.memory_channels).sum()
    }

    /// Total ring stops counting cores only.
    pub fn total_cores(&self) -> usize {
        self.partitions.iter().map(|p| p.cores).sum()
    }

    /// Which partition a (0-based) core id belongs to, counting cores in
    /// partition order.
    pub fn partition_of_core(&self, core: usize) -> usize {
        let mut base = 0;
        for (i, p) in self.partitions.iter().enumerate() {
            if core < base + p.cores {
                return i;
            }
            base += p.cores;
        }
        panic!("core {core} out of range for die {}", self.name);
    }

    /// Average number of ring hops between a core and an L3 slice / IMC in
    /// the same partition: on a bidirectional ring of `n` stops the mean
    /// distance is ≈ n/4.
    pub fn mean_ring_hops(&self, partition: usize) -> f64 {
        let n = self.partitions[partition].cores as f64;
        (n / 4.0).max(1.0)
    }

    /// Whether two cores are on different partitions (their traffic crosses
    /// the buffered inter-ring queues).
    pub fn crosses_partition(&self, core_a: usize, core_b: usize) -> bool {
        self.partition_of_core(core_a) != self.partition_of_core(core_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn die_core_counts_match_figure1() {
        assert_eq!(DieLayout::die8().total_cores(), 8);
        assert_eq!(DieLayout::die12().total_cores(), 12);
        assert_eq!(DieLayout::die18().total_cores(), 18);
    }

    #[test]
    fn die12_partitions_are_8_plus_4() {
        let d = DieLayout::die12();
        assert_eq!(d.partitions.len(), 2);
        assert_eq!(d.partitions[0].cores, 8);
        assert_eq!(d.partitions[1].cores, 4);
    }

    #[test]
    fn die18_partitions_are_8_plus_10() {
        let d = DieLayout::die18();
        assert_eq!(d.partitions[0].cores, 8);
        assert_eq!(d.partitions[1].cores, 10);
    }

    #[test]
    fn every_haswell_die_has_four_channels_total() {
        // Each partition has an IMC for two channels; single-partition die
        // drives all four (paper Section II-A).
        for d in [DieLayout::die8(), DieLayout::die12(), DieLayout::die18()] {
            assert_eq!(d.total_memory_channels(), 4, "{}", d.name);
        }
    }

    #[test]
    fn sku_core_count_selects_correct_die() {
        assert_eq!(DieLayout::for_haswell_core_count(4).physical_cores, 8);
        assert_eq!(DieLayout::for_haswell_core_count(8).physical_cores, 8);
        assert_eq!(DieLayout::for_haswell_core_count(10).physical_cores, 12);
        assert_eq!(DieLayout::for_haswell_core_count(12).physical_cores, 12);
        assert_eq!(DieLayout::for_haswell_core_count(14).physical_cores, 18);
        assert_eq!(DieLayout::for_haswell_core_count(18).physical_cores, 18);
    }

    #[test]
    #[should_panic]
    fn more_than_18_cores_is_not_a_haswell_ep() {
        let _ = DieLayout::for_haswell_core_count(20);
    }

    #[test]
    fn partition_of_core_partitions_the_id_space() {
        let d = DieLayout::die12();
        for c in 0..8 {
            assert_eq!(d.partition_of_core(c), 0);
        }
        for c in 8..12 {
            assert_eq!(d.partition_of_core(c), 1);
        }
    }

    #[test]
    fn cross_partition_detection() {
        let d = DieLayout::die12();
        assert!(!d.crosses_partition(0, 7));
        assert!(d.crosses_partition(0, 8));
        assert!(!d.crosses_partition(9, 11));
    }

    #[test]
    fn mean_hops_scale_with_partition_size() {
        let d = DieLayout::die18();
        assert!(d.mean_ring_hops(1) > d.mean_ring_hops(0) * 1.1);
    }
}
