//! Paper-style text rendering of experiment results.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An aligned text table (the rendering used for Tables I–V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<impl Into<String>>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for c in row {
                out.push_str(&format!(" {c} |"));
            }
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "{}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>| {
            for width in &w {
                write!(f, "+{}", "-".repeat(width + 2))?;
            }
            writeln!(f, "+")
        };
        line(f)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "| {:width$} ", h, width = w[i])?;
        }
        writeln!(f, "|")?;
        line(f)?;
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                write!(f, "| {:>width$} ", c, width = w[i])?;
            }
            writeln!(f, "|")?;
        }
        line(f)
    }
}

/// A whole experiment report: tables plus free-form observations.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    pub tables: Vec<Table>,
    pub notes: Vec<String>,
}

impl Report {
    pub fn push_table(&mut self, t: Table) {
        self.tables.push(t);
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.tables {
            writeln!(f, "{t}")?;
        }
        for n in &self.notes {
            writeln!(f, "  * {n}")?;
        }
        Ok(())
    }
}

/// PASS/FAIL cell text (survey scoreboard and check lines).
pub fn pass_fail(passed: bool) -> &'static str {
    if passed {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Format a frequency in GHz with the paper's precision.
pub fn ghz(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a power in W with the paper's precision.
pub fn watts(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", vec!["setting", "GHz"]);
        t.row(vec!["Turbo", "3.0"]);
        t.row(vec!["2.5", "2.2"]);
        let s = t.to_string();
        assert!(s.contains("| setting | GHz |"));
        assert!(s.contains("|   Turbo | 3.0 |"));
        // Every data line has the same width.
        let widths: Vec<usize> = s.lines().map(|l| l.chars().count()).collect();
        assert!(widths
            .windows(2)
            .all(|w| w[0] == w[1] || w[0] == 4 /* title */));
    }

    #[test]
    fn report_accumulates_tables_and_notes() {
        let mut r = Report::default();
        r.push_table(Table::new("A", vec!["x"]));
        r.note("observation");
        let s = r.to_string();
        assert!(s.contains('A'));
        assert!(s.contains("* observation"));
    }

    #[test]
    fn markdown_rendering_is_well_formed() {
        let mut t = Table::new("MD", vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        let pipes_header = md.lines().nth(2).unwrap().matches('|').count();
        let pipes_row = md.lines().nth(4).unwrap().matches('|').count();
        assert_eq!(pipes_header, pipes_row);
    }

    #[test]
    fn formatters_match_paper_precision() {
        assert_eq!(ghz(2.345), "2.35");
        assert_eq!(watts(560.44), "560.4");
        assert_eq!(pass_fail(true), "PASS");
        assert_eq!(pass_fail(false), "FAIL");
    }
}
