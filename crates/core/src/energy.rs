//! Energy-efficiency metrics and DVFS/DCT operating-point sweeps.
//!
//! The survey's purpose is to inform "energy efficiency optimization
//! strategies such as dynamic voltage and frequency scaling (DVFS) and
//! dynamic concurrency throttling (DCT)" (abstract). This module turns the
//! simulated node into that optimizer's evaluation function: sweep
//! frequency settings (and concurrency) for a workload, measure throughput
//! and power through the standard counters, and report energy-per-work and
//! energy-delay product.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{CpuId, Platform, Resolution};
use hsw_tools::perfctr::{median_of, PerfCtr};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Measured efficiency of one operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OperatingPoint {
    pub setting_mhz: Option<u32>,
    pub cores: usize,
    /// Socket throughput proxy: GIPS of one thread × active cores (IPS) or
    /// DRAM bandwidth for bandwidth-bound work (GB/s).
    pub throughput: f64,
    /// RAPL package + DRAM power of the socket (W).
    pub power_w: f64,
}

impl OperatingPoint {
    /// Energy per unit of work (J per 10⁹ instructions or J per GB).
    pub fn energy_per_work(&self) -> f64 {
        self.power_w / self.throughput.max(1e-9)
    }

    /// Energy-delay product (lower is better).
    pub fn edp(&self) -> f64 {
        self.power_w / (self.throughput * self.throughput).max(1e-18)
    }
}

/// Sweep result with the energy-optimal point marked.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergySweep {
    pub workload: String,
    pub points: Vec<OperatingPoint>,
}

impl EnergySweep {
    pub fn energy_optimal(&self) -> &OperatingPoint {
        self.points
            .iter()
            .min_by(|a, b| a.energy_per_work().total_cmp(&b.energy_per_work()))
            .expect("non-empty sweep")
    }

    pub fn edp_optimal(&self) -> &OperatingPoint {
        self.points
            .iter()
            .min_by(|a, b| a.edp().total_cmp(&b.edp()))
            .expect("non-empty sweep")
    }
}

fn measure(
    profile: &WorkloadProfile,
    setting: FreqSetting,
    cores: usize,
    seed: u64,
) -> OperatingPoint {
    let mut node = Platform::paper()
        .session()
        .seed(seed)
        .resolution(Resolution::Custom(100))
        .build();
    node.idle_all();
    node.run_on_socket(0, profile, cores, 1);
    node.set_setting_all(setting);
    node.advance_s(0.4);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let samples = pc.monitor(&mut node, 6, 0.2);
    let gips = median_of(&samples, |d| d.gips);
    let power = median_of(&samples, |d| d.pkg_w + d.dram_w);
    let bandwidth_bound = profile.stall_fraction > hsw_hwspec::calib::UFS_STALL_THRESHOLD;
    let throughput = if bandwidth_bound {
        node.dram_bandwidth_gbs(0)
    } else {
        gips * cores as f64
    };
    OperatingPoint {
        setting_mhz: match setting {
            FreqSetting::Turbo => None,
            FreqSetting::Fixed(p) => Some(p.mhz()),
        },
        cores,
        throughput,
        power_w: power,
    }
}

/// DVFS sweep: all settings at fixed concurrency.
pub fn dvfs_sweep(profile: &WorkloadProfile, cores: usize) -> EnergySweep {
    let sku = Platform::paper().spec.sku;
    let points: Vec<OperatingPoint> = sku
        .freq
        .all_settings()
        .par_iter()
        .enumerate()
        .map(|(i, s)| measure(profile, *s, cores, 55_000 + i as u64))
        .collect();
    EnergySweep {
        workload: profile.name.to_string(),
        points,
    }
}

/// DCT sweep: concurrency 1..=cores at a fixed setting.
pub fn dct_sweep(profile: &WorkloadProfile, setting: FreqSetting) -> EnergySweep {
    let sku = Platform::paper().spec.sku;
    let points: Vec<OperatingPoint> = (1..=sku.cores)
        .collect::<Vec<_>>()
        .par_iter()
        .enumerate()
        .map(|(i, n)| measure(profile, setting, *n, 56_000 + i as u64))
        .collect();
    EnergySweep {
        workload: profile.name.to_string(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_sweep() -> &'static EnergySweep {
        static CACHE: std::sync::OnceLock<EnergySweep> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| dvfs_sweep(&WorkloadProfile::memory_bound(), 12))
    }

    fn compute_sweep() -> &'static EnergySweep {
        static CACHE: std::sync::OnceLock<EnergySweep> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| dvfs_sweep(&WorkloadProfile::compute(), 12))
    }

    #[test]
    fn memory_bound_energy_optimum_is_the_lowest_frequency() {
        // The paper's Conclusions: DRAM bandwidth no longer depends on the
        // core clock, "thereby making well-known efficiency optimizations
        // for memory-bound workloads viable again".
        let opt = memory_sweep().energy_optimal();
        assert_eq!(opt.setting_mhz, Some(1200), "optimal {:?}", opt.setting_mhz);
    }

    #[test]
    fn compute_bound_energy_optimum_is_higher_than_memory_bound() {
        let mem = memory_sweep().energy_optimal().setting_mhz.unwrap_or(3300);
        let cmp = compute_sweep().energy_optimal().setting_mhz.unwrap_or(3300);
        assert!(cmp > mem, "compute optimum {cmp} vs memory {mem}");
    }

    #[test]
    fn memory_bound_throughput_is_flat_across_dvfs() {
        let s = memory_sweep();
        let tp: Vec<f64> = s.points.iter().map(|p| p.throughput).collect();
        let lo = tp.iter().cloned().fold(f64::MAX, f64::min);
        let hi = tp.iter().cloned().fold(0.0, f64::max);
        assert!(lo / hi > 0.95, "throughput spread {lo:.1}..{hi:.1} GB/s");
    }

    #[test]
    fn dct_beyond_saturation_wastes_energy() {
        let s = dct_sweep(
            &WorkloadProfile::memory_bound(),
            FreqSetting::from_mhz(2500),
        );
        let at = |n: usize| s.points.iter().find(|p| p.cores == n).expect("point");
        // Same bandwidth at 8 and 12 cores, lower energy per byte at 8.
        assert!(at(8).throughput / at(12).throughput > 0.95);
        assert!(at(8).energy_per_work() < at(12).energy_per_work());
    }

    #[test]
    fn edp_optimum_never_slower_than_energy_optimum() {
        // EDP weighs performance more heavily, so its optimal frequency is
        // at least as high.
        let s = compute_sweep();
        let e = s.energy_optimal().setting_mhz.unwrap_or(3300);
        let d = s.edp_optimal().setting_mhz.unwrap_or(3300);
        assert!(d >= e, "EDP {d} vs energy {e}");
    }
}
