//! Statistics used by the experiments: least-squares fits (the Figure 2
//! linear/quadratic fits with R²), medians, percentiles and histograms.

use serde::{Deserialize, Serialize};

/// A fitted polynomial `y = c0 + c1·x (+ c2·x²)` with its goodness of fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    pub coeffs: [f64; 3],
    pub r_squared: f64,
    /// Largest |residual| across the fitted points.
    pub max_residual: f64,
}

impl Fit {
    pub fn eval(&self, x: f64) -> f64 {
        self.coeffs[0] + self.coeffs[1] * x + self.coeffs[2] * x * x
    }
}

/// Solve a small symmetric positive-definite system by Gaussian
/// elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n).max_by(|i, j| a[*i][col].abs().total_cmp(&a[*j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let pivot_row = a[col].clone();
            for (k, pv) in pivot_row.iter().enumerate().take(n).skip(col) {
                a[row][k] -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in row + 1..n {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Some(x)
}

fn polyfit(points: &[(f64, f64)], degree: usize) -> Option<Fit> {
    let n = degree + 1;
    if points.len() < n {
        return None;
    }
    // Normal equations: (XᵀX) c = Xᵀy.
    let mut xtx = vec![vec![0.0; n]; n];
    let mut xty = vec![0.0; n];
    for &(x, y) in points {
        let mut powers = [1.0; 3];
        for (k, p) in powers.iter_mut().enumerate().take(n).skip(1) {
            *p = x.powi(k as i32);
        }
        for i in 0..n {
            for j in 0..n {
                xtx[i][j] += powers[i] * powers[j];
            }
            xty[i] += powers[i] * y;
        }
    }
    let c = solve(xtx, xty)?;
    let mut coeffs = [0.0; 3];
    coeffs[..n].copy_from_slice(&c);
    let fit = Fit {
        coeffs,
        r_squared: 0.0,
        max_residual: 0.0,
    };
    // Goodness of fit.
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut max_res: f64 = 0.0;
    for &(x, y) in points {
        let r = y - fit.eval(x);
        ss_res += r * r;
        ss_tot += (y - mean_y) * (y - mean_y);
        max_res = max_res.max(r.abs());
    }
    Some(Fit {
        coeffs,
        r_squared: if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        },
        max_residual: max_res,
    })
}

/// Least-squares linear fit `y = c0 + c1·x`.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<Fit> {
    polyfit(points, 1)
}

/// Least-squares quadratic fit `y = c0 + c1·x + c2·x²` (the paper's
/// Haswell-EP AC-vs-RAPL fit, footnote 2).
pub fn quadratic_fit(points: &[(f64, f64)]) -> Option<Fit> {
    polyfit(points, 2)
}

/// Median (interpolated for even lengths).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len().is_multiple_of(2) {
        0.5 * (v[mid - 1] + v[mid])
    } else {
        v[mid]
    }
}

/// Percentile in [0, 100] (nearest-rank).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Fixed-width histogram over [0, max); the last bin absorbs overflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    pub bin_width: f64,
    pub counts: Vec<usize>,
}

impl Histogram {
    pub fn build(values: &[f64], bin_width: f64, max: f64) -> Self {
        let bins = (max / bin_width).ceil().max(1.0) as usize;
        let mut counts = vec![0usize; bins];
        for &v in values {
            let idx = ((v / bin_width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram { bin_width, counts }
    }

    /// Bin index with the most samples.
    pub fn mode_bin(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Center of a bin.
    pub fn bin_center(&self, idx: usize) -> f64 {
        (idx as f64 + 0.5) * self.bin_width
    }

    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quadratic_fit_recovers_paper_coefficients() {
        // Synthesize points from the paper's published fit and re-discover
        // the coefficients.
        let pts: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let x = 30.0 + i as f64 * 4.5;
                (x, 0.0003 * x * x + 1.097 * x + 225.7)
            })
            .collect();
        let fit = quadratic_fit(&pts).unwrap();
        assert!((fit.coeffs[2] - 0.0003).abs() < 1e-6, "{:?}", fit.coeffs);
        assert!((fit.coeffs[1] - 1.097).abs() < 1e-4);
        assert!((fit.coeffs[0] - 225.7).abs() < 1e-2);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.coeffs[0] - 3.0).abs() < 1e-9);
        assert!((fit.coeffs[1] - 2.0).abs() < 1e-9);
        assert_eq!(fit.coeffs[2], 0.0);
        assert!(fit.max_residual < 1e-9);
    }

    #[test]
    fn r_squared_degrades_with_noise() {
        let clean: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 2.0 * i as f64)).collect();
        let noisy: Vec<(f64, f64)> = clean
            .iter()
            .enumerate()
            .map(|(i, (x, y))| (*x, y + if i % 2 == 0 { 15.0 } else { -15.0 }))
            .collect();
        let f_clean = linear_fit(&clean).unwrap();
        let f_noisy = linear_fit(&noisy).unwrap();
        assert!(f_clean.r_squared > f_noisy.r_squared);
    }

    #[test]
    fn median_and_percentile() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&v), 3.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn histogram_counts_and_mode() {
        let h = Histogram::build(&[10.0, 12.0, 480.0, 490.0, 495.0], 25.0, 525.0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.mode_bin(), 19); // 475–500 µs bin
        assert!((h.bin_center(19) - 487.5).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_fit_returns_none() {
        assert!(quadratic_fit(&[(0.0, 1.0), (1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(0.0, 1.0)]).is_none());
    }

    proptest! {
        #[test]
        fn prop_linear_fit_recovers_random_lines(
            a in -100.0f64..100.0,
            b in -10.0f64..10.0,
        ) {
            let pts: Vec<(f64, f64)> = (0..20).map(|i| {
                let x = i as f64;
                (x, a + b * x)
            }).collect();
            let fit = linear_fit(&pts).unwrap();
            prop_assert!((fit.coeffs[0] - a).abs() < 1e-6);
            prop_assert!((fit.coeffs[1] - b).abs() < 1e-6);
        }

        #[test]
        fn prop_median_within_range(v in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let m = median(&v);
            let lo = v.iter().cloned().fold(f64::MAX, f64::min);
            let hi = v.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!(m >= lo && m <= hi);
        }

        #[test]
        fn prop_histogram_conserves_samples(
            v in proptest::collection::vec(0.0f64..1000.0, 0..200)
        ) {
            let h = Histogram::build(&v, 50.0, 600.0);
            prop_assert_eq!(h.total(), v.len());
        }
    }
}
