//! Experiment fidelity: how long to run the simulated measurements.

use serde::{Deserialize, Serialize};

/// Measurement durations for the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Short runs for tests and CI (seconds of simulated time).
    Quick,
    /// The paper's methodology durations (minutes of simulated time —
    /// run under `--release`).
    Paper,
    /// Surrogate tier: sweep points are answered by the `hsw-analytic`
    /// closed form; a deterministic spot-check sample runs the full
    /// simulator at [`Quick`](Fidelity::Quick) durations (every duration
    /// accessor delegates to `Quick`, so spot-check bytes match a `quick`
    /// run of the same points). Only experiments that opt in via
    /// [`SurveyExperiment::supports_surrogate`](crate::survey::SurveyExperiment::supports_surrogate)
    /// accept it.
    Analytic,
}

impl Fidelity {
    /// Number of 1 s LIKWID samples for Table IV (paper: 50).
    pub fn table4_samples(self) -> usize {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 10,
            Fidelity::Paper => 50,
        }
    }

    /// Sampling interval for Table IV in seconds (paper: 1 s).
    pub fn table4_interval_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 0.2,
            Fidelity::Paper => 1.0,
        }
    }

    /// Uncore-frequency measurement duration for Table III (paper: 10 s).
    pub fn table3_measure_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 0.5,
            Fidelity::Paper => 10.0,
        }
    }

    /// Stress-test recording duration for Table V (paper: 1000 s runs).
    pub fn table5_run_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 6.0,
            Fidelity::Paper => 120.0,
        }
    }

    /// Maximum-power extraction window for Table V (paper: 60 s).
    pub fn table5_window_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 4.0,
            Fidelity::Paper => 60.0,
        }
    }

    /// Averaging window per Figure 2 measurement point (paper: 4 s).
    pub fn fig2_avg_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 1.0,
            Fidelity::Paper => 4.0,
        }
    }

    /// FTaLaT samples per campaign (paper: 1000).
    pub fn fig3_samples(self) -> usize {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 120,
            Fidelity::Paper => 1000,
        }
    }

    /// Wake-latency handshakes per point.
    pub fn fig56_iterations(self) -> usize {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 20,
            Fidelity::Paper => 200,
        }
    }

    /// Nodes per fleet experiment, unless overridden by `--fleet-size`.
    pub fn fleet_size(self) -> usize {
        match self {
            Fidelity::Quick => 32,
            Fidelity::Paper => 256,
            // Surrogate points cost microseconds; default wide.
            Fidelity::Analytic => 65_536,
        }
    }

    /// Package power caps (PL1, W per socket) the cap-and-measure fleet
    /// experiment sweeps; `None` is the uncapped baseline. The E5-2680 v3
    /// TDP is 120 W, so 70 W is a tight cap well inside the throttling
    /// regime.
    pub fn fleet_caps_w(self) -> Vec<Option<f64>> {
        match self {
            Fidelity::Quick | Fidelity::Analytic => vec![None, Some(70.0)],
            Fidelity::Paper => vec![None, Some(100.0), Some(85.0), Some(70.0)],
        }
    }

    /// Per-node settle time before the fleet measurement window (s). Must
    /// cover several PL1 limiter windows (`RAPL_LIMIT_WINDOW_US`, 0.15 s):
    /// a forked fleet member inherits the *golden* chip's converged state
    /// and needs that long to throttle to its own electrical identity.
    pub fn fleet_settle_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 0.6,
            Fidelity::Paper => 1.5,
        }
    }

    /// Per-node fleet measurement window (s).
    pub fn fleet_measure_s(self) -> f64 {
        match self {
            Fidelity::Quick | Fidelity::Analytic => 0.3,
            Fidelity::Paper => 2.0,
        }
    }

    /// Stable lowercase label (`quick` / `paper`), the inverse of
    /// [`FromStr`](std::str::FromStr). Used by the survey binary and in
    /// `survey.json`.
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Quick => "quick",
            Fidelity::Paper => "paper",
            Fidelity::Analytic => "analytic",
        }
    }

    /// Whether sweeps should answer points from the closed-form surrogate.
    pub fn is_analytic(self) -> bool {
        matches!(self, Fidelity::Analytic)
    }
}

impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "quick" => Ok(Fidelity::Quick),
            "paper" => Ok(Fidelity::Paper),
            "analytic" => Ok(Fidelity::Analytic),
            other => Err(format!(
                "unknown fidelity '{other}' (expected quick|paper|analytic)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fidelity_matches_methodology() {
        assert_eq!(Fidelity::Paper.table4_samples(), 50);
        assert_eq!(Fidelity::Paper.table4_interval_s(), 1.0);
        assert_eq!(Fidelity::Paper.table3_measure_s(), 10.0);
        assert_eq!(Fidelity::Paper.table5_window_s(), 60.0);
        assert_eq!(Fidelity::Paper.fig2_avg_s(), 4.0);
        assert_eq!(Fidelity::Paper.fig3_samples(), 1000);
    }

    #[test]
    fn labels_round_trip_through_fromstr() {
        for f in [Fidelity::Quick, Fidelity::Paper, Fidelity::Analytic] {
            assert_eq!(f.label().parse::<Fidelity>().unwrap(), f);
        }
        assert_eq!("PAPER".parse::<Fidelity>().unwrap(), Fidelity::Paper);
        assert!("fast".parse::<Fidelity>().is_err());
    }

    #[test]
    fn quick_is_strictly_cheaper() {
        assert!(Fidelity::Quick.table4_samples() < Fidelity::Paper.table4_samples());
        assert!(Fidelity::Quick.table5_run_s() < Fidelity::Paper.table5_run_s());
        assert!(Fidelity::Quick.fig3_samples() < Fidelity::Paper.fig3_samples());
        assert!(Fidelity::Quick.fleet_size() < Fidelity::Paper.fleet_size());
        assert!(Fidelity::Quick.fleet_caps_w().len() < Fidelity::Paper.fleet_caps_w().len());
        assert!(Fidelity::Quick.fleet_measure_s() < Fidelity::Paper.fleet_measure_s());
    }

    #[test]
    fn analytic_spot_checks_run_at_quick_durations() {
        // The spot-check contract: a point re-run at full fidelity under
        // `--fidelity analytic` must be byte-identical to the same point
        // under `--fidelity quick`, so every measurement duration delegates.
        let (a, q) = (Fidelity::Analytic, Fidelity::Quick);
        assert_eq!(a.table4_samples(), q.table4_samples());
        assert_eq!(a.table4_interval_s(), q.table4_interval_s());
        assert_eq!(a.fig2_avg_s(), q.fig2_avg_s());
        assert_eq!(a.fleet_settle_s(), q.fleet_settle_s());
        assert_eq!(a.fleet_measure_s(), q.fleet_measure_s());
        assert_eq!(a.fleet_caps_w(), q.fleet_caps_w());
        assert!(a.fleet_size() > Fidelity::Paper.fleet_size());
        assert!(a.is_analytic() && !q.is_analytic());
    }

    #[test]
    fn fleet_cap_lists_start_uncapped_and_tighten() {
        for f in [Fidelity::Quick, Fidelity::Paper, Fidelity::Analytic] {
            let caps = f.fleet_caps_w();
            assert_eq!(caps[0], None, "baseline must be uncapped");
            let tight: Vec<f64> = caps.into_iter().flatten().collect();
            assert!(tight.windows(2).all(|w| w[0] > w[1]), "caps must tighten");
            assert!(tight.iter().all(|&c| c < 120.0), "caps must bind below TDP");
        }
    }
}
