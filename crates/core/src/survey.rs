//! The experiment registry and concurrent survey runner.
//!
//! Every table/figure module exposes an [`SurveyExperiment`] adapter; the
//! registry enumerates them in paper order and [`run_survey`] fans them
//! out across worker threads. Determinism contract: each experiment's RNG
//! seed is derived from the root seed and the experiment id only
//! ([`experiment_seed`]), never from scheduling, so the same `--seed`
//! yields bit-identical results for any `--jobs` value. Wall-clock
//! timings are reported separately ([`SurveyRun::timings_s`]) and are
//! deliberately excluded from the JSON document.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use hsw_fleet::{ChipVariation, VariationModel};
use hsw_node::{EngineMode, Node, NodeSnapshot, Platform, PlatformKind, Session, SessionBuilder};
use rayon::prelude::*;
use serde::{Serialize, Value};

use crate::experiments;
use crate::report::Table;
use crate::Fidelity;

// ---------------------------------------------------------------------------
// Seed schedule
//
// One sweep base seed feeds three independent streams. Each stream that
// enumerates small integers lives under its *own* sub-base, derived from the
// sweep base with a stream-specific salt, so the streams can never collide
// for any sweep size or fleet size:
//
//   point k  : mix_seed(base, k)                          (k = 0, 1, 2, …)
//   warmup   : mix_seed(mix_seed(base, WARMUP_SALT), WARMUP_SALT)
//   node id  : mix_seed(mix_seed(base, NODE_SALT), id)    (id = 0, 1, 2, …)
//
// A single shared namespace would be a trap: `mix_seed(base, k)` and a
// hypothetical `mix_seed(base, node_id)` coincide exactly when `k ==
// node_id`, seeding two *different* simulations identically (see the
// `node_stream_fix_*` regression tests, which construct that collision).
// ---------------------------------------------------------------------------

/// Stream salt of the shared-warmup sub-base. Any large fixed constant
/// works; this one spells "WARMUP".
const WARMUP_SALT: u64 = 0x5741_524D_5550_9E37;

/// Stream salt of the fleet node-id sub-base ("NODEIDS").
const NODE_SALT: u64 = 0x4E4F_4445_4944_537F;

/// Stream salt of the surrogate spot-check sub-base ("SPOTCHK"). Like the
/// other stream salts it gives the spot-check draws their own namespace,
/// so the sample can never alias a point seed or node seed.
pub const SPOTCHECK_SALT: u64 = 0x5350_4F54_4348_4B7F;

/// Points/nodes of one surrogate sweep that re-run the full simulator.
pub const SPOTCHECK_K: usize = 2;

/// The deterministic spot-check sample of a surrogate sweep: `k` distinct
/// indices in `0..n`, in draw order, from the spot-check sub-base
/// `mix_seed(base, SPOTCHECK_SALT)`. A pure function of `(base, n, k)` —
/// never of scheduling — so the sample is byte-identical at any `--jobs`
/// value and pool width. Keep `k` small (the distinctness scan is O(k)
/// per draw); the executors use [`SPOTCHECK_K`].
pub fn spotcheck_ids(base: u64, n: usize, k: usize) -> Vec<usize> {
    let sub = mix_seed(base, SPOTCHECK_SALT);
    let mut ids: Vec<usize> = Vec::with_capacity(k.min(n));
    let mut draw = 0u64;
    while ids.len() < k.min(n) {
        let id = (mix_seed(sub, draw) % n as u64) as usize;
        if !ids.contains(&id) {
            ids.push(id);
        }
        draw += 1;
    }
    ids
}

/// Relative error of a surrogate value against the full simulator's
/// (absolute error when the simulator reads exactly zero).
pub fn rel_err(surrogate: f64, full: f64) -> f64 {
    if full == 0.0 {
        surrogate.abs()
    } else {
        ((surrogate - full) / full).abs()
    }
}

/// One surrogate sweep answer: the closed-form value, plus the full
/// simulator's answer when the point was in the spot-check sample.
#[derive(Debug, Clone)]
pub struct Surrogate<R> {
    pub value: R,
    pub checked: Option<R>,
}

/// The warmup session's seed for a sweep base (its own sub-base, outside
/// both the point-index and node-id streams).
fn warmup_seed(base: u64) -> u64 {
    mix_seed(mix_seed(base, WARMUP_SALT), WARMUP_SALT)
}

/// Fleet node `id`'s seed for a sweep base: drawn from the node-id
/// sub-base, so it coincides with no point seed `mix_seed(base, k)` even
/// when `id == k`.
pub fn node_seed(base: u64, id: u64) -> u64 {
    mix_seed(mix_seed(base, NODE_SALT), id)
}

/// Everything an experiment gets from the runner.
#[derive(Debug, Clone)]
pub struct RunCtx {
    pub fidelity: Fidelity,
    /// Per-experiment seed, already derived from the survey root seed and
    /// the experiment id. Fully deterministic experiments ignore it.
    pub seed: u64,
    /// Time-advance engine every session of this experiment runs under.
    pub engine: EngineMode,
    /// Simulated-time ledger: every session built through [`RunCtx::session`]
    /// credits its total simulated nanoseconds here on drop.
    sim_ns: Arc<AtomicU64>,
    /// Sweep points executed through [`RunCtx::sweep`]/[`RunCtx::sweep_salted`]
    /// (the scoreboard's `pts` column).
    points: Arc<AtomicU64>,
    /// Warm-start mode: `true` runs each warm sweep's warmup once and forks
    /// every point from the converged snapshot; `false` re-runs the warmup
    /// per point. Both paths execute the identical fork code under the
    /// identical seed schedule, so results are byte-identical — only wall
    /// clock differs.
    warm_start: bool,
    /// Sweep points served from a shared warm-start snapshot instead of a
    /// re-run warmup (the scoreboard's `reuse` column).
    reuses: Arc<AtomicU64>,
    /// Sweep points answered by the closed-form surrogate instead of the
    /// simulator (the scoreboard's `sur` column).
    surrogate_hits: Arc<AtomicU64>,
    /// Surrogate points re-run through the full simulator as spot checks
    /// (the scoreboard's `chk` column).
    spot_checks: Arc<AtomicU64>,
    /// `--fleet-size` override for the fleet experiments; `None` leaves the
    /// size to the fidelity preset ([`Fidelity::fleet_size`]).
    pub fleet_size: Option<usize>,
    /// Which surveyed machine [`RunCtx::platform`] models (`--platform`).
    pub platform_kind: PlatformKind,
}

impl RunCtx {
    pub fn new(fidelity: Fidelity, seed: u64, engine: EngineMode) -> Self {
        RunCtx {
            fidelity,
            seed,
            engine,
            sim_ns: Arc::new(AtomicU64::new(0)),
            points: Arc::new(AtomicU64::new(0)),
            warm_start: true,
            reuses: Arc::new(AtomicU64::new(0)),
            surrogate_hits: Arc::new(AtomicU64::new(0)),
            spot_checks: Arc::new(AtomicU64::new(0)),
            fleet_size: None,
            platform_kind: PlatformKind::Haswell,
        }
    }

    /// Select the machine under test (`--platform`). Default: the paper's
    /// Haswell node.
    pub fn with_platform(mut self, kind: PlatformKind) -> Self {
        self.platform_kind = kind;
        self
    }

    /// Select cold (`false`) or warm (`true`, the default) execution of the
    /// warm-sweep executors. Results are identical either way.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Override the fleet size the fleet experiments simulate (`--fleet-size`).
    pub fn with_fleet_size(mut self, fleet_size: Option<usize>) -> Self {
        self.fleet_size = fleet_size;
        self
    }

    /// Nodes per fleet experiment: the `--fleet-size` override if given,
    /// else the fidelity preset.
    pub fn fleet_size(&self) -> usize {
        self.fleet_size.unwrap_or(self.fidelity.fleet_size())
    }

    /// The raw `--fleet-size` override, for experiments that substitute
    /// their own per-fidelity scale defaults (the analytic-scale sweep).
    pub fn fleet_size_override(&self) -> Option<usize> {
        self.fleet_size
    }

    /// The selected platform under this experiment's seed and engine.
    pub fn platform(&self) -> Platform {
        self.platform_kind
            .platform()
            .with_seed(self.seed)
            .with_engine(self.engine)
    }

    /// Start a session on [`RunCtx::platform`], wired to the simulated-time
    /// ledger. Experiments derive per-sweep-point seeds from it with
    /// [`SessionBuilder::derive_seed`].
    pub fn session(&self) -> SessionBuilder {
        self.platform().session().time_ledger(self.sim_ns.clone())
    }

    /// Total simulated seconds advanced by sessions dropped so far.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Sweep points executed so far through the sweep executor.
    pub fn sweep_points(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// Fan `points` through the worker pool with this experiment's seed as
    /// the derivation base: point `k` runs as `f(&points[k],
    /// mix_seed(self.seed, k))`. See [`sweep`] for the determinism
    /// contract.
    pub fn sweep<P, R, F>(&self, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64) -> R + Send + Sync,
    {
        self.points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        sweep(self.seed, points, f)
    }

    /// Like [`RunCtx::sweep`] for experiments that run several sweeps:
    /// `salt` separates the seed streams (panel index, campaign id, …).
    pub fn sweep_salted<P, R, F>(&self, salt: u64, points: &[P], f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P, u64) -> R + Send + Sync,
    {
        self.points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        sweep(mix_seed(self.seed, salt), points, f)
    }

    /// Sweep points served from a shared warm-start snapshot so far.
    pub fn snapshot_reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }

    /// Sweep points answered by the closed-form surrogate so far.
    pub fn surrogate_hits(&self) -> u64 {
        self.surrogate_hits.load(Ordering::Relaxed)
    }

    /// Surrogate points re-run through the full simulator so far.
    pub fn spot_checks(&self) -> u64 {
        self.spot_checks.load(Ordering::Relaxed)
    }

    /// Credit surrogate/spot-check counts from an experiment that drives
    /// its own surrogate-vs-simulator comparison (e.g. the accuracy map)
    /// instead of going through [`RunCtx::sweep_surrogate`].
    pub fn note_surrogate(&self, hits: u64, checks: u64) {
        self.surrogate_hits.fetch_add(hits, Ordering::Relaxed);
        self.spot_checks.fetch_add(checks, Ordering::Relaxed);
    }

    /// Warm-start sweep: amortize a shared settle phase across all points.
    ///
    /// `warmup` receives a session builder (already seeded from the warmup
    /// sub-base — see the seed-schedule note — and *not* wired to the time ledger) and
    /// drives the node to its converged pre-point state. `point` receives a
    /// fork of that state under the point seed `mix_seed(base, k)`, plus
    /// the point itself and the point seed.
    ///
    /// With warm start on, `warmup` runs once and every point forks the one
    /// snapshot; with it off, `warmup` re-runs per point and each fork is a
    /// fresh `Node` fully restored from its image. The warm path goes
    /// further: each worker thread keeps one *scratch node* synced with the
    /// current warm image and re-arms it between points with
    /// [`Node::fork_from`], which copies back only the snapshot planes the
    /// previous point dirtied. All three constructions are bit-identical —
    /// the dirty mask guarantees untouched planes already equal the image,
    /// and [`hsw_node`]'s noise is keyed by (seed, domain, sim-time) rather
    /// than step count — so results are byte-identical by construction;
    /// only wall clock differs.
    ///
    /// Contract for `warmup`: configure the builder freely (spec,
    /// resolution, EET, …) but never call [`SessionBuilder::seed`] /
    /// [`SessionBuilder::derive_seed`] — the executor owns the seed
    /// schedule.
    pub fn sweep_warm<P, R, W, F>(&self, points: &[P], warmup: W, point: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &P, u64) -> R + Send + Sync,
    {
        self.sweep_warm_inner(self.seed, points, warmup, point)
    }

    /// Like [`RunCtx::sweep_warm`] for experiments that run several warm
    /// sweeps: `salt` separates the seed streams (panel index, benchmark
    /// id, …).
    pub fn sweep_warm_salted<P, R, W, F>(
        &self,
        salt: u64,
        points: &[P],
        warmup: W,
        point: F,
    ) -> Vec<R>
    where
        P: Sync,
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &P, u64) -> R + Send + Sync,
    {
        self.sweep_warm_inner(mix_seed(self.seed, salt), points, warmup, point)
    }

    fn sweep_warm_inner<P, R, W, F>(&self, base: u64, points: &[P], warmup: W, point: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &P, u64) -> R + Send + Sync,
    {
        self.points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        // The warmup session is deliberately unledgered: warm mode runs it
        // once, cold mode N times, and `sim_time_s` must not depend on the
        // mode. Each point instead credits its node's final clock — which
        // starts at the warmup's end time — so every point accounts for
        // warmup + point time and the totals agree across modes. (Explicit
        // crediting rather than a drop-ledger: the warm path's scratch
        // nodes outlive the sweep.)
        let warm = |_: &P| {
            let builder = self.platform().session().seed(warmup_seed(base));
            let node = warmup(builder).into_node();
            WarmImage {
                id: IMAGE_IDS.fetch_add(1, Ordering::Relaxed),
                snap: node.snapshot(),
                cfg: node.config().clone(),
            }
        };
        if self.warm_start {
            self.reuses
                .fetch_add(points.len() as u64, Ordering::Relaxed);
            let img = match points.first() {
                Some(p) => warm(p),
                None => return Vec::new(),
            };
            points
                .par_iter()
                .enumerate()
                .map(|(k, p)| {
                    let seed = mix_seed(base, k as u64);
                    // Dirty-plane fork fast path: re-arm this worker's
                    // scratch node if it is synced with this image, else
                    // build one (full restore clears the dirty mask).
                    let mut node = match take_scratch(img.id) {
                        Some(mut node) => {
                            node.fork_from(&img.snap, seed);
                            node
                        }
                        None => {
                            let mut node = Node::new(img.cfg.clone().with_seed(seed));
                            node.restore(&img.snap);
                            node
                        }
                    };
                    let r = point(&mut node, p, seed);
                    self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
                    put_scratch(img.id, node);
                    r
                })
                .collect()
        } else {
            points
                .par_iter()
                .enumerate()
                .map(|(k, p)| {
                    let img = warm(p);
                    let seed = mix_seed(base, k as u64);
                    let mut node = Node::new(img.cfg.clone().with_seed(seed));
                    node.restore(&img.snap);
                    let r = point(&mut node, p, seed);
                    self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
                    r
                })
                .collect()
        }
    }

    /// Warm-start sweep for analytic experiments: amortize a deterministic
    /// shared precomputation instead of a simulated settle. `prep` builds
    /// the shared value — once under warm start, per point under cold — and
    /// `point` consumes a clone of it. Because `prep` takes no seed and is
    /// deterministic, results are mode-independent by construction.
    pub fn sweep_warm_shared<S, P, R, W, F>(&self, points: &[P], prep: W, point: F) -> Vec<R>
    where
        S: Clone + Send + Sync,
        P: Sync,
        R: Send,
        W: Fn() -> S + Send + Sync,
        F: Fn(S, &P, u64) -> R + Send + Sync,
    {
        self.points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        if self.warm_start {
            if points.is_empty() {
                return Vec::new();
            }
            self.reuses
                .fetch_add(points.len() as u64, Ordering::Relaxed);
            let shared = prep();
            points
                .par_iter()
                .enumerate()
                .map(|(k, p)| point(shared.clone(), p, mix_seed(self.seed, k as u64)))
                .collect()
        } else {
            points
                .par_iter()
                .enumerate()
                .map(|(k, p)| point(prep(), p, mix_seed(self.seed, k as u64)))
                .collect()
        }
    }

    /// Surrogate sweep: answer every point from the closed form, then
    /// re-run a deterministic [`SPOTCHECK_K`]-point sample through the full
    /// simulator's warm path and attach those answers for divergence
    /// accounting.
    ///
    /// `warmup`/`point` are exactly [`RunCtx::sweep_warm`]'s callbacks;
    /// `surrogate` answers a point from the closed form under the same
    /// point seed. The spot-checked points run under the *original* point
    /// seeds `mix_seed(base, k)` and the index-independent warmup seed, so
    /// each checked answer is byte-identical to point `k` of a full
    /// `sweep_warm` sweep — at any `--jobs`/pool width, warm or cold (the
    /// fork construction is bit-identical either way).
    pub fn sweep_surrogate<P, R, W, F, S>(
        &self,
        points: &[P],
        warmup: W,
        point: F,
        surrogate: S,
    ) -> Vec<Surrogate<R>>
    where
        P: Sync,
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &P, u64) -> R + Send + Sync,
        S: Fn(&P, u64) -> R + Send + Sync,
    {
        let base = self.seed;
        self.points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        self.surrogate_hits
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        let checked = spotcheck_ids(base, points.len(), SPOTCHECK_K);
        self.spot_checks
            .fetch_add(checked.len() as u64, Ordering::Relaxed);
        let mut out: Vec<Surrogate<R>> = points
            .par_iter()
            .enumerate()
            .map(|(k, p)| Surrogate {
                value: surrogate(p, mix_seed(base, k as u64)),
                checked: None,
            })
            .collect();
        for (k, full) in self.sweep_warm_subset(base, points, &checked, &warmup, &point) {
            out[k].checked = Some(full);
        }
        out
    }

    /// The full-simulator warm path over a subset of a sweep's points,
    /// under the original point seeds — the spot-check engine behind
    /// [`RunCtx::sweep_surrogate`]. Scratch-node reuse is skipped (the
    /// subset is tiny); a full restore is bit-identical to a re-arm.
    fn sweep_warm_subset<P, R, W, F>(
        &self,
        base: u64,
        points: &[P],
        indices: &[usize],
        warmup: &W,
        point: &F,
    ) -> Vec<(usize, R)>
    where
        P: Sync,
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &P, u64) -> R + Send + Sync,
    {
        let warm = || {
            let builder = self.platform().session().seed(warmup_seed(base));
            let node = warmup(builder).into_node();
            (node.snapshot(), node.config().clone())
        };
        let run_one = |snap: &NodeSnapshot, cfg: &hsw_node::NodeConfig, k: usize| {
            let seed = mix_seed(base, k as u64);
            let mut node = Node::new(cfg.clone().with_seed(seed));
            node.restore(snap);
            let r = point(&mut node, &points[k], seed);
            self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
            (k, r)
        };
        if self.warm_start {
            if indices.is_empty() {
                return Vec::new();
            }
            self.reuses
                .fetch_add(indices.len() as u64, Ordering::Relaxed);
            let (snap, cfg) = warm();
            indices
                .par_iter()
                .map(|&k| run_one(&snap, &cfg, k))
                .collect()
        } else {
            indices
                .par_iter()
                .map(|&k| {
                    let (snap, cfg) = warm();
                    run_one(&snap, &cfg, k)
                })
                .collect()
        }
    }

    /// Fleet surrogate sweep: answer every manufactured member from the
    /// closed form, then re-run a deterministic [`SPOTCHECK_K`]-member
    /// sample through the full simulator and attach those answers.
    ///
    /// `warmup`/`member` are exactly [`RunCtx::sweep_fleet`]'s callbacks;
    /// `surrogate` answers member `(variation, id, seed)` from the closed
    /// form (the variation is the same `ChipVariation::sample` draw the
    /// simulator path applies, so a chip's analytic identity is its
    /// simulated identity). Spot-checked members run under their original
    /// node seeds `node_seed(base, id)` and the shared warm image — the
    /// identical fork construction as `sweep_fleet` — so each checked
    /// answer is byte-identical to member `id` of a full-fidelity fleet at
    /// any `--jobs`/pool width.
    pub fn sweep_fleet_surrogate<R, W, F, S>(
        &self,
        fleet_size: usize,
        model: &VariationModel,
        warmup: W,
        member: F,
        surrogate: S,
    ) -> Vec<Surrogate<R>>
    where
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &ChipVariation, usize, u64) -> R + Send + Sync,
        S: Fn(&ChipVariation, usize, u64) -> R + Send + Sync,
    {
        let base = self.seed;
        self.points.fetch_add(fleet_size as u64, Ordering::Relaxed);
        self.surrogate_hits
            .fetch_add(fleet_size as u64, Ordering::Relaxed);
        let checked = spotcheck_ids(base, fleet_size, SPOTCHECK_K);
        self.spot_checks
            .fetch_add(checked.len() as u64, Ordering::Relaxed);
        // The rayon shim parallelizes slices, not ranges.
        let ids: Vec<usize> = (0..fleet_size).collect();
        let mut out: Vec<Surrogate<R>> = ids
            .par_iter()
            .map(|&id| {
                let seed = node_seed(base, id as u64);
                let var = ChipVariation::sample(model, seed);
                Surrogate {
                    value: surrogate(&var, id, seed),
                    checked: None,
                }
            })
            .collect();
        if checked.is_empty() {
            return out;
        }
        let warm = || {
            let builder = self.platform().session().seed(warmup_seed(base));
            let node = warmup(builder).into_node();
            (node.snapshot(), node.config().clone())
        };
        let run_one = |snap: &NodeSnapshot, cfg: &hsw_node::NodeConfig, id: usize| {
            let seed = node_seed(base, id as u64);
            let var = ChipVariation::sample(model, seed);
            let mut node = Node::new(cfg.clone().with_seed(seed).with_spec(var.apply(&cfg.spec)));
            node.restore(snap);
            let r = member(&mut node, &var, id, seed);
            self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
            (id, r)
        };
        let full: Vec<(usize, R)> = if self.warm_start {
            self.reuses
                .fetch_add(checked.len() as u64, Ordering::Relaxed);
            let (snap, cfg) = warm();
            checked
                .par_iter()
                .map(|&id| run_one(&snap, &cfg, id))
                .collect()
        } else {
            checked
                .par_iter()
                .map(|&id| {
                    let (snap, cfg) = warm();
                    run_one(&snap, &cfg, id)
                })
                .collect()
        };
        for (id, r) in full {
            out[id].checked = Some(r);
        }
        out
    }

    /// Fleet sweep: warm one *golden* node, then fork it into `fleet_size`
    /// manufactured variants and run `member` on each.
    ///
    /// `warmup` drives the reference chip (nominal spec unless the builder
    /// overrides it — a package power cap set via [`SessionBuilder::spec`]
    /// is inherited by every member) to its converged state, exactly like
    /// [`RunCtx::sweep_warm`]. Node `id` then forks as its own chip:
    ///
    /// * seed `node_seed(base, id)` — the node-id sub-base, collision-free
    ///   against point and warmup streams (see the seed-schedule note);
    /// * spec `ChipVariation::sample(model, seed).apply(warmup spec)` — the
    ///   per-chip manufacturing draw, a pure function of the node seed;
    /// * state restored from the golden snapshot, clock included, so every
    ///   member continues from the same converged instant.
    ///
    /// `member` receives `(node, &variation, id, seed)`. Results come back
    /// in node-id order; byte-identical for any pool width and `--jobs`
    /// (warm and cold modes run the identical fork construction).
    pub fn sweep_fleet<R, W, F>(
        &self,
        fleet_size: usize,
        model: &VariationModel,
        warmup: W,
        member: F,
    ) -> Vec<R>
    where
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &ChipVariation, usize, u64) -> R + Send + Sync,
    {
        self.sweep_fleet_inner(self.seed, fleet_size, model, warmup, member)
    }

    /// Like [`RunCtx::sweep_fleet`] for experiments that run several fleets
    /// (one per power cap, say): `salt` separates the sweep bases, so every
    /// fleet manufactures the *same* chips only when it runs under the same
    /// salt.
    pub fn sweep_fleet_salted<R, W, F>(
        &self,
        salt: u64,
        fleet_size: usize,
        model: &VariationModel,
        warmup: W,
        member: F,
    ) -> Vec<R>
    where
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &ChipVariation, usize, u64) -> R + Send + Sync,
    {
        self.sweep_fleet_inner(mix_seed(self.seed, salt), fleet_size, model, warmup, member)
    }

    fn sweep_fleet_inner<R, W, F>(
        &self,
        base: u64,
        fleet_size: usize,
        model: &VariationModel,
        warmup: W,
        member: F,
    ) -> Vec<R>
    where
        R: Send,
        W: Fn(SessionBuilder) -> Session + Send + Sync,
        F: Fn(&mut Node, &ChipVariation, usize, u64) -> R + Send + Sync,
    {
        self.points.fetch_add(fleet_size as u64, Ordering::Relaxed);
        let warm = || {
            let builder = self.platform().session().seed(warmup_seed(base));
            let node = warmup(builder).into_node();
            WarmImage {
                id: IMAGE_IDS.fetch_add(1, Ordering::Relaxed),
                snap: node.snapshot(),
                cfg: node.config().clone(),
            }
        };
        // Every member is its own manufactured chip (its own spec), so the
        // scratch-node fast path does not apply here: each fork builds a
        // fresh node around the member's varied spec and restores in full.
        let fork = |img: &WarmImage, id: usize| {
            let seed = node_seed(base, id as u64);
            let var = ChipVariation::sample(model, seed);
            let mut node = Node::new(
                img.cfg
                    .clone()
                    .with_seed(seed)
                    .with_spec(var.apply(&img.cfg.spec)),
            );
            node.restore(&img.snap);
            (node, var, seed)
        };
        // The rayon shim parallelizes slices, not ranges.
        let ids: Vec<usize> = (0..fleet_size).collect();
        if self.warm_start {
            if fleet_size == 0 {
                return Vec::new();
            }
            self.reuses.fetch_add(fleet_size as u64, Ordering::Relaxed);
            let img = warm();
            ids.par_iter()
                .map(|&id| {
                    let (mut node, var, seed) = fork(&img, id);
                    let r = member(&mut node, &var, id, seed);
                    self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
                    r
                })
                .collect()
        } else {
            ids.par_iter()
                .map(|&id| {
                    let img = warm();
                    let (mut node, var, seed) = fork(&img, id);
                    let r = member(&mut node, &var, id, seed);
                    self.sim_ns.fetch_add(node.now_ns(), Ordering::Relaxed);
                    r
                })
                .collect()
        }
    }
}

/// The converged pre-point state one warm sweep forks from: the warmup
/// node's snapshot plus the config to rebuild an identical node around it.
/// The process-unique `id` keys the per-thread scratch nodes: a scratch is
/// only re-armed with a dirty-plane fork against the image it was last
/// synced with.
struct WarmImage {
    id: u64,
    snap: NodeSnapshot,
    cfg: hsw_node::NodeConfig,
}

/// Process-wide warm-image id allocator (0 is never issued, so a scratch
/// slot can use it as "none").
static IMAGE_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// One reusable scratch node per worker thread, tagged with the warm
    /// image it is currently synced with. Taken *out* of the slot while a
    /// point runs so re-entrant sweeps can never alias it.
    static SCRATCH: std::cell::RefCell<Option<(u64, Node)>> =
        const { std::cell::RefCell::new(None) };
}

fn take_scratch(img_id: u64) -> Option<Node> {
    SCRATCH.with(|slot| {
        let taken = slot.borrow_mut().take();
        taken.and_then(|(id, node)| (id == img_id).then_some(node))
    })
}

fn put_scratch(img_id: u64, node: Node) {
    SCRATCH.with(|slot| *slot.borrow_mut() = Some((img_id, node)));
}

/// The deterministic intra-experiment sweep executor: run `f` over every
/// point on the worker pool and return the results in point order.
///
/// Point `k`'s seed is `mix_seed(base_seed, k)` — the same order-free
/// derivation as [`SessionBuilder::derive_seed`] — so it depends on the
/// sweep geometry only, never on scheduling. Combined with the pool's
/// index-ordered collection this keeps results byte-identical for any
/// pool size (`RAYON_NUM_THREADS`) and any `--jobs` value; only wall
/// clock changes.
pub fn sweep<P, R, F>(base_seed: u64, points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P, u64) -> R + Send + Sync,
{
    points
        .par_iter()
        .enumerate()
        .map(|(k, p)| f(p, mix_seed(base_seed, k as u64)))
        .collect()
}

/// Worker threads in the pool the sweep executor fans points across.
pub fn pool_threads() -> usize {
    rayon::current_num_threads()
}

/// One fidelity check: a paper claim the result either reproduces or not.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Check {
    pub name: String,
    pub passed: bool,
    pub detail: String,
}

/// What one experiment hands back to the runner.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    pub id: &'static str,
    /// Where in the paper this comes from ("Table III", "Section VI-B", …).
    pub anchor: &'static str,
    pub title: &'static str,
    /// The seed the experiment ran with (0 for deterministic experiments).
    pub seed: u64,
    /// The paper-style text rendering (the module's `Display`).
    pub text: String,
    /// Key scalar metrics, in declaration order.
    pub metrics: Vec<(&'static str, f64)>,
    /// Fidelity checks against the paper's claims.
    pub checks: Vec<Check>,
    /// The full result structure, serialized.
    pub artifact: Value,
}

impl ExperimentResult {
    /// Capture an experiment's result structure: text via `Display`,
    /// artifact via `Serialize`.
    pub fn capture<T: Serialize + std::fmt::Display>(
        exp: &dyn SurveyExperiment,
        ctx: &RunCtx,
        result: &T,
    ) -> ExperimentResult {
        ExperimentResult {
            id: exp.id(),
            anchor: exp.anchor(),
            title: exp.title(),
            seed: if exp.seeded() { ctx.seed } else { 0 },
            text: result.to_string(),
            metrics: Vec::new(),
            checks: Vec::new(),
            artifact: result.to_value(),
        }
    }

    pub fn metric(&mut self, name: &'static str, value: f64) -> &mut Self {
        self.metrics.push((name, value));
        self
    }

    pub fn check(&mut self, name: &str, passed: bool, detail: String) -> &mut Self {
        self.checks.push(Check {
            name: name.to_string(),
            passed,
            detail,
        });
        self
    }

    pub fn checks_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// A registry entry: one paper table/figure reproduction.
pub trait SurveyExperiment: Send + Sync {
    /// Stable identifier (the module name).
    fn id(&self) -> &'static str;
    /// Paper anchor ("Table III", "Figure 7", "Section VI-B", …).
    fn anchor(&self) -> &'static str;
    /// One-line description.
    fn title(&self) -> &'static str;
    /// Whether the experiment consumes the per-experiment seed. Purely
    /// analytic experiments return false and always produce identical
    /// output.
    fn seeded(&self) -> bool {
        true
    }
    /// Whether this experiment can run under `--fidelity analytic`: its
    /// sweeps answer from the closed-form surrogate with simulator spot
    /// checks. Experiments opt in; the runner rejects an analytic survey
    /// that selects any experiment still at the default.
    fn supports_surrogate(&self) -> bool {
        false
    }
    fn run(&self, ctx: &RunCtx) -> ExperimentResult;
}

/// SplitMix64 step — the mixer behind [`experiment_seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive the seed for one experiment from the survey root seed: FNV-1a
/// over the id, folded into a SplitMix64-whitened root. Depends on
/// `(root_seed, id)` only — never on scheduling order or thread count.
pub fn experiment_seed(root_seed: u64, id: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in id.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut s = root_seed ^ h;
    splitmix64(&mut s)
}

/// Derive a sub-stream seed inside an experiment (e.g. one per campaign).
pub fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut s = seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    splitmix64(&mut s)
}

/// The Haswell registry: the paper's 16 experiments in paper order, then
/// the fleet-scale follow-ups (Schuchart et al.). Equivalent to
/// [`registry_for`]`(PlatformKind::Haswell)`.
pub fn registry() -> Vec<Box<dyn SurveyExperiment>> {
    vec![
        Box::new(experiments::fig1::Experiment),
        Box::new(experiments::section2c_epb::Experiment),
        Box::new(experiments::table1::Experiment),
        Box::new(experiments::table2::Experiment),
        Box::new(experiments::table3::Experiment),
        Box::new(experiments::fig2::Experiment),
        Box::new(experiments::table4::Experiment),
        Box::new(experiments::table5::Experiment),
        Box::new(experiments::fig3::Experiment),
        Box::new(experiments::fig4::Experiment),
        Box::new(experiments::fig56::Experiment),
        Box::new(experiments::section6b_governor::Experiment),
        Box::new(experiments::fig7::Experiment),
        Box::new(experiments::fig8::Experiment),
        Box::new(experiments::section8::Experiment),
        Box::new(experiments::sku_extrapolation::Experiment),
        Box::new(experiments::fleet_cap_spread::Experiment),
        Box::new(experiments::fleet_straggler::Experiment),
        Box::new(experiments::analytic_accuracy::Experiment),
        Box::new(experiments::fleet_analytic_scale::Experiment),
    ]
}

/// The experiments a platform runs: the paper set on Haswell, the
/// follow-up survey's reproductions (1905.12468) on Skylake-SP.
pub fn registry_for(platform: PlatformKind) -> Vec<Box<dyn SurveyExperiment>> {
    match platform {
        PlatformKind::Haswell => registry(),
        PlatformKind::SkylakeSp => vec![
            Box::new(experiments::skx_license_table::Experiment),
            Box::new(experiments::skx_ufs_mesh::Experiment),
            Box::new(experiments::analytic_accuracy::Experiment),
            Box::new(experiments::fleet_analytic_scale::Experiment),
        ],
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    pub fidelity: Fidelity,
    /// Root seed; per-experiment seeds derive from it and the id.
    pub seed: u64,
    /// Worker threads (clamped to [1, #experiments]).
    pub jobs: usize,
    /// Run only these ids (registry order is kept); `None` = all.
    pub only: Option<Vec<String>>,
    /// Time-advance engine for every experiment session. Both modes are
    /// bit-identical; `Fixed` is the escape hatch for validating `Event`.
    pub engine: EngineMode,
    /// Warm-start snapshot forking for sweep settle phases. Both settings
    /// are bit-identical; `false` is the escape hatch for validating the
    /// snapshot fork path.
    pub warm_start: bool,
    /// Nodes per fleet experiment (`--fleet-size`); `None` uses the
    /// fidelity preset.
    pub fleet_size: Option<usize>,
    /// Which surveyed machine to model; selects the experiment registry.
    pub platform: PlatformKind,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            fidelity: Fidelity::Quick,
            seed: 42,
            jobs: 1,
            only: None,
            engine: EngineMode::default(),
            warm_start: true,
            fleet_size: None,
            platform: PlatformKind::Haswell,
        }
    }
}

/// A completed survey.
#[derive(Debug, Clone)]
pub struct SurveyRun {
    pub fidelity: Fidelity,
    pub seed: u64,
    pub engine: EngineMode,
    pub platform: PlatformKind,
    /// Results in registry order, independent of scheduling.
    pub results: Vec<ExperimentResult>,
    /// Wall-clock seconds per experiment, parallel to `results`. Kept out
    /// of the JSON document so it stays byte-identical across runs.
    pub timings_s: Vec<f64>,
    /// Simulated seconds per experiment, parallel to `results`. Fully
    /// deterministic (a function of fidelity only), so it does go into
    /// the JSON document.
    pub sim_times_s: Vec<f64>,
    /// Sweep points each experiment fanned through the pool, parallel to
    /// `results`. Deterministic, but a harness detail rather than a paper
    /// result — scoreboard only, never in the JSON document.
    pub sweep_points: Vec<u64>,
    /// Sweep points each experiment served from a shared warm-start
    /// snapshot, parallel to `results`. Zero under `--warm-start off`.
    /// Like `sweep_points`: scoreboard only, never in the JSON document.
    pub snapshot_reuses: Vec<u64>,
    /// Sweep points each experiment answered from the closed-form
    /// surrogate, parallel to `results`. Zero outside `--fidelity
    /// analytic`. Scoreboard only, never in the JSON document.
    pub surrogate_hits: Vec<u64>,
    /// Surrogate points each experiment re-ran through the full simulator
    /// as spot checks, parallel to `results`. Scoreboard only.
    pub spot_checks: Vec<u64>,
}

/// Run the survey: fan the selected experiments across `jobs` worker
/// threads. Returns results in registry order. Fails on unknown `only`
/// ids.
pub fn run_survey(cfg: &SurveyConfig) -> Result<SurveyRun, String> {
    let all = registry_for(cfg.platform);
    let selected: Vec<Box<dyn SurveyExperiment>> = match &cfg.only {
        None => all,
        Some(ids) => {
            let known: Vec<&str> = all.iter().map(|e| e.id()).collect();
            if let Some(bad) = ids.iter().find(|id| !known.contains(&id.as_str())) {
                return Err(format!(
                    "unknown experiment id `{bad}` (known: {})",
                    known.join(", ")
                ));
            }
            all.into_iter()
                .filter(|e| ids.iter().any(|id| id == e.id()))
                .collect()
        }
    };
    if selected.is_empty() {
        return Err("no experiments selected".to_string());
    }
    if cfg.fidelity.is_analytic() {
        let refusing: Vec<&str> = selected
            .iter()
            .filter(|e| !e.supports_surrogate())
            .map(|e| e.id())
            .collect();
        if !refusing.is_empty() {
            let capable: Vec<&str> = registry_for(cfg.platform)
                .iter()
                .filter(|e| e.supports_surrogate())
                .map(|e| e.id())
                .collect();
            return Err(format!(
                "--fidelity analytic: no surrogate support in {}; select \
                 surrogate-capable experiments with --only (on this \
                 platform: {})",
                refusing.join(", "),
                capable.join(", ")
            ));
        }
    }

    /// One worker's slot: (result, wall seconds, simulated seconds, points,
    /// snapshot reuses, surrogate hits, spot checks).
    type Slot = (ExperimentResult, f64, f64, u64, u64, u64, u64);

    let jobs = cfg.jobs.clamp(1, selected.len());
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..selected.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= selected.len() {
                    break;
                }
                let exp = &selected[i];
                let ctx = RunCtx::new(
                    cfg.fidelity,
                    experiment_seed(cfg.seed, exp.id()),
                    cfg.engine,
                )
                .with_warm_start(cfg.warm_start)
                .with_fleet_size(cfg.fleet_size)
                .with_platform(cfg.platform);
                // lint:allow(D1): wall time is stderr progress reporting only, never survey.json
                let t0 = Instant::now();
                let result = exp.run(&ctx);
                let wall_s = t0.elapsed().as_secs_f64();
                slots.lock().unwrap()[i] = Some((
                    result,
                    wall_s,
                    ctx.sim_time_s(),
                    ctx.sweep_points(),
                    ctx.snapshot_reuses(),
                    ctx.surrogate_hits(),
                    ctx.spot_checks(),
                ));
            });
        }
    });

    let mut results = Vec::with_capacity(selected.len());
    let mut timings_s = Vec::with_capacity(selected.len());
    let mut sim_times_s = Vec::with_capacity(selected.len());
    let mut sweep_points = Vec::with_capacity(selected.len());
    let mut snapshot_reuses = Vec::with_capacity(selected.len());
    let mut surrogate_hits = Vec::with_capacity(selected.len());
    let mut spot_checks = Vec::with_capacity(selected.len());
    for slot in slots.into_inner().unwrap() {
        let (r, wall, sim, pts, reuses, sur, chk) = slot.expect("worker left a slot unfilled");
        results.push(r);
        timings_s.push(wall);
        sim_times_s.push(sim);
        sweep_points.push(pts);
        snapshot_reuses.push(reuses);
        surrogate_hits.push(sur);
        spot_checks.push(chk);
    }
    Ok(SurveyRun {
        fidelity: cfg.fidelity,
        seed: cfg.seed,
        engine: cfg.engine,
        platform: cfg.platform,
        results,
        timings_s,
        sim_times_s,
        sweep_points,
        snapshot_reuses,
        surrogate_hits,
        spot_checks,
    })
}

impl SurveyRun {
    /// The deterministic JSON document (the content of `survey.json`).
    /// Contains no wall-clock data and no engine tag: identical
    /// `(--fidelity, --seed, --only)` → identical bytes, for any `--jobs`
    /// value and either `--engine` mode. Simulated time per experiment IS
    /// included — it is a pure function of the fidelity.
    pub fn to_json_value(&self) -> Value {
        let experiments: Vec<Value> = self
            .results
            .iter()
            .zip(&self.sim_times_s)
            .map(|(r, sim_s)| {
                Value::Object(vec![
                    ("id".to_string(), Value::Str(r.id.to_string())),
                    ("anchor".to_string(), Value::Str(r.anchor.to_string())),
                    ("title".to_string(), Value::Str(r.title.to_string())),
                    ("seed".to_string(), Value::UInt(r.seed)),
                    ("sim_time_s".to_string(), Value::Float(*sim_s)),
                    (
                        "metrics".to_string(),
                        Value::Object(
                            r.metrics
                                .iter()
                                .map(|(k, v)| (k.to_string(), Value::Float(*v)))
                                .collect(),
                        ),
                    ),
                    ("checks".to_string(), r.checks.to_value()),
                    ("artifact".to_string(), r.artifact.clone()),
                ])
            })
            .collect();
        let total: usize = self.results.iter().map(|r| r.checks.len()).sum();
        let passed: usize = self
            .results
            .iter()
            .map(|r| r.checks.iter().filter(|c| c.passed).count())
            .sum();
        Value::Object(vec![
            (
                "schema".to_string(),
                Value::Str("haswell-survey/v1".to_string()),
            ),
            (
                "paper".to_string(),
                Value::Str(
                    match self.platform {
                        PlatformKind::Haswell => {
                            "An Energy Efficiency Feature Survey of the Intel Haswell Processor"
                        }
                        PlatformKind::SkylakeSp => {
                            "An Energy Efficiency Feature Survey of the \
                             Intel Skylake SP Processor"
                        }
                    }
                    .to_string(),
                ),
            ),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("fidelity".to_string(), self.fidelity.to_value()),
            (
                "summary".to_string(),
                Value::Object(vec![
                    (
                        "experiments".to_string(),
                        Value::UInt(self.results.len() as u64),
                    ),
                    ("checks_total".to_string(), Value::UInt(total as u64)),
                    ("checks_passed".to_string(), Value::UInt(passed as u64)),
                ]),
            ),
            ("experiments".to_string(), Value::Array(experiments)),
        ])
    }

    /// Pretty-printed deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_json_value())
            .expect("survey JSON serialization cannot fail");
        s.push('\n');
        s
    }

    /// Per-experiment check scoreboard as a paper-style [`Table`], with
    /// wall-clock and simulated time plus the sweep points each experiment
    /// fanned through the `pool_threads()`-wide worker pool. Wall time and
    /// pool width live here (and on stderr) only — never in the JSON
    /// document.
    pub fn scoreboard(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Survey scoreboard: paper fidelity checks per experiment \
                 (sweep pool: {} threads)",
                pool_threads()
            ),
            vec![
                "experiment",
                "anchor",
                "checks",
                "status",
                "pts",
                "reuse",
                "sur",
                "chk",
                "wall s",
                "sim s",
            ],
        );
        for ((((((r, wall_s), sim_s), pts), reuse), sur), chk) in self
            .results
            .iter()
            .zip(&self.timings_s)
            .zip(&self.sim_times_s)
            .zip(&self.sweep_points)
            .zip(&self.snapshot_reuses)
            .zip(&self.surrogate_hits)
            .zip(&self.spot_checks)
        {
            let passed = r.checks.iter().filter(|c| c.passed).count();
            t.row(vec![
                r.id.to_string(),
                r.anchor.to_string(),
                format!("{passed}/{}", r.checks.len()),
                crate::report::pass_fail(r.checks_passed()).to_string(),
                pts.to_string(),
                reuse.to_string(),
                sur.to_string(),
                chk.to_string(),
                format!("{wall_s:.2}"),
                format!("{sim_s:.2}"),
            ]);
        }
        t
    }

    /// The human-readable survey report (paper-style text per experiment
    /// plus the check scoreboard).
    pub fn text_report(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!(
                "================================================================\n\
                 {} — {} [{}]\n\
                 ================================================================\n\
                 {}\n",
                r.anchor, r.title, r.id, r.text
            ));
            for c in &r.checks {
                out.push_str(&format!(
                    "  [{}] {}: {}\n",
                    crate::report::pass_fail(c.passed),
                    c.name,
                    c.detail
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("{}\n", self.scoreboard()));
        let total: usize = self.results.iter().map(|r| r.checks.len()).sum();
        let passed: usize = self
            .results
            .iter()
            .map(|r| r.checks.iter().filter(|c| c.passed).count())
            .sum();
        out.push_str(&format!(
            "survey: {} experiments, {passed}/{total} checks passed\n",
            self.results.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_hold_22_unique_ids_across_platforms() {
        let mut ids: Vec<&str> = Vec::new();
        for kind in PlatformKind::ALL {
            ids.extend(registry_for(kind).iter().map(|e| e.id()));
        }
        assert_eq!(
            ids.len(),
            24,
            "20 Haswell + 4 Skylake-SP (the two analytic experiments \
             register on both platforms)"
        );
        assert_eq!(registry().len(), 20, "the paper set plus extensions");
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 22, "duplicate ids: {ids:?}");
    }

    /// The collision the node-id sub-base exists to prevent: in a single
    /// shared namespace, node id `i` and point index `k` seed identically
    /// whenever `i == k` — two different simulations, one RNG stream.
    #[test]
    fn node_stream_fix_closes_the_shared_namespace_collision() {
        let base = experiment_seed(42, "fleet_cap_spread");
        for i in 0..64u64 {
            // The trap (old scheme): guaranteed collision at i == k.
            assert_eq!(mix_seed(base, i), mix_seed(base, i));
            // The fix: the node stream never meets the point stream …
            for k in 0..64u64 {
                assert_ne!(
                    node_seed(base, i),
                    mix_seed(base, k),
                    "node {i} collides with point {k}"
                );
            }
            // … nor the warmup stream.
            assert_ne!(node_seed(base, i), warmup_seed(base));
        }
    }

    /// All three streams of one sweep base are pairwise distinct over dense
    /// low index ranges, for several bases.
    #[test]
    fn node_stream_fix_keeps_streams_pairwise_distinct() {
        for root in [0u64, 1, 42, 0xDEAD_BEEF] {
            let base = experiment_seed(root, "fleet_straggler");
            let mut seen = std::collections::BTreeSet::new();
            assert!(seen.insert(warmup_seed(base)));
            for idx in 0..512u64 {
                assert!(seen.insert(mix_seed(base, idx)), "point {idx} collided");
                assert!(seen.insert(node_seed(base, idx)), "node {idx} collided");
            }
        }
    }

    #[test]
    fn experiment_seeds_depend_on_root_and_id() {
        assert_eq!(experiment_seed(1, "fig3"), experiment_seed(1, "fig3"));
        assert_ne!(experiment_seed(1, "fig3"), experiment_seed(2, "fig3"));
        assert_ne!(experiment_seed(1, "fig3"), experiment_seed(1, "fig56"));
    }

    #[test]
    fn unknown_only_id_is_rejected() {
        let cfg = SurveyConfig {
            only: Some(vec!["tableX".to_string()]),
            ..SurveyConfig::default()
        };
        let err = run_survey(&cfg).unwrap_err();
        assert!(err.contains("tableX"), "{err}");
    }
}
