//! Table III — uncore frequencies in the single-threaded, no-memory-stall
//! scenario (paper Section V-A).
//!
//! Methodology per the paper: a `while(1)` loop on one core of socket 0;
//! the uncore frequency of *both* sockets measured via the LIKWID
//! `UNCORE_CLOCK:UBOXFIX` counter for 10 s, for every core-frequency
//! setting, plus the EPB=performance variants marked (*) in the paper.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_node::{CpuId, EngineMode, Platform, Resolution};
use hsw_tools::PerfCtr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// One measured column of Table III.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table3Point {
    pub setting_mhz: Option<u32>, // None = Turbo
    pub active_uncore_ghz: f64,
    pub passive_uncore_ghz: f64,
    /// The (*) variants: EPB set to performance.
    pub active_uncore_perf_epb_ghz: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3 {
    pub points: Vec<Table3Point>,
    pub table: Table,
}

impl std::fmt::Display for Table3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Measure the uncore frequency of both sockets under one setting/EPB.
fn measure(
    ctx: &RunCtx,
    setting: FreqSetting,
    epb: EpbClass,
    measure_s: f64,
    seed: u64,
) -> (f64, f64) {
    let mut node = ctx
        .session()
        .seed(seed)
        .resolution(Resolution::Custom(100))
        .build();
    // One spinning thread on socket 0, the rest of the system idle.
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    node.set_epb_all(epb);
    node.set_setting_all(setting);
    node.advance_s(0.1);

    let pc0 = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let pc1 = PerfCtr::new(&node, CpuId::new(1, 0, 0));
    let a0 = pc0.sample(&node);
    let b0 = pc1.sample(&node);
    node.advance_s(measure_s);
    let a1 = pc0.sample(&node);
    let b1 = pc1.sample(&node);
    (
        pc0.derive(&a0, &a1).uncore_ghz,
        pc1.derive(&b0, &b1).uncore_ghz,
    )
}

pub fn run(fidelity: Fidelity) -> Table3 {
    run_impl(&RunCtx::new(fidelity, 0, EngineMode::default()), None)
}

/// Like [`run`] but with all measurement seeds derived from `seed` (the
/// survey runner's determinism contract). `run` keeps the legacy literal
/// seeds so standalone outputs stay stable.
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Table3 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_impl(&ctx, Some(seed))
}

fn run_impl(ctx: &RunCtx, seed: Option<u64>) -> Table3 {
    let sku = Platform::paper().spec.sku;
    let settings = sku.freq.all_settings();
    let secs = ctx.fidelity.table3_measure_s();

    let points: Vec<Table3Point> = settings
        .par_iter()
        .enumerate()
        .map(|(i, s)| {
            let (bal_seed, perf_seed) = match seed {
                None => (100 + i as u64, 200 + i as u64),
                Some(root) => (
                    crate::survey::mix_seed(root, i as u64),
                    crate::survey::mix_seed(root, 1000 + i as u64),
                ),
            };
            let (active, passive) = measure(ctx, *s, EpbClass::Balanced, secs, bal_seed);
            let (active_perf, _) = measure(ctx, *s, EpbClass::Performance, secs, perf_seed);
            Table3Point {
                setting_mhz: match s {
                    FreqSetting::Turbo => None,
                    FreqSetting::Fixed(p) => Some(p.mhz()),
                },
                active_uncore_ghz: active,
                passive_uncore_ghz: passive,
                active_uncore_perf_epb_ghz: active_perf,
            }
        })
        .collect();

    let mut t = Table::new(
        "Table III: uncore frequencies, single-threaded no-memory-stalls scenario (thread on processor 0)",
        vec!["Core frequency setting", "Active uncore [GHz]", "Passive uncore [GHz]", "Active w/ EPB=perf [GHz]"],
    );
    for p in &points {
        t.row(vec![
            p.setting_mhz
                .map(|m| format!("{:.1}", m as f64 / 1000.0))
                .unwrap_or_else(|| "Turbo".to_string()),
            format!("{:.2}", p.active_uncore_ghz),
            format!("{:.2}", p.passive_uncore_ghz),
            format!("{:.2}", p.active_uncore_perf_epb_ghz),
        ]);
    }
    Table3 { points, table: t }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table3"
    }
    fn anchor(&self) -> &'static str {
        "Table III"
    }
    fn title(&self) -> &'static str {
        "Uncore frequency vs. core frequency setting"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx, Some(ctx.seed));
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let worst_gap = r
            .points
            .iter()
            .map(|p| p.passive_uncore_ghz - p.active_uncore_ghz)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_perf = r
            .points
            .iter()
            .map(|p| p.active_uncore_perf_epb_ghz)
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(turbo) = r.points.iter().find(|p| p.setting_mhz.is_none()) {
            out.metric("turbo_active_uncore_ghz", turbo.active_uncore_ghz);
        }
        out.metric("max_perf_epb_uncore_ghz", max_perf);
        out.check(
            "active socket clocks uncore at or above the passive one",
            worst_gap < 0.05,
            format!("worst passive-minus-active gap {worst_gap:.3} GHz"),
        );
        out.check(
            "performance EPB pins the uncore near 3.0 GHz",
            max_perf > 2.8,
            format!("max active uncore with EPB=performance {max_perf:.2} GHz"),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;

    fn cached() -> &'static Table3 {
        static CACHE: std::sync::OnceLock<Table3> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn reproduces_table3_schedule() {
        let t3 = cached();
        assert_eq!(t3.points.len(), 15);
        for (i, p) in t3.points.iter().enumerate() {
            let expect_active = calib::UFS_ACTIVE_SCHEDULE_MHZ[i] as f64 / 1000.0;
            let expect_passive = calib::UFS_PASSIVE_SCHEDULE_MHZ[i] as f64 / 1000.0;
            assert!(
                (p.active_uncore_ghz - expect_active).abs() < 0.08,
                "row {i}: active {:.2} vs paper {expect_active:.2}",
                p.active_uncore_ghz
            );
            assert!(
                (p.passive_uncore_ghz - expect_passive).abs() < 0.08,
                "row {i}: passive {:.2} vs paper {expect_passive:.2}",
                p.passive_uncore_ghz
            );
            // Paper (*): with EPB=performance the uncore is pinned at 3.0.
            assert!(
                (p.active_uncore_perf_epb_ghz - 3.0).abs() < 0.08,
                "row {i}: perf-EPB uncore {:.2}",
                p.active_uncore_perf_epb_ghz
            );
        }
    }

    #[test]
    fn turbo_row_reaches_three_ghz_and_floor_is_1_2() {
        let t3 = cached();
        assert!((t3.points[0].active_uncore_ghz - 3.0).abs() < 0.08);
        let last = t3.points.last().unwrap();
        assert!((last.active_uncore_ghz - 1.2).abs() < 0.08);
    }
}
