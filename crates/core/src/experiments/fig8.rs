//! Figure 8 — L3 and DRAM read bandwidth depending on concurrency and
//! frequency on Haswell-EP (paper Section VII).
//!
//! A full (threads × frequency) sweep: concurrency 1–24 (filling cores
//! first, then Hyper-Threading siblings) × frequency settings 1.2 GHz …
//! 2.5 GHz + Turbo. Reproduced claims: DRAM saturates at 8 cores and is
//! core-frequency independent from 10 cores; L3 scales with both factors,
//! slightly superlinearly with cores at low concurrency; extra threads per
//! core pay off only at low concurrency.

use hsw_hwspec::SkuSpec;
use hsw_memhier::bandwidth::{
    benchmark_uncore_ghz, dram_read_bandwidth_gbs, l3_read_bandwidth_gbs,
};
use serde::{Deserialize, Serialize};

use crate::Table;

/// One heatmap cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig8Cell {
    pub threads: usize,
    pub cores: usize,
    pub threads_per_core: usize,
    pub freq_ghz: f64,
    pub l3_gbs: f64,
    pub dram_gbs: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    pub cells: Vec<Fig8Cell>,
    pub freqs_ghz: Vec<f64>,
    pub thread_counts: Vec<usize>,
}

impl Fig8 {
    pub fn at(&self, threads: usize, freq_ghz: f64) -> Option<&Fig8Cell> {
        self.cells
            .iter()
            .find(|c| c.threads == threads && (c.freq_ghz - freq_ghz).abs() < 1e-9)
    }
}

impl std::fmt::Display for Fig8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (title, pick) in [
            ("Figure 8 (left): L3 read bandwidth [GB/s]", true),
            ("Figure 8 (right): DRAM read bandwidth [GB/s]", false),
        ] {
            let mut headers = vec!["GHz \\ threads".to_string()];
            headers.extend(self.thread_counts.iter().map(|t| t.to_string()));
            let mut table = Table::new(title, headers);
            for freq in &self.freqs_ghz {
                let mut row = vec![format!("{freq:.1}")];
                for t in &self.thread_counts {
                    let cell = self.at(*t, *freq).expect("cell");
                    let v = if pick { cell.l3_gbs } else { cell.dram_gbs };
                    row.push(format!("{v:.0}"));
                }
                table.row(row);
            }
            writeln!(f, "{table}")?;
        }
        Ok(())
    }
}

/// Map a thread count onto (cores used, threads per core): cores first,
/// then SMT siblings (the scheduling the paper's benchmark uses).
pub fn placement(threads: usize, cores: usize) -> (usize, usize) {
    if threads <= cores {
        (threads, 1)
    } else {
        (cores, 2)
    }
}

/// The sweep axes: thread counts 1–24 and the selectable p-states plus the
/// all-core turbo bin under the bandwidth benchmark.
fn grid(sku: &SkuSpec) -> (Vec<usize>, Vec<f64>) {
    let thread_counts: Vec<usize> = (1..=sku.cores * sku.threads_per_core).collect();
    let mut freqs_ghz: Vec<f64> = sku
        .freq
        .selectable_pstates()
        .iter()
        .rev()
        .map(|p| p.ghz())
        .collect();
    freqs_ghz.push(sku.freq.turbo_mhz(sku.cores) as f64 / 1000.0);
    (thread_counts, freqs_ghz)
}

/// One frequency row of the heatmap: every thread count at `freq`.
fn row(sku: &SkuSpec, freq: f64, thread_counts: &[usize]) -> Vec<Fig8Cell> {
    let f_unc = benchmark_uncore_ghz(sku, freq);
    thread_counts
        .iter()
        .map(|&threads| {
            let (cores, tpc) = placement(threads, sku.cores);
            // Above one thread per core the SMT gain phases in with the
            // number of doubly-occupied cores (threads 13–24 add siblings
            // one core at a time).
            let frac = if threads > cores {
                (threads - cores) as f64 / cores as f64
            } else {
                0.0
            };
            let mix = |single: f64, smt: f64| single + frac * (smt - single);
            let l3 = mix(
                l3_read_bandwidth_gbs(sku, cores, 1, freq, f_unc),
                l3_read_bandwidth_gbs(sku, cores, 2, freq, f_unc),
            );
            let dram = mix(
                dram_read_bandwidth_gbs(sku, cores, 1, freq, f_unc),
                dram_read_bandwidth_gbs(sku, cores, 2, freq, f_unc),
            );
            Fig8Cell {
                threads,
                cores,
                threads_per_core: tpc,
                freq_ghz: freq,
                l3_gbs: l3,
                dram_gbs: dram,
            }
        })
        .collect()
}

pub fn run() -> Fig8 {
    let sku = SkuSpec::xeon_e5_2680_v3();
    let (thread_counts, freqs_ghz) = grid(&sku);
    let cells = freqs_ghz
        .iter()
        .flat_map(|&freq| row(&sku, freq, &thread_counts))
        .collect();
    Fig8 {
        cells,
        freqs_ghz,
        thread_counts,
    }
}

/// Like [`run`] but fanning one sweep point per frequency row through the
/// warm-start sweep executor, sharing the resolved SKU and thread-count
/// axis across rows. The model is analytic, so the derived point seeds are
/// not consumed and the result is identical to the serial [`run`] in
/// either warm-start mode.
fn run_ctx(ctx: &crate::survey::RunCtx) -> Fig8 {
    let sku = SkuSpec::xeon_e5_2680_v3();
    let (thread_counts, freqs_ghz) = grid(&sku);
    let rows = ctx.sweep_warm_shared(
        &freqs_ghz,
        || {
            (
                SkuSpec::xeon_e5_2680_v3(),
                grid(&SkuSpec::xeon_e5_2680_v3()).0,
            )
        },
        |(sku, threads), &freq, _seed| row(&sku, freq, &threads),
    );
    Fig8 {
        cells: rows.into_iter().flatten().collect(),
        freqs_ghz,
        thread_counts,
    }
}

/// Registry adapter. The sweep is analytic, so the survey seed is not
/// consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig8"
    }
    fn anchor(&self) -> &'static str {
        "Figure 8"
    }
    fn title(&self) -> &'static str {
        "L3/DRAM bandwidth vs. concurrency and frequency"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let dram12 = r.at(12, 2.5).map(|c| c.dram_gbs).unwrap_or(f64::NAN);
        let dram24 = r.at(24, 2.5).map(|c| c.dram_gbs).unwrap_or(f64::NAN);
        let l3_12 = r.at(12, 2.5).map(|c| c.l3_gbs).unwrap_or(f64::NAN);
        let l3_6 = r.at(6, 2.5).map(|c| c.l3_gbs).unwrap_or(f64::NAN);
        out.metric("dram_gbs_12t_2p5ghz", dram12);
        out.metric("l3_gbs_12t_2p5ghz", l3_12);
        out.check(
            "DRAM bandwidth saturates before full SMT concurrency",
            (dram24 / dram12 - 1.0).abs() < 0.05,
            format!("12t {dram12:.0} GB/s vs 24t {dram24:.0} GB/s"),
        );
        out.check(
            "L3 bandwidth scales with active cores",
            l3_12 > 1.6 * l3_6,
            format!("6t {l3_6:.0} GB/s vs 12t {l3_12:.0} GB/s"),
        );
        out.check(
            "the full threads x frequency grid was swept",
            r.cells.len() == r.freqs_ghz.len() * r.thread_counts.len(),
            format!("{} cells", r.cells.len()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig8 {
        static CACHE: std::sync::OnceLock<Fig8> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn grid_is_complete() {
        let f = fig();
        assert_eq!(f.freqs_ghz.len(), 15); // 1.2..2.5 + turbo
        assert_eq!(f.thread_counts.len(), 24);
        assert_eq!(f.cells.len(), 15 * 24);
    }

    #[test]
    fn dram_saturates_at_eight_cores() {
        let f = fig();
        let bw8 = f.at(8, 2.5).unwrap().dram_gbs;
        let bw12 = f.at(12, 2.5).unwrap().dram_gbs;
        let bw4 = f.at(4, 2.5).unwrap().dram_gbs;
        assert!((bw8 - bw12).abs() / bw12 < 0.02, "8c {bw8} vs 12c {bw12}");
        assert!(bw4 < 0.95 * bw8);
    }

    #[test]
    fn dram_is_frequency_independent_at_ten_plus_cores() {
        // "becomes independent of the core frequency if ten cores are
        // active".
        let f = fig();
        for threads in [10usize, 12] {
            let lo = f.at(threads, 1.2).unwrap().dram_gbs;
            let hi = f.at(threads, 2.5).unwrap().dram_gbs;
            assert!(
                (lo / hi - 1.0).abs() < 0.02,
                "{threads} threads: {lo} vs {hi}"
            );
        }
        // But a single core does show some dependence.
        let lo1 = f.at(1, 1.2).unwrap().dram_gbs;
        let hi1 = f.at(1, 2.5).unwrap().dram_gbs;
        assert!(hi1 > lo1 * 1.02);
    }

    #[test]
    fn l3_scales_with_both_cores_and_frequency() {
        let f = fig();
        assert!(f.at(12, 2.5).unwrap().l3_gbs > 1.8 * f.at(6, 2.5).unwrap().l3_gbs * 0.9);
        assert!(f.at(12, 2.5).unwrap().l3_gbs > 1.4 * f.at(12, 1.2).unwrap().l3_gbs);
    }

    #[test]
    fn l3_slightly_superlinear_at_low_concurrency() {
        let f = fig();
        let b1 = f.at(1, 2.5).unwrap().l3_gbs;
        let b2 = f.at(2, 2.5).unwrap().l3_gbs;
        assert!(b2 > 2.0 * b1, "{b2} vs 2×{b1}");
    }

    #[test]
    fn hyperthreading_pays_off_only_at_low_concurrency() {
        // Compare n threads on n cores vs. 2n threads on n cores. At low
        // concurrency the second thread helps DRAM bandwidth; at saturation
        // it cannot.
        let f = fig();
        // 13 threads → 12 cores+HT on one; compare 24 threads vs 12.
        let full_ht = f.at(24, 2.5).unwrap().dram_gbs;
        let full = f.at(12, 2.5).unwrap().dram_gbs;
        assert!((full_ht / full - 1.0).abs() < 0.02, "{full_ht} vs {full}");
        let low_ht = f.at(13, 2.5).unwrap(); // 12 cores, HT engaged
        assert_eq!(low_ht.threads_per_core, 2);
    }

    #[test]
    fn turbo_row_is_the_fastest_l3_row() {
        let f = fig();
        let turbo = *f.freqs_ghz.last().unwrap();
        assert!(turbo > 2.5);
        assert!(f.at(12, turbo).unwrap().l3_gbs >= f.at(12, 2.5).unwrap().l3_gbs);
    }
}
