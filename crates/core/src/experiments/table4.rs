//! Table IV — FIRESTARTER performance under reduced frequency settings
//! (paper Section V-B).
//!
//! Methodology per the paper: FIRESTARTER with turbo and Hyper-Threading
//! (2 threads/core) on both sockets; core/uncore cycles, instructions and
//! RAPL sampled once per second via the LIKWID-style tool on one core per
//! processor; 50-sample medians of core frequency, uncore frequency and
//! instructions per second.

use hsw_analytic::{AnalyticModel, OperatingPoint};
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{CpuId, EngineMode, Resolution};
use hsw_tools::perfctr::{median_of, PerfCtr};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::{rel_err, RunCtx};
use crate::Fidelity;

/// Measured medians for one socket under one setting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SocketMedians {
    pub core_ghz: f64,
    pub uncore_ghz: f64,
    pub gips: f64,
    pub pkg_w: f64,
}

/// One column of Table IV.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table4Point {
    pub setting_mhz: Option<u32>, // None = Turbo
    pub socket0: SocketMedians,
    pub socket1: SocketMedians,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    pub points: Vec<Table4Point>,
    pub table: Table,
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

fn measure(
    ctx: &RunCtx,
    node: &mut hsw_node::Node,
    setting: FreqSetting,
) -> (SocketMedians, SocketMedians) {
    node.set_setting_all(setting);
    node.advance_s(0.5); // re-settle under the point's setting

    let pcs = [
        PerfCtr::new(node, CpuId::new(0, 0, 0)),
        PerfCtr::new(node, CpuId::new(1, 0, 0)),
    ];
    let n = ctx.fidelity.table4_samples();
    let dt = ctx.fidelity.table4_interval_s();
    let mut prev = [pcs[0].sample(node), pcs[1].sample(node)];
    let mut derived = [Vec::with_capacity(n), Vec::with_capacity(n)];
    for _ in 0..n {
        node.advance_s(dt);
        for s in 0..2 {
            let cur = pcs[s].sample(node);
            derived[s].push(pcs[s].derive(&prev[s], &cur));
            prev[s] = cur;
        }
    }
    let med = |v: &Vec<hsw_tools::Derived>| SocketMedians {
        core_ghz: median_of(v, |d| d.core_ghz),
        uncore_ghz: median_of(v, |d| d.uncore_ghz),
        gips: median_of(v, |d| d.gips),
        pkg_w: median_of(v, |d| d.pkg_w),
    };
    (med(&derived[0]), med(&derived[1]))
}

/// The settings swept by Table IV: Turbo, then 2.5 down to 2.1 GHz.
pub fn table4_settings() -> Vec<FreqSetting> {
    let mut v = vec![FreqSetting::Turbo];
    for mhz in [2500u32, 2400, 2300, 2200, 2100] {
        v.push(FreqSetting::from_mhz(mhz));
    }
    v
}

pub fn run(fidelity: Fidelity) -> Table4 {
    run_seeded(fidelity, 0)
}

/// Like [`run`] but with measurement seeds derived from `seed` via the
/// sweep executor (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Table4 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

/// The shared FIRESTARTER bring-up at turbo: workload assignment plus the
/// cold-boot thermal/RAPL climb, amortized across every column.
fn warmup(builder: hsw_node::SessionBuilder) -> hsw_node::Session {
    let mut session = builder.resolution(Resolution::Coarse).build();
    let fs = WorkloadProfile::firestarter();
    for s in 0..2 {
        session.run_on_socket(s, &fs, 12, 2); // HT: 2 threads per core
    }
    session.set_turbo(true);
    session.advance_s(0.5); // shared settle at turbo
    session
}

/// One column through the full simulator: re-settle the forked node under
/// the column's setting and take the sample medians.
fn point_of(ctx: &RunCtx, node: &mut hsw_node::Node, s: &FreqSetting) -> Table4Point {
    let (s0, s1) = measure(ctx, node, *s);
    Table4Point {
        setting_mhz: match s {
            FreqSetting::Turbo => None,
            FreqSetting::Fixed(p) => Some(p.mhz()),
        },
        socket0: s0,
        socket1: s1,
    }
}

fn run_ctx(ctx: &RunCtx) -> Table4 {
    let settings = table4_settings();
    // Warm-start split: the bring-up is shared by every column; each point
    // forks the converged node and only re-settles under its setting.
    let points: Vec<Table4Point> =
        ctx.sweep_warm(&settings, warmup, |node, s, _seed| point_of(ctx, node, s));
    build_table4(points)
}

fn build_table4(points: Vec<Table4Point>) -> Table4 {
    let mut t = Table::new(
        "Table IV: FIRESTARTER with different frequency settings (HT on, medians of LIKWID samples)",
        vec![
            "Core frequency setting",
            "Core P0 [GHz]",
            "Core P1 [GHz]",
            "Uncore P0 [GHz]",
            "Uncore P1 [GHz]",
            "GIPS P0",
            "GIPS P1",
        ],
    );
    for p in &points {
        t.row(vec![
            p.setting_mhz
                .map(|m| format!("{:.1}", m as f64 / 1000.0))
                .unwrap_or_else(|| "Turbo".to_string()),
            format!("{:.2}", p.socket0.core_ghz),
            format!("{:.2}", p.socket1.core_ghz),
            format!("{:.2}", p.socket0.uncore_ghz),
            format!("{:.2}", p.socket1.uncore_ghz),
            format!("{:.2}", p.socket0.gips),
            format!("{:.2}", p.socket1.gips),
        ]);
    }
    Table4 { points, table: t }
}

/// One spot-checked column under `--fidelity analytic`: the simulator's
/// answer to the same point, plus the divergence from the surrogate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct T4SpotCheck {
    /// Column index into [`Table4::points`].
    pub index: usize,
    pub full: Table4Point,
    /// Worst relative error across both sockets and all four metrics.
    pub worst_rel_err: f64,
}

/// Table IV under `--fidelity analytic`: every column answered by the
/// closed form, with the deterministic spot-check sample's full-simulator
/// answers attached.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Analytic {
    pub table4: Table4,
    pub spot_checks: Vec<T4SpotCheck>,
}

impl Table4Analytic {
    /// Worst surrogate-vs-simulator divergence across all spot checks.
    pub fn spot_worst(&self) -> f64 {
        self.spot_checks
            .iter()
            .map(|s| s.worst_rel_err)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for Table4Analytic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table4.table)
    }
}

/// Surrogate-vs-simulator divergence gate on Table IV spot checks. The
/// turbo column is RAPL-capped — the regime where analytic models are
/// weakest (arXiv:1803.01618) — so this sits above the settled-point gate
/// of the accuracy map.
pub(crate) const T4_SPOT_REL_ERR_GATE: f64 = 0.10;

/// Closed-form answer to one Table IV column: FIRESTARTER on all cores
/// with Hyper-Threading under the column's setting.
fn surrogate_point(
    model: &AnalyticModel,
    fs: &WorkloadProfile,
    setting: FreqSetting,
) -> Table4Point {
    let pred = model.predict(&OperatingPoint {
        profile: fs,
        setting,
        epb: hsw_hwspec::EpbClass::Balanced,
        turbo_enabled: true,
        active_cores: 12,
        smt: true,
    });
    let med = |s: &hsw_analytic::SocketPrediction| SocketMedians {
        core_ghz: s.core_ghz,
        uncore_ghz: s.uncore_ghz,
        gips: s.gips,
        pkg_w: s.pkg_w,
    };
    Table4Point {
        setting_mhz: match setting {
            FreqSetting::Turbo => None,
            FreqSetting::Fixed(p) => Some(p.mhz()),
        },
        socket0: med(&pred.sockets[0]),
        socket1: med(&pred.sockets[1]),
    }
}

fn point_rel_err(sur: &Table4Point, full: &Table4Point) -> f64 {
    let socket = |a: &SocketMedians, b: &SocketMedians| {
        [
            rel_err(a.core_ghz, b.core_ghz),
            rel_err(a.uncore_ghz, b.uncore_ghz),
            rel_err(a.gips, b.gips),
            rel_err(a.pkg_w, b.pkg_w),
        ]
        .into_iter()
        .fold(0.0, f64::max)
    };
    socket(&sur.socket0, &full.socket0).max(socket(&sur.socket1, &full.socket1))
}

pub(crate) fn run_ctx_analytic(ctx: &RunCtx) -> Table4Analytic {
    let settings = table4_settings();
    let platform = ctx.platform();
    let model = AnalyticModel::from_node_spec(&platform.spec, platform.eet_enabled);
    let fs = WorkloadProfile::firestarter();
    let answers = ctx.sweep_surrogate(
        &settings,
        warmup,
        |node, s, _seed| point_of(ctx, node, s),
        |s, _seed| surrogate_point(&model, &fs, *s),
    );
    let points: Vec<Table4Point> = answers.iter().map(|a| a.value).collect();
    let spot_checks = answers
        .iter()
        .enumerate()
        .filter_map(|(index, a)| {
            a.checked.map(|full| T4SpotCheck {
                index,
                full,
                worst_rel_err: point_rel_err(&a.value, &full),
            })
        })
        .collect();
    Table4Analytic {
        table4: build_table4(points),
        spot_checks,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table4"
    }
    fn anchor(&self) -> &'static str {
        "Table IV"
    }
    fn title(&self) -> &'static str {
        "FIRESTARTER under reduced frequency settings"
    }
    fn supports_surrogate(&self) -> bool {
        true
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        if ctx.fidelity.is_analytic() {
            let r = run_ctx_analytic(ctx);
            let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
            push_table4_checks(&mut out, &r.table4);
            let worst = r.spot_worst();
            out.metric("spot_worst_rel_err", worst);
            out.check(
                "spot-checked columns agree with the full simulator",
                worst < T4_SPOT_REL_ERR_GATE,
                format!(
                    "worst divergence {:.2}% over {} checks (gate {:.0}%)",
                    worst * 100.0,
                    r.spot_checks.len(),
                    T4_SPOT_REL_ERR_GATE * 100.0
                ),
            );
            return out;
        }
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        push_table4_checks(&mut out, &r);
        out
    }
}

/// Table IV's physics checks, shared by the simulator and surrogate
/// answer paths.
fn push_table4_checks(out: &mut crate::survey::ExperimentResult, r: &Table4) {
    let turbo = r.points.iter().find(|p| p.setting_mhz.is_none());
    if let Some(t) = turbo {
        out.metric("turbo_core_ghz_socket0", t.socket0.core_ghz);
        out.metric("turbo_pkg_w_socket0", t.socket0.pkg_w);
        out.check(
            "Turbo equilibrium is TDP-limited near 2.2-2.4 GHz",
            (2.1..=2.5).contains(&t.socket0.core_ghz),
            format!("socket 0 median {:.2} GHz", t.socket0.core_ghz),
        );
    }
    let worst_asym = r
        .points
        .iter()
        .map(|p| (p.socket0.core_ghz - p.socket1.core_ghz).abs())
        .fold(0.0f64, f64::max);
    out.check(
        "both sockets behave symmetrically",
        worst_asym < 0.15,
        format!("worst core-clock asymmetry {worst_asym:.3} GHz"),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> &'static Table4 {
        static CACHE: std::sync::OnceLock<Table4> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn turbo_column_matches_paper_band() {
        // Paper: core 2.30/2.32, uncore 2.33/2.35, GIPS 3.55/3.58.
        let p = &t4().points[0];
        for s in [p.socket0, p.socket1] {
            assert!((2.2..=2.4).contains(&s.core_ghz), "core {:.3}", s.core_ghz);
            assert!(
                (2.25..=2.5).contains(&s.uncore_ghz),
                "uncore {:.3}",
                s.uncore_ghz
            );
            assert!((3.45..=3.7).contains(&s.gips), "gips {:.3}", s.gips);
        }
    }

    #[test]
    fn headroom_flows_to_uncore_at_2_2_ghz() {
        let t = t4();
        let p22 = t
            .points
            .iter()
            .find(|p| p.setting_mhz == Some(2200))
            .unwrap();
        assert!(
            (p22.socket0.core_ghz - 2.2).abs() < 0.06,
            "{:.3}",
            p22.socket0.core_ghz
        );
        assert!(
            p22.socket0.uncore_ghz > 2.55,
            "{:.3}",
            p22.socket0.uncore_ghz
        );
    }

    #[test]
    fn at_2_1_ghz_nothing_throttles() {
        let t = t4();
        let p21 = t
            .points
            .iter()
            .find(|p| p.setting_mhz == Some(2100))
            .unwrap();
        assert!((p21.socket0.core_ghz - 2.1).abs() < 0.04);
        assert!((p21.socket0.uncore_ghz - 3.0).abs() < 0.06);
        // Socket 1 (the efficient part) is clearly below TDP; socket 0 sits
        // at the boundary, so grant it the RAPL median's noise band.
        assert!(p21.socket1.pkg_w < 119.5, "{:.1} W", p21.socket1.pkg_w);
        assert!(p21.socket0.pkg_w < 120.5, "{:.1} W", p21.socket0.pkg_w);
    }

    #[test]
    fn gips_inversion_is_reproduced() {
        // Lowering the setting to 2.2–2.3 GHz beats Turbo in IPS.
        let t = t4();
        let turbo = t.points[0].socket1.gips;
        let best = t
            .points
            .iter()
            .filter(|p| matches!(p.setting_mhz, Some(2200) | Some(2300)))
            .map(|p| p.socket1.gips)
            .fold(0.0, f64::max);
        assert!(best > turbo, "reduced {best:.3} vs turbo {turbo:.3}");
    }

    #[test]
    fn socket0_is_slower_than_socket1() {
        // Paper Section III: socket 0 is less efficient.
        let t = t4();
        let p = &t.points[0];
        assert!(p.socket0.core_ghz <= p.socket1.core_ghz + 0.01);
        assert!(p.socket0.gips <= p.socket1.gips + 0.02);
    }

    #[test]
    fn analytic_spot_checks_are_bit_identical_to_quick_columns() {
        // The surrogate tier's determinism contract: a spot-checked column
        // re-runs under its original point seed and the index-independent
        // warmup seed, so it is byte-identical to the same column of a
        // `--fidelity quick` run at the same root seed.
        let seed = 0x0054_3441_4E41_u64;
        let a = run_ctx_analytic(&RunCtx::new(
            Fidelity::Analytic,
            seed,
            EngineMode::default(),
        ));
        assert!(!a.spot_checks.is_empty());
        let q = run_seeded(Fidelity::Quick, seed);
        for s in &a.spot_checks {
            let full = q.points[s.index];
            assert_eq!(s.full.setting_mhz, full.setting_mhz);
            for (got, want) in [
                (s.full.socket0, full.socket0),
                (s.full.socket1, full.socket1),
            ] {
                assert_eq!(got.core_ghz.to_bits(), want.core_ghz.to_bits());
                assert_eq!(got.uncore_ghz.to_bits(), want.uncore_ghz.to_bits());
                assert_eq!(got.gips.to_bits(), want.gips.to_bits());
                assert_eq!(got.pkg_w.to_bits(), want.pkg_w.to_bits());
            }
            assert!(
                s.worst_rel_err < T4_SPOT_REL_ERR_GATE,
                "{}",
                s.worst_rel_err
            );
        }
    }

    #[test]
    fn tdp_limit_holds_at_or_above_2_2() {
        let t = t4();
        for p in t.points.iter().filter(|p| p.setting_mhz != Some(2100)) {
            assert!(
                (p.socket0.pkg_w - 120.0).abs() < 4.0,
                "setting {:?}: {:.1} W",
                p.setting_mhz,
                p.socket0.pkg_w
            );
        }
    }
}
