//! Table IV — FIRESTARTER performance under reduced frequency settings
//! (paper Section V-B).
//!
//! Methodology per the paper: FIRESTARTER with turbo and Hyper-Threading
//! (2 threads/core) on both sockets; core/uncore cycles, instructions and
//! RAPL sampled once per second via the LIKWID-style tool on one core per
//! processor; 50-sample medians of core frequency, uncore frequency and
//! instructions per second.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{CpuId, EngineMode, Resolution};
use hsw_tools::perfctr::{median_of, PerfCtr};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// Measured medians for one socket under one setting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SocketMedians {
    pub core_ghz: f64,
    pub uncore_ghz: f64,
    pub gips: f64,
    pub pkg_w: f64,
}

/// One column of Table IV.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table4Point {
    pub setting_mhz: Option<u32>, // None = Turbo
    pub socket0: SocketMedians,
    pub socket1: SocketMedians,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4 {
    pub points: Vec<Table4Point>,
    pub table: Table,
}

impl std::fmt::Display for Table4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

fn measure(
    ctx: &RunCtx,
    node: &mut hsw_node::Node,
    setting: FreqSetting,
) -> (SocketMedians, SocketMedians) {
    node.set_setting_all(setting);
    node.advance_s(0.5); // re-settle under the point's setting

    let pcs = [
        PerfCtr::new(node, CpuId::new(0, 0, 0)),
        PerfCtr::new(node, CpuId::new(1, 0, 0)),
    ];
    let n = ctx.fidelity.table4_samples();
    let dt = ctx.fidelity.table4_interval_s();
    let mut prev = [pcs[0].sample(node), pcs[1].sample(node)];
    let mut derived = [Vec::with_capacity(n), Vec::with_capacity(n)];
    for _ in 0..n {
        node.advance_s(dt);
        for s in 0..2 {
            let cur = pcs[s].sample(node);
            derived[s].push(pcs[s].derive(&prev[s], &cur));
            prev[s] = cur;
        }
    }
    let med = |v: &Vec<hsw_tools::Derived>| SocketMedians {
        core_ghz: median_of(v, |d| d.core_ghz),
        uncore_ghz: median_of(v, |d| d.uncore_ghz),
        gips: median_of(v, |d| d.gips),
        pkg_w: median_of(v, |d| d.pkg_w),
    };
    (med(&derived[0]), med(&derived[1]))
}

/// The settings swept by Table IV: Turbo, then 2.5 down to 2.1 GHz.
pub fn table4_settings() -> Vec<FreqSetting> {
    let mut v = vec![FreqSetting::Turbo];
    for mhz in [2500u32, 2400, 2300, 2200, 2100] {
        v.push(FreqSetting::from_mhz(mhz));
    }
    v
}

pub fn run(fidelity: Fidelity) -> Table4 {
    run_seeded(fidelity, 0)
}

/// Like [`run`] but with measurement seeds derived from `seed` via the
/// sweep executor (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Table4 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> Table4 {
    let settings = table4_settings();
    // Warm-start split: FIRESTARTER bring-up at turbo (workload assignment
    // plus the cold-boot thermal/RAPL climb) is shared by every column;
    // each point forks the converged node and only re-settles under its
    // frequency setting.
    let points: Vec<Table4Point> = ctx.sweep_warm(
        &settings,
        |builder| {
            let mut session = builder.resolution(Resolution::Coarse).build();
            let fs = WorkloadProfile::firestarter();
            for s in 0..2 {
                session.run_on_socket(s, &fs, 12, 2); // HT: 2 threads per core
            }
            session.set_turbo(true);
            session.advance_s(0.5); // shared settle at turbo
            session
        },
        |node, s, _seed| {
            let (s0, s1) = measure(ctx, node, *s);
            Table4Point {
                setting_mhz: match s {
                    FreqSetting::Turbo => None,
                    FreqSetting::Fixed(p) => Some(p.mhz()),
                },
                socket0: s0,
                socket1: s1,
            }
        },
    );

    let mut t = Table::new(
        "Table IV: FIRESTARTER with different frequency settings (HT on, medians of LIKWID samples)",
        vec![
            "Core frequency setting",
            "Core P0 [GHz]",
            "Core P1 [GHz]",
            "Uncore P0 [GHz]",
            "Uncore P1 [GHz]",
            "GIPS P0",
            "GIPS P1",
        ],
    );
    for p in &points {
        t.row(vec![
            p.setting_mhz
                .map(|m| format!("{:.1}", m as f64 / 1000.0))
                .unwrap_or_else(|| "Turbo".to_string()),
            format!("{:.2}", p.socket0.core_ghz),
            format!("{:.2}", p.socket1.core_ghz),
            format!("{:.2}", p.socket0.uncore_ghz),
            format!("{:.2}", p.socket1.uncore_ghz),
            format!("{:.2}", p.socket0.gips),
            format!("{:.2}", p.socket1.gips),
        ]);
    }
    Table4 { points, table: t }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table4"
    }
    fn anchor(&self) -> &'static str {
        "Table IV"
    }
    fn title(&self) -> &'static str {
        "FIRESTARTER under reduced frequency settings"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let turbo = r.points.iter().find(|p| p.setting_mhz.is_none());
        if let Some(t) = turbo {
            out.metric("turbo_core_ghz_socket0", t.socket0.core_ghz);
            out.metric("turbo_pkg_w_socket0", t.socket0.pkg_w);
            out.check(
                "Turbo equilibrium is TDP-limited near 2.2-2.4 GHz",
                (2.1..=2.5).contains(&t.socket0.core_ghz),
                format!("socket 0 median {:.2} GHz", t.socket0.core_ghz),
            );
        }
        let worst_asym = r
            .points
            .iter()
            .map(|p| (p.socket0.core_ghz - p.socket1.core_ghz).abs())
            .fold(0.0f64, f64::max);
        out.check(
            "both sockets behave symmetrically",
            worst_asym < 0.15,
            format!("worst core-clock asymmetry {worst_asym:.3} GHz"),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t4() -> &'static Table4 {
        static CACHE: std::sync::OnceLock<Table4> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn turbo_column_matches_paper_band() {
        // Paper: core 2.30/2.32, uncore 2.33/2.35, GIPS 3.55/3.58.
        let p = &t4().points[0];
        for s in [p.socket0, p.socket1] {
            assert!((2.2..=2.4).contains(&s.core_ghz), "core {:.3}", s.core_ghz);
            assert!(
                (2.25..=2.5).contains(&s.uncore_ghz),
                "uncore {:.3}",
                s.uncore_ghz
            );
            assert!((3.45..=3.7).contains(&s.gips), "gips {:.3}", s.gips);
        }
    }

    #[test]
    fn headroom_flows_to_uncore_at_2_2_ghz() {
        let t = t4();
        let p22 = t
            .points
            .iter()
            .find(|p| p.setting_mhz == Some(2200))
            .unwrap();
        assert!(
            (p22.socket0.core_ghz - 2.2).abs() < 0.06,
            "{:.3}",
            p22.socket0.core_ghz
        );
        assert!(
            p22.socket0.uncore_ghz > 2.55,
            "{:.3}",
            p22.socket0.uncore_ghz
        );
    }

    #[test]
    fn at_2_1_ghz_nothing_throttles() {
        let t = t4();
        let p21 = t
            .points
            .iter()
            .find(|p| p.setting_mhz == Some(2100))
            .unwrap();
        assert!((p21.socket0.core_ghz - 2.1).abs() < 0.04);
        assert!((p21.socket0.uncore_ghz - 3.0).abs() < 0.06);
        // Socket 1 (the efficient part) is clearly below TDP; socket 0 sits
        // at the boundary, so grant it the RAPL median's noise band.
        assert!(p21.socket1.pkg_w < 119.5, "{:.1} W", p21.socket1.pkg_w);
        assert!(p21.socket0.pkg_w < 120.5, "{:.1} W", p21.socket0.pkg_w);
    }

    #[test]
    fn gips_inversion_is_reproduced() {
        // Lowering the setting to 2.2–2.3 GHz beats Turbo in IPS.
        let t = t4();
        let turbo = t.points[0].socket1.gips;
        let best = t
            .points
            .iter()
            .filter(|p| matches!(p.setting_mhz, Some(2200) | Some(2300)))
            .map(|p| p.socket1.gips)
            .fold(0.0, f64::max);
        assert!(best > turbo, "reduced {best:.3} vs turbo {turbo:.3}");
    }

    #[test]
    fn socket0_is_slower_than_socket1() {
        // Paper Section III: socket 0 is less efficient.
        let t = t4();
        let p = &t.points[0];
        assert!(p.socket0.core_ghz <= p.socket1.core_ghz + 0.01);
        assert!(p.socket0.gips <= p.socket1.gips + 0.02);
    }

    #[test]
    fn tdp_limit_holds_at_or_above_2_2() {
        let t = t4();
        for p in t.points.iter().filter(|p| p.setting_mhz != Some(2100)) {
            assert!(
                (p.socket0.pkg_w - 120.0).abs() < 4.0,
                "setting {:?}: {:.1} W",
                p.setting_mhz,
                p.socket0.pkg_w
            );
        }
    }
}
