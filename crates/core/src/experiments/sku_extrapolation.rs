//! Beyond the paper: the Table IV protocol extrapolated across the
//! E5-2600 v3 product line.
//!
//! The paper measured one SKU (E5-2680 v3). The mechanisms it characterizes
//! — TDP balancing between core and uncore, AVX ceilings, UFS — apply to
//! the whole line; this experiment predicts the FIRESTARTER equilibrium for
//! representative SKUs of each die and checks the qualitative laws that
//! must hold regardless of SKU: TDP is respected, more cores at equal TDP
//! mean lower per-core clocks, and the AVX ceiling binds when TDP does not.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{haswell_ep_sku, EpbClass, SkuSpec};
use hsw_pcu::{PcuController, PcuInputs};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::Table;

/// Predicted FIRESTARTER equilibrium for one SKU.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkuPrediction {
    pub model: String,
    pub cores: usize,
    pub tdp_w: f64,
    pub base_ghz: f64,
    pub core_ghz: f64,
    pub uncore_ghz: f64,
    pub power_w: f64,
    pub tdp_limited: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkuExtrapolation {
    pub predictions: Vec<SkuPrediction>,
    pub table: Table,
}

impl std::fmt::Display for SkuExtrapolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

fn predict(sku: &SkuSpec) -> SkuPrediction {
    let fs = WorkloadProfile::firestarter();
    let inputs = PcuInputs {
        spec: sku,
        socket_power_mult: 1.0,
        setting: FreqSetting::Turbo,
        epb: EpbClass::Balanced,
        turbo_enabled: true,
        active_cores: sku.cores,
        gated_idle_cores: 0,
        activity: fs.activity(true),
        avx_level: 1,
        stall_fraction: fs.stall_fraction,
        eet_limit_mhz: u32::MAX,
        avg_pkg_w: sku.tdp_w, // steady state
    };
    let g = PcuController::solve(&inputs);
    SkuPrediction {
        model: sku.model.to_string(),
        cores: sku.cores,
        tdp_w: sku.tdp_w,
        base_ghz: sku.freq.base_mhz as f64 / 1000.0,
        core_ghz: g.core_mhz / 1000.0,
        uncore_ghz: g.uncore_mhz / 1000.0,
        power_w: g.power_w,
        tdp_limited: g.power_limited,
    }
}

/// Representative SKUs of each die for the extrapolation.
pub fn skus() -> Vec<SkuSpec> {
    vec![
        haswell_ep_sku("Intel Xeon E5-2623 v3", 4, 3000, 3500, 105.0),
        haswell_ep_sku("Intel Xeon E5-2630 v3", 8, 2400, 3200, 85.0),
        haswell_ep_sku("Intel Xeon E5-2680 v3", 12, 2500, 3300, 120.0),
        haswell_ep_sku("Intel Xeon E5-2699 v3", 18, 2300, 3600, 145.0),
    ]
}

pub fn run() -> SkuExtrapolation {
    let predictions: Vec<SkuPrediction> = skus().par_iter().map(predict).collect();
    let mut t = Table::new(
        "Extension: predicted FIRESTARTER equilibria across the E5-2600 v3 line (Turbo setting, HT)",
        vec!["SKU", "cores", "TDP [W]", "base [GHz]", "core [GHz]", "uncore [GHz]", "power [W]", "TDP limited"],
    );
    for p in &predictions {
        t.row(vec![
            p.model.clone(),
            p.cores.to_string(),
            format!("{:.0}", p.tdp_w),
            format!("{:.1}", p.base_ghz),
            format!("{:.2}", p.core_ghz),
            format!("{:.2}", p.uncore_ghz),
            format!("{:.1}", p.power_w),
            if p.tdp_limited { "yes" } else { "no" }.to_string(),
        ]);
    }
    SkuExtrapolation {
        predictions,
        table: t,
    }
}

/// Registry adapter. The PCU equilibrium solve is analytic, so the survey
/// seed is not consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "sku_extrapolation"
    }
    fn anchor(&self) -> &'static str {
        "Extension (beyond the paper)"
    }
    fn title(&self) -> &'static str {
        "Table IV protocol extrapolated across the E5-2600 v3 line"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run();
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        if let Some(p) = r.predictions.iter().find(|p| p.model.contains("2680")) {
            out.metric("e5_2680v3_core_ghz", p.core_ghz);
            out.metric("e5_2680v3_power_w", p.power_w);
            out.check(
                "the measured SKU's prediction matches Table IV",
                (2.2..=2.4).contains(&p.core_ghz) && p.tdp_limited,
                format!("{:.2} GHz, TDP limited: {}", p.core_ghz, p.tdp_limited),
            );
        }
        out.check(
            "every SKU respects its TDP",
            r.predictions.iter().all(|p| p.power_w <= p.tdp_w * 1.01),
            format!("{} SKUs predicted", r.predictions.len()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached() -> &'static SkuExtrapolation {
        static CACHE: std::sync::OnceLock<SkuExtrapolation> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn every_sku_respects_its_tdp() {
        for p in &cached().predictions {
            assert!(
                p.power_w <= p.tdp_w * 1.01,
                "{}: {:.1} W over {:.0} W",
                p.model,
                p.power_w,
                p.tdp_w
            );
        }
    }

    #[test]
    fn the_2680v3_prediction_matches_table4() {
        let p = cached()
            .predictions
            .iter()
            .find(|p| p.model.contains("2680"))
            .unwrap();
        assert!((2.2..=2.4).contains(&p.core_ghz), "{:.3}", p.core_ghz);
        assert!(p.tdp_limited);
    }

    #[test]
    fn low_tdp_high_core_count_clocks_lower() {
        // The 85 W 8-core part must sustain a lower FIRESTARTER clock than
        // the 105 W 4-core part.
        let preds = &cached().predictions;
        let small = preds.iter().find(|p| p.cores == 4).unwrap();
        let mid = preds.iter().find(|p| p.cores == 8).unwrap();
        assert!(
            mid.core_ghz < small.core_ghz,
            "{:.2} vs {:.2}",
            mid.core_ghz,
            small.core_ghz
        );
    }

    #[test]
    fn firestarter_pegs_every_sku_with_enough_cores() {
        // FIRESTARTER's design goal holds for the 8+-core parts; the 4-core
        // 105 W E5-2623 v3 physically cannot burn its generous TDP and runs
        // at its AVX ceiling instead — a prediction the paper's single-SKU
        // measurement could not make.
        for p in &cached().predictions {
            if p.cores >= 8 {
                assert!(
                    p.tdp_limited,
                    "{} should be TDP limited ({:.1}/{:.0} W)",
                    p.model, p.power_w, p.tdp_w
                );
            } else {
                assert!(!p.tdp_limited, "{}", p.model);
                let sku = skus().into_iter().find(|s| s.cores == p.cores).unwrap();
                let avx_ceiling = sku.freq.avx_turbo_mhz(p.cores) as f64 / 1000.0;
                assert!(
                    (p.core_ghz - avx_ceiling).abs() < 0.02,
                    "{}: {:.2} vs AVX ceiling {:.2}",
                    p.model,
                    p.core_ghz,
                    avx_ceiling
                );
            }
        }
    }

    #[test]
    fn sustained_clock_stays_at_or_above_avx_base() {
        for (p, sku) in cached().predictions.iter().zip(skus()) {
            let avx_base = sku.freq.avx_base_mhz.unwrap() as f64 / 1000.0;
            assert!(
                p.core_ghz >= avx_base - 0.01,
                "{}: {:.2} below AVX base {:.2}",
                p.model,
                p.core_ghz,
                avx_base
            );
        }
    }
}
