//! Section VIII — FIRESTARTER's structure and achieved IPC.
//!
//! Validates the generated stress kernel against every structural claim of
//! the paper: 4-instruction groups in 16-byte fetch windows, the
//! reg/L1/L2/L3/mem mix of 27.8/62.7/7.1/0.8/1.6 %, a loop larger than the
//! µop cache yet within L1I, and 3.1 IPC with Hyper-Threading / 2.8
//! without — and reports the port-level bottleneck analysis.

use hsw_exec::{FirestarterKernel, MemLevel};
use hsw_hwspec::{MicroArch, SkuSpec};
use serde::{Deserialize, Serialize};

use crate::Table;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section8 {
    pub groups_per_level: [usize; 5],
    pub level_fractions: [f64; 5],
    pub code_bytes: usize,
    pub uop_count: usize,
    pub uop_cache_uops: usize,
    pub l1i_bytes: usize,
    pub ipc_ht: f64,
    pub ipc_no_ht: f64,
    pub avx_fraction: f64,
    pub table: Table,
}

impl std::fmt::Display for Section8 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

pub fn run() -> Section8 {
    let kernel = FirestarterKernel::default_haswell();
    let arch = MicroArch::haswell_ep();
    let sku = SkuSpec::xeon_e5_2680_v3();

    let total: usize = kernel.groups_per_level.iter().sum();
    let mut fractions = [0.0; 5];
    for (i, c) in kernel.groups_per_level.iter().enumerate() {
        fractions[i] = *c as f64 / total as f64;
    }

    let ht = kernel.analyze(&arch, true, 1.0);
    let no_ht = kernel.analyze(&arch, false, 1.0);

    let mut t = Table::new(
        "Section VIII: FIRESTARTER kernel structure and throughput",
        vec!["Property", "Value", "Paper"],
    );
    for (i, level) in MemLevel::ALL.iter().enumerate() {
        t.row(vec![
            format!("{} group share", level.name()),
            format!("{:.1} %", fractions[i] * 100.0),
            format!(
                "{:.1} %",
                hsw_hwspec::calib::FIRESTARTER_LEVEL_RATIOS[i] * 100.0
            ),
        ]);
    }
    t.row(vec![
        "loop size".to_string(),
        format!("{} B / {} uops", kernel.code_bytes(), kernel.uop_count()),
        "> uop cache, < L1I".to_string(),
    ]);
    t.row(vec![
        "IPC with Hyper-Threading".to_string(),
        format!("{:.2}", ht.ipc_core),
        "3.1".to_string(),
    ]);
    t.row(vec![
        "IPC without Hyper-Threading".to_string(),
        format!("{:.2}", no_ht.ipc_core),
        "2.8".to_string(),
    ]);

    Section8 {
        groups_per_level: kernel.groups_per_level,
        level_fractions: fractions,
        code_bytes: kernel.code_bytes(),
        uop_count: kernel.uop_count(),
        uop_cache_uops: arch.uop_cache_uops,
        l1i_bytes: sku.cache.l1i_kib * 1024,
        ipc_ht: ht.ipc_core,
        ipc_no_ht: no_ht.ipc_core,
        avx_fraction: kernel.avx_fraction(),
        table: t,
    }
}

/// Registry adapter. The kernel analysis is analytic, so the survey seed
/// is not consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "section8"
    }
    fn anchor(&self) -> &'static str {
        "Section VIII"
    }
    fn title(&self) -> &'static str {
        "FIRESTARTER kernel structure and IPC"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run();
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        out.metric("ipc_ht", r.ipc_ht);
        out.metric("ipc_no_ht", r.ipc_no_ht);
        out.metric("avx_fraction", r.avx_fraction);
        out.check(
            "IPC with Hyper-Threading is about 3.1",
            (r.ipc_ht - 3.1).abs() < 0.15,
            format!("{:.2}", r.ipc_ht),
        );
        out.check(
            "IPC without Hyper-Threading is about 2.8",
            (r.ipc_no_ht - 2.8).abs() < 0.15,
            format!("{:.2}", r.ipc_no_ht),
        );
        out.check(
            "loop exceeds the uop cache but fits L1I",
            r.uop_count > r.uop_cache_uops && r.code_bytes < r.l1i_bytes,
            format!(
                "{} uops (cache {}), {} B (L1I {} B)",
                r.uop_count, r.uop_cache_uops, r.code_bytes, r.l1i_bytes
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;

    #[test]
    fn reproduces_every_section8_claim() {
        let s = run();
        for (i, r) in calib::FIRESTARTER_LEVEL_RATIOS.iter().enumerate() {
            assert!((s.level_fractions[i] - r).abs() < 0.005, "level {i}");
        }
        assert!(s.uop_count > s.uop_cache_uops);
        assert!(s.code_bytes < s.l1i_bytes);
        assert!(
            (s.ipc_ht - calib::FIRESTARTER_IPC_HT).abs() < 0.1,
            "{}",
            s.ipc_ht
        );
        assert!(
            (s.ipc_no_ht - calib::FIRESTARTER_IPC_NO_HT).abs() < 0.1,
            "{}",
            s.ipc_no_ht
        );
        assert!(s.avx_fraction > 0.4);
    }

    #[test]
    fn display_mentions_both_ipc_figures() {
        let text = run().to_string();
        assert!(text.contains("3.1"));
        assert!(text.contains("2.8"));
    }
}
