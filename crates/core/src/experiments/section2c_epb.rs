//! Section II-C — the measured EPB mapping.
//!
//! The paper: "The EPB setting can be changed by writing the configuration
//! into 4 bits of a model-specific register. However only 3 of the possible
//! 16 settings are defined. ... According to our measurements, other
//! settings are mapped to balanced (1-7) and energy saving (8-14)."
//!
//! We redo that measurement end to end: program every raw value 0–15 into
//! `IA32_ENERGY_PERF_BIAS` through the MSR interface and classify the
//! observed behavior by its distinguishing effects — the uncore pin at
//! 3.0 GHz (performance) and the small frequency bias under TDP pressure.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_msr::addresses as msra;
use hsw_node::{CpuId, EngineMode, PlaneMask, Resolution};
use hsw_tools::PerfCtr;
use serde::{Deserialize, Serialize};

use crate::survey::RunCtx;
use crate::Table;

/// Observed behavior class for one raw EPB value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpbObservation {
    pub raw: u8,
    pub uncore_ghz: f64,
    /// Behavior class inferred from the measurement.
    pub observed_class: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section2cEpb {
    pub observations: Vec<EpbObservation>,
    pub table: Table,
}

impl std::fmt::Display for Section2cEpb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Program a raw EPB value on a range of hardware threads through the MSR
/// interface (tools use wrmsr; we poke the registers the same way). EPB
/// programming touches only the MSR plane, so the scoped accessor keeps a
/// following warm-start fork from paying for a full restore.
fn program_epb(node: &mut hsw_node::Node, sockets: std::ops::Range<usize>, raw: u8) {
    let threads = node.config().spec.sku.hw_threads();
    for s in sockets {
        let sock = node.socket_planes_mut(s, PlaneMask::MSR);
        for t in 0..threads {
            sock.msr_store(t, msra::IA32_ENERGY_PERF_BIAS, raw as u64)
                .unwrap();
        }
    }
}

pub fn run() -> Section2cEpb {
    let ctx = RunCtx::new(crate::Fidelity::Quick, 0, EngineMode::default());
    run_impl(&ctx)
}

/// Like [`run`] but with per-value observation seeds derived from `seed`
/// (the survey runner's determinism contract).
pub fn run_seeded(seed: u64) -> Section2cEpb {
    let ctx = RunCtx::new(crate::Fidelity::Quick, seed, EngineMode::default());
    run_impl(&ctx)
}

fn run_impl(ctx: &RunCtx) -> Section2cEpb {
    let raws: Vec<u8> = (0u8..16).collect();

    // Classify each raw EPB value by its measurable effect, via two warm
    // sweeps (salts 0 and 1) whose workload bring-up is shared across all
    // 16 values; only the EPB write and its settle run per point.
    //
    // Probe 1: a spinning core at a fixed setting exposes the UFS response
    // (performance pins the uncore at 3.0 GHz).
    let uncore: Vec<f64> = ctx.sweep_warm_salted(
        0,
        &raws,
        |builder| {
            let mut session = builder.resolution(Resolution::Custom(100)).build();
            session.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
            session.advance_s(0.2); // shared bring-up
            session
        },
        |node, raw, _seed| {
            program_epb(node, 0..2, *raw);
            node.set_setting_all(FreqSetting::from_mhz(2500));
            node.advance_s(0.3);
            let pc = PerfCtr::new(node, CpuId::new(0, 0, 0));
            let a = pc.sample(node);
            node.advance_s(0.4);
            let b = pc.sample(node);
            pc.derive(&a, &b).uncore_ghz
        },
    );

    // Probe 2: TDP pressure distinguishes balanced vs energy saving —
    // FIRESTARTER's equilibrium frequency carries the EPB budget bias.
    let eq: Vec<f64> = ctx.sweep_warm_salted(
        1,
        &raws,
        |builder| {
            let mut session = builder.resolution(Resolution::Custom(100)).build();
            session.run_on_socket(0, &WorkloadProfile::firestarter(), 12, 2);
            session.advance_s(0.2); // shared bring-up
            session
        },
        |node, raw, _seed| {
            program_epb(node, 0..1, *raw);
            node.set_setting_all(FreqSetting::Turbo);
            node.advance_s(0.6);
            node.sockets()[0].true_core_mhz(0) / 1000.0
        },
    );

    let observations: Vec<EpbObservation> = raws
        .iter()
        .zip(uncore.iter().zip(&eq))
        .map(|(raw, (&uncore_ghz, &eq_ghz))| {
            let observed_class = if uncore_ghz > 2.8 {
                "performance"
            } else if eq_ghz < 2.27 {
                "energy saving"
            } else {
                "balanced"
            };
            EpbObservation {
                raw: *raw,
                uncore_ghz,
                observed_class: observed_class.to_string(),
            }
        })
        .collect();
    let mut t = Table::new(
        "Section II-C: measured EPB mapping (raw register value -> behavior)",
        vec!["raw", "uncore under spin [GHz]", "observed class", "paper"],
    );
    for o in &observations {
        let paper = match o.raw {
            0 => "performance",
            1..=7 => "balanced",
            _ => "energy saving",
        };
        t.row(vec![
            o.raw.to_string(),
            format!("{:.2}", o.uncore_ghz),
            o.observed_class.clone(),
            paper.to_string(),
        ]);
    }
    Section2cEpb {
        observations,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "section2c_epb"
    }
    fn anchor(&self) -> &'static str {
        "Section II-C"
    }
    fn title(&self) -> &'static str {
        "Measured EPB register mapping"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let matches = r
            .observations
            .iter()
            .filter(|o| {
                let paper = match o.raw {
                    0 => "performance",
                    1..=7 => "balanced",
                    _ => "energy saving",
                };
                o.observed_class == paper
            })
            .count();
        out.metric("mapping_matches", matches as f64);
        out.check(
            "all 16 raw values classify as the paper's mapping",
            matches == 16,
            format!("{matches}/16 matched"),
        );
        out.check(
            "only raw value 0 pins the uncore at 3.0 GHz",
            r.observations
                .iter()
                .all(|o| (o.raw == 0) == (o.uncore_ghz > 2.8)),
            "uncore pin is the performance-class signature".to_string(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached() -> &'static Section2cEpb {
        static CACHE: std::sync::OnceLock<Section2cEpb> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn measured_mapping_matches_the_paper() {
        // "A setting of 0, 6, and 15 can be used for performance, balanced,
        // and energy saving ... other settings are mapped to balanced (1-7)
        // and energy saving (8-14)."
        let s = cached();
        for o in &s.observations {
            let expect = match o.raw {
                0 => "performance",
                1..=7 => "balanced",
                _ => "energy saving",
            };
            assert_eq!(o.observed_class, expect, "raw {}", o.raw);
        }
    }

    #[test]
    fn only_raw_zero_pins_the_uncore() {
        let s = cached();
        for o in &s.observations {
            if o.raw == 0 {
                assert!(o.uncore_ghz > 2.8, "raw 0: {:.2}", o.uncore_ghz);
            } else {
                assert!(o.uncore_ghz < 2.5, "raw {}: {:.2}", o.raw, o.uncore_ghz);
            }
        }
    }
}
