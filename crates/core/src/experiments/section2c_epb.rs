//! Section II-C — the measured EPB mapping.
//!
//! The paper: "The EPB setting can be changed by writing the configuration
//! into 4 bits of a model-specific register. However only 3 of the possible
//! 16 settings are defined. ... According to our measurements, other
//! settings are mapped to balanced (1-7) and energy saving (8-14)."
//!
//! We redo that measurement end to end: program every raw value 0–15 into
//! `IA32_ENERGY_PERF_BIAS` through the MSR interface and classify the
//! observed behavior by its distinguishing effects — the uncore pin at
//! 3.0 GHz (performance) and the small frequency bias under TDP pressure.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_msr::addresses as msra;
use hsw_node::{CpuId, EngineMode, Resolution};
use hsw_tools::PerfCtr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::survey::RunCtx;
use crate::Table;

/// Observed behavior class for one raw EPB value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpbObservation {
    pub raw: u8,
    pub uncore_ghz: f64,
    /// Behavior class inferred from the measurement.
    pub observed_class: String,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Section2cEpb {
    pub observations: Vec<EpbObservation>,
    pub table: Table,
}

impl std::fmt::Display for Section2cEpb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Classify one raw EPB value by its measurable effect: a spinning core at
/// a fixed setting exposes the UFS response (performance pins 3.0 GHz), and
/// the energy-saving class shows the small downward frequency bias under
/// TDP pressure.
fn observe(ctx: &RunCtx, raw: u8, seed: u64) -> EpbObservation {
    let mut node = ctx
        .session()
        .seed(seed)
        .resolution(Resolution::Custom(100))
        .build();
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    // Program the raw value on every thread (tools use wrmsr; we poke the
    // registers the same way).
    for s in 0..2 {
        for t in 0..node.config().spec.sku.hw_threads() {
            let core = t / 2;
            let thread = t % 2;
            node.wrmsr(
                CpuId::new(s, core, thread),
                msra::IA32_ENERGY_PERF_BIAS,
                raw as u64,
            )
            .unwrap();
        }
    }
    node.set_setting_all(FreqSetting::from_mhz(2500));
    node.advance_s(0.3);
    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let a = pc.sample(&node);
    node.advance_s(0.4);
    let b = pc.sample(&node);
    let uncore_ghz = pc.derive(&a, &b).uncore_ghz;

    // TDP-pressure probe for distinguishing balanced vs energy saving:
    // FIRESTARTER's equilibrium frequency carries the EPB budget bias.
    let mut node2 = ctx
        .session()
        .seed(seed + 1)
        .resolution(Resolution::Custom(100))
        .build();
    let fs = WorkloadProfile::firestarter();
    node2.run_on_socket(0, &fs, 12, 2);
    for t in 0..node2.config().spec.sku.hw_threads() {
        node2
            .wrmsr(
                CpuId::new(0, t / 2, t % 2),
                msra::IA32_ENERGY_PERF_BIAS,
                raw as u64,
            )
            .unwrap();
    }
    node2.set_setting_all(FreqSetting::Turbo);
    node2.advance_s(0.6);
    let eq_ghz = node2.sockets()[0].true_core_mhz(0) / 1000.0;

    let observed_class = if uncore_ghz > 2.8 {
        "performance"
    } else if eq_ghz < 2.27 {
        "energy saving"
    } else {
        "balanced"
    };
    EpbObservation {
        raw,
        uncore_ghz,
        observed_class: observed_class.to_string(),
    }
}

pub fn run() -> Section2cEpb {
    let ctx = RunCtx::new(crate::Fidelity::Quick, 0, EngineMode::default());
    run_impl(&ctx, None)
}

/// Like [`run`] but with per-value observation seeds derived from `seed`
/// (the survey runner's determinism contract).
pub fn run_seeded(seed: u64) -> Section2cEpb {
    let ctx = RunCtx::new(crate::Fidelity::Quick, seed, EngineMode::default());
    run_impl(&ctx, Some(seed))
}

fn run_impl(ctx: &RunCtx, seed: Option<u64>) -> Section2cEpb {
    let observations: Vec<EpbObservation> = (0u8..16)
        .collect::<Vec<_>>()
        .par_iter()
        .map(|raw| {
            let obs_seed = match seed {
                None => 77_000 + *raw as u64 * 3,
                Some(root) => crate::survey::mix_seed(root, *raw as u64),
            };
            observe(ctx, *raw, obs_seed)
        })
        .collect();
    let mut t = Table::new(
        "Section II-C: measured EPB mapping (raw register value -> behavior)",
        vec!["raw", "uncore under spin [GHz]", "observed class", "paper"],
    );
    for o in &observations {
        let paper = match o.raw {
            0 => "performance",
            1..=7 => "balanced",
            _ => "energy saving",
        };
        t.row(vec![
            o.raw.to_string(),
            format!("{:.2}", o.uncore_ghz),
            o.observed_class.clone(),
            paper.to_string(),
        ]);
    }
    Section2cEpb {
        observations,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "section2c_epb"
    }
    fn anchor(&self) -> &'static str {
        "Section II-C"
    }
    fn title(&self) -> &'static str {
        "Measured EPB register mapping"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx, Some(ctx.seed));
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let matches = r
            .observations
            .iter()
            .filter(|o| {
                let paper = match o.raw {
                    0 => "performance",
                    1..=7 => "balanced",
                    _ => "energy saving",
                };
                o.observed_class == paper
            })
            .count();
        out.metric("mapping_matches", matches as f64);
        out.check(
            "all 16 raw values classify as the paper's mapping",
            matches == 16,
            format!("{matches}/16 matched"),
        );
        out.check(
            "only raw value 0 pins the uncore at 3.0 GHz",
            r.observations
                .iter()
                .all(|o| (o.raw == 0) == (o.uncore_ghz > 2.8)),
            "uncore pin is the performance-class signature".to_string(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached() -> &'static Section2cEpb {
        static CACHE: std::sync::OnceLock<Section2cEpb> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn measured_mapping_matches_the_paper() {
        // "A setting of 0, 6, and 15 can be used for performance, balanced,
        // and energy saving ... other settings are mapped to balanced (1-7)
        // and energy saving (8-14)."
        let s = cached();
        for o in &s.observations {
            let expect = match o.raw {
                0 => "performance",
                1..=7 => "balanced",
                _ => "energy saving",
            };
            assert_eq!(o.observed_class, expect, "raw {}", o.raw);
        }
    }

    #[test]
    fn only_raw_zero_pins_the_uncore() {
        let s = cached();
        for o in &s.observations {
            if o.raw == 0 {
                assert!(o.uncore_ghz > 2.8, "raw 0: {:.2}", o.uncore_ghz);
            } else {
                assert!(o.uncore_ghz < 2.5, "raw {}: {:.2}", o.raw, o.uncore_ghz);
            }
        }
    }
}
