//! Surrogate accuracy map — where the closed-form model tracks the full
//! simulator, and where it breaks (after Hofmann/Hager, arXiv:1803.01618).
//!
//! Every row of the operating envelope is answered twice: once by the
//! `hsw-analytic` closed form and once by the full simulator (settle plus
//! LIKWID-style sample medians, Table IV methodology), and the per-metric
//! relative error is recorded. The envelope deliberately includes the two
//! regimes 1803.01618 names as the limits of analytic modeling — idle
//! packages (c-state transients, the unmodeled package-sleep residual) and
//! duty-cycled workloads (finite measurement windows cut periods
//! mid-cycle) — so the experiment checks both that the surrogate tracks
//! settled steady-state points *and* that it diverges where the paper says
//! it must. The settled-point error bound is the accuracy gate CI runs.

use hsw_analytic::{AnalyticModel, OperatingPoint};
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{CpuId, EngineMode, Resolution};
use hsw_tools::perfctr::{median_of, PerfCtr};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::{rel_err, RunCtx};
use crate::Fidelity;

/// Relative error on settled steady-state rows above which the accuracy
/// gate fails (model drift guard; CI runs this experiment's checks).
pub const SETTLED_REL_ERR_GATE: f64 = 0.08;

/// One operating point of the accuracy envelope.
struct Row {
    name: &'static str,
    profile: WorkloadProfile,
    setting: FreqSetting,
    active: usize,
    threads: usize,
    /// Settled steady state: the surrogate is expected to track the
    /// simulator here. `false` marks the designed-divergence rows (idle
    /// c-states, duty transients).
    settled: bool,
}

/// The envelope, derived from the platform spec so both generations run
/// the same protocol: the fig2/table4 regimes (capped turbo, fixed-clock
/// headroom, partial load, EET-capped memory stalls, a single busy core)
/// plus the two designed-divergence regimes.
fn envelope(spec: &hsw_hwspec::SkuSpec) -> Vec<Row> {
    let cores = spec.cores;
    let base = spec.freq.base_mhz;
    vec![
        Row {
            name: "firestarter_turbo",
            profile: WorkloadProfile::firestarter(),
            setting: FreqSetting::Turbo,
            active: cores,
            threads: 2,
            settled: true,
        },
        Row {
            name: "firestarter_fixed_low",
            profile: WorkloadProfile::firestarter(),
            setting: FreqSetting::from_mhz(base - 400),
            active: cores,
            threads: 2,
            settled: true,
        },
        Row {
            name: "compute_partial",
            profile: WorkloadProfile::compute(),
            setting: FreqSetting::Turbo,
            active: 5,
            threads: 1,
            settled: true,
        },
        Row {
            name: "memory_bound_eet",
            profile: WorkloadProfile::memory_bound(),
            setting: FreqSetting::Turbo,
            active: cores,
            threads: 1,
            settled: true,
        },
        Row {
            name: "busy_wait_single",
            profile: WorkloadProfile::busy_wait(),
            setting: FreqSetting::from_mhz(base),
            active: 1,
            threads: 1,
            settled: true,
        },
        Row {
            name: "sinus_duty",
            profile: WorkloadProfile::sinus(),
            setting: FreqSetting::Turbo,
            active: cores / 2,
            threads: 1,
            settled: false,
        },
        Row {
            name: "idle",
            profile: WorkloadProfile::idle(),
            setting: FreqSetting::Turbo,
            active: 0,
            threads: 1,
            settled: false,
        },
    ]
}

/// Socket-0 steady-state observables, from either answer path.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RowSample {
    pub core_ghz: f64,
    pub uncore_ghz: f64,
    pub gips: f64,
    pub pkg_w: f64,
}

/// One envelope row: both answers and the divergence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RowResult {
    pub name: String,
    /// Settled steady state (gated) vs. designed-divergence row.
    pub settled: bool,
    pub sim: RowSample,
    pub surrogate: RowSample,
    /// Worst relative error across the four metrics.
    pub worst_rel_err: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyticAccuracy {
    pub rows: Vec<RowResult>,
    pub table: Table,
}

impl AnalyticAccuracy {
    /// Worst relative error across the settled (gated) rows.
    pub fn settled_worst(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.settled)
            .map(|r| r.worst_rel_err)
            .fold(0.0, f64::max)
    }

    /// Worst relative error across the designed-divergence rows.
    pub fn transient_worst(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| !r.settled)
            .map(|r| r.worst_rel_err)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for AnalyticAccuracy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Full-simulator answer for one row: settle, then Table IV-style sample
/// medians on socket 0.
fn simulate(ctx: &RunCtx, row: &Row, seed: u64) -> RowSample {
    let mut node = ctx
        .session()
        .seed(seed)
        .resolution(Resolution::Coarse)
        .build()
        .into_node();
    if row.active > 0 {
        for s in 0..2 {
            node.run_on_socket(s, &row.profile, row.active, row.threads);
        }
    } else {
        node.idle_all();
    }
    node.set_turbo(true);
    node.set_setting_all(row.setting);
    node.advance_s(0.5);

    let pc = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let n = ctx.fidelity.table4_samples();
    let dt = ctx.fidelity.table4_interval_s();
    let mut prev = pc.sample(&node);
    let mut derived = Vec::with_capacity(n);
    for _ in 0..n {
        node.advance_s(dt);
        let cur = pc.sample(&node);
        derived.push(pc.derive(&prev, &cur));
        prev = cur;
    }
    RowSample {
        core_ghz: median_of(&derived, |d| d.core_ghz),
        uncore_ghz: median_of(&derived, |d| d.uncore_ghz),
        gips: median_of(&derived, |d| d.gips),
        pkg_w: median_of(&derived, |d| d.pkg_w),
    }
}

/// Closed-form answer for the same row.
fn surrogate(model: &AnalyticModel, row: &Row) -> RowSample {
    let pred = model.predict(&OperatingPoint {
        profile: &row.profile,
        setting: row.setting,
        epb: hsw_hwspec::EpbClass::Balanced,
        turbo_enabled: true,
        active_cores: row.active,
        smt: row.threads > 1,
    });
    let s = &pred.sockets[0];
    RowSample {
        core_ghz: s.core_ghz,
        uncore_ghz: s.uncore_ghz,
        gips: s.gips,
        pkg_w: s.pkg_w,
    }
}

fn worst_err(sur: &RowSample, sim: &RowSample) -> f64 {
    [
        rel_err(sur.core_ghz, sim.core_ghz),
        rel_err(sur.uncore_ghz, sim.uncore_ghz),
        rel_err(sur.gips, sim.gips),
        rel_err(sur.pkg_w, sim.pkg_w),
    ]
    .into_iter()
    .fold(0.0, f64::max)
}

pub fn run(fidelity: Fidelity) -> AnalyticAccuracy {
    run_seeded(fidelity, 0)
}

/// Like [`run`] with the survey runner's seed derivation.
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> AnalyticAccuracy {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> AnalyticAccuracy {
    let platform = ctx.platform();
    let model = AnalyticModel::from_node_spec(&platform.spec, platform.eet_enabled);
    let rows = envelope(&platform.spec.sku);
    // Every row runs both paths, so the whole envelope is its own spot
    // check (credited as such on the scoreboard).
    ctx.note_surrogate(rows.len() as u64, rows.len() as u64);
    let results: Vec<RowResult> = ctx.sweep(&rows, |row, seed| {
        let sim = simulate(ctx, row, seed);
        let sur = surrogate(&model, row);
        RowResult {
            name: row.name.to_string(),
            settled: row.settled,
            sim,
            surrogate: sur,
            worst_rel_err: worst_err(&sur, &sim),
        }
    });

    let mut t = Table::new(
        "Surrogate accuracy: closed-form model vs. full simulator across the operating envelope",
        vec![
            "operating point",
            "regime",
            "core sim/model [GHz]",
            "uncore sim/model [GHz]",
            "GIPS sim/model",
            "pkg sim/model [W]",
            "worst err",
        ],
    );
    for r in &results {
        t.row(vec![
            r.name.clone(),
            if r.settled { "settled" } else { "transient" }.to_string(),
            format!("{:.2}/{:.2}", r.sim.core_ghz, r.surrogate.core_ghz),
            format!("{:.2}/{:.2}", r.sim.uncore_ghz, r.surrogate.uncore_ghz),
            format!("{:.2}/{:.2}", r.sim.gips, r.surrogate.gips),
            format!("{:.1}/{:.1}", r.sim.pkg_w, r.surrogate.pkg_w),
            format!("{:.1}%", r.worst_rel_err * 100.0),
        ]);
    }
    AnalyticAccuracy {
        rows: results,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "analytic_accuracy"
    }
    fn anchor(&self) -> &'static str {
        "Beyond the paper"
    }
    fn title(&self) -> &'static str {
        "Where the closed-form surrogate tracks the simulator, and where it breaks"
    }
    fn supports_surrogate(&self) -> bool {
        true
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let (settled, transient) = (r.settled_worst(), r.transient_worst());
        out.metric("settled_worst_rel_err", settled);
        out.metric("transient_worst_rel_err", transient);
        out.check(
            "surrogate tracks the simulator on settled steady-state points",
            settled < SETTLED_REL_ERR_GATE,
            format!(
                "worst settled relative error {:.2}% (gate {:.0}%)",
                settled * 100.0,
                SETTLED_REL_ERR_GATE * 100.0
            ),
        );
        out.check(
            "the model breaks where 1803.01618 says (c-states, transients)",
            transient > settled,
            format!(
                "transient rows {:.1}% vs settled rows {:.2}%",
                transient * 100.0,
                settled * 100.0
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc() -> &'static AnalyticAccuracy {
        static CACHE: std::sync::OnceLock<AnalyticAccuracy> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run_seeded(Fidelity::Quick, 0xACC0))
    }

    #[test]
    fn settled_rows_stay_inside_the_gate() {
        let a = acc();
        for r in a.rows.iter().filter(|r| r.settled) {
            assert!(
                r.worst_rel_err < SETTLED_REL_ERR_GATE,
                "{}: {:.3}",
                r.name,
                r.worst_rel_err
            );
        }
    }

    #[test]
    fn designed_divergence_rows_diverge_most() {
        let a = acc();
        assert!(
            a.transient_worst() > a.settled_worst(),
            "transient {:.3} vs settled {:.3}",
            a.transient_worst(),
            a.settled_worst()
        );
    }

    #[test]
    fn capped_row_lands_on_the_tdp_in_both_paths() {
        let a = acc();
        let fs = a
            .rows
            .iter()
            .find(|r| r.name == "firestarter_turbo")
            .unwrap();
        assert!((fs.sim.pkg_w - 120.0).abs() < 4.0, "{:.1}", fs.sim.pkg_w);
        assert!(
            (fs.surrogate.pkg_w - 120.0).abs() < 4.0,
            "{:.1}",
            fs.surrogate.pkg_w
        );
    }

    #[test]
    fn envelope_covers_both_regimes() {
        let rows = envelope(&hsw_hwspec::NodeSpec::paper_test_node().sku);
        assert!(rows.iter().filter(|r| r.settled).count() >= 5);
        assert!(rows.iter().filter(|r| !r.settled).count() >= 2);
    }
}
