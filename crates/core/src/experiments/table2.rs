//! Table II — test-system details, including the *measured* idle power
//! (fans at maximum): the one live measurement in the table.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{EngineMode, Platform};
use serde::{Deserialize, Serialize};

use crate::report::{watts, Table};
use crate::survey::RunCtx;
use crate::Fidelity;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2 {
    pub table: Table,
    pub idle_power_w: f64,
}

impl std::fmt::Display for Table2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

pub fn run(fidelity: Fidelity) -> Table2 {
    run_impl(&RunCtx::new(fidelity, 0, EngineMode::default()))
}

fn run_impl(ctx: &RunCtx) -> Table2 {
    let fidelity = ctx.fidelity;
    let platform = Platform::paper();
    let sku = platform.spec.sku.clone();
    let eet_enabled = platform.eet_enabled;

    // Measure idle AC power the paper's way: idle system, fans at maximum
    // (the node model's constant rest load), LMG450 averaging. This
    // experiment is deterministic (`seeded() == false`), so the session is
    // pinned to the platform default seed regardless of the survey root.
    let mut node = ctx.session().seed(platform.seed).build();
    node.idle_all();
    node.set_setting_all(FreqSetting::Turbo);
    let _ = WorkloadProfile::idle();
    node.advance_s(0.2);
    let idle_power_w = node.measure_ac_average(match fidelity {
        Fidelity::Quick | Fidelity::Analytic => 1.0,
        Fidelity::Paper => 10.0,
    });

    let mut t = Table::new("Table II: test system details", vec!["Item", "Value"]);
    t.row(vec!["Processor".to_string(), format!("2x {}", sku.model)]);
    t.row(vec![
        "Frequency range (selectable p-states)".to_string(),
        format!(
            "{:.1} - {:.1} GHz",
            sku.freq.min_mhz as f64 / 1000.0,
            sku.freq.base_mhz as f64 / 1000.0
        ),
    ]);
    t.row(vec![
        "Turbo frequency".to_string(),
        format!("up to {:.1} GHz", sku.freq.turbo_mhz(1) as f64 / 1000.0),
    ]);
    t.row(vec![
        "AVX base frequency".to_string(),
        format!(
            "{:.1} GHz",
            sku.freq.avx_base_mhz.unwrap_or(0) as f64 / 1000.0
        ),
    ]);
    t.row(vec![
        "Energy perf. bias".to_string(),
        "balanced".to_string(),
    ]);
    t.row(vec![
        "Energy-efficient turbo (EET)".to_string(),
        if eet_enabled { "enabled" } else { "disabled" }.to_string(),
    ]);
    t.row(vec![
        "Uncore frequency scaling (UFS)".to_string(),
        "enabled".to_string(),
    ]);
    t.row(vec![
        "Per-core p-states (PCPS)".to_string(),
        "enabled".to_string(),
    ]);
    t.row(vec![
        "Idle power (fan speed set to maximum)".to_string(),
        format!("{} Watt", watts(idle_power_w)),
    ]);
    t.row(vec![
        "Power meter".to_string(),
        "ZES LMG450 (simulated)".to_string(),
    ]);
    t.row(vec!["Accuracy".to_string(), "0.07 % + 0.23 W".to_string()]);

    Table2 {
        table: t,
        idle_power_w,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table2"
    }
    fn anchor(&self) -> &'static str {
        "Table II"
    }
    fn title(&self) -> &'static str {
        "Test-system details with measured idle power"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        out.metric("idle_power_w", r.idle_power_w);
        out.check(
            "idle power matches the paper's 261.5 W",
            (r.idle_power_w - 261.5).abs() < 8.0,
            format!("measured {:.1} W", r.idle_power_w),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;

    #[test]
    fn idle_power_reproduces_table2() {
        let t2 = run(Fidelity::Quick);
        assert!(
            (t2.idle_power_w - calib::IDLE_NODE_POWER_W).abs() < 6.0,
            "idle = {:.1} W (paper: 261.5 W)",
            t2.idle_power_w
        );
    }

    #[test]
    fn table_lists_the_paper_configuration() {
        let text = run(Fidelity::Quick).to_string();
        for needle in [
            "E5-2680 v3",
            "1.2 - 2.5 GHz",
            "3.3 GHz",
            "2.1 GHz",
            "balanced",
            "LMG450",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
