//! Figure 1 — the partitioned ring-interconnect die layouts of Haswell-EP.
//!
//! Regenerates the figure as a structural report: for each die (8-, 12-,
//! 18-core), the ring partitions, their IMCs/channels, the core→partition
//! map, and the derived interconnect statistics the bandwidth/latency
//! models consume (mean ring hops, cross-partition pairs).

use hsw_hwspec::DieLayout;
use serde::{Deserialize, Serialize};

use crate::Table;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Die {
    pub name: String,
    pub partitions: Vec<(usize, usize)>, // (cores, memory channels)
    pub mean_hops: Vec<f64>,
    pub cross_partition_pairs: usize,
    pub total_pairs: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    pub dies: Vec<Fig1Die>,
    pub table: Table,
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

fn analyze(die: DieLayout) -> Fig1Die {
    let n = die.total_cores();
    let mut cross = 0;
    let mut total = 0;
    for a in 0..n {
        for b in (a + 1)..n {
            total += 1;
            if die.crosses_partition(a, b) {
                cross += 1;
            }
        }
    }
    Fig1Die {
        name: die.name.to_string(),
        partitions: die
            .partitions
            .iter()
            .map(|p| (p.cores, p.memory_channels))
            .collect(),
        mean_hops: (0..die.partitions.len())
            .map(|i| die.mean_ring_hops(i))
            .collect(),
        cross_partition_pairs: cross,
        total_pairs: total,
    }
}

pub fn run() -> Fig1 {
    let dies = vec![
        analyze(DieLayout::die8()),
        analyze(DieLayout::die12()),
        analyze(DieLayout::die18()),
    ];
    let mut t = Table::new(
        "Figure 1: Haswell-EP die layouts with partitioned ring interconnect",
        vec![
            "die",
            "partitions (cores/channels)",
            "mean ring hops",
            "cross-partition core pairs",
        ],
    );
    for d in &dies {
        t.row(vec![
            d.name.clone(),
            d.partitions
                .iter()
                .map(|(c, m)| format!("{c}c/{m}ch"))
                .collect::<Vec<_>>()
                .join(" + "),
            d.mean_hops
                .iter()
                .map(|h| format!("{h:.1}"))
                .collect::<Vec<_>>()
                .join(" / "),
            format!("{}/{}", d.cross_partition_pairs, d.total_pairs),
        ]);
    }
    Fig1 { dies, table: t }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig1"
    }
    fn anchor(&self) -> &'static str {
        "Figure 1"
    }
    fn title(&self) -> &'static str {
        "Partitioned ring-interconnect die layouts"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run();
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let largest = r.dies.last().expect("dies");
        let cross_fraction = largest.cross_partition_pairs as f64 / largest.total_pairs as f64;
        out.metric("die_layouts", r.dies.len() as f64);
        out.metric("largest_die_cross_pair_fraction", cross_fraction);
        out.check(
            "three die layouts analyzed",
            r.dies.len() == 3,
            format!("{} dies", r.dies.len()),
        );
        out.check(
            "largest die is ring-partitioned",
            largest.partitions.len() >= 2 && largest.cross_partition_pairs > 0,
            format!(
                "{}: {} partitions, {}/{} cross-partition pairs",
                largest.name,
                largest.partitions.len(),
                largest.cross_partition_pairs,
                largest.total_pairs
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_figure1_partitioning() {
        let f = run();
        assert_eq!(f.dies.len(), 3);
        // 8-core die: single ring, no cross-partition traffic.
        assert_eq!(f.dies[0].partitions, vec![(8, 4)]);
        assert_eq!(f.dies[0].cross_partition_pairs, 0);
        // 12-core die: 8 + 4, each with a 2-channel IMC (Fig. 1a).
        assert_eq!(f.dies[1].partitions, vec![(8, 2), (4, 2)]);
        assert_eq!(f.dies[1].cross_partition_pairs, 8 * 4);
        // 18-core die: 8 + 10 (Fig. 1b).
        assert_eq!(f.dies[2].partitions, vec![(8, 2), (10, 2)]);
        assert_eq!(f.dies[2].cross_partition_pairs, 8 * 10);
    }

    #[test]
    fn bigger_partition_means_longer_average_path() {
        let f = run();
        let d18 = &f.dies[2];
        assert!(d18.mean_hops[1] > d18.mean_hops[0]);
    }
}
