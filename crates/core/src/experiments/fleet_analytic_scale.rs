//! Million-node cap-spread sweep on the surrogate tier.
//!
//! The cap-spread phenomenon ([`fleet_cap_spread`](super::fleet_cap_spread))
//! is a *fleet* statistic: the spread estimate tightens with the number of
//! manufactured chips, and datacenter fleets are measured in hundreds of
//! thousands of nodes, not the few thousand the full simulator can settle
//! per CI run. This experiment re-runs the paired cap sweep with every
//! member answered by the `hsw-analytic` closed form — microseconds per
//! chip instead of seconds — which makes a ≥1M-node fleet routine. A
//! deterministic spot-check sample still runs the full simulator at fleet
//! scale (same node seeds, same warm image as a full-fidelity fleet), so
//! the surrogate's divergence is measured in the same run that uses it.
//!
//! Unlike the base experiment this one is *always* surrogate-backed: the
//! fidelity tier sets the scale (and the spot-checked members' settle and
//! measurement windows), not the answer path. It is also platform-generic
//! — the envelope derives from the selected platform's spec, so the
//! Skylake-SP backend sweeps its own SKU.

use hsw_fleet::{Spread, VariationModel};
use hsw_node::EngineMode;
use serde::{Deserialize, Serialize};

use super::fleet_cap_spread::{
    fleet_warmup_spec, measure_member, member_rel_err, surrogate_member, SpotRecord,
    FLEET_SPOT_REL_ERR_GATE,
};
use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// Fleet size per fidelity tier when `--fleet-size` gives no override.
/// The analytic tier is the headline: a full million manufactured chips.
fn scale_for(fidelity: Fidelity) -> usize {
    match fidelity {
        Fidelity::Quick => 4_096,
        Fidelity::Paper => 65_536,
        Fidelity::Analytic => 1_048_576,
    }
}

/// The fleet under one cap level (spreads only — the per-member samples
/// of a million-node fleet stay out of the artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// PL1 cap per socket in W; `None` is the uncapped baseline.
    pub cap_w: Option<f64>,
    pub power: Spread,
    pub perf: Spread,
    pub freq: Spread,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetAnalyticScale {
    pub fleet_size: usize,
    pub points: Vec<ScalePoint>,
    /// The spot-checked members: full-simulator answers and divergence.
    pub spot_checks: Vec<SpotRecord>,
    pub table: Table,
}

impl FleetAnalyticScale {
    pub fn uncapped(&self) -> &ScalePoint {
        &self.points[0]
    }

    pub fn tightest(&self) -> &ScalePoint {
        self.points.last().expect("cap list is never empty")
    }

    /// Worst surrogate-vs-simulator divergence across all spot checks.
    pub fn spot_worst(&self) -> f64 {
        self.spot_checks
            .iter()
            .map(|s| s.worst_rel_err)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for FleetAnalyticScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

pub fn run(fidelity: Fidelity) -> FleetAnalyticScale {
    run_seeded(fidelity, 0)
}

/// Like [`run`] with the survey runner's seed derivation.
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> FleetAnalyticScale {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> FleetAnalyticScale {
    let n = ctx.fleet_size_override().unwrap_or(scale_for(ctx.fidelity));
    let platform = ctx.platform();
    let model = VariationModel::paper_fleet();
    let mut spot_checks = Vec::new();
    let run_cap = |cap_w: Option<f64>, spot_checks: &mut Vec<SpotRecord>| {
        let mut nominal = platform.spec.clone();
        if let Some(cap) = cap_w {
            nominal.sku.tdp_w = cap;
        }
        let eet = platform.eet_enabled;
        // Unsalted: every cap level manufactures the same chips and
        // spot-checks the same ids (a paired fleet, like the base
        // experiment).
        let members = ctx.sweep_fleet_surrogate(
            n,
            &model,
            |builder| fleet_warmup_spec(builder, ctx.fidelity, nominal.clone()),
            |node, _var, _id, _seed| measure_member(ctx.fidelity, node),
            |var, _id, _seed| surrogate_member(&nominal, eet, var),
        );
        for (id, m) in members.iter().enumerate() {
            if let Some(full) = m.checked {
                spot_checks.push(SpotRecord {
                    cap_w,
                    id,
                    surrogate: m.value,
                    full,
                    worst_rel_err: member_rel_err(&m.value, &full),
                });
            }
        }
        ScalePoint {
            cap_w,
            power: Spread::of(&members.iter().map(|m| m.value.pkg_w).collect::<Vec<_>>()),
            perf: Spread::of(&members.iter().map(|m| m.value.gips).collect::<Vec<_>>()),
            freq: Spread::of(&members.iter().map(|m| m.value.core_ghz).collect::<Vec<_>>()),
        }
    };
    // Platform-generic cap ladder: the tight cap is set 20% below the
    // uncapped fleet's own mean metered power, so it binds on any SKU
    // (a fixed TDP fraction can sit above what a partial load draws).
    let uncapped = run_cap(None, &mut spot_checks);
    let tight = run_cap(Some(0.8 * uncapped.power.mean), &mut spot_checks);
    let points = vec![uncapped, tight];

    let mut t = Table::new(
        format!(
            "Fleet cap spread at scale: {n} nodes on the analytic surrogate, \
             {} members spot-checked against the full simulator",
            spot_checks.len()
        ),
        vec![
            "PL1 cap [W]",
            "power mean [W]",
            "power spread",
            "perf mean [GIPS]",
            "perf spread",
            "freq mean [GHz]",
            "freq spread",
            "spot worst err",
        ],
    );
    for p in &points {
        let worst = spot_checks
            .iter()
            .filter(|s| s.cap_w == p.cap_w)
            .map(|s| s.worst_rel_err)
            .fold(0.0, f64::max);
        t.row(vec![
            p.cap_w
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "uncapped".to_string()),
            format!("{:.1}", p.power.mean),
            format!("{:.1}%", p.power.rel_spread * 100.0),
            format!("{:.2}", p.perf.mean),
            format!("{:.1}%", p.perf.rel_spread * 100.0),
            format!("{:.2}", p.freq.mean),
            format!("{:.1}%", p.freq.rel_spread * 100.0),
            format!("{:.2}%", worst * 100.0),
        ]);
    }
    FleetAnalyticScale {
        fleet_size: n,
        points,
        spot_checks,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fleet_analytic_scale"
    }
    fn anchor(&self) -> &'static str {
        "Beyond the paper"
    }
    fn title(&self) -> &'static str {
        "Million-node cap-spread sweep on the analytic surrogate"
    }
    fn supports_surrogate(&self) -> bool {
        true
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let (un, tight) = (r.uncapped(), r.tightest());
        out.metric("fleet_size", r.fleet_size as f64);
        out.metric("uncapped_perf_spread", un.perf.rel_spread);
        out.metric("capped_perf_spread", tight.perf.rel_spread);
        out.metric("spot_worst_rel_err", r.spot_worst());
        let single = r.fleet_size <= 1;
        out.check(
            "tight cap expands performance spread beyond uncapped",
            single || tight.perf.rel_spread > un.perf.rel_spread,
            format!(
                "perf spread {:.1}% capped vs {:.1}% uncapped (n = {})",
                tight.perf.rel_spread * 100.0,
                un.perf.rel_spread * 100.0,
                r.fleet_size
            ),
        );
        out.check(
            "tight cap collapses power spread below uncapped",
            single || tight.power.rel_spread < un.power.rel_spread,
            format!(
                "power spread {:.1}% capped vs {:.1}% uncapped",
                tight.power.rel_spread * 100.0,
                un.power.rel_spread * 100.0
            ),
        );
        if let Some(cap) = tight.cap_w {
            out.check(
                "capped fleet converges onto the metered cap",
                (tight.power.mean - cap).abs() < 0.10 * cap,
                format!("mean {:.1} W vs cap {cap:.0} W", tight.power.mean),
            );
        }
        out.check(
            "fleet-scale spot checks agree with the full simulator",
            r.spot_worst() < FLEET_SPOT_REL_ERR_GATE,
            format!(
                "worst divergence {:.2}% over {} checks (gate {:.0}%)",
                r.spot_worst() * 100.0,
                r.spot_checks.len(),
                FLEET_SPOT_REL_ERR_GATE * 100.0
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_node::PlatformKind;

    fn scale() -> &'static FleetAnalyticScale {
        static CACHE: std::sync::OnceLock<FleetAnalyticScale> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| {
            let ctx = RunCtx::new(Fidelity::Quick, 0x5343_414C_4501, EngineMode::default())
                .with_fleet_size(Some(256));
            run_ctx(&ctx)
        })
    }

    #[test]
    fn surrogate_fleet_reproduces_the_spread_inversion() {
        let f = scale();
        let (un, tight) = (f.uncapped(), f.tightest());
        assert!(tight.perf.rel_spread > un.perf.rel_spread);
        assert!(tight.power.rel_spread < un.power.rel_spread);
    }

    #[test]
    fn capped_surrogate_fleet_sits_on_the_cap() {
        let tight = scale().tightest();
        let cap = tight.cap_w.unwrap();
        assert!(
            (tight.power.mean - cap).abs() < 0.10 * cap,
            "mean {:.1} W vs cap {cap:.0} W",
            tight.power.mean
        );
    }

    #[test]
    fn spot_checks_run_and_stay_inside_the_gate() {
        let f = scale();
        assert!(!f.spot_checks.is_empty());
        assert!(
            f.spot_worst() < FLEET_SPOT_REL_ERR_GATE,
            "worst {:.3}",
            f.spot_worst()
        );
    }

    #[test]
    fn fidelity_sets_the_scale_and_analytic_hits_a_million() {
        assert!(scale_for(Fidelity::Analytic) >= 1_000_000);
        assert!(scale_for(Fidelity::Quick) < scale_for(Fidelity::Paper));
        let ctx = RunCtx::new(Fidelity::Quick, 1, EngineMode::default()).with_fleet_size(Some(8));
        assert_eq!(run_ctx(&ctx).fleet_size, 8);
    }

    #[test]
    fn skylake_fleet_cap_binds_on_its_own_envelope() {
        let ctx = RunCtx::new(Fidelity::Quick, 2, EngineMode::default())
            .with_platform(PlatformKind::SkylakeSp)
            .with_fleet_size(Some(24));
        let r = run_ctx(&ctx);
        let cap = r.tightest().cap_w.unwrap();
        assert_eq!(cap, 0.8 * r.uncapped().power.mean);
        assert!(
            (r.tightest().power.mean - cap).abs() < 0.10 * cap,
            "mean {:.1} W vs cap {cap:.1} W",
            r.tightest().power.mean
        );
        assert!(r.tightest().perf.rel_spread > r.uncapped().perf.rel_spread);
    }
}
