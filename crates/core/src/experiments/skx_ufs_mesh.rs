//! Skylake-SP: mesh (uncore) frequency scaling per core-frequency setting
//! (follow-up survey, arXiv:1905.12468 Section V).
//!
//! Skylake-SP replaces Haswell's ring with a mesh interconnect and gives
//! each *socket's* uncore a 1.2–2.4 GHz UFS range that the firmware scales
//! with the configured core frequency and the observed memory pressure.
//! This experiment replays the Table III methodology on the Xeon Platinum
//! 8170 node: a single spinning thread on socket 0, both sockets' uncore
//! clocks sampled per setting, plus the stalled (memory-bound) and
//! EPB=performance variants that pin the mesh at its ceiling.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_node::{CpuId, EngineMode, Platform, PlatformKind, Resolution};
use hsw_tools::PerfCtr;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// One measured row of the mesh-frequency table.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SkxUfsPoint {
    pub setting_mhz: Option<u32>, // None = Turbo
    /// Socket 0 (one spinning thread), EPB balanced.
    pub active_uncore_ghz: f64,
    /// Socket 1 (idle), EPB balanced.
    pub passive_uncore_ghz: f64,
    /// Socket 0 running the memory-bound kernel: stall pressure lifts the
    /// mesh to its ceiling regardless of the core setting.
    pub stalled_uncore_ghz: f64,
    /// Socket 0 spinning with EPB = performance.
    pub active_uncore_perf_epb_ghz: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkxUfsMesh {
    pub points: Vec<SkxUfsPoint>,
    pub table: Table,
}

impl std::fmt::Display for SkxUfsMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Measure both sockets' uncore clocks under one profile/setting/EPB.
fn measure(
    ctx: &RunCtx,
    profile: &WorkloadProfile,
    setting: FreqSetting,
    epb: EpbClass,
    measure_s: f64,
    seed: u64,
) -> (f64, f64) {
    let mut node = ctx
        .session()
        .seed(seed)
        .resolution(Resolution::Custom(100))
        .build();
    node.run_on_socket(0, profile, 1, 1);
    node.set_epb_all(epb);
    node.set_setting_all(setting);
    node.advance_s(0.1);

    let pc0 = PerfCtr::new(&node, CpuId::new(0, 0, 0));
    let pc1 = PerfCtr::new(&node, CpuId::new(1, 0, 0));
    let a0 = pc0.sample(&node);
    let b0 = pc1.sample(&node);
    node.advance_s(measure_s);
    let a1 = pc0.sample(&node);
    let b1 = pc1.sample(&node);
    (
        pc0.derive(&a0, &a1).uncore_ghz,
        pc1.derive(&b0, &b1).uncore_ghz,
    )
}

/// Standalone entry point with a fixed legacy seed (the survey runner
/// derives its own per-experiment seed through [`Experiment::run`]).
pub fn run(fidelity: Fidelity) -> SkxUfsMesh {
    let ctx =
        RunCtx::new(fidelity, 0, EngineMode::default()).with_platform(PlatformKind::SkylakeSp);
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> SkxUfsMesh {
    let sku = Platform::skylake_sp().spec.sku;
    let settings = sku.freq.all_settings();
    let secs = ctx.fidelity.table3_measure_s();

    let points: Vec<SkxUfsPoint> = settings
        .par_iter()
        .enumerate()
        .map(|(i, s)| {
            let spin = WorkloadProfile::busy_wait();
            let mem = WorkloadProfile::memory_bound();
            let seed = |salt: u64| crate::survey::mix_seed(ctx.seed, salt * 1000 + i as u64);
            let (active, passive) = measure(ctx, &spin, *s, EpbClass::Balanced, secs, seed(0));
            let (stalled, _) = measure(ctx, &mem, *s, EpbClass::Balanced, secs, seed(1));
            let (active_perf, _) = measure(ctx, &spin, *s, EpbClass::Performance, secs, seed(2));
            SkxUfsPoint {
                setting_mhz: match s {
                    FreqSetting::Turbo => None,
                    FreqSetting::Fixed(p) => Some(p.mhz()),
                },
                active_uncore_ghz: active,
                passive_uncore_ghz: passive,
                stalled_uncore_ghz: stalled,
                active_uncore_perf_epb_ghz: active_perf,
            }
        })
        .collect();

    let mut t = Table::new(
        "Skylake-SP: mesh frequency vs. core setting (spin on socket 0 of the 2x Platinum 8170 node)",
        vec![
            "Core frequency setting",
            "Active mesh [GHz]",
            "Passive mesh [GHz]",
            "Stalled mesh [GHz]",
            "Active w/ EPB=perf [GHz]",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    for p in &points {
        t.row(vec![
            p.setting_mhz
                .map(|m| format!("{:.1}", m as f64 / 1000.0))
                .unwrap_or_else(|| "Turbo".to_string()),
            format!("{:.2}", p.active_uncore_ghz),
            format!("{:.2}", p.passive_uncore_ghz),
            format!("{:.2}", p.stalled_uncore_ghz),
            format!("{:.2}", p.active_uncore_perf_epb_ghz),
        ]);
    }
    SkxUfsMesh { points, table: t }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "skx_ufs_mesh"
    }
    fn anchor(&self) -> &'static str {
        "arXiv:1905.12468 Section V"
    }
    fn title(&self) -> &'static str {
        "Mesh (uncore) frequency scaling on Skylake-SP"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let turbo = r.points[0];
        let floor = r.points.last().unwrap();
        let min_stalled = r
            .points
            .iter()
            .map(|p| p.stalled_uncore_ghz)
            .fold(f64::INFINITY, f64::min);
        out.metric("turbo_active_mesh_ghz", turbo.active_uncore_ghz);
        out.metric("floor_active_mesh_ghz", floor.active_uncore_ghz);
        out.metric("min_stalled_mesh_ghz", min_stalled);
        out.check(
            "the mesh tops out at 2.4 GHz under the Turbo setting",
            (turbo.active_uncore_ghz - 2.4).abs() < 0.08,
            format!("{:.2} GHz", turbo.active_uncore_ghz),
        );
        out.check(
            "the mesh floor is 1.2 GHz at the lowest core setting",
            (floor.active_uncore_ghz - 1.2).abs() < 0.08,
            format!("{:.2} GHz", floor.active_uncore_ghz),
        );
        out.check(
            "memory stalls pin the mesh near its ceiling at every setting",
            min_stalled > 2.4 - 0.1,
            format!("minimum stalled mesh clock {min_stalled:.2} GHz"),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;

    fn cached() -> &'static SkxUfsMesh {
        static CACHE: std::sync::OnceLock<SkxUfsMesh> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn reproduces_the_skx_ufs_schedule() {
        let r = cached();
        assert_eq!(r.points.len(), calib::skx::UFS_ACTIVE_SCHEDULE_MHZ.len());
        for (i, p) in r.points.iter().enumerate() {
            let expect = calib::skx::UFS_ACTIVE_SCHEDULE_MHZ[i] as f64 / 1000.0;
            assert!(
                (p.active_uncore_ghz - expect).abs() < 0.08,
                "row {i}: active {:.2} vs schedule {expect:.2}",
                p.active_uncore_ghz
            );
            assert!(
                p.passive_uncore_ghz <= p.active_uncore_ghz + 0.05,
                "row {i}: passive {:.2} above active {:.2}",
                p.passive_uncore_ghz,
                p.active_uncore_ghz
            );
        }
    }

    #[test]
    fn stalls_and_perf_epb_pin_the_mesh_ceiling() {
        for (i, p) in cached().points.iter().enumerate() {
            assert!(
                (p.stalled_uncore_ghz - 2.4).abs() < 0.1,
                "row {i}: stalled {:.2}",
                p.stalled_uncore_ghz
            );
            assert!(
                (p.active_uncore_perf_epb_ghz - 2.4).abs() < 0.1,
                "row {i}: perf-EPB {:.2}",
                p.active_uncore_perf_epb_ghz
            );
        }
    }
}
