//! Figures 5 and 6 — idle (c-state) transition latencies for C3 and C6 in
//! the local, remote-active, and remote-idle (package c-state) scenarios,
//! compared against Sandy Bridge-EP (paper Section VI-B).

use hsw_cstates::{CoreCState, WakeScenario};
use hsw_hwspec::CpuGeneration;
use hsw_node::EngineMode;
use hsw_tools::cstate_lat::{sweep_series, CStateLatencyPoint};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::survey::{mix_seed, RunCtx};
use crate::Fidelity;

/// One plotted series: a generation × state × scenario sweep over frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig56Series {
    pub generation: String,
    pub state: String,
    pub scenario: String,
    pub points: Vec<(f64, f64)>, // (GHz, µs)
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig56 {
    pub series: Vec<Fig56Series>,
}

impl Fig56 {
    pub fn series_for(
        &self,
        generation: &str,
        state: &str,
        scenario: &str,
    ) -> Option<&Fig56Series> {
        self.series
            .iter()
            .find(|s| s.generation == generation && s.state == state && s.scenario == scenario)
    }
}

impl std::fmt::Display for Fig56 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figures 5/6: wake-up latencies [µs] by core frequency [GHz]"
        )?;
        for s in &self.series {
            write!(
                f,
                "  {:<14} {:<3} {:<13}:",
                s.generation, s.state, s.scenario
            )?;
            for (ghz, us) in &s.points {
                write!(f, " {ghz:.1}:{us:.1}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

pub fn run(fidelity: Fidelity) -> Fig56 {
    run_seeded(fidelity, 0)
}

/// Like [`run`] but with node and wake-timing seeds derived from `seed`
/// via the sweep executor (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Fig56 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> Fig56 {
    let iterations = ctx.fidelity.fig56_iterations();
    let jobs: Vec<(CpuGeneration, CoreCState, WakeScenario)> =
        [CpuGeneration::HaswellEp, CpuGeneration::SandyBridgeEp]
            .into_iter()
            .flat_map(|g| {
                [CoreCState::C3, CoreCState::C6]
                    .into_iter()
                    .flat_map(move |st| WakeScenario::ALL.into_iter().map(move |sc| (g, st, sc)))
            })
            .collect();

    let series: Vec<Fig56Series> = ctx.sweep(&jobs, |(generation, state, scenario), seed| {
        // All scenarios are staged on the paper's Haswell-EP node; the
        // SNB generation parameter selects the grey reference latency
        // model (its frequency range is mapped onto the same axis). The
        // point seed splits into independent node and wake-timing streams.
        let mut node = ctx.session().seed(mix_seed(seed, 0)).build();
        let mut rng = SmallRng::seed_from_u64(mix_seed(seed, 1));
        let pts: Vec<CStateLatencyPoint> = sweep_series(
            &mut node,
            *generation,
            *state,
            *scenario,
            iterations,
            &mut rng,
        );
        Fig56Series {
            generation: generation.name().to_string(),
            state: state.name().to_string(),
            scenario: scenario.name().to_string(),
            points: pts.iter().map(|p| (p.freq_ghz, p.latency_us)).collect(),
        }
    });
    Fig56 { series }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig56"
    }
    fn anchor(&self) -> &'static str {
        "Figures 5 and 6"
    }
    fn title(&self) -> &'static str {
        "C-state wake-up latencies vs. Sandy Bridge-EP"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let nearest = |s: &Fig56Series, ghz: f64| -> f64 {
            s.points
                .iter()
                .min_by(|a, b| (a.0 - ghz).abs().total_cmp(&(b.0 - ghz).abs()))
                .map(|p| p.1)
                .unwrap_or(f64::NAN)
        };
        let hsw_c3 = r.series_for("Haswell-EP", "C3", "local");
        let hsw_c6 = r.series_for("Haswell-EP", "C6", "local");
        let snb_c6 = r.series_for("Sandy Bridge-EP", "C6", "local");
        if let (Some(c3), Some(c6)) = (hsw_c3, hsw_c6) {
            let c3_us = nearest(c3, 2.0);
            let c6_us = nearest(c6, 2.0);
            out.metric("hsw_c3_local_us_at_2ghz", c3_us);
            out.metric("hsw_c6_local_us_at_2ghz", c6_us);
            out.check(
                "C6 wakes are slower than C3 wakes (local, 2.0 GHz)",
                c6_us > c3_us,
                format!("C6 {c6_us:.1} us vs C3 {c3_us:.1} us"),
            );
        }
        if let (Some(hsw), Some(snb)) = (hsw_c6, snb_c6) {
            let h = nearest(hsw, 2.0);
            let s = nearest(snb, 2.0);
            out.check(
                "Haswell improves on Sandy Bridge for deep c-states",
                h < s,
                format!("HSW {h:.1} us vs SNB {s:.1} us"),
            );
        }
        out.check(
            "all twelve generation x state x scenario series were swept",
            r.series.len() == 12,
            format!("{} series", r.series.len()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib::cstate as cal;

    fn fig() -> &'static Fig56 {
        static CACHE: std::sync::OnceLock<Fig56> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    fn latency_at(s: &Fig56Series, ghz: f64) -> f64 {
        s.points
            .iter()
            .min_by(|a, b| (a.0 - ghz).abs().total_cmp(&(b.0 - ghz).abs()))
            .unwrap()
            .1
    }

    #[test]
    fn c3_local_has_the_1_5us_step() {
        let f = fig();
        let s = f.series_for("Haswell-EP", "C3", "local").unwrap();
        let low = latency_at(s, 1.3);
        let high = latency_at(s, 2.3);
        assert!(
            (high - low - cal::C3_HIGHFREQ_STEP_US).abs() < 0.3,
            "{low} vs {high}"
        );
    }

    #[test]
    fn c6_remote_idle_is_the_slowest_scenario() {
        let f = fig();
        for ghz in [1.2, 2.0, 2.5] {
            let local = latency_at(f.series_for("Haswell-EP", "C6", "local").unwrap(), ghz);
            let ra = latency_at(
                f.series_for("Haswell-EP", "C6", "remote active").unwrap(),
                ghz,
            );
            let ri = latency_at(
                f.series_for("Haswell-EP", "C6", "remote idle").unwrap(),
                ghz,
            );
            assert!(local < ra && ra < ri, "{local} {ra} {ri} at {ghz}");
        }
    }

    #[test]
    fn package_c6_costs_8us_over_package_c3() {
        let f = fig();
        let c3 = latency_at(
            f.series_for("Haswell-EP", "C3", "remote idle").unwrap(),
            2.0,
        );
        let c6 = latency_at(
            f.series_for("Haswell-EP", "C6", "remote idle").unwrap(),
            2.0,
        );
        // The delta also contains the frequency-dependent C6 restore.
        assert!(c6 - c3 > cal::PKG_C6_EXTRA_US, "{}", c6 - c3);
    }

    #[test]
    fn haswell_improves_on_sandy_bridge_for_deep_states() {
        // Conclusions: "transition latencies from deep c-states have
        // slightly improved" (grey curves sit above).
        let f = fig();
        for st in ["C3", "C6"] {
            for sc in ["local", "remote active", "remote idle"] {
                let hsw = latency_at(f.series_for("Haswell-EP", st, sc).unwrap(), 2.0);
                let snb = latency_at(f.series_for("Sandy Bridge-EP", st, sc).unwrap(), 2.0);
                assert!(snb > hsw, "{st}/{sc}: SNB {snb} vs HSW {hsw}");
            }
        }
    }

    #[test]
    fn everything_stays_below_the_acpi_tables() {
        let f = fig();
        for s in &f.series {
            for (ghz, us) in &s.points {
                let bound = if s.state == "C3" {
                    cal::ACPI_C3_US
                } else {
                    cal::ACPI_C6_US
                };
                assert!(
                    us < &bound,
                    "{}/{}/{} at {ghz}: {us}",
                    s.generation,
                    s.state,
                    s.scenario
                );
            }
        }
    }

    #[test]
    fn c6_latency_falls_with_frequency() {
        let f = fig();
        let s = f.series_for("Haswell-EP", "C6", "local").unwrap();
        assert!(latency_at(s, 1.2) > latency_at(s, 2.5) + 3.0);
    }
}
