//! Fleet straggler collective — beyond the paper, after Schuchart et al.
//!
//! A bulk-synchronous (barrier) collective finishes when its *slowest*
//! member finishes: fleet completion time is `work / min(throughput)`, not
//! `work / mean(throughput)`. Uncapped, the members differ by at most a
//! turbo bin and the straggler penalty is small; under a tight package
//! power cap the electrical spread becomes frequency spread
//! (`fleet_cap_spread`), the slowest chip lags further behind, and every
//! other chip waits at the barrier — the fleet-level cost of power capping
//! that per-node metrics hide.

use hsw_fleet::{Spread, VariationModel};
use hsw_node::EngineMode;
use serde::{Deserialize, Serialize};

use crate::experiments::fleet_cap_spread::{fleet_warmup, measure_member, MemberSample};
use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// Work per member of the collective, in giga-instructions. The absolute
/// number only scales the time axis; penalties are ratios.
const WORK_GI: f64 = 100.0;

/// Barrier statistics of the fleet under one cap level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StragglerPoint {
    /// PL1 cap per socket in W; `None` is the uncapped baseline.
    pub cap_w: Option<f64>,
    /// Effective core frequency across the fleet (GHz).
    pub freq: Spread,
    /// Per-member completion time of [`WORK_GI`] giga-instructions (s).
    pub time: Spread,
    /// Barrier completion time: the slowest member's time (s).
    pub completion_s: f64,
    /// Straggler penalty: completion time over the mean member time
    /// (1.0 = perfectly balanced fleet).
    pub penalty: f64,
    /// Member that finished last.
    pub slowest_by_time: usize,
    /// Member with the lowest effective core frequency.
    pub slowest_by_freq: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetStraggler {
    pub fleet_size: usize,
    pub points: Vec<StragglerPoint>,
    pub table: Table,
}

impl std::fmt::Display for FleetStraggler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

impl FleetStraggler {
    pub fn uncapped(&self) -> &StragglerPoint {
        &self.points[0]
    }

    pub fn tightest(&self) -> &StragglerPoint {
        self.points.last().expect("cap list is never empty")
    }
}

fn argmin_by<F: Fn(&MemberSample) -> f64>(members: &[MemberSample], f: F) -> usize {
    let mut best = 0;
    for (i, m) in members.iter().enumerate() {
        if f(m) < f(&members[best]) {
            best = i;
        }
    }
    best
}

pub fn run(fidelity: Fidelity) -> FleetStraggler {
    run_seeded(fidelity, 0)
}

/// Like [`run`] with the survey runner's seed derivation.
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> FleetStraggler {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

pub(crate) fn run_ctx(ctx: &RunCtx) -> FleetStraggler {
    let n = ctx.fleet_size();
    let model = VariationModel::paper_fleet();
    // The barrier story only needs its two endpoints: uncapped and the
    // tightest cap.
    let caps_all = ctx.fidelity.fleet_caps_w();
    let caps = [
        caps_all[0],
        *caps_all.last().expect("cap list is never empty"),
    ];
    let points: Vec<StragglerPoint> = caps
        .iter()
        .map(|&cap_w| {
            // Same sweep base at both cap levels (and as `fleet_cap_spread`
            // under the same experiment seed schedule): paired chips.
            let members = ctx.sweep_fleet(
                n,
                &model,
                |builder| fleet_warmup(builder, ctx.fidelity, cap_w),
                |node, _var, _id, _seed| measure_member(ctx.fidelity, node),
            );
            let times: Vec<f64> = members.iter().map(|m| WORK_GI / m.gips).collect();
            let time = Spread::of(&times);
            let freq = Spread::of(&members.iter().map(|m| m.core_ghz).collect::<Vec<_>>());
            StragglerPoint {
                cap_w,
                freq,
                completion_s: time.max,
                penalty: if time.mean > 0.0 {
                    time.max / time.mean
                } else {
                    1.0
                },
                slowest_by_time: argmin_by(&members, |m| m.gips),
                slowest_by_freq: argmin_by(&members, |m| m.core_ghz),
                time,
            }
        })
        .collect();

    let mut t = Table::new(
        format!(
            "Fleet straggler collective: {n} nodes at a barrier, \
             {WORK_GI:.0} GI per member"
        ),
        vec![
            "PL1 cap [W]",
            "mean time [s]",
            "completion [s]",
            "penalty",
            "slowest freq [GHz]",
            "mean freq [GHz]",
        ],
    );
    for p in &points {
        t.row(vec![
            p.cap_w
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "uncapped".to_string()),
            format!("{:.2}", p.time.mean),
            format!("{:.2}", p.completion_s),
            format!("{:.3}", p.penalty),
            format!("{:.2}", p.freq.min),
            format!("{:.2}", p.freq.mean),
        ]);
    }
    FleetStraggler {
        fleet_size: n,
        points,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fleet_straggler"
    }
    fn anchor(&self) -> &'static str {
        "Beyond the paper"
    }
    fn title(&self) -> &'static str {
        "Barrier collectives pay for the slowest chip under a cap"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let (un, tight) = (r.uncapped(), r.tightest());
        out.metric("uncapped_penalty", un.penalty);
        out.metric("capped_penalty", tight.penalty);
        out.metric("capped_completion_s", tight.completion_s);
        let single = r.fleet_size <= 1;
        out.check(
            "straggler penalty is never below 1",
            r.points.iter().all(|p| p.penalty >= 1.0),
            format!(
                "penalties {:?}",
                r.points.iter().map(|p| p.penalty).collect::<Vec<_>>()
            ),
        );
        out.check(
            "a tight cap worsens the straggler penalty",
            single || tight.penalty > un.penalty,
            format!(
                "penalty {:.3} capped vs {:.3} uncapped (n = {})",
                tight.penalty, un.penalty, r.fleet_size
            ),
        );
        out.check(
            "completion time tracks the slowest chip's frequency",
            tight.slowest_by_time == tight.slowest_by_freq,
            format!(
                "slowest by time: node {}, by frequency: node {}",
                tight.slowest_by_time, tight.slowest_by_freq
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> &'static FleetStraggler {
        static CACHE: std::sync::OnceLock<FleetStraggler> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run_seeded(Fidelity::Quick, 0x464C_4545_5402))
    }

    #[test]
    fn completion_is_the_slowest_member() {
        for p in &fleet().points {
            assert_eq!(p.completion_s, p.time.max);
            assert!(p.completion_s >= p.time.mean);
        }
    }

    #[test]
    fn tight_cap_worsens_the_penalty() {
        let f = fleet();
        assert!(
            f.tightest().penalty > f.uncapped().penalty,
            "capped {:.3} vs uncapped {:.3}",
            f.tightest().penalty,
            f.uncapped().penalty
        );
        assert!(f.uncapped().penalty >= 1.0);
    }

    #[test]
    fn slowest_chip_is_the_lowest_frequency_chip() {
        let p = fleet().tightest();
        assert_eq!(p.slowest_by_time, p.slowest_by_freq);
    }

    #[test]
    fn capped_completion_takes_longer() {
        let f = fleet();
        assert!(f.tightest().completion_s > f.uncapped().completion_s);
    }

    #[test]
    fn single_node_fleet_has_unit_penalty() {
        let ctx = RunCtx::new(Fidelity::Quick, 7, EngineMode::default()).with_fleet_size(Some(1));
        let r = run_ctx(&ctx);
        for p in &r.points {
            assert_eq!(p.penalty, 1.0);
            assert!(p.completion_s.is_finite() && p.completion_s > 0.0);
            assert_eq!(p.slowest_by_time, 0);
        }
    }
}
