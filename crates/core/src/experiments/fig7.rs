//! Figure 7 — scaling of shared L3 and main-memory read bandwidth with
//! core frequency at maximum thread concurrency, normalized to the base
//! frequency, across Westmere-EP / Sandy Bridge-EP / Haswell-EP
//! (paper Section VII).
//!
//! The measurement uses the paper's working sets (17 MB for L3, 350 MB for
//! DRAM — validated against the functional cache hierarchy) and the
//! generation-specific uncore clocking rules.

use hsw_hwspec::{CpuGeneration, SkuSpec};
use hsw_memhier::bandwidth::{
    benchmark_uncore_ghz, dram_read_bandwidth_gbs, l3_read_bandwidth_gbs, MemoryLevel,
};
use serde::{Deserialize, Serialize};

use crate::Table;

/// One generation's normalized bandwidth curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Series {
    pub generation: String,
    /// (relative frequency = f/f_base, relative bandwidth = bw/bw_base)
    pub points: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    pub l3: Vec<Fig7Series>,
    pub dram: Vec<Fig7Series>,
}

impl Fig7 {
    pub fn series(&self, panel_l3: bool, generation: &str) -> Option<&Fig7Series> {
        let v = if panel_l3 { &self.l3 } else { &self.dram };
        v.iter().find(|s| s.generation == generation)
    }

    /// Relative bandwidth at the lowest relative frequency of a series.
    pub fn low_end(&self, panel_l3: bool, generation: &str) -> f64 {
        let s = self.series(panel_l3, generation).unwrap();
        s.points
            .iter()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap()
            .1
    }
}

impl std::fmt::Display for Fig7 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, panel) in [
            ("(a) relative L3 read bandwidth", &self.l3),
            ("(b) relative DRAM read bandwidth", &self.dram),
        ] {
            let mut t = Table::new(
                format!("Figure 7 {name} vs relative core frequency"),
                vec![
                    "generation".to_string(),
                    "points (f/f0 -> bw/bw0)".to_string(),
                ],
            );
            for s in panel {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|(x, y)| format!("{x:.2}->{y:.2}"))
                    .collect();
                t.row(vec![s.generation.clone(), pts.join("  ")]);
            }
            writeln!(f, "{t}")?;
        }
        Ok(())
    }
}

fn sku_for(generation: CpuGeneration) -> SkuSpec {
    // The comparison plot pairs each generation with its test chip.
    // lint:allow(M5): SKU selection is experiment fixture data, not firmware behavior.
    match generation {
        CpuGeneration::WestmereEp => SkuSpec::xeon_x5670(),
        CpuGeneration::SandyBridgeEp | CpuGeneration::IvyBridgeEp => SkuSpec::xeon_e5_2690(),
        _ => SkuSpec::xeon_e5_2680_v3(),
    }
}

/// Working sets from the paper (Section VII).
pub const L3_WORKING_SET: usize = 17 * 1024 * 1024;
pub const DRAM_WORKING_SET: usize = 350 * 1024 * 1024;

fn series(generation: CpuGeneration, l3: bool) -> Fig7Series {
    series_with_sku(&sku_for(generation), generation, l3)
}

fn series_with_sku(sku: &SkuSpec, generation: CpuGeneration, l3: bool) -> Fig7Series {
    let sku = sku.clone();
    debug_assert_eq!(
        MemoryLevel::classify(&sku, if l3 { L3_WORKING_SET } else { DRAM_WORKING_SET }),
        if l3 && sku.cache.l3_total_kib(sku.cores) * 1024 >= L3_WORKING_SET {
            MemoryLevel::L3
        } else {
            MemoryLevel::Dram
        }
    );
    let base_ghz = sku.freq.base_mhz as f64 / 1000.0;
    let cores = sku.cores;
    let tpc = sku.threads_per_core; // maximum thread concurrency
    let bw = |f_core: f64| {
        let f_unc = benchmark_uncore_ghz(&sku, f_core);
        if l3 {
            l3_read_bandwidth_gbs(&sku, cores, tpc, f_core, f_unc)
        } else {
            dram_read_bandwidth_gbs(&sku, cores, tpc, f_core, f_unc)
        }
    };
    let base_bw = bw(base_ghz);
    let mut points = Vec::new();
    let mut mhz = sku.freq.min_mhz;
    while mhz < sku.freq.base_mhz {
        let f = mhz as f64 / 1000.0;
        points.push((f / base_ghz, bw(f) / base_bw));
        mhz += 100;
    }
    // The exact base frequency anchors the normalization (Westmere's
    // 2.93 GHz is not a multiple of 100 MHz).
    points.push((1.0, 1.0));
    Fig7Series {
        generation: generation.name().to_string(),
        points,
    }
}

const GENERATIONS: [CpuGeneration; 3] = [
    CpuGeneration::WestmereEp,
    CpuGeneration::SandyBridgeEp,
    CpuGeneration::HaswellEp,
];

pub fn run() -> Fig7 {
    Fig7 {
        l3: GENERATIONS.iter().map(|g| series(*g, true)).collect(),
        dram: GENERATIONS.iter().map(|g| series(*g, false)).collect(),
    }
}

/// Like [`run`] but fanning the generation × panel grid through the
/// warm-start sweep executor, sharing the resolved SKU table across all
/// points. The bandwidth model is analytic, so the derived point seeds are
/// not consumed and the result is identical to the serial [`run`] in
/// either warm-start mode.
fn run_ctx(ctx: &crate::survey::RunCtx) -> Fig7 {
    let jobs: Vec<(CpuGeneration, bool)> = GENERATIONS
        .iter()
        .flat_map(|g| [true, false].into_iter().map(move |l3| (*g, l3)))
        .collect();
    let all = ctx.sweep_warm_shared(
        &jobs,
        || -> Vec<SkuSpec> { GENERATIONS.iter().map(|g| sku_for(*g)).collect() },
        |skus, &(g, l3), _seed| {
            let idx = GENERATIONS
                .iter()
                .position(|x| *x == g)
                .expect("generation");
            series_with_sku(&skus[idx], g, l3)
        },
    );
    let (mut l3, mut dram) = (Vec::new(), Vec::new());
    for (&(_, is_l3), s) in jobs.iter().zip(all) {
        if is_l3 {
            l3.push(s);
        } else {
            dram.push(s);
        }
    }
    Fig7 { l3, dram }
}

/// Registry adapter. The bandwidth model is analytic, so the survey seed
/// is not consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig7"
    }
    fn anchor(&self) -> &'static str {
        "Figure 7"
    }
    fn title(&self) -> &'static str {
        "Bandwidth scaling with core frequency across generations"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let hsw_dram = r.low_end(false, "Haswell-EP");
        let snb_dram = r.low_end(false, "Sandy Bridge-EP");
        let hsw_l3 = r.low_end(true, "Haswell-EP");
        out.metric("hsw_dram_low_end_rel_bw", hsw_dram);
        out.metric("snb_dram_low_end_rel_bw", snb_dram);
        out.metric("hsw_l3_low_end_rel_bw", hsw_l3);
        out.check(
            "Haswell DRAM bandwidth is core-frequency independent",
            hsw_dram > 0.97,
            format!("relative bandwidth {hsw_dram:.2} at the lowest frequency"),
        );
        out.check(
            "Sandy Bridge DRAM bandwidth tracks core frequency",
            snb_dram < 0.6,
            format!("relative bandwidth {snb_dram:.2} at the lowest frequency"),
        );
        out.check(
            "Haswell L3 bandwidth strongly correlates with core frequency",
            hsw_l3 < 0.7,
            format!("relative bandwidth {hsw_l3:.2} at the lowest frequency"),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> &'static Fig7 {
        static CACHE: std::sync::OnceLock<Fig7> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn haswell_dram_is_flat() {
        // "On the Haswell-EP architecture, DRAM performance at maximal
        // concurrency does not depend on the core frequency."
        let f = fig();
        assert!(
            f.low_end(false, "Haswell-EP") > 0.98,
            "{}",
            f.low_end(false, "Haswell-EP")
        );
    }

    #[test]
    fn westmere_dram_is_flat_like_haswell() {
        // "The behavior of the Westmere-EP generation ... was similar."
        let f = fig();
        assert!(f.low_end(false, "Westmere-EP") > 0.95);
    }

    #[test]
    fn sandy_bridge_dram_tracks_core_frequency() {
        // "On Sandy Bridge-EP ... DRAM bandwidth highly dependent on core
        // frequency."
        let f = fig();
        assert!(
            f.low_end(false, "Sandy Bridge-EP") < 0.55,
            "{}",
            f.low_end(false, "Sandy Bridge-EP")
        );
    }

    #[test]
    fn haswell_l3_strongly_correlates_with_core_frequency() {
        // "the L3 bandwidth of Haswell-EP strongly correlates with the core
        // frequency. This is surprising since other processors with
        // dedicated uncore/northbridge frequencies are less influenced."
        let f = fig();
        let hsw = f.low_end(true, "Haswell-EP");
        let wsm = f.low_end(true, "Westmere-EP");
        assert!(hsw < 0.70, "HSW L3 low end {hsw}");
        assert!(wsm > hsw + 0.10, "WSM {wsm} vs HSW {hsw}");
    }

    #[test]
    fn sandy_bridge_l3_is_fully_coupled() {
        let f = fig();
        let s = f.series(true, "Sandy Bridge-EP").unwrap();
        // Linear: relative bandwidth ≈ relative frequency.
        for (x, y) in &s.points {
            assert!((x - y).abs() < 0.03, "({x:.2}, {y:.2})");
        }
    }

    #[test]
    fn curves_are_normalized_at_base() {
        let f = fig();
        for panel in [&f.l3, &f.dram] {
            for s in panel {
                let last = s.points.last().unwrap();
                assert!((last.0 - 1.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn working_sets_classify_as_the_paper_assumes() {
        let sku = SkuSpec::xeon_e5_2680_v3();
        assert_eq!(MemoryLevel::classify(&sku, L3_WORKING_SET), MemoryLevel::L3);
        assert_eq!(
            MemoryLevel::classify(&sku, DRAM_WORKING_SET),
            MemoryLevel::Dram
        );
    }
}
