//! Fleet cap-and-measure spread — beyond the paper, after Schuchart et al.
//! ("The Shift from Processor Power Consumption to Performance Variations").
//!
//! One chip under a package power cap (paper Section V) becomes a fleet
//! phenomenon at scale: with turbo uncapped, nominally identical processors
//! spread in *power* (leakage, voltage corner, metering trim differ per
//! unit) while their frequencies sit on the fused turbo bins; under a tight
//! PL1 cap the picture inverts — every chip converges onto the same metered
//! power and the electrical spread reappears as *performance* spread. This
//! experiment manufactures a fleet from the documented variation model,
//! measures each member uncapped and under each cap, and reports both
//! spreads per cap level.
//!
//! The same fleet (same node seeds, hence the same manufactured chips) is
//! measured at every cap level, so the spread inversion is paired per chip
//! rather than a statistical accident of resampling.

use hsw_analytic::{AnalyticModel, OperatingPoint};
use hsw_exec::WorkloadProfile;
use hsw_fleet::{ChipVariation, Spread, VariationModel};
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{CpuId, EngineMode, Node, Resolution};
use hsw_tools::perfctr::PerfCtr;
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::{rel_err, RunCtx};
use crate::Fidelity;

/// Cores driven per socket. Deliberately a partial load (5 of 12 cores,
/// no HT): the uncapped fleet must run *below* TDP — including its
/// worst-leakage, slowest-corner members — so the cap levels are what
/// introduce power limiting, not the workload itself.
pub(crate) const CORES_PER_SOCKET: usize = 5;

/// One fleet member's steady-state measurement.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MemberSample {
    /// Mean measured package power across the two sockets (W). Raw counter
    /// deltas converted with the *nominal* energy unit, as real measurement
    /// software does — a chip's metering trim is part of the reading.
    pub pkg_w: f64,
    /// Node throughput: giga-instructions per second summed over sockets.
    pub gips: f64,
    /// Mean effective core frequency across the two sockets (GHz).
    pub core_ghz: f64,
}

/// Settle a forked fleet member under its own electrical identity, then
/// measure one steady-state window. Shared with the straggler experiment.
pub(crate) fn measure_member(fid: Fidelity, node: &mut Node) -> MemberSample {
    // The golden snapshot converged with the *nominal* chip; give this
    // unit's PCU time to re-equilibrate to its own leakage/corner/trim.
    node.advance_s(fid.fleet_settle_s());
    let pcs = [
        PerfCtr::new(node, CpuId::new(0, 0, 0)),
        PerfCtr::new(node, CpuId::new(1, 0, 0)),
    ];
    let before = [pcs[0].sample(node), pcs[1].sample(node)];
    node.advance_s(fid.fleet_measure_s());
    let d = [
        pcs[0].derive(&before[0], &pcs[0].sample(node)),
        pcs[1].derive(&before[1], &pcs[1].sample(node)),
    ];
    MemberSample {
        pkg_w: (d[0].pkg_w + d[1].pkg_w) / 2.0,
        gips: d[0].gips + d[1].gips,
        core_ghz: (d[0].core_ghz + d[1].core_ghz) / 2.0,
    }
}

/// The warmup every fleet shares, on an explicit node spec (any cap is
/// already baked into `spec.sku.tdp_w`): the partial `compute` load on
/// both sockets, turbo on. Spec-generic so the analytic-scale experiment
/// can run it on either platform.
pub(crate) fn fleet_warmup_spec(
    builder: hsw_node::SessionBuilder,
    fid: Fidelity,
    spec: hsw_hwspec::NodeSpec,
) -> hsw_node::Session {
    let mut session = builder.spec(spec).resolution(Resolution::Coarse).build();
    let wl = WorkloadProfile::compute();
    for s in 0..2 {
        session.run_on_socket(s, &wl, CORES_PER_SOCKET, 1);
    }
    session.set_turbo(true);
    session.advance_s(fid.fleet_settle_s());
    session
}

/// [`fleet_warmup_spec`] on the paper's test node under `cap_w` (PL1 per
/// socket; `None` = stock TDP).
pub(crate) fn fleet_warmup(
    builder: hsw_node::SessionBuilder,
    fid: Fidelity,
    cap_w: Option<f64>,
) -> hsw_node::Session {
    let mut spec = hsw_hwspec::NodeSpec::paper_test_node();
    if let Some(cap) = cap_w {
        spec.sku.tdp_w = cap;
    }
    fleet_warmup_spec(builder, fid, spec)
}

/// Closed-form answer for one fleet member of this experiment's workload:
/// the chip manufactured by `var` from the (already capped) `nominal`
/// spec, running partial `compute` under turbo. Mirrors
/// [`measure_member`]'s aggregation: per-socket RAPL mean, summed
/// per-socket thread throughput, mean effective core clock.
pub(crate) fn surrogate_member(
    nominal: &hsw_hwspec::NodeSpec,
    eet_enabled: bool,
    var: &ChipVariation,
) -> MemberSample {
    let model = AnalyticModel::for_chip(nominal, var, eet_enabled);
    let wl = WorkloadProfile::compute();
    let pred = model.predict(&OperatingPoint::new(
        &wl,
        FreqSetting::Turbo,
        CORES_PER_SOCKET,
    ));
    let (s0, s1) = (&pred.sockets[0], &pred.sockets[1]);
    MemberSample {
        pkg_w: (s0.pkg_w + s1.pkg_w) / 2.0,
        gips: s0.gips + s1.gips,
        core_ghz: (s0.core_ghz + s1.core_ghz) / 2.0,
    }
}

/// The fleet under one cap level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapPoint {
    /// PL1 cap per socket in W; `None` is the uncapped (stock TDP) baseline.
    pub cap_w: Option<f64>,
    /// Measured package power across the fleet.
    pub power: Spread,
    /// Node throughput across the fleet.
    pub perf: Spread,
    /// Effective core frequency across the fleet.
    pub freq: Spread,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCapSpread {
    pub fleet_size: usize,
    pub points: Vec<CapPoint>,
    pub table: Table,
}

impl std::fmt::Display for FleetCapSpread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

impl FleetCapSpread {
    /// The uncapped baseline (the cap list always starts with `None`).
    pub fn uncapped(&self) -> &CapPoint {
        &self.points[0]
    }

    /// The tightest cap (the cap list tightens monotonically).
    pub fn tightest(&self) -> &CapPoint {
        self.points.last().expect("cap list is never empty")
    }
}

/// One spot-checked fleet member: both answers and the divergence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpotRecord {
    pub cap_w: Option<f64>,
    /// Fleet node id (selects the manufactured chip).
    pub id: usize,
    pub surrogate: MemberSample,
    pub full: MemberSample,
    /// Worst relative error across the three member metrics.
    pub worst_rel_err: f64,
}

pub(crate) fn member_rel_err(sur: &MemberSample, full: &MemberSample) -> f64 {
    [
        rel_err(sur.pkg_w, full.pkg_w),
        rel_err(sur.gips, full.gips),
        rel_err(sur.core_ghz, full.core_ghz),
    ]
    .into_iter()
    .fold(0.0, f64::max)
}

/// The fleet experiment under `--fidelity analytic`: the same paired cap
/// sweep with every member answered by the closed form, plus the
/// spot-checked members' full-simulator answers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetCapSpreadAnalytic {
    pub fleet: FleetCapSpread,
    pub spot_checks: Vec<SpotRecord>,
}

impl FleetCapSpreadAnalytic {
    /// Worst surrogate-vs-simulator divergence across all spot checks.
    pub fn spot_worst(&self) -> f64 {
        self.spot_checks
            .iter()
            .map(|s| s.worst_rel_err)
            .fold(0.0, f64::max)
    }
}

impl std::fmt::Display for FleetCapSpreadAnalytic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.fleet.table)
    }
}

/// Surrogate-vs-simulator divergence gate on spot-checked fleet members
/// (settled partial-load points; shared with the analytic-scale sweep).
pub(crate) const FLEET_SPOT_REL_ERR_GATE: f64 = 0.10;

pub(crate) fn run_ctx_analytic(ctx: &RunCtx) -> FleetCapSpreadAnalytic {
    let n = ctx.fleet_size();
    let model = VariationModel::paper_fleet();
    let caps = ctx.fidelity.fleet_caps_w();
    let mut spot_checks = Vec::new();
    let points: Vec<CapPoint> = caps
        .iter()
        .map(|&cap_w| {
            let mut nominal = hsw_hwspec::NodeSpec::paper_test_node();
            if let Some(cap) = cap_w {
                nominal.sku.tdp_w = cap;
            }
            let eet = ctx.platform().eet_enabled;
            // Unsalted like the simulator path: node id `i` is the same
            // chip at every cap, and the spot-check sample picks the same
            // ids, so divergence is paired across cap levels too.
            let members = ctx.sweep_fleet_surrogate(
                n,
                &model,
                |builder| fleet_warmup_spec(builder, ctx.fidelity, nominal.clone()),
                |node, _var, _id, _seed| measure_member(ctx.fidelity, node),
                |var, _id, _seed| surrogate_member(&nominal, eet, var),
            );
            for (id, m) in members.iter().enumerate() {
                if let Some(full) = m.checked {
                    spot_checks.push(SpotRecord {
                        cap_w,
                        id,
                        surrogate: m.value,
                        full,
                        worst_rel_err: member_rel_err(&m.value, &full),
                    });
                }
            }
            CapPoint {
                cap_w,
                power: Spread::of(&members.iter().map(|m| m.value.pkg_w).collect::<Vec<_>>()),
                perf: Spread::of(&members.iter().map(|m| m.value.gips).collect::<Vec<_>>()),
                freq: Spread::of(&members.iter().map(|m| m.value.core_ghz).collect::<Vec<_>>()),
            }
        })
        .collect();
    let table = spread_table(n, &points);
    FleetCapSpreadAnalytic {
        fleet: FleetCapSpread {
            fleet_size: n,
            points,
            table,
        },
        spot_checks,
    }
}

pub fn run(fidelity: Fidelity) -> FleetCapSpread {
    run_seeded(fidelity, 0)
}

/// Like [`run`] with the survey runner's seed derivation.
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> FleetCapSpread {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

pub(crate) fn run_ctx(ctx: &RunCtx) -> FleetCapSpread {
    let n = ctx.fleet_size();
    let model = VariationModel::paper_fleet();
    let caps = ctx.fidelity.fleet_caps_w();
    let points: Vec<CapPoint> = caps
        .iter()
        .map(|&cap_w| {
            // Unsalted on purpose: every cap level reuses the same sweep
            // base, so node id `i` manufactures the *same* chip at every
            // cap — the spread inversion is measured on a paired fleet.
            let members = ctx.sweep_fleet(
                n,
                &model,
                |builder| fleet_warmup(builder, ctx.fidelity, cap_w),
                |node, _var, _id, _seed| measure_member(ctx.fidelity, node),
            );
            CapPoint {
                cap_w,
                power: Spread::of(&members.iter().map(|m| m.pkg_w).collect::<Vec<_>>()),
                perf: Spread::of(&members.iter().map(|m| m.gips).collect::<Vec<_>>()),
                freq: Spread::of(&members.iter().map(|m| m.core_ghz).collect::<Vec<_>>()),
            }
        })
        .collect();

    let table = spread_table(n, &points);
    FleetCapSpread {
        fleet_size: n,
        points,
        table,
    }
}

fn spread_table(n: usize, points: &[CapPoint]) -> Table {
    let mut t = Table::new(
        format!(
            "Fleet cap-and-measure spread: {n} nodes, per-chip variation \
             (leakage, voltage corner, turbo bin, RAPL trim)"
        ),
        vec![
            "PL1 cap [W]",
            "power mean [W]",
            "power spread",
            "perf mean [GIPS]",
            "perf spread",
            "freq mean [GHz]",
            "freq spread",
        ],
    );
    for p in points {
        t.row(vec![
            p.cap_w
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "uncapped".to_string()),
            format!("{:.1}", p.power.mean),
            format!("{:.1}%", p.power.rel_spread * 100.0),
            format!("{:.2}", p.perf.mean),
            format!("{:.1}%", p.perf.rel_spread * 100.0),
            format!("{:.2}", p.freq.mean),
            format!("{:.1}%", p.freq.rel_spread * 100.0),
        ]);
    }
    t
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fleet_cap_spread"
    }
    fn anchor(&self) -> &'static str {
        "Beyond the paper"
    }
    fn title(&self) -> &'static str {
        "Fleet power caps turn power spread into performance spread"
    }
    fn supports_surrogate(&self) -> bool {
        true
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        if ctx.fidelity.is_analytic() {
            let r = run_ctx_analytic(ctx);
            let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
            push_spread_checks(&mut out, &r.fleet);
            let worst = r.spot_worst();
            out.metric("spot_worst_rel_err", worst);
            out.check(
                "spot-checked members agree with the full simulator",
                worst < FLEET_SPOT_REL_ERR_GATE,
                format!(
                    "worst divergence {:.2}% over {} checks (gate {:.0}%)",
                    worst * 100.0,
                    r.spot_checks.len(),
                    FLEET_SPOT_REL_ERR_GATE * 100.0
                ),
            );
            return out;
        }
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        push_spread_checks(&mut out, &r);
        out
    }
}

/// The spread-inversion checks, shared by the simulator and surrogate
/// answer paths (both produce a [`FleetCapSpread`]).
fn push_spread_checks(out: &mut crate::survey::ExperimentResult, r: &FleetCapSpread) {
    let (un, tight) = (r.uncapped(), r.tightest());
    out.metric("uncapped_power_spread", un.power.rel_spread);
    out.metric("uncapped_perf_spread", un.perf.rel_spread);
    out.metric("capped_power_spread", tight.power.rel_spread);
    out.metric("capped_perf_spread", tight.perf.rel_spread);
    let single = r.fleet_size <= 1;
    out.check(
        "tight cap expands performance spread beyond uncapped",
        single || tight.perf.rel_spread > un.perf.rel_spread,
        format!(
            "perf spread {:.1}% capped vs {:.1}% uncapped (n = {})",
            tight.perf.rel_spread * 100.0,
            un.perf.rel_spread * 100.0,
            r.fleet_size
        ),
    );
    out.check(
        "tight cap collapses power spread below uncapped",
        single || tight.power.rel_spread < un.power.rel_spread,
        format!(
            "power spread {:.1}% capped vs {:.1}% uncapped",
            tight.power.rel_spread * 100.0,
            un.power.rel_spread * 100.0
        ),
    );
    if let Some(cap) = tight.cap_w {
        out.check(
            "capped fleet converges onto the metered cap",
            (tight.power.mean - cap).abs() < 0.10 * cap,
            format!("mean {:.1} W vs cap {cap:.0} W", tight.power.mean),
        );
    }
    out.check(
        "uncapped workload runs below TDP (caps bind, workload does not)",
        un.power.mean < 115.0,
        format!("uncapped mean {:.1} W vs 120 W TDP", un.power.mean),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> &'static FleetCapSpread {
        static CACHE: std::sync::OnceLock<FleetCapSpread> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run_seeded(Fidelity::Quick, 0x464C_4545_5401))
    }

    #[test]
    fn uncapped_fleet_runs_below_tdp() {
        let un = fleet().uncapped();
        assert!(un.power.mean < 115.0, "mean {:.1} W", un.power.mean);
        assert!(un.power.mean > 40.0, "mean {:.1} W", un.power.mean);
    }

    #[test]
    fn tight_cap_inverts_the_spreads() {
        let f = fleet();
        let (un, tight) = (f.uncapped(), f.tightest());
        assert!(
            tight.perf.rel_spread > un.perf.rel_spread,
            "perf {:.3} capped vs {:.3} uncapped",
            tight.perf.rel_spread,
            un.perf.rel_spread
        );
        assert!(
            tight.power.rel_spread < un.power.rel_spread,
            "power {:.3} capped vs {:.3} uncapped",
            tight.power.rel_spread,
            un.power.rel_spread
        );
    }

    #[test]
    fn capped_fleet_sits_on_the_cap() {
        let tight = fleet().tightest();
        let cap = tight.cap_w.unwrap();
        assert!(
            (tight.power.mean - cap).abs() < 0.10 * cap,
            "mean {:.1} W vs cap {cap:.0} W",
            tight.power.mean
        );
    }

    #[test]
    fn capping_costs_performance() {
        let f = fleet();
        assert!(f.tightest().perf.mean < f.uncapped().perf.mean);
        assert!(f.tightest().freq.mean < f.uncapped().freq.mean);
    }

    #[test]
    fn analytic_spot_checks_are_bit_identical_to_the_full_fleet() {
        // The surrogate tier's determinism contract: a spot-checked member
        // re-runs under its original node seed and the shared warm image,
        // so its answer is byte-identical to the same member of a
        // full-fidelity fleet at the same root seed.
        let (seed, n) = (0x464C_4545_5402u64, 12usize);
        let actx =
            RunCtx::new(Fidelity::Analytic, seed, EngineMode::default()).with_fleet_size(Some(n));
        let r = run_ctx_analytic(&actx);
        assert!(!r.spot_checks.is_empty());
        for cap_w in actx.fidelity.fleet_caps_w() {
            let qctx =
                RunCtx::new(Fidelity::Quick, seed, EngineMode::default()).with_fleet_size(Some(n));
            let members = qctx.sweep_fleet(
                n,
                &VariationModel::paper_fleet(),
                |builder| fleet_warmup(builder, qctx.fidelity, cap_w),
                |node, _var, _id, _seed| measure_member(qctx.fidelity, node),
            );
            for s in r.spot_checks.iter().filter(|s| s.cap_w == cap_w) {
                let full = members[s.id];
                assert_eq!(s.full.pkg_w.to_bits(), full.pkg_w.to_bits());
                assert_eq!(s.full.gips.to_bits(), full.gips.to_bits());
                assert_eq!(s.full.core_ghz.to_bits(), full.core_ghz.to_bits());
            }
        }
    }

    #[test]
    fn surrogate_members_track_their_spot_checks() {
        let ctx = RunCtx::new(Fidelity::Analytic, 0x464C_4545_5403, EngineMode::default())
            .with_fleet_size(Some(12));
        let r = run_ctx_analytic(&ctx);
        assert!(
            r.spot_worst() < FLEET_SPOT_REL_ERR_GATE,
            "worst divergence {:.3}",
            r.spot_worst()
        );
    }

    #[test]
    fn single_node_fleet_degenerates_to_zero_spread() {
        let ctx = RunCtx::new(Fidelity::Quick, 7, EngineMode::default()).with_fleet_size(Some(1));
        let r = run_ctx(&ctx);
        assert_eq!(r.fleet_size, 1);
        for p in &r.points {
            assert_eq!(p.power.rel_spread, 0.0);
            assert_eq!(p.perf.rel_spread, 0.0);
            assert_eq!(p.freq.rel_spread, 0.0);
            assert!(p.power.mean.is_finite() && p.power.mean > 0.0);
        }
    }
}
