//! Figure 2 — quality of RAPL energy measurements (paper Section IV).
//!
//! Micro-benchmarks (idle, sinus, busy wait, memory, compute, dgemm, sqrt)
//! in different threading configurations; each point is a 4 s average of
//! (a) the LMG450 AC reference and (b) RAPL package + DRAM summed over both
//! sockets. On Sandy Bridge-EP the modeled RAPL shows per-workload bias
//! around a linear fit (Fig. 2a); on Haswell-EP the measured RAPL follows a
//! single quadratic with R² > 0.9998 and residuals below 3 W (Fig. 2b).

use hsw_exec::WorkloadProfile;
use hsw_hwspec::{calib, NodeSpec};
use hsw_msr::addresses as msra;
use hsw_node::{CpuId, EngineMode, Node, Resolution};
use serde::{Deserialize, Serialize};

use crate::stats::{linear_fit, quadratic_fit, Fit};
use crate::survey::RunCtx;
use crate::{Fidelity, Table};

/// One measurement point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Point {
    pub workload: String,
    pub threads: usize,
    pub ac_w: f64,
    pub rapl_w: f64,
}

/// One panel (one generation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Panel {
    pub generation: String,
    pub points: Vec<Fig2Point>,
    pub linear: Option<Fit>,
    pub quadratic: Option<Fit>,
    /// Mean residual from the panel fit per workload — the workload bias
    /// visible in Fig. 2a.
    pub workload_bias_w: Vec<(String, f64)>,
}

impl Fig2Panel {
    /// Spread between the most over- and under-estimating workload class.
    /// A panel with no bias data (e.g. the quadratic fit failed) has zero
    /// spread, not `MIN - MAX = -inf`.
    pub fn bias_spread_w(&self) -> f64 {
        let vals: Vec<f64> = self.workload_bias_w.iter().map(|(_, b)| *b).collect();
        if vals.is_empty() {
            return 0.0;
        }
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        hi - lo
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    pub sandy_bridge: Fig2Panel,
    pub haswell: Fig2Panel,
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for panel in [&self.sandy_bridge, &self.haswell] {
            let mut t = Table::new(
                format!("Figure 2: RAPL vs AC on {}", panel.generation),
                vec!["workload", "threads", "AC [W]", "RAPL [W]"],
            );
            for p in &panel.points {
                t.row(vec![
                    p.workload.clone(),
                    p.threads.to_string(),
                    format!("{:.1}", p.ac_w),
                    format!("{:.1}", p.rapl_w),
                ]);
            }
            writeln!(f, "{t}")?;
            if let Some(q) = &panel.quadratic {
                writeln!(
                    f,
                    "  quadratic fit: AC = {:.4}*P^2 + {:.3}*P + {:.1}  (R^2 = {:.5}, max residual {:.2} W)",
                    q.coeffs[2], q.coeffs[1], q.coeffs[0], q.r_squared, q.max_residual
                )?;
            }
            if let Some(l) = &panel.linear {
                writeln!(
                    f,
                    "  linear fit:    AC = {:.3}*P + {:.1}  (R^2 = {:.5})",
                    l.coeffs[1], l.coeffs[0], l.r_squared
                )?;
            }
            writeln!(f, "  workload bias spread: {:.1} W", panel.bias_spread_w())?;
        }
        Ok(())
    }
}

/// Threading configurations: (cores per socket, sockets, threads per core).
fn configs(max_cores: usize) -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (2, 1, 1),
        (max_cores / 2, 1, 1),
        (max_cores, 1, 1),
        (max_cores, 2, 1),
        (max_cores, 2, 2),
    ]
}

/// Total RAPL power (pkg + DRAM, both sockets) over a window measured via
/// the MSR interface, alongside the AC meter average over the same window.
fn measure_point(node: &mut Node, avg_s: f64) -> (f64, f64) {
    let read = |node: &Node, socket: usize, addr: u32| {
        node.rdmsr(CpuId::new(socket, 0, 0), addr).unwrap_or(0) as u32
    };
    let sockets = node.config().spec.sockets;
    let before: Vec<(u32, u32)> = (0..sockets)
        .map(|s| {
            (
                read(node, s, msra::MSR_PKG_ENERGY_STATUS),
                read(node, s, msra::MSR_DRAM_ENERGY_STATUS),
            )
        })
        .collect();
    let ac = node.measure_ac_average(avg_s);
    let mut joules = 0.0;
    for (s, (p0, d0)) in before.iter().enumerate() {
        let p1 = read(node, s, msra::MSR_PKG_ENERGY_STATUS);
        let d1 = read(node, s, msra::MSR_DRAM_ENERGY_STATUS);
        joules += p1.wrapping_sub(*p0) as f64 * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
        joules += d1.wrapping_sub(*d0) as f64 * calib::DRAM_ENERGY_UNIT_UJ * 1e-6;
    }
    (ac, joules / avg_s)
}

fn run_panel(ctx: &RunCtx, spec: NodeSpec, salt: u64) -> Fig2Panel {
    let generation = spec.sku.generation.name().to_string();
    let max_cores = spec.sku.cores;
    let avg_s = ctx.fidelity.fig2_avg_s();
    let benches = WorkloadProfile::fig2_benchmarks();

    let jobs: Vec<(WorkloadProfile, (usize, usize, usize))> = benches
        .iter()
        .flat_map(|b| {
            let cfgs = if b.kind == hsw_exec::WorkloadKind::Idle {
                vec![(0, 0, 0)]
            } else {
                configs(max_cores)
            };
            cfgs.into_iter().map(move |c| (b.clone(), c))
        })
        .collect();

    // Warm-start split: the idle-settled node is identical for every point
    // of a panel, so it is warmed up once and forked per point; only the
    // workload assignment and its settle remain per point.
    let points: Vec<Fig2Point> = ctx.sweep_warm_salted(
        salt,
        &jobs,
        |builder| {
            let mut session = builder
                .spec(spec.clone())
                .resolution(Resolution::Custom(100))
                .build();
            session.idle_all();
            session.advance_s(0.4); // shared idle settle
            session
        },
        |node, (profile, (cores, sockets, tpc)), _seed| {
            for s in 0..*sockets {
                node.run_on_socket(s, profile, *cores, *tpc);
            }
            node.advance_s(0.4); // per-point settle under the new workload
            let (ac, rapl) = measure_point(node, avg_s);
            Fig2Point {
                workload: profile.name.to_string(),
                threads: cores * sockets * tpc,
                ac_w: ac,
                rapl_w: rapl,
            }
        },
    );

    // Fits: AC as a function of RAPL, as plotted in the paper.
    let xy: Vec<(f64, f64)> = points.iter().map(|p| (p.rapl_w, p.ac_w)).collect();
    let linear = linear_fit(&xy);
    let quadratic = quadratic_fit(&xy);

    // Per-workload mean residual against the panel's quadratic fit.
    let fit = quadratic.as_ref();
    let mut workload_bias_w = Vec::new();
    for b in &benches {
        let residuals: Vec<f64> = points
            .iter()
            .filter(|p| p.workload == b.name)
            .filter_map(|p| fit.map(|f| p.ac_w - f.eval(p.rapl_w)))
            .collect();
        if !residuals.is_empty() {
            workload_bias_w.push((
                b.name.to_string(),
                residuals.iter().sum::<f64>() / residuals.len() as f64,
            ));
        }
    }

    Fig2Panel {
        generation,
        points,
        linear,
        quadratic,
        workload_bias_w,
    }
}

pub fn run(fidelity: Fidelity) -> Fig2 {
    run_seeded(fidelity, 0)
}

/// Like [`run`] but with both panels' point seeds derived from `seed` via
/// the sweep executor (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Fig2 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> Fig2 {
    Fig2 {
        sandy_bridge: run_panel(ctx, NodeSpec::sandy_bridge_node(), 0),
        haswell: run_panel(ctx, NodeSpec::paper_test_node(), 1),
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig2"
    }
    fn anchor(&self) -> &'static str {
        "Figure 2"
    }
    fn title(&self) -> &'static str {
        "RAPL measurement quality vs. AC reference"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let hsw_r2 = r
            .haswell
            .quadratic
            .as_ref()
            .map(|q| q.r_squared)
            .unwrap_or(0.0);
        out.metric("haswell_quadratic_r2", hsw_r2);
        out.metric("snb_bias_spread_w", r.sandy_bridge.bias_spread_w());
        out.metric("hsw_bias_spread_w", r.haswell.bias_spread_w());
        out.check(
            "Haswell RAPL follows a single quadratic (R² > 0.9995)",
            hsw_r2 > 0.9995,
            format!("R² = {hsw_r2:.5}"),
        );
        out.check(
            "Sandy Bridge shows the per-workload bias Haswell lacks",
            r.sandy_bridge.bias_spread_w() > r.haswell.bias_spread_w(),
            format!(
                "bias spread SNB {:.1} W vs HSW {:.1} W",
                r.sandy_bridge.bias_spread_w(),
                r.haswell.bias_spread_w()
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2() -> &'static Fig2 {
        static CACHE: std::sync::OnceLock<Fig2> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn haswell_quadratic_fit_is_nearly_perfect() {
        // Paper: "an almost perfect correlation ... R² > 0.9998"; residuals
        // "below 3 W".
        let f = fig2();
        let q = f.haswell.quadratic.expect("fit");
        assert!(q.r_squared > 0.9995, "R² = {}", q.r_squared);
        assert!(
            q.max_residual < calib::AC_FIT_MAX_RESIDUAL_W + 1.0,
            "max residual {:.2} W",
            q.max_residual
        );
    }

    #[test]
    fn haswell_fit_recovers_the_published_coefficients() {
        let f = fig2();
        let q = f.haswell.quadratic.expect("fit");
        assert!(
            (q.coeffs[2] - calib::AC_FIT_A2).abs() < 2e-4,
            "{:?}",
            q.coeffs
        );
        assert!(
            (q.coeffs[1] - calib::AC_FIT_A1).abs() < 0.12,
            "{:?}",
            q.coeffs
        );
        assert!(
            (q.coeffs[0] - calib::AC_FIT_A0_W).abs() < 8.0,
            "{:?}",
            q.coeffs
        );
    }

    #[test]
    fn sandy_bridge_shows_workload_bias_haswell_does_not() {
        // The Figure 2a vs 2b contrast.
        let f = fig2();
        let snb = f.sandy_bridge.bias_spread_w();
        let hsw = f.haswell.bias_spread_w();
        assert!(
            snb > 3.0 * hsw.max(0.5),
            "SNB bias spread {snb:.1} W vs HSW {hsw:.1} W"
        );
        assert!(snb > 8.0, "SNB spread {snb:.1} W must be visible");
    }

    #[test]
    fn idle_points_sit_at_the_intercept() {
        let f = fig2();
        let idle = f
            .haswell
            .points
            .iter()
            .find(|p| p.workload == "idle")
            .unwrap();
        assert!(
            (idle.ac_w - calib::IDLE_NODE_POWER_W).abs() < 8.0,
            "idle AC {:.1}",
            idle.ac_w
        );
        assert!(idle.rapl_w < 45.0, "idle RAPL {:.1}", idle.rapl_w);
    }

    #[test]
    fn bias_spread_of_an_empty_panel_is_zero() {
        // Regression: MAX/MIN fold seeds made this -inf when the quadratic
        // fit failed and no workload bias could be computed.
        let empty = Fig2Panel {
            generation: "Haswell-EP".to_string(),
            points: Vec::new(),
            linear: None,
            quadratic: None,
            workload_bias_w: Vec::new(),
        };
        assert_eq!(empty.bias_spread_w(), 0.0);
        assert!(empty.bias_spread_w().is_finite());
    }

    #[test]
    fn panel_covers_all_benchmarks() {
        let f = fig2();
        for b in WorkloadProfile::fig2_benchmarks() {
            assert!(
                f.haswell.points.iter().any(|p| p.workload == b.name),
                "missing {}",
                b.name
            );
        }
    }
}
