//! Skylake-SP: the AVX frequency-license table under full load
//! (follow-up survey, arXiv:1905.12468 Section IV).
//!
//! Skylake-SP extends Haswell's two-level AVX clocking into three license
//! levels (L0 scalar/light-128, L1 heavy-256, L2 heavy-512). This
//! experiment solves the PCU equilibrium for a FIRESTARTER-class workload
//! at every license level and several concurrency points on the Xeon
//! Platinum 8170, reproducing the follow-up survey's headline: the
//! license, not the nominal frequency, bounds the sustained clock, and
//! AVX-512 at full concurrency runs far below base while staying inside
//! TDP.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{EpbClass, SkuSpec};
use hsw_pcu::{PcuController, PcuInputs};
use serde::{Deserialize, Serialize};

use crate::Table;

/// One solved operating point of the license grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LicensePoint {
    /// AVX license level (0 = none, 1 = 256-bit, 2 = 512-bit).
    pub level: u8,
    pub active_cores: usize,
    pub core_ghz: f64,
    pub uncore_ghz: f64,
    pub power_w: f64,
    pub tdp_limited: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkxLicenseTable {
    pub points: Vec<LicensePoint>,
    pub table: Table,
}

impl SkxLicenseTable {
    pub fn point(&self, level: u8, active: usize) -> &LicensePoint {
        self.points
            .iter()
            .find(|p| p.level == level && p.active_cores == active)
            .expect("grid point")
    }
}

impl std::fmt::Display for SkxLicenseTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Concurrency points of the grid: the license turbo table's knee points
/// on the 26-core die.
pub const ACTIVE_POINTS: [usize; 4] = [2, 8, 16, 26];

fn solve(sku: &SkuSpec, level: u8, active: usize) -> LicensePoint {
    let fs = WorkloadProfile::firestarter();
    let inputs = PcuInputs {
        spec: sku,
        socket_power_mult: 1.0,
        setting: FreqSetting::Turbo,
        epb: EpbClass::Balanced,
        turbo_enabled: true,
        active_cores: active,
        gated_idle_cores: sku.cores - active,
        activity: fs.activity(true),
        avx_level: level,
        stall_fraction: fs.stall_fraction,
        eet_limit_mhz: u32::MAX,
        avg_pkg_w: sku.tdp_w, // steady state: PL1 governs
    };
    let g = PcuController::solve(&inputs);
    LicensePoint {
        level,
        active_cores: active,
        core_ghz: g.core_mhz / 1000.0,
        uncore_ghz: g.uncore_mhz / 1000.0,
        power_w: g.power_w,
        tdp_limited: g.power_limited,
    }
}

fn grid() -> Vec<(u8, usize)> {
    let mut jobs = Vec::new();
    for level in 0u8..=2 {
        for active in ACTIVE_POINTS {
            jobs.push((level, active));
        }
    }
    jobs
}

pub fn run() -> SkxLicenseTable {
    let sku = SkuSpec::xeon_platinum_8170();
    build(grid().iter().map(|&(l, a)| solve(&sku, l, a)).collect())
}

/// Like [`run`] but fanned through the survey's worker pool. The PCU
/// solve is analytic, so the derived point seeds are not consumed and the
/// result is identical to the serial [`run`].
fn run_ctx(ctx: &crate::survey::RunCtx) -> SkxLicenseTable {
    let sku = SkuSpec::xeon_platinum_8170();
    let jobs = grid();
    build(ctx.sweep(&jobs, |&(level, active), _seed| solve(&sku, level, active)))
}

fn build(points: Vec<LicensePoint>) -> SkxLicenseTable {
    let mut t = Table::new(
        "Skylake-SP: sustained FIRESTARTER clocks by AVX license level (Xeon Platinum 8170, Turbo setting)",
        vec![
            "license",
            "active cores",
            "core [GHz]",
            "uncore [GHz]",
            "power [W]",
            "TDP limited",
        ]
        .into_iter()
        .map(String::from)
        .collect(),
    );
    for p in &points {
        t.row(vec![
            match p.level {
                0 => "L0 (scalar)".to_string(),
                1 => "L1 (AVX2)".to_string(),
                _ => "L2 (AVX-512)".to_string(),
            },
            p.active_cores.to_string(),
            format!("{:.2}", p.core_ghz),
            format!("{:.2}", p.uncore_ghz),
            format!("{:.1}", p.power_w),
            if p.tdp_limited { "yes" } else { "no" }.to_string(),
        ]);
    }
    SkxLicenseTable { points, table: t }
}

/// Registry adapter. The PCU equilibrium solve is analytic, so the survey
/// seed is not consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "skx_license_table"
    }
    fn anchor(&self) -> &'static str {
        "arXiv:1905.12468 Section IV"
    }
    fn title(&self) -> &'static str {
        "AVX frequency licenses on Skylake-SP"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let sku = SkuSpec::xeon_platinum_8170();
        let all = sku.cores;
        let (l0, l1, l2) = (r.point(0, all), r.point(1, all), r.point(2, all));
        out.metric("all_core_scalar_ghz", l0.core_ghz);
        out.metric("all_core_avx2_ghz", l1.core_ghz);
        out.metric("all_core_avx512_ghz", l2.core_ghz);
        out.metric("all_core_avx512_power_w", l2.power_w);
        out.check(
            "license levels order the all-core sustained clock",
            l0.core_ghz > l1.core_ghz && l1.core_ghz > l2.core_ghz,
            format!(
                "L0 {:.2} / L1 {:.2} / L2 {:.2} GHz",
                l0.core_ghz, l1.core_ghz, l2.core_ghz
            ),
        );
        out.check(
            "every grid point respects the 165 W TDP",
            r.points.iter().all(|p| p.power_w <= sku.tdp_w * 1.01),
            format!("{} points solved", r.points.len()),
        );
        let in_band = r.points.iter().all(|p| {
            let base = sku.freq.license_base_mhz(p.level) as f64 / 1000.0;
            let turbo = sku.freq.license_turbo_mhz(p.level, p.active_cores) as f64 / 1000.0;
            p.core_ghz >= base - 0.01 && p.core_ghz <= turbo + 0.01
        });
        out.check(
            "every sustained clock stays inside its license band",
            in_band,
            "base <= clock <= per-license turbo at each concurrency".to_string(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached() -> &'static SkxLicenseTable {
        static CACHE: std::sync::OnceLock<SkxLicenseTable> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn two_core_points_reach_the_license_turbos() {
        // With 2 of 26 cores active nothing is power limited; each license
        // pins its dual-core turbo (3.7 / 3.6 / 3.5 GHz on the 8170).
        let t = cached();
        for (level, expect) in [(0u8, 3.7), (1, 3.6), (2, 3.5)] {
            let p = t.point(level, 2);
            assert!(!p.tdp_limited, "L{level} at 2 cores");
            assert!(
                (p.core_ghz - expect).abs() < 0.05,
                "L{level}: {:.2} vs {expect}",
                p.core_ghz
            );
        }
    }

    #[test]
    fn all_core_clocks_order_by_license() {
        let t = cached();
        let all = SkuSpec::xeon_platinum_8170().cores;
        assert!(t.point(0, all).core_ghz > t.point(1, all).core_ghz);
        assert!(t.point(1, all).core_ghz > t.point(2, all).core_ghz);
    }

    #[test]
    fn avx512_never_drops_below_its_license_base() {
        // The follow-up survey's headline number: heavy AVX-512 at full
        // concurrency sits between the 1.3 GHz license base and the
        // 1.9 GHz all-core L2 turbo.
        let t = cached();
        let all = SkuSpec::xeon_platinum_8170().cores;
        let p = t.point(2, all);
        assert!(p.core_ghz >= 1.3 - 0.01, "{:.2}", p.core_ghz);
        assert!(p.core_ghz <= 1.9 + 0.01, "{:.2}", p.core_ghz);
    }

    #[test]
    fn tdp_holds_across_the_grid() {
        for p in &cached().points {
            assert!(
                p.power_w <= 165.0 * 1.01,
                "L{} x{}: {:.1} W",
                p.level,
                p.active_cores,
                p.power_w
            );
        }
    }

    #[test]
    fn clocks_fall_with_concurrency_within_each_license() {
        let t = cached();
        for level in 0u8..=2 {
            for w in ACTIVE_POINTS.windows(2) {
                let hi = t.point(level, w[0]).core_ghz;
                let lo = t.point(level, w[1]).core_ghz;
                assert!(
                    lo <= hi + 1e-9,
                    "L{level}: {:.2} @ {} vs {:.2} @ {}",
                    hi,
                    w[0],
                    lo,
                    w[1]
                );
            }
        }
    }
}
