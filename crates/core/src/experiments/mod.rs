//! One module per paper table/figure.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`fig1`] | Figure 1 — partitioned ring-interconnect die layouts |
//! | [`section2c_epb`] | Section II-C — the measured EPB mapping |
//! | [`table1`] | Table I — Sandy Bridge vs. Haswell microarchitecture |
//! | [`table2`] | Table II — test-system details incl. measured idle power |
//! | [`table3`] | Table III — uncore frequency vs. core frequency setting |
//! | [`table4`] | Table IV — FIRESTARTER under reduced frequency settings |
//! | [`table5`] | Table V — maximum power: FIRESTARTER / LINPACK / mprime |
//! | [`fig2`] | Figure 2 — RAPL vs. AC reference power (SNB + HSW) |
//! | [`fig3`] | Figure 3 — p-state transition-latency histograms |
//! | [`fig4`] | Figure 4 — the 500 µs opportunity timeline |
//! | [`fig56`] | Figures 5/6 — C3/C6 wake-up latencies |
//! | [`fig7`] | Figure 7 — relative L3/DRAM bandwidth vs. frequency |
//! | [`fig8`] | Figure 8 — L3/DRAM bandwidth vs. concurrency × frequency |
//! | [`section6b_governor`] | Section VI-B — what the inflated ACPI tables cost the governor |
//! | [`section8`] | Section VIII — FIRESTARTER structure and IPC |
//! | [`sku_extrapolation`] | Extension — Table IV's protocol across the product line |
//! | [`fleet_cap_spread`] | Extension — fleet power caps turn power spread into performance spread |
//! | [`fleet_straggler`] | Extension — barrier collectives pay for the slowest chip under a cap |
//! | [`skx_license_table`] | Skylake-SP (arXiv:1905.12468) — AVX frequency licenses |
//! | [`skx_ufs_mesh`] | Skylake-SP (arXiv:1905.12468) — mesh frequency scaling |
//! | [`analytic_accuracy`] | Extension — where the closed-form surrogate tracks and breaks (arXiv:1803.01618) |
//! | [`fleet_analytic_scale`] | Extension — million-node cap-spread sweep on the surrogate tier |

pub mod analytic_accuracy;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod fleet_analytic_scale;
pub mod fleet_cap_spread;
pub mod fleet_straggler;
pub mod section2c_epb;
pub mod section6b_governor;
pub mod section8;
pub mod sku_extrapolation;
pub mod skx_license_table;
pub mod skx_ufs_mesh;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
