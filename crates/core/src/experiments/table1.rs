//! Table I — comparison of the Sandy Bridge and Haswell microarchitectures.
//!
//! The static rows come from `hsw-hwspec`; the derived rows (FLOPS/cycle,
//! L1D/L2 bandwidth) are *validated* against the port-level pipeline model
//! rather than just restated.

use hsw_exec::{throughput, Instr};
use hsw_hwspec::MicroArch;
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// The rendered comparison plus the pipeline-validated peaks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    pub table: Table,
    /// FLOPS/cycle measured by driving an FMA (resp. add+mul) kernel
    /// through the pipeline model.
    pub measured_flops_snb: f64,
    pub measured_flops_hsw: f64,
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// Peak-FLOPS kernel for a microarchitecture: FMA stream on FMA parts,
/// alternating add/mul stream otherwise.
fn peak_kernel(arch: &MicroArch) -> Vec<Instr> {
    if arch.has_fma {
        vec![Instr::fma_reg(); 8]
    } else {
        (0..8)
            .map(|i| {
                if i % 2 == 0 {
                    Instr::add_reg()
                } else {
                    Instr::mul_reg()
                }
            })
            .collect()
    }
}

pub fn run() -> Table1 {
    let snb = MicroArch::sandy_bridge_ep();
    let hsw = MicroArch::haswell_ep();

    let measured_flops_snb = throughput(&snb, &peak_kernel(&snb), false, 1.0).flops_per_cycle;
    let measured_flops_hsw = throughput(&hsw, &peak_kernel(&hsw), false, 1.0).flops_per_cycle;

    let mut t = Table::new(
        "Table I: Sandy Bridge-EP vs Haswell-EP microarchitecture",
        vec!["Microarchitecture", "Sandy Bridge-EP", "Haswell-EP"],
    );
    let fmt_row = |label: &str, a: String, b: String| vec![label.to_string(), a, b];
    t.row(fmt_row(
        "Decode",
        "4(+1) x86/cycle".into(),
        "4(+1) x86/cycle".into(),
    ));
    t.row(fmt_row(
        "Allocation queue",
        format!("{}/thread", snb.allocation_queue),
        format!("{}", hsw.allocation_queue),
    ));
    t.row(fmt_row(
        "Execute",
        format!("{} micro-ops/cycle", snb.execute_uops_per_cycle),
        format!("{} micro-ops/cycle", hsw.execute_uops_per_cycle),
    ));
    t.row(fmt_row(
        "Retire",
        format!("{} micro-ops/cycle", snb.retire_uops_per_cycle),
        format!("{} micro-ops/cycle", hsw.retire_uops_per_cycle),
    ));
    t.row(fmt_row(
        "Scheduler entries",
        snb.scheduler_entries.to_string(),
        hsw.scheduler_entries.to_string(),
    ));
    t.row(fmt_row(
        "ROB entries",
        snb.rob_entries.to_string(),
        hsw.rob_entries.to_string(),
    ));
    t.row(fmt_row(
        "INT/FP register file",
        format!("{}/{}", snb.int_regfile, snb.fp_regfile),
        format!("{}/{}", hsw.int_regfile, hsw.fp_regfile),
    ));
    t.row(fmt_row(
        "SIMD ISA",
        snb.simd_isa.into(),
        hsw.simd_isa.into(),
    ));
    t.row(fmt_row(
        "FPU width",
        "2x256 bit (1 add, 1 mul)".into(),
        "2x256 bit FMA".into(),
    ));
    t.row(fmt_row(
        "FLOPS/cycle (double)",
        format!(
            "{} (measured {:.1})",
            snb.flops_per_cycle_f64, measured_flops_snb
        ),
        format!(
            "{} (measured {:.1})",
            hsw.flops_per_cycle_f64, measured_flops_hsw
        ),
    ));
    t.row(fmt_row(
        "Load/store buffers",
        format!("{}/{}", snb.load_buffers, snb.store_buffers),
        format!("{}/{}", hsw.load_buffers, hsw.store_buffers),
    ));
    t.row(fmt_row(
        "L1D accesses per cycle",
        format!(
            "{}x{} B load + {}x{} B store",
            snb.l1d_loads_per_cycle,
            snb.l1d_load_bytes,
            snb.l1d_stores_per_cycle,
            snb.l1d_store_bytes
        ),
        format!(
            "{}x{} B load + {}x{} B store",
            hsw.l1d_loads_per_cycle,
            hsw.l1d_load_bytes,
            hsw.l1d_stores_per_cycle,
            hsw.l1d_store_bytes
        ),
    ));
    t.row(fmt_row(
        "L2 bytes/cycle",
        snb.l2_bytes_per_cycle.to_string(),
        hsw.l2_bytes_per_cycle.to_string(),
    ));
    let snb_mem = hsw_hwspec::MemSpec::ddr3_1600_quad();
    let hsw_mem = hsw_hwspec::MemSpec::ddr4_2133_quad();
    t.row(fmt_row(
        "Supported memory",
        "4xDDR3-1600".into(),
        "4xDDR4-2133".into(),
    ));
    t.row(fmt_row(
        "DRAM bandwidth",
        format!("up to {:.1} GB/s", snb_mem.peak_bandwidth_gbs()),
        format!("up to {:.1} GB/s", hsw_mem.peak_bandwidth_gbs()),
    ));
    t.row(fmt_row(
        "QPI speed",
        format!(
            "{} GT/s ({:.0} GB/s)",
            snb_mem.qpi_gts,
            snb_mem.qpi_bandwidth_gbs()
        ),
        format!(
            "{} GT/s ({:.1} GB/s)",
            hsw_mem.qpi_gts,
            hsw_mem.qpi_bandwidth_gbs()
        ),
    ));

    Table1 {
        table: t,
        measured_flops_snb,
        measured_flops_hsw,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table1"
    }
    fn anchor(&self) -> &'static str {
        "Table I"
    }
    fn title(&self) -> &'static str {
        "Sandy Bridge-EP vs. Haswell-EP microarchitecture"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run();
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        out.metric("flops_per_cycle_snb", r.measured_flops_snb);
        out.metric("flops_per_cycle_hsw", r.measured_flops_hsw);
        out.check(
            "Haswell FMA peak is 16 FLOPS/cycle",
            (r.measured_flops_hsw - 16.0).abs() < 0.5,
            format!("measured {:.2}", r.measured_flops_hsw),
        );
        out.check(
            "Sandy Bridge add+mul peak is 8 FLOPS/cycle",
            (r.measured_flops_snb - 8.0).abs() < 0.5,
            format!("measured {:.2}", r.measured_flops_snb),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_peaks_match_table1_claims() {
        let t1 = run();
        assert!(
            (t1.measured_flops_snb - 8.0).abs() < 0.3,
            "{}",
            t1.measured_flops_snb
        );
        assert!(
            (t1.measured_flops_hsw - 16.0).abs() < 0.3,
            "{}",
            t1.measured_flops_hsw
        );
    }

    #[test]
    fn table_has_all_paper_rows() {
        let t1 = run();
        assert_eq!(t1.table.rows.len(), 16);
        let text = t1.to_string();
        for needle in ["AVX2", "FMA", "DDR4-2133", "9.6 GT/s", "192"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
