//! Section VI-B's conclusion, quantified: "the measured transition times
//! for C3 and C6 are lower than the definitions in the respective ACPI
//! tables ... The discrepancy between the measured and defined latencies
//! underlines the need for an interface to change these tables at runtime."
//!
//! We make that concrete: generate a realistic idle-interval distribution,
//! run the menu governor once with the firmware's (inflated) ACPI tables
//! and once with tables set to the latencies *measured* in the Figures 5/6
//! experiment, and score both against hindsight-optimal state choices.

use hsw_cstates::residency::{GovernorStats, IdleEpisode};
use hsw_cstates::{select_core_state, wake_latency_us, CoreCState, WakeScenario};
use hsw_hwspec::{AcpiLatencyTable, CpuGeneration};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::Table;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GovernorComparison {
    pub episodes: usize,
    pub firmware_accuracy: f64,
    pub firmware_too_shallow: usize,
    pub measured_accuracy: f64,
    pub measured_too_shallow: usize,
    /// The measured exit latencies fed into the honest tables (µs).
    pub measured_c3_us: f64,
    pub measured_c6_us: f64,
    pub table: Table,
}

impl std::fmt::Display for GovernorComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.table)
    }
}

/// A server-like idle-interval distribution: mostly short interrupts with a
/// long tail (log-uniform between 5 µs and 50 ms).
fn idle_intervals(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    (0..n)
        .map(|_| {
            let log = rng.gen_range(ln(5.0)..ln(50_000.0));
            log.exp() as u32
        })
        .collect()
}

fn ln(x: f64) -> f64 {
    x.ln()
}

pub fn run() -> GovernorComparison {
    run_with_seed(0x6B)
}

/// Like [`run`] but with the idle-interval distribution drawn from `seed`
/// (the survey runner's determinism contract; `run` keeps the legacy 0x6B).
pub fn run_with_seed(seed: u64) -> GovernorComparison {
    let mut rng = SmallRng::seed_from_u64(seed);
    let intervals = idle_intervals(2_000, &mut rng);

    // The latencies the Figures 5/6 experiment measured (local, 2.5 GHz).
    let measured_c3 = wake_latency_us(
        CpuGeneration::HaswellEp,
        CoreCState::C3,
        WakeScenario::Local,
        2.5,
    );
    let measured_c6 = wake_latency_us(
        CpuGeneration::HaswellEp,
        CoreCState::C6,
        WakeScenario::Local,
        2.5,
    );

    let firmware = AcpiLatencyTable::haswell_ep();
    let honest = AcpiLatencyTable {
        pstate_transition_us: firmware.pstate_transition_us,
        c1_exit_us: firmware.c1_exit_us,
        c3_exit_us: measured_c3.round() as u32,
        c6_exit_us: measured_c6.round() as u32,
    };

    let score = |table: &AcpiLatencyTable| {
        let episodes: Vec<IdleEpisode> = intervals
            .iter()
            .map(|idle| IdleEpisode {
                selected: select_core_state(table, *idle),
                actual_idle_us: *idle,
            })
            .collect();
        GovernorStats::evaluate(&episodes, measured_c3, measured_c6)
    };
    let fw = score(&firmware);
    let hn = score(&honest);

    let mut t = Table::new(
        "Section VI-B: menu governor vs ACPI tables (2000 idle episodes, hindsight-scored)",
        vec![
            "tables",
            "C3/C6 latency claim",
            "accuracy",
            "too shallow",
            "too deep",
        ],
    );
    t.row(vec![
        "firmware".to_string(),
        format!("{}/{} µs", firmware.c3_exit_us, firmware.c6_exit_us),
        format!("{:.1} %", fw.accuracy() * 100.0),
        fw.too_shallow.to_string(),
        fw.too_deep.to_string(),
    ]);
    t.row(vec![
        "measured (runtime-updated)".to_string(),
        format!("{}/{} µs", honest.c3_exit_us, honest.c6_exit_us),
        format!("{:.1} %", hn.accuracy() * 100.0),
        hn.too_shallow.to_string(),
        hn.too_deep.to_string(),
    ]);

    GovernorComparison {
        episodes: intervals.len(),
        firmware_accuracy: fw.accuracy(),
        firmware_too_shallow: fw.too_shallow,
        measured_accuracy: hn.accuracy(),
        measured_too_shallow: hn.too_shallow,
        measured_c3_us: measured_c3,
        measured_c6_us: measured_c6,
        table: t,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "section6b_governor"
    }
    fn anchor(&self) -> &'static str {
        "Section VI-B"
    }
    fn title(&self) -> &'static str {
        "Menu governor with firmware vs. measured ACPI tables"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_with_seed(ctx.seed);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        out.metric("firmware_accuracy", r.firmware_accuracy);
        out.metric("measured_accuracy", r.measured_accuracy);
        out.check(
            "runtime-updated tables beat the firmware tables",
            r.measured_accuracy > r.firmware_accuracy,
            format!(
                "measured {:.1}% vs firmware {:.1}%",
                r.measured_accuracy * 100.0,
                r.firmware_accuracy * 100.0
            ),
        );
        out.check(
            "measured latencies sit below the ACPI claims",
            r.measured_c3_us < 33.0 && r.measured_c6_us < 133.0,
            format!(
                "C3 {:.1} us (claim 33), C6 {:.1} us (claim 133)",
                r.measured_c3_us, r.measured_c6_us
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_cstates::residency::hindsight_optimal;

    fn cached() -> &'static GovernorComparison {
        static CACHE: std::sync::OnceLock<GovernorComparison> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn honest_tables_substantially_improve_the_governor() {
        let c = cached();
        assert!(
            c.measured_accuracy > c.firmware_accuracy + 0.10,
            "measured {:.2} vs firmware {:.2}",
            c.measured_accuracy,
            c.firmware_accuracy
        );
        assert!(c.measured_accuracy > 0.9, "{:.2}", c.measured_accuracy);
    }

    #[test]
    fn firmware_errors_are_exclusively_too_shallow() {
        // Inflated latency claims only ever make the governor too timid.
        let c = cached();
        assert!(c.firmware_too_shallow > 0);
        assert_eq!(
            c.firmware_too_shallow,
            (c.episodes as f64 * (1.0 - c.firmware_accuracy)).round() as usize
        );
    }

    #[test]
    fn measured_latencies_are_below_the_acpi_claims() {
        let c = cached();
        assert!(c.measured_c3_us < 33.0);
        assert!(c.measured_c6_us < 133.0);
    }

    #[test]
    fn hindsight_scoring_is_self_consistent() {
        // An oracle using the measured latencies directly scores perfectly.
        let c = cached();
        let oracle: Vec<IdleEpisode> = (10..500)
            .step_by(7)
            .map(|idle| IdleEpisode {
                selected: hindsight_optimal(idle, c.measured_c3_us, c.measured_c6_us),
                actual_idle_us: idle,
            })
            .collect();
        let stats = GovernorStats::evaluate(&oracle, c.measured_c3_us, c.measured_c6_us);
        assert_eq!(stats.accuracy(), 1.0);
    }
}
