//! Figure 4 — the presumed p-state change mechanism (paper Section VI-A).
//!
//! The paper's figure is a schematic: requests latch at ~500 µs
//! "opportunities" driven by external logic (probably the PCU), followed by
//! the switching time. We regenerate it as a *measured timeline*: issue
//! requests at controlled offsets and record when the hardware completes
//! them, demonstrating (a) the quantized opportunity grid, (b) that cores
//! of one socket transition together, and (c) that sockets are independent.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::PState;
use hsw_msr::{addresses as msra, fields};
use hsw_node::{CpuId, EngineMode, Platform, Resolution};
use serde::{Deserialize, Serialize};

use crate::survey::RunCtx;

/// One request → completion record.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimelineEntry {
    pub socket: usize,
    pub core: usize,
    pub requested_at_us: f64,
    pub completed_at_us: f64,
}

impl TimelineEntry {
    pub fn latency_us(&self) -> f64 {
        self.completed_at_us - self.requested_at_us
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    pub entries: Vec<TimelineEntry>,
    /// Estimated opportunity period from consecutive same-socket
    /// completions (µs).
    pub estimated_period_us: f64,
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 4: p-state opportunity timeline (estimated period {:.0} µs)",
            self.estimated_period_us
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "  S{}C{:<2} request @ {:>9.1} µs -> complete @ {:>9.1} µs (latency {:>6.1} µs)",
                e.socket,
                e.core,
                e.requested_at_us,
                e.completed_at_us,
                e.latency_us()
            )?;
        }
        Ok(())
    }
}

pub fn run() -> Fig4 {
    run_impl(&RunCtx::new(
        crate::Fidelity::Quick,
        0,
        EngineMode::default(),
    ))
}

fn run_impl(ctx: &RunCtx) -> Fig4 {
    // Deterministic experiment (`seeded() == false`): pinned to the
    // platform default seed regardless of the survey root.
    let mut node = ctx
        .session()
        .seed(Platform::paper().seed)
        .resolution(Resolution::Latency)
        .build();
    // Busy threads on two cores per socket so requests have visible effect.
    for s in 0..2 {
        node.run_on_socket(s, &WorkloadProfile::busy_wait(), 2, 1);
    }
    node.advance_s(0.01);

    let mut entries = Vec::new();
    let mut toggle = false;
    // Issue requests at staggered offsets across sockets and cores.
    for round in 0..8u64 {
        let target = PState::from_mhz(if toggle { 1200 } else { 1300 });
        toggle = !toggle;
        for (socket, core, offset_us) in [(0, 0, 0u64), (0, 1, 90), (1, 0, 170)] {
            node.advance_us(offset_us + 40 * round);
            node.wrmsr(
                CpuId::new(socket, core, 0),
                msra::IA32_PERF_CTL,
                fields::encode_perf_ctl(target),
            )
            .unwrap();
        }
        node.advance_us(1_500);
        for s in 0..2 {
            for ev in node.drain_transitions(s) {
                entries.push(TimelineEntry {
                    socket: s,
                    core: ev.core,
                    requested_at_us: ev.requested_at as f64 / 1e3,
                    completed_at_us: ev.completed_at as f64 / 1e3,
                });
            }
        }
    }
    entries.sort_by(|a, b| a.completed_at_us.total_cmp(&b.completed_at_us));

    // Estimate the opportunity period from distinct same-socket completion
    // instants.
    let mut s0: Vec<f64> = entries
        .iter()
        .filter(|e| e.socket == 0)
        .map(|e| e.completed_at_us)
        .collect();
    s0.dedup_by(|a, b| (*a - *b).abs() < 1.0);
    let diffs: Vec<f64> = s0.windows(2).map(|w| w[1] - w[0]).collect();
    let min_gap = diffs
        .iter()
        .cloned()
        .filter(|d| *d > 10.0)
        .fold(f64::MAX, f64::min);

    Fig4 {
        entries,
        estimated_period_us: min_gap,
    }
}

/// Registry adapter. The timeline is fully deterministic (fixed request
/// offsets, default node seed), so the survey seed is not consumed.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig4"
    }
    fn anchor(&self) -> &'static str {
        "Figure 4"
    }
    fn title(&self) -> &'static str {
        "P-state opportunity timeline"
    }
    fn seeded(&self) -> bool {
        false
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        out.metric("estimated_period_us", r.estimated_period_us);
        out.metric("timeline_entries", r.entries.len() as f64);
        out.check(
            "opportunity period is about 500 us",
            (r.estimated_period_us - 500.0).abs() < 35.0,
            format!("estimated {:.0} us", r.estimated_period_us),
        );
        out.check(
            "timeline captured enough transitions to estimate the grid",
            r.entries.len() >= 12,
            format!("{} entries", r.entries.len()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cached() -> &'static Fig4 {
        static CACHE: std::sync::OnceLock<Fig4> = std::sync::OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn estimated_period_is_about_500_us() {
        let f = cached();
        assert!(
            (f.estimated_period_us - hsw_hwspec::calib::PSTATE_OPPORTUNITY_PERIOD_US as f64).abs()
                < 30.0,
            "period {:.0} µs",
            f.estimated_period_us
        );
    }

    #[test]
    fn same_socket_requests_complete_together() {
        let f = cached();
        // For every socket-0 core-0 completion, core 1's completion in the
        // same round coincides (when both had pending requests).
        let mut by_time: Vec<(f64, Vec<usize>)> = Vec::new();
        for e in f.entries.iter().filter(|e| e.socket == 0) {
            if let Some(last) = by_time.last_mut() {
                if (last.0 - e.completed_at_us).abs() < 1.0 {
                    last.1.push(e.core);
                    continue;
                }
            }
            by_time.push((e.completed_at_us, vec![e.core]));
        }
        let paired = by_time.iter().filter(|(_, cores)| cores.len() >= 2).count();
        assert!(paired >= 4, "only {paired} simultaneous pairs");
    }

    #[test]
    fn sockets_complete_at_different_instants() {
        let f = cached();
        let t0: Vec<f64> = f
            .entries
            .iter()
            .filter(|e| e.socket == 0)
            .map(|e| e.completed_at_us)
            .collect();
        let t1: Vec<f64> = f
            .entries
            .iter()
            .filter(|e| e.socket == 1)
            .map(|e| e.completed_at_us)
            .collect();
        assert!(!t0.is_empty() && !t1.is_empty());
        let coincident = t1
            .iter()
            .filter(|t| t0.iter().any(|u| (*u - **t).abs() < 1.0))
            .count();
        assert!(
            coincident * 2 < t1.len(),
            "sockets should not share opportunity instants ({coincident}/{})",
            t1.len()
        );
    }

    #[test]
    fn latencies_fit_the_opportunity_model() {
        let f = cached();
        for e in &f.entries {
            let lat = e.latency_us();
            assert!(
                (20.0..=560.0).contains(&lat),
                "latency {lat:.1} outside the mechanism's range"
            );
        }
    }
}
