//! Table V — maximizing power consumption (paper Section VIII).
//!
//! FIRESTARTER 1.2 vs. LINPACK vs. mprime under {2500 MHz, Turbo} × EPB
//! {power, balanced, performance}, Hyper-Threading off; the highest
//! 1-minute average AC power and the measured core frequency over that
//! interval.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_node::{EngineMode, Resolution};
use hsw_tools::{assign_stress_load, measure_stress, StressResult};
use serde::{Deserialize, Serialize};

use crate::report::Table;
use crate::survey::RunCtx;
use crate::Fidelity;

/// One cell (benchmark × setting × EPB) of Table V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Cell {
    pub benchmark: String,
    pub turbo_setting: bool,
    pub epb: String,
    pub power_w: f64,
    pub core_ghz: f64,
    pub power_stddev_w: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5 {
    pub cells: Vec<Table5Cell>,
    pub power_table: Table,
    pub freq_table: Table,
}

impl Table5 {
    pub fn cell(&self, benchmark: &str, turbo: bool, epb: &str) -> Option<&Table5Cell> {
        self.cells
            .iter()
            .find(|c| c.benchmark == benchmark && c.turbo_setting == turbo && c.epb == epb)
    }
}

impl std::fmt::Display for Table5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}\n{}", self.power_table, self.freq_table)
    }
}

pub fn run(fidelity: Fidelity) -> Table5 {
    run_seeded(fidelity, 0)
}

/// Like [`run`] but with per-cell node seeds derived from `seed` via the
/// sweep executor (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Table5 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_ctx(&ctx)
}

fn run_ctx(ctx: &RunCtx) -> Table5 {
    let benchmarks = WorkloadProfile::table5_benchmarks();
    let configs: Vec<(bool, EpbClass)> = [false, true]
        .into_iter()
        .flat_map(|turbo| {
            EpbClass::TABLE5_ORDER
                .into_iter()
                .map(move |epb| (turbo, epb))
        })
        .collect();

    // Warm-start split, one sweep per benchmark (the salt): workload
    // assignment and the cold-boot bring-up are identical for the six
    // setting × EPB cells of a benchmark, so each cell forks a converged
    // snapshot and only applies its knobs before measuring.
    let cells: Vec<Table5Cell> = benchmarks
        .iter()
        .enumerate()
        .flat_map(|(i, profile)| {
            ctx.sweep_warm_salted(
                i as u64,
                &configs,
                |builder| {
                    let mut session = builder.resolution(Resolution::Custom(100)).build();
                    // Hyper-Threading not active (paper Table V caption).
                    assign_stress_load(&mut session, profile, false);
                    session.advance_s(0.2); // shared bring-up
                    session
                },
                |node, (turbo_setting, epb), _seed| {
                    let setting = if *turbo_setting {
                        FreqSetting::Turbo
                    } else {
                        FreqSetting::from_mhz(2500)
                    };
                    let r: StressResult = measure_stress(
                        node,
                        setting,
                        *epb,
                        true, // turbo mode active (the *setting* selects its use)
                        ctx.fidelity.table5_run_s(),
                        ctx.fidelity.table5_window_s(),
                    );
                    Table5Cell {
                        benchmark: profile.name.to_string(),
                        turbo_setting: *turbo_setting,
                        epb: epb.short_label().to_string(),
                        power_w: r.max_window_power_w,
                        core_ghz: r.core_ghz,
                        power_stddev_w: r.power_stddev_w,
                    }
                },
            )
        })
        .collect();

    let headers = vec![
        "Benchmark",
        "2500/power",
        "2500/bal",
        "2500/perf",
        "Turbo/power",
        "Turbo/bal",
        "Turbo/perf",
    ];
    let mut power_table = Table::new(
        "Table V: average power over the hottest window in W (HT off)",
        headers.clone(),
    );
    let mut freq_table = Table::new("Table V: measured core frequency in GHz (HT off)", headers);
    for b in &benchmarks {
        let mut prow = vec![b.name.to_string()];
        let mut frow = vec![b.name.to_string()];
        for turbo in [false, true] {
            for epb in EpbClass::TABLE5_ORDER {
                let c = cells
                    .iter()
                    .find(|c| {
                        c.benchmark == b.name
                            && c.turbo_setting == turbo
                            && c.epb == epb.short_label()
                    })
                    .expect("cell");
                prow.push(format!("{:.1}", c.power_w));
                frow.push(format!("{:.2}", c.core_ghz));
            }
        }
        power_table.row(prow);
        freq_table.row(frow);
    }
    Table5 {
        cells,
        power_table,
        freq_table,
    }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "table5"
    }
    fn anchor(&self) -> &'static str {
        "Table V"
    }
    fn title(&self) -> &'static str {
        "Maximum power: FIRESTARTER / LINPACK / mprime"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_ctx(ctx);
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let max_power = r.cells.iter().map(|c| c.power_w).fold(0.0f64, f64::max);
        out.metric("max_window_power_w", max_power);
        // Turbo + performance EPB must never draw less than the fixed
        // 2500 MHz setting with power-saving EPB for the same benchmark.
        let monotone = r.cells.iter().all(|lo| {
            r.cells
                .iter()
                .find(|hi| hi.benchmark == lo.benchmark && hi.turbo_setting && hi.epb == "perf")
                .map(|hi| hi.power_w >= lo.power_w - 1.0)
                .unwrap_or(true)
        });
        out.check(
            "Turbo/perf is the hottest configuration per benchmark",
            monotone,
            format!("max window power {max_power:.1} W"),
        );
        out.check(
            "every configuration produced a positive power reading",
            r.cells.iter().all(|c| c.power_w > 0.0),
            format!("{} cells", r.cells.len()),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib::powercal;

    fn t5() -> &'static Table5 {
        static CACHE: std::sync::OnceLock<Table5> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn firestarter_power_matches_paper_level() {
        let t = t5();
        let c = t.cell("FIRESTARTER", false, "bal").unwrap();
        assert!(
            (c.power_w - powercal::TABLE5_FIRESTARTER_W).abs() < 14.0,
            "FS 2500/bal = {:.1} W (paper {:.1})",
            c.power_w,
            powercal::TABLE5_FIRESTARTER_W
        );
    }

    #[test]
    fn linpack_draws_notably_less_and_runs_slowest() {
        // Paper: "LINPACK causes a notably lower power consumption than the
        // other two benchmarks. It also runs with the lowest frequency."
        let t = t5();
        for turbo in [false, true] {
            let fs = t.cell("FIRESTARTER", turbo, "bal").unwrap();
            let lp = t.cell("LINPACK", turbo, "bal").unwrap();
            let mp = t.cell("mprime", turbo, "bal").unwrap();
            assert!(lp.power_w < fs.power_w, "LINPACK power");
            assert!(lp.power_w < mp.power_w, "LINPACK vs mprime power");
            assert!(lp.core_ghz < fs.core_ghz && lp.core_ghz < mp.core_ghz);
        }
    }

    #[test]
    fn linpack_frequency_near_2_28() {
        let t = t5();
        let lp = t.cell("LINPACK", false, "bal").unwrap();
        assert!(
            (lp.core_ghz - powercal::TABLE5_LINPACK_GHZ).abs() < 0.1,
            "LINPACK at {:.3} GHz (paper {:.2})",
            lp.core_ghz,
            powercal::TABLE5_LINPACK_GHZ
        );
    }

    #[test]
    fn mprime_exceeds_nominal_under_turbo() {
        // Paper: mprime 2.60–2.62 GHz at the Turbo setting.
        let t = t5();
        let mp = t.cell("mprime", true, "bal").unwrap();
        assert!(mp.core_ghz > 2.5, "mprime turbo at {:.3} GHz", mp.core_ghz);
    }

    #[test]
    fn perf_epb_at_2500_enables_turbo_for_mprime() {
        // Paper Table V: mprime 2500/perf runs at 2.59 GHz — above nominal,
        // because EPB=performance keeps turbo active at the base setting.
        let t = t5();
        let perf = t.cell("mprime", false, "perf").unwrap();
        let power = t.cell("mprime", false, "power").unwrap();
        assert!(
            perf.core_ghz > 2.5,
            "mprime 2500/perf at {:.3} GHz",
            perf.core_ghz
        );
        assert!(power.core_ghz <= 2.51);
    }

    #[test]
    fn epb_and_turbo_have_little_power_impact() {
        // Paper: "EPB, turbo mode, and Hyper-Threading settings have very
        // little impact on ... the power consumption."
        let t = t5();
        let powers: Vec<f64> = t
            .cells
            .iter()
            .filter(|c| c.benchmark == "FIRESTARTER")
            .map(|c| c.power_w)
            .collect();
        let min = powers.iter().cloned().fold(f64::MAX, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 8.0, "FS spread {min:.1}..{max:.1} W");
    }

    #[test]
    fn firestarter_is_most_constant() {
        let t = t5();
        let fs = t.cell("FIRESTARTER", false, "bal").unwrap();
        let mp = t.cell("mprime", false, "bal").unwrap();
        assert!(fs.power_stddev_w < mp.power_stddev_w);
    }
}
