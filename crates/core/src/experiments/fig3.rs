//! Figure 3 — histogram of p-state transition latencies (paper
//! Section VI-A).
//!
//! Four campaigns of transitions between 1.2 and 1.3 GHz, differing in when
//! the request is issued relative to the previous change: random, instant,
//! after 400 µs, and around 500 µs (bimodal).

use hsw_exec::WorkloadProfile;
use hsw_hwspec::PState;
use hsw_node::{CpuId, EngineMode, Resolution};
use hsw_tools::{DelayRegime, FtaLat};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::stats::Histogram;
use crate::survey::RunCtx;
use crate::Fidelity;

/// One campaign's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Campaign {
    pub label: String,
    pub latencies_us: Vec<f64>,
    pub histogram: Histogram,
}

impl Fig3Campaign {
    pub fn min_us(&self) -> f64 {
        self.latencies_us.iter().cloned().fold(f64::MAX, f64::min)
    }
    pub fn max_us(&self) -> f64 {
        self.latencies_us.iter().cloned().fold(0.0, f64::max)
    }
    pub fn mean_us(&self) -> f64 {
        self.latencies_us.iter().sum::<f64>() / self.latencies_us.len().max(1) as f64
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    pub campaigns: Vec<Fig3Campaign>,
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 3: frequency transition latencies 1.2 <-> 1.3 GHz (25 µs bins)"
        )?;
        for c in &self.campaigns {
            writeln!(
                f,
                "  {:<14} n={:<5} min {:>6.1} µs  mean {:>6.1} µs  max {:>6.1} µs",
                c.label,
                c.latencies_us.len(),
                c.min_us(),
                c.mean_us(),
                c.max_us()
            )?;
            // Sparkline-style histogram row.
            let max_count = c.histogram.counts.iter().copied().max().unwrap_or(1).max(1);
            let bars: String = c
                .histogram
                .counts
                .iter()
                .map(|&n| {
                    const RAMP: [char; 6] = [' ', '.', ':', '+', '#', '@'];
                    RAMP[(n * (RAMP.len() - 1))
                        .div_ceil(max_count)
                        .min(RAMP.len() - 1)]
                })
                .collect();
            writeln!(f, "    0µs |{bars}| 550µs")?;
        }
        Ok(())
    }
}

/// The four delay regimes of the paper's Figure 3.
pub fn regimes() -> Vec<DelayRegime> {
    vec![
        DelayRegime::Random {
            min_us: 3,
            max_us: 991,
        },
        DelayRegime::Immediate,
        DelayRegime::AfterUs(400),
        DelayRegime::AfterUs(460),
    ]
}

pub fn run(fidelity: Fidelity) -> Fig3 {
    run_impl(&RunCtx::new(fidelity, 0, EngineMode::default()), None)
}

/// Like [`run`] but with node and request-timing seeds derived from
/// `seed` (the survey runner's determinism contract).
pub fn run_seeded(fidelity: Fidelity, seed: u64) -> Fig3 {
    let ctx = RunCtx::new(fidelity, seed, EngineMode::default());
    run_impl(&ctx, Some(seed))
}

fn run_impl(ctx: &RunCtx, seed: Option<u64>) -> Fig3 {
    let n = ctx.fidelity.fig3_samples();
    let campaigns: Vec<Fig3Campaign> = regimes()
        .par_iter()
        .enumerate()
        .map(|(i, regime)| {
            let (node_seed, rng_seed) = match seed {
                None => (7_700 + i as u64, 555 + i as u64),
                Some(root) => (
                    crate::survey::mix_seed(root, 2 * i as u64),
                    crate::survey::mix_seed(root, 2 * i as u64 + 1),
                ),
            };
            let mut node = ctx
                .session()
                .seed(node_seed)
                .resolution(Resolution::Latency)
                .build();
            node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
            node.advance_s(0.01);
            let mut rng = SmallRng::seed_from_u64(rng_seed);
            let tool = FtaLat::new(CpuId::new(0, 0, 0));
            let samples = tool.campaign(
                &mut node,
                PState::from_mhz(1200),
                PState::from_mhz(1300),
                *regime,
                n,
                &mut rng,
            );
            let lat: Vec<f64> = samples.iter().map(|s| s.latency_us).collect();
            Fig3Campaign {
                label: regime.label(),
                histogram: Histogram::build(&lat, 25.0, 550.0),
                latencies_us: lat,
            }
        })
        .collect();
    Fig3 { campaigns }
}

/// Registry adapter.
pub struct Experiment;

impl crate::survey::SurveyExperiment for Experiment {
    fn id(&self) -> &'static str {
        "fig3"
    }
    fn anchor(&self) -> &'static str {
        "Figure 3"
    }
    fn title(&self) -> &'static str {
        "P-state transition latency histograms"
    }
    fn run(&self, ctx: &crate::survey::RunCtx) -> crate::survey::ExperimentResult {
        let r = run_impl(ctx, Some(ctx.seed));
        let mut out = crate::survey::ExperimentResult::capture(self, ctx, &r);
        let random = &r.campaigns[0];
        let immediate = &r.campaigns[1];
        out.metric("random_min_us", random.min_us());
        out.metric("random_max_us", random.max_us());
        out.metric("immediate_mean_us", immediate.mean_us());
        out.check(
            "random requests span roughly 21-524 us",
            random.min_us() < 60.0 && (440.0..560.0).contains(&random.max_us()),
            format!(
                "min {:.1} us, max {:.1} us",
                random.min_us(),
                random.max_us()
            ),
        );
        out.check(
            "immediate re-requests wait out the full ~500 us opportunity period",
            immediate.mean_us() > random.mean_us(),
            format!(
                "immediate mean {:.1} us vs random mean {:.1} us",
                immediate.mean_us(),
                random.mean_us()
            ),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3() -> &'static Fig3 {
        static CACHE: std::sync::OnceLock<Fig3> = std::sync::OnceLock::new();
        CACHE.get_or_init(|| run(Fidelity::Quick))
    }

    #[test]
    fn random_campaign_spans_21_to_524_us() {
        // Paper: "evenly distributed between a minimum of 21 µs and a
        // maximum of 524 µs".
        let f = fig3();
        let c = &f.campaigns[0];
        assert!(c.min_us() < 60.0, "min {:.1}", c.min_us());
        assert!(c.max_us() > 440.0, "max {:.1}", c.max_us());
        assert!(c.max_us() < 560.0, "max {:.1}", c.max_us());
        // Evenly distributed: no bin dominates.
        let max_bin = *c.histogram.counts.iter().max().unwrap();
        assert!(
            max_bin < c.latencies_us.len() / 3,
            "random distribution should be flat-ish"
        );
    }

    #[test]
    fn immediate_campaign_clusters_at_500_us() {
        // Paper: "requesting a frequency transition instantly after a
        // frequency change ... leads to around 500 µs in the majority".
        let f = fig3();
        let c = &f.campaigns[1];
        let near_500 = c
            .latencies_us
            .iter()
            .filter(|l| (440.0..=540.0).contains(*l))
            .count();
        assert!(
            near_500 * 2 > c.latencies_us.len(),
            "{near_500}/{} near 500 µs",
            c.latencies_us.len()
        );
    }

    #[test]
    fn delay_400_campaign_clusters_at_100_us() {
        let f = fig3();
        let c = &f.campaigns[2];
        let near_100 = c
            .latencies_us
            .iter()
            .filter(|l| (40.0..=170.0).contains(*l))
            .count();
        assert!(
            near_100 * 2 > c.latencies_us.len(),
            "{near_100}/{} near 100 µs",
            c.latencies_us.len()
        );
    }

    #[test]
    fn delay_near_500_campaign_is_bimodal() {
        let f = fig3();
        let c = &f.campaigns[3];
        let fast = c.latencies_us.iter().filter(|l| **l < 150.0).count();
        let slow = c.latencies_us.iter().filter(|l| **l > 350.0).count();
        assert!(fast > 5 && slow > 5, "fast {fast} / slow {slow}");
    }

    #[test]
    fn all_latencies_exceed_the_acpi_claim() {
        let f = fig3();
        for c in &f.campaigns {
            assert!(c.min_us() > 10.0, "{}: min {:.1}", c.label, c.min_us());
        }
    }
}
