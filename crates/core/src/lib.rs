//! # haswell-survey — the energy-efficiency feature survey, reproduced
//!
//! This is the paper's deliverable rebuilt as a library: every table and
//! figure of *An Energy Efficiency Feature Survey of the Intel Haswell
//! Processor* (IPDPSW 2015) has an experiment module that drives the
//! simulated node (`hsw-node`) through the re-implemented measurement
//! tools (`hsw-tools`) and renders the same rows/series the paper reports.
//!
//! ```no_run
//! use haswell_survey::{Fidelity, experiments};
//!
//! // Reproduce Table III (uncore frequencies vs. core frequency setting).
//! let t3 = experiments::table3::run(Fidelity::Quick);
//! println!("{t3}");
//! ```
//!
//! Experiments take a [`Fidelity`]: `Quick` for CI-scale runs, `Paper` for
//! the durations the paper used (within simulation reason). Each result
//! type implements `Display` (paper-style text table) and `serde`
//! serialization (for EXPERIMENTS.md generation).

pub mod energy;
pub mod experiments;
pub mod fidelity;
pub mod report;
pub mod stats;
pub mod survey;

pub use fidelity::Fidelity;
pub use report::{Report, Table};
pub use survey::{run_survey, ExperimentResult, RunCtx, SurveyConfig, SurveyExperiment, SurveyRun};
