//! Warm-start executor benches: cold (warmup re-run per point) vs. warm
//! (one warmup, every point forked from its snapshot) wall time on the two
//! sweep shapes where the shared settle phase dominates, plus a fork-cost
//! microbench isolating what one fork itself costs under each strategy.
//!
//! - A Figure 2-class sweep: many short workload points behind one long
//!   idle settle — the shape warm-start snapshot forking was built for.
//! - A Table IV-class sweep: the full frequency ladder (Turbo plus every
//!   100 MHz setting from 2.5 GHz down to 1.2 GHz, 15 points) behind one
//!   FIRESTARTER bring-up at turbo — the paper's Table IV methodology,
//!   where each point is a short re-settle after a setting change.
//! - Fork cost: cold (node build + full restore) vs. full restore vs.
//!   dirty-plane restore on both firmware platforms, with an advancing
//!   identity pass proving all three strategies produce the same bits.
//!
//! Both sweep shapes run the real node simulator through the real warm
//! executor (`RunCtx::sweep_warm`) under both modes and assert the digests
//! are bit-identical — the executor's byte-identity contract — before
//! timing. The full run also asserts the headline claims: warm start cuts
//! the fig2-class sweep's wall time by at least 2x and the table4-class
//! ladder's by at least 6x, and a dirty-plane fork costs less than a
//! quarter of a full restore. Set `HSW_BENCH_SMOKE=1` to run one pass per
//! shape (digest and identity assertions included, criterion timing loops
//! and the ratio assertions skipped) — the CI smoke mode.
//!
//! Results land in `BENCH_warmstart.json` at the repo root (bench id,
//! variants, wall ms, digest).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use haswell_survey::survey::RunCtx;
use haswell_survey::Fidelity;
use hsw_bench::BenchVariant;
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::NodeSpec;
use hsw_node::{CpuId, EngineMode, Node, NodeConfig, Resolution};

fn ctx(warm: bool) -> RunCtx {
    RunCtx::new(Fidelity::Quick, 7, EngineMode::default()).with_warm_start(warm)
}

/// Figure 2-class sweep: a 0.8 s loaded settle (the thermal/RAPL bring-up
/// every panel point shares) followed by a short per-point workload tail.
/// Cold mode re-runs the loaded settle per point. An idle settle would be
/// nearly free — the event engine skips quiet ticks — so the shared phase
/// is a loaded one, as in the real Figure 2 methodology.
fn run_fig2_class(warm: bool) -> f64 {
    let points: Vec<(WorkloadProfile, usize)> = WorkloadProfile::fig2_benchmarks()
        .iter()
        .flat_map(|b| [1usize, 4, 12].into_iter().map(move |c| (b.clone(), c)))
        .collect();
    let values = ctx(warm).sweep_warm(
        &points,
        |builder| {
            let mut session = builder.resolution(Resolution::Custom(100)).build();
            session.run_on_socket(0, &WorkloadProfile::compute(), 12, 1);
            session.advance_s(0.8); // shared loaded settle
            session
        },
        |node, (profile, cores), _seed| {
            node.idle_all();
            node.run_on_socket(0, profile, *cores, 1);
            node.advance_s(0.15);
            node.true_pkg_power_w(0)
        },
    );
    digest(&values)
}

/// Table IV-class sweep: one FIRESTARTER bring-up at turbo shared by the
/// paper's whole frequency ladder — Turbo plus 2.5 GHz down to 1.2 GHz in
/// 100 MHz steps (15 settings), each point a short re-settle at its
/// setting. The 1 s shared settle against 0.1 s points is what makes this
/// the fork fast path's showcase: cold pays 15 × 1.1 s of simulation,
/// warm pays 1 s once plus 15 × 0.1 s.
fn run_table4_class(warm: bool) -> f64 {
    let settings: Vec<FreqSetting> = {
        let mut v = vec![FreqSetting::Turbo];
        for mhz in (1200..=2500).rev().step_by(100) {
            v.push(FreqSetting::from_mhz(mhz));
        }
        v
    };
    let values = ctx(warm).sweep_warm(
        &settings,
        |builder| {
            let mut session = builder.resolution(Resolution::Coarse).build();
            let fs = WorkloadProfile::firestarter();
            for s in 0..2 {
                session.run_on_socket(s, &fs, 12, 2);
            }
            session.set_turbo(true);
            session.advance_s(1.0); // shared bring-up at turbo
            session
        },
        |node, setting, _seed| {
            node.set_setting_all(*setting);
            node.advance_s(0.1);
            node.true_pkg_power_w(0) + node.true_pkg_power_w(1)
        },
    );
    digest(&values)
}

/// Order-sensitive digest: any schedule leak (point order, seed
/// derivation, fork state) changes the bits.
fn digest(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

fn wall_s(f: impl FnOnce() -> f64) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

fn smoke_mode() -> bool {
    std::env::var("HSW_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Per-fork wall cost of the three restore strategies on one platform,
/// after proving they are interchangeable bit-for-bit.
struct ForkCost {
    cold_us: f64,
    full_us: f64,
    dirty_us: f64,
}

/// Measure what one warm-start fork costs under each strategy:
///
/// - `cold`: construct a fresh node and restore the snapshot into it
///   (what the executor did before scratch-node reuse),
/// - `full`: re-seed a scratch node and restore every plane,
/// - `dirty`: `Node::fork_from` — restore only the planes the scratch
///   node's previous point dirtied.
///
/// The timed point touches only the WORK plane (a thread assignment and a
/// power read, no time advance), the sweep-point shape the dirty fast
/// path exists for. A separate identity pass runs advancing points — which
/// dirty essentially every plane — through all three strategies and
/// asserts the digests match bit-for-bit, so the fast path never trades
/// correctness for speed.
fn fork_cost(cfg: &NodeConfig, iters: usize) -> ForkCost {
    let cores = cfg.spec.sku.cores;
    let tpc = cfg.spec.sku.threads_per_core;
    let mut golden = Node::new(cfg.clone());
    let fs = WorkloadProfile::firestarter();
    for s in 0..cfg.spec.sockets {
        golden.run_on_socket(s, &fs, cores, tpc);
    }
    golden.set_turbo(true);
    golden.advance_s(0.3);
    let img = golden.snapshot();

    // Identity: advancing points (these dirty nearly every plane).
    let advancing_point = |node: &mut Node, k: usize| {
        node.set_setting_all(FreqSetting::from_mhz(1200 + 100 * (k as u32 % 9)));
        node.advance_s(0.02);
        node.true_pkg_power_w(0) + node.true_pkg_power_w(cfg.spec.sockets - 1)
    };
    let mut cold_vals = Vec::new();
    for k in 0..8 {
        let mut node = Node::new(cfg.clone().with_seed(9000 + k as u64));
        node.restore(&img);
        cold_vals.push(advancing_point(&mut node, k));
    }
    let mut scratch = Node::new(cfg.clone());
    let mut full_vals = Vec::new();
    for k in 0..8 {
        scratch.reseed(9000 + k as u64);
        scratch.restore(&img);
        full_vals.push(advancing_point(&mut scratch, k));
    }
    let mut scratch2 = Node::new(cfg.clone());
    let mut dirty_vals = Vec::new();
    for k in 0..8 {
        scratch2.fork_from(&img, 9000 + k as u64);
        dirty_vals.push(advancing_point(&mut scratch2, k));
    }
    assert_eq!(
        digest(&cold_vals).to_bits(),
        digest(&full_vals).to_bits(),
        "full-restore fork diverged from cold fork"
    );
    assert_eq!(
        digest(&cold_vals).to_bits(),
        digest(&dirty_vals).to_bits(),
        "dirty-plane fork diverged from cold fork"
    );

    // Timing: WORK-plane-only points, the dirty fast path's target shape.
    let work_point = |node: &mut Node, i: usize| {
        let w = if i.is_multiple_of(2) {
            Some(WorkloadProfile::busy_wait())
        } else {
            None
        };
        node.assign(CpuId::new(0, 0, 0), w);
        black_box(node.true_pkg_power_w(0));
    };

    let t0 = Instant::now();
    for i in 0..iters {
        let mut node = Node::new(cfg.clone().with_seed(20_000 + i as u64));
        node.restore(&img);
        work_point(&mut node, i);
    }
    let cold_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let mut scratch = Node::new(cfg.clone());
    scratch.restore(&img);
    let t0 = Instant::now();
    for i in 0..iters {
        scratch.reseed(20_000 + i as u64);
        scratch.restore(&img);
        work_point(&mut scratch, i);
    }
    let full_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    let mut scratch = Node::new(cfg.clone());
    scratch.fork_from(&img, 19_999); // flush the initial all-dirty state
    work_point(&mut scratch, 1);
    let t0 = Instant::now();
    for i in 0..iters {
        scratch.fork_from(&img, 20_000 + i as u64);
        work_point(&mut scratch, i);
    }
    let dirty_us = t0.elapsed().as_secs_f64() * 1e6 / iters as f64;

    ForkCost {
        cold_us,
        full_us,
        dirty_us,
    }
}

fn warmstart_ratios(c: &mut Criterion) {
    let smoke = smoke_mode();
    hsw_bench::print_once(
        "Warm start: cold (warmup per point) vs warm (snapshot fork) wall time",
        || {
            let (cold_f2, a) = wall_s(|| run_fig2_class(false));
            let (warm_f2, b) = wall_s(|| run_fig2_class(true));
            assert_eq!(a.to_bits(), b.to_bits(), "fig2-class warm/cold diverged");
            let (cold_t4, x) = wall_s(|| run_table4_class(false));
            let (warm_t4, y) = wall_s(|| run_table4_class(true));
            assert_eq!(x.to_bits(), y.to_bits(), "table4-class warm/cold diverged");
            let ratio_f2 = cold_f2 / warm_f2.max(1e-9);
            let ratio_t4 = cold_t4 / warm_t4.max(1e-9);

            let iters = if smoke { 20 } else { 1500 };
            let hsw = fork_cost(&NodeConfig::paper_default().with_seed(7), iters);
            let skx_cfg = NodeConfig::paper_default()
                .with_spec(NodeSpec::skylake_sp_node())
                .with_seed(7);
            let skx = fork_cost(&skx_cfg, iters);

            if !smoke {
                // The headline acceptance claims. The settle-dominated
                // sweeps must actually realize the shared-settle savings...
                assert!(
                    ratio_f2 >= 2.0,
                    "fig2-class warm-start speedup {ratio_f2:.2}x < 2x \
                     (cold {cold_f2:.2} s, warm {warm_f2:.2} s)"
                );
                assert!(
                    ratio_t4 >= 6.0,
                    "table4-class warm-start speedup {ratio_t4:.2}x < 6x \
                     (cold {cold_t4:.2} s, warm {warm_t4:.2} s)"
                );
                // ...and a dirty-plane fork must stay well under a full
                // restore on both firmware platforms.
                for (name, f) in [("haswell", &hsw), ("skylake-sp", &skx)] {
                    assert!(
                        f.dirty_us < 0.25 * f.full_us,
                        "{name}: dirty-plane fork {:.1} us >= 25% of full \
                         restore {:.1} us",
                        f.dirty_us,
                        f.full_us
                    );
                }
            }
            hsw_bench::write_report(
                "warmstart",
                &[
                    BenchVariant::new("fig2_class_cold", cold_f2, a),
                    BenchVariant::new("fig2_class_warm", warm_f2, b),
                    BenchVariant::new("table4_class_cold", cold_t4, x),
                    BenchVariant::new("table4_class_warm", warm_t4, y),
                    BenchVariant::new("fork_cold_haswell", hsw.cold_us * 1e-6, 0.0),
                    BenchVariant::new("fork_full_haswell", hsw.full_us * 1e-6, 0.0),
                    BenchVariant::new("fork_dirty_haswell", hsw.dirty_us * 1e-6, 0.0),
                    BenchVariant::new("fork_cold_skylake_sp", skx.cold_us * 1e-6, 0.0),
                    BenchVariant::new("fork_full_skylake_sp", skx.full_us * 1e-6, 0.0),
                    BenchVariant::new("fork_dirty_skylake_sp", skx.dirty_us * 1e-6, 0.0),
                ],
            );
            format!(
                "Fig 2-class:    cold {cold_f2:.2} s, warm {warm_f2:.2} s -> {ratio_f2:.1}x\n\
                 Table IV-class: cold {cold_t4:.2} s, warm {warm_t4:.2} s -> {ratio_t4:.1}x\n\
                 Fork cost (haswell):    cold {:.1} us, full restore {:.1} us, \
                 dirty planes {:.1} us\n\
                 Fork cost (skylake-sp): cold {:.1} us, full restore {:.1} us, \
                 dirty planes {:.1} us\n\
                 (digests bit-identical across modes and fork strategies; \
                 report: BENCH_warmstart.json)",
                hsw.cold_us, hsw.full_us, hsw.dirty_us, skx.cold_us, skx.full_us, skx.dirty_us
            )
        },
    );
    if smoke {
        return;
    }
    c.bench_function("warmstart_fig2_class_cold", |b| {
        b.iter(|| black_box(run_fig2_class(false)))
    });
    c.bench_function("warmstart_fig2_class_warm", |b| {
        b.iter(|| black_box(run_fig2_class(true)))
    });
    c.bench_function("warmstart_table4_class_cold", |b| {
        b.iter(|| black_box(run_table4_class(false)))
    });
    c.bench_function("warmstart_table4_class_warm", |b| {
        b.iter(|| black_box(run_table4_class(true)))
    });
}

criterion_group! {
    name = warmstart_benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(1));
    targets = warmstart_ratios
}
criterion_main!(warmstart_benches);
