//! Warm-start executor benches: cold (warmup re-run per point) vs. warm
//! (one warmup, every point forked from its snapshot) wall time on the two
//! sweep shapes where the shared settle phase dominates.
//!
//! - A Figure 2-class sweep: many short workload points behind one long
//!   idle settle — the shape warm-start snapshot forking was built for.
//! - A Table IV-class sweep: few frequency-setting points behind one
//!   FIRESTARTER bring-up at turbo.
//!
//! Both shapes run the real node simulator through the real warm executor
//! (`RunCtx::sweep_warm`) under both modes and assert the digests are
//! bit-identical — the executor's byte-identity contract — before timing.
//! The full run also asserts the headline claim: warm start cuts the
//! fig2-class sweep's wall time by at least 2x. Set `HSW_BENCH_SMOKE=1` to
//! run one cold+warm pass per shape (digest assertions included, criterion
//! timing loops and the ratio assertion skipped) — the CI smoke mode.
//!
//! Results land in `BENCH_warmstart.json` at the repo root (bench id,
//! variants, wall ms, digest).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use haswell_survey::survey::RunCtx;
use haswell_survey::Fidelity;
use hsw_bench::BenchVariant;
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{EngineMode, Resolution};

fn ctx(warm: bool) -> RunCtx {
    RunCtx::new(Fidelity::Quick, 7, EngineMode::default()).with_warm_start(warm)
}

/// Figure 2-class sweep: a 0.8 s loaded settle (the thermal/RAPL bring-up
/// every panel point shares) followed by a short per-point workload tail.
/// Cold mode re-runs the loaded settle per point. An idle settle would be
/// nearly free — the event engine skips quiet ticks — so the shared phase
/// is a loaded one, as in the real Figure 2 methodology.
fn run_fig2_class(warm: bool) -> f64 {
    let points: Vec<(WorkloadProfile, usize)> = WorkloadProfile::fig2_benchmarks()
        .iter()
        .flat_map(|b| [1usize, 4, 12].into_iter().map(move |c| (b.clone(), c)))
        .collect();
    let values = ctx(warm).sweep_warm(
        &points,
        |builder| {
            let mut session = builder.resolution(Resolution::Custom(100)).build();
            session.run_on_socket(0, &WorkloadProfile::compute(), 12, 1);
            session.advance_s(0.8); // shared loaded settle
            session
        },
        |mut node, (profile, cores), _seed| {
            node.idle_all();
            node.run_on_socket(0, profile, *cores, 1);
            node.advance_s(0.15);
            node.true_pkg_power_w(0)
        },
    );
    digest(&values)
}

/// Table IV-class sweep: one FIRESTARTER bring-up at turbo shared by every
/// frequency-setting point.
fn run_table4_class(warm: bool) -> f64 {
    let settings: Vec<FreqSetting> = {
        let mut v = vec![FreqSetting::Turbo];
        for mhz in [2500u32, 2400, 2300, 2200, 2100] {
            v.push(FreqSetting::from_mhz(mhz));
        }
        v
    };
    let values = ctx(warm).sweep_warm(
        &settings,
        |builder| {
            let mut session = builder.resolution(Resolution::Coarse).build();
            let fs = WorkloadProfile::firestarter();
            for s in 0..2 {
                session.run_on_socket(s, &fs, 12, 2);
            }
            session.set_turbo(true);
            session.advance_s(1.0); // shared bring-up at turbo
            session
        },
        |mut node, setting, _seed| {
            node.set_setting_all(*setting);
            node.advance_s(0.2);
            node.true_pkg_power_w(0) + node.true_pkg_power_w(1)
        },
    );
    digest(&values)
}

/// Order-sensitive digest: any schedule leak (point order, seed
/// derivation, fork state) changes the bits.
fn digest(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

fn wall_s(f: impl FnOnce() -> f64) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

fn smoke_mode() -> bool {
    std::env::var("HSW_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn warmstart_ratios(c: &mut Criterion) {
    let smoke = smoke_mode();
    hsw_bench::print_once(
        "Warm start: cold (warmup per point) vs warm (snapshot fork) wall time",
        || {
            let (cold_f2, a) = wall_s(|| run_fig2_class(false));
            let (warm_f2, b) = wall_s(|| run_fig2_class(true));
            assert_eq!(a.to_bits(), b.to_bits(), "fig2-class warm/cold diverged");
            let (cold_t4, x) = wall_s(|| run_table4_class(false));
            let (warm_t4, y) = wall_s(|| run_table4_class(true));
            assert_eq!(x.to_bits(), y.to_bits(), "table4-class warm/cold diverged");
            let ratio_f2 = cold_f2 / warm_f2.max(1e-9);
            let ratio_t4 = cold_t4 / warm_t4.max(1e-9);
            if !smoke {
                // The headline acceptance claim: the settle-dominated sweep
                // must be at least twice as fast with snapshot forking.
                assert!(
                    ratio_f2 >= 2.0,
                    "fig2-class warm-start speedup {ratio_f2:.2}x < 2x \
                     (cold {cold_f2:.2} s, warm {warm_f2:.2} s)"
                );
            }
            hsw_bench::write_report(
                "warmstart",
                &[
                    BenchVariant::new("fig2_class_cold", cold_f2, a),
                    BenchVariant::new("fig2_class_warm", warm_f2, b),
                    BenchVariant::new("table4_class_cold", cold_t4, x),
                    BenchVariant::new("table4_class_warm", warm_t4, y),
                ],
            );
            format!(
                "Fig 2-class:   cold {cold_f2:.2} s, warm {warm_f2:.2} s -> {ratio_f2:.1}x\n\
                 Table IV-class: cold {cold_t4:.2} s, warm {warm_t4:.2} s -> {ratio_t4:.1}x\n\
                 (digests bit-identical across modes; report: BENCH_warmstart.json)"
            )
        },
    );
    if smoke {
        return;
    }
    c.bench_function("warmstart_fig2_class_cold", |b| {
        b.iter(|| black_box(run_fig2_class(false)))
    });
    c.bench_function("warmstart_fig2_class_warm", |b| {
        b.iter(|| black_box(run_fig2_class(true)))
    });
    c.bench_function("warmstart_table4_class_cold", |b| {
        b.iter(|| black_box(run_table4_class(false)))
    });
    c.bench_function("warmstart_table4_class_warm", |b| {
        b.iter(|| black_box(run_table4_class(true)))
    });
}

criterion_group! {
    name = warmstart_benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(1));
    targets = warmstart_ratios
}
criterion_main!(warmstart_benches);
