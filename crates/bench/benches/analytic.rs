//! Analytic surrogate tier benches: closed-form per-point cost vs. the
//! full simulator's warm path, plus the surrogate fleet ladder.
//!
//! The headline claim (asserted here, in smoke mode too): the surrogate
//! answers a Table IV-class operating point at least 100x faster than the
//! full simulator's warm path answers the same point. The fleet ladder
//! times the surrogate executor (spot checks included — they are part of
//! the tier's cost) at 1k / 100k / 1M members; smoke mode stops at 1k.
//!
//! Results land in `BENCH_analytic.json` at the repo root (bench id,
//! variants, wall ms, digest). Set `HSW_BENCH_SMOKE=1` for the CI smoke
//! pass (one timing pass, criterion loops skipped, 100x assert kept).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use haswell_survey::experiments::table4;
use haswell_survey::survey::RunCtx;
use haswell_survey::Fidelity;
use hsw_analytic::{AnalyticModel, OperatingPoint};
use hsw_bench::BenchVariant;
use hsw_exec::WorkloadProfile;
use hsw_fleet::VariationModel;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::NodeSpec;
use hsw_node::{EngineMode, Resolution};

fn smoke_mode() -> bool {
    std::env::var("HSW_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Order-sensitive digest: any schedule leak changes the bits.
fn digest(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

/// The full simulator's warm path over Table IV (one shared bring-up, six
/// forked columns). Returns (wall seconds per column, digest).
fn full_table4(seed: u64) -> (f64, f64) {
    let t0 = Instant::now();
    let t4 = table4::run_seeded(Fidelity::Quick, seed);
    let wall = t0.elapsed().as_secs_f64();
    let d = digest(
        &t4.points
            .iter()
            .flat_map(|p| [p.socket0.pkg_w, p.socket1.gips])
            .collect::<Vec<_>>(),
    );
    (wall / t4.points.len() as f64, d)
}

/// The closed form over the same six columns, `reps` times. Returns (wall
/// seconds per column, digest of one pass).
fn surrogate_table4(reps: usize) -> (f64, f64) {
    let node = NodeSpec::paper_test_node();
    let model = AnalyticModel::from_node_spec(&node, true);
    let fs = WorkloadProfile::firestarter();
    let settings: Vec<FreqSetting> = table4::table4_settings();
    let mut d = 0.0;
    let t0 = Instant::now();
    for _ in 0..reps {
        let mut vals = Vec::with_capacity(settings.len() * 2);
        for &setting in &settings {
            let pred = model.predict(&OperatingPoint {
                profile: &fs,
                setting,
                epb: hsw_hwspec::EpbClass::Balanced,
                turbo_enabled: true,
                active_cores: 12,
                smt: true,
            });
            vals.push(pred.sockets[0].pkg_w);
            vals.push(pred.sockets[1].gips);
        }
        d = black_box(digest(&vals));
    }
    let wall = t0.elapsed().as_secs_f64();
    (wall / (reps * settings.len()) as f64, d)
}

/// One surrogate fleet pass through the real executor (spot checks and
/// all). Returns (wall seconds, digest of the surrogate answers).
fn surrogate_fleet(n: usize) -> (f64, f64) {
    let ctx = RunCtx::new(Fidelity::Quick, 7, EngineMode::default());
    let model = VariationModel::paper_fleet();
    let nominal = NodeSpec::paper_test_node();
    let wl = WorkloadProfile::compute();
    let t0 = Instant::now();
    let members = ctx.sweep_fleet_surrogate(
        n,
        &model,
        |builder| {
            let mut session = builder.resolution(Resolution::Coarse).build();
            for s in 0..2 {
                session.run_on_socket(s, &WorkloadProfile::compute(), 5, 1);
            }
            session.set_turbo(true);
            session.advance_s(0.5);
            session
        },
        |node, _var, _id, _seed| {
            node.advance_s(0.15);
            node.true_pkg_power_w(0) + node.true_pkg_power_w(1)
        },
        |var, _id, _seed| {
            let chip = AnalyticModel::for_chip(&nominal, var, true);
            let pred = chip.predict(&OperatingPoint::new(&wl, FreqSetting::Turbo, 5));
            pred.sockets[0].pkg_w + pred.sockets[1].pkg_w
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    let vals: Vec<f64> = members.iter().map(|m| m.value).collect();
    (wall, digest(&vals))
}

fn analytic_benches(c: &mut Criterion) {
    let smoke = smoke_mode();
    hsw_bench::print_once(
        "Analytic surrogate: closed-form point cost vs full-sim warm path, fleet ladder",
        || {
            let (full_s, full_d) = full_table4(7);
            let reps = if smoke { 50 } else { 500 };
            let (sur_s, sur_d) = surrogate_table4(reps);
            let speedup = full_s / sur_s.max(1e-12);
            // The tentpole claim, smoke-safe: answered points must be at
            // least two orders of magnitude cheaper than simulated ones.
            assert!(
                speedup >= 100.0,
                "surrogate speedup {speedup:.0}x < 100x \
                 (full {full_s:.4} s/point, surrogate {sur_s:.9} s/point)"
            );
            let ladder: Vec<usize> = if smoke {
                vec![1_000]
            } else {
                vec![1_000, 100_000, 1_000_000]
            };
            let mut variants = vec![
                BenchVariant::new("table4_full_per_point", full_s, full_d),
                BenchVariant::new("table4_surrogate_per_point", sur_s, sur_d),
            ];
            let mut ladder_lines = String::new();
            for &n in &ladder {
                let (w, d) = surrogate_fleet(n);
                ladder_lines.push_str(&format!("  fleet {n:>9} members: {:.1} ms\n", w * 1e3));
                variants.push(BenchVariant::new(format!("fleet_surrogate_{n}"), w, d));
            }
            hsw_bench::write_report("analytic", &variants);
            format!(
                "Table IV point: full {:.1} ms, surrogate {:.4} ms -> {speedup:.0}x\n\
                 {ladder_lines}(report: BENCH_analytic.json)",
                full_s * 1e3,
                sur_s * 1e3,
            )
        },
    );
    if smoke {
        return;
    }
    c.bench_function("surrogate_table4_column", |b| {
        b.iter(|| black_box(surrogate_table4(10)))
    });
    c.bench_function("surrogate_fleet_1k", |b| {
        b.iter(|| black_box(surrogate_fleet(1_000)))
    });
}

criterion_group! {
    name = analytic;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(1));
    targets = analytic_benches
}
criterion_main!(analytic);
