//! Regenerate and time Tables I–V of the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use haswell_survey::{experiments, Fidelity};
use hsw_bench::print_once;

fn bench_table1(c: &mut Criterion) {
    print_once("Table I (microarchitecture comparison)", || {
        experiments::table1::run().to_string()
    });
    c.bench_function("table1_microarch", |b| {
        b.iter(|| black_box(experiments::table1::run()))
    });
}

fn bench_table2(c: &mut Criterion) {
    print_once("Table II (test system, measured idle power)", || {
        experiments::table2::run(Fidelity::Quick).to_string()
    });
    c.bench_function("table2_test_system", |b| {
        b.iter(|| black_box(experiments::table2::run(Fidelity::Quick)))
    });
}

fn bench_table3(c: &mut Criterion) {
    print_once("Table III (uncore frequencies)", || {
        experiments::table3::run(Fidelity::Quick).to_string()
    });
    c.bench_function("table3_uncore_freq", |b| {
        b.iter(|| black_box(experiments::table3::run(Fidelity::Quick)))
    });
}

fn bench_table4(c: &mut Criterion) {
    print_once("Table IV (FIRESTARTER vs frequency settings)", || {
        experiments::table4::run(Fidelity::Quick).to_string()
    });
    c.bench_function("table4_firestarter_dvfs", |b| {
        b.iter(|| black_box(experiments::table4::run(Fidelity::Quick)))
    });
}

fn bench_table5(c: &mut Criterion) {
    print_once("Table V (maximum power)", || {
        experiments::table5::run(Fidelity::Quick).to_string()
    });
    c.bench_function("table5_max_power", |b| {
        b.iter(|| black_box(experiments::table5::run(Fidelity::Quick)))
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(12))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_table1, bench_table2, bench_table3, bench_table4, bench_table5
}
criterion_main!(tables);
