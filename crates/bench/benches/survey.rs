//! Serial vs. parallel full-survey benchmark: the runner's scaling story.
//!
//! The survey runner fans the registry across worker threads with seeds
//! derived from `(root seed, experiment id)` only, so parallelism is free
//! of result drift — this bench measures what it buys in wall-clock. A
//! cut-down `--only` subset keeps iteration times in bench territory;
//! the full 16-experiment survey is what `survey --jobs N` exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use haswell_survey::survey::{run_survey, SurveyConfig};
use haswell_survey::Fidelity;
use hsw_node::EngineMode;

/// A subset of experiments with enough per-experiment cost to show the
/// scheduler's effect without minute-long bench iterations.
fn subset() -> Vec<String> {
    [
        "fig1",
        "fig4",
        "fig7",
        "fig8",
        "section8",
        "sku_extrapolation",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn bench_survey_jobs(c: &mut Criterion) {
    for jobs in [
        1,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    ] {
        let cfg = SurveyConfig {
            fidelity: Fidelity::Quick,
            seed: 42,
            jobs,
            only: Some(subset()),
            engine: EngineMode::default(),
            warm_start: true,
            fleet_size: None,
            platform: Default::default(),
        };
        c.bench_function(&format!("survey_subset_jobs_{jobs}"), |b| {
            b.iter(|| black_box(run_survey(black_box(&cfg)).unwrap()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_survey_jobs
}
criterion_main!(benches);
