//! Engine-mode benches: fixed-tick vs. event (coalescing) wall time on the
//! two workload classes that bracket the survey.
//!
//! - A Table V-class steady-state run: one spinning core at a fixed
//!   sub-TDP setting, multi-second measurement window (the shape of the
//!   Table III/V and stress campaigns that dominate survey wall time).
//!   Here the event engine can prove quiescence and coalesce.
//! - A Figures 5/6-class latency run: a near-idle node with periodic
//!   wake activity at fine resolution, where coalescing also applies
//!   between events.
//!
//! The headline ratio (fixed wall time / event wall time, same simulated
//! span, bit-identical results) is printed once before the criterion
//! timings.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use hsw_bench::print_once;
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{EngineMode, Node, Platform, Resolution};

/// Table V-class steady state: one spinning core, fixed 2.0 GHz, the rest
/// of the node idle. Multi-second window.
fn steady_node(engine: EngineMode) -> Node {
    let mut node = Platform::paper()
        .with_engine(engine)
        .session()
        .seed(11)
        .build()
        .into_node();
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    node.set_setting_all(FreqSetting::from_mhz(2000));
    node.advance_s(0.05); // settle transients before the timed span
    node
}

fn run_steady(engine: EngineMode, sim_s: f64) -> f64 {
    let mut node = steady_node(engine);
    node.advance_s(sim_s);
    node.true_pkg_power_w(0)
}

/// Figures 5/6-class: an idle node at latency resolution (the c-state
/// sweeps spend most of their simulated time waiting between wake events).
fn run_idle_fine(engine: EngineMode, sim_s: f64) -> f64 {
    let mut node = Platform::paper()
        .with_engine(engine)
        .session()
        .seed(12)
        .resolution(Resolution::Fine)
        .build()
        .into_node();
    node.idle_all();
    node.advance_s(sim_s);
    node.measure_ac_average(0.1)
}

fn wall_s(f: impl FnOnce() -> f64) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

fn engine_ratios(c: &mut Criterion) {
    print_once(
        "Engine: fixed vs event wall time (bit-identical results)",
        || {
            let (fixed_steady, a) = wall_s(|| run_steady(EngineMode::Fixed, 4.0));
            let (event_steady, b) = wall_s(|| run_steady(EngineMode::Event, 4.0));
            assert_eq!(a.to_bits(), b.to_bits(), "engines diverged (steady)");
            let (fixed_idle, x) = wall_s(|| run_idle_fine(EngineMode::Fixed, 1.0));
            let (event_idle, y) = wall_s(|| run_idle_fine(EngineMode::Event, 1.0));
            assert_eq!(x.to_bits(), y.to_bits(), "engines diverged (idle)");
            format!(
                "Table V-class steady 4 s:  fixed {fixed_steady:.2} s, event {event_steady:.2} s \
             -> {:.1}x\n\
             Fig 5/6-class idle 1 s:    fixed {fixed_idle:.2} s, event {event_idle:.2} s \
             -> {:.1}x",
                fixed_steady / event_steady.max(1e-9),
                fixed_idle / event_idle.max(1e-9),
            )
        },
    );
    c.bench_function("engine_steady_4s_fixed", |b| {
        b.iter(|| black_box(run_steady(EngineMode::Fixed, 4.0)))
    });
    c.bench_function("engine_steady_4s_event", |b| {
        b.iter(|| black_box(run_steady(EngineMode::Event, 4.0)))
    });
    c.bench_function("engine_idle_fine_1s_fixed", |b| {
        b.iter(|| black_box(run_idle_fine(EngineMode::Fixed, 1.0)))
    });
    c.bench_function("engine_idle_fine_1s_event", |b| {
        b.iter(|| black_box(run_idle_fine(EngineMode::Event, 1.0)))
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(1));
    targets = engine_ratios
}
criterion_main!(engine);
