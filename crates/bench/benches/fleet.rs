//! Fleet executor benches: warm (one golden warmup, every member forked
//! from its snapshot) vs. cold (golden warmup re-run per member) wall time,
//! plus member-count scaling of the warm path.
//!
//! Both modes run the real fleet executor (`RunCtx::sweep_fleet`) with the
//! paper variation model and assert the digests are bit-identical — the
//! executor's byte-identity contract — before timing. The full run also
//! asserts the headline claim: with the golden settle shared, warm forking
//! cuts the fleet's wall time by at least 2x. Set `HSW_BENCH_SMOKE=1` to
//! run one cold+warm pass (digest assertion included, criterion timing
//! loops and the ratio assertion skipped) — the CI smoke mode.
//!
//! Results land in `BENCH_fleet.json` at the repo root (bench id, variants,
//! wall ms, digest).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use haswell_survey::survey::RunCtx;
use haswell_survey::Fidelity;
use hsw_bench::BenchVariant;
use hsw_exec::WorkloadProfile;
use hsw_fleet::VariationModel;
use hsw_node::{EngineMode, Resolution};

fn ctx(warm: bool) -> RunCtx {
    RunCtx::new(Fidelity::Quick, 7, EngineMode::default()).with_warm_start(warm)
}

/// One fleet pass: a loaded golden bring-up at turbo (the settle phase all
/// members share), then a short measurement window per varied member.
fn run_fleet(warm: bool, n: usize) -> f64 {
    let model = VariationModel::paper_fleet();
    let powers = ctx(warm).sweep_fleet(
        n,
        &model,
        |builder| {
            let mut session = builder.resolution(Resolution::Coarse).build();
            for s in 0..2 {
                session.run_on_socket(s, &WorkloadProfile::compute(), 5, 1);
            }
            session.set_turbo(true);
            session.advance_s(0.5); // golden settle shared by every member
            session
        },
        |node, _var, _id, _seed| {
            node.advance_s(0.15);
            node.true_pkg_power_w(0) + node.true_pkg_power_w(1)
        },
    );
    digest(&powers)
}

/// Order-sensitive digest: any schedule leak (member order, node-seed
/// derivation, fork state) changes the bits.
fn digest(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

fn wall_s(f: impl FnOnce() -> f64) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

fn smoke_mode() -> bool {
    std::env::var("HSW_BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn fleet_ratios(c: &mut Criterion) {
    let smoke = smoke_mode();
    let n = if smoke { 8 } else { 24 };
    hsw_bench::print_once(
        "Fleet executor: cold (warmup per member) vs warm (golden-node fork) wall time",
        || {
            let (cold_s, a) = wall_s(|| run_fleet(false, n));
            let (warm_s, b) = wall_s(|| run_fleet(true, n));
            assert_eq!(a.to_bits(), b.to_bits(), "fleet warm/cold diverged");
            let ratio = cold_s / warm_s.max(1e-9);
            if !smoke {
                assert!(
                    ratio >= 2.0,
                    "fleet warm-start speedup {ratio:.2}x < 2x \
                     (cold {cold_s:.2} s, warm {warm_s:.2} s)"
                );
            }
            let (warm_2n_s, d2) = wall_s(|| run_fleet(true, 2 * n));
            hsw_bench::write_report(
                "fleet",
                &[
                    BenchVariant::new("fleet_cold", cold_s, a),
                    BenchVariant::new("fleet_warm", warm_s, b),
                    BenchVariant::new("fleet_warm_2x_members", warm_2n_s, d2),
                ],
            );
            format!(
                "Fleet ({n} members): cold {cold_s:.2} s, warm {warm_s:.2} s -> {ratio:.1}x\n\
                 Warm scaling: {n} members {warm_s:.2} s, {} members {warm_2n_s:.2} s\n\
                 (digests bit-identical across modes; report: BENCH_fleet.json)",
                2 * n
            )
        },
    );
    if smoke {
        return;
    }
    c.bench_function("fleet_cold_24", |b| {
        b.iter(|| black_box(run_fleet(false, 24)))
    });
    c.bench_function("fleet_warm_24", |b| {
        b.iter(|| black_box(run_fleet(true, 24)))
    });
}

criterion_group! {
    name = fleet_benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(1));
    targets = fleet_ratios
}
criterion_main!(fleet_benches);
