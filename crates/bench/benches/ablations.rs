//! Ablation benches for the design choices DESIGN.md calls out, plus a
//! simulator-throughput measurement.
//!
//! Each ablation prints the comparison once (the quantity of interest) and
//! then times the underlying experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hsw_bench::print_once;
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_node::Platform;
use hsw_power::DramRaplMode;

/// A phase-flipping workload: alternates between memory-bound and
/// compute-bound character faster than EET's 1 ms poll can track.
fn run_eet_case(eet: bool) -> f64 {
    let mut node = Platform::paper().session().eet(eet).seed(1).build();
    node.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 1);
    node.set_setting_all(FreqSetting::Turbo);
    node.advance_s(0.5);
    node.true_pkg_power_w(0)
}

fn ablation_eet(c: &mut Criterion) {
    print_once("Ablation: energy-efficient turbo", || {
        let on = run_eet_case(true);
        let off = run_eet_case(false);
        format!(
            "memory-bound at Turbo: pkg power {on:.1} W with EET vs {off:.1} W without\n\
             (EET caps useless turbo for stall-dominated load — paper Section II-E)"
        )
    });
    c.bench_function("ablation_eet", |b| {
        b.iter(|| black_box((run_eet_case(true), run_eet_case(false))))
    });
}

/// UFS schedule vs. pinned-max uncore (EPB=performance) for a compute-bound
/// single thread: the schedule saves uncore power with no compute benefit.
fn run_ufs_case(epb: EpbClass) -> f64 {
    let mut node = Platform::paper().session().seed(2).build();
    node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
    node.set_epb_all(epb);
    node.set_setting_all(FreqSetting::from_mhz(2500));
    node.advance_s(0.5);
    node.true_pkg_power_w(0)
}

fn ablation_ufs(c: &mut Criterion) {
    print_once("Ablation: UFS schedule vs pinned-max uncore", || {
        let sched = run_ufs_case(EpbClass::Balanced);
        let pinned = run_ufs_case(EpbClass::Performance);
        format!(
            "single spinning core: pkg {sched:.1} W with the UFS schedule vs \
             {pinned:.1} W with the uncore pinned at 3.0 GHz\n\
             (the Table III schedule exists to save exactly this power)"
        )
    });
    c.bench_function("ablation_ufs", |b| {
        b.iter(|| {
            black_box((
                run_ufs_case(EpbClass::Balanced),
                run_ufs_case(EpbClass::Performance),
            ))
        })
    });
}

/// PCPS vs. chip-wide p-states for an imbalanced 4-core workload.
fn run_pcps_case(per_core: bool) -> f64 {
    let mut node = Platform::paper().session().seed(3).build();
    node.run_on_socket(0, &WorkloadProfile::compute(), 4, 1);
    if per_core {
        node.set_setting(0, 0, FreqSetting::from_mhz(2500));
        for c in 1..4 {
            node.set_setting(0, c, FreqSetting::from_mhz(1200));
        }
    } else {
        // A chip-wide domain must keep every core at the fast setting to
        // serve the one latency-critical core.
        node.set_setting_all(FreqSetting::from_mhz(2500));
    }
    node.advance_s(0.5);
    node.true_pkg_power_w(0)
}

fn ablation_pcps(c: &mut Criterion) {
    print_once("Ablation: per-core p-states vs chip-wide", || {
        let pcps = run_pcps_case(true);
        let chip = run_pcps_case(false);
        format!(
            "1 fast + 3 slow cores: pkg {pcps:.1} W with PCPS vs {chip:.1} W chip-wide\n\
             (the FIVR/PCPS payoff of paper Section II-D)"
        )
    });
    c.bench_function("ablation_pcps", |b| {
        b.iter(|| black_box((run_pcps_case(true), run_pcps_case(false))))
    });
}

/// RAPL DRAM mode 0 vs mode 1 readings (paper Section IV).
fn run_dram_mode(mode: DramRaplMode) -> f64 {
    let mut node = Platform::paper().session().dram_mode(mode).seed(4).build();
    node.run_on_socket(0, &WorkloadProfile::memory_bound(), 12, 1);
    node.advance_s(0.4);
    let addr = hsw_msr::addresses::MSR_DRAM_ENERGY_STATUS;
    let before = node.rdmsr(hsw_node::CpuId::new(0, 0, 0), addr).unwrap() as u32;
    node.advance_s(1.0);
    let after = node.rdmsr(hsw_node::CpuId::new(0, 0, 0), addr).unwrap() as u32;
    after.wrapping_sub(before) as f64 * hsw_hwspec::calib::DRAM_ENERGY_UNIT_UJ * 1e-6
}

fn ablation_dram_mode(c: &mut Criterion) {
    print_once("Ablation: RAPL DRAM mode 0 vs mode 1", || {
        let m1 = run_dram_mode(DramRaplMode::Mode1);
        let m0 = run_dram_mode(DramRaplMode::Mode0);
        format!(
            "1 s of streaming: {m1:.1} J in mode 1 vs {m0:.1} J in mode 0\n\
             (mode 0 readings are 'unreasonable high' — paper Section IV)"
        )
    });
    c.bench_function("ablation_dram_mode", |b| {
        b.iter(|| {
            black_box((
                run_dram_mode(DramRaplMode::Mode1),
                run_dram_mode(DramRaplMode::Mode0),
            ))
        })
    });
}

/// Raw simulator throughput: simulated seconds per wall second for the
/// fully loaded node.
fn sim_throughput(c: &mut Criterion) {
    c.bench_function("sim_throughput_1s_fullload", |b| {
        b.iter_with_setup(
            || {
                let mut node = Platform::paper().session().seed(5).build();
                let fs = WorkloadProfile::firestarter();
                for s in 0..2 {
                    node.run_on_socket(s, &fs, 12, 2);
                }
                node.set_setting_all(FreqSetting::Turbo);
                node.advance_s(0.1);
                node
            },
            |mut node| {
                node.advance_s(1.0);
                black_box(node.true_rapl_power_w())
            },
        )
    });
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(10))
        .warm_up_time(Duration::from_secs(1));
    targets = ablation_eet, ablation_ufs, ablation_pcps, ablation_dram_mode,
              sim_throughput
}
criterion_main!(ablations);
