//! Regenerate and time Figures 2–8 and the Section VIII analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use haswell_survey::{experiments, Fidelity};
use hsw_bench::print_once;

fn bench_fig2(c: &mut Criterion) {
    print_once("Figure 2 (RAPL vs AC)", || {
        experiments::fig2::run(Fidelity::Quick).to_string()
    });
    c.bench_function("fig2_rapl_accuracy", |b| {
        b.iter(|| black_box(experiments::fig2::run(Fidelity::Quick)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    print_once("Figure 3 (p-state transition latencies)", || {
        experiments::fig3::run(Fidelity::Quick).to_string()
    });
    c.bench_function("fig3_pstate_latency", |b| {
        b.iter(|| black_box(experiments::fig3::run(Fidelity::Quick)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    print_once("Figure 4 (opportunity timeline)", || {
        experiments::fig4::run().to_string()
    });
    c.bench_function("fig4_opportunity_timeline", |b| {
        b.iter(|| black_box(experiments::fig4::run()))
    });
}

fn bench_fig56(c: &mut Criterion) {
    print_once("Figures 5/6 (c-state wake latencies)", || {
        experiments::fig56::run(Fidelity::Quick).to_string()
    });
    c.bench_function("fig56_cstate_latency", |b| {
        b.iter(|| black_box(experiments::fig56::run(Fidelity::Quick)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    print_once("Figure 7 (bandwidth vs frequency)", || {
        experiments::fig7::run().to_string()
    });
    c.bench_function("fig7_bw_vs_freq", |b| {
        b.iter(|| black_box(experiments::fig7::run()))
    });
}

fn bench_fig8(c: &mut Criterion) {
    print_once("Figure 8 (bandwidth heatmaps)", || {
        experiments::fig8::run().to_string()
    });
    c.bench_function("fig8_bw_heatmap", |b| {
        b.iter(|| black_box(experiments::fig8::run()))
    });
}

fn bench_section8(c: &mut Criterion) {
    print_once("Section VIII (FIRESTARTER)", || {
        experiments::section8::run().to_string()
    });
    c.bench_function("section8_firestarter_ipc", |b| {
        b.iter(|| black_box(experiments::section8::run()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(12))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_fig2, bench_fig3, bench_fig4, bench_fig56, bench_fig7,
              bench_fig8, bench_section8
}
criterion_main!(figures);
