//! Component micro-benchmarks: the hot inner functions of the simulator.
//! These are the performance-engineering counterpart of the experiment
//! benches — they tell a contributor what a PCU solve, a power evaluation,
//! a bandwidth query or a pipeline analysis costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use hsw_exec::{FirestarterKernel, WorkloadProfile};
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{EpbClass, MicroArch, SkuSpec};
use hsw_memhier::{dram_read_bandwidth_gbs, l3_read_bandwidth_gbs, Cache};
use hsw_pcu::{PcuController, PcuInputs};
use hsw_power::{package_power_w, CoreElecState};

fn bench_pcu_solve(c: &mut Criterion) {
    let spec = SkuSpec::xeon_e5_2680_v3();
    let fs = WorkloadProfile::firestarter();
    let inputs = PcuInputs {
        spec: &spec,
        socket_power_mult: 1.0,
        setting: FreqSetting::Turbo,
        epb: EpbClass::Balanced,
        turbo_enabled: true,
        active_cores: 12,
        gated_idle_cores: 0,
        activity: fs.activity(true),
        avx_level: 1,
        stall_fraction: fs.stall_fraction,
        eet_limit_mhz: u32::MAX,
        avg_pkg_w: spec.tdp_w,
    };
    c.bench_function("micro_pcu_solve_tdp_limited", |b| {
        b.iter(|| black_box(PcuController::solve(black_box(&inputs))))
    });
}

fn bench_package_power(c: &mut Criterion) {
    let spec = SkuSpec::xeon_e5_2680_v3();
    let cores = vec![
        CoreElecState {
            mhz: 2300,
            activity: 1.0,
            license_level: 1,
            power_gated: false,
        };
        12
    ];
    c.bench_function("micro_package_power_eval", |b| {
        b.iter(|| black_box(package_power_w(&spec, 1.0, black_box(&cores), 2400)))
    });
}

fn bench_bandwidth_queries(c: &mut Criterion) {
    let spec = SkuSpec::xeon_e5_2680_v3();
    c.bench_function("micro_bandwidth_l3_plus_dram", |b| {
        b.iter(|| {
            black_box(l3_read_bandwidth_gbs(&spec, 12, 2, 2.5, 3.0))
                + black_box(dram_read_bandwidth_gbs(&spec, 12, 2, 2.5, 3.0))
        })
    });
}

fn bench_pipeline_analysis(c: &mut Criterion) {
    let kernel = FirestarterKernel::default_haswell();
    let arch = MicroArch::haswell_ep();
    c.bench_function("micro_pipeline_firestarter_4000_instr", |b| {
        b.iter(|| black_box(kernel.analyze(&arch, true, 1.0)))
    });
}

fn bench_cache_stream(c: &mut Criterion) {
    c.bench_function("micro_cache_stream_1mb", |b| {
        b.iter_with_setup(
            || Cache::new(256 * 1024, 8, 64),
            |mut cache| {
                for addr in (0..1_048_576u64).step_by(64) {
                    black_box(cache.access(addr));
                }
                cache
            },
        )
    });
}

criterion_group! {
    name = micro;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(5))
        .warm_up_time(Duration::from_secs(1));
    targets = bench_pcu_solve, bench_package_power, bench_bandwidth_queries,
              bench_pipeline_analysis, bench_cache_stream
}
criterion_main!(micro);
