//! Sweep-executor benches: serial (1-thread pool) vs. pooled (4-thread
//! pool) wall time on the two sweep shapes that bracket the survey.
//!
//! - A Figure 2-class sweep: many short node runs (workload × threading
//!   grid points, sub-second simulated spans) — small points, where
//!   per-point stealing has to amortize scheduling overhead.
//! - A Table V-class sweep: few multi-second stress-style runs — heavy
//!   points, the best case for work stealing.
//!
//! Both shapes run the real node simulator through the real executor
//! (`haswell_survey::survey::sweep`) with per-point derived seeds; only
//! the simulated spans are trimmed so one iteration stays in seconds, not
//! minutes. The headline ratio (serial wall time / pooled wall time,
//! bit-identical results) is printed once before the criterion timings.
//! On a single-CPU host the ratio degenerates to ~1.0x — the assertion
//! here is the determinism, the speedup needs real cores.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use haswell_survey::survey::sweep;
use hsw_exec::WorkloadProfile;
use hsw_node::{Platform, Resolution};
use rayon::ThreadPool;

/// Figure 2-class point: one short measurement run of `profile` on
/// `cores` cores, returning the settled package power.
fn fig2_class_point(point: &(WorkloadProfile, usize), seed: u64) -> f64 {
    let (profile, cores) = point;
    let mut node = Platform::paper()
        .session()
        .seed(seed)
        .resolution(Resolution::Custom(100))
        .build();
    node.run_on_socket(0, profile, *cores, 1);
    node.advance_s(0.4);
    node.true_pkg_power_w(0)
}

/// Table V-class point: one heavy stress-style run — both sockets loaded,
/// a multi-second window averaged at coarse resolution.
fn table5_class_point(profile: &WorkloadProfile, seed: u64) -> f64 {
    let mut node = Platform::paper()
        .session()
        .seed(seed)
        .resolution(Resolution::Coarse)
        .build();
    for s in 0..2 {
        node.run_on_socket(s, profile, 12, 1);
    }
    node.advance_s(0.5);
    node.measure_ac_average(2.0)
}

fn fig2_class_points() -> Vec<(WorkloadProfile, usize)> {
    WorkloadProfile::fig2_benchmarks()
        .iter()
        .flat_map(|b| [1usize, 4, 12].into_iter().map(move |c| (b.clone(), c)))
        .collect()
}

fn table5_class_points() -> Vec<WorkloadProfile> {
    vec![
        WorkloadProfile::firestarter(),
        WorkloadProfile::busy_wait(),
        WorkloadProfile::memory_bound(),
        WorkloadProfile::compute(),
    ]
}

/// Order-sensitive digest: any schedule leak (point order, seed
/// derivation) changes the bits.
fn digest(values: &[f64]) -> f64 {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| (i as f64 + 1.0) * v)
        .sum()
}

fn run_fig2_class(pool: &ThreadPool, points: &[(WorkloadProfile, usize)]) -> f64 {
    pool.install(|| digest(&sweep(7, points, fig2_class_point)))
}

fn run_table5_class(pool: &ThreadPool, points: &[WorkloadProfile]) -> f64 {
    pool.install(|| digest(&sweep(11, points, table5_class_point)))
}

fn wall_s(f: impl FnOnce() -> f64) -> (f64, f64) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed().as_secs_f64(), v)
}

fn sweep_ratios(c: &mut Criterion) {
    let serial = ThreadPool::new(1);
    let pooled = ThreadPool::new(4);
    let small = fig2_class_points();
    let heavy = table5_class_points();
    hsw_bench::print_once(
        "Sweep: serial vs 4-thread pool wall time (bit-identical results)",
        || {
            let (s_small, a) = wall_s(|| run_fig2_class(&serial, &small));
            let (p_small, b) = wall_s(|| run_fig2_class(&pooled, &small));
            assert_eq!(a.to_bits(), b.to_bits(), "fig2-class sweep diverged");
            let (s_heavy, x) = wall_s(|| run_table5_class(&serial, &heavy));
            let (p_heavy, y) = wall_s(|| run_table5_class(&pooled, &heavy));
            assert_eq!(x.to_bits(), y.to_bits(), "table5-class sweep diverged");
            format!(
                "Fig 2-class ({} small points):  serial {s_small:.2} s, pooled {p_small:.2} s \
                 -> {:.1}x\n\
                 Table V-class ({} heavy points): serial {s_heavy:.2} s, pooled {p_heavy:.2} s \
                 -> {:.1}x",
                small.len(),
                s_small / p_small.max(1e-9),
                heavy.len(),
                s_heavy / p_heavy.max(1e-9),
            )
        },
    );
    c.bench_function("sweep_fig2_class_serial", |b| {
        b.iter(|| black_box(run_fig2_class(&serial, &small)))
    });
    c.bench_function("sweep_fig2_class_pooled_4", |b| {
        b.iter(|| black_box(run_fig2_class(&pooled, &small)))
    });
    c.bench_function("sweep_table5_class_serial", |b| {
        b.iter(|| black_box(run_table5_class(&serial, &heavy)))
    });
    c.bench_function("sweep_table5_class_pooled_4", |b| {
        b.iter(|| black_box(run_table5_class(&pooled, &heavy)))
    });
}

criterion_group! {
    name = sweep_benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(15))
        .warm_up_time(Duration::from_secs(1));
    targets = sweep_ratios
}
criterion_main!(sweep_benches);
