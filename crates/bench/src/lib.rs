//! # hsw-bench — the benchmark harness that regenerates the paper
//!
//! Each Criterion bench target regenerates one of the paper's tables or
//! figures (printing the reproduced rows/series once) and then times the
//! regeneration:
//!
//! * `benches/tables.rs` — Tables I–V,
//! * `benches/figures.rs` — Figures 2–8 and the Section VIII analysis,
//! * `benches/ablations.rs` — design-choice ablations called out in
//!   DESIGN.md (EET on/off, UFS schedule vs. pinned uncore, PCPS vs.
//!   chip-wide p-states, RAPL DRAM mode 0 vs. 1) and a simulator
//!   throughput measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::Value;

/// A counting wrapper around the system allocator for allocation-count
/// regression tests (e.g. "the socket tick hot loop must not allocate").
/// Install it with `#[global_allocator]` in a dedicated test binary, then
/// bracket the measured region with [`CountingAlloc::reset`] and
/// [`CountingAlloc::allocs`]. Counters are process-global and relaxed —
/// good enough for single-threaded regression bounds, not for profiling.
pub struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

impl CountingAlloc {
    /// Zero both counters.
    pub fn reset() {
        ALLOC_CALLS.store(0, Ordering::Relaxed);
        ALLOC_BYTES.store(0, Ordering::Relaxed);
    }

    /// Allocation calls (alloc, alloc_zeroed, and growing reallocs) since
    /// the last reset.
    pub fn allocs() -> u64 {
        ALLOC_CALLS.load(Ordering::Relaxed)
    }

    /// Bytes requested since the last reset.
    pub fn bytes() -> u64 {
        ALLOC_BYTES.load(Ordering::Relaxed)
    }
}

// SAFETY: pure pass-through to `System` — every pointer/layout contract is
// forwarded unchanged, the counters are side-effect-only atomics.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout handed to `System.alloc`; counting has no effect
    // on the returned allocation.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: caller guarantees `ptr`/`layout` came from this allocator,
    // which always means `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: same layout handed to `System.alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller's `ptr`/`layout`/`new_size` contract is forwarded
    // verbatim to `System.realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Print a banner followed by a reproduced artifact exactly once per
/// process (Criterion calls the closure many times).
pub fn print_once(tag: &'static str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static PRINTED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = PRINTED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = set.lock().unwrap();
    if guard.insert(tag) {
        println!("\n===== {tag} =====\n{}", render());
    }
}

/// One timed variant of a bench: a label, its wall time, and the
/// order-sensitive digest of the values it produced (so a report also
/// records *what* was computed, not just how fast).
#[derive(Debug, Clone)]
pub struct BenchVariant {
    pub name: String,
    pub wall_ms: f64,
    pub digest: f64,
}

impl BenchVariant {
    pub fn new(name: impl Into<String>, wall_s: f64, digest: f64) -> Self {
        BenchVariant {
            name: name.into(),
            wall_ms: wall_s * 1e3,
            digest,
        }
    }
}

/// Write `BENCH_<name>.json` at the repository root: the bench id plus one
/// entry per variant with wall milliseconds and result digest. Wall time
/// is inherently non-deterministic — these reports are bench artifacts,
/// deliberately separate from the byte-stable `survey.json`.
pub fn write_report(name: &str, variants: &[BenchVariant]) -> std::path::PathBuf {
    let doc = Value::Object(vec![
        ("bench".to_string(), Value::Str(name.to_string())),
        (
            "variants".to_string(),
            Value::Array(
                variants
                    .iter()
                    .map(|v| {
                        Value::Object(vec![
                            ("name".to_string(), Value::Str(v.name.clone())),
                            ("wall_ms".to_string(), Value::Float(v.wall_ms)),
                            ("digest".to_string(), Value::Float(v.digest)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let mut json = serde_json::to_string_pretty(&doc).expect("bench report serialization");
    json.push('\n');
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let path = root.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, json).expect("write bench report");
    path
}
