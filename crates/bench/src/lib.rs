//! # hsw-bench — the benchmark harness that regenerates the paper
//!
//! Each Criterion bench target regenerates one of the paper's tables or
//! figures (printing the reproduced rows/series once) and then times the
//! regeneration:
//!
//! * `benches/tables.rs` — Tables I–V,
//! * `benches/figures.rs` — Figures 2–8 and the Section VIII analysis,
//! * `benches/ablations.rs` — design-choice ablations called out in
//!   DESIGN.md (EET on/off, UFS schedule vs. pinned uncore, PCPS vs.
//!   chip-wide p-states, RAPL DRAM mode 0 vs. 1) and a simulator
//!   throughput measurement.

/// Print a banner followed by a reproduced artifact exactly once per
/// process (Criterion calls the closure many times).
pub fn print_once(tag: &'static str, render: impl FnOnce() -> String) {
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::sync::OnceLock;
    static PRINTED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let set = PRINTED.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = set.lock().unwrap();
    if guard.insert(tag) {
        println!("\n===== {tag} =====\n{}", render());
    }
}
