//! Allocation-count regression bound on the socket tick hot loop.
//!
//! `Socket::tick` used to clone the `SkuSpec` (three `Vec`s) every tick;
//! the SoA core planes and the reusable `TickScratch` removed that, along
//! with the per-tick duty/electrical/counter-rate vectors. This test pins
//! the result: a settled, fully loaded node must advance with (almost) no
//! allocator traffic. The only sanctioned residual is `PcuController::
//! solve`, which builds one grant vector per 500 µs evaluation period —
//! 0.04 allocs per 20 µs tick — so the bound below (0.2/tick) leaves 5x
//! headroom without ever letting a per-tick clone (3+/tick) back in.

use hsw_bench::CountingAlloc;
use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_node::{Node, NodeConfig, PlaneMask};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn settled_tick_loop_is_allocation_free() {
    let mut node = Node::new(NodeConfig::paper_default().with_seed(7));
    for s in 0..2 {
        node.run_on_socket(s, &WorkloadProfile::compute(), 12, 2);
    }
    node.set_setting_all(FreqSetting::from_mhz(2200));
    // Settle: first ticks legitimately allocate (counter-rate plane,
    // transition log, scratch growth); steady state must not.
    node.advance_s(0.5);

    CountingAlloc::reset();
    node.advance_s(0.2); // 10_000 ticks at the default 20 µs step
    let allocs = CountingAlloc::allocs();

    let ticks = 10_000u64;
    let per_tick = allocs as f64 / ticks as f64;
    assert!(
        per_tick < 0.2,
        "settled tick loop allocated {allocs} times over {ticks} ticks \
         ({per_tick:.3}/tick; bound 0.2/tick = PCU solve cadence with 5x headroom)"
    );
}

#[test]
fn dirty_plane_fork_allocates_less_than_a_node_build() {
    // The scratch-node fork path exists to avoid per-point construction;
    // verify the allocator agrees. A fork of a snapshot into a node that
    // only dirtied its WORK plane must stay well under what constructing
    // and restoring a fresh node costs.
    let cfg = NodeConfig::paper_default().with_seed(7);
    let mut golden = Node::new(cfg.clone());
    golden.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
    golden.advance_s(0.1);
    let snap = golden.snapshot();

    let mut scratch = Node::new(cfg.clone());
    // First fork clears the new node's everything-dirty state; then dirty
    // only the WORK plane, as a settings-sweep point would.
    scratch.fork_from(&snap, 1001);
    scratch.run_on_socket(0, &WorkloadProfile::busy_wait(), 4, 1);

    CountingAlloc::reset();
    scratch.fork_from(&snap, 1002);
    let fork_allocs = CountingAlloc::allocs();

    CountingAlloc::reset();
    let mut fresh = Node::new(cfg.with_seed(1002));
    fresh.restore(&snap);
    let build_allocs = CountingAlloc::allocs();

    assert!(
        fork_allocs * 4 < build_allocs,
        "WORK-plane fork allocated {fork_allocs} times vs {build_allocs} for \
         build+restore — expected under a quarter"
    );
}

#[test]
fn plane_scoped_access_forks_cheaper_than_all_dirty() {
    // `socket_planes_mut(s, MSR)` exists so a caller that only pokes MSRs
    // doesn't pay an ALL-planes restore on the next fork; pin that the
    // allocator sees the difference versus the conservative `socket_mut`.
    let cfg = NodeConfig::paper_default().with_seed(7);
    let mut golden = Node::new(cfg.clone());
    golden.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
    golden.advance_s(0.1);
    let snap = golden.snapshot();

    let mut scratch = Node::new(cfg);
    scratch.fork_from(&snap, 2001); // clear the new node's everything-dirty state

    let epb = hsw_msr::addresses::IA32_ENERGY_PERF_BIAS;
    scratch
        .socket_planes_mut(0, PlaneMask::MSR)
        .msr_store(0, epb, 6)
        .unwrap();
    CountingAlloc::reset();
    scratch.fork_from(&snap, 2002);
    let scoped_allocs = CountingAlloc::allocs();

    scratch.socket_mut(0).msr_store(0, epb, 6).unwrap();
    CountingAlloc::reset();
    scratch.fork_from(&snap, 2003);
    let all_dirty_allocs = CountingAlloc::allocs();

    assert!(
        scoped_allocs < all_dirty_allocs,
        "MSR-scoped fork allocated {scoped_allocs} times vs {all_dirty_allocs} \
         for an ALL-dirty fork — scoping should be cheaper"
    );
}
