//! TDP enforcement and core/uncore budget balancing (paper Sections V-B and
//! VIII, Table IV).
//!
//! Starting with Haswell-EP, RAPL enforces the TDP from *measured* power:
//! every frequency above AVX base — including nominal — is opportunistic.
//! The controller resolves the steady-state operating point of one socket:
//!
//! 1. The core ceiling from the frequency setting, turbo bins, the AVX
//!    license, EET and the EPB turbo-at-base rule.
//! 2. The uncore target from UFS, keyed by the *actual* frequency of the
//!    fastest active core (self-consistently — the solver iterates).
//! 3. If the ceiling/target point exceeds TDP, the core frequency is
//!    reduced until the budget holds; if it leaves headroom **and the
//!    workload stalls on memory**, the uncore absorbs the remaining budget
//!    up to its 3.0 GHz maximum — the paper's "available headroom is used
//!    to increase the uncore frequencies" (Table IV caption).

use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{EpbClass, PState, SkuSpec};
use hsw_power::{package_power_w, CoreElecState};

use crate::ufs::{self, UfsInputs};

/// Inputs describing one socket's load for an equilibrium solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PcuInputs<'a> {
    pub spec: &'a SkuSpec,
    /// Per-part efficiency multiplier (paper Section III).
    pub socket_power_mult: f64,
    /// OS frequency setting of the active cores.
    pub setting: FreqSetting,
    pub epb: EpbClass,
    /// `IA32_MISC_ENABLE\[38\]` turbo disengage (inverted).
    pub turbo_enabled: bool,
    /// Cores running the workload.
    pub active_cores: usize,
    /// Idle cores that are power gated (C6) vs. merely halted (C1).
    pub gated_idle_cores: usize,
    /// Per-core switching activity (duty-modulated, before the AVX
    /// multiplier).
    pub activity: f64,
    /// AVX license level engaged on the active cores (0 = none,
    /// 1 = 256-bit, 2 = 512-bit).
    pub avx_level: u8,
    /// Memory-stall fraction of the workload.
    pub stall_fraction: f64,
    /// EET's current turbo limit in MHz (`u32::MAX` when unconstrained).
    pub eet_limit_mhz: u32,
    /// The RAPL limiter's running-average package power (W). While it is
    /// still below PL1, the short-term PL2 budget applies (burst headroom).
    pub avg_pkg_w: f64,
}

/// The resolved operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcuGrant {
    /// Granted core frequency in MHz (time-averaged over bin dithering,
    /// hence not necessarily a multiple of 100).
    pub core_mhz: f64,
    /// Granted uncore frequency in MHz.
    pub uncore_mhz: f64,
    /// Package power at the operating point in W.
    pub power_w: f64,
    /// Whether the TDP limiter constrained the grant.
    pub power_limited: bool,
}

/// Stateless equilibrium solver (the node simulator slews toward this
/// point at the 500 µs PCU cadence).
#[derive(Debug, Clone, Default)]
pub struct PcuController;

impl PcuController {
    /// The pre-power-limit core frequency ceiling in MHz.
    pub fn core_ceiling_mhz(inputs: &PcuInputs<'_>) -> u32 {
        let spec = inputs.spec;
        let active = inputs.active_cores.max(1);
        let mut ceiling = match inputs.setting {
            FreqSetting::Turbo => {
                if inputs.turbo_enabled {
                    spec.freq.turbo_mhz(active)
                } else {
                    spec.freq.base_mhz
                }
            }
            FreqSetting::Fixed(p) => {
                // EPB performance keeps turbo active even at the base
                // frequency setting (paper Section II-C).
                if inputs.epb == EpbClass::Performance
                    && p.mhz() == spec.freq.base_mhz
                    && inputs.turbo_enabled
                {
                    spec.freq.turbo_mhz(active)
                } else {
                    p.mhz()
                }
            }
        };
        if inputs.avx_level > 0 && spec.generation.has_avx_frequencies() {
            ceiling = ceiling.min(spec.freq.license_turbo_mhz(inputs.avx_level, active));
        }
        ceiling = ceiling.min(inputs.eet_limit_mhz);
        ceiling.max(spec.freq.min_mhz)
    }

    /// Package power at a candidate operating point. Hot: the bisections
    /// call this dozens of times per solve and the event engine's
    /// quiescence proof once per full tick — the candidate core set lives
    /// on the stack so the solver never touches the allocator.
    fn power_at(inputs: &PcuInputs<'_>, core_mhz: f64, uncore_mhz: f64) -> f64 {
        const MAX_CORES: usize = 64;
        let spec = inputs.spec;
        assert!(spec.cores <= MAX_CORES, "SKU exceeds solver core bound");
        let mut cores = [CoreElecState::gated(); MAX_CORES];
        let active = inputs.active_cores.min(spec.cores);
        let idle = spec.cores.saturating_sub(inputs.active_cores);
        let gated = inputs.gated_idle_cores.min(idle);
        for c in cores.iter_mut().take(active) {
            *c = CoreElecState {
                mhz: core_mhz.round() as u32,
                activity: inputs.activity,
                license_level: inputs.avx_level,
                power_gated: false,
            };
        }
        // [active, active + gated) stays gated; the rest idles ungated.
        for c in cores.iter_mut().take(spec.cores).skip(active + gated) {
            *c = CoreElecState {
                mhz: spec.freq.min_mhz,
                activity: 0.0,
                license_level: 0,
                power_gated: false,
            };
        }
        package_power_w(
            spec,
            inputs.socket_power_mult,
            &cores[..spec.cores],
            uncore_mhz.round() as u32,
        )
        .total_w()
    }

    /// UFS target keyed by the actual core frequency (mapped onto the
    /// Table III schedule bins). `epb` is passed explicitly because the
    /// EPB=performance uncore pin only survives while the package has power
    /// headroom (see [`PcuController::solve`]).
    fn ufs_target_for(inputs: &PcuInputs<'_>, core_mhz: f64, epb: EpbClass) -> f64 {
        let spec = inputs.spec;
        let setting = if core_mhz > spec.freq.base_mhz as f64 + 50.0 {
            FreqSetting::Turbo
        } else {
            let bin = ((core_mhz / 100.0).round() as u32 * 100)
                .clamp(spec.freq.min_mhz, spec.freq.base_mhz);
            FreqSetting::Fixed(PState::from_mhz(bin))
        };
        ufs::ufs_target_mhz(
            spec,
            &UfsInputs {
                fastest_setting: setting,
                socket_active: inputs.active_cores > 0,
                epb,
                stall_fraction: inputs.stall_fraction,
                package_sleep: false,
            },
        ) as f64
    }

    /// Largest core frequency ≤ `ceiling` whose power with the given uncore
    /// stays within budget.
    fn max_core_within(
        inputs: &PcuInputs<'_>,
        ceiling_mhz: f64,
        uncore_mhz: f64,
        budget_w: f64,
    ) -> f64 {
        let floor = inputs.spec.freq.min_mhz as f64;
        if Self::power_at(inputs, ceiling_mhz, uncore_mhz) <= budget_w {
            return ceiling_mhz;
        }
        let (mut lo, mut hi) = (floor, ceiling_mhz);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if Self::power_at(inputs, mid, uncore_mhz) <= budget_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Largest uncore frequency in [`lo`, `hi`] within budget.
    fn max_uncore_within(
        inputs: &PcuInputs<'_>,
        core_mhz: f64,
        lo_mhz: f64,
        hi_mhz: f64,
        budget_w: f64,
    ) -> f64 {
        if Self::power_at(inputs, core_mhz, hi_mhz) <= budget_w {
            return hi_mhz;
        }
        let (mut lo, mut hi) = (lo_mhz, hi_mhz);
        for _ in 0..24 {
            let mid = 0.5 * (lo + hi);
            if Self::power_at(inputs, core_mhz, mid) <= budget_w {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Whether [`PcuController::solve`] returns bit-identical grants for
    /// *any* value of `inputs.avg_pkg_w`: either the socket is passive (the
    /// idle branch never reads the average), or the most power-hungry point
    /// the solver can consider — the pre-limit ceiling with the uncore at
    /// its maximum — fits under the smallest budget the two-level limiter
    /// can hand out. Power is monotone in both frequencies, so every
    /// in-budget comparison inside the bisections then resolves the same
    /// way regardless of where the running average sits, and the solver
    /// walks an identical path. The event engine uses this to prove that
    /// skipping periodic re-solves over a steady workload cannot change the
    /// grant.
    pub fn avg_insensitive(inputs: &PcuInputs<'_>) -> bool {
        if inputs.active_cores == 0 {
            return true;
        }
        let spec = inputs.spec;
        // Smallest possible budget: pl_base clamped at 0.9·TDP, scaled by
        // the most frugal EPB factor.
        let min_budget = spec.tdp_w * 0.9 * 0.995;
        let ceiling = Self::core_ceiling_mhz(inputs) as f64;
        Self::power_at(inputs, ceiling, spec.freq.uncore_max_mhz as f64) <= min_budget
    }

    /// Solve the steady-state operating point.
    pub fn solve(inputs: &PcuInputs<'_>) -> PcuGrant {
        let spec = inputs.spec;
        if inputs.active_cores == 0 {
            // Idle (passive) socket: its uncore follows the fastest active
            // core *in the system* through the passive schedule
            // (paper Table III, second row) — or is halted by package
            // c-states, which the node layer decides.
            let fu = ufs::ufs_target_mhz(
                spec,
                &UfsInputs {
                    fastest_setting: inputs.setting,
                    socket_active: false,
                    epb: inputs.epb,
                    stall_fraction: 0.0,
                    package_sleep: false,
                },
            ) as f64;
            return PcuGrant {
                core_mhz: spec.freq.min_mhz as f64,
                uncore_mhz: fu,
                power_w: Self::power_at(inputs, spec.freq.min_mhz as f64, fu),
                power_limited: false,
            };
        }

        let ceiling = Self::core_ceiling_mhz(inputs) as f64;
        // Two-level RAPL: the limiter holds the *running average* at PL1 by
        // granting instantaneous power of up to `2·PL1 − avg` (so bursts ride
        // at PL2 while the average is low, and steady state converges to
        // exactly PL1), capped by the short-term PL2 limit. EPB further
        // biases the budget by under a percent (Table V shows sub-1 %
        // frequency differences across EPB settings).
        let pl_base = (2.0 * spec.tdp_w - inputs.avg_pkg_w).clamp(
            spec.tdp_w * 0.9,
            spec.tdp_w * hsw_hwspec::calib::PL2_TDP_MULT,
        );
        let budget = pl_base
            * match inputs.epb {
                EpbClass::Performance => 1.005,
                EpbClass::Balanced => 1.0,
                EpbClass::EnergySaving => 0.995,
            };

        // Self-consistent iteration: the UFS target follows the actual core
        // frequency, which follows the power left by the uncore. Damped to
        // suppress bin oscillation.
        let solve_with_epb = |ufs_epb: EpbClass| {
            let mut fc = ceiling;
            let mut fu = Self::ufs_target_for(inputs, fc, ufs_epb);
            for _ in 0..24 {
                let fc_new = Self::max_core_within(inputs, ceiling, fu, budget);
                fc = 0.5 * (fc + fc_new);
                fu = Self::ufs_target_for(inputs, fc, ufs_epb);
            }
            (fc, fu)
        };
        let (mut fc, mut fu) = solve_with_epb(inputs.epb);
        let mut power_limited = fc < ceiling - 5.0;
        if power_limited && inputs.epb == EpbClass::Performance {
            // The EPB=performance uncore pin (Table III footnote) only
            // holds while there is power headroom; under TDP pressure the
            // PCU protects core frequency and falls back to stall-based
            // uncore scaling (otherwise a pinned 3.0 GHz uncore would starve
            // the cores — contradicting Table V's mprime 2500/perf row).
            let (fc2, fu2) = solve_with_epb(EpbClass::Balanced);
            fc = fc2;
            fu = fu2;
            power_limited = fc < ceiling - 5.0;
        }

        // Leftover budget flows to the uncore when the workload stalls on
        // memory (Table IV: settings 2.2/2.1 GHz; Table III busy-wait must
        // NOT boost).
        if !power_limited && ufs::stall_boost_allowed(spec, inputs.stall_fraction) {
            fc = ceiling;
            let fu_max = spec.freq.uncore_max_mhz as f64;
            let boosted = Self::max_uncore_within(inputs, fc, fu, fu_max, budget);
            if boosted > fu {
                fu = boosted;
                power_limited = fu < fu_max - 5.0;
            }
        } else if power_limited {
            fc = Self::max_core_within(inputs, ceiling, fu, budget);
        }

        let fu = fu.clamp(
            spec.freq.uncore_min_mhz as f64,
            spec.freq.uncore_max_mhz as f64,
        );
        PcuGrant {
            core_mhz: fc,
            uncore_mhz: fu,
            power_w: Self::power_at(inputs, fc, fu),
            power_limited,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_exec::WorkloadProfile;
    use hsw_hwspec::calib;

    fn sku() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    /// FIRESTARTER with Hyper-Threading on all cores (Table IV setup).
    fn firestarter_inputs(spec: &SkuSpec, setting: FreqSetting) -> PcuInputs<'_> {
        let fs = WorkloadProfile::firestarter();
        PcuInputs {
            spec,
            socket_power_mult: 1.0,
            setting,
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: spec.cores,
            gated_idle_cores: 0,
            activity: fs.activity(true),
            avx_level: 1,
            stall_fraction: fs.stall_fraction,
            eet_limit_mhz: u32::MAX,
            avg_pkg_w: spec.tdp_w, // steady state: PL1 applies
        }
    }

    fn fs_gips(grant: &PcuGrant) -> f64 {
        let fs = WorkloadProfile::firestarter();
        let fc = grant.core_mhz / 1000.0;
        fc * fs.ipc(true, fc, grant.uncore_mhz / 1000.0)
    }

    #[test]
    fn table4_turbo_equilibrium() {
        // Paper Table IV, Turbo column: core ≈ 2.30/2.32 GHz,
        // uncore ≈ 2.33/2.35 GHz, GIPS ≈ 3.55/3.58, TDP limited.
        let spec = sku();
        let g = PcuController::solve(&firestarter_inputs(&spec, FreqSetting::Turbo));
        assert!(g.power_limited);
        assert!(
            (2.22..=2.38).contains(&(g.core_mhz / 1000.0)),
            "core = {:.3} GHz",
            g.core_mhz / 1000.0
        );
        assert!(
            (2.25..=2.50).contains(&(g.uncore_mhz / 1000.0)),
            "uncore = {:.3} GHz",
            g.uncore_mhz / 1000.0
        );
        assert!(
            (g.power_w - spec.tdp_w).abs() < 2.0,
            "power = {:.1}",
            g.power_w
        );
        let gips = fs_gips(&g);
        assert!((gips - 3.56).abs() < 0.08, "GIPS = {gips:.3}");
    }

    #[test]
    fn table4_2500_equals_turbo() {
        // Table IV: the 2.5 GHz and Turbo columns are nearly identical
        // (both TDP limited well below 2.5 GHz).
        let spec = sku();
        let turbo = PcuController::solve(&firestarter_inputs(&spec, FreqSetting::Turbo));
        let fixed = PcuController::solve(&firestarter_inputs(&spec, FreqSetting::from_mhz(2500)));
        assert!((turbo.core_mhz - fixed.core_mhz).abs() < 60.0);
        assert!((turbo.uncore_mhz - fixed.uncore_mhz).abs() < 80.0);
    }

    #[test]
    fn table4_2200_headroom_goes_to_uncore() {
        // Table IV: at the 2.2 GHz setting the core runs at its setting and
        // the uncore rises to ≈2.8 GHz.
        let spec = sku();
        let g = PcuController::solve(&firestarter_inputs(&spec, FreqSetting::from_mhz(2200)));
        assert!(
            (g.core_mhz / 1000.0 - 2.2).abs() < 0.05,
            "core = {:.3}",
            g.core_mhz / 1000.0
        );
        assert!(
            (2.6..=2.95).contains(&(g.uncore_mhz / 1000.0)),
            "uncore = {:.3}",
            g.uncore_mhz / 1000.0
        );
    }

    #[test]
    fn table4_2100_no_throttling_uncore_at_max() {
        // Paper Section V-B: "For 2.1 GHz and slower, both processors use
        // less than 120 W ... and the uncore frequency is at 3.0 GHz".
        let spec = sku();
        let g = PcuController::solve(&firestarter_inputs(&spec, FreqSetting::from_mhz(2100)));
        assert!((g.core_mhz / 1000.0 - 2.1).abs() < 0.02);
        assert!((g.uncore_mhz / 1000.0 - 3.0).abs() < 0.02);
        assert!(
            g.power_w < calib::powercal::FS_NO_THROTTLE_BELOW_W,
            "power = {:.1}",
            g.power_w
        );
    }

    #[test]
    fn table4_gips_peaks_at_reduced_setting() {
        // The headline inversion: lowering the setting from Turbo to
        // 2.2–2.3 GHz *increases* instructions per second (paper: "A
        // performance gain of 1 % can be seen").
        let spec = sku();
        let gips = |mhz: u32| {
            fs_gips(&PcuController::solve(&firestarter_inputs(
                &spec,
                FreqSetting::from_mhz(mhz),
            )))
        };
        let turbo = fs_gips(&PcuController::solve(&firestarter_inputs(
            &spec,
            FreqSetting::Turbo,
        )));
        let best_reduced = gips(2300).max(gips(2200));
        assert!(
            best_reduced > turbo,
            "reduced-setting GIPS {best_reduced:.3} must beat turbo {turbo:.3}"
        );
        // And 2.1 GHz is slower than the peak (AVX base, uncore maxed, but
        // the core clock deficit dominates).
        assert!(gips(2100) < best_reduced);
    }

    #[test]
    fn socket0_clocks_lower_than_socket1() {
        // Paper Section III/V-B: processor 0 is less efficient, so its
        // TDP-limited frequencies and IPS are lower.
        let spec = sku();
        let mut i0 = firestarter_inputs(&spec, FreqSetting::Turbo);
        i0.socket_power_mult = calib::SOCKET_POWER_EFFICIENCY[0];
        let mut i1 = firestarter_inputs(&spec, FreqSetting::Turbo);
        i1.socket_power_mult = calib::SOCKET_POWER_EFFICIENCY[1];
        let g0 = PcuController::solve(&i0);
        let g1 = PcuController::solve(&i1);
        assert!(g0.core_mhz < g1.core_mhz);
        assert!(fs_gips(&g0) < fs_gips(&g1));
    }

    #[test]
    fn busy_wait_single_core_follows_table3_without_boost() {
        // Table III scenario: one spinning core, no stalls → uncore must sit
        // at the schedule value (2.2 GHz at the 2.5 GHz setting), NOT absorb
        // the abundant power headroom.
        let spec = sku();
        let bw = WorkloadProfile::busy_wait();
        let inputs = PcuInputs {
            spec: &spec,
            socket_power_mult: 1.0,
            setting: FreqSetting::from_mhz(2500),
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 1,
            gated_idle_cores: 11,
            activity: bw.activity(false),
            avx_level: 0,
            stall_fraction: bw.stall_fraction,
            eet_limit_mhz: u32::MAX,
            avg_pkg_w: 30.0,
        };
        let g = PcuController::solve(&inputs);
        assert!(!g.power_limited);
        assert!((g.core_mhz - 2500.0).abs() < 1.0);
        assert!(
            (g.uncore_mhz - 2200.0).abs() < 60.0,
            "uncore = {:.0} MHz must follow the Table III schedule",
            g.uncore_mhz
        );
    }

    #[test]
    fn avx_license_caps_turbo_at_avx_bins() {
        let spec = sku();
        let mut inputs = firestarter_inputs(&spec, FreqSetting::Turbo);
        inputs.activity = 0.2; // light load: no TDP pressure
        inputs.stall_fraction = 0.0;
        let ceiling = PcuController::core_ceiling_mhz(&inputs);
        assert_eq!(ceiling, spec.freq.avx_turbo_mhz(12));
        inputs.avx_level = 0;
        let ceiling = PcuController::core_ceiling_mhz(&inputs);
        assert_eq!(ceiling, spec.freq.turbo_mhz(12));
    }

    #[test]
    fn epb_performance_turns_base_setting_into_turbo() {
        // Paper Section II-C: "When setting EPB to performance, turbo mode
        // will be active even when the base frequency is selected."
        let spec = sku();
        let mut inputs = firestarter_inputs(&spec, FreqSetting::from_mhz(2500));
        inputs.epb = EpbClass::Performance;
        inputs.avx_level = 0;
        assert_eq!(
            PcuController::core_ceiling_mhz(&inputs),
            spec.freq.turbo_mhz(12)
        );
        // But not for non-base fixed settings.
        inputs.setting = FreqSetting::from_mhz(2400);
        assert_eq!(PcuController::core_ceiling_mhz(&inputs), 2400);
    }

    #[test]
    fn turbo_disable_caps_at_nominal() {
        let spec = sku();
        let mut inputs = firestarter_inputs(&spec, FreqSetting::Turbo);
        inputs.turbo_enabled = false;
        inputs.avx_level = 0;
        assert_eq!(PcuController::core_ceiling_mhz(&inputs), spec.freq.base_mhz);
    }

    #[test]
    fn idle_socket_grant_is_minimal() {
        let spec = sku();
        let idle = WorkloadProfile::idle();
        let inputs = PcuInputs {
            spec: &spec,
            socket_power_mult: 1.0,
            setting: FreqSetting::from_mhz(2500),
            epb: EpbClass::Balanced,
            turbo_enabled: true,
            active_cores: 0,
            gated_idle_cores: 12,
            activity: idle.activity(false),
            avx_level: 0,
            stall_fraction: 0.0,
            eet_limit_mhz: u32::MAX,
            avg_pkg_w: 12.0,
        };
        let g = PcuController::solve(&inputs);
        assert!(!g.power_limited);
        // The passive socket's uncore follows the Table III passive
        // schedule for the system's 2.5 GHz setting (2.1 GHz), so the
        // package draws uncore power but nothing core-side.
        assert!(
            (g.uncore_mhz - 2100.0).abs() < 1.0,
            "uncore {:.0}",
            g.uncore_mhz
        );
        assert!(g.power_w < 26.0, "idle pkg = {:.1} W", g.power_w);
    }
}
