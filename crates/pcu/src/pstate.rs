//! The p-state transition engine (paper Section VI-A, Figures 3 and 4).
//!
//! On Haswell-EP, software p-state requests (writes to `IA32_PERF_CTL`) are
//! *not* carried out immediately: the PCU latches pending requests at
//! "opportunities" that recur roughly every 500 µs, then performs the FIVR
//! voltage/frequency switch (~21 µs). All cores of a socket transition at
//! the same opportunity; the opportunity clocks of different sockets are
//! independent. Earlier generations (and Haswell-HE) service requests
//! immediately, paying only the switching time.

use hsw_hwspec::clock::{ClockDomain, DomainNoise, US};
use hsw_hwspec::{CpuGeneration, PState, PStateTransitionMode};

/// Simulation time in nanoseconds (re-exported engine-wide clock unit).
pub use hsw_hwspec::clock::Ns;

/// A completed transition, for tracing/experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionEvent {
    pub core: usize,
    pub from: PState,
    pub to: PState,
    /// When the request was made (wrmsr time).
    pub requested_at: Ns,
    /// When the new frequency became effective.
    pub completed_at: Ns,
}

impl TransitionEvent {
    /// The latency FTaLaT-style tools observe, in µs.
    pub fn latency_us(&self) -> f64 {
        (self.completed_at - self.requested_at) as f64 / 1000.0
    }
}

/// Capacity of a [`TransitionLog`]: events beyond this many between drains
/// displace the oldest. Far above what any experiment accumulates between
/// drains (fig4 drains every round), so in practice nothing is ever lost —
/// the cap exists so a long undrained settle phase cannot make snapshot
/// and fork cost grow without bound.
pub const TRANSITION_LOG_CAP: usize = 4096;

/// Bounded log of completed p-state transitions: a drop-oldest ring so the
/// memory held — and therefore the cost of snapshotting or restoring the
/// log plane — stays flat no matter how long a settle phase runs between
/// drains. `recorded` counts every event ever offered (kept across drains),
/// which gives the dirty-plane bookkeeping a cheap "did anything land?"
/// probe without comparing contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransitionLog {
    events: std::collections::VecDeque<TransitionEvent>,
    recorded: u64,
}

impl TransitionLog {
    pub fn new() -> Self {
        TransitionLog::default()
    }

    /// Append one event, displacing the oldest once at capacity.
    pub fn record(&mut self, ev: TransitionEvent) {
        if self.events.len() == TRANSITION_LOG_CAP {
            self.events.pop_front();
        }
        self.events.push_back(ev);
        self.recorded += 1;
    }

    /// Take the retained events in arrival order.
    pub fn drain(&mut self) -> Vec<TransitionEvent> {
        self.recorded += 1; // a drain mutates the log like a record does
        self.events.drain(..).collect()
    }

    /// Events currently retained (≤ [`TRANSITION_LOG_CAP`]).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Monotonic mutation counter: bumps on every record *and* drain, so
    /// two equal readings bracket a span that provably left the log alone.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    pub fn iter(&self) -> impl Iterator<Item = &TransitionEvent> {
        self.events.iter()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingRequest {
    target: PState,
    requested_at: Ns,
}

/// The p-state machinery of one socket.
#[derive(Debug)]
pub struct PStateEngine {
    // snap:skip(generation-derived constant, rebuilt by PStateEngine::new)
    mode: PStateTransitionMode,
    // snap:skip(generation-derived constant, rebuilt by PStateEngine::new)
    per_core_domains: bool,
    // snap:skip(policy constant, rebuilt by PStateEngine::new)
    switching_time_ns: Ns,
    // snap:skip(policy constant, rebuilt by PStateEngine::new)
    opportunity_jitter_us: i64,
    /// Current p-state per core.
    current: Vec<PState>,
    /// In-flight switch per core: (target, completes_at, requested_at).
    switching: Vec<Option<(PState, Ns, Ns)>>,
    pending: Vec<Option<PendingRequest>>,
    /// Next opportunity instant (opportunity mode only).
    next_opportunity: Ns,
    /// Completed transitions since the last drain.
    events: Vec<TransitionEvent>,
}

/// Plain-data image of a [`PStateEngine`]'s mutable state. The transition
/// mode and domain granularity are generation constants re-established by
/// the constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct PStateEngineSnapshot {
    current: Vec<PState>,
    switching: Vec<Option<(PState, Ns, Ns)>>,
    pending: Vec<Option<PendingRequest>>,
    next_opportunity: Ns,
    events: Vec<TransitionEvent>,
}

impl PStateEngine {
    /// `phase_ns` staggers the socket's opportunity clock — sockets run
    /// independent PCUs (paper Section VI-A).
    pub fn new(generation: CpuGeneration, cores: usize, initial: PState, phase_ns: Ns) -> Self {
        let policy = generation.policy().pstate();
        let mode = policy.transition;
        let next_opportunity = match mode {
            PStateTransitionMode::OpportunityWindow { period_us } => {
                phase_ns % (period_us as Ns * US)
            }
            PStateTransitionMode::Immediate | PStateTransitionMode::HwpAutonomous => 0,
        };
        PStateEngine {
            mode,
            per_core_domains: policy.per_core_domains,
            switching_time_ns: policy.switching_time_us as Ns * US,
            opportunity_jitter_us: policy.opportunity_jitter_us as i64,
            current: vec![initial; cores],
            switching: vec![None; cores],
            pending: vec![None; cores],
            next_opportunity,
            events: Vec::new(),
        }
    }

    /// Software writes `IA32_PERF_CTL` on `core` at time `now`.
    ///
    /// In a chip-wide domain (pre-Haswell-EP) the request applies to all
    /// cores; with PCPS only to the requesting core.
    pub fn request(&mut self, core: usize, target: PState, now: Ns) {
        let cores: Vec<usize> = if self.per_core_domains {
            vec![core]
        } else {
            (0..self.current.len()).collect()
        };
        for c in cores {
            if self.current[c] == target && self.pending[c].is_none() && self.switching[c].is_none()
            {
                continue; // no-op request
            }
            self.pending[c] = Some(PendingRequest {
                target,
                requested_at: now,
            });
            // HWP's autonomous engine also grants at request time: the
            // package control loop has no 500 µs latch window, only the
            // (much shorter) domain switch itself.
            if matches!(
                self.mode,
                PStateTransitionMode::Immediate | PStateTransitionMode::HwpAutonomous
            ) {
                self.begin_switch(c, now);
            }
        }
    }

    fn begin_switch(&mut self, core: usize, now: Ns) {
        if let Some(req) = self.pending[core].take() {
            let completes = now + self.switching_time_ns;
            self.switching[core] = Some((req.target, completes, req.requested_at));
        }
    }

    /// Advance the engine to time `now`. `noise` drives the opportunity-period
    /// jitter, keyed by each opportunity instant so the walk is the same no
    /// matter how sparsely the engine is ticked. Completed transitions are
    /// queued for [`Self::drain_events`].
    pub fn tick(&mut self, now: Ns, noise: &DomainNoise) {
        // Latch pending requests at every opportunity boundary passed.
        if let PStateTransitionMode::OpportunityWindow { period_us } = self.mode {
            while self.next_opportunity <= now {
                let opp = self.next_opportunity;
                for c in 0..self.current.len() {
                    // All cores of the socket latch at the same opportunity
                    // (the paper's parallel-core measurement). An opportunity
                    // can only latch requests that already existed then —
                    // relevant when the engine is ticked sparsely.
                    let eligible = self.pending[c]
                        .map(|r| r.requested_at <= opp)
                        .unwrap_or(false);
                    if eligible && self.switching[c].is_none() {
                        self.begin_switch(c, opp);
                    }
                }
                let jitter_us = self.opportunity_jitter_us;
                let jitter = noise.range_i64(opp, 0, -jitter_us, jitter_us);
                let period = (period_us as i64 + jitter).max(1) as Ns * US;
                self.next_opportunity = opp + period;
            }
        }
        // Complete in-flight switches.
        for c in 0..self.current.len() {
            if let Some((target, completes, requested_at)) = self.switching[c] {
                if completes <= now {
                    let from = self.current[c];
                    self.current[c] = target;
                    self.switching[c] = None;
                    self.events.push(TransitionEvent {
                        core: c,
                        from,
                        to: target,
                        requested_at,
                        completed_at: completes,
                    });
                }
            }
        }
    }

    /// Current (granted) p-state of a core.
    pub fn current(&self, core: usize) -> PState {
        self.current[core]
    }

    /// Whether any request or switch is outstanding for the core.
    pub fn in_flight(&self, core: usize) -> bool {
        self.pending[core].is_some() || self.switching[core].is_some()
    }

    /// Take the accumulated transition events.
    pub fn drain_events(&mut self) -> Vec<TransitionEvent> {
        std::mem::take(&mut self.events)
    }

    /// Append the accumulated transition events onto `out` without
    /// allocating an intermediate `Vec` (hot-path variant of
    /// [`Self::drain_events`]).
    pub fn drain_events_into(&mut self, out: &mut Vec<TransitionEvent>) {
        out.append(&mut self.events);
    }

    /// Move the accumulated transition events into a bounded
    /// [`TransitionLog`] (the socket's per-tick path: no intermediate
    /// allocation, and the destination cannot grow without bound).
    pub fn drain_events_into_log(&mut self, log: &mut TransitionLog) {
        for ev in self.events.drain(..) {
            log.record(ev);
        }
    }

    /// Capture the engine's mutable state as plain data.
    pub fn snapshot(&self) -> PStateEngineSnapshot {
        PStateEngineSnapshot {
            current: self.current.clone(),
            switching: self.switching.clone(),
            pending: self.pending.clone(),
            next_opportunity: self.next_opportunity,
            events: self.events.clone(),
        }
    }

    /// Reinstate a previously captured state. The engine must have the same
    /// core count it was snapshotted with.
    pub fn restore(&mut self, snap: &PStateEngineSnapshot) {
        assert_eq!(
            self.current.len(),
            snap.current.len(),
            "snapshot geometry mismatch"
        );
        self.current.clone_from(&snap.current);
        self.switching.clone_from(&snap.switching);
        self.pending.clone_from(&snap.pending);
        self.next_opportunity = snap.next_opportunity;
        self.events.clone_from(&snap.events);
    }

    /// The next opportunity instant (for tracing Figure 4's timeline).
    pub fn next_opportunity(&self) -> Ns {
        self.next_opportunity
    }

    /// Earliest instant at which the engine changes state on its own:
    /// the soonest in-flight completion, or — with requests waiting — the
    /// next latch opportunity.
    pub fn next_event(&self) -> Option<Ns> {
        let completion = self
            .switching
            .iter()
            .filter_map(|s| s.map(|(_, completes, _)| completes))
            .min();
        let latch = if self.pending.iter().any(Option::is_some) {
            match self.mode {
                PStateTransitionMode::OpportunityWindow { .. } => Some(self.next_opportunity),
                // Switch already began at request time in both modes.
                PStateTransitionMode::Immediate | PStateTransitionMode::HwpAutonomous => None,
            }
        } else {
            None
        };
        match (completion, latch) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

impl ClockDomain for PStateEngine {
    fn name(&self) -> &'static str {
        "pstate"
    }

    fn native_period_ns(&self) -> Ns {
        match self.mode {
            PStateTransitionMode::OpportunityWindow { period_us } => period_us as Ns * US,
            PStateTransitionMode::Immediate | PStateTransitionMode::HwpAutonomous => {
                self.switching_time_ns
            }
        }
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        self.next_event()
    }

    /// Quiescent iff no request is pending and no switch is in flight. The
    /// opportunity clock itself keeps running, but with keyed jitter its
    /// catch-up is path-independent, so it never forces fine stepping.
    fn quiescent(&self) -> bool {
        self.pending.iter().all(Option::is_none) && self.switching.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;
    use hsw_hwspec::clock::domain;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const HSW: CpuGeneration = CpuGeneration::HaswellEp;

    fn noise() -> DomainNoise {
        DomainNoise::new(1, domain::PSTATE)
    }

    fn engine(gen: CpuGeneration) -> PStateEngine {
        PStateEngine::new(gen, 12, PState::from_mhz(1200), 0)
    }

    fn run_until(e: &mut PStateEngine, noise: &DomainNoise, from: Ns, to: Ns) {
        let mut t = from;
        while t <= to {
            e.tick(t, noise);
            t += US; // 1 µs steps
        }
    }

    /// Measure one request→completion latency in µs.
    fn measure(e: &mut PStateEngine, noise: &DomainNoise, t_req: Ns) -> f64 {
        let target = if e.current(0) == PState::from_mhz(1200) {
            PState::from_mhz(1300)
        } else {
            PState::from_mhz(1200)
        };
        e.request(0, target, t_req);
        let mut t = t_req;
        loop {
            e.tick(t, noise);
            if let Some(ev) = e.drain_events().into_iter().find(|ev| ev.core == 0) {
                return ev.latency_us();
            }
            t += US;
        }
    }

    #[test]
    fn snapshot_mid_flight_round_trips() {
        // Snapshot with a pending request and an in-flight switch, restore
        // into a fresh engine, then advance both: the keyed jitter makes the
        // continuation depend only on (state, time), so they stay identical.
        let n = noise();
        let mut e = engine(HSW);
        run_until(&mut e, &n, 0, 2_000 * US);
        e.request(0, PState::from_mhz(2500), 2_050 * US);
        e.request(5, PState::from_mhz(1300), 2_100 * US);
        run_until(&mut e, &n, 2_050 * US, 2_400 * US);
        let snap = e.snapshot();

        let mut f = engine(HSW);
        f.restore(&snap);
        run_until(&mut e, &n, 2_401 * US, 4_000 * US);
        run_until(&mut f, &n, 2_401 * US, 4_000 * US);
        assert_eq!(e.snapshot(), f.snapshot());
        assert_eq!(e.drain_events(), f.drain_events());
    }

    #[test]
    fn drain_events_into_matches_drain_events() {
        let n = noise();
        let mut a = engine(HSW);
        let mut b = engine(HSW);
        for e in [&mut a, &mut b] {
            e.request(1, PState::from_mhz(2500), 100 * US);
            run_until(e, &n, 0, 1_500 * US);
        }
        let mut out = vec![];
        a.drain_events_into(&mut out);
        assert_eq!(out, b.drain_events());
        assert!(a.drain_events().is_empty(), "drain_into must clear events");
    }

    #[test]
    fn drain_events_into_log_matches_drain_events() {
        // The bounded log reports the same events in the same order as the
        // unbounded drain for any realistic (below-capacity) volume — the
        // fig4-style event reporting is unchanged by the ring.
        let n = noise();
        let mut a = engine(HSW);
        let mut b = engine(HSW);
        for e in [&mut a, &mut b] {
            e.request(1, PState::from_mhz(2500), 100 * US);
            e.request(7, PState::from_mhz(1300), 250 * US);
            run_until(e, &n, 0, 1_500 * US);
        }
        let mut log = TransitionLog::new();
        a.drain_events_into_log(&mut log);
        let via_log = log.drain();
        assert!(!via_log.is_empty(), "scenario must produce events");
        assert_eq!(via_log, b.drain_events());
        assert!(a.drain_events().is_empty(), "drain_into_log must clear");
    }

    #[test]
    fn transition_log_drops_oldest_beyond_capacity() {
        let mut log = TransitionLog::new();
        let ev = |i: u64| TransitionEvent {
            core: 0,
            from: PState::from_mhz(1200),
            to: PState::from_mhz(1300),
            requested_at: i,
            completed_at: i + 21,
        };
        let total = TRANSITION_LOG_CAP as u64 + 100;
        for i in 0..total {
            log.record(ev(i));
        }
        assert_eq!(log.len(), TRANSITION_LOG_CAP);
        assert_eq!(log.recorded(), total);
        let kept = log.drain();
        assert_eq!(kept.first().unwrap().requested_at, 100);
        assert_eq!(kept.last().unwrap().requested_at, total - 1);
        assert!(log.is_empty());
        assert_eq!(log.recorded(), total + 1, "drain counts as a mutation");
    }

    #[test]
    fn sparse_and_dense_ticking_agree() {
        // The keyed jitter makes catch-up path-independent: ticking every
        // microsecond and ticking once per millisecond walk the same
        // opportunity-clock sequence.
        let n = noise();
        let mut dense = engine(HSW);
        let mut sparse = engine(HSW);
        run_until(&mut dense, &n, 0, 50_000 * US);
        let mut t = 0;
        while t <= 50_000 * US {
            sparse.tick(t, &n);
            t += 1_000 * US;
        }
        sparse.tick(50_000 * US, &n);
        assert_eq!(dense.next_opportunity(), sparse.next_opportunity());
    }

    #[test]
    fn latency_bounds_match_figure3() {
        // Random request times → latencies between ~21 µs and ~524 µs.
        let mut rng = SmallRng::seed_from_u64(1);
        let n = noise();
        let mut e = engine(HSW);
        run_until(&mut e, &n, 0, 10_000 * US);
        let mut lo = f64::MAX;
        let mut hi: f64 = 0.0;
        let mut t = 10_000 * US;
        for _ in 0..300 {
            t += US * rng.gen_range(1..997); // random offset vs. the 500 µs clock
            let lat = measure(&mut e, &n, t);
            lo = lo.min(lat);
            hi = hi.max(lat);
            t += 2_000 * US;
        }
        assert!((20.0..=40.0).contains(&lo), "min latency {lo}");
        assert!((480.0..=530.0).contains(&hi), "max latency {hi}");
    }

    #[test]
    fn request_right_after_change_takes_a_full_period() {
        // Figure 3: "Requesting a frequency transition instantly after a
        // frequency change has been detected leads to around 500 µs".
        let n = noise();
        let mut e = engine(HSW);
        let mut t = 0;
        for _ in 0..50 {
            // Wait for a change to complete, then request immediately.
            let lat = measure(&mut e, &n, t + US);
            t += (lat as Ns + 2) * US;
            let lat2 = measure(&mut e, &n, t);
            assert!(
                (470.0..=540.0).contains(&lat2),
                "instant re-request latency {lat2}"
            );
            t += (lat2 as Ns + 7) * US;
        }
    }

    #[test]
    fn request_400us_after_change_takes_about_100us() {
        let n = noise();
        let mut e = engine(HSW);
        let mut t = 1_000 * US;
        let mut lats = Vec::new();
        for _ in 0..50 {
            let lat = measure(&mut e, &n, t);
            t += (lat as Ns) * US; // change completed here
            t += 400 * US - calib::PSTATE_SWITCHING_TIME_US as Ns * US;
            let lat2 = measure(&mut e, &n, t);
            lats.push(lat2);
            t += 1_700 * US + (t % 13) * US;
        }
        let median = {
            lats.sort_by(f64::total_cmp);
            lats[lats.len() / 2]
        };
        assert!(
            (70.0..=140.0).contains(&median),
            "400 µs-delay median latency {median}"
        );
    }

    #[test]
    fn same_socket_cores_transition_at_the_same_opportunity() {
        // Paper Section VI-A: "cores on the same processor change their
        // frequency at the same time".
        let n = noise();
        let mut e = engine(HSW);
        run_until(&mut e, &n, 0, 3_000 * US);
        e.drain_events();
        e.request(2, PState::from_mhz(1300), 3_100 * US);
        e.request(9, PState::from_mhz(1400), 3_250 * US);
        run_until(&mut e, &n, 3_100 * US, 5_000 * US);
        let events = e.drain_events();
        let e2 = events.iter().find(|ev| ev.core == 2).expect("core 2");
        let e9 = events.iter().find(|ev| ev.core == 9).expect("core 9");
        assert_eq!(
            e2.completed_at, e9.completed_at,
            "same-socket transitions must coincide"
        );
    }

    #[test]
    fn different_sockets_transition_independently() {
        let n = noise();
        let mut s0 = PStateEngine::new(HSW, 12, PState::from_mhz(1200), 0);
        let mut s1 = PStateEngine::new(HSW, 12, PState::from_mhz(1200), 237 * US);
        run_until(&mut s0, &n, 0, 3_000 * US);
        run_until(&mut s1, &n, 0, 3_000 * US);
        s0.drain_events();
        s1.drain_events();
        s0.request(0, PState::from_mhz(1300), 3_050 * US);
        s1.request(0, PState::from_mhz(1300), 3_050 * US);
        run_until(&mut s0, &n, 3_050 * US, 5_000 * US);
        run_until(&mut s1, &n, 3_050 * US, 5_000 * US);
        let t0 = s0.drain_events()[0].completed_at;
        let t1 = s1.drain_events()[0].completed_at;
        assert_ne!(t0, t1, "socket phase offsets must decouple transitions");
    }

    #[test]
    fn pre_haswell_transitions_are_immediate() {
        // Paper Section VI-A: "on previous processors (including
        // Haswell-HE), p-state transition requests are always carried out
        // immediately (requiring only the switching time)."
        for gen in [CpuGeneration::SandyBridgeEp, CpuGeneration::HaswellHe] {
            let n = noise();
            let mut e = PStateEngine::new(gen, 8, PState::from_mhz(1200), 0);
            for t_req in [123 * US, 7_777 * US, 31_415 * US] {
                let lat = measure(&mut e, &n, t_req);
                assert!(
                    (lat - calib::PSTATE_SWITCHING_TIME_US as f64).abs() < 1.5,
                    "{}: latency {lat}",
                    gen.name()
                );
            }
        }
    }

    #[test]
    fn skylake_hwp_grants_within_the_fast_switching_time() {
        // 1905.12468 Section IV: Skylake-SP frequency transitions complete
        // in tens of microseconds with no 500 µs opportunity window.
        let n = noise();
        let mut e = PStateEngine::new(CpuGeneration::SkylakeSp, 8, PState::from_mhz(1200), 0);
        let skx_us = calib::skx::PSTATE_SWITCHING_TIME_US as f64;
        for t_req in [123 * US, 7_777 * US, 31_415 * US] {
            let lat = measure(&mut e, &n, t_req);
            assert!((lat - skx_us).abs() < 1.5, "latency {lat}");
        }
    }

    #[test]
    fn skylake_pstates_are_per_core() {
        let n = noise();
        let mut e = PStateEngine::new(CpuGeneration::SkylakeSp, 8, PState::from_mhz(1200), 0);
        e.request(3, PState::from_mhz(2100), 0);
        run_until(&mut e, &n, 0, 100 * US);
        assert_eq!(e.current(3), PState::from_mhz(2100));
        for c in (0..8).filter(|c| *c != 3) {
            assert_eq!(e.current(c), PState::from_mhz(1200), "core {c}");
        }
    }

    #[test]
    fn chip_wide_domain_moves_all_cores_before_haswell_ep() {
        let n = noise();
        let mut e = PStateEngine::new(CpuGeneration::SandyBridgeEp, 8, PState::from_mhz(1200), 0);
        e.request(3, PState::from_mhz(2500), 1000 * US);
        run_until(&mut e, &n, 1000 * US, 1100 * US);
        for c in 0..8 {
            assert_eq!(e.current(c), PState::from_mhz(2500), "core {c}");
        }
    }

    #[test]
    fn pcps_moves_only_the_requested_core() {
        let n = noise();
        let mut e = engine(HSW);
        e.request(3, PState::from_mhz(2500), 0);
        run_until(&mut e, &n, 0, 1_000 * US);
        assert_eq!(e.current(3), PState::from_mhz(2500));
        for c in (0..12).filter(|c| *c != 3) {
            assert_eq!(e.current(c), PState::from_mhz(1200), "core {c}");
        }
    }

    #[test]
    fn acpi_claim_of_10us_is_inapplicable_on_haswell_ep() {
        // Paper: "the ACPI tables report an estimated 10 µs ... not
        // supported by the measurements".
        let mut rng = SmallRng::seed_from_u64(9);
        let n = noise();
        let mut e = engine(HSW);
        run_until(&mut e, &n, 0, 2_000 * US);
        let mut all_above = true;
        let mut t = 2_000 * US;
        for _ in 0..40 {
            t += US * rng.gen_range(1..991);
            let lat = measure(&mut e, &n, t);
            all_above &= lat > calib::ACPI_PSTATE_LATENCY_US as f64;
            t += 1_500 * US;
        }
        assert!(all_above, "every measured latency must exceed 10 µs");
    }
}
