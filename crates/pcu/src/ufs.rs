//! Uncore frequency scaling (paper Sections II-D and V-A, Table III).
//!
//! The uncore frequency is set transparently by hardware. Reverse
//! engineering in the paper shows it depends on (a) the frequency *setting*
//! of the fastest active core in the system, via a fixed schedule
//! (Table III), (b) the EPB — `performance` pins the maximum, (c) the
//! cores' stall cycles — memory-bound load raises the uncore toward its
//! 3.0 GHz maximum, (d) package c-states — PC3/PC6 halt the uncore clock,
//! and (e) power limits, which the [`crate::controller`] applies on top.

use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::{EpbClass, SkuSpec, UncorePolicy};

/// Inputs to the UFS decision for one socket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UfsInputs {
    /// Highest core-frequency *setting* among active cores in the system
    /// (cross-socket: the passive socket follows the active one).
    pub fastest_setting: FreqSetting,
    /// Whether this socket itself has any active core.
    pub socket_active: bool,
    /// EPB class of the (driving) cores.
    pub epb: EpbClass,
    /// Memory-stall fraction of the running workload (0 when idle).
    pub stall_fraction: f64,
    /// Whether the socket is in a deep package c-state (PC3/PC6).
    pub package_sleep: bool,
}

/// Schedule lookup: index 0 = Turbo, 1 = base (2.5 GHz), … last = min.
/// The schedule itself comes from the generation's [`UncorePolicy`].
fn schedule_index(policy: &UncorePolicy, spec: &SkuSpec, setting: FreqSetting) -> usize {
    match setting {
        FreqSetting::Turbo => 0,
        FreqSetting::Fixed(p) => {
            let steps = (spec.freq.base_mhz.saturating_sub(p.mhz())) / 100;
            (1 + steps as usize).min(policy.active_schedule_mhz.len() - 1)
        }
    }
}

/// The baseline (no-stall) uncore frequency from the Table III schedule.
pub fn schedule_mhz(spec: &SkuSpec, setting: FreqSetting, socket_active: bool) -> u32 {
    let policy = spec.generation.policy().uncore();
    let idx = schedule_index(&policy, spec, setting);
    if socket_active {
        policy.active_schedule_mhz[idx]
    } else {
        policy.passive_schedule_mhz[idx]
    }
}

/// The UFS target frequency in MHz, before power limiting.
///
/// Returns 0 when the uncore clock is halted (deep package sleep,
/// paper Section V-A).
pub fn ufs_target_mhz(spec: &SkuSpec, inputs: &UfsInputs) -> u32 {
    if inputs.package_sleep {
        return 0;
    }
    let max = spec.freq.uncore_max_mhz;
    if inputs.epb == EpbClass::Performance {
        // Table III footnote: 3.0 GHz if EPB is set to performance.
        return max;
    }
    let base = schedule_mhz(spec, inputs.fastest_setting, inputs.socket_active);
    // Stall cycles raise the uncore toward its maximum: fully memory-bound
    // load (the paper's upper-bound experiment) reaches 3.0 GHz at any core
    // frequency setting.
    let g =
        (inputs.stall_fraction / spec.generation.policy().uncore().stall_ramp_full).clamp(0.0, 1.0);
    let target = base as f64 + g * (max as f64 - base as f64);
    (target.round() as u32).clamp(spec.freq.uncore_min_mhz, max)
}

/// Whether leftover power budget may push the uncore *above* the UFS target
/// (only pays off when the workload actually spends a meaningful share of
/// its cycles waiting on memory; FMA-dense kernels with incidental stalls
/// do not qualify).
pub fn stall_boost_allowed(spec: &SkuSpec, stall_fraction: f64) -> bool {
    stall_fraction > spec.generation.policy().uncore().stall_boost_threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::PState;
    use proptest::prelude::*;

    fn sku() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    fn no_stall_inputs(setting: FreqSetting, active: bool) -> UfsInputs {
        UfsInputs {
            fastest_setting: setting,
            socket_active: active,
            epb: EpbClass::Balanced,
            stall_fraction: 0.0,
            package_sleep: false,
        }
    }

    #[test]
    fn table3_active_socket_schedule() {
        // Paper Table III, first row (no memory stalls, balanced EPB).
        let spec = sku();
        let expect: [(FreqSetting, u32); 15] = [
            (FreqSetting::Turbo, 3000),
            (FreqSetting::from_mhz(2500), 2200),
            (FreqSetting::from_mhz(2400), 2100),
            (FreqSetting::from_mhz(2300), 2000),
            (FreqSetting::from_mhz(2200), 1900),
            (FreqSetting::from_mhz(2100), 1800),
            (FreqSetting::from_mhz(2000), 1750),
            (FreqSetting::from_mhz(1900), 1650),
            (FreqSetting::from_mhz(1800), 1600),
            (FreqSetting::from_mhz(1700), 1500),
            (FreqSetting::from_mhz(1600), 1400),
            (FreqSetting::from_mhz(1500), 1300),
            (FreqSetting::from_mhz(1400), 1200),
            (FreqSetting::from_mhz(1300), 1200),
            (FreqSetting::from_mhz(1200), 1200),
        ];
        for (setting, mhz) in expect {
            assert_eq!(
                ufs_target_mhz(&spec, &no_stall_inputs(setting, true)),
                mhz,
                "setting {}",
                setting.label()
            );
        }
    }

    #[test]
    fn table3_passive_socket_tracks_one_bin_lower() {
        // Paper Table III, second row.
        let spec = sku();
        let expect: [(FreqSetting, u32); 5] = [
            (FreqSetting::from_mhz(2500), 2100),
            (FreqSetting::from_mhz(2400), 2000),
            (FreqSetting::from_mhz(2100), 1700),
            (FreqSetting::from_mhz(1600), 1200),
            (FreqSetting::from_mhz(1200), 1200),
        ];
        for (setting, mhz) in expect {
            assert_eq!(
                ufs_target_mhz(&spec, &no_stall_inputs(setting, false)),
                mhz,
                "setting {}",
                setting.label()
            );
        }
    }

    #[test]
    fn epb_performance_pins_the_maximum() {
        // Table III footnote (*): 3.0 GHz if EPB is set to performance.
        let spec = sku();
        for setting in [
            FreqSetting::Turbo,
            FreqSetting::from_mhz(2500),
            FreqSetting::from_mhz(1200),
        ] {
            let mut inputs = no_stall_inputs(setting, true);
            inputs.epb = EpbClass::Performance;
            assert_eq!(ufs_target_mhz(&spec, &inputs), 3000);
        }
    }

    #[test]
    fn memory_stalls_raise_uncore_to_max_at_any_core_frequency() {
        // Paper Section V-A: "The upper bound for the uncore frequency in
        // memory-stall scenarios is 3.0 GHz on our system, also for lower
        // core frequencies."
        let spec = sku();
        for setting in [FreqSetting::from_mhz(1200), FreqSetting::from_mhz(2500)] {
            let mut inputs = no_stall_inputs(setting, true);
            inputs.stall_fraction = 0.85;
            assert_eq!(ufs_target_mhz(&spec, &inputs), 3000);
        }
    }

    #[test]
    fn package_sleep_halts_the_uncore_clock() {
        let spec = sku();
        let mut inputs = no_stall_inputs(FreqSetting::from_mhz(2500), false);
        inputs.package_sleep = true;
        assert_eq!(ufs_target_mhz(&spec, &inputs), 0);
    }

    #[test]
    fn firestarter_stall_level_lands_near_its_core_clock() {
        // The Table IV equilibrium: FIRESTARTER's moderate stall fraction
        // (0.30) puts the pre-power-limit uncore target near 2.35 GHz at the
        // 2.3 GHz setting.
        let spec = sku();
        let mut inputs = no_stall_inputs(FreqSetting::from_mhz(2300), true);
        inputs.stall_fraction = 0.30;
        let t = ufs_target_mhz(&spec, &inputs);
        assert!((2300..=2450).contains(&t), "target {t}");
    }

    #[test]
    fn boost_requires_stalls() {
        assert!(!stall_boost_allowed(&sku(), 0.0));
        assert!(stall_boost_allowed(&sku(), 0.30));
    }

    proptest! {
        #[test]
        fn prop_target_within_bounds(
            mhz in 12u32..=25,
            stall in 0.0f64..=1.0,
            active in any::<bool>(),
        ) {
            let spec = sku();
            let inputs = UfsInputs {
                fastest_setting: FreqSetting::Fixed(PState(mhz as u8)),
                socket_active: active,
                epb: EpbClass::Balanced,
                stall_fraction: stall,
                package_sleep: false,
            };
            let t = ufs_target_mhz(&spec, &inputs);
            prop_assert!(t >= spec.freq.uncore_min_mhz);
            prop_assert!(t <= spec.freq.uncore_max_mhz);
        }

        #[test]
        fn prop_target_monotone_in_stalls(
            stall in 0.0f64..0.8,
            mhz in 12u32..=25,
        ) {
            let spec = sku();
            let mk = |s: f64| UfsInputs {
                fastest_setting: FreqSetting::Fixed(PState(mhz as u8)),
                socket_active: true,
                epb: EpbClass::Balanced,
                stall_fraction: s,
                package_sleep: false,
            };
            prop_assert!(
                ufs_target_mhz(&spec, &mk(stall + 0.05))
                    >= ufs_target_mhz(&spec, &mk(stall))
            );
        }

        #[test]
        fn prop_active_socket_never_below_passive(mhz in 12u32..=25) {
            let spec = sku();
            let setting = FreqSetting::Fixed(PState(mhz as u8));
            prop_assert!(
                ufs_target_mhz(&spec, &no_stall_inputs(setting, true))
                    >= ufs_target_mhz(&spec, &no_stall_inputs(setting, false))
            );
        }
    }
}
