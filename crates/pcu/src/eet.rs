//! Energy-efficient turbo (paper Section II-E).
//!
//! EET monitors stall cycles and, together with the EPB, limits turbo
//! frequencies that do not buy performance. The stall data is only polled
//! sporadically — the patent lists a 1 ms period — so workloads whose
//! character changes at an unfavorable rate get mispredicted, which is the
//! paper's caveat ("EET may impair performance and energy efficiency of
//! workloads that change their characteristics at an unfavorable rate").

use hsw_hwspec::clock::{ClockDomain, US};
use hsw_hwspec::{calib, EpbClass, SkuSpec};

use crate::pstate::Ns;

/// Stall fraction above which turbo stops paying off and EET caps the grant.
pub const EET_STALL_CAP_THRESHOLD: f64 = 0.60;

/// The per-socket EET controller.
#[derive(Debug, Clone)]
pub struct EetController {
    enabled: bool,
    /// Stall fraction sampled at the last poll (stale up to 1 ms).
    sampled_stall: f64,
    next_poll: Ns,
}

impl EetController {
    pub fn new(enabled: bool) -> Self {
        EetController {
            enabled,
            sampled_stall: 0.0,
            next_poll: 0,
        }
    }

    /// Advance to `now`, polling the *instantaneous* stall fraction only at
    /// the 1 ms boundaries — the sporadic sampling the paper criticizes.
    pub fn tick(&mut self, now: Ns, instantaneous_stall: f64) {
        while self.next_poll <= now {
            self.sampled_stall = instantaneous_stall;
            self.next_poll += calib::EET_POLL_PERIOD_US as Ns * US;
        }
    }

    /// The stall estimate EET currently acts on (possibly stale).
    pub fn sampled_stall(&self) -> f64 {
        self.sampled_stall
    }

    /// The turbo ceiling EET allows, given the unconstrained ceiling.
    ///
    /// With EPB `performance` (or EET disabled) the grant is untouched.
    /// Otherwise a stall-dominated workload is capped at the base frequency
    /// — turbo would burn power without performance.
    pub fn limit_mhz(&self, spec: &SkuSpec, epb: EpbClass, unconstrained_mhz: u32) -> u32 {
        if !self.enabled || epb == EpbClass::Performance {
            return unconstrained_mhz;
        }
        if self.sampled_stall > EET_STALL_CAP_THRESHOLD {
            unconstrained_mhz.min(spec.freq.base_mhz)
        } else {
            unconstrained_mhz
        }
    }

    /// The next poll boundary (the only instant this controller acts).
    pub fn next_poll(&self) -> Ns {
        self.next_poll
    }

    /// Whether a poll at the given stall level would change the sampled
    /// state — i.e. whether replaying this controller over a constant
    /// workload can alter anything downstream.
    pub fn settled_at(&self, instantaneous_stall: f64) -> bool {
        let before = self.sampled_stall > EET_STALL_CAP_THRESHOLD;
        let after = instantaneous_stall > EET_STALL_CAP_THRESHOLD;
        before == after
    }
}

impl ClockDomain for EetController {
    fn name(&self) -> &'static str {
        "eet"
    }

    fn native_period_ns(&self) -> Ns {
        calib::EET_POLL_PERIOD_US as Ns * US
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        self.enabled.then_some(self.next_poll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;

    fn sku() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    #[test]
    fn stall_dominated_turbo_is_capped_at_base() {
        let mut eet = EetController::new(true);
        eet.tick(0, 0.85);
        assert_eq!(eet.limit_mhz(&sku(), EpbClass::Balanced, 2900), 2500);
    }

    #[test]
    fn compute_bound_turbo_is_untouched() {
        let mut eet = EetController::new(true);
        eet.tick(0, 0.05);
        assert_eq!(eet.limit_mhz(&sku(), EpbClass::Balanced, 2900), 2900);
    }

    #[test]
    fn performance_epb_disables_the_cap() {
        let mut eet = EetController::new(true);
        eet.tick(0, 0.9);
        assert_eq!(eet.limit_mhz(&sku(), EpbClass::Performance, 2900), 2900);
    }

    #[test]
    fn disabled_eet_never_caps() {
        let mut eet = EetController::new(false);
        eet.tick(0, 0.9);
        assert_eq!(eet.limit_mhz(&sku(), EpbClass::EnergySaving, 2900), 2900);
    }

    #[test]
    fn sporadic_polling_acts_on_stale_data() {
        // A workload flipping phase between polls is mispredicted — the
        // paper's "unfavorable rate" remark.
        let mut eet = EetController::new(true);
        eet.tick(0, 0.9); // poll sees a stalled phase
                          // The workload turns compute-bound right after the poll …
        eet.tick(400 * US, 0.05); // no poll boundary crossed: stale 0.9
        assert!(
            eet.limit_mhz(&sku(), EpbClass::Balanced, 2900) == 2500,
            "EET still caps based on the stale stalled sample"
        );
        // … and only the next 1 ms poll corrects it.
        eet.tick(1_000 * US, 0.05);
        assert_eq!(eet.limit_mhz(&sku(), EpbClass::Balanced, 2900), 2900);
    }
}
