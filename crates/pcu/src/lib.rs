//! # hsw-pcu — the Power Control Unit of the simulated processor
//!
//! Implements the firmware mechanisms the paper characterizes:
//!
//! * [`pstate`]: the p-state transition engine — per-core p-state domains
//!   (PCPS) with the ~500 µs opportunity mechanism of paper Figure 4
//!   (all cores of a socket transition together; sockets are independent),
//!   and the immediate mode of earlier generations.
//! * [`ufs`]: uncore frequency scaling — the Table III schedule keyed by the
//!   fastest active core's frequency setting, the EPB=performance override,
//!   the stall-driven raise toward 3.0 GHz, and the passive-socket shadow
//!   schedule.
//! * [`avx`]: the AVX license state machine (voltage raise → reduced
//!   throughput window → AVX base/turbo ceiling → 1 ms relax; paper
//!   Section II-F).
//! * [`eet`]: energy-efficient turbo (1 ms stall polling; paper
//!   Section II-E).
//! * [`controller`]: the TDP enforcement and core/uncore budget balancing
//!   that produces the Table IV equilibria (proportional throttle from the
//!   granted ceilings, leftover budget flowing to the uncore when the
//!   workload stalls on memory).

pub mod avx;
pub mod controller;
pub mod eet;
pub mod pstate;
pub mod ufs;

pub use avx::AvxLicense;
pub use controller::{PcuController, PcuGrant, PcuInputs};
pub use eet::EetController;
pub use pstate::{
    PStateEngine, PStateEngineSnapshot, TransitionEvent, TransitionLog, TRANSITION_LOG_CAP,
};
pub use ufs::{ufs_target_mhz, UfsInputs};
