//! The AVX license / AVX-frequency state machine (paper Section II-F).
//!
//! Heavy 256-bit AVX/FMA streams draw more current: the core signals the
//! PCU for more voltage and slows AVX execution while the FIVR ramps; to
//! stay inside the TDP the clock ceiling drops to the AVX frequency range
//! (AVX base … AVX max-all-core turbo). The PCU returns to the regular
//! operating mode 1 ms after the last AVX instruction completes.

use hsw_hwspec::clock::{ClockDomain, US};
use hsw_hwspec::{calib, SkuSpec};

use crate::pstate::Ns;

/// License state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LicenseState {
    /// Scalar/128-bit operation: regular frequencies apply.
    Normal,
    /// Voltage ramp in progress: AVX instructions execute at reduced
    /// throughput (the paper's "slows the execution of AVX instructions").
    Ramping { until: Ns },
    /// License granted: AVX frequency ceiling applies.
    Active,
}

/// Per-core AVX license tracker.
#[derive(Debug, Clone)]
pub struct AvxLicense {
    state: LicenseState,
    /// Last time heavy AVX instructions were observed.
    last_avx: Option<Ns>,
    /// FIVR voltage-ramp time when entering the license.
    ramp_us: u32,
}

impl Default for AvxLicense {
    fn default() -> Self {
        Self::new()
    }
}

impl AvxLicense {
    pub fn new() -> Self {
        AvxLicense {
            state: LicenseState::Normal,
            last_avx: None,
            // Voltage ramp is on the order of the FIVR switching time.
            ramp_us: calib::PSTATE_SWITCHING_TIME_US,
        }
    }

    /// Inform the license tracker whether the interval ending at `now`
    /// executed heavy-AVX work.
    pub fn observe(&mut self, avx_active: bool, now: Ns) {
        if avx_active {
            self.last_avx = Some(now);
            if self.state == LicenseState::Normal {
                self.state = LicenseState::Ramping {
                    until: now + self.ramp_us as Ns * US,
                };
            }
        }
        match self.state {
            LicenseState::Ramping { until } if now >= until => {
                self.state = LicenseState::Active;
            }
            LicenseState::Active => {
                // Relax 1 ms after the last AVX instruction (paper: "The PCU
                // returns to regular (non-AVX) operating mode 1 ms after AVX
                // instructions are completed").
                if let Some(last) = self.last_avx {
                    if now.saturating_sub(last) >= calib::AVX_RELAX_PERIOD_US as Ns * US {
                        self.state = LicenseState::Normal;
                        self.last_avx = None;
                    }
                }
            }
            _ => {}
        }
    }

    pub fn state(&self) -> LicenseState {
        self.state
    }

    /// Whether the AVX frequency ceiling (and the AVX power multiplier)
    /// applies.
    pub fn engaged(&self) -> bool {
        !matches!(self.state, LicenseState::Normal)
    }

    /// Execution-throughput factor: reduced while the voltage ramps.
    pub fn throughput_factor(&self) -> f64 {
        match self.state {
            LicenseState::Ramping { .. } => 0.25,
            _ => 1.0,
        }
    }

    /// The frequency ceiling in MHz this license state imposes for `active`
    /// active cores; `None` when regular frequencies apply.
    pub fn ceiling_mhz(&self, spec: &SkuSpec, active: usize) -> Option<u32> {
        if !self.engaged() || !spec.generation.has_avx_frequencies() {
            return None;
        }
        Some(spec.freq.avx_turbo_mhz(active))
    }

    /// The guaranteed minimum under AVX load (AVX base frequency).
    pub fn guaranteed_mhz(spec: &SkuSpec) -> u32 {
        spec.freq.avx_base_mhz.unwrap_or(spec.freq.min_mhz)
    }

    /// Whether the license state is stable under a *constant* AVX input:
    /// replaying `observe(avx_active, _)` at any cadence leaves the observable
    /// state (engaged, throughput factor) unchanged. False while the voltage
    /// ramps or while a relax countdown is pending.
    pub fn stable_under(&self, avx_active: bool) -> bool {
        match self.state {
            LicenseState::Ramping { .. } => false,
            LicenseState::Normal => !avx_active,
            LicenseState::Active => avx_active,
        }
    }
}

impl ClockDomain for AvxLicense {
    fn name(&self) -> &'static str {
        "avx"
    }

    fn native_period_ns(&self) -> Ns {
        calib::AVX_RELAX_PERIOD_US as Ns * US
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        match self.state {
            LicenseState::Ramping { until } => Some(until),
            LicenseState::Active => self
                .last_avx
                .map(|last| last + calib::AVX_RELAX_PERIOD_US as Ns * US),
            LicenseState::Normal => None,
        }
    }

    fn quiescent(&self) -> bool {
        matches!(self.state, LicenseState::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::SkuSpec;

    fn sku() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    #[test]
    fn license_engages_via_voltage_ramp() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        assert!(matches!(lic.state(), LicenseState::Ramping { .. }));
        assert!(lic.throughput_factor() < 1.0, "ramp slows AVX execution");
        lic.observe(true, 30 * US);
        assert_eq!(lic.state(), LicenseState::Active);
        assert_eq!(lic.throughput_factor(), 1.0, "full throughput after ramp");
    }

    #[test]
    fn license_relaxes_1ms_after_last_avx() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert!(lic.engaged());
        // 0.9 ms of scalar code: still licensed.
        lic.observe(false, 930 * US);
        assert!(lic.engaged());
        // ≥1 ms after the last AVX instruction: back to normal.
        lic.observe(false, 1_040 * US);
        assert!(!lic.engaged());
    }

    #[test]
    fn avx_ceiling_matches_turbo_table() {
        // Section II-F: AVX turbo 2.8–3.1 GHz depending on active cores.
        let spec = sku();
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert_eq!(lic.ceiling_mhz(&spec, 1), Some(3100));
        assert_eq!(lic.ceiling_mhz(&spec, 12), Some(2800));
    }

    #[test]
    fn no_ceiling_without_license_or_on_old_generations() {
        let spec = sku();
        let lic = AvxLicense::new();
        assert_eq!(lic.ceiling_mhz(&spec, 12), None);

        let snb = SkuSpec::xeon_e5_2690();
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert_eq!(lic.ceiling_mhz(&snb, 8), None, "SNB has no AVX frequencies");
    }

    #[test]
    fn avx_base_is_the_guarantee() {
        assert_eq!(AvxLicense::guaranteed_mhz(&sku()), 2100);
    }

    #[test]
    fn relicensing_after_relax_ramps_again() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        lic.observe(false, 1_100 * US);
        assert!(!lic.engaged());
        lic.observe(true, 2_000 * US);
        assert!(matches!(lic.state(), LicenseState::Ramping { .. }));
    }
}
