//! The AVX license / AVX-frequency state machine (paper Section II-F).
//!
//! Heavy 256-bit AVX/FMA streams draw more current: the core signals the
//! PCU for more voltage and slows AVX execution while the FIVR ramps; to
//! stay inside the TDP the clock ceiling drops to the AVX frequency range
//! (AVX base … AVX max-all-core turbo). The PCU returns to the regular
//! operating mode 1 ms after the last AVX instruction completes.
//!
//! Skylake-SP adds a second license level for 512-bit streams
//! (1905.12468 Section V): level 1 caps at the AVX 2.0 frequencies,
//! level 2 at the (lower) AVX-512 frequencies, with a faster ramp and a
//! shorter relax period. How many levels exist and how fast the machine
//! moves comes from the generation's [`hsw_hwspec::LicensePolicy`].

use hsw_hwspec::clock::{ClockDomain, US};
use hsw_hwspec::{CpuGeneration, SkuSpec};

use crate::pstate::Ns;

/// License state of one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LicenseState {
    /// Scalar/128-bit operation: regular frequencies apply.
    Normal,
    /// Voltage ramp in progress: AVX instructions execute at reduced
    /// throughput (the paper's "slows the execution of AVX instructions").
    Ramping { until: Ns },
    /// License granted: the level's frequency ceiling applies.
    Active,
}

/// Per-core AVX license tracker.
#[derive(Debug, Clone)]
pub struct AvxLicense {
    state: LicenseState,
    /// Last time heavy SIMD instructions were observed.
    last_avx: Option<Ns>,
    /// License level being ramped to / held (1 = 256-bit, 2 = 512-bit).
    level: u8,
    /// Voltage-ramp time when entering (or widening) the license.
    ramp_us: u32,
    /// Relax period after the last heavy SIMD instruction.
    relax_us: u32,
    /// Highest license level the generation distinguishes.
    max_level: u8,
    /// Execution-throughput factor while the voltage ramps.
    ramp_throughput: f64,
}

impl Default for AvxLicense {
    fn default() -> Self {
        Self::new()
    }
}

impl AvxLicense {
    /// A tracker with the paper system's (Haswell-EP) license timings.
    pub fn new() -> Self {
        Self::for_generation(CpuGeneration::HaswellEp)
    }

    /// A tracker with `generation`'s license timings and level count.
    pub fn for_generation(generation: CpuGeneration) -> Self {
        let policy = generation.policy().license();
        AvxLicense {
            state: LicenseState::Normal,
            last_avx: None,
            level: 0,
            ramp_us: policy.ramp_us,
            relax_us: policy.relax_us,
            // The state machine runs even on pre-AVX-frequency parts (the
            // voltage ramp is physical); only the *ceiling* is gated on the
            // generation actually distinguishing license frequencies.
            max_level: policy.levels.max(1),
            ramp_throughput: policy.ramp_throughput_factor,
        }
    }

    /// Inform the license tracker whether the interval ending at `now`
    /// executed heavy 256-bit AVX work.
    pub fn observe(&mut self, avx_active: bool, now: Ns) {
        self.observe_level(if avx_active { 1 } else { 0 }, now);
    }

    /// Inform the tracker of the widest heavy-SIMD level executed in the
    /// interval ending at `now`: 0 = scalar/light, 1 = heavy 256-bit,
    /// 2 = heavy 512-bit. Levels above the generation's maximum clamp down.
    pub fn observe_level(&mut self, level: u8, now: Ns) {
        let level = level.min(self.max_level);
        if level > 0 {
            self.last_avx = Some(now);
            if self.state == LicenseState::Normal {
                self.level = level;
                self.state = LicenseState::Ramping {
                    until: now + self.ramp_us as Ns * US,
                };
            } else if level > self.level {
                // Widening (e.g. AVX2 → AVX-512): another voltage ramp.
                self.level = level;
                self.state = LicenseState::Ramping {
                    until: now + self.ramp_us as Ns * US,
                };
            }
        }
        match self.state {
            LicenseState::Ramping { until } if now >= until => {
                self.state = LicenseState::Active;
            }
            LicenseState::Active => {
                // Relax after the last heavy instruction (paper: "The PCU
                // returns to regular (non-AVX) operating mode 1 ms after AVX
                // instructions are completed"; 1905.12468 measures ~670 µs
                // on Skylake-SP).
                if let Some(last) = self.last_avx {
                    if now.saturating_sub(last) >= self.relax_us as Ns * US {
                        self.state = LicenseState::Normal;
                        self.level = 0;
                        self.last_avx = None;
                    }
                }
            }
            _ => {}
        }
    }

    pub fn state(&self) -> LicenseState {
        self.state
    }

    /// The license level being ramped to or held (0 when disengaged).
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Whether a license frequency ceiling (and the matching power
    /// multiplier) applies.
    pub fn engaged(&self) -> bool {
        !matches!(self.state, LicenseState::Normal)
    }

    /// Execution-throughput factor: reduced while the voltage ramps.
    pub fn throughput_factor(&self) -> f64 {
        match self.state {
            LicenseState::Ramping { .. } => self.ramp_throughput,
            _ => 1.0,
        }
    }

    /// The frequency ceiling in MHz this license state imposes for `active`
    /// active cores; `None` when regular frequencies apply.
    pub fn ceiling_mhz(&self, spec: &SkuSpec, active: usize) -> Option<u32> {
        if !self.engaged() || !spec.generation.has_avx_frequencies() {
            return None;
        }
        Some(spec.freq.license_turbo_mhz(self.level, active))
    }

    /// The guaranteed minimum under AVX load (AVX base frequency).
    pub fn guaranteed_mhz(spec: &SkuSpec) -> u32 {
        spec.freq.avx_base_mhz.unwrap_or(spec.freq.min_mhz)
    }

    /// Whether the license state is stable under a *constant* SIMD input
    /// level: replaying `observe_level(level, _)` at any cadence leaves the
    /// observable state (engaged, level, throughput factor) unchanged.
    /// False while the voltage ramps or while a relax countdown is pending.
    pub fn stable_under_level(&self, level: u8) -> bool {
        let level = level.min(self.max_level);
        match self.state {
            LicenseState::Ramping { .. } => false,
            LicenseState::Normal => level == 0,
            LicenseState::Active => level == self.level,
        }
    }

    /// Binary-input variant of [`Self::stable_under_level`].
    pub fn stable_under(&self, avx_active: bool) -> bool {
        self.stable_under_level(if avx_active { 1 } else { 0 })
    }
}

impl ClockDomain for AvxLicense {
    fn name(&self) -> &'static str {
        "avx"
    }

    fn native_period_ns(&self) -> Ns {
        self.relax_us as Ns * US
    }

    fn next_event_ns(&self, _now: Ns) -> Option<Ns> {
        match self.state {
            LicenseState::Ramping { until } => Some(until),
            LicenseState::Active => self.last_avx.map(|last| last + self.relax_us as Ns * US),
            LicenseState::Normal => None,
        }
    }

    fn quiescent(&self) -> bool {
        matches!(self.state, LicenseState::Normal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::{calib, SkuSpec};

    fn sku() -> SkuSpec {
        SkuSpec::xeon_e5_2680_v3()
    }

    #[test]
    fn license_engages_via_voltage_ramp() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        assert!(matches!(lic.state(), LicenseState::Ramping { .. }));
        assert!(lic.throughput_factor() < 1.0, "ramp slows AVX execution");
        lic.observe(true, 30 * US);
        assert_eq!(lic.state(), LicenseState::Active);
        assert_eq!(lic.throughput_factor(), 1.0, "full throughput after ramp");
    }

    #[test]
    fn license_relaxes_1ms_after_last_avx() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert!(lic.engaged());
        // 0.9 ms of scalar code: still licensed.
        lic.observe(false, 930 * US);
        assert!(lic.engaged());
        // ≥1 ms after the last AVX instruction: back to normal.
        lic.observe(false, 1_040 * US);
        assert!(!lic.engaged());
    }

    #[test]
    fn avx_ceiling_matches_turbo_table() {
        // Section II-F: AVX turbo 2.8–3.1 GHz depending on active cores.
        let spec = sku();
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert_eq!(lic.ceiling_mhz(&spec, 1), Some(3100));
        assert_eq!(lic.ceiling_mhz(&spec, 12), Some(2800));
    }

    #[test]
    fn no_ceiling_without_license_or_on_old_generations() {
        let spec = sku();
        let lic = AvxLicense::new();
        assert_eq!(lic.ceiling_mhz(&spec, 12), None);

        let snb = SkuSpec::xeon_e5_2690();
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        assert_eq!(lic.ceiling_mhz(&snb, 8), None, "SNB has no AVX frequencies");
    }

    #[test]
    fn avx_base_is_the_guarantee() {
        assert_eq!(AvxLicense::guaranteed_mhz(&sku()), 2100);
    }

    #[test]
    fn relicensing_after_relax_ramps_again() {
        let mut lic = AvxLicense::new();
        lic.observe(true, 0);
        lic.observe(true, 30 * US);
        lic.observe(false, 1_100 * US);
        assert!(!lic.engaged());
        lic.observe(true, 2_000 * US);
        assert!(matches!(lic.state(), LicenseState::Ramping { .. }));
    }

    #[test]
    fn haswell_clamps_512bit_requests_to_level_1() {
        // Haswell has a single AVX license level: wide requests can't
        // select frequencies the SKU doesn't define.
        let spec = sku();
        let mut lic = AvxLicense::new();
        lic.observe_level(2, 0);
        lic.observe_level(2, 30 * US);
        assert_eq!(lic.level(), 1);
        assert_eq!(lic.ceiling_mhz(&spec, 12), Some(2800));
    }

    #[test]
    fn skylake_level2_selects_avx512_frequencies() {
        let spec = SkuSpec::xeon_platinum_8170();
        let mut lic = AvxLicense::for_generation(CpuGeneration::SkylakeSp);
        lic.observe_level(2, 0);
        lic.observe_level(2, calib::skx::LICENSE_RAMP_US as Ns * US + US);
        assert_eq!(lic.level(), 2);
        assert_eq!(
            lic.ceiling_mhz(&spec, 26),
            Some(spec.freq.avx512_turbo_mhz(26))
        );
    }

    #[test]
    fn widening_from_avx2_to_avx512_ramps_again() {
        let mut lic = AvxLicense::for_generation(CpuGeneration::SkylakeSp);
        lic.observe_level(1, 0);
        lic.observe_level(1, 30 * US);
        assert_eq!(lic.state(), LicenseState::Active);
        assert_eq!(lic.level(), 1);
        lic.observe_level(2, 40 * US);
        assert!(matches!(lic.state(), LicenseState::Ramping { .. }));
        assert_eq!(lic.level(), 2);
        // Narrower input while licensed wide keeps the wide license until
        // the relax period ends.
        lic.observe_level(1, 80 * US);
        assert_eq!(lic.level(), 2);
    }

    #[test]
    fn skylake_relaxes_after_the_measured_670us() {
        let mut lic = AvxLicense::for_generation(CpuGeneration::SkylakeSp);
        lic.observe_level(2, 0);
        lic.observe_level(2, 30 * US);
        assert!(lic.engaged());
        let relax = calib::skx::LICENSE_RELAX_US as Ns;
        lic.observe_level(0, 30 * US + (relax - 10) * US);
        assert!(lic.engaged(), "still inside the relax window");
        lic.observe_level(0, 30 * US + (relax + 10) * US);
        assert!(!lic.engaged());
        assert_eq!(lic.level(), 0);
    }
}
