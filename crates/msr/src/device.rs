//! The per-socket MSR bank: scoped registers, read/write semantics, and
//! counter accumulation with sub-count residue.

use std::collections::BTreeMap;

use hsw_hwspec::{CpuGeneration, RaplMode};

use crate::addresses as a;

/// Error raised by invalid MSR accesses — the software-visible equivalent of
/// a #GP fault from `rdmsr`/`wrmsr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrError {
    /// The address is not implemented on this generation (e.g. PP0 energy
    /// status on Haswell-EP, RAPL on Westmere-EP).
    Unsupported(u32),
    /// The register exists but is read-only.
    ReadOnly(u32),
    /// Thread index out of range for this socket.
    NoSuchThread(usize),
}

impl std::fmt::Display for MsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrError::Unsupported(addr) => write!(f, "#GP: MSR {addr:#x} not implemented"),
            MsrError::ReadOnly(addr) => write!(f, "#GP: MSR {addr:#x} is read-only"),
            MsrError::NoSuchThread(t) => write!(f, "no hardware thread {t}"),
        }
    }
}

impl std::error::Error for MsrError {}

/// Whether a register is replicated per hardware thread or shared by the
/// package.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrScope {
    Thread,
    Package,
}

/// Scope of each implemented register.
pub fn scope_of(addr: u32) -> MsrScope {
    match addr {
        a::IA32_TIME_STAMP_COUNTER
        | a::IA32_APERF
        | a::IA32_MPERF
        | a::IA32_PERF_STATUS
        | a::IA32_PERF_CTL
        | a::IA32_CLOCK_MODULATION
        | a::IA32_THERM_STATUS
        | a::IA32_ENERGY_PERF_BIAS
        | a::IA32_FIXED_CTR0_INST_RETIRED
        | a::IA32_FIXED_CTR1_CPU_CLK_UNHALTED
        | a::IA32_FIXED_CTR2_REF_CYCLES
        | a::MSR_CORE_C3_RESIDENCY
        | a::MSR_CORE_C6_RESIDENCY => MsrScope::Thread,
        _ => MsrScope::Package,
    }
}

/// Whether software may write the register.
fn is_writable(addr: u32) -> bool {
    matches!(
        addr,
        a::IA32_PERF_CTL
            | a::IA32_CLOCK_MODULATION
            | a::IA32_ENERGY_PERF_BIAS
            | a::IA32_MISC_ENABLE
            | a::MSR_PKG_POWER_LIMIT
            | a::MSR_DRAM_POWER_LIMIT
            | a::MSR_UNCORE_RATIO_LIMIT
            | a::MSR_U_PMON_UCLK_FIXED_CTL
    )
}

/// The full implemented register list for a generation.
fn implemented(addr: u32, generation: CpuGeneration) -> bool {
    let common = matches!(
        addr,
        a::IA32_TIME_STAMP_COUNTER
            | a::IA32_APERF
            | a::IA32_MPERF
            | a::IA32_PERF_STATUS
            | a::IA32_PERF_CTL
            | a::IA32_CLOCK_MODULATION
            | a::IA32_THERM_STATUS
            | a::IA32_MISC_ENABLE
            | a::IA32_ENERGY_PERF_BIAS
            | a::IA32_FIXED_CTR0_INST_RETIRED
            | a::IA32_FIXED_CTR1_CPU_CLK_UNHALTED
            | a::IA32_FIXED_CTR2_REF_CYCLES
            | a::MSR_PKG_C2_RESIDENCY
            | a::MSR_PKG_C3_RESIDENCY
            | a::MSR_PKG_C6_RESIDENCY
            | a::MSR_CORE_C3_RESIDENCY
            | a::MSR_CORE_C6_RESIDENCY
            | a::MSR_U_PMON_UCLK_FIXED_CTL
            | a::MSR_U_PMON_UCLK_FIXED_CTR
    );
    if common {
        return true;
    }
    let pkg_rapl = matches!(
        addr,
        a::MSR_RAPL_POWER_UNIT
            | a::MSR_PKG_POWER_LIMIT
            | a::MSR_PKG_ENERGY_STATUS
            | a::MSR_PKG_PERF_STATUS
            | a::MSR_PKG_POWER_INFO
    );
    let dram_rapl = matches!(
        addr,
        a::MSR_DRAM_POWER_LIMIT | a::MSR_DRAM_ENERGY_STATUS | a::MSR_DRAM_PERF_STATUS
    );
    let policy = generation.policy().rapl();
    match policy.mode {
        RaplMode::Unavailable => false,
        RaplMode::Modeled | RaplMode::Measured => {
            if pkg_rapl {
                return true;
            }
            if dram_rapl {
                return policy.has_dram_domain;
            }
            // PP0 exists on Sandy/Ivy Bridge-EP but not Haswell-EP
            // (paper Section IV) or Skylake-SP.
            if addr == a::MSR_PP0_ENERGY_STATUS {
                return policy.has_pp0_domain;
            }
            // The uncore ratio-limit MSR only exists with independent UFS.
            if addr == a::MSR_UNCORE_RATIO_LIMIT {
                return policy.has_uncore_ratio_limit_msr;
            }
            false
        }
    }
}

/// The MSR bank of one socket: package-scoped registers plus one register
/// set per hardware thread. Counter state is kept with fractional residue so
/// sub-count increments (e.g. 0.3 cycles worth of a µs tick) accumulate
/// exactly.
#[derive(Debug)]
pub struct MsrBank {
    // snap:skip(construction-time constant, rebuilt by MsrBank::new)
    generation: CpuGeneration,
    // snap:skip(construction-time constant, rebuilt by MsrBank::new)
    threads: usize,
    package: BTreeMap<u32, u64>,
    per_thread: Vec<BTreeMap<u32, u64>>,
    residue: BTreeMap<(usize, u32), f64>,
}

/// Plain-data image of an [`MsrBank`]'s mutable state (register contents and
/// counter residue). Geometry (`generation`, `threads`) is configuration and
/// is re-established by the constructor, not the snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct MsrBankSnapshot {
    package: BTreeMap<u32, u64>,
    per_thread: Vec<BTreeMap<u32, u64>>,
    residue: BTreeMap<(usize, u32), f64>,
}

/// Key used in the residue map for package-scoped counters.
const PKG_KEY: usize = usize::MAX;

impl MsrBank {
    pub fn new(generation: CpuGeneration, threads: usize) -> Self {
        let mut bank = MsrBank {
            generation,
            threads,
            package: BTreeMap::new(),
            per_thread: vec![BTreeMap::new(); threads],
            residue: BTreeMap::new(),
        };
        // Architectural reset values.
        if implemented(a::MSR_RAPL_POWER_UNIT, generation) {
            bank.package.insert(
                a::MSR_RAPL_POWER_UNIT,
                crate::fields::encode_rapl_power_unit(3, 14, 10),
            );
        }
        bank
    }

    pub fn generation(&self) -> CpuGeneration {
        self.generation
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `rdmsr` from the given hardware thread.
    pub fn read(&self, thread: usize, addr: u32) -> Result<u64, MsrError> {
        if thread >= self.threads {
            return Err(MsrError::NoSuchThread(thread));
        }
        if !implemented(addr, self.generation) {
            return Err(MsrError::Unsupported(addr));
        }
        let v = match scope_of(addr) {
            MsrScope::Thread => self.per_thread[thread].get(&addr),
            MsrScope::Package => self.package.get(&addr),
        };
        Ok(v.copied().unwrap_or(0))
    }

    /// `wrmsr` from the given hardware thread.
    pub fn write(&mut self, thread: usize, addr: u32, value: u64) -> Result<(), MsrError> {
        if thread >= self.threads {
            return Err(MsrError::NoSuchThread(thread));
        }
        if !implemented(addr, self.generation) {
            return Err(MsrError::Unsupported(addr));
        }
        if !is_writable(addr) {
            return Err(MsrError::ReadOnly(addr));
        }
        self.store(thread, addr, value);
        Ok(())
    }

    /// Hardware-internal store (the PCU and simulator use this to update
    /// status registers and counters; not subject to the writability check).
    pub fn store(&mut self, thread: usize, addr: u32, value: u64) {
        match scope_of(addr) {
            MsrScope::Thread => {
                self.per_thread[thread].insert(addr, value);
            }
            MsrScope::Package => {
                self.package.insert(addr, value);
            }
        }
    }

    /// Hardware-internal package-scope store.
    pub fn store_package(&mut self, addr: u32, value: u64) {
        debug_assert_eq!(scope_of(addr), MsrScope::Package);
        self.package.insert(addr, value);
    }

    /// Accumulate a (possibly fractional) increment onto a monotone counter
    /// register. Fractions are carried as residue; the stored register value
    /// is always the integral part.
    pub fn accumulate(&mut self, thread: usize, addr: u32, delta: f64) {
        debug_assert!(delta >= 0.0, "counters are monotone");
        let key = match scope_of(addr) {
            MsrScope::Thread => (thread, addr),
            MsrScope::Package => (PKG_KEY, addr),
        };
        let r = self.residue.entry(key).or_insert(0.0);
        *r += delta;
        let whole = r.floor();
        if whole > 0.0 {
            *r -= whole;
            let map = match scope_of(addr) {
                MsrScope::Thread => &mut self.per_thread[thread],
                MsrScope::Package => &mut self.package,
            };
            let v = map.entry(addr).or_insert(0);
            *v = v.wrapping_add(whole as u64);
        }
    }

    /// Capture the bank's mutable state as plain data.
    pub fn snapshot(&self) -> MsrBankSnapshot {
        MsrBankSnapshot {
            package: self.package.clone(),
            per_thread: self.per_thread.clone(),
            residue: self.residue.clone(),
        }
    }

    /// Reinstate a previously captured state. The bank must have the same
    /// thread count it was snapshotted with.
    pub fn restore(&mut self, snap: &MsrBankSnapshot) {
        assert_eq!(
            self.threads,
            snap.per_thread.len(),
            "snapshot geometry mismatch"
        );
        self.package = snap.package.clone();
        self.per_thread = snap.per_thread.clone();
        self.residue = snap.residue.clone();
    }

    /// Read a register without a thread context (package scope only).
    pub fn read_package(&self, addr: u32) -> Result<u64, MsrError> {
        if !implemented(addr, self.generation) {
            return Err(MsrError::Unsupported(addr));
        }
        debug_assert_eq!(scope_of(addr), MsrScope::Package);
        Ok(self.package.get(&addr).copied().unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addresses::*;
    use proptest::prelude::*;

    fn hsw_bank() -> MsrBank {
        MsrBank::new(CpuGeneration::HaswellEp, 24)
    }

    #[test]
    fn bank_maps_iterate_in_ascending_address_order() {
        // Determinism regression: the bank's maps are BTreeMaps, so
        // iteration order is the address order no matter the store order.
        let mut b = hsw_bank();
        for addr in [
            MSR_PKG_ENERGY_STATUS,
            MSR_PKG_POWER_LIMIT,
            MSR_DRAM_ENERGY_STATUS,
        ] {
            b.store_package(addr, 1);
        }
        let pkg: Vec<u32> = b.package.keys().copied().collect();
        let mut sorted = pkg.clone();
        sorted.sort_unstable();
        assert_eq!(pkg, sorted);

        for addr in [MSR_CORE_C6_RESIDENCY, IA32_APERF, IA32_MPERF] {
            b.store(0, addr, 1);
        }
        let thr: Vec<u32> = b.per_thread[0].keys().copied().collect();
        let mut sorted = thr.clone();
        sorted.sort_unstable();
        assert_eq!(thr, sorted);
    }

    #[test]
    fn pp0_raises_gp_on_haswell_ep() {
        // Paper Section IV: "The power domain for core consumption (PP0) is
        // not supported on Haswell-EP."
        let bank = hsw_bank();
        assert_eq!(
            bank.read(0, MSR_PP0_ENERGY_STATUS),
            Err(MsrError::Unsupported(MSR_PP0_ENERGY_STATUS))
        );
    }

    #[test]
    fn pp0_exists_on_sandy_bridge() {
        let bank = MsrBank::new(CpuGeneration::SandyBridgeEp, 16);
        assert!(bank.read(0, MSR_PP0_ENERGY_STATUS).is_ok());
    }

    #[test]
    fn westmere_has_no_rapl_at_all() {
        let bank = MsrBank::new(CpuGeneration::WestmereEp, 12);
        for addr in [
            MSR_RAPL_POWER_UNIT,
            MSR_PKG_ENERGY_STATUS,
            MSR_DRAM_ENERGY_STATUS,
        ] {
            assert_eq!(bank.read(0, addr), Err(MsrError::Unsupported(addr)));
        }
    }

    #[test]
    fn energy_status_is_read_only() {
        let mut bank = hsw_bank();
        assert_eq!(
            bank.write(0, MSR_PKG_ENERGY_STATUS, 42),
            Err(MsrError::ReadOnly(MSR_PKG_ENERGY_STATUS))
        );
    }

    #[test]
    fn perf_ctl_is_per_thread() {
        let mut bank = hsw_bank();
        bank.write(3, IA32_PERF_CTL, 0x1900).unwrap();
        assert_eq!(bank.read(3, IA32_PERF_CTL).unwrap(), 0x1900);
        assert_eq!(bank.read(4, IA32_PERF_CTL).unwrap(), 0);
    }

    #[test]
    fn rapl_block_is_package_scoped() {
        let mut bank = hsw_bank();
        bank.accumulate(0, MSR_PKG_ENERGY_STATUS, 100.0);
        // Visible from every thread.
        assert_eq!(bank.read(0, MSR_PKG_ENERGY_STATUS).unwrap(), 100);
        assert_eq!(bank.read(23, MSR_PKG_ENERGY_STATUS).unwrap(), 100);
    }

    #[test]
    fn rapl_power_unit_has_haswell_reset_value() {
        let bank = hsw_bank();
        let v = bank.read(0, MSR_RAPL_POWER_UNIT).unwrap();
        assert_eq!(crate::fields::decode_energy_status_unit(v), 14);
    }

    #[test]
    fn uncore_ratio_limit_needs_independent_ufs() {
        let mut hsw = hsw_bank();
        assert!(hsw.write(0, MSR_UNCORE_RATIO_LIMIT, 0x0C1E).is_ok());
        let mut snb = MsrBank::new(CpuGeneration::SandyBridgeEp, 16);
        assert_eq!(
            snb.write(0, MSR_UNCORE_RATIO_LIMIT, 0x0C1E),
            Err(MsrError::Unsupported(MSR_UNCORE_RATIO_LIMIT))
        );
    }

    #[test]
    fn skylake_msr_map_follows_its_rapl_policy() {
        // 1905.12468: UNCORE_RATIO_LIMIT controls the mesh UFS; PP0 stays
        // absent on the server parts.
        let mut skx = MsrBank::new(CpuGeneration::SkylakeSp, 52);
        assert!(skx.write(0, MSR_UNCORE_RATIO_LIMIT, 0x0C18).is_ok());
        assert_eq!(
            skx.read(0, MSR_PP0_ENERGY_STATUS),
            Err(MsrError::Unsupported(MSR_PP0_ENERGY_STATUS))
        );
        assert!(skx.read(0, MSR_DRAM_ENERGY_STATUS).is_ok());
    }

    #[test]
    fn out_of_range_thread_is_rejected() {
        let bank = hsw_bank();
        assert_eq!(bank.read(24, IA32_APERF), Err(MsrError::NoSuchThread(24)));
    }

    #[test]
    fn snapshot_round_trips_registers_and_residue() {
        let mut bank = hsw_bank();
        bank.write(3, IA32_PERF_CTL, 0x1900).unwrap();
        bank.accumulate(5, IA32_APERF, 2.75); // leaves 0.75 residue
        bank.accumulate(0, MSR_PKG_ENERGY_STATUS, 100.5);
        let snap = bank.snapshot();

        let mut fresh = hsw_bank();
        fresh.restore(&snap);
        // Same visible state...
        assert_eq!(fresh.read(3, IA32_PERF_CTL).unwrap(), 0x1900);
        assert_eq!(fresh.read(5, IA32_APERF).unwrap(), 2);
        // ...and the same sub-count residue: one more 0.25 tips the counter.
        fresh.accumulate(5, IA32_APERF, 0.25);
        bank.accumulate(5, IA32_APERF, 0.25);
        assert_eq!(fresh.read(5, IA32_APERF).unwrap(), 3);
        assert_eq!(fresh.snapshot(), bank.snapshot());
    }

    #[test]
    fn fractional_accumulation_preserves_total() {
        let mut bank = hsw_bank();
        // 0.25 counts per step for 12 steps = 3 counts (exactly representable).
        for _ in 0..12 {
            bank.accumulate(5, IA32_APERF, 0.25);
        }
        let v = bank.read(5, IA32_APERF).unwrap();
        assert_eq!(v, 3, "residue must carry fractions, got {v}");
    }

    proptest! {
        #[test]
        fn prop_accumulate_never_loses_more_than_one_count(
            deltas in proptest::collection::vec(0.0f64..10.0, 1..100)
        ) {
            let mut bank = hsw_bank();
            let mut total = 0.0;
            for d in &deltas {
                bank.accumulate(0, IA32_MPERF, *d);
                total += *d;
            }
            let v = bank.read(0, IA32_MPERF).unwrap() as f64;
            prop_assert!(v <= total + 1e-9);
            prop_assert!(v >= total - 1.0);
        }

        #[test]
        fn prop_thread_scope_isolation(t1 in 0usize..24, t2 in 0usize..24, v in any::<u64>()) {
            prop_assume!(t1 != t2);
            let mut bank = hsw_bank();
            bank.store(t1, IA32_FIXED_CTR0_INST_RETIRED, v);
            prop_assert_eq!(bank.read(t2, IA32_FIXED_CTR0_INST_RETIRED).unwrap(), 0);
            prop_assert_eq!(bank.read(t1, IA32_FIXED_CTR0_INST_RETIRED).unwrap(), v);
        }
    }
}
