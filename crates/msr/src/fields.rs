//! Bitfield encode/decode helpers for the registers the tools manipulate.

use hsw_hwspec::{EpbClass, PState};

/// Encode a p-state request into `IA32_PERF_CTL` (ratio in bits 15:8).
pub fn encode_perf_ctl(pstate: PState) -> u64 {
    (pstate.0 as u64) << 8
}

/// Decode the requested ratio from `IA32_PERF_CTL`.
pub fn decode_perf_ctl(value: u64) -> PState {
    PState(((value >> 8) & 0xFF) as u8)
}

/// Encode the current ratio into `IA32_PERF_STATUS` (bits 15:8).
pub fn encode_perf_status(pstate: PState) -> u64 {
    (pstate.0 as u64) << 8
}

/// Decode the current ratio from `IA32_PERF_STATUS`.
pub fn decode_perf_status(value: u64) -> PState {
    PState(((value >> 8) & 0xFF) as u8)
}

/// Decode the 4-bit EPB field into its semantic class.
pub fn decode_epb(value: u64) -> EpbClass {
    EpbClass::from_raw((value & 0xF) as u8)
}

/// Encode an EPB class as its canonical raw value.
pub fn encode_epb(class: EpbClass) -> u64 {
    class.canonical_raw() as u64
}

/// Build `MSR_RAPL_POWER_UNIT`: power unit 1/2^pu W, energy status unit
/// 1/2^esu J, time unit 1/2^tu s.
pub fn encode_rapl_power_unit(pu: u8, esu: u8, tu: u8) -> u64 {
    (pu as u64 & 0xF) | ((esu as u64 & 0x1F) << 8) | ((tu as u64 & 0xF) << 16)
}

/// Energy status unit exponent from `MSR_RAPL_POWER_UNIT` (bits 12:8).
pub fn decode_energy_status_unit(value: u64) -> u8 {
    ((value >> 8) & 0x1F) as u8
}

/// Energy unit in joules derived from the ESU exponent.
pub fn energy_unit_joules(esu: u8) -> f64 {
    1.0 / (1u64 << esu) as f64
}

/// Encode the uncore ratio limit MSR: bits 6:0 max ratio, 14:8 min ratio.
pub fn encode_uncore_ratio_limit(min_ratio: u8, max_ratio: u8) -> u64 {
    (max_ratio as u64 & 0x7F) | ((min_ratio as u64 & 0x7F) << 8)
}

/// Decode the uncore ratio limit MSR → (min_ratio, max_ratio).
pub fn decode_uncore_ratio_limit(value: u64) -> (u8, u8) {
    (((value >> 8) & 0x7F) as u8, (value & 0x7F) as u8)
}

/// Encode `MSR_PKG_POWER_LIMIT` PL1: power in units of 1/2^pu W (bits 14:0),
/// enable bit 15, clamp bit 16.
pub fn encode_pkg_power_limit(watts: f64, power_unit_exp: u8, enable: bool) -> u64 {
    let units = (watts * (1u64 << power_unit_exp) as f64).round() as u64 & 0x7FFF;
    units | ((enable as u64) << 15) | (1 << 16)
}

/// Decode PL1 watts from `MSR_PKG_POWER_LIMIT`.
pub fn decode_pkg_power_limit(value: u64, power_unit_exp: u8) -> (f64, bool) {
    let units = value & 0x7FFF;
    let enabled = (value >> 15) & 1 == 1;
    (units as f64 / (1u64 << power_unit_exp) as f64, enabled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perf_ctl_round_trip() {
        for ratio in 12..=33u8 {
            let p = PState(ratio);
            assert_eq!(decode_perf_ctl(encode_perf_ctl(p)), p);
        }
    }

    #[test]
    fn haswell_rapl_units_decode() {
        // Standard Haswell-EP encoding: PU=3 (1/8 W), ESU=14 (61 µJ), TU=10.
        let v = encode_rapl_power_unit(3, 14, 10);
        assert_eq!(decode_energy_status_unit(v), 14);
        let uj = energy_unit_joules(14) * 1e6;
        assert!((uj - hsw_hwspec::calib::PKG_ENERGY_UNIT_UJ).abs() < 1e-9);
    }

    #[test]
    fn dram_fixed_unit_is_esu_16() {
        let uj = energy_unit_joules(16) * 1e6;
        assert!((uj - hsw_hwspec::calib::DRAM_ENERGY_UNIT_UJ).abs() < 1e-9);
    }

    #[test]
    fn uncore_ratio_limit_round_trip() {
        let v = encode_uncore_ratio_limit(12, 30);
        assert_eq!(decode_uncore_ratio_limit(v), (12, 30));
    }

    #[test]
    fn pkg_power_limit_round_trip() {
        let v = encode_pkg_power_limit(120.0, 3, true);
        let (w, en) = decode_pkg_power_limit(v, 3);
        assert!((w - 120.0).abs() < 0.125);
        assert!(en);
    }

    proptest! {
        #[test]
        fn prop_perf_ctl_only_uses_bits_15_8(ratio in 0u8..=255) {
            let v = encode_perf_ctl(PState(ratio));
            prop_assert_eq!(v & !0xFF00, 0);
            prop_assert_eq!(decode_perf_ctl(v), PState(ratio));
        }

        #[test]
        fn prop_epb_decode_matches_class_mapping(raw in 0u64..=15) {
            let class = decode_epb(raw);
            match raw {
                0 => prop_assert_eq!(class, EpbClass::Performance),
                1..=7 => prop_assert_eq!(class, EpbClass::Balanced),
                _ => prop_assert_eq!(class, EpbClass::EnergySaving),
            }
        }

        #[test]
        fn prop_uncore_ratio_round_trip(min in 0u8..=0x7F, max in 0u8..=0x7F) {
            prop_assert_eq!(
                decode_uncore_ratio_limit(encode_uncore_ratio_limit(min, max)),
                (min, max)
            );
        }

        #[test]
        fn prop_power_limit_round_trip(watts in 1.0f64..4000.0) {
            let (w, _) = decode_pkg_power_limit(encode_pkg_power_limit(watts, 3, true), 3);
            prop_assert!((w - watts).abs() <= 0.0626, "w={} watts={}", w, watts);
        }
    }
}
