//! MSR addresses (Intel SDM Vol. 4 numbering for Haswell-EP, CPUID 06_3F).

/// Time-stamp counter; increments at the nominal (invariant TSC) rate.
pub const IA32_TIME_STAMP_COUNTER: u32 = 0x10;

/// Actual-performance clock counter: counts core cycles at the *current*
/// frequency while in C0. Used together with MPERF to compute the effective
/// frequency.
pub const IA32_APERF: u32 = 0xE8;

/// Maximum-performance clock counter: counts at the nominal frequency while
/// in C0.
pub const IA32_MPERF: u32 = 0xE7;

/// P-state status: bits 15:8 hold the current bus ratio.
pub const IA32_PERF_STATUS: u32 = 0x198;

/// P-state control: software writes the target bus ratio to bits 15:8;
/// bit 32 engages turbo disengage on some parts (modeled as reserved here).
pub const IA32_PERF_CTL: u32 = 0x199;

/// Clock modulation (not used by the survey, present for completeness).
pub const IA32_CLOCK_MODULATION: u32 = 0x19A;

/// Thermal status of the core.
pub const IA32_THERM_STATUS: u32 = 0x19C;

/// Misc enable: bit 38 disables turbo globally.
pub const IA32_MISC_ENABLE: u32 = 0x1A0;
pub const MISC_ENABLE_TURBO_DISABLE_BIT: u64 = 1 << 38;

/// Performance and Energy Bias Hint, 4 bits (paper Section II-C).
pub const IA32_ENERGY_PERF_BIAS: u32 = 0x1B0;

/// Fixed-function counter 0: instructions retired (per hardware thread).
pub const IA32_FIXED_CTR0_INST_RETIRED: u32 = 0x309;

/// Fixed-function counter 1: core clock cycles unhalted (per thread, at
/// actual frequency). This is what `PERF_COUNT_HW_CPU_CYCLES` maps to.
pub const IA32_FIXED_CTR1_CPU_CLK_UNHALTED: u32 = 0x30A;

/// Fixed-function counter 2: reference clock cycles unhalted (TSC rate).
pub const IA32_FIXED_CTR2_REF_CYCLES: u32 = 0x30B;

/// RAPL unit register: bits 3:0 power unit, 12:8 energy status unit (ESU),
/// 19:16 time unit.
pub const MSR_RAPL_POWER_UNIT: u32 = 0x606;

/// Package power-limit control (PL1/PL2).
pub const MSR_PKG_POWER_LIMIT: u32 = 0x610;

/// Package energy status: 32-bit wrapping counter of energy units.
pub const MSR_PKG_ENERGY_STATUS: u32 = 0x611;

/// Package performance-limit status/log.
pub const MSR_PKG_PERF_STATUS: u32 = 0x613;

/// Package power info: TDP and min/max power.
pub const MSR_PKG_POWER_INFO: u32 = 0x614;

/// DRAM power limit.
pub const MSR_DRAM_POWER_LIMIT: u32 = 0x618;

/// DRAM energy status: 32-bit wrapping counter. On Haswell-EP the unit is a
/// fixed 15.3 µJ regardless of `MSR_RAPL_POWER_UNIT` (paper Section IV).
pub const MSR_DRAM_ENERGY_STATUS: u32 = 0x619;

/// DRAM performance (throttling) status.
pub const MSR_DRAM_PERF_STATUS: u32 = 0x61B;

/// PP0 (core domain) energy status — *not supported on Haswell-EP*
/// (paper Section IV); reads raise #GP in this model, matching the absence
/// of the domain.
pub const MSR_PP0_ENERGY_STATUS: u32 = 0x639;

/// Uncore ratio limit: bits 6:0 max ratio, 14:8 min ratio. The paper notes
/// the MSR number was not documented at the time (\[16\]); 0x620 is the
/// number later documented for Haswell-EP.
pub const MSR_UNCORE_RATIO_LIMIT: u32 = 0x620;

/// U-box fixed counter control (uncore PMU).
pub const MSR_U_PMON_UCLK_FIXED_CTL: u32 = 0x703;

/// U-box fixed counter: counts uncore clockticks — LIKWID's
/// `UNCORE_CLOCK:UBOXFIX` event (paper Section V-A, footnote 3).
pub const MSR_U_PMON_UCLK_FIXED_CTR: u32 = 0x704;

/// C-state residency counters (package scope).
pub const MSR_PKG_C2_RESIDENCY: u32 = 0x60D;
pub const MSR_PKG_C3_RESIDENCY: u32 = 0x3F8;
pub const MSR_PKG_C6_RESIDENCY: u32 = 0x3F9;

/// C-state residency counters (core scope).
pub const MSR_CORE_C3_RESIDENCY: u32 = 0x3FC;
pub const MSR_CORE_C6_RESIDENCY: u32 = 0x3FD;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rapl_block_is_contiguous_in_the_600s() {
        assert_eq!(MSR_RAPL_POWER_UNIT, 0x606);
        assert_eq!(MSR_PKG_POWER_LIMIT, 0x610);
        assert_eq!(MSR_PKG_ENERGY_STATUS, 0x611);
        assert_eq!(MSR_DRAM_ENERGY_STATUS, 0x619);
    }

    #[test]
    fn perf_ctl_and_status_match_sdm() {
        assert_eq!(IA32_PERF_STATUS, 0x198);
        assert_eq!(IA32_PERF_CTL, 0x199);
        assert_eq!(IA32_ENERGY_PERF_BIAS, 0x1B0);
    }
}
