//! An msr-safe-style access gate.
//!
//! Measurement tools on production systems do not get raw `/dev/cpu/*/msr`
//! access; they go through an allowlist (LLNL's msr-safe, or likwid's
//! accessDaemon) that confines reads and writes to the registers a tool
//! legitimately needs — exactly the register set this survey exercises.
//! The gate wraps a [`MsrBank`] and enforces a per-register read/write
//! policy, including *write masks* (e.g. only the EPB bits of
//! `IA32_ENERGY_PERF_BIAS` may change).

use std::collections::BTreeMap;

use crate::addresses as a;
use crate::device::{MsrBank, MsrError};

/// Permission for one register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Permission {
    pub read: bool,
    /// Bits a write may modify (0 = read-only through the gate).
    pub write_mask: u64,
}

impl Permission {
    pub const READ_ONLY: Permission = Permission {
        read: true,
        write_mask: 0,
    };

    pub fn read_write(mask: u64) -> Permission {
        Permission {
            read: true,
            write_mask: mask,
        }
    }
}

/// Denial reasons, distinct from the hardware's own #GP conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateError {
    /// The register is not on the allowlist at all.
    NotAllowed(u32),
    /// Reads allowed, but the attempted write touches masked-off bits.
    WriteDenied(u32),
    /// The underlying hardware faulted.
    Hardware(MsrError),
}

/// The allowlist: the registers the survey's tools need, with the same
/// policy msr-safe ships for them.
pub fn survey_allowlist() -> BTreeMap<u32, Permission> {
    let mut m = BTreeMap::new();
    // Counters and status: read-only.
    for addr in [
        a::IA32_TIME_STAMP_COUNTER,
        a::IA32_APERF,
        a::IA32_MPERF,
        a::IA32_PERF_STATUS,
        a::IA32_FIXED_CTR0_INST_RETIRED,
        a::IA32_FIXED_CTR1_CPU_CLK_UNHALTED,
        a::IA32_FIXED_CTR2_REF_CYCLES,
        a::MSR_RAPL_POWER_UNIT,
        a::MSR_PKG_ENERGY_STATUS,
        a::MSR_DRAM_ENERGY_STATUS,
        a::MSR_PKG_POWER_INFO,
        a::MSR_U_PMON_UCLK_FIXED_CTR,
        a::MSR_CORE_C3_RESIDENCY,
        a::MSR_CORE_C6_RESIDENCY,
        a::MSR_PKG_C3_RESIDENCY,
        a::MSR_PKG_C6_RESIDENCY,
    ] {
        m.insert(addr, Permission::READ_ONLY);
    }
    // Controls with confined write masks.
    m.insert(a::IA32_PERF_CTL, Permission::read_write(0xFF00)); // ratio bits
    m.insert(a::IA32_ENERGY_PERF_BIAS, Permission::read_write(0xF));
    m.insert(
        a::MSR_U_PMON_UCLK_FIXED_CTL,
        Permission::read_write(0x40_0000),
    );
    m
}

/// The gate itself.
pub struct MsrGate<'a> {
    bank: &'a mut MsrBank,
    allowlist: BTreeMap<u32, Permission>,
}

impl<'a> MsrGate<'a> {
    pub fn new(bank: &'a mut MsrBank, allowlist: BTreeMap<u32, Permission>) -> Self {
        MsrGate { bank, allowlist }
    }

    /// A gate with the survey's standard allowlist.
    pub fn survey(bank: &'a mut MsrBank) -> Self {
        Self::new(bank, survey_allowlist())
    }

    pub fn read(&self, thread: usize, addr: u32) -> Result<u64, GateError> {
        match self.allowlist.get(&addr) {
            Some(p) if p.read => self.bank.read(thread, addr).map_err(GateError::Hardware),
            _ => Err(GateError::NotAllowed(addr)),
        }
    }

    pub fn write(&mut self, thread: usize, addr: u32, value: u64) -> Result<(), GateError> {
        let p = self
            .allowlist
            .get(&addr)
            .copied()
            .ok_or(GateError::NotAllowed(addr))?;
        if p.write_mask == 0 {
            return Err(GateError::WriteDenied(addr));
        }
        let current = self.bank.read(thread, addr).map_err(GateError::Hardware)?;
        if (value ^ current) & !p.write_mask != 0 {
            return Err(GateError::WriteDenied(addr));
        }
        self.bank
            .write(
                thread,
                addr,
                (current & !p.write_mask) | (value & p.write_mask),
            )
            .map_err(GateError::Hardware)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::CpuGeneration;

    fn bank() -> MsrBank {
        MsrBank::new(CpuGeneration::HaswellEp, 24)
    }

    #[test]
    fn allowlist_iterates_in_ascending_address_order() {
        // Determinism regression: the allowlist is a BTreeMap, so any code
        // that iterates it (snapshots, audits) sees the address order, not
        // a per-process hash order.
        let keys: Vec<u32> = survey_allowlist().keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        assert!(keys.len() >= 16, "allowlist unexpectedly small: {keys:?}");
    }

    #[test]
    fn counters_read_but_never_write() {
        let mut b = bank();
        let mut gate = MsrGate::survey(&mut b);
        assert!(gate.read(0, a::IA32_APERF).is_ok());
        assert_eq!(
            gate.write(0, a::IA32_APERF, 1),
            Err(GateError::WriteDenied(a::IA32_APERF))
        );
        assert_eq!(
            gate.write(0, a::MSR_PKG_ENERGY_STATUS, 1),
            Err(GateError::WriteDenied(a::MSR_PKG_ENERGY_STATUS))
        );
    }

    #[test]
    fn unlisted_registers_are_invisible() {
        let mut b = bank();
        let gate = MsrGate::survey(&mut b);
        // PKG_POWER_LIMIT is root-only on real deployments — not listed.
        assert_eq!(
            gate.read(0, a::MSR_PKG_POWER_LIMIT),
            Err(GateError::NotAllowed(a::MSR_PKG_POWER_LIMIT))
        );
    }

    #[test]
    fn perf_ctl_writes_are_confined_to_the_ratio_field() {
        let mut b = bank();
        let mut gate = MsrGate::survey(&mut b);
        // Ratio bits pass.
        assert!(gate.write(0, a::IA32_PERF_CTL, 0x0D00).is_ok());
        assert_eq!(gate.read(0, a::IA32_PERF_CTL).unwrap(), 0x0D00);
        // A write touching reserved bits is rejected whole.
        assert_eq!(
            gate.write(0, a::IA32_PERF_CTL, 0x1_0000_0D00),
            Err(GateError::WriteDenied(a::IA32_PERF_CTL))
        );
    }

    #[test]
    fn epb_writes_touch_only_the_4_bit_field() {
        let mut b = bank();
        let mut gate = MsrGate::survey(&mut b);
        assert!(gate.write(0, a::IA32_ENERGY_PERF_BIAS, 0x6).is_ok());
        assert_eq!(gate.read(0, a::IA32_ENERGY_PERF_BIAS).unwrap(), 6);
        assert_eq!(
            gate.write(0, a::IA32_ENERGY_PERF_BIAS, 0x16),
            Err(GateError::WriteDenied(a::IA32_ENERGY_PERF_BIAS))
        );
    }

    #[test]
    fn hardware_faults_pass_through() {
        let mut b = MsrBank::new(CpuGeneration::WestmereEp, 12);
        let gate = MsrGate::survey(&mut b);
        // RAPL is allowlisted but Westmere hardware doesn't implement it.
        assert_eq!(
            gate.read(0, a::MSR_PKG_ENERGY_STATUS),
            Err(GateError::Hardware(MsrError::Unsupported(
                a::MSR_PKG_ENERGY_STATUS
            )))
        );
    }
}
