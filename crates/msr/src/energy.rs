//! RAPL energy counters: 32-bit wrapping accumulators of energy units.

/// A RAPL energy-status counter. Hardware exposes a 32-bit counter of
/// energy units; software must handle wraparound (every ~4.4 h at 60 W with
/// 61 µJ units). The accumulator keeps sub-unit residue so long simulations
/// do not lose energy to quantization.
#[derive(Debug, Clone)]
pub struct EnergyCounter {
    /// Energy per count in joules.
    unit_j: f64,
    /// Current raw counter value (32-bit wrapping).
    raw: u32,
    /// Accumulated energy not yet reflected in `raw` (0 ≤ residue < unit_j).
    residue_j: f64,
    /// Total energy in joules since construction (for internal checks only —
    /// real hardware does not expose this).
    total_j: f64,
}

impl EnergyCounter {
    pub fn new(unit_j: f64) -> Self {
        assert!(unit_j > 0.0, "energy unit must be positive");
        EnergyCounter {
            unit_j,
            raw: 0,
            residue_j: 0.0,
            total_j: 0.0,
        }
    }

    /// Add `joules` of consumed energy to the counter.
    pub fn add_joules(&mut self, joules: f64) {
        debug_assert!(joules >= 0.0, "energy cannot decrease");
        self.total_j += joules;
        self.residue_j += joules;
        let counts = (self.residue_j / self.unit_j).floor();
        if counts > 0.0 {
            self.residue_j -= counts * self.unit_j;
            self.raw = self.raw.wrapping_add(counts as u64 as u32);
        }
    }

    /// The raw 32-bit register value (what `rdmsr` returns in bits 31:0).
    pub fn raw(&self) -> u32 {
        self.raw
    }

    /// Energy per count in joules.
    pub fn unit_joules(&self) -> f64 {
        self.unit_j
    }

    /// Ground-truth accumulated joules (simulation-internal).
    pub fn total_joules(&self) -> f64 {
        self.total_j
    }

    /// Convert a raw-counter difference (with wraparound) into joules, the
    /// way measurement software does.
    pub fn delta_joules(&self, before: u32, after: u32) -> f64 {
        after.wrapping_sub(before) as f64 * self.unit_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn accumulates_without_losing_energy_to_quantization() {
        let mut c = EnergyCounter::new(61e-6);
        // 10,000 tiny additions of 10 µJ each → 0.1 J total.
        for _ in 0..10_000 {
            c.add_joules(10e-6);
        }
        let measured = c.raw() as f64 * c.unit_joules();
        assert!((measured - 0.1).abs() < 61e-6, "measured {measured}");
        assert!((c.total_joules() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn wraparound_delta_is_correct() {
        let mut c = EnergyCounter::new(1.0);
        // Force the counter near the wrap point.
        c.raw = u32::MAX - 5;
        let before = c.raw();
        c.add_joules(10.0);
        let d = c.delta_joules(before, c.raw());
        assert_eq!(d, 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_unit_is_rejected() {
        let _ = EnergyCounter::new(0.0);
    }

    #[test]
    fn single_add_spanning_multiple_wraps_keeps_mod_2_32_semantics() {
        // counts = 5·2^32 + 7 is exactly representable in f64 (< 2^53), so
        // `counts as u64 as u32` must land on exactly counts mod 2^32 = 7.
        // This is the hardware-faithful behavior: the 32-bit register wraps
        // five whole times and ends 7 counts past where it started.
        let mut c = EnergyCounter::new(1.0);
        c.add_joules(5.0 * 4_294_967_296.0 + 7.0);
        assert_eq!(c.raw(), 7);
    }

    #[test]
    fn delta_across_the_wrap_boundary() {
        let c = EnergyCounter::new(61e-6);
        // before near the top, after past the wrap: 10 counts consumed.
        let before = u32::MAX - 4;
        let after = 5u32;
        assert!((c.delta_joules(before, after) - 10.0 * 61e-6).abs() < 1e-12);
        // Degenerate full-period delta reads as zero — the documented
        // limitation of a 32-bit counter, not a bug to paper over.
        assert_eq!(c.delta_joules(42, 42), 0.0);
    }

    #[test]
    fn residue_survives_wraparound() {
        // Half-unit residue present before the wrap must still be there
        // after: wrapping affects `raw` only, never the fractional store.
        let unit = 2.0;
        let mut c = EnergyCounter::new(unit);
        c.raw = u32::MAX;
        c.add_joules(unit * 1.5); // one count (wraps MAX -> 0) + half-unit residue
        assert_eq!(c.raw(), 0);
        c.add_joules(unit * 0.5); // residue completes a second count
        assert_eq!(c.raw(), 1);
    }

    proptest! {
        #[test]
        fn prop_counter_tracks_total_within_one_unit(
            adds in proptest::collection::vec(0.0f64..0.5, 1..200),
            unit_uj in 1.0f64..100.0,
        ) {
            let unit = unit_uj * 1e-6;
            let mut c = EnergyCounter::new(unit);
            let mut total = 0.0;
            for a in adds {
                c.add_joules(a);
                total += a;
            }
            let measured = c.raw() as f64 * unit;
            prop_assert!((measured - total).abs() <= unit + 1e-9,
                "measured {} vs total {}", measured, total);
        }

        #[test]
        fn prop_delta_handles_any_wrap(before in any::<u32>(), steps in 0u32..1_000_000) {
            let c = EnergyCounter::new(15.3e-6);
            let after = before.wrapping_add(steps);
            let d = c.delta_joules(before, after);
            prop_assert!((d - steps as f64 * 15.3e-6).abs() < 1e-9);
        }

        #[test]
        fn prop_forked_counter_crosses_the_wrap_identically(
            start_back in 0u32..1000,
            residue_frac in 0.0f64..0.999,
            adds in proptest::collection::vec(1.0f64..3.0, 1..50),
        ) {
            // A warm-start fork clones the counter mid-flight. Park the
            // original just below the 2^32 boundary with sub-unit residue,
            // fork, feed both the same energy: raw value, wrap-aware delta,
            // residue, and ground-truth total must stay bit-identical —
            // the fractional store is part of the snapshot, not an
            // accumulator quirk that re-zeroes on restore.
            let unit = 61e-6;
            let mut unforked = EnergyCounter::new(unit);
            unforked.raw = u32::MAX - start_back;
            unforked.residue_j = residue_frac * unit;
            let before = unforked.raw();
            let mut fork = unforked.clone();
            for add in &adds {
                unforked.add_joules(*add);
                fork.add_joules(*add);
            }
            // ≥1 J ≈ 16k counts vs ≤1000 counts of headroom: always wraps.
            prop_assert!(unforked.raw() < before, "must cross the boundary");
            prop_assert_eq!(unforked.raw(), fork.raw());
            prop_assert_eq!(
                unforked.delta_joules(before, unforked.raw()).to_bits(),
                fork.delta_joules(before, fork.raw()).to_bits()
            );
            prop_assert_eq!(unforked.residue_j.to_bits(), fork.residue_j.to_bits());
            prop_assert_eq!(unforked.total_joules().to_bits(), fork.total_joules().to_bits());
        }

        #[test]
        fn prop_multi_wrap_adds_match_mod_2_32(
            start in any::<u32>(),
            whole_wraps in 0u64..64,
            extra in 0u64..1_000_000,
        ) {
            // An add worth whole_wraps·2^32 + extra counts must advance the
            // register by exactly extra (mod 2^32), whatever the start value.
            let counts = whole_wraps * (1u64 << 32) + extra;
            let mut c = EnergyCounter::new(1.0);
            c.raw = start;
            c.add_joules(counts as f64);
            prop_assert_eq!(c.raw(), start.wrapping_add(extra as u32));
        }
    }
}
