//! # hsw-msr — model-specific register file for the simulated node
//!
//! Implements the MSR surface that the paper's measurement tools touch:
//! `IA32_PERF_CTL`/`IA32_PERF_STATUS` (p-state request/status),
//! `IA32_ENERGY_PERF_BIAS` (EPB), the RAPL register block
//! (`MSR_RAPL_POWER_UNIT`, `MSR_PKG_ENERGY_STATUS`, `MSR_PKG_POWER_LIMIT`,
//! `MSR_DRAM_ENERGY_STATUS`), the `IA32_APERF`/`IA32_MPERF`/TSC clock
//! counters, fixed-function core counters, and the uncore U-box fixed
//! counter (`UNCORE_CLOCK:UBOXFIX` in LIKWID terms, paper Section V-A).
//!
//! The register file is a faithful software model: addresses, bit layouts
//! and read/write semantics (including `#GP` on unknown addresses and on
//! writes to read-only counters) match the Intel SDM, so the re-implemented
//! tools in `hsw-tools` interact with the simulated hardware the same way
//! `likwid`/`ftalat` interact with real hardware.

pub mod addresses;
pub mod device;
pub mod energy;
pub mod fields;
pub mod gate;

pub use device::{MsrBank, MsrBankSnapshot, MsrError, MsrScope};
pub use energy::EnergyCounter;
pub use gate::{GateError, MsrGate, Permission};
