//! Node configuration and CPU addressing.

use hsw_hwspec::NodeSpec;
use hsw_power::DramRaplMode;

use crate::engine::EngineMode;

/// Simulation configuration of a node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    pub spec: NodeSpec,
    /// BIOS DRAM RAPL mode (paper Section IV: only mode 1 is supported on
    /// Haswell-EP; mode 0 yields unspecified behavior).
    pub dram_rapl_mode: DramRaplMode,
    /// Energy-efficient turbo enabled (Table II: enabled).
    pub eet_enabled: bool,
    /// Simulation step in µs. 20 µs suffices for power/frequency work;
    /// latency experiments use 1 µs.
    pub tick_us: u64,
    /// Noise seed (all simulation noise is keyed to the instant, so a seed
    /// fully determines a run in either engine mode).
    pub seed: u64,
    /// Time-advance engine (see [`EngineMode`]); both modes produce
    /// bit-identical results, `Event` skips provably quiescent model work.
    pub engine: EngineMode,
}

impl NodeConfig {
    /// The paper's test system with default simulation settings.
    pub fn paper_default() -> Self {
        NodeConfig {
            spec: NodeSpec::paper_test_node(),
            dram_rapl_mode: DramRaplMode::Mode1,
            eet_enabled: true,
            tick_us: 20,
            seed: 0x4A57_0001,
            engine: EngineMode::default(),
        }
    }

    /// Fine-grained time resolution for transition-latency experiments.
    pub fn with_tick_us(mut self, tick_us: u64) -> Self {
        assert!(tick_us >= 1, "tick must be at least 1 µs");
        self.tick_us = tick_us;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_spec(mut self, spec: NodeSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn with_dram_mode(mut self, mode: DramRaplMode) -> Self {
        self.dram_rapl_mode = mode;
        self
    }

    pub fn with_eet(mut self, enabled: bool) -> Self {
        self.eet_enabled = enabled;
        self
    }

    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }
}

/// Addressing of one hardware thread: (socket, core, thread).
///
/// The flat numbering is socket-major, then core, then SMT sibling —
/// `cpu = socket·cores·tpc + core·tpc + thread`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpuId {
    pub socket: usize,
    pub core: usize,
    pub thread: usize,
}

impl CpuId {
    pub fn new(socket: usize, core: usize, thread: usize) -> Self {
        CpuId {
            socket,
            core,
            thread,
        }
    }

    /// Flat index given the SKU geometry.
    pub fn flat(&self, cores_per_socket: usize, threads_per_core: usize) -> usize {
        self.socket * cores_per_socket * threads_per_core
            + self.core * threads_per_core
            + self.thread
    }

    /// Inverse of [`CpuId::flat`].
    pub fn from_flat(flat: usize, cores_per_socket: usize, threads_per_core: usize) -> Self {
        let per_socket = cores_per_socket * threads_per_core;
        CpuId {
            socket: flat / per_socket,
            core: (flat % per_socket) / threads_per_core,
            thread: flat % threads_per_core,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_round_trip() {
        for socket in 0..2 {
            for core in 0..12 {
                for thread in 0..2 {
                    let id = CpuId::new(socket, core, thread);
                    assert_eq!(CpuId::from_flat(id.flat(12, 2), 12, 2), id);
                }
            }
        }
    }

    #[test]
    fn paper_default_matches_table2() {
        let cfg = NodeConfig::paper_default();
        assert_eq!(cfg.spec.sockets, 2);
        assert_eq!(cfg.spec.sku.cores, 12);
        assert!(cfg.eet_enabled);
        assert_eq!(cfg.dram_rapl_mode, DramRaplMode::Mode1);
    }

    #[test]
    #[should_panic]
    fn zero_tick_rejected() {
        let _ = NodeConfig::paper_default().with_tick_us(0);
    }
}
