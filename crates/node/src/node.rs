//! The node: two sockets, shared electrical path, and the OS/tool surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hsw_exec::WorkloadProfile;
use hsw_hwspec::clock::{domain, DomainNoise};
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;
use hsw_msr::{addresses as msra, MsrError};
use hsw_pcu::TransitionEvent;
use hsw_power::{Lmg450, NodePowerModel};

use crate::config::{CpuId, NodeConfig};
use crate::engine::{EngineMode, EngineStats};
use crate::socket::{Ns, PlaneMask, Socket, SocketSnapshot, SocketTick};

/// The simulated compute node (paper Table II).
pub struct Node {
    // snap:skip(configuration, supplied to Node::new by the forking caller)
    cfg: NodeConfig,
    time_ns: Ns,
    sockets: Vec<Socket>,
    // snap:skip(stateless map from RAPL power to AC power, rebuilt from spec)
    power_model: NodePowerModel,
    // snap:skip(seed-derived, samples are keyed by instant — rebuilt by Node::new)
    meter: Lmg450,
    last: Vec<SocketTick>,
    /// Event engine: whether the last full step proved every socket
    /// quiescent. Any mutator call clears it.
    all_quiet: bool,
    stats: EngineStats,
    /// Optional shared ledger credited with this node's simulated time on
    /// drop (the survey's simulated-time accounting).
    // snap:skip(host-side accounting handle, attached per node by the executor)
    time_ledger: Option<Arc<AtomicU64>>,
    /// Scratch: per-socket activity flags, reused across steps so the hot
    /// loop never allocates.
    // snap:skip(per-step scratch, rebuilt from socket state every step)
    actives: Vec<bool>,
}

/// Plain-data image of an entire [`Node`]'s mutable simulator state —
/// sockets (PCU, FIVR/MBVR, MSR bank, RAPL accumulators, c-state and
/// counter planes, thermal), the per-socket tick outputs, the engine's
/// quiescence flag and step statistics, and the simulation clock itself.
///
/// Restoring a snapshot into a freshly constructed node continues
/// bit-identically to the uninterrupted run because every noise stream is
/// keyed by (seed, domain, sim-time), never by step count: the snapshot
/// carries `time_ns`, the constructor re-derives the streams from the
/// (possibly different) seed, and all subsequent draws depend only on
/// *when* they happen.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    time_ns: Ns,
    sockets: Vec<SocketSnapshot>,
    last: Vec<SocketTick>,
    all_quiet: bool,
    stats: EngineStats,
}

impl Node {
    pub fn new(cfg: NodeConfig) -> Self {
        let meter = Lmg450::calibrated(DomainNoise::new(cfg.seed, domain::METER));
        let mut sockets = Vec::with_capacity(cfg.spec.sockets);
        for s in 0..cfg.spec.sockets {
            // Independent PCU phases per socket (paper Section VI-A).
            let phase = (s as Ns) * 237_000;
            sockets.push(Socket::new(
                s,
                cfg.spec.sku.clone(),
                cfg.spec.socket_power_mult.get(s).copied().unwrap_or(1.0),
                cfg.dram_rapl_mode,
                cfg.eet_enabled,
                phase,
                cfg.seed,
            ));
        }
        let power_model = NodePowerModel::new(cfg.spec.clone());
        let last = vec![SocketTick::default(); cfg.spec.sockets];
        Node {
            cfg,
            time_ns: 0,
            sockets,
            power_model,
            meter,
            last,
            all_quiet: false,
            stats: EngineStats::default(),
            time_ledger: None,
            actives: Vec::new(),
        }
    }

    /// Capture the entire simulator state as plain data (see
    /// [`NodeSnapshot`]).
    pub fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            time_ns: self.time_ns,
            sockets: self.sockets.iter().map(Socket::snapshot).collect(),
            last: self.last.clone(),
            all_quiet: self.all_quiet,
            stats: self.stats,
        }
    }

    /// Reinstate a previously captured state, including the simulation
    /// clock. The node must share the snapshotted geometry; its config,
    /// seed-derived noise streams and meter are kept as constructed — this
    /// is what lets a warm-start fork re-seed a restored node.
    pub fn restore(&mut self, snap: &NodeSnapshot) {
        assert_eq!(
            self.sockets.len(),
            snap.sockets.len(),
            "snapshot geometry mismatch"
        );
        self.time_ns = snap.time_ns;
        for (socket, s) in self.sockets.iter_mut().zip(&snap.sockets) {
            socket.restore(s);
        }
        self.last.clone_from(&snap.last);
        self.all_quiet = snap.all_quiet;
        self.stats = snap.stats;
    }

    /// Re-key every noise stream (meter, per-socket p-state and RAPL
    /// draws) to a new seed. Draws are keyed by (seed, domain, sim-time),
    /// so streams diverge only from the re-seed instant on; a no-op when
    /// the seed is unchanged.
    pub fn reseed(&mut self, seed: u64) {
        if self.cfg.seed == seed {
            return;
        }
        self.cfg.seed = seed;
        self.meter = Lmg450::calibrated(DomainNoise::new(seed, domain::METER));
        for s in &mut self.sockets {
            s.reseed(seed);
        }
    }

    /// Warm-start fork fast path: re-arm this node as a fork of `snap`
    /// under `seed`, copying back only the planes the node has dirtied
    /// since it last restored `snap`. Equivalent to `reseed(seed)` +
    /// `restore(snap)` — and bit-identical to it, which the randomized
    /// fork/restore tests pin down — but a scratch node that cycles
    /// against one warm image pays only for what its last point touched.
    pub fn fork_from(&mut self, snap: &NodeSnapshot, seed: u64) {
        assert_eq!(
            self.sockets.len(),
            snap.sockets.len(),
            "snapshot geometry mismatch"
        );
        self.reseed(seed);
        self.time_ns = snap.time_ns;
        self.last.clone_from(&snap.last);
        self.all_quiet = snap.all_quiet;
        self.stats = snap.stats;
        for (socket, s) in self.sockets.iter_mut().zip(&snap.sockets) {
            let dirty = socket.dirty_planes();
            socket.restore_planes(s, dirty);
        }
    }

    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    pub fn now_ns(&self) -> Ns {
        self.time_ns
    }

    pub fn now_s(&self) -> f64 {
        self.time_ns as f64 * 1e-9
    }

    pub fn sockets(&self) -> &[Socket] {
        &self.sockets
    }

    pub fn socket_mut(&mut self, s: usize) -> &mut Socket {
        // Raw access can mutate anything; keep the dirty tracking sound.
        self.sockets[s].mark_all_dirty();
        self.socket_planes_mut(s, PlaneMask::NONE)
    }

    /// Plane-scoped raw socket access: like [`Node::socket_mut`] but dirties
    /// only the declared `planes`, so a following [`Node::fork_from`] pays
    /// for what the caller actually touched instead of a full restore. The
    /// caller owns the declaration — see [`Socket::planes_mut`].
    pub fn socket_planes_mut(&mut self, s: usize, planes: PlaneMask) -> &mut Socket {
        self.all_quiet = false;
        self.sockets[s].planes_mut(planes)
    }

    /// Step counters of the time-advance engine.
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// Credit this node's total simulated time to `ledger` when it drops.
    pub fn set_time_ledger(&mut self, ledger: Arc<AtomicU64>) {
        self.time_ledger = Some(ledger);
    }

    // --- Workload and OS control surface ---

    /// Assign a workload to one hardware thread (`None` idles it).
    pub fn assign(&mut self, cpu: CpuId, w: Option<WorkloadProfile>) {
        self.all_quiet = false;
        self.sockets[cpu.socket].set_thread(cpu.core, cpu.thread, w);
    }

    /// Run `profile` on the first `cores` cores of a socket with
    /// `threads_per_core` threads each.
    pub fn run_on_socket(
        &mut self,
        socket: usize,
        profile: &WorkloadProfile,
        cores: usize,
        threads_per_core: usize,
    ) {
        self.all_quiet = false;
        let tpc = self.cfg.spec.sku.threads_per_core;
        for c in 0..self.cfg.spec.sku.cores {
            for t in 0..tpc {
                let w = (c < cores && t < threads_per_core).then(|| profile.clone());
                self.sockets[socket].set_thread(c, t, w);
            }
        }
    }

    /// Idle the whole node.
    pub fn idle_all(&mut self) {
        for s in 0..self.sockets.len() {
            self.run_on_socket(s, &WorkloadProfile::idle(), 0, 0);
        }
    }

    /// Set the frequency setting on every core of every socket (the
    /// cpufreq/userspace-governor equivalent).
    pub fn set_setting_all(&mut self, setting: FreqSetting) {
        self.all_quiet = false;
        let now = self.time_ns;
        for s in &mut self.sockets {
            for c in 0..s.spec().cores {
                s.set_core_setting(c, setting, now);
            }
        }
    }

    /// Set the frequency setting of one core.
    pub fn set_setting(&mut self, socket: usize, core: usize, setting: FreqSetting) {
        self.all_quiet = false;
        let now = self.time_ns;
        self.sockets[socket].set_core_setting(core, setting, now);
    }

    /// Program the EPB on all hardware threads (paper Section II-C).
    pub fn set_epb_all(&mut self, epb: EpbClass) {
        self.all_quiet = false;
        for s in &mut self.sockets {
            for t in 0..s.spec().hw_threads() {
                s.msr_mut()
                    .store(t, msra::IA32_ENERGY_PERF_BIAS, epb.canonical_raw() as u64);
            }
        }
    }

    /// Enable/disable turbo via `IA32_MISC_ENABLE\[38\]`.
    pub fn set_turbo(&mut self, enabled: bool) {
        self.all_quiet = false;
        for s in &mut self.sockets {
            let mut v = s.msr().read_package(msra::IA32_MISC_ENABLE).unwrap_or(0);
            if enabled {
                v &= !msra::MISC_ENABLE_TURBO_DISABLE_BIT;
            } else {
                v |= msra::MISC_ENABLE_TURBO_DISABLE_BIT;
            }
            s.msr_mut().store_package(msra::IA32_MISC_ENABLE, v);
        }
    }

    // --- MSR surface for the measurement tools ---

    pub fn rdmsr(&self, cpu: CpuId, addr: u32) -> Result<u64, MsrError> {
        let tpc = self.cfg.spec.sku.threads_per_core;
        self.sockets[cpu.socket]
            .msr()
            .read(cpu.core * tpc + cpu.thread, addr)
    }

    pub fn wrmsr(&mut self, cpu: CpuId, addr: u32, value: u64) -> Result<(), MsrError> {
        let tpc = self.cfg.spec.sku.threads_per_core;
        let thread = cpu.core * tpc + cpu.thread;
        let now = self.time_ns;
        let socket = &mut self.sockets[cpu.socket];
        socket.msr_mut().write(thread, addr, value)?;
        // Any successful write may steer the model (EPB, turbo disengage,
        // uncore limits, p-state requests) — drop back to full stepping
        // until the next full tick re-proves quiescence.
        self.all_quiet = false;
        if addr == msra::IA32_PERF_CTL {
            socket.perf_ctl_written(thread, value, now);
        }
        Ok(())
    }

    // --- Simulation ---

    /// Advance the simulation by `us` microseconds. Counters flush at the
    /// end of every advance, so MSR reads between advances always see
    /// current values (in either engine mode).
    pub fn advance_us(&mut self, us: u64) {
        let tick = self.cfg.tick_us.max(1);
        let mut remaining = us;
        while remaining > 0 {
            let step = tick.min(remaining);
            self.step(step * 1_000);
            remaining -= step;
        }
        for s in &mut self.sockets {
            s.flush_counters();
        }
    }

    /// Advance by seconds.
    pub fn advance_s(&mut self, s: f64) {
        self.advance_us((s * 1e6).round() as u64);
    }

    fn step(&mut self, dt: Ns) {
        let event = self.cfg.engine == EngineMode::Event;
        if event && self.all_quiet && !self.sockets.iter().any(|s| s.light_wake()) {
            // Every domain is provably steady: replay only the continuous
            // integrators. State evolves bit-identically to a full step.
            self.time_ns += dt;
            let now = self.time_ns;
            for (i, socket) in self.sockets.iter_mut().enumerate() {
                self.last[i] = socket.light_tick(now, dt);
            }
            self.stats.light_steps += 1;
            return;
        }
        self.time_ns += dt;
        let now = self.time_ns;
        let t_s = self.now_s();
        self.actives.clear();
        self.actives
            .extend(self.sockets.iter().map(|s| s.any_core_active()));
        // The fastest setting among active cores anywhere in the system
        // drives the passive socket's uncore (paper Table III).
        let fastest = self
            .sockets
            .iter()
            .filter(|s| s.any_core_active())
            .map(|s| {
                (0..s.spec().cores).map(|c| s.requested_setting(c)).fold(
                    FreqSetting::from_mhz(1200),
                    |a, b| match (a, b) {
                        (FreqSetting::Turbo, _) | (_, FreqSetting::Turbo) => FreqSetting::Turbo,
                        (FreqSetting::Fixed(x), FreqSetting::Fixed(y)) => {
                            FreqSetting::Fixed(x.max(y))
                        }
                    },
                )
            })
            .fold(None, |acc: Option<FreqSetting>, s| match (acc, s) {
                (None, s) => Some(s),
                (Some(FreqSetting::Turbo), _) | (_, FreqSetting::Turbo) => Some(FreqSetting::Turbo),
                (Some(FreqSetting::Fixed(a)), FreqSetting::Fixed(b)) => {
                    Some(FreqSetting::Fixed(a.max(b)))
                }
            });
        for (i, socket) in self.sockets.iter_mut().enumerate() {
            let other_active = self.actives.iter().enumerate().any(|(j, a)| j != i && *a);
            self.last[i] = socket.tick(now, dt, t_s, other_active, fastest, event);
        }
        self.stats.full_steps += 1;
        self.all_quiet = event && self.sockets.iter().all(|s| s.quiescent_now());
    }

    // --- Power ground truth and metering ---

    /// True total RAPL-domain power right now (packages + DRAM, W).
    pub fn true_rapl_power_w(&self) -> f64 {
        self.last.iter().map(|t| t.pkg_w + t.dram_w).sum()
    }

    /// True package power of one socket (W).
    pub fn true_pkg_power_w(&self, socket: usize) -> f64 {
        self.last[socket].pkg_w
    }

    /// True DRAM power of one socket (W).
    pub fn true_dram_power_w(&self, socket: usize) -> f64 {
        self.last[socket].dram_w
    }

    /// Current DRAM read bandwidth of one socket (GB/s).
    pub fn dram_bandwidth_gbs(&self, socket: usize) -> f64 {
        self.last[socket].dram_bw_gbs
    }

    /// True AC power of the node right now (W).
    pub fn true_ac_power_w(&self) -> f64 {
        self.power_model.ac_power_w(self.true_rapl_power_w())
    }

    /// Advance while sampling the LMG450 at its 20 Sa/s rate; returns the
    /// average AC reading over the window — the paper's measurement
    /// primitive (Section IV: 4 s constant-load averages).
    pub fn measure_ac_average(&mut self, duration_s: f64) -> f64 {
        let period_us = (self.meter.sample_period_s() * 1e6) as u64;
        let n = ((duration_s * 1e6) as u64 / period_us).max(1);
        let mut sum = 0.0;
        for _ in 0..n {
            self.advance_us(period_us);
            let truth = self.true_ac_power_w();
            sum += self.meter.sample(truth, self.time_ns);
        }
        sum / n as f64
    }

    /// Advance while recording per-sample AC readings (for max-window
    /// extraction in the Table V experiment).
    pub fn record_ac_trace(&mut self, duration_s: f64) -> Vec<f64> {
        let period_us = (self.meter.sample_period_s() * 1e6) as u64;
        let n = ((duration_s * 1e6) as u64 / period_us).max(1);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            self.advance_us(period_us);
            let truth = self.true_ac_power_w();
            out.push(self.meter.sample(truth, self.time_ns));
        }
        out
    }

    /// Drain p-state transition events of one socket.
    pub fn drain_transitions(&mut self, socket: usize) -> Vec<TransitionEvent> {
        self.sockets[socket].drain_transitions()
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        if let Some(ledger) = &self.time_ledger {
            ledger.fetch_add(self.time_ns, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::calib;
    use hsw_msr::fields;

    fn idle_node() -> Node {
        let mut node = Node::new(NodeConfig::paper_default());
        node.idle_all();
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.2); // settle
        node
    }

    #[test]
    fn idle_node_power_matches_table2() {
        // Table II: idle power 261.5 W (fans at maximum).
        let mut node = idle_node();
        let ac = node.measure_ac_average(2.0);
        assert!(
            (ac - calib::IDLE_NODE_POWER_W).abs() < 6.0,
            "idle AC = {ac:.1} W"
        );
    }

    #[test]
    fn idle_packages_reach_pc6_and_halt_uncore() {
        let node = idle_node();
        for s in node.sockets() {
            assert_eq!(s.package_cstate().name(), "PC6");
            assert_eq!(s.true_uncore_mhz(), 0.0, "uncore halted in PC6");
        }
    }

    #[test]
    fn single_active_core_blocks_remote_package_sleep() {
        // Paper Section V-A: deep package states "are not used when there is
        // still any core active in the system—even if this core is located
        // on the other processor."
        let mut node = idle_node();
        node.assign(
            CpuId::new(0, 0, 0),
            Some(hsw_exec::WorkloadProfile::busy_wait()),
        );
        node.advance_s(0.1);
        assert_eq!(node.sockets()[0].package_cstate().name(), "PC0");
        assert_eq!(node.sockets()[1].package_cstate().name(), "PC2");
        assert!(node.sockets()[1].true_uncore_mhz() > 0.0);
    }

    #[test]
    fn firestarter_pegs_both_sockets_at_tdp() {
        let mut node = Node::new(NodeConfig::paper_default());
        let fs = hsw_exec::WorkloadProfile::firestarter();
        for s in 0..2 {
            node.run_on_socket(s, &fs, 12, 2);
        }
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(1.0);
        for s in 0..2 {
            let p = node.true_pkg_power_w(s);
            assert!((p - 120.0).abs() < 3.0, "socket {s}: {p:.1} W");
        }
        // Measured core frequency in the Table IV band.
        let f0 = node.sockets()[0].true_core_mhz(0) / 1000.0;
        assert!((2.2..=2.4).contains(&f0), "core = {f0:.3} GHz");
    }

    #[test]
    fn firestarter_node_ac_power_matches_table5() {
        let mut node = Node::new(NodeConfig::paper_default());
        let fs = hsw_exec::WorkloadProfile::firestarter();
        for s in 0..2 {
            node.run_on_socket(s, &fs, 12, 1); // Table V: HT not active
        }
        node.set_setting_all(FreqSetting::from_mhz(2500));
        node.advance_s(0.5);
        let ac = node.measure_ac_average(2.0);
        assert!(
            (ac - calib::powercal::TABLE5_FIRESTARTER_W).abs() < 12.0,
            "FIRESTARTER AC = {ac:.1} W"
        );
    }

    #[test]
    fn perf_ctl_write_changes_frequency_with_latency() {
        let mut node = Node::new(NodeConfig::paper_default().with_tick_us(5));
        node.run_on_socket(0, &hsw_exec::WorkloadProfile::busy_wait(), 1, 1);
        node.set_setting(0, 0, FreqSetting::from_mhz(1200));
        node.advance_s(0.05);
        let cpu = CpuId::new(0, 0, 0);
        node.wrmsr(
            cpu,
            msra::IA32_PERF_CTL,
            fields::encode_perf_ctl(hsw_hwspec::PState::from_mhz(1300)),
        )
        .unwrap();
        node.advance_us(5_000);
        node.advance_us(600); // PCU tick granularity
        let events = node.drain_transitions(0);
        let ev = events
            .iter()
            .find(|e| e.to == hsw_hwspec::PState::from_mhz(1300))
            .expect("transition must complete");
        let lat = ev.latency_us();
        assert!(
            (21.0..=530.0).contains(&lat),
            "transition latency {lat} µs out of the Fig. 3 range"
        );
    }

    #[test]
    fn aperf_mperf_ratio_reflects_throttling() {
        let mut node = Node::new(NodeConfig::paper_default());
        let fs = hsw_exec::WorkloadProfile::firestarter();
        node.run_on_socket(0, &fs, 12, 2);
        node.set_setting_all(FreqSetting::from_mhz(2500));
        node.advance_s(0.5);
        let cpu = CpuId::new(0, 0, 0);
        let a0 = node.rdmsr(cpu, msra::IA32_APERF).unwrap();
        let m0 = node.rdmsr(cpu, msra::IA32_MPERF).unwrap();
        node.advance_s(1.0);
        let a1 = node.rdmsr(cpu, msra::IA32_APERF).unwrap();
        let m1 = node.rdmsr(cpu, msra::IA32_MPERF).unwrap();
        let eff_ghz = (a1 - a0) as f64 / (m1 - m0) as f64 * 2.5;
        assert!(
            (2.2..2.45).contains(&eff_ghz),
            "effective frequency {eff_ghz:.3} GHz must show TDP throttling"
        );
    }

    #[test]
    fn rapl_msr_tracks_true_energy() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &hsw_exec::WorkloadProfile::compute(), 12, 2);
        node.advance_s(0.2);
        let cpu = CpuId::new(0, 0, 0);
        let raw0 = node.rdmsr(cpu, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        node.advance_s(2.0);
        let raw1 = node.rdmsr(cpu, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        let joules = raw1.wrapping_sub(raw0) as f64 * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
        let watts = joules / 2.0;
        let truth = node.true_pkg_power_w(0);
        assert!(
            (watts - truth).abs() < truth * 0.03 + 1.0,
            "RAPL {watts:.1} W vs truth {truth:.1} W"
        );
    }

    #[test]
    fn uncore_counter_runs_at_uncore_clock() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &hsw_exec::WorkloadProfile::busy_wait(), 1, 1);
        node.set_setting_all(FreqSetting::from_mhz(2500));
        node.advance_s(0.5);
        let cpu = CpuId::new(0, 0, 0);
        let u0 = node.rdmsr(cpu, msra::MSR_U_PMON_UCLK_FIXED_CTR).unwrap();
        node.advance_s(1.0);
        let u1 = node.rdmsr(cpu, msra::MSR_U_PMON_UCLK_FIXED_CTR).unwrap();
        let ghz = (u1 - u0) as f64 / 1e9;
        // Table III: 2.2 GHz uncore at the 2.5 GHz setting.
        assert!((ghz - 2.2).abs() < 0.08, "uncore = {ghz:.3} GHz");
    }

    #[test]
    fn sinus_workload_modulates_power() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &hsw_exec::WorkloadProfile::sinus(), 12, 2);
        node.advance_s(0.3);
        let mut lo = f64::MAX;
        let mut hi: f64 = 0.0;
        for _ in 0..40 {
            node.advance_us(50_000);
            let p = node.true_pkg_power_w(0);
            lo = lo.min(p);
            hi = hi.max(p);
        }
        assert!(hi - lo > 15.0, "sinus swing {lo:.1}..{hi:.1} W too small");
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use hsw_exec::WorkloadProfile;

    /// Drive one node through a representative scenario: settle idle, run a
    /// fixed-frequency load, poke an MSR, then idle again.
    fn scenario(mut node: Node) -> Node {
        node.idle_all();
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.3);
        node.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
        node.set_setting_all(FreqSetting::from_mhz(2000));
        node.advance_s(0.4);
        node.set_epb_all(EpbClass::EnergySaving);
        node.advance_s(0.2);
        node.idle_all();
        node.advance_s(0.3);
        node
    }

    fn fingerprint(node: &mut Node) -> Vec<u64> {
        let mut out = Vec::new();
        for s in 0..2 {
            out.push(node.true_pkg_power_w(s).to_bits());
            out.push(node.true_dram_power_w(s).to_bits());
            out.push(node.sockets()[s].rapl().running_avg_pkg_w().to_bits());
            out.push(node.sockets()[s].die_temperature_c().to_bits());
            for addr in [
                msra::MSR_PKG_ENERGY_STATUS,
                msra::MSR_DRAM_ENERGY_STATUS,
                msra::MSR_U_PMON_UCLK_FIXED_CTR,
                msra::MSR_PKG_C6_RESIDENCY,
            ] {
                out.push(node.rdmsr(CpuId::new(s, 0, 0), addr).unwrap());
            }
            for addr in [
                msra::IA32_TIME_STAMP_COUNTER,
                msra::IA32_APERF,
                msra::IA32_MPERF,
                msra::IA32_FIXED_CTR0_INST_RETIRED,
                msra::MSR_CORE_C6_RESIDENCY,
                msra::IA32_THERM_STATUS,
            ] {
                out.push(node.rdmsr(CpuId::new(s, 3, 0), addr).unwrap());
            }
        }
        out.push(node.measure_ac_average(0.5).to_bits());
        out.push(node.now_ns());
        out
    }

    #[test]
    fn fixed_and_event_engines_are_bit_identical() {
        let mut fixed = scenario(Node::new(
            NodeConfig::paper_default().with_engine(EngineMode::Fixed),
        ));
        let mut event = scenario(Node::new(
            NodeConfig::paper_default().with_engine(EngineMode::Event),
        ));
        assert!(
            event.engine_stats().light_steps > 0,
            "event engine never took the light path"
        );
        assert_eq!(fingerprint(&mut fixed), fingerprint(&mut event));
    }

    #[test]
    fn event_engine_coalesces_idle_spans() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.idle_all();
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(2.0);
        let stats = node.engine_stats();
        assert!(
            stats.light_fraction() > 0.5,
            "idle node must step mostly lightly, got {:.2} ({} full / {} light)",
            stats.light_fraction(),
            stats.full_steps,
            stats.light_steps
        );
    }

    #[test]
    fn mutators_invalidate_quiescence() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.idle_all();
        node.advance_s(0.5);
        let full_before = node.engine_stats().full_steps;
        // A workload change must force at least one full step.
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        node.advance_us(40);
        assert!(node.engine_stats().full_steps > full_before);
    }

    #[test]
    fn snapshot_restore_continues_bit_identically() {
        // snapshot → restore into a fresh same-seed node → advance must
        // equal the uninterrupted advance, in both engine modes.
        for engine in [EngineMode::Fixed, EngineMode::Event] {
            let mut a = Node::new(NodeConfig::paper_default().with_engine(engine));
            a.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
            a.set_setting_all(FreqSetting::from_mhz(2000));
            a.advance_s(0.3);
            let snap = a.snapshot();

            let mut b = Node::new(NodeConfig::paper_default().with_engine(engine));
            b.restore(&snap);
            assert_eq!(b.now_ns(), a.now_ns());
            a.advance_s(0.4);
            b.advance_s(0.4);
            assert_eq!(
                fingerprint(&mut a),
                fingerprint(&mut b),
                "engine {engine:?}"
            );
        }
    }

    #[test]
    fn snapshot_fork_with_new_seed_diverges_only_in_noise() {
        // A fork that re-seeds keeps the captured state (counters, clock)
        // but draws its own noise stream from the fork instant on.
        let mut warm = Node::new(NodeConfig::paper_default());
        warm.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
        warm.advance_s(0.2);
        let snap = warm.snapshot();

        let mut fork = Node::new(NodeConfig::paper_default().with_seed(999));
        fork.restore(&snap);
        assert_eq!(fork.now_ns(), warm.now_ns());
        let a = warm.measure_ac_average(0.3);
        let b = fork.measure_ac_average(0.3);
        assert_ne!(a.to_bits(), b.to_bits(), "meter noise must re-key");
        assert!((a - b).abs() < 5.0, "same state, only noise differs");
    }

    #[test]
    fn snapshot_fork_carries_rapl_wrap_state_through_the_node() {
        // End-to-end wrap check for the warm-start fork path: a grossly
        // trimmed chip (gain 5000) meters hundreds of kW, so the 32-bit
        // package counter (61 µJ unit, ~262 kJ period) wraps within a
        // couple of simulated seconds. Fork via NodeSnapshot before the
        // wrap; the fork and the uninterrupted node must cross the 2^32
        // boundary at the same instant and read the same MSR delta.
        use hsw_hwspec::calib;
        let mut cfg = NodeConfig::paper_default();
        cfg.spec.sku.power.rapl_trim_gain = 5000.0;
        let mut unforked = Node::new(cfg.clone());
        unforked.run_on_socket(0, &WorkloadProfile::compute(), 12, 2);
        unforked.advance_s(0.3);
        let cpu = CpuId::new(0, 0, 0);
        let raw0 = unforked.rdmsr(cpu, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        let total0 = unforked.sockets()[0].rapl().pkg_total_joules();
        let snap = unforked.snapshot();

        let mut fork = Node::new(cfg);
        fork.restore(&snap);
        unforked.advance_s(2.0);
        fork.advance_s(2.0);

        let raw_a = unforked.rdmsr(cpu, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        let raw_b = fork.rdmsr(cpu, msra::MSR_PKG_ENERGY_STATUS).unwrap() as u32;
        assert_eq!(raw_a, raw_b, "fork diverged across the wrap");
        let total_a = unforked.sockets()[0].rapl().pkg_total_joules();
        let total_b = fork.sockets()[0].rapl().pkg_total_joules();
        assert_eq!(total_a.to_bits(), total_b.to_bits());

        // The run must actually have wrapped, and the wrap-aware MSR delta
        // must equal the metered energy modulo whole counter periods.
        let period_j = 4_294_967_296.0 * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
        let metered_j = total_a - total0;
        let wraps = (metered_j / period_j).floor();
        assert!(wraps >= 1.0, "no wrap: {metered_j:.0} J < {period_j:.0} J");
        let delta_j = raw_a.wrapping_sub(raw0) as f64 * calib::PKG_ENERGY_UNIT_UJ * 1e-6;
        assert!(
            (delta_j - (metered_j - wraps * period_j)).abs() < 1.0,
            "delta {delta_j:.1} J vs metered {metered_j:.1} J ({wraps} wraps)"
        );
    }

    #[test]
    fn time_ledger_credits_simulated_time_on_drop() {
        let ledger = Arc::new(AtomicU64::new(0));
        {
            let mut node = Node::new(NodeConfig::paper_default());
            node.set_time_ledger(ledger.clone());
            node.advance_s(0.25);
        }
        assert_eq!(ledger.load(Ordering::Relaxed), 250_000_000);
    }

    mod snapshot_props {
        use super::*;
        use hsw_msr::fields;
        use proptest::prelude::*;

        /// One random software-visible MSR write, kept within the encodings
        /// the tools themselves produce (the gate's writable surface).
        fn apply_write(node: &mut Node, socket: usize, core: usize, which: u8, v: u16) {
            let cpu = CpuId::new(socket, core, 0);
            let r = match which % 4 {
                0 => {
                    let p = hsw_hwspec::PState::from_mhz(1200 + u32::from(v % 14) * 100);
                    node.wrmsr(cpu, msra::IA32_PERF_CTL, fields::encode_perf_ctl(p))
                }
                1 => node.wrmsr(cpu, msra::IA32_ENERGY_PERF_BIAS, u64::from(v % 16)),
                2 => node.wrmsr(cpu, msra::IA32_CLOCK_MODULATION, u64::from(v % 32)),
                _ => {
                    let min = 12 + v % 8;
                    let max = min + v % 10;
                    node.wrmsr(
                        cpu,
                        msra::MSR_UNCORE_RATIO_LIMIT,
                        u64::from(min) | (u64::from(max) << 8),
                    )
                }
            };
            r.expect("writable MSR");
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[test]
            fn prop_round_trip_survives_random_gated_msr_writes(
                writes in proptest::collection::vec(
                    (0usize..2, 0usize..12, any::<u8>(), any::<u16>()),
                    1..10,
                ),
                event_engine in any::<bool>(),
            ) {
                let engine = if event_engine {
                    EngineMode::Event
                } else {
                    EngineMode::Fixed
                };
                let mut a = Node::new(NodeConfig::paper_default().with_engine(engine));
                a.run_on_socket(0, &WorkloadProfile::busy_wait(), 4, 1);
                a.advance_s(0.05);
                for (s, c, which, v) in &writes {
                    apply_write(&mut a, *s, *c, *which, *v);
                }
                a.advance_s(0.05);
                let snap = a.snapshot();

                let mut b = Node::new(NodeConfig::paper_default().with_engine(engine));
                b.restore(&snap);
                a.advance_s(0.15);
                b.advance_s(0.15);
                prop_assert_eq!(fingerprint(&mut a), fingerprint(&mut b));
            }
        }
    }

    mod dirty_fork_props {
        use super::*;
        use hsw_msr::fields;
        use proptest::prelude::*;

        fn warm_image() -> (NodeSnapshot, NodeConfig) {
            let cfg = NodeConfig::paper_default();
            let mut node = Node::new(cfg.clone());
            node.run_on_socket(0, &WorkloadProfile::compute(), 8, 1);
            node.set_setting_all(FreqSetting::from_mhz(2200));
            node.advance_s(0.2);
            (node.snapshot(), cfg)
        }

        /// One step of a randomized mutation program, spanning every
        /// dirty-marking choke point: workload plane, p-state requests,
        /// MSR stores, the transition log, and plain time advance.
        fn mutate(node: &mut Node, op: u8, v: u16) {
            match op % 6 {
                0 => node.set_setting_all(FreqSetting::from_mhz(1200 + u32::from(v % 14) * 100)),
                1 => node.run_on_socket(
                    usize::from(v % 2),
                    &WorkloadProfile::busy_wait(),
                    usize::from(v % 13),
                    1,
                ),
                2 => node.set_epb_all(if v.is_multiple_of(2) {
                    EpbClass::Performance
                } else {
                    EpbClass::EnergySaving
                }),
                3 => node.set_turbo(v.is_multiple_of(2)),
                4 => node.advance_us(500 + u64::from(v % 2000)),
                _ => {
                    let _ = node.drain_transitions(usize::from(v % 2));
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
            #[test]
            fn prop_dirty_plane_fork_equals_full_restore(
                programs in proptest::collection::vec(
                    proptest::collection::vec((any::<u8>(), any::<u16>()), 0..6),
                    1..4,
                ),
                seed_base in any::<u32>(),
            ) {
                // A scratch node cycling against one warm image with
                // dirty-plane forks must stay bit-identical to a fresh
                // node fully restoring the same image, whatever the
                // previous point mutated (including the fingerprint's own
                // measurement advance).
                let (snap, cfg) = warm_image();
                let mut scratch = Node::new(cfg.clone());
                scratch.restore(&snap);
                for (k, prog) in programs.iter().enumerate() {
                    let seed = u64::from(seed_base) + k as u64 + 1;
                    scratch.fork_from(&snap, seed);
                    let mut fresh = Node::new(cfg.clone().with_seed(seed));
                    fresh.restore(&snap);
                    for (op, v) in prog {
                        mutate(&mut scratch, *op, *v);
                        mutate(&mut fresh, *op, *v);
                    }
                    scratch.advance_s(0.05);
                    fresh.advance_s(0.05);
                    prop_assert_eq!(
                        fingerprint(&mut scratch),
                        fingerprint(&mut fresh),
                        "fork {k} diverged"
                    );
                }
            }
        }

        #[test]
        fn unmarked_mutation_breaks_dirty_fork_equivalence() {
            // Prove the dirty tracking is load-bearing: a mutation that
            // bypasses the marking choke points survives the fork and
            // makes the scratch node diverge from a true restore. (The
            // production surface cannot do this — `msr_mut_unmarked` is a
            // test-only escape hatch.)
            let (snap, cfg) = warm_image();
            let mut scratch = Node::new(cfg.clone());
            scratch.restore(&snap);
            scratch.sockets[0].msr_mut_unmarked().store(
                0,
                msra::IA32_ENERGY_PERF_BIAS,
                fields::encode_epb(EpbClass::Performance),
            );
            scratch.fork_from(&snap, 4242);
            let mut fresh = Node::new(cfg.with_seed(4242));
            fresh.restore(&snap);
            let cpu = CpuId::new(0, 0, 0);
            assert_ne!(
                scratch.rdmsr(cpu, msra::IA32_ENERGY_PERF_BIAS).unwrap(),
                fresh.rdmsr(cpu, msra::IA32_ENERGY_PERF_BIAS).unwrap(),
                "unmarked write should have leaked through the fork"
            );
            // Marking the plane (what every real mutator does) repairs it —
            // and the scoped accessor's MSR-only declaration is enough.
            scratch.sockets[0].planes_mut(PlaneMask::MSR);
            scratch.fork_from(&snap, 4243);
            fresh.reseed(4243);
            assert_eq!(
                fingerprint(&mut scratch),
                fingerprint(&mut fresh),
                "full-plane fork must reconverge"
            );
        }
    }
}

#[cfg(test)]
mod mbvr_tests {
    use super::*;
    use hsw_power::MbvrPowerState;

    #[test]
    fn mbvr_sheds_phases_at_idle_and_restores_under_load() {
        // Paper Section II-B: the MBVR's three power states are "activated
        // by the processor according to the estimated power consumption".
        let mut node = Node::new(NodeConfig::paper_default());
        node.idle_all();
        node.advance_s(0.3);
        assert_eq!(node.sockets()[0].mbvr_state(), MbvrPowerState::Ps2);

        let fs = hsw_exec::WorkloadProfile::firestarter();
        node.run_on_socket(0, &fs, 12, 2);
        node.advance_s(0.3);
        assert_eq!(node.sockets()[0].mbvr_state(), MbvrPowerState::Ps0);
        // The other socket stays idle and keeps its light-load state.
        assert_ne!(node.sockets()[1].mbvr_state(), MbvrPowerState::Ps0);
    }
}

#[cfg(test)]
mod pl2_tests {
    use super::*;
    use hsw_exec::WorkloadProfile;

    #[test]
    fn workload_onset_bursts_at_pl2_then_settles_to_pl1() {
        // Two-level RAPL: a fresh FIRESTARTER start may exceed TDP for a
        // short burst (PL2) until the running average catches up, then the
        // sustained limit clamps it to 120 W — the transient the paper's
        // steady-state medians deliberately exclude.
        let mut node = Node::new(NodeConfig::paper_default());
        node.idle_all();
        node.advance_s(0.3);
        let fs = WorkloadProfile::firestarter();
        node.run_on_socket(0, &fs, 12, 2);
        node.set_setting_all(hsw_hwspec::freq::FreqSetting::Turbo);
        // Within the first ~50 ms the package may run above TDP.
        node.advance_s(0.05);
        let burst = node.true_pkg_power_w(0);
        assert!(
            burst > 121.0,
            "expected a PL2 burst above TDP, got {burst:.1} W"
        );
        assert!(burst < 120.0 * 1.25, "burst {burst:.1} W beyond PL2");
        // After a second the limiter has clamped to the sustained budget.
        node.advance_s(1.0);
        let settled = node.true_pkg_power_w(0);
        assert!((settled - 120.0).abs() < 3.0, "settled at {settled:.1} W");
    }
}
