//! Timed workload scripts: declarative sequences of node actions, for
//! experiments whose point is *dynamics* (EET misprediction, DVFS during
//! phase changes) rather than steady state.

use hsw_exec::WorkloadProfile;
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::EpbClass;

use crate::config::CpuId;
use crate::node::Node;

/// One scripted action.
#[derive(Debug, Clone)]
pub enum Action {
    /// Run a profile on the first `cores` cores of `socket` with
    /// `threads_per_core` threads.
    Run {
        socket: usize,
        profile: WorkloadProfile,
        cores: usize,
        threads_per_core: usize,
    },
    /// Idle one socket.
    IdleSocket(usize),
    /// Assign one hardware thread.
    Assign(CpuId, Option<WorkloadProfile>),
    /// Set the frequency setting on all cores.
    SetSettingAll(FreqSetting),
    /// Program the EPB everywhere.
    SetEpbAll(EpbClass),
    /// Toggle turbo.
    SetTurbo(bool),
}

/// A script: actions at absolute times (seconds from playback start).
#[derive(Debug, Clone, Default)]
pub struct WorkloadScript {
    events: Vec<(f64, Action)>,
}

impl WorkloadScript {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an action at `t_s` seconds from playback start.
    pub fn at(mut self, t_s: f64, action: Action) -> Self {
        self.events.push((t_s, action));
        self
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Play the script on a node for `total_s` seconds, invoking `sample`
    /// every `sample_every_s` (after advancing to each sample point).
    pub fn play(
        mut self,
        node: &mut Node,
        total_s: f64,
        sample_every_s: f64,
        mut sample: impl FnMut(&mut Node),
    ) {
        self.events.sort_by(|a, b| a.0.total_cmp(&b.0));
        let t0 = node.now_s();
        let mut next_event = 0usize;
        let mut next_sample = t0 + sample_every_s;
        let end = t0 + total_s;
        while node.now_s() < end {
            // Fire due events.
            while next_event < self.events.len()
                && t0 + self.events[next_event].0 <= node.now_s() + 1e-9
            {
                apply(node, self.events[next_event].1.clone());
                next_event += 1;
            }
            // Advance to the next boundary (event, sample, or end).
            let mut target = end.min(next_sample);
            if next_event < self.events.len() {
                target = target.min(t0 + self.events[next_event].0);
            }
            let dt = (target - node.now_s()).max(1e-6);
            node.advance_s(dt);
            if node.now_s() + 1e-9 >= next_sample {
                sample(node);
                next_sample += sample_every_s;
            }
        }
    }
}

fn apply(node: &mut Node, action: Action) {
    match action {
        Action::Run {
            socket,
            profile,
            cores,
            threads_per_core,
        } => node.run_on_socket(socket, &profile, cores, threads_per_core),
        Action::IdleSocket(s) => node.run_on_socket(s, &WorkloadProfile::idle(), 0, 0),
        Action::Assign(cpu, w) => node.assign(cpu, w),
        Action::SetSettingAll(s) => node.set_setting_all(s),
        Action::SetEpbAll(e) => node.set_epb_all(e),
        Action::SetTurbo(t) => node.set_turbo(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;

    #[test]
    fn script_fires_actions_in_time_order() {
        let mut node = Node::new(NodeConfig::paper_default());
        let script = WorkloadScript::new()
            .at(
                0.2,
                Action::Run {
                    socket: 0,
                    profile: WorkloadProfile::compute(),
                    cores: 4,
                    threads_per_core: 1,
                },
            )
            .at(0.0, Action::SetSettingAll(FreqSetting::from_mhz(2000)));
        let mut samples = Vec::new();
        script.play(&mut node, 0.5, 0.1, |n| {
            samples.push((n.now_s(), n.true_pkg_power_w(0)));
        });
        assert_eq!(samples.len(), 5);
        // Power rises once the workload starts at t = 0.2 s.
        assert!(samples.last().unwrap().1 > samples.first().unwrap().1 + 5.0);
    }

    #[test]
    fn idle_action_quiesces_the_socket() {
        let mut node = Node::new(NodeConfig::paper_default());
        let script = WorkloadScript::new()
            .at(
                0.0,
                Action::Run {
                    socket: 0,
                    profile: WorkloadProfile::compute(),
                    cores: 12,
                    threads_per_core: 2,
                },
            )
            .at(0.3, Action::IdleSocket(0));
        let mut last = 0.0;
        script.play(&mut node, 0.6, 0.05, |n| last = n.true_pkg_power_w(0));
        assert!(last < 30.0, "socket should be near idle, got {last:.1} W");
    }

    #[test]
    fn sample_cadence_is_respected() {
        let mut node = Node::new(NodeConfig::paper_default());
        let mut times = Vec::new();
        WorkloadScript::new().play(&mut node, 0.35, 0.1, |n| times.push(n.now_s()));
        assert_eq!(times.len(), 3);
        assert!((times[1] - times[0] - 0.1).abs() < 1e-3);
    }
}
