//! Time-advance engine selection and statistics.
//!
//! Both engines subdivide time into the same `tick_us` micro-steps — the
//! Euler integrators (RAPL's limiter EMA, the thermal RC model) are
//! cadence-sensitive, so the step sequence itself is part of the
//! determinism contract. What differs is the *body* executed per step:
//!
//! * [`EngineMode::Fixed`] runs the full model every step — the original
//!   lockstep semantics, kept as an escape hatch and as the reference for
//!   the equivalence tests.
//! * [`EngineMode::Event`] asks each socket's clock domains whether they
//!   are provably quiescent; steady spans then run a cheap light-tick body
//!   that replays only the continuous integrators (bit-identically), and
//!   the engine drops back to full ticks around transitions, mutator
//!   calls, and limiter-bucket crossings.

use std::str::FromStr;

/// Which per-step body the simulator runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Full model every step (the pre-engine lockstep behavior).
    Fixed,
    /// Light-tick quiescent spans; provably identical results.
    #[default]
    Event,
}

impl EngineMode {
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineMode::Fixed => "fixed",
            EngineMode::Event => "event",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EngineMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fixed" => Ok(EngineMode::Fixed),
            "event" => Ok(EngineMode::Event),
            other => Err(format!("unknown engine mode '{other}' (fixed|event)")),
        }
    }
}

/// How many steps each body handled — the event engine's effectiveness is
/// `light_steps / (full_steps + light_steps)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub full_steps: u64,
    pub light_steps: u64,
}

impl EngineStats {
    /// Fraction of steps that took the light path.
    pub fn light_fraction(&self) -> f64 {
        let total = self.full_steps + self.light_steps;
        if total == 0 {
            0.0
        } else {
            self.light_steps as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_mode_round_trips_through_strings() {
        for mode in [EngineMode::Fixed, EngineMode::Event] {
            assert_eq!(mode.as_str().parse::<EngineMode>().unwrap(), mode);
        }
        assert!("adaptive".parse::<EngineMode>().is_err());
    }

    #[test]
    fn default_engine_is_event() {
        assert_eq!(EngineMode::default(), EngineMode::Event);
    }

    #[test]
    fn light_fraction_handles_zero_steps() {
        assert_eq!(EngineStats::default().light_fraction(), 0.0);
        let stats = EngineStats {
            full_steps: 1,
            light_steps: 3,
        };
        assert!((stats.light_fraction() - 0.75).abs() < 1e-12);
    }
}
