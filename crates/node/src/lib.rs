//! # hsw-node — the simulated dual-socket compute node
//!
//! Binds the substrates into the paper's test system (Table II): two
//! simulated Xeon E5-2680 v3 packages with per-socket PCU (p-state engine,
//! UFS, AVX licenses, EET, TDP limiter), MSR banks, RAPL engines, c-state
//! governor with cross-socket package-state coupling, the DRAM/bandwidth
//! model, and the node-level electrical path (PSU, fans, LMG450 meter).
//!
//! Time advances through a clock-domain engine (see [`engine`]): both
//! engine modes subdivide time into identical micro-steps, but the default
//! [`EngineMode::Event`] replaces the full model evaluation with a cheap
//! replay of the continuous integrators whenever every clock domain is
//! provably quiescent — bit-identical to [`EngineMode::Fixed`], typically
//! several times faster on steady-state experiments.
//!
//! Experiments wire nodes through the [`session`] layer: a [`Platform`]
//! describes the machine once, and [`SessionBuilder`] derives seeded,
//! resolution-classed sessions from it. Workloads are assigned per hardware
//! thread as [`hsw_exec::WorkloadProfile`]s; measurement tools interact
//! with the hardware through [`Node::rdmsr`]/[`Node::wrmsr`] exactly like
//! their real counterparts.

pub mod config;
pub mod engine;
pub mod node;
pub mod script;
pub mod session;
pub mod socket;
pub mod telemetry;

pub use config::{CpuId, NodeConfig};
pub use engine::{EngineMode, EngineStats};
pub use node::{Node, NodeSnapshot};
pub use script::{Action, WorkloadScript};
pub use session::{Platform, PlatformKind, Resolution, Session, SessionBuilder};
pub use socket::{PlaneMask, Socket, SocketSnapshot};
pub use telemetry::{Snapshot, Trace};
