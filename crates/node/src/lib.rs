//! # hsw-node — the simulated dual-socket compute node
//!
//! Binds the substrates into the paper's test system (Table II): two
//! simulated Xeon E5-2680 v3 packages with per-socket PCU (p-state engine,
//! UFS, AVX licenses, EET, TDP limiter), MSR banks, RAPL engines, c-state
//! governor with cross-socket package-state coupling, the DRAM/bandwidth
//! model, and the node-level electrical path (PSU, fans, LMG450 meter).
//!
//! The simulator advances in fixed ticks (configurable, default 20 µs,
//! 1 µs for latency experiments). Workloads are assigned per hardware
//! thread as [`hsw_exec::WorkloadProfile`]s; measurement tools interact
//! with the hardware through [`Node::rdmsr`]/[`Node::wrmsr`] exactly like
//! their real counterparts.

pub mod config;
pub mod node;
pub mod script;
pub mod socket;
pub mod telemetry;

pub use config::{CpuId, NodeConfig};
pub use node::Node;
pub use script::{Action, WorkloadScript};
pub use socket::Socket;
pub use telemetry::{Snapshot, Trace};
