//! One simulated processor package.
//!
//! The socket exposes two step paths. The **full tick** runs every model
//! stage — p-state engine, workload aggregation, AVX licenses, EET, the PCU
//! equilibrium solve, c-states, DRAM, power, thermal, RAPL and the counter
//! plane. The **light tick** is the event engine's fast path over a
//! provably quiescent interval: it replays only the continuous integrators
//! (RAPL, thermal, MBVR) and the periodic controllers whose outcome cannot
//! change (EET polls, AVX relax checks, the PCU timer), using cached
//! inputs. Because the light tick performs the *identical* floating-point
//! operations in the identical order, a quiet span stepped lightly ends in
//! bit-identical state to the same span stepped fully — the property the
//! `--engine fixed|event` equivalence tests pin down.

use hsw_cstates::{resolve_package_state, select_core_state, CoreCState, PkgCState};
use hsw_exec::{DutyCycle, WorkloadProfile};
use hsw_hwspec::clock::{domain, DomainNoise};
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::ClockDomain;
use hsw_hwspec::{EpbClass, PState, SkuSpec};
use hsw_msr::{addresses as msra, fields, MsrBank, MsrBankSnapshot};
use hsw_pcu::{
    AvxLicense, EetController, PStateEngine, PStateEngineSnapshot, PcuController, PcuGrant,
    PcuInputs, TransitionEvent,
};
use hsw_power::{
    dram_power_w, package_power_w, CoreElecState, DramRaplMode, Mbvr, MbvrPowerState, ModelBias,
    RaplEngine, ThermalParams, ThermalState,
};

/// Nanoseconds.
pub type Ns = u64;
const US: Ns = 1_000;

/// Per-tick result handed to the node for aggregation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTick {
    pub pkg_w: f64,
    pub dram_w: f64,
    pub dram_bw_gbs: f64,
}

/// Counting rates of the MSR counter plane. Between the full ticks that
/// change them the rates are constant, so elapsed time accumulates as a
/// pending span and flushes in one `rate × span` step. Both engine modes
/// flush at identical instants with identical spans — the MSR residue
/// arithmetic is order-sensitive, so this is what keeps counters
/// bit-identical across `--engine fixed|event`.
#[derive(Debug, Clone, PartialEq)]
struct CounterRates {
    uncore_ghz: f64,
    threads: Vec<ThreadRates>,
    core_cstates: Vec<CoreCState>,
    pkg_cstate: PkgCState,
}

#[derive(Debug, Clone, PartialEq)]
struct ThreadRates {
    c0: bool,
    fc_ghz: f64,
    /// `None` when no workload is assigned (the counter is never touched,
    /// matching the per-tick accumulation it replaces).
    instret_per_ns: Option<f64>,
}

/// Inputs and outputs of the last full tick, replayed by light ticks.
#[derive(Debug, Clone)]
struct QuietCache {
    tick: SocketTick,
    eet_input: f64,
    avx_input: Vec<bool>,
    bias: ModelBias,
    /// The limiter-average bucket hashed into the last PCU key; a light
    /// phase must end (wake) on the step where the live average leaves it.
    avg_bucket: u64,
    therm_readout: u64,
}

impl QuietCache {
    fn new(cores: usize) -> Self {
        QuietCache {
            tick: SocketTick::default(),
            eet_input: 0.0,
            avx_input: vec![false; cores],
            bias: ModelBias::NONE,
            avg_bucket: 0,
            therm_readout: 0,
        }
    }
}

/// One processor package with its PCU, MSRs, RAPL, and c-state machinery.
pub struct Socket {
    // snap:skip(identity constant, rebuilt by Socket::new)
    pub id: usize,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    spec: SkuSpec,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    power_mult: f64,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    eet_enabled: bool,
    pub msr: MsrBank,
    pstate: PStateEngine,
    eet: EetController,
    avx: Vec<AvxLicense>,
    rapl: RaplEngine,
    /// Requested frequency setting per core (the OS view).
    requested: Vec<FreqSetting>,
    /// Workload per hardware thread.
    threads: Vec<Option<WorkloadProfile>>,
    /// Current c-state per core.
    cstates: Vec<CoreCState>,
    pkg_cstate: PkgCState,
    /// Granted operating point (updated at the PCU cadence).
    grant: PcuGrant,
    next_pcu: Ns,
    /// Hash of the PCU inputs at the last solve (event-driven re-solve).
    last_pcu_key: u64,
    /// Effective core frequencies in MHz (ground truth).
    core_mhz: Vec<f64>,
    uncore_mhz: f64,
    thermal: ThermalState,
    mbvr: Mbvr,
    transition_log: Vec<TransitionEvent>,
    /// Keyed noise streams: draws are pure functions of the simulation
    /// instant, never of how many times the engine stepped.
    // snap:skip(seed-derived, keyed by instant not step count — rebuilt by Socket::new)
    noise_pstate: DomainNoise,
    // snap:skip(seed-derived, keyed by instant not step count — rebuilt by Socket::new)
    noise_rapl: DomainNoise,
    /// Whether the last full tick proved every domain steady (see
    /// [`Socket::light_tick`]).
    quiet: bool,
    cached: QuietCache,
    rates: Option<CounterRates>,
    pending_ns: Ns,
}

/// Plain-data image of a [`Socket`]'s mutable state. Identity and
/// configuration (`id`, `spec`, `power_mult`, `eet_enabled`) and the keyed
/// noise streams are re-established by the constructor; everything a tick
/// can change is captured here, including the event engine's quiescence
/// bookkeeping and the counter plane's pending span, so a restored socket
/// continues bit-identically under either engine mode.
#[derive(Debug, Clone)]
pub struct SocketSnapshot {
    msr: MsrBankSnapshot,
    pstate: PStateEngineSnapshot,
    eet: EetController,
    avx: Vec<AvxLicense>,
    rapl: RaplEngine,
    requested: Vec<FreqSetting>,
    threads: Vec<Option<WorkloadProfile>>,
    cstates: Vec<CoreCState>,
    pkg_cstate: PkgCState,
    grant: PcuGrant,
    next_pcu: Ns,
    last_pcu_key: u64,
    core_mhz: Vec<f64>,
    uncore_mhz: f64,
    thermal: ThermalState,
    mbvr: Mbvr,
    transition_log: Vec<TransitionEvent>,
    quiet: bool,
    cached: QuietCache,
    rates: Option<CounterRates>,
    pending_ns: Ns,
}

impl Socket {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        spec: SkuSpec,
        power_mult: f64,
        dram_mode: DramRaplMode,
        eet_enabled: bool,
        pcu_phase_ns: Ns,
        seed: u64,
    ) -> Self {
        let threads = spec.hw_threads();
        let cores = spec.cores;
        let base = PState::from_mhz(spec.freq.base_mhz);
        let mut msr = MsrBank::new(spec.generation, threads);
        // The firmware default EPB is balanced (paper Table II).
        for t in 0..threads {
            msr.store(
                t,
                msra::IA32_ENERGY_PERF_BIAS,
                fields::encode_epb(EpbClass::Balanced),
            );
            msr.store(t, msra::IA32_PERF_CTL, fields::encode_perf_ctl(base));
        }
        // Per-socket noise keys: golden-ratio mix so socket 0 and 1 draw
        // independent streams from the same node seed.
        let socket_seed = seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Socket {
            id,
            power_mult,
            eet_enabled,
            pstate: PStateEngine::new(spec.generation, cores, base, pcu_phase_ns),
            eet: EetController::new(eet_enabled),
            avx: vec![AvxLicense::for_generation(spec.generation); cores],
            rapl: RaplEngine::new(spec.generation, dram_mode)
                .with_unit_trim(spec.power.rapl_trim_gain),
            requested: vec![FreqSetting::Turbo; cores],
            threads: vec![None; threads],
            cstates: vec![CoreCState::C6; cores],
            pkg_cstate: PkgCState::PC6,
            grant: PcuGrant {
                core_mhz: spec.freq.min_mhz as f64,
                uncore_mhz: spec.freq.uncore_min_mhz as f64,
                power_w: 0.0,
                power_limited: false,
            },
            next_pcu: pcu_phase_ns,
            last_pcu_key: u64::MAX,
            core_mhz: vec![spec.freq.min_mhz as f64; cores],
            uncore_mhz: spec.freq.uncore_min_mhz as f64,
            thermal: ThermalState::new(ThermalParams::server_max_fans()),
            mbvr: Mbvr::for_generation(spec.generation),
            msr,
            noise_pstate: DomainNoise::new(socket_seed, domain::PSTATE),
            noise_rapl: DomainNoise::new(socket_seed, domain::RAPL),
            quiet: false,
            cached: QuietCache::new(cores),
            rates: None,
            pending_ns: 0,
            spec,
            transition_log: Vec::new(),
        }
    }

    pub fn spec(&self) -> &SkuSpec {
        &self.spec
    }

    /// The PCU's re-evaluation cadence, from the generation's firmware
    /// policy (500 µs on every surveyed part).
    fn pcu_period_ns(&self) -> Ns {
        self.spec.generation.policy().pstate().pcu_eval_period_us as Ns * US
    }

    /// Capture this socket's mutable state as plain data.
    pub fn snapshot(&self) -> SocketSnapshot {
        SocketSnapshot {
            msr: self.msr.snapshot(),
            pstate: self.pstate.snapshot(),
            eet: self.eet.clone(),
            avx: self.avx.clone(),
            rapl: self.rapl.clone(),
            requested: self.requested.clone(),
            threads: self.threads.clone(),
            cstates: self.cstates.clone(),
            pkg_cstate: self.pkg_cstate,
            grant: self.grant,
            next_pcu: self.next_pcu,
            last_pcu_key: self.last_pcu_key,
            core_mhz: self.core_mhz.clone(),
            uncore_mhz: self.uncore_mhz,
            thermal: self.thermal,
            mbvr: self.mbvr.clone(),
            transition_log: self.transition_log.clone(),
            quiet: self.quiet,
            cached: self.cached.clone(),
            rates: self.rates.clone(),
            pending_ns: self.pending_ns,
        }
    }

    /// Reinstate a previously captured state. The socket must have the
    /// geometry it was snapshotted with; its identity, spec and noise
    /// streams are left untouched (they are seed/config-derived).
    pub fn restore(&mut self, snap: &SocketSnapshot) {
        assert_eq!(self.avx.len(), snap.avx.len(), "snapshot geometry mismatch");
        self.msr.restore(&snap.msr);
        self.pstate.restore(&snap.pstate);
        self.eet = snap.eet.clone();
        self.avx.clone_from(&snap.avx);
        // Counters and limiter average are dynamic state; the chip's
        // metering trim is calibration and stays as constructed, so a
        // varied fleet chip restoring a golden snapshot keeps its own trim.
        self.rapl.restore_from(&snap.rapl);
        self.requested.clone_from(&snap.requested);
        self.threads.clone_from(&snap.threads);
        self.cstates.clone_from(&snap.cstates);
        self.pkg_cstate = snap.pkg_cstate;
        self.grant = snap.grant;
        self.next_pcu = snap.next_pcu;
        self.last_pcu_key = snap.last_pcu_key;
        self.core_mhz.clone_from(&snap.core_mhz);
        self.uncore_mhz = snap.uncore_mhz;
        self.thermal = snap.thermal;
        self.mbvr = snap.mbvr.clone();
        self.transition_log.clone_from(&snap.transition_log);
        self.quiet = snap.quiet;
        self.cached = snap.cached.clone();
        self.rates.clone_from(&snap.rates);
        self.pending_ns = snap.pending_ns;
    }

    /// Assign (or clear) a workload on a hardware thread.
    pub fn set_thread(&mut self, core: usize, thread: usize, w: Option<WorkloadProfile>) {
        let idx = core * self.spec.threads_per_core + thread;
        self.threads[idx] = w;
        self.quiet = false;
    }

    /// OS request: set the frequency setting of one core.
    pub fn set_core_setting(&mut self, core: usize, setting: FreqSetting, now: Ns) {
        self.quiet = false;
        self.requested[core] = setting;
        let target = match setting {
            FreqSetting::Fixed(p) => p,
            FreqSetting::Turbo => PState::from_mhz(self.spec.freq.base_mhz),
        };
        self.pstate.request(core, target, now);
        for t in 0..self.spec.threads_per_core {
            self.msr.store(
                core * self.spec.threads_per_core + t,
                msra::IA32_PERF_CTL,
                fields::encode_perf_ctl(target),
            );
        }
    }

    /// A `wrmsr` to `IA32_PERF_CTL` from a tool: translate into a p-state
    /// request (per-core domain on Haswell-EP).
    pub fn perf_ctl_written(&mut self, thread: usize, value: u64, now: Ns) {
        self.quiet = false;
        let core = thread / self.spec.threads_per_core;
        let target = fields::decode_perf_ctl(value);
        self.requested[core] = FreqSetting::Fixed(target);
        self.pstate.request(core, target, now);
    }

    /// EPB class currently programmed (core 0's thread 0 — the paper
    /// programs all cores alike).
    pub fn epb(&self) -> EpbClass {
        fields::decode_epb(self.msr.read(0, msra::IA32_ENERGY_PERF_BIAS).unwrap_or(0))
    }

    /// Whether turbo is enabled (inverted `IA32_MISC_ENABLE\[38\]`).
    pub fn turbo_enabled(&self) -> bool {
        let v = self.msr.read_package(msra::IA32_MISC_ENABLE).unwrap_or(0);
        v & msra::MISC_ENABLE_TURBO_DISABLE_BIT == 0
    }

    fn active_cores(&self) -> usize {
        (0..self.spec.cores).filter(|c| self.core_busy(*c)).count()
    }

    fn core_busy(&self, core: usize) -> bool {
        let tpc = self.spec.threads_per_core;
        (0..tpc).any(|t| self.threads[core * tpc + t].is_some())
    }

    fn core_smt(&self, core: usize) -> bool {
        let tpc = self.spec.threads_per_core;
        (0..tpc)
            .filter(|t| self.threads[core * tpc + t].is_some())
            .count()
            >= 2
    }

    /// The dominant profile across busy threads (first found) — used for
    /// socket-scope aggregates that have no per-core meaning (the modeled
    /// RAPL bias class).
    fn dominant_profile(&self) -> Option<&WorkloadProfile> {
        self.threads.iter().flatten().next()
    }

    /// The profile running on one core (its first busy thread).
    fn core_profile(&self, core: usize) -> Option<&WorkloadProfile> {
        let tpc = self.spec.threads_per_core;
        (0..tpc).find_map(|t| self.threads[core * tpc + t].as_ref())
    }

    /// The transition-engine-gated setting of one core: a fixed request
    /// only takes effect once the p-state engine has switched (the ~500 µs
    /// opportunity mechanism).
    fn gated_setting(&self, core: usize) -> FreqSetting {
        match self.requested[core] {
            FreqSetting::Turbo => FreqSetting::Turbo,
            FreqSetting::Fixed(_) => FreqSetting::Fixed(self.pstate.current(core)),
        }
    }

    /// The fastest (gated) setting among busy cores (Turbo dominates).
    fn fastest_setting(&self) -> FreqSetting {
        let mut best: Option<FreqSetting> = None;
        for c in 0..self.spec.cores {
            if !self.core_busy(c) {
                continue;
            }
            let s = self.gated_setting(c);
            best = Some(match (best, s) {
                (None, s) => s,
                (Some(FreqSetting::Turbo), _) | (_, FreqSetting::Turbo) => FreqSetting::Turbo,
                (Some(FreqSetting::Fixed(a)), FreqSetting::Fixed(b)) => {
                    FreqSetting::Fixed(a.max(b))
                }
            });
        }
        best.unwrap_or(FreqSetting::Fixed(PState::from_mhz(
            self.spec.freq.base_mhz,
        )))
    }

    /// Advance this socket by `dt` ending at `now` (the full model). With
    /// `track_quiescence` (the event engine), the tick additionally proves
    /// or refutes that subsequent steps may take the light path.
    pub fn tick(
        &mut self,
        now: Ns,
        dt: Ns,
        t_s: f64,
        other_socket_active: bool,
        fastest_setting_in_system: Option<FreqSetting>,
        track_quiescence: bool,
    ) -> SocketTick {
        let dt_s = dt as f64 * 1e-9;
        let spec = self.spec.clone();
        let tpc = spec.threads_per_core;

        // 1. P-state engine (transition latencies). Events append straight
        //    into the log — no per-tick intermediate Vec.
        self.pstate.tick(now, &self.noise_pstate);
        self.pstate.drain_events_into(&mut self.transition_log);

        // 2. Workload aggregation — heterogeneous per core: each core
        //    contributes its own profile's duty, activity, stalls and AVX
        //    stream; socket-scope aggregates are derived from those.
        let active = self.active_cores();
        let profile = self.dominant_profile().cloned();
        let mut duty_sum = 0.0;
        let mut activity_sum = 0.0;
        let mut stall = 0.0f64;
        let mut all_const_duty = true;
        let smt_any = (0..spec.cores).any(|c| self.core_smt(c));
        for c in 0..spec.cores {
            if let Some(p) = self.core_profile(c) {
                let d = p.duty.factor_at(t_s);
                duty_sum += d;
                activity_sum += p.activity(self.core_smt(c)) * d;
                // Stalls drive UFS up: the hungriest core dominates.
                stall = stall.max(p.stall_fraction);
                if !matches!(p.duty, DutyCycle::Constant) {
                    all_const_duty = false;
                }
            }
        }
        let duty = if active > 0 {
            duty_sum / active as f64
        } else {
            0.0
        };

        // 3. AVX licenses (per core, driven by its own instruction stream).
        for c in 0..spec.cores {
            let avx_stream = self.core_profile(c).map(|p| p.avx_heavy).unwrap_or(false);
            let busy = self.core_busy(c);
            self.cached.avx_input[c] = busy && avx_stream;
            self.avx[c].observe(busy && avx_stream, now);
        }
        let avx_level = (0..spec.cores)
            .filter(|c| self.core_busy(*c))
            .map(|c| self.avx[c].level())
            .max()
            .unwrap_or(0);

        // 4. EET (1 ms sporadic stall polling).
        let eet_input = stall * duty.min(1.0);
        self.eet.tick(now, eet_input);

        // 5. PCU equilibrium: re-solved at the 500 µs cadence (power drift)
        //    and immediately whenever an input changes — e.g. a p-state
        //    opportunity completing a transition.
        let setting = fastest_setting_in_system
            .filter(|_| active == 0)
            .unwrap_or_else(|| self.fastest_setting());
        let duty_bucket = (duty * 20.0).round() as u64;
        // Bucketed so the solver re-runs as the limiter's average migrates
        // (fine steps during bursts, none in steady state).
        let avg_bucket = (self.rapl.running_avg_pkg_w() / 2.0) as u64;
        let key = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            avg_bucket.hash(&mut h);
            setting.hash(&mut h);
            active.hash(&mut h);
            self.epb().hash(&mut h);
            self.turbo_enabled().hash(&mut h);
            avx_level.hash(&mut h);
            duty_bucket.hash(&mut h);
            ((self.eet.sampled_stall() * 100.0) as u64).hash(&mut h);
            h.finish()
        };
        let epb = self.epb();
        let eet_limit = if self.eet_enabled {
            self.eet
                .limit_mhz(&spec, epb, spec.freq.turbo_mhz(active.max(1)))
        } else {
            u32::MAX
        };
        let _ = smt_any;
        let activity = if active > 0 {
            activity_sum / active as f64
        } else {
            0.0
        };
        let inputs = PcuInputs {
            spec: &spec,
            socket_power_mult: self.power_mult,
            setting,
            epb,
            turbo_enabled: self.turbo_enabled(),
            active_cores: active,
            gated_idle_cores: (0..spec.cores)
                .filter(|c| !self.core_busy(*c) && self.cstates[*c].power_gated())
                .count(),
            activity,
            avx_level,
            stall_fraction: stall,
            eet_limit_mhz: eet_limit,
            avg_pkg_w: self.rapl.running_avg_pkg_w(),
        };
        if key != self.last_pcu_key || self.next_pcu <= now {
            self.last_pcu_key = key;
            self.next_pcu = now + self.pcu_period_ns();
            self.grant = PcuController::solve(&inputs);
            // Software-imposed uncore bounds (paper Section II-D: "it can
            // be specified via the MSR UNCORE_RATIO_LIMIT"): clamp the UFS
            // grant to the programmed window.
            if let Ok(v) = self.msr.read_package(msra::MSR_UNCORE_RATIO_LIMIT) {
                if v != 0 {
                    let (min_ratio, max_ratio) = fields::decode_uncore_ratio_limit(v);
                    let lo = (min_ratio as f64 * 100.0).max(spec.freq.uncore_min_mhz as f64);
                    let hi = (max_ratio as f64 * 100.0)
                        .min(spec.freq.uncore_max_mhz as f64)
                        .max(lo);
                    self.grant.uncore_mhz = self.grant.uncore_mhz.clamp(lo, hi);
                }
            }
        }

        // 6. Effective frequencies: the PCU grant, clamped per core by its
        //    own (transition-latency-gated) p-state for fixed settings.
        for c in 0..spec.cores {
            if !self.core_busy(c) {
                self.core_mhz[c] = spec.freq.min_mhz as f64;
                continue;
            }
            let own_cap = match self.requested[c] {
                FreqSetting::Turbo => f64::INFINITY,
                // EPB=performance keeps turbo active at the base-frequency
                // setting (paper Section II-C) — the fixed-p-state clamp
                // must not override the PCU's turbo grant in that case.
                FreqSetting::Fixed(p)
                    if p.mhz() == spec.freq.base_mhz
                        && self.epb() == EpbClass::Performance
                        && self.turbo_enabled() =>
                {
                    f64::INFINITY
                }
                FreqSetting::Fixed(_) => self.pstate.current(c).mhz() as f64,
            };
            self.core_mhz[c] = self.grant.core_mhz.min(own_cap);
        }

        // 7. C-states: busy cores in C0; idle cores deep-idle via the
        //    governor (long predicted idle); package state needs the whole
        //    system idle (paper Section V-A).
        for c in 0..spec.cores {
            self.cstates[c] = if self.core_busy(c) {
                CoreCState::C0
            } else {
                select_core_state(&spec.acpi, 1_000_000)
            };
        }
        self.pkg_cstate = resolve_package_state(&self.cstates, other_socket_active);
        let uncore_mhz = if self.pkg_cstate.uncore_halted() {
            0.0
        } else {
            self.grant.uncore_mhz
        };
        self.uncore_mhz = uncore_mhz;

        // 8. DRAM traffic: per-core demand summed across profiles, capped
        //    by the bandwidth model at the current clocks. Bandwidth-bound
        //    cores saturate the channels at ~8 cores (paper Fig. 8);
        //    compute-bound traffic scales with the number of busy cores.
        let sat = hsw_hwspec::calib::bandwidth::DRAM_SATURATION_CORES as f64;
        // Group busy cores by profile: `dram_gbs_full_socket` is the demand
        // of a fully loaded socket, so a group's demand saturates (at that
        // value) once it spans ~8 cores for bandwidth-bound profiles, and
        // scales linearly with cores otherwise.
        let mut groups: Vec<(&WorkloadProfile, usize, f64)> = Vec::new();
        for c in 0..spec.cores {
            if let Some(p) = self.core_profile(c) {
                let d = p.duty.factor_at(t_s);
                if let Some(g) = groups.iter_mut().find(|(gp, _, _)| gp.name == p.name) {
                    g.1 += 1;
                    g.2 += d;
                } else {
                    groups.push((p, 1, d));
                }
            }
        }
        let mut demand = 0.0;
        for (p, n, duty_total) in &groups {
            let avg_duty = duty_total / *n as f64;
            let scale = if p.stall_fraction > hsw_hwspec::calib::UFS_STALL_THRESHOLD {
                (*n as f64 / sat).min(1.0)
            } else {
                *n as f64 / spec.cores as f64
            };
            demand += p.dram_gbs_full_socket * scale * avg_duty;
        }
        let dram_bw = if active > 0 {
            let cap = hsw_memhier::dram_read_bandwidth_gbs(
                &spec,
                active,
                if smt_any { 2 } else { 1 },
                self.grant.core_mhz / 1000.0,
                (uncore_mhz / 1000.0).max(1.2),
            );
            demand.min(cap)
        } else {
            0.0
        };

        // 9. Power.
        let mut cores_elec = Vec::with_capacity(spec.cores);
        for c in 0..spec.cores {
            if self.core_busy(c) {
                let smt = self.core_smt(c);
                let act = self
                    .core_profile(c)
                    .map(|p| p.activity(smt) * p.duty.factor_at(t_s))
                    .unwrap_or(0.0)
                    * self.avx[c].throughput_factor().max(0.5);
                cores_elec.push(CoreElecState {
                    mhz: self.core_mhz[c].round() as u32,
                    activity: act,
                    license_level: self.avx[c].level(),
                    power_gated: false,
                });
            } else if self.cstates[c].power_gated() {
                cores_elec.push(CoreElecState::gated());
            } else {
                cores_elec.push(CoreElecState {
                    mhz: spec.freq.min_mhz,
                    activity: 0.0,
                    license_level: 0,
                    power_gated: false,
                });
            }
        }
        let pkg = package_power_w(
            &spec,
            self.power_mult,
            &cores_elec,
            uncore_mhz.round() as u32,
        );
        let mut pkg_w = pkg.total_w();
        // OS housekeeping: idle cores keep waking briefly (timer ticks), and
        // a nominally halted uncore still clocks part of the time — this is
        // what keeps the paper's idle node at 261.5 W AC (Table II).
        let idle_frac = (spec.cores - active) as f64 / spec.cores as f64;
        pkg_w += hsw_hwspec::calib::IDLE_PKG_HOUSEKEEPING_W * idle_frac;
        if self.pkg_cstate.uncore_halted() {
            let floor = spec.freq.uncore_min_mhz;
            let residual = package_power_w(&spec, self.power_mult, &[], floor).uncore_w;
            pkg_w += residual * hsw_hwspec::calib::IDLE_UNCORE_RESIDENCY;
        }
        let dram_w = dram_power_w(&spec, dram_bw);

        // 10. MBVR power state follows the estimated package draw
        //     (paper Section II-B) and thermal state integrates
        //     (observability: the test node's maximum fans keep TDP, not
        //     PROCHOT, the binding limit).
        self.mbvr.update_estimated_power(pkg_w);
        self.thermal.advance(dt_s, pkg_w);
        debug_assert!(!self.thermal.prochot(), "max-fan node must not PROCHOT");
        let readout = (96.0 - self.thermal.t_die_c).clamp(0.0, 127.0) as u64;
        self.cached.therm_readout = readout;
        for t in 0..spec.hw_threads() {
            self.msr.store(t, msra::IA32_THERM_STATUS, readout << 16);
        }

        // 11. RAPL (modeled bias on pre-Haswell generations). The error
        //     draw is keyed to the interval's end instant.
        let bias = profile
            .as_ref()
            .map(|p| ModelBias {
                gain: p.snb_rapl_bias.0,
                offset_w: p.snb_rapl_bias.1,
            })
            .unwrap_or(ModelBias::NONE);
        self.rapl
            .advance(dt_s, pkg_w, dram_w, bias, self.noise_rapl.symmetric(now, 0));

        // 12. Counter plane: refresh the rate set, flushing the pending
        //     span under the old rates first if anything changed.
        self.msr
            .store_package(msra::MSR_PKG_ENERGY_STATUS, self.rapl.pkg_raw() as u64);
        self.msr
            .store_package(msra::MSR_DRAM_ENERGY_STATUS, self.rapl.dram_raw() as u64);
        let fu_ghz = (uncore_mhz / 1000.0).max(0.1);
        let mut thread_rates = Vec::with_capacity(spec.hw_threads());
        for c in 0..spec.cores {
            let fc_ghz = self.core_mhz[c] / 1000.0;
            let c0 = self.cstates[c] == CoreCState::C0;
            for t in 0..tpc {
                let idx = c * tpc + t;
                let instret_per_ns = self.threads[idx].as_ref().map(|p| {
                    p.ipc(self.core_smt(c), fc_ghz, fu_ghz)
                        * self.avx[c].throughput_factor()
                        * fc_ghz
                        * duty.max(0.0)
                });
                thread_rates.push(ThreadRates {
                    c0,
                    fc_ghz,
                    instret_per_ns,
                });
                let ratio = PState((self.core_mhz[c] / 100.0).round() as u8);
                self.msr.store(
                    idx,
                    msra::IA32_PERF_STATUS,
                    fields::encode_perf_status(ratio),
                );
            }
        }
        let rates = CounterRates {
            uncore_ghz: uncore_mhz / 1000.0,
            threads: thread_rates,
            core_cstates: self.cstates.clone(),
            pkg_cstate: self.pkg_cstate,
        };
        if self.rates.as_ref() != Some(&rates) {
            self.flush_counters();
            self.rates = Some(rates);
        }
        self.pending_ns += dt;

        let out = SocketTick {
            pkg_w,
            dram_w,
            dram_bw_gbs: dram_bw,
        };

        // 13. Quiescence: the event engine may replace subsequent steps
        //     with light ticks only when every discrete domain is provably
        //     steady *and* the PCU solve is independent of the one input
        //     that keeps moving (the limiter's running average).
        self.cached.tick = out;
        self.cached.eet_input = eet_input;
        self.cached.bias = bias;
        self.cached.avg_bucket = avg_bucket;
        self.quiet = track_quiescence
            && all_const_duty
            && self.pstate.quiescent()
            && (0..spec.cores).all(|c| self.avx[c].stable_under(self.cached.avx_input[c]))
            && self.eet.sampled_stall().to_bits() == eet_input.to_bits()
            && PcuController::avg_insensitive(&inputs);

        out
    }

    /// Pre-step wake test: must the next step be a full tick even though
    /// the socket is quiet? The limiter's running average is the one input
    /// that keeps moving over a steady workload; the full tick re-solves
    /// when it crosses a 2 W hash bucket, so the step where that happens
    /// must run the full body (the fixed engine re-solves on exactly that
    /// step — the grant is unchanged by `avg_insensitive`, but the key
    /// bookkeeping must be replayed faithfully).
    pub fn light_wake(&self) -> bool {
        (self.rapl.running_avg_pkg_w() / 2.0) as u64 != self.cached.avg_bucket
    }

    /// Whether the last full tick proved this socket quiescent.
    pub fn quiescent_now(&self) -> bool {
        self.quiet
    }

    /// Quiescent step: replays only the continuous integrators (RAPL,
    /// thermal, MBVR) and the periodic controllers whose outcome is
    /// provably unchanged (EET poll, AVX relax, PCU timer), using the
    /// inputs cached by the last full tick. Floating-point operations and
    /// their order match the full tick exactly, so the state after a quiet
    /// span is bit-identical no matter which path stepped it.
    pub fn light_tick(&mut self, now: Ns, dt: Ns) -> SocketTick {
        debug_assert!(self.quiet, "light_tick on a non-quiescent socket");
        let dt_s = dt as f64 * 1e-9;
        for c in 0..self.spec.cores {
            let on = self.cached.avx_input[c];
            self.avx[c].observe(on, now);
        }
        self.eet.tick(now, self.cached.eet_input);
        if self.next_pcu <= now {
            // Inputs unchanged and the grant avg-independent: the periodic
            // re-solve would reproduce the same grant, so only the schedule
            // advances (mirroring the fixed engine's bookkeeping).
            self.next_pcu = now + self.pcu_period_ns();
        }
        let out = self.cached.tick;
        self.mbvr.update_estimated_power(out.pkg_w);
        self.thermal.advance(dt_s, out.pkg_w);
        debug_assert!(!self.thermal.prochot(), "max-fan node must not PROCHOT");
        let readout = (96.0 - self.thermal.t_die_c).clamp(0.0, 127.0) as u64;
        if readout != self.cached.therm_readout {
            self.cached.therm_readout = readout;
            for t in 0..self.spec.hw_threads() {
                self.msr.store(t, msra::IA32_THERM_STATUS, readout << 16);
            }
        }
        self.rapl.advance(
            dt_s,
            out.pkg_w,
            out.dram_w,
            self.cached.bias,
            self.noise_rapl.symmetric(now, 0),
        );
        self.pending_ns += dt;
        out
    }

    /// Apply the pending counter span under the current rates and refresh
    /// the energy-status mirrors. Called on rate changes and at the end of
    /// every `Node::advance_us`, so software reads between advances always
    /// see current counters.
    pub(crate) fn flush_counters(&mut self) {
        let span = std::mem::replace(&mut self.pending_ns, 0) as f64;
        let Some(rates) = self.rates.take() else {
            return;
        };
        if span > 0.0 {
            let nominal_ghz = self.spec.freq.base_mhz as f64 / 1000.0;
            let tpc = self.spec.threads_per_core;
            self.msr
                .accumulate(0, msra::MSR_U_PMON_UCLK_FIXED_CTR, rates.uncore_ghz * span);
            for (idx, t) in rates.threads.iter().enumerate() {
                self.msr
                    .accumulate(idx, msra::IA32_TIME_STAMP_COUNTER, nominal_ghz * span);
                if t.c0 {
                    self.msr.accumulate(idx, msra::IA32_APERF, t.fc_ghz * span);
                    self.msr
                        .accumulate(idx, msra::IA32_MPERF, nominal_ghz * span);
                    self.msr.accumulate(
                        idx,
                        msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED,
                        t.fc_ghz * span,
                    );
                    self.msr
                        .accumulate(idx, msra::IA32_FIXED_CTR2_REF_CYCLES, nominal_ghz * span);
                    if let Some(r) = t.instret_per_ns {
                        self.msr
                            .accumulate(idx, msra::IA32_FIXED_CTR0_INST_RETIRED, r * span);
                    }
                }
            }
            for (c, cs) in rates.core_cstates.iter().enumerate() {
                if *cs == CoreCState::C3 {
                    self.msr
                        .accumulate(c * tpc, msra::MSR_CORE_C3_RESIDENCY, nominal_ghz * span);
                }
                if *cs == CoreCState::C6 {
                    self.msr
                        .accumulate(c * tpc, msra::MSR_CORE_C6_RESIDENCY, nominal_ghz * span);
                }
            }
            if rates.pkg_cstate == PkgCState::PC3 {
                self.msr
                    .accumulate(0, msra::MSR_PKG_C3_RESIDENCY, nominal_ghz * span);
            }
            if rates.pkg_cstate == PkgCState::PC6 {
                self.msr
                    .accumulate(0, msra::MSR_PKG_C6_RESIDENCY, nominal_ghz * span);
            }
            self.msr
                .store_package(msra::MSR_PKG_ENERGY_STATUS, self.rapl.pkg_raw() as u64);
            self.msr
                .store_package(msra::MSR_DRAM_ENERGY_STATUS, self.rapl.dram_raw() as u64);
        }
        self.rates = Some(rates);
    }

    // --- Ground-truth accessors (simulation-internal; tests and traces) ---

    pub fn true_core_mhz(&self, core: usize) -> f64 {
        self.core_mhz[core]
    }

    pub fn true_uncore_mhz(&self) -> f64 {
        self.uncore_mhz
    }

    pub fn grant(&self) -> PcuGrant {
        self.grant
    }

    pub fn package_cstate(&self) -> PkgCState {
        self.pkg_cstate
    }

    pub fn core_cstate(&self, core: usize) -> CoreCState {
        self.cstates[core]
    }

    pub fn any_core_active(&self) -> bool {
        self.active_cores() > 0
    }

    pub fn requested_setting(&self, core: usize) -> FreqSetting {
        self.requested[core]
    }

    pub fn drain_transitions(&mut self) -> Vec<TransitionEvent> {
        std::mem::take(&mut self.transition_log)
    }

    pub fn rapl(&self) -> &RaplEngine {
        &self.rapl
    }

    /// Die temperature in °C (ground truth; software reads the digital
    /// readout in `IA32_THERM_STATUS`).
    pub fn die_temperature_c(&self) -> f64 {
        self.thermal.t_die_c
    }

    /// The mainboard VR's current power state (paper Section II-B).
    pub fn mbvr_state(&self) -> MbvrPowerState {
        self.mbvr.state()
    }
}
