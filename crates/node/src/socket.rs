//! One simulated processor package.
//!
//! The socket exposes two step paths. The **full tick** runs every model
//! stage — p-state engine, workload aggregation, AVX licenses, EET, the PCU
//! equilibrium solve, c-states, DRAM, power, thermal, RAPL and the counter
//! plane. The **light tick** is the event engine's fast path over a
//! provably quiescent interval: it replays only the continuous integrators
//! (RAPL, thermal, MBVR) and the periodic controllers whose outcome cannot
//! change (EET polls, AVX relax checks, the PCU timer), using cached
//! inputs. Because the light tick performs the *identical* floating-point
//! operations in the identical order, a quiet span stepped lightly ends in
//! bit-identical state to the same span stepped fully — the property the
//! `--engine fixed|event` equivalence tests pin down.
//!
//! ## Dirty planes and the SoA core plane
//!
//! Snapshot state is partitioned into **planes** ([`PlaneMask`]): the MSR
//! bank, the p-state/PCU engine, RAPL, the per-core SoA plane
//! ([`CorePlanes`]), the counter plane, thermal/VR, the transition log and
//! the workload plane. Every mutation choke point marks the planes it
//! touches in a bitmask, and [`Socket::restore_planes`] copies back only
//! the marked planes — the warm-start fork fast path
//! (`Node::fork_from`) rides on this to re-arm a scratch node in a small
//! fraction of a full restore. Correctness is anchored two ways: the
//! randomized fork/restore equivalence tests in `node.rs`, and the
//! hsw-lint M4 rule, which flattens the plane images and verifies every
//! socket field is still captured somewhere in the snapshot.

use std::sync::Arc;

use hsw_cstates::{fill_core_states, resolve_package_state, CoreCState, PkgCState};
use hsw_exec::{DutyCycle, WorkloadProfile};
use hsw_hwspec::clock::{domain, DomainNoise};
use hsw_hwspec::freq::FreqSetting;
use hsw_hwspec::ClockDomain;
use hsw_hwspec::{EpbClass, PState, SkuSpec};
use hsw_msr::{addresses as msra, fields, MsrBank, MsrBankSnapshot, MsrError};
use hsw_pcu::{
    AvxLicense, EetController, PStateEngine, PStateEngineSnapshot, PcuController, PcuGrant,
    PcuInputs, TransitionEvent, TransitionLog,
};
use hsw_power::{
    dram_power_w, package_power_w, CoreElecState, DramRaplMode, Mbvr, MbvrPowerState, ModelBias,
    RaplEngine, ThermalParams, ThermalState,
};

/// Nanoseconds.
pub type Ns = u64;
const US: Ns = 1_000;

/// A set of snapshot planes — the unit of dirty tracking and partial
/// restore. A plane groups fields that the same mutation choke points
/// touch, so the mask stays honest with a handful of `|=` sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneMask(u16);

impl PlaneMask {
    pub const NONE: PlaneMask = PlaneMask(0);
    /// The MSR bank (per-thread and package registers, counters included).
    pub const MSR: PlaneMask = PlaneMask(1 << 0);
    /// P-state engine, EET, the PCU grant/schedule and the uncore clock.
    pub const PSTATE: PlaneMask = PlaneMask(1 << 1);
    /// RAPL accumulators and the limiter's running average.
    pub const RAPL: PlaneMask = PlaneMask(1 << 2);
    /// The per-core SoA plane: requested settings, effective MHz,
    /// c-states, AVX licenses and their cached inputs.
    pub const CORES: PlaneMask = PlaneMask(1 << 3);
    /// Counter-plane bookkeeping: package c-state, rate set, pending span.
    pub const COUNTER: PlaneMask = PlaneMask(1 << 4);
    /// Thermal integrator and the mainboard VR state machine.
    pub const THERMAL: PlaneMask = PlaneMask(1 << 5);
    /// The bounded p-state transition log.
    pub const LOG: PlaneMask = PlaneMask(1 << 6);
    /// Workload assignments and the quiescence cache.
    pub const WORK: PlaneMask = PlaneMask(1 << 7);
    pub const ALL: PlaneMask = PlaneMask(0xFF);

    pub const fn union(self, other: PlaneMask) -> PlaneMask {
        PlaneMask(self.0 | other.0)
    }

    pub fn contains(self, other: PlaneMask) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn intersects(self, other: PlaneMask) -> bool {
        self.0 & other.0 != 0
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn bits(self) -> u16 {
        self.0
    }
}

impl std::ops::BitOr for PlaneMask {
    type Output = PlaneMask;
    fn bitor(self, rhs: PlaneMask) -> PlaneMask {
        self.union(rhs)
    }
}

impl std::ops::BitOrAssign for PlaneMask {
    fn bitor_assign(&mut self, rhs: PlaneMask) {
        self.0 |= rhs.0;
    }
}

/// Planes a full tick always touches (the transition log is added only
/// when an event actually lands).
const TICK_PLANES: PlaneMask = PlaneMask::MSR
    .union(PlaneMask::PSTATE)
    .union(PlaneMask::RAPL)
    .union(PlaneMask::CORES)
    .union(PlaneMask::COUNTER)
    .union(PlaneMask::THERMAL)
    .union(PlaneMask::WORK);

/// Planes a light tick touches (the MSR bank is added only when the
/// thermal readout crosses a digitization step).
const LIGHT_TICK_PLANES: PlaneMask = PlaneMask::PSTATE
    .union(PlaneMask::RAPL)
    .union(PlaneMask::CORES)
    .union(PlaneMask::COUNTER)
    .union(PlaneMask::THERMAL)
    .union(PlaneMask::WORK);

/// Per-tick result handed to the node for aggregation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SocketTick {
    pub pkg_w: f64,
    pub dram_w: f64,
    pub dram_bw_gbs: f64,
}

/// Counting rates of the MSR counter plane. Between the full ticks that
/// change them the rates are constant, so elapsed time accumulates as a
/// pending span and flushes in one `rate × span` step. Both engine modes
/// flush at identical instants with identical spans — the MSR residue
/// arithmetic is order-sensitive, so this is what keeps counters
/// bit-identical across `--engine fixed|event`.
#[derive(Debug, Clone, PartialEq)]
struct CounterRates {
    uncore_ghz: f64,
    threads: Vec<ThreadRates>,
    core_cstates: Vec<CoreCState>,
    pkg_cstate: PkgCState,
}

impl CounterRates {
    fn empty() -> Self {
        CounterRates {
            uncore_ghz: 0.0,
            threads: Vec::new(),
            core_cstates: Vec::new(),
            pkg_cstate: PkgCState::PC6,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct ThreadRates {
    c0: bool,
    fc_ghz: f64,
    /// `None` when no workload is assigned (the counter is never touched,
    /// matching the per-tick accumulation it replaces).
    instret_per_ns: Option<f64>,
}

/// Inputs and outputs of the last full tick, replayed by light ticks.
#[derive(Debug, Clone)]
struct QuietCache {
    tick: SocketTick,
    eet_input: f64,
    bias: ModelBias,
    /// The limiter-average bucket hashed into the last PCU key; a light
    /// phase must end (wake) on the step where the live average leaves it.
    avg_bucket: u64,
    therm_readout: u64,
}

impl QuietCache {
    fn new() -> Self {
        QuietCache {
            tick: SocketTick::default(),
            eet_input: 0.0,
            bias: ModelBias::NONE,
            avg_bucket: 0,
            therm_readout: 0,
        }
    }
}

/// The per-core hot state as a structure of arrays: `Socket::tick`'s
/// per-core stages walk these as contiguous slices instead of chasing one
/// struct per core. `busy`/`smt`/`lead` are caches derived from the
/// thread-indexed workload table, maintained at assignment time
/// ([`CorePlanes::sync_core`]) so the hot loops never re-scan the threads
/// of a core.
#[derive(Debug)]
pub struct CorePlanes {
    /// Requested frequency setting per core (the OS view).
    requested: Vec<FreqSetting>,
    /// Effective core frequency in MHz (ground truth).
    mhz: Vec<f64>,
    /// Current c-state per core.
    cstates: Vec<CoreCState>,
    /// AVX license state machine per core.
    avx: Vec<AvxLicense>,
    /// The AVX stream input observed by the last full tick (the light
    /// tick's replay input).
    avx_input: Vec<bool>,
    /// Whether any thread of the core has a workload.
    // snap:skip(cache derived from the workload plane, resynced by the WORK-plane restore)
    busy: Vec<bool>,
    /// Whether ≥ 2 threads of the core have workloads.
    // snap:skip(cache derived from the workload plane, resynced by the WORK-plane restore)
    smt: Vec<bool>,
    /// Index of the core's first busy hardware thread (`usize::MAX` when
    /// idle) — the thread whose profile speaks for the core.
    // snap:skip(cache derived from the workload plane, resynced by the WORK-plane restore)
    lead: Vec<usize>,
}

/// Plain-data image of the [`CorePlanes`] snapshot fields. The
/// `busy`/`smt`/`lead` caches are derived from the workload plane and
/// resynced on restore.
#[derive(Debug, Clone)]
pub struct CorePlanesSnapshot {
    requested: Vec<FreqSetting>,
    mhz: Vec<f64>,
    cstates: Vec<CoreCState>,
    avx: Vec<AvxLicense>,
    avx_input: Vec<bool>,
}

impl CorePlanes {
    fn new(spec: &SkuSpec) -> Self {
        let cores = spec.cores;
        CorePlanes {
            requested: vec![FreqSetting::Turbo; cores],
            mhz: vec![spec.freq.min_mhz as f64; cores],
            cstates: vec![CoreCState::C6; cores],
            avx: vec![AvxLicense::for_generation(spec.generation); cores],
            avx_input: vec![false; cores],
            busy: vec![false; cores],
            smt: vec![false; cores],
            lead: vec![usize::MAX; cores],
        }
    }

    fn len(&self) -> usize {
        self.mhz.len()
    }

    /// Recompute one core's `busy`/`smt`/`lead` cache from the workload
    /// table (called at assignment time, never in the tick hot path).
    fn sync_core(&mut self, core: usize, threads: &[Option<WorkloadProfile>], tpc: usize) {
        let base = core * tpc;
        let mut n = 0usize;
        let mut lead = usize::MAX;
        for (t, w) in threads[base..base + tpc].iter().enumerate() {
            if w.is_some() {
                if lead == usize::MAX {
                    lead = base + t;
                }
                n += 1;
            }
        }
        self.busy[core] = n > 0;
        self.smt[core] = n >= 2;
        self.lead[core] = lead;
    }

    fn sync_from_threads(&mut self, threads: &[Option<WorkloadProfile>], tpc: usize) {
        for c in 0..self.len() {
            self.sync_core(c, threads, tpc);
        }
    }

    fn snapshot(&self) -> CorePlanesSnapshot {
        CorePlanesSnapshot {
            requested: self.requested.clone(),
            mhz: self.mhz.clone(),
            cstates: self.cstates.clone(),
            avx: self.avx.clone(),
            avx_input: self.avx_input.clone(),
        }
    }

    /// Restore the snapshot fields; the derived caches are resynced by the
    /// WORK-plane restore (they are functions of the workload table).
    fn restore(&mut self, snap: &CorePlanesSnapshot) {
        self.requested.clone_from(&snap.requested);
        self.mhz.clone_from(&snap.mhz);
        self.cstates.clone_from(&snap.cstates);
        self.avx.clone_from(&snap.avx);
        self.avx_input.clone_from(&snap.avx_input);
    }
}

/// Reused per-tick buffers, so the steady-state tick allocates nothing.
struct TickScratch {
    /// Per-core duty factor of this tick (0 for idle cores).
    duty: Vec<f64>,
    /// Per-core electrical state fed to the power model.
    elec: Vec<CoreElecState>,
    /// Profile groups for the DRAM demand model: (lead thread index,
    /// cores in group, summed duty).
    groups: Vec<(usize, usize, f64)>,
    /// The rate set being assembled this tick, swapped into place when it
    /// differs from the active one.
    next_rates: CounterRates,
}

impl TickScratch {
    fn new() -> Self {
        TickScratch {
            duty: Vec::new(),
            elec: Vec::new(),
            groups: Vec::new(),
            next_rates: CounterRates::empty(),
        }
    }
}

/// One processor package with its PCU, MSRs, RAPL, and c-state machinery.
pub struct Socket {
    // snap:skip(identity constant, rebuilt by Socket::new)
    pub id: usize,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    spec: Arc<SkuSpec>,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    power_mult: f64,
    // snap:skip(configuration constant, rebuilt by Socket::new)
    eet_enabled: bool,
    msr: MsrBank,
    pstate: PStateEngine,
    eet: EetController,
    rapl: RaplEngine,
    /// Per-core hot state, structure-of-arrays (see [`CorePlanes`]).
    cores: CorePlanes,
    /// Workload per hardware thread.
    threads: Vec<Option<WorkloadProfile>>,
    pkg_cstate: PkgCState,
    /// Granted operating point (updated at the PCU cadence).
    grant: PcuGrant,
    next_pcu: Ns,
    /// Hash of the PCU inputs at the last solve (event-driven re-solve).
    last_pcu_key: u64,
    uncore_mhz: f64,
    thermal: ThermalState,
    mbvr: Mbvr,
    transition_log: TransitionLog,
    /// Keyed noise streams: draws are pure functions of the simulation
    /// instant, never of how many times the engine stepped.
    // snap:skip(seed-derived, keyed by instant not step count — rebuilt by Socket::new)
    noise_pstate: DomainNoise,
    // snap:skip(seed-derived, keyed by instant not step count — rebuilt by Socket::new)
    noise_rapl: DomainNoise,
    /// Whether the last full tick proved every domain steady (see
    /// [`Socket::light_tick`]).
    quiet: bool,
    cached: QuietCache,
    rates: Option<CounterRates>,
    pending_ns: Ns,
    /// Planes mutated since the last (full or partial) restore — what a
    /// dirty-plane fork must copy back to return to the restored snapshot.
    // snap:skip(fork bookkeeping relative to the last restored snapshot, not simulator state)
    dirty: PlaneMask,
    /// Reused per-tick buffers.
    // snap:skip(per-tick scratch, rebuilt from socket state every tick)
    scratch: TickScratch,
}

/// Plain-data image of a [`Socket`]'s mutable state, partitioned into the
/// restore planes of [`PlaneMask`]. Identity and configuration (`id`,
/// `spec`, `power_mult`, `eet_enabled`) and the keyed noise streams are
/// re-established by the constructor; everything a tick can change is
/// captured here, including the event engine's quiescence bookkeeping and
/// the counter plane's pending span, so a restored socket continues
/// bit-identically under either engine mode.
#[derive(Debug, Clone)]
pub struct SocketSnapshot {
    msr: MsrBankSnapshot,
    pstate: PStatePlaneImage,
    rapl: RaplEngine,
    cores: CorePlanesSnapshot,
    counters: CounterPlaneImage,
    thermal: ThermalPlaneImage,
    transition_log: TransitionLog,
    work: WorkPlaneImage,
}

/// The [`PlaneMask::PSTATE`] plane: transition engine, EET, the PCU
/// grant/schedule and the uncore clock — everything the equilibrium solve
/// and its gating move together.
#[derive(Debug, Clone)]
pub struct PStatePlaneImage {
    pstate: PStateEngineSnapshot,
    eet: EetController,
    grant: PcuGrant,
    next_pcu: Ns,
    last_pcu_key: u64,
    uncore_mhz: f64,
}

/// The [`PlaneMask::COUNTER`] plane: package c-state, the active rate set
/// and the pending flush span.
#[derive(Debug, Clone)]
pub struct CounterPlaneImage {
    pkg_cstate: PkgCState,
    rates: Option<CounterRates>,
    pending_ns: Ns,
}

/// The [`PlaneMask::THERMAL`] plane: die-thermal integrator and the
/// mainboard VR state machine.
#[derive(Debug, Clone)]
pub struct ThermalPlaneImage {
    thermal: ThermalState,
    mbvr: Mbvr,
}

/// The [`PlaneMask::WORK`] plane: workload assignments and the light
/// tick's replay cache (plus the quiescence proof they invalidate).
#[derive(Debug, Clone)]
pub struct WorkPlaneImage {
    threads: Vec<Option<WorkloadProfile>>,
    quiet: bool,
    cached: QuietCache,
}

impl Socket {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        spec: SkuSpec,
        power_mult: f64,
        dram_mode: DramRaplMode,
        eet_enabled: bool,
        pcu_phase_ns: Ns,
        seed: u64,
    ) -> Self {
        let threads = spec.hw_threads();
        let cores = spec.cores;
        let base = PState::from_mhz(spec.freq.base_mhz);
        let mut msr = MsrBank::new(spec.generation, threads);
        // The firmware default EPB is balanced (paper Table II).
        for t in 0..threads {
            msr.store(
                t,
                msra::IA32_ENERGY_PERF_BIAS,
                fields::encode_epb(EpbClass::Balanced),
            );
            msr.store(t, msra::IA32_PERF_CTL, fields::encode_perf_ctl(base));
        }
        let socket_seed = Self::socket_seed(seed, id);
        Socket {
            id,
            power_mult,
            eet_enabled,
            pstate: PStateEngine::new(spec.generation, cores, base, pcu_phase_ns),
            eet: EetController::new(eet_enabled),
            rapl: RaplEngine::new(spec.generation, dram_mode)
                .with_unit_trim(spec.power.rapl_trim_gain),
            cores: CorePlanes::new(&spec),
            threads: vec![None; threads],
            pkg_cstate: PkgCState::PC6,
            grant: PcuGrant {
                core_mhz: spec.freq.min_mhz as f64,
                uncore_mhz: spec.freq.uncore_min_mhz as f64,
                power_w: 0.0,
                power_limited: false,
            },
            next_pcu: pcu_phase_ns,
            last_pcu_key: u64::MAX,
            uncore_mhz: spec.freq.uncore_min_mhz as f64,
            thermal: ThermalState::new(ThermalParams::server_max_fans()),
            mbvr: Mbvr::for_generation(spec.generation),
            msr,
            noise_pstate: DomainNoise::new(socket_seed, domain::PSTATE),
            noise_rapl: DomainNoise::new(socket_seed, domain::RAPL),
            quiet: false,
            cached: QuietCache::new(),
            rates: None,
            pending_ns: 0,
            spec: Arc::new(spec),
            transition_log: TransitionLog::new(),
            // A fresh socket is not synced with any snapshot yet.
            dirty: PlaneMask::ALL,
            scratch: TickScratch::new(),
        }
    }

    /// Per-socket noise key: golden-ratio mix so socket 0 and 1 draw
    /// independent streams from the same node seed.
    fn socket_seed(seed: u64, id: usize) -> u64 {
        seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Re-derive the keyed noise streams from a new node seed — the
    /// warm-start fork's re-seed path. Draws are keyed by instant, so the
    /// streams diverge only from the fork instant on.
    pub(crate) fn reseed(&mut self, seed: u64) {
        let socket_seed = Self::socket_seed(seed, self.id);
        self.noise_pstate = DomainNoise::new(socket_seed, domain::PSTATE);
        self.noise_rapl = DomainNoise::new(socket_seed, domain::RAPL);
    }

    pub fn spec(&self) -> &SkuSpec {
        &self.spec
    }

    /// The MSR bank (read-only view; the model reads and the `rdmsr`
    /// surface go through here).
    pub fn msr(&self) -> &MsrBank {
        &self.msr
    }

    /// Mutable MSR bank access — the *only* way to write the bank from
    /// outside the socket, so every external store marks the MSR plane.
    pub(crate) fn msr_mut(&mut self) -> &mut MsrBank {
        self.dirty |= PlaneMask::MSR;
        &mut self.msr
    }

    /// Test-only escape hatch that deliberately does NOT mark the MSR
    /// plane: used by the forgot-to-mark-dirty regression test to prove
    /// the tracking is load-bearing (an unmarked mutation makes the
    /// dirty-plane fork diverge from a full restore).
    #[cfg(test)]
    pub(crate) fn msr_mut_unmarked(&mut self) -> &mut MsrBank {
        &mut self.msr
    }

    /// Planes mutated since the last restore.
    pub fn dirty_planes(&self) -> PlaneMask {
        self.dirty
    }

    /// Conservative escape hatch for raw `&mut Socket` access: assume
    /// everything may be mutated.
    pub(crate) fn mark_all_dirty(&mut self) {
        self.dirty = PlaneMask::ALL;
    }

    /// Plane-scoped raw access: the caller declares up front which planes
    /// it will touch, and the next fork restores only those instead of the
    /// ALL that [`Node::socket_mut`](crate::Node::socket_mut) assumes.
    /// Mutating state outside `planes` through the returned reference
    /// breaks the fork contract the same way a forgotten `mark_dirty`
    /// would — declare generously when unsure.
    pub fn planes_mut(&mut self, planes: PlaneMask) -> &mut Socket {
        self.dirty |= planes;
        self
    }

    /// Store an MSR through the bank's gate checks, the per-thread
    /// equivalent of [`Node::wrmsr`](crate::Node::wrmsr) for callers that
    /// already hold a socket borrow (e.g. via [`Socket::planes_mut`]).
    /// Routes through the marking choke point, so the MSR plane is dirtied
    /// whether or not the caller declared it.
    pub fn msr_store(&mut self, thread: usize, addr: u32, value: u64) -> Result<(), MsrError> {
        self.msr_mut().write(thread, addr, value)
    }

    /// The PCU's re-evaluation cadence, from the generation's firmware
    /// policy (500 µs on every surveyed part).
    fn pcu_period_ns(&self) -> Ns {
        self.spec.generation.policy().pstate().pcu_eval_period_us as Ns * US
    }

    /// Capture this socket's mutable state as plain data.
    pub fn snapshot(&self) -> SocketSnapshot {
        SocketSnapshot {
            msr: self.msr.snapshot(),
            pstate: PStatePlaneImage {
                pstate: self.pstate.snapshot(),
                eet: self.eet.clone(),
                grant: self.grant,
                next_pcu: self.next_pcu,
                last_pcu_key: self.last_pcu_key,
                uncore_mhz: self.uncore_mhz,
            },
            rapl: self.rapl.clone(),
            cores: self.cores.snapshot(),
            counters: CounterPlaneImage {
                pkg_cstate: self.pkg_cstate,
                rates: self.rates.clone(),
                pending_ns: self.pending_ns,
            },
            thermal: ThermalPlaneImage {
                thermal: self.thermal,
                mbvr: self.mbvr.clone(),
            },
            transition_log: self.transition_log.clone(),
            work: WorkPlaneImage {
                threads: self.threads.clone(),
                quiet: self.quiet,
                cached: self.cached.clone(),
            },
        }
    }

    /// Reinstate a previously captured state. The socket must have the
    /// geometry it was snapshotted with; its identity, spec and noise
    /// streams are left untouched (they are seed/config-derived).
    pub fn restore(&mut self, snap: &SocketSnapshot) {
        self.restore_planes(snap, PlaneMask::ALL);
    }

    /// Copy back only the selected planes from `snap` and clear their
    /// dirty bits. Sound exactly when every plane *not* selected is
    /// bit-identical between the socket and `snap` — the invariant the
    /// dirty mask maintains for a scratch node cycling against one warm
    /// image (`Node::fork_from`).
    pub fn restore_planes(&mut self, snap: &SocketSnapshot, planes: PlaneMask) {
        assert_eq!(
            self.cores.len(),
            snap.cores.mhz.len(),
            "snapshot geometry mismatch"
        );
        if planes.intersects(PlaneMask::MSR) {
            self.msr.restore(&snap.msr);
        }
        if planes.intersects(PlaneMask::PSTATE) {
            self.pstate.restore(&snap.pstate.pstate);
            self.eet = snap.pstate.eet.clone();
            self.grant = snap.pstate.grant;
            self.next_pcu = snap.pstate.next_pcu;
            self.last_pcu_key = snap.pstate.last_pcu_key;
            self.uncore_mhz = snap.pstate.uncore_mhz;
        }
        if planes.intersects(PlaneMask::RAPL) {
            // Counters and limiter average are dynamic state; the chip's
            // metering trim is calibration and stays as constructed, so a
            // varied fleet chip restoring a golden snapshot keeps its own
            // trim.
            self.rapl.restore_from(&snap.rapl);
        }
        if planes.intersects(PlaneMask::CORES) {
            self.cores.restore(&snap.cores);
        }
        if planes.intersects(PlaneMask::COUNTER) {
            self.pkg_cstate = snap.counters.pkg_cstate;
            self.rates.clone_from(&snap.counters.rates);
            self.pending_ns = snap.counters.pending_ns;
        }
        if planes.intersects(PlaneMask::THERMAL) {
            self.thermal = snap.thermal.thermal;
            self.mbvr = snap.thermal.mbvr.clone();
        }
        if planes.intersects(PlaneMask::LOG) {
            self.transition_log.clone_from(&snap.transition_log);
        }
        if planes.intersects(PlaneMask::WORK) {
            self.threads.clone_from(&snap.work.threads);
            self.quiet = snap.work.quiet;
            self.cached = snap.work.cached.clone();
            let tpc = self.spec.threads_per_core;
            self.cores.sync_from_threads(&self.threads, tpc);
        }
        self.dirty = PlaneMask(self.dirty.bits() & !planes.bits());
    }

    /// Assign (or clear) a workload on a hardware thread.
    pub fn set_thread(&mut self, core: usize, thread: usize, w: Option<WorkloadProfile>) {
        let tpc = self.spec.threads_per_core;
        let idx = core * tpc + thread;
        self.threads[idx] = w;
        self.cores.sync_core(core, &self.threads, tpc);
        self.quiet = false;
        self.dirty |= PlaneMask::WORK;
    }

    /// OS request: set the frequency setting of one core.
    pub fn set_core_setting(&mut self, core: usize, setting: FreqSetting, now: Ns) {
        self.quiet = false;
        self.dirty |= PlaneMask::CORES | PlaneMask::PSTATE | PlaneMask::MSR | PlaneMask::WORK;
        self.cores.requested[core] = setting;
        let target = match setting {
            FreqSetting::Fixed(p) => p,
            FreqSetting::Turbo => PState::from_mhz(self.spec.freq.base_mhz),
        };
        self.pstate.request(core, target, now);
        for t in 0..self.spec.threads_per_core {
            self.msr.store(
                core * self.spec.threads_per_core + t,
                msra::IA32_PERF_CTL,
                fields::encode_perf_ctl(target),
            );
        }
    }

    /// A `wrmsr` to `IA32_PERF_CTL` from a tool: translate into a p-state
    /// request (per-core domain on Haswell-EP).
    pub fn perf_ctl_written(&mut self, thread: usize, value: u64, now: Ns) {
        self.quiet = false;
        self.dirty |= PlaneMask::CORES | PlaneMask::PSTATE | PlaneMask::WORK;
        let core = thread / self.spec.threads_per_core;
        let target = fields::decode_perf_ctl(value);
        self.cores.requested[core] = FreqSetting::Fixed(target);
        self.pstate.request(core, target, now);
    }

    /// EPB class currently programmed (core 0's thread 0 — the paper
    /// programs all cores alike).
    pub fn epb(&self) -> EpbClass {
        fields::decode_epb(self.msr.read(0, msra::IA32_ENERGY_PERF_BIAS).unwrap_or(0))
    }

    /// Whether turbo is enabled (inverted `IA32_MISC_ENABLE\[38\]`).
    pub fn turbo_enabled(&self) -> bool {
        let v = self.msr.read_package(msra::IA32_MISC_ENABLE).unwrap_or(0);
        v & msra::MISC_ENABLE_TURBO_DISABLE_BIT == 0
    }

    fn active_cores(&self) -> usize {
        self.cores.busy.iter().filter(|&&b| b).count()
    }

    /// The dominant profile across busy threads (first found) — used for
    /// socket-scope aggregates that have no per-core meaning (the modeled
    /// RAPL bias class).
    fn dominant_profile(&self) -> Option<&WorkloadProfile> {
        self.threads.iter().flatten().next()
    }

    /// The transition-engine-gated setting of one core: a fixed request
    /// only takes effect once the p-state engine has switched (the ~500 µs
    /// opportunity mechanism).
    fn gated_setting(&self, core: usize) -> FreqSetting {
        match self.cores.requested[core] {
            FreqSetting::Turbo => FreqSetting::Turbo,
            FreqSetting::Fixed(_) => FreqSetting::Fixed(self.pstate.current(core)),
        }
    }

    /// The fastest (gated) setting among busy cores (Turbo dominates).
    fn fastest_setting(&self) -> FreqSetting {
        let mut best: Option<FreqSetting> = None;
        for c in 0..self.spec.cores {
            if !self.cores.busy[c] {
                continue;
            }
            let s = self.gated_setting(c);
            best = Some(match (best, s) {
                (None, s) => s,
                (Some(FreqSetting::Turbo), _) | (_, FreqSetting::Turbo) => FreqSetting::Turbo,
                (Some(FreqSetting::Fixed(a)), FreqSetting::Fixed(b)) => {
                    FreqSetting::Fixed(a.max(b))
                }
            });
        }
        best.unwrap_or(FreqSetting::Fixed(PState::from_mhz(
            self.spec.freq.base_mhz,
        )))
    }

    /// Advance this socket by `dt` ending at `now` (the full model). With
    /// `track_quiescence` (the event engine), the tick additionally proves
    /// or refutes that subsequent steps may take the light path.
    pub fn tick(
        &mut self,
        now: Ns,
        dt: Ns,
        t_s: f64,
        other_socket_active: bool,
        fastest_setting_in_system: Option<FreqSetting>,
        track_quiescence: bool,
    ) -> SocketTick {
        let dt_s = dt as f64 * 1e-9;
        let spec = Arc::clone(&self.spec);
        let spec: &SkuSpec = &spec;
        let tpc = spec.threads_per_core;
        self.dirty |= TICK_PLANES;

        // 1. P-state engine (transition latencies). Events append straight
        //    into the bounded log — no per-tick intermediate Vec — and the
        //    LOG plane only dirties when something actually landed.
        let log_recorded = self.transition_log.recorded();
        self.pstate.tick(now, &self.noise_pstate);
        self.pstate.drain_events_into_log(&mut self.transition_log);
        if self.transition_log.recorded() != log_recorded {
            self.dirty |= PlaneMask::LOG;
        }

        // 2. Workload aggregation — heterogeneous per core: each core
        //    contributes its own profile's duty, activity, stalls and AVX
        //    stream; socket-scope aggregates are derived from those. The
        //    modeled-RAPL bias class (socket scope) is sampled here too so
        //    no profile needs cloning.
        let active = self.active_cores();
        let bias = self
            .dominant_profile()
            .map(|p| ModelBias {
                gain: p.snb_rapl_bias.0,
                offset_w: p.snb_rapl_bias.1,
            })
            .unwrap_or(ModelBias::NONE);
        let mut duty_sum = 0.0;
        let mut activity_sum = 0.0;
        let mut stall = 0.0f64;
        let mut all_const_duty = true;
        let smt_any = self.cores.smt.iter().any(|&s| s);
        self.scratch.duty.clear();
        for c in 0..spec.cores {
            let lead = self.cores.lead[c];
            let mut duty_c = 0.0;
            if lead != usize::MAX {
                // lint:allow(P1): lead != usize::MAX implies the thread slot is occupied
                let p = self.threads[lead].as_ref().expect("lead cache stale");
                let d = p.duty.factor_at(t_s);
                duty_c = d;
                duty_sum += d;
                activity_sum += p.activity(self.cores.smt[c]) * d;
                // Stalls drive UFS up: the hungriest core dominates.
                stall = stall.max(p.stall_fraction);
                if !matches!(p.duty, DutyCycle::Constant) {
                    all_const_duty = false;
                }
            }
            self.scratch.duty.push(duty_c);
        }
        let duty = if active > 0 {
            duty_sum / active as f64
        } else {
            0.0
        };

        // 3. AVX licenses (per core, driven by its own instruction stream).
        for c in 0..spec.cores {
            let lead = self.cores.lead[c];
            let avx_stream = if lead == usize::MAX {
                false
            } else {
                self.threads[lead].as_ref().map(|p| p.avx_heavy) == Some(true)
            };
            let on = self.cores.busy[c] && avx_stream;
            self.cores.avx_input[c] = on;
            self.cores.avx[c].observe(on, now);
        }
        let avx_level = (0..spec.cores)
            .filter(|c| self.cores.busy[*c])
            .map(|c| self.cores.avx[c].level())
            .max()
            .unwrap_or(0);

        // 4. EET (1 ms sporadic stall polling).
        let eet_input = stall * duty.min(1.0);
        self.eet.tick(now, eet_input);

        // 5. PCU equilibrium: re-solved at the 500 µs cadence (power drift)
        //    and immediately whenever an input changes — e.g. a p-state
        //    opportunity completing a transition.
        let setting = fastest_setting_in_system
            .filter(|_| active == 0)
            .unwrap_or_else(|| self.fastest_setting());
        let duty_bucket = (duty * 20.0).round() as u64;
        // Bucketed so the solver re-runs as the limiter's average migrates
        // (fine steps during bursts, none in steady state).
        let avg_bucket = (self.rapl.running_avg_pkg_w() / 2.0) as u64;
        let key = {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            avg_bucket.hash(&mut h);
            setting.hash(&mut h);
            active.hash(&mut h);
            self.epb().hash(&mut h);
            self.turbo_enabled().hash(&mut h);
            avx_level.hash(&mut h);
            duty_bucket.hash(&mut h);
            ((self.eet.sampled_stall() * 100.0) as u64).hash(&mut h);
            h.finish()
        };
        let epb = self.epb();
        let eet_limit = if self.eet_enabled {
            self.eet
                .limit_mhz(spec, epb, spec.freq.turbo_mhz(active.max(1)))
        } else {
            u32::MAX
        };
        let _ = smt_any;
        let activity = if active > 0 {
            activity_sum / active as f64
        } else {
            0.0
        };
        let inputs = PcuInputs {
            spec,
            socket_power_mult: self.power_mult,
            setting,
            epb,
            turbo_enabled: self.turbo_enabled(),
            active_cores: active,
            gated_idle_cores: (0..spec.cores)
                .filter(|c| !self.cores.busy[*c] && self.cores.cstates[*c].power_gated())
                .count(),
            activity,
            avx_level,
            stall_fraction: stall,
            eet_limit_mhz: eet_limit,
            avg_pkg_w: self.rapl.running_avg_pkg_w(),
        };
        if key != self.last_pcu_key || self.next_pcu <= now {
            self.last_pcu_key = key;
            self.next_pcu = now + self.pcu_period_ns();
            self.grant = PcuController::solve(&inputs);
            // Software-imposed uncore bounds (paper Section II-D: "it can
            // be specified via the MSR UNCORE_RATIO_LIMIT"): clamp the UFS
            // grant to the programmed window.
            if let Ok(v) = self.msr.read_package(msra::MSR_UNCORE_RATIO_LIMIT) {
                if v != 0 {
                    let (min_ratio, max_ratio) = fields::decode_uncore_ratio_limit(v);
                    let lo = (min_ratio as f64 * 100.0).max(spec.freq.uncore_min_mhz as f64);
                    let hi = (max_ratio as f64 * 100.0)
                        .min(spec.freq.uncore_max_mhz as f64)
                        .max(lo);
                    self.grant.uncore_mhz = self.grant.uncore_mhz.clamp(lo, hi);
                }
            }
        }

        // 6. Effective frequencies: the PCU grant, clamped per core by its
        //    own (transition-latency-gated) p-state for fixed settings.
        for c in 0..spec.cores {
            if !self.cores.busy[c] {
                self.cores.mhz[c] = spec.freq.min_mhz as f64;
                continue;
            }
            let own_cap = match self.cores.requested[c] {
                FreqSetting::Turbo => f64::INFINITY,
                // EPB=performance keeps turbo active at the base-frequency
                // setting (paper Section II-C) — the fixed-p-state clamp
                // must not override the PCU's turbo grant in that case.
                FreqSetting::Fixed(p)
                    if p.mhz() == spec.freq.base_mhz
                        && self.epb() == EpbClass::Performance
                        && self.turbo_enabled() =>
                {
                    f64::INFINITY
                }
                FreqSetting::Fixed(_) => self.pstate.current(c).mhz() as f64,
            };
            self.cores.mhz[c] = self.grant.core_mhz.min(own_cap);
        }

        // 7. C-states: busy cores in C0; idle cores deep-idle via the
        //    governor (long predicted idle); package state needs the whole
        //    system idle (paper Section V-A).
        fill_core_states(
            &spec.acpi,
            &self.cores.busy,
            1_000_000,
            &mut self.cores.cstates,
        );
        self.pkg_cstate = resolve_package_state(&self.cores.cstates, other_socket_active);
        let uncore_mhz = if self.pkg_cstate.uncore_halted() {
            0.0
        } else {
            self.grant.uncore_mhz
        };
        self.uncore_mhz = uncore_mhz;

        // 8. DRAM traffic: per-core demand summed across profiles, capped
        //    by the bandwidth model at the current clocks. Bandwidth-bound
        //    cores saturate the channels at ~8 cores (paper Fig. 8);
        //    compute-bound traffic scales with the number of busy cores.
        let sat = hsw_hwspec::calib::bandwidth::DRAM_SATURATION_CORES as f64;
        // Group busy cores by profile: `dram_gbs_full_socket` is the demand
        // of a fully loaded socket, so a group's demand saturates (at that
        // value) once it spans ~8 cores for bandwidth-bound profiles, and
        // scales linearly with cores otherwise.
        let threads = &self.threads;
        let groups = &mut self.scratch.groups;
        groups.clear();
        for c in 0..spec.cores {
            let lead = self.cores.lead[c];
            if lead == usize::MAX {
                continue;
            }
            // lint:allow(P1): lead != usize::MAX implies the thread slot is occupied
            let name = threads[lead].as_ref().expect("lead cache stale").name;
            let d = self.scratch.duty[c];
            let mut found = false;
            for g in groups.iter_mut() {
                // lint:allow(P1): group entries are leads already unwrapped in this loop
                if threads[g.0].as_ref().expect("lead cache stale").name == name {
                    g.1 += 1;
                    g.2 += d;
                    found = true;
                    break;
                }
            }
            if !found {
                groups.push((lead, 1, d));
            }
        }
        let mut demand = 0.0;
        for (lead, n, duty_total) in groups.iter() {
            // lint:allow(P1): group leads come from the same lead cache checked above
            let p = threads[*lead].as_ref().expect("lead cache stale");
            let avg_duty = duty_total / *n as f64;
            let scale = if p.stall_fraction > hsw_hwspec::calib::UFS_STALL_THRESHOLD {
                (*n as f64 / sat).min(1.0)
            } else {
                *n as f64 / spec.cores as f64
            };
            demand += p.dram_gbs_full_socket * scale * avg_duty;
        }
        let dram_bw = if active > 0 {
            let cap = hsw_memhier::dram_read_bandwidth_gbs(
                spec,
                active,
                if smt_any { 2 } else { 1 },
                self.grant.core_mhz / 1000.0,
                (uncore_mhz / 1000.0).max(1.2),
            );
            demand.min(cap)
        } else {
            0.0
        };

        // 9. Power.
        self.scratch.elec.clear();
        for c in 0..spec.cores {
            if self.cores.busy[c] {
                let smt = self.cores.smt[c];
                let lead = self.cores.lead[c];
                let act = self.threads[lead]
                    .as_ref()
                    .map(|p| p.activity(smt) * self.scratch.duty[c])
                    .unwrap_or(0.0)
                    * self.cores.avx[c].throughput_factor().max(0.5);
                self.scratch.elec.push(CoreElecState {
                    mhz: self.cores.mhz[c].round() as u32,
                    activity: act,
                    license_level: self.cores.avx[c].level(),
                    power_gated: false,
                });
            } else if self.cores.cstates[c].power_gated() {
                self.scratch.elec.push(CoreElecState::gated());
            } else {
                self.scratch.elec.push(CoreElecState {
                    mhz: spec.freq.min_mhz,
                    activity: 0.0,
                    license_level: 0,
                    power_gated: false,
                });
            }
        }
        let pkg = package_power_w(
            spec,
            self.power_mult,
            &self.scratch.elec,
            uncore_mhz.round() as u32,
        );
        let mut pkg_w = pkg.total_w();
        // OS housekeeping: idle cores keep waking briefly (timer ticks), and
        // a nominally halted uncore still clocks part of the time — this is
        // what keeps the paper's idle node at 261.5 W AC (Table II).
        let idle_frac = (spec.cores - active) as f64 / spec.cores as f64;
        pkg_w += hsw_hwspec::calib::IDLE_PKG_HOUSEKEEPING_W * idle_frac;
        if self.pkg_cstate.uncore_halted() {
            let floor = spec.freq.uncore_min_mhz;
            let residual = package_power_w(spec, self.power_mult, &[], floor).uncore_w;
            pkg_w += residual * hsw_hwspec::calib::IDLE_UNCORE_RESIDENCY;
        }
        let dram_w = dram_power_w(spec, dram_bw);

        // 10. MBVR power state follows the estimated package draw
        //     (paper Section II-B) and thermal state integrates
        //     (observability: the test node's maximum fans keep TDP, not
        //     PROCHOT, the binding limit).
        self.mbvr.update_estimated_power(pkg_w);
        self.thermal.advance(dt_s, pkg_w);
        debug_assert!(!self.thermal.prochot(), "max-fan node must not PROCHOT");
        let readout = (96.0 - self.thermal.t_die_c).clamp(0.0, 127.0) as u64;
        self.cached.therm_readout = readout;
        for t in 0..spec.hw_threads() {
            self.msr.store(t, msra::IA32_THERM_STATUS, readout << 16);
        }

        // 11. RAPL (modeled bias on pre-Haswell generations). The error
        //     draw is keyed to the interval's end instant.
        self.rapl
            .advance(dt_s, pkg_w, dram_w, bias, self.noise_rapl.symmetric(now, 0));

        // 12. Counter plane: refresh the rate set, flushing the pending
        //     span under the old rates first if anything changed. The next
        //     rate set is assembled in the scratch buffer and swapped in,
        //     so the steady-state tick allocates nothing.
        self.msr
            .store_package(msra::MSR_PKG_ENERGY_STATUS, self.rapl.pkg_raw() as u64);
        self.msr
            .store_package(msra::MSR_DRAM_ENERGY_STATUS, self.rapl.dram_raw() as u64);
        let fu_ghz = (uncore_mhz / 1000.0).max(0.1);
        self.scratch.next_rates.uncore_ghz = uncore_mhz / 1000.0;
        self.scratch.next_rates.threads.clear();
        for c in 0..spec.cores {
            let fc_ghz = self.cores.mhz[c] / 1000.0;
            let c0 = self.cores.cstates[c] == CoreCState::C0;
            for t in 0..tpc {
                let idx = c * tpc + t;
                let instret_per_ns = self.threads[idx].as_ref().map(|p| {
                    p.ipc(self.cores.smt[c], fc_ghz, fu_ghz)
                        * self.cores.avx[c].throughput_factor()
                        * fc_ghz
                        * duty.max(0.0)
                });
                self.scratch.next_rates.threads.push(ThreadRates {
                    c0,
                    fc_ghz,
                    instret_per_ns,
                });
                let ratio = PState((self.cores.mhz[c] / 100.0).round() as u8);
                self.msr.store(
                    idx,
                    msra::IA32_PERF_STATUS,
                    fields::encode_perf_status(ratio),
                );
            }
        }
        self.scratch.next_rates.core_cstates.clear();
        self.scratch
            .next_rates
            .core_cstates
            .extend_from_slice(&self.cores.cstates);
        self.scratch.next_rates.pkg_cstate = self.pkg_cstate;
        if self.rates.as_ref() != Some(&self.scratch.next_rates) {
            self.flush_counters();
            match &mut self.rates {
                Some(r) => std::mem::swap(r, &mut self.scratch.next_rates),
                None => self.rates = Some(self.scratch.next_rates.clone()),
            }
        }
        self.pending_ns += dt;

        let out = SocketTick {
            pkg_w,
            dram_w,
            dram_bw_gbs: dram_bw,
        };

        // 13. Quiescence: the event engine may replace subsequent steps
        //     with light ticks only when every discrete domain is provably
        //     steady *and* the PCU solve is independent of the one input
        //     that keeps moving (the limiter's running average).
        self.cached.tick = out;
        self.cached.eet_input = eet_input;
        self.cached.bias = bias;
        self.cached.avg_bucket = avg_bucket;
        self.quiet = track_quiescence
            && all_const_duty
            && self.pstate.quiescent()
            && (0..spec.cores).all(|c| self.cores.avx[c].stable_under(self.cores.avx_input[c]))
            && self.eet.sampled_stall().to_bits() == eet_input.to_bits()
            && PcuController::avg_insensitive(&inputs);

        out
    }

    /// Pre-step wake test: must the next step be a full tick even though
    /// the socket is quiet? The limiter's running average is the one input
    /// that keeps moving over a steady workload; the full tick re-solves
    /// when it crosses a 2 W hash bucket, so the step where that happens
    /// must run the full body (the fixed engine re-solves on exactly that
    /// step — the grant is unchanged by `avg_insensitive`, but the key
    /// bookkeeping must be replayed faithfully).
    pub fn light_wake(&self) -> bool {
        (self.rapl.running_avg_pkg_w() / 2.0) as u64 != self.cached.avg_bucket
    }

    /// Whether the last full tick proved this socket quiescent.
    pub fn quiescent_now(&self) -> bool {
        self.quiet
    }

    /// Quiescent step: replays only the continuous integrators (RAPL,
    /// thermal, MBVR) and the periodic controllers whose outcome is
    /// provably unchanged (EET poll, AVX relax, PCU timer), using the
    /// inputs cached by the last full tick. Floating-point operations and
    /// their order match the full tick exactly, so the state after a quiet
    /// span is bit-identical no matter which path stepped it.
    pub fn light_tick(&mut self, now: Ns, dt: Ns) -> SocketTick {
        debug_assert!(self.quiet, "light_tick on a non-quiescent socket");
        let dt_s = dt as f64 * 1e-9;
        self.dirty |= LIGHT_TICK_PLANES;
        for c in 0..self.spec.cores {
            let on = self.cores.avx_input[c];
            self.cores.avx[c].observe(on, now);
        }
        self.eet.tick(now, self.cached.eet_input);
        if self.next_pcu <= now {
            // Inputs unchanged and the grant avg-independent: the periodic
            // re-solve would reproduce the same grant, so only the schedule
            // advances (mirroring the fixed engine's bookkeeping).
            self.next_pcu = now + self.pcu_period_ns();
        }
        let out = self.cached.tick;
        self.mbvr.update_estimated_power(out.pkg_w);
        self.thermal.advance(dt_s, out.pkg_w);
        debug_assert!(!self.thermal.prochot(), "max-fan node must not PROCHOT");
        let readout = (96.0 - self.thermal.t_die_c).clamp(0.0, 127.0) as u64;
        if readout != self.cached.therm_readout {
            self.cached.therm_readout = readout;
            self.dirty |= PlaneMask::MSR;
            for t in 0..self.spec.hw_threads() {
                self.msr.store(t, msra::IA32_THERM_STATUS, readout << 16);
            }
        }
        self.rapl.advance(
            dt_s,
            out.pkg_w,
            out.dram_w,
            self.cached.bias,
            self.noise_rapl.symmetric(now, 0),
        );
        self.pending_ns += dt;
        out
    }

    /// Apply the pending counter span under the current rates and refresh
    /// the energy-status mirrors. Called on rate changes and at the end of
    /// every `Node::advance_us`, so software reads between advances always
    /// see current counters.
    pub(crate) fn flush_counters(&mut self) {
        let span = std::mem::replace(&mut self.pending_ns, 0) as f64;
        self.dirty |= PlaneMask::COUNTER;
        let Some(rates) = self.rates.take() else {
            return;
        };
        if span > 0.0 {
            self.dirty |= PlaneMask::MSR;
            let nominal_ghz = self.spec.freq.base_mhz as f64 / 1000.0;
            let tpc = self.spec.threads_per_core;
            self.msr
                .accumulate(0, msra::MSR_U_PMON_UCLK_FIXED_CTR, rates.uncore_ghz * span);
            for (idx, t) in rates.threads.iter().enumerate() {
                self.msr
                    .accumulate(idx, msra::IA32_TIME_STAMP_COUNTER, nominal_ghz * span);
                if t.c0 {
                    self.msr.accumulate(idx, msra::IA32_APERF, t.fc_ghz * span);
                    self.msr
                        .accumulate(idx, msra::IA32_MPERF, nominal_ghz * span);
                    self.msr.accumulate(
                        idx,
                        msra::IA32_FIXED_CTR1_CPU_CLK_UNHALTED,
                        t.fc_ghz * span,
                    );
                    self.msr
                        .accumulate(idx, msra::IA32_FIXED_CTR2_REF_CYCLES, nominal_ghz * span);
                    if let Some(r) = t.instret_per_ns {
                        self.msr
                            .accumulate(idx, msra::IA32_FIXED_CTR0_INST_RETIRED, r * span);
                    }
                }
            }
            for (c, cs) in rates.core_cstates.iter().enumerate() {
                if *cs == CoreCState::C3 {
                    self.msr
                        .accumulate(c * tpc, msra::MSR_CORE_C3_RESIDENCY, nominal_ghz * span);
                }
                if *cs == CoreCState::C6 {
                    self.msr
                        .accumulate(c * tpc, msra::MSR_CORE_C6_RESIDENCY, nominal_ghz * span);
                }
            }
            if rates.pkg_cstate == PkgCState::PC3 {
                self.msr
                    .accumulate(0, msra::MSR_PKG_C3_RESIDENCY, nominal_ghz * span);
            }
            if rates.pkg_cstate == PkgCState::PC6 {
                self.msr
                    .accumulate(0, msra::MSR_PKG_C6_RESIDENCY, nominal_ghz * span);
            }
            self.msr
                .store_package(msra::MSR_PKG_ENERGY_STATUS, self.rapl.pkg_raw() as u64);
            self.msr
                .store_package(msra::MSR_DRAM_ENERGY_STATUS, self.rapl.dram_raw() as u64);
        }
        self.rates = Some(rates);
    }

    // --- Ground-truth accessors (simulation-internal; tests and traces) ---

    pub fn true_core_mhz(&self, core: usize) -> f64 {
        self.cores.mhz[core]
    }

    pub fn true_uncore_mhz(&self) -> f64 {
        self.uncore_mhz
    }

    pub fn grant(&self) -> PcuGrant {
        self.grant
    }

    pub fn package_cstate(&self) -> PkgCState {
        self.pkg_cstate
    }

    pub fn core_cstate(&self, core: usize) -> CoreCState {
        self.cores.cstates[core]
    }

    pub fn any_core_active(&self) -> bool {
        self.active_cores() > 0
    }

    pub fn requested_setting(&self, core: usize) -> FreqSetting {
        self.cores.requested[core]
    }

    pub fn drain_transitions(&mut self) -> Vec<TransitionEvent> {
        self.dirty |= PlaneMask::LOG;
        self.transition_log.drain()
    }

    /// Transition events currently retained (bounded; see
    /// [`hsw_pcu::TRANSITION_LOG_CAP`]).
    pub fn transition_log_len(&self) -> usize {
        self.transition_log.len()
    }

    pub fn rapl(&self) -> &RaplEngine {
        &self.rapl
    }

    /// Die temperature in °C (ground truth; software reads the digital
    /// readout in `IA32_THERM_STATUS`).
    pub fn die_temperature_c(&self) -> f64 {
        self.thermal.t_die_c
    }

    /// The mainboard VR's current power state (paper Section II-B).
    pub fn mbvr_state(&self) -> MbvrPowerState {
        self.mbvr.state()
    }
}
