//! The platform/session layer: declarative wiring for experiments.
//!
//! Every experiment used to hand-assemble its node as
//! `Node::new(NodeConfig::paper_default().with_seed(..).with_tick_us(..))`,
//! scattering seed derivation and tick choices across sixteen modules. A
//! [`Platform`] describes the machine under test once (spec, DRAM RAPL
//! mode, EET, engine, root seed); [`SessionBuilder`] then derives concrete
//! simulation sessions from it — sub-seeds for sweep points, a named
//! [`Resolution`] class instead of magic tick numbers, and optional
//! telemetry sinks such as the survey's simulated-time ledger. A
//! [`Session`] dereferences to [`Node`], so the whole existing node surface
//! works unchanged.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use hsw_hwspec::clock::mix_seed;
use hsw_hwspec::NodeSpec;
use hsw_power::DramRaplMode;

use crate::config::NodeConfig;
use crate::engine::EngineMode;
use crate::node::Node;

/// Simulation time resolution class. The tick is the micro-step both
/// engines subdivide time into; it bounds how sharply transitions resolve,
/// so latency experiments need finer classes than power averages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// 2 µs — p-state/c-state transition latency measurements (Fig. 3/4).
    Latency,
    /// 5 µs — fine-grained counter work.
    Fine,
    /// 20 µs — the default for power and frequency experiments.
    Standard,
    /// 50 µs — multi-second steady-state sweeps (Table IV/V).
    Coarse,
    /// Explicit tick in µs.
    Custom(u64),
}

impl Resolution {
    pub fn tick_us(&self) -> u64 {
        match self {
            Resolution::Latency => 2,
            Resolution::Fine => 5,
            Resolution::Standard => 20,
            Resolution::Coarse => 50,
            Resolution::Custom(us) => (*us).max(1),
        }
    }
}

/// The machine under test plus simulation-wide policy, described once and
/// shared by every session an experiment derives from it.
#[derive(Debug, Clone)]
pub struct Platform {
    pub spec: NodeSpec,
    pub dram_rapl_mode: DramRaplMode,
    pub eet_enabled: bool,
    pub engine: EngineMode,
    /// Root seed; sessions derive sub-seeds from it (see
    /// [`SessionBuilder::derive_seed`]).
    pub seed: u64,
}

/// Which surveyed machine a run models: the selection the `survey`
/// binary's `--platform` flag makes once, before any experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlatformKind {
    /// The paper's Haswell-EP node (Table II).
    #[default]
    Haswell,
    /// The follow-up survey's Skylake-SP node (arXiv 1905.12468).
    SkylakeSp,
}

impl PlatformKind {
    pub const ALL: [PlatformKind; 2] = [PlatformKind::Haswell, PlatformKind::SkylakeSp];

    /// The CLI spelling (`--platform <name>`).
    pub fn name(&self) -> &'static str {
        match self {
            PlatformKind::Haswell => "haswell",
            PlatformKind::SkylakeSp => "skylake-sp",
        }
    }

    /// Parse a CLI spelling.
    pub fn parse(s: &str) -> Option<PlatformKind> {
        PlatformKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The platform this kind selects.
    pub fn platform(&self) -> Platform {
        match self {
            PlatformKind::Haswell => Platform::paper(),
            PlatformKind::SkylakeSp => Platform::skylake_sp(),
        }
    }
}

impl std::fmt::Display for PlatformKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Platform {
    /// The paper's test system (Table II).
    pub fn paper() -> Self {
        let cfg = NodeConfig::paper_default();
        Platform {
            spec: cfg.spec,
            dram_rapl_mode: cfg.dram_rapl_mode,
            eet_enabled: cfg.eet_enabled,
            engine: cfg.engine,
            seed: cfg.seed,
        }
    }

    /// The follow-up survey's Skylake-SP test system (1905.12468
    /// Section III): two Xeon Platinum 8170, mesh uncore, HWP p-states.
    /// Same session machinery, different [`hsw_hwspec::FirmwarePolicy`].
    pub fn skylake_sp() -> Self {
        Platform {
            spec: NodeSpec::skylake_sp_node(),
            dram_rapl_mode: DramRaplMode::Mode1,
            eet_enabled: true,
            engine: EngineMode::default(),
            seed: 0x534B_0001,
        }
    }

    pub fn with_spec(mut self, spec: NodeSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn with_dram_mode(mut self, mode: DramRaplMode) -> Self {
        self.dram_rapl_mode = mode;
        self
    }

    pub fn with_eet(mut self, enabled: bool) -> Self {
        self.eet_enabled = enabled;
        self
    }

    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Start describing one simulation session on this platform.
    pub fn session(&self) -> SessionBuilder {
        SessionBuilder {
            cfg: NodeConfig {
                spec: self.spec.clone(),
                dram_rapl_mode: self.dram_rapl_mode,
                eet_enabled: self.eet_enabled,
                tick_us: Resolution::Standard.tick_us(),
                seed: self.seed,
                engine: self.engine,
            },
            root_seed: self.seed,
            time_ledger: None,
        }
    }
}

/// Builder for one simulation session.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: NodeConfig,
    root_seed: u64,
    time_ledger: Option<Arc<AtomicU64>>,
}

impl SessionBuilder {
    /// Use an explicit seed for this session.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Derive this session's seed from the platform root seed and a salt
    /// (sweep index, repetition number, …). Order-free: point `k` of a
    /// sweep gets the same seed whether the sweep runs forward, backward,
    /// or in parallel.
    pub fn derive_seed(mut self, salt: u64) -> Self {
        self.cfg.seed = mix_seed(self.root_seed, salt);
        self
    }

    /// Select the time-resolution class.
    pub fn resolution(mut self, r: Resolution) -> Self {
        self.cfg.tick_us = r.tick_us();
        self
    }

    /// Override the platform's engine mode for this session.
    pub fn engine(mut self, engine: EngineMode) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Override EET for this session (ablations).
    pub fn eet(mut self, enabled: bool) -> Self {
        self.cfg.eet_enabled = enabled;
        self
    }

    /// Override the DRAM RAPL mode for this session.
    pub fn dram_mode(mut self, mode: DramRaplMode) -> Self {
        self.cfg.dram_rapl_mode = mode;
        self
    }

    /// Override the node spec for this session (SKU extrapolation).
    pub fn spec(mut self, spec: NodeSpec) -> Self {
        self.cfg.spec = spec;
        self
    }

    /// Attach a telemetry sink: the node's total simulated time is credited
    /// to `ledger` when the session drops (the survey's per-experiment
    /// simulated-time accounting).
    pub fn time_ledger(mut self, ledger: Arc<AtomicU64>) -> Self {
        self.time_ledger = Some(ledger);
        self
    }

    /// Materialize the session.
    pub fn build(self) -> Session {
        let mut node = Node::new(self.cfg);
        if let Some(ledger) = self.time_ledger {
            node.set_time_ledger(ledger);
        }
        Session { node }
    }
}

/// A running simulation session. Dereferences to [`Node`], so the full
/// node surface (workload assignment, MSRs, advance, metering) applies.
pub struct Session {
    node: Node,
}

impl Session {
    pub fn into_node(self) -> Node {
        self.node
    }
}

impl std::ops::Deref for Session {
    type Target = Node;

    fn deref(&self) -> &Node {
        &self.node
    }
}

impl std::ops::DerefMut for Session {
    fn deref_mut(&mut self) -> &mut Node {
        &mut self.node
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn paper_platform_matches_the_legacy_default_config() {
        let legacy = NodeConfig::paper_default();
        let session = Platform::paper().session().build();
        let cfg = session.config();
        assert_eq!(cfg.seed, legacy.seed);
        assert_eq!(cfg.tick_us, legacy.tick_us);
        assert_eq!(cfg.eet_enabled, legacy.eet_enabled);
        assert_eq!(cfg.dram_rapl_mode, legacy.dram_rapl_mode);
        assert_eq!(cfg.engine, legacy.engine);
    }

    #[test]
    fn platform_kind_round_trips_its_cli_name() {
        for kind in PlatformKind::ALL {
            assert_eq!(PlatformKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(PlatformKind::parse("broadwell"), None);
        assert_eq!(PlatformKind::default(), PlatformKind::Haswell);
    }

    #[test]
    fn skylake_platform_runs_a_session() {
        // The SKX node (2× 26-core mesh) must drive through the same
        // session machinery as the paper node.
        let platform = PlatformKind::SkylakeSp.platform();
        assert_eq!(
            platform.spec.sku.generation,
            hsw_hwspec::CpuGeneration::SkylakeSp
        );
        let mut s = platform.session().resolution(Resolution::Coarse).build();
        s.idle_all();
        s.advance_s(0.02);
        assert!(s.now_s() > 0.019);
    }

    #[test]
    fn derived_seeds_are_order_free_and_salt_sensitive() {
        let platform = Platform::paper().with_seed(7);
        let a = platform.session().derive_seed(3).build().config().seed;
        let b = platform.session().derive_seed(4).build().config().seed;
        let a2 = platform.session().derive_seed(3).build().config().seed;
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_ne!(a, 7, "derived seed must not be the root seed itself");
    }

    #[test]
    fn resolution_classes_map_to_documented_ticks() {
        assert_eq!(Resolution::Latency.tick_us(), 2);
        assert_eq!(Resolution::Fine.tick_us(), 5);
        assert_eq!(Resolution::Standard.tick_us(), 20);
        assert_eq!(Resolution::Coarse.tick_us(), 50);
        assert_eq!(Resolution::Custom(7).tick_us(), 7);
        assert_eq!(Resolution::Custom(0).tick_us(), 1, "tick floor is 1 µs");
    }

    #[test]
    fn session_derefs_to_a_working_node() {
        let mut s = Platform::paper()
            .session()
            .resolution(Resolution::Coarse)
            .build();
        s.idle_all();
        s.advance_s(0.05);
        assert!(s.now_s() > 0.049);
        assert_eq!(s.config().tick_us, 50);
    }

    #[test]
    fn time_ledger_sink_accumulates_across_sessions() {
        let ledger = Arc::new(AtomicU64::new(0));
        for salt in 0..2u64 {
            let mut s = Platform::paper()
                .session()
                .derive_seed(salt)
                .time_ledger(ledger.clone())
                .build();
            s.advance_us(1_000);
        }
        assert_eq!(ledger.load(Ordering::Relaxed), 2_000_000);
    }

    #[test]
    fn time_ledger_is_exact_under_concurrent_session_drops() {
        // Sweep workers drop their sessions from pool threads; the ledger
        // credit on drop must not lose updates under contention.
        let ledger = Arc::new(AtomicU64::new(0));
        let platform = Platform::paper();
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let ledger = ledger.clone();
                let platform = &platform;
                scope.spawn(move || {
                    for i in 0..8u64 {
                        let mut s = platform
                            .session()
                            .derive_seed(worker * 100 + i)
                            .resolution(Resolution::Coarse)
                            .time_ledger(ledger.clone())
                            .build();
                        s.advance_us(500);
                    }
                });
            }
        });
        assert_eq!(ledger.load(Ordering::Relaxed), 4 * 8 * 500_000);
    }
}
