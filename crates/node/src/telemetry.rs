//! Ground-truth telemetry recording: periodic snapshots of the node state
//! into a time-series trace, exportable as CSV — the simulator-side
//! equivalent of the paper's measurement logs (and the raw material for
//! replotting its figures).

use crate::node::Node;

/// One telemetry snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    pub t_s: f64,
    /// Per-socket package power (W).
    pub pkg_w: Vec<f64>,
    /// Per-socket DRAM power (W).
    pub dram_w: Vec<f64>,
    /// Per-socket uncore frequency (GHz; 0 when halted).
    pub uncore_ghz: Vec<f64>,
    /// Core-0 frequency per socket (GHz) — the paper samples one core per
    /// processor.
    pub core0_ghz: Vec<f64>,
    /// Per-socket package c-state name.
    pub pkg_cstate: Vec<&'static str>,
    /// Node AC power (W).
    pub ac_w: f64,
}

/// A recorded trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    pub snapshots: Vec<Snapshot>,
}

impl Trace {
    /// Record a trace: advance the node for `total_s`, snapshotting every
    /// `interval_s`. The full window is always covered: when `total_s` is
    /// not an integer multiple of `interval_s`, a final shorter step takes
    /// the trace exactly to `total_s` (the old `round()` cadence silently
    /// over- or under-ran the window by up to half an interval).
    pub fn record(node: &mut Node, total_s: f64, interval_s: f64) -> Trace {
        assert!(interval_s > 0.0, "record: interval must be positive");
        // Tolerate float ratios like 0.5/0.05 = 10.000000000000002.
        let full = ((total_s / interval_s) + 1e-9).floor().max(0.0) as usize;
        let remainder_s = total_s - full as f64 * interval_s;
        let tail = remainder_s > interval_s * 1e-6;
        let mut snapshots = Vec::with_capacity(full + tail as usize);
        for step in 0..full + tail as usize {
            let dt = if step < full { interval_s } else { remainder_s };
            node.advance_s(dt);
            let sockets = node.sockets();
            snapshots.push(Snapshot {
                t_s: node.now_s(),
                pkg_w: (0..sockets.len())
                    .map(|s| node.true_pkg_power_w(s))
                    .collect(),
                dram_w: (0..sockets.len())
                    .map(|s| node.true_dram_power_w(s))
                    .collect(),
                uncore_ghz: sockets
                    .iter()
                    .map(|s| s.true_uncore_mhz() / 1000.0)
                    .collect(),
                core0_ghz: sockets
                    .iter()
                    .map(|s| s.true_core_mhz(0) / 1000.0)
                    .collect(),
                pkg_cstate: sockets.iter().map(|s| s.package_cstate().name()).collect(),
                ac_w: node.true_ac_power_w(),
            });
        }
        Trace { snapshots }
    }

    /// Render as CSV (one row per snapshot).
    pub fn to_csv(&self) -> String {
        let sockets = self.snapshots.first().map(|s| s.pkg_w.len()).unwrap_or(0);
        let mut out = String::from("t_s");
        for s in 0..sockets {
            out.push_str(&format!(
                ",pkg{s}_w,dram{s}_w,uncore{s}_ghz,core{s}0_ghz,pc{s}"
            ));
        }
        out.push_str(",ac_w\n");
        for snap in &self.snapshots {
            out.push_str(&format!("{:.6}", snap.t_s));
            for s in 0..sockets {
                out.push_str(&format!(
                    ",{:.3},{:.3},{:.3},{:.3},{}",
                    snap.pkg_w[s],
                    snap.dram_w[s],
                    snap.uncore_ghz[s],
                    snap.core0_ghz[s],
                    snap.pkg_cstate[s]
                ));
            }
            out.push_str(&format!(",{:.3}\n", snap.ac_w));
        }
        out
    }

    /// Column statistics helper: (min, mean, max) of a per-snapshot value.
    ///
    /// A NaN in any snapshot yields `(NaN, NaN, NaN)`: `f64::min`/`f64::max`
    /// skip NaN operands, so the old fold silently dropped corrupt samples
    /// from min/max while the mean went NaN — an inconsistent triple that
    /// let bad sensor values pass range assertions.
    pub fn stats(&self, f: impl Fn(&Snapshot) -> f64) -> (f64, f64, f64) {
        if self.snapshots.is_empty() {
            return (f64::NAN, f64::NAN, f64::NAN);
        }
        let vals: Vec<f64> = self.snapshots.iter().map(f).collect();
        if vals.iter().any(|v| v.is_nan()) {
            return (f64::NAN, f64::NAN, f64::NAN);
        }
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (min, mean, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeConfig;
    use crate::engine::EngineMode;
    use crate::session::Platform;
    use hsw_exec::WorkloadProfile;
    use hsw_hwspec::freq::FreqSetting;

    #[test]
    fn trace_records_the_expected_cadence() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &WorkloadProfile::compute(), 4, 1);
        let trace = Trace::record(&mut node, 0.5, 0.05);
        assert_eq!(trace.snapshots.len(), 10);
        let dt = trace.snapshots[1].t_s - trace.snapshots[0].t_s;
        assert!((dt - 0.05).abs() < 1e-6);
    }

    #[test]
    fn trace_covers_non_divisible_windows() {
        // 0.25 s at 0.1 s intervals: two full steps plus a 0.05 s tail.
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &WorkloadProfile::compute(), 4, 1);
        let start = node.now_s();
        let trace = Trace::record(&mut node, 0.25, 0.1);
        assert_eq!(trace.snapshots.len(), 3);
        let times: Vec<f64> = trace.snapshots.iter().map(|s| s.t_s - start).collect();
        for (got, want) in times.iter().zip([0.1, 0.2, 0.25]) {
            assert!((got - want).abs() < 1e-9, "times {times:?}");
        }
        assert!(
            (node.now_s() - start - 0.25).abs() < 1e-9,
            "window not fully covered"
        );
    }

    #[test]
    fn trace_shorter_than_one_interval_still_covers_the_window() {
        let mut node = Node::new(NodeConfig::paper_default());
        let start = node.now_s();
        let trace = Trace::record(&mut node, 0.03, 0.05);
        assert_eq!(trace.snapshots.len(), 1);
        assert!((node.now_s() - start - 0.03).abs() < 1e-9);
    }

    #[test]
    fn stats_propagates_nan_instead_of_dropping_it() {
        let mut node = Node::new(NodeConfig::paper_default());
        let mut trace = Trace::record(&mut node, 0.2, 0.05);
        let (min, mean, max) = trace.stats(|s| s.ac_w);
        assert!(min.is_finite() && mean.is_finite() && max.is_finite());
        // Corrupt one sample: every statistic must go NaN, not just mean.
        trace.snapshots[1].ac_w = f64::NAN;
        let (min, mean, max) = trace.stats(|s| s.ac_w);
        assert!(min.is_nan() && mean.is_nan() && max.is_nan());
    }

    #[test]
    fn csv_has_one_row_per_snapshot_and_stable_columns() {
        let mut node = Node::new(NodeConfig::paper_default());
        node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
        let trace = Trace::record(&mut node, 0.2, 0.05);
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + trace.snapshots.len());
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols, "ragged row: {l}");
        }
        assert!(lines[0].starts_with("t_s,pkg0_w"));
    }

    #[test]
    fn trace_cadence_is_exact_under_the_event_engine() {
        // Coalesced advances must not skid snapshot instants: the event
        // engine may skip micro-step bodies inside one `advance_s`, but
        // every `Trace::record` boundary is still an exact stop.
        let mut node = Platform::paper()
            .with_engine(EngineMode::Event)
            .session()
            .seed(21)
            .build()
            .into_node();
        node.idle_all(); // idle node: maximal coalescing opportunity
        let start = node.now_s();
        let trace = Trace::record(&mut node, 0.25, 0.1);
        assert_eq!(trace.snapshots.len(), 3);
        let times: Vec<f64> = trace.snapshots.iter().map(|s| s.t_s - start).collect();
        for (got, want) in times.iter().zip([0.1, 0.2, 0.25]) {
            assert!((got - want).abs() < 1e-9, "times {times:?}");
        }
    }

    #[test]
    fn traces_agree_bit_for_bit_across_engines() {
        let run = |engine| {
            let mut node = Platform::paper()
                .with_engine(engine)
                .session()
                .seed(22)
                .build()
                .into_node();
            node.run_on_socket(0, &WorkloadProfile::busy_wait(), 1, 1);
            node.set_setting_all(FreqSetting::from_mhz(2000));
            node.advance_s(0.05);
            Trace::record(&mut node, 0.35, 0.1)
        };
        let fixed = run(EngineMode::Fixed);
        let event = run(EngineMode::Event);
        assert_eq!(fixed, event, "engine choice altered recorded telemetry");
    }

    #[test]
    fn firestarter_trace_shows_tdp_plateau() {
        let mut node = Node::new(NodeConfig::paper_default());
        let fs = WorkloadProfile::firestarter();
        for s in 0..2 {
            node.run_on_socket(s, &fs, 12, 2);
        }
        node.set_setting_all(FreqSetting::Turbo);
        node.advance_s(0.5);
        let trace = Trace::record(&mut node, 1.0, 0.1);
        let (min, mean, max) = trace.stats(|s| s.pkg_w[0]);
        assert!((mean - 120.0).abs() < 3.0, "mean {mean:.1}");
        assert!(max - min < 5.0, "plateau spread {:.1}", max - min);
    }
}
