//! FIRESTARTER kernel generator (paper Section VIII).
//!
//! The stress-test loop is structured in groups of four instructions
//! (I1–I4) that fit one 16-byte fetch window, with one group variant per
//! memory-hierarchy level (reg, L1, L2, L3, mem), executed at the published
//! mix of 27.8 % reg, 62.7 % L1, 7.1 % L2, 0.8 % L3 and 1.6 % mem. The loop
//! must exceed the µop cache but fit the L1 instruction cache so that the
//! decoders stay busy.

use hsw_hwspec::{calib, MicroArch};

use crate::isa::{Instr, MemLevel};
use crate::pipeline::{throughput, ThroughputResult};

/// A generated FIRESTARTER loop.
#[derive(Debug, Clone)]
pub struct FirestarterKernel {
    /// The instruction stream of one loop iteration.
    pub instrs: Vec<Instr>,
    /// Number of 4-instruction groups per level [reg, L1, L2, L3, mem].
    pub groups_per_level: [usize; 5],
}

/// The I1–I4 group for one memory level (paper Section VIII):
/// * I1: packed-double FMA on registers (reg, mem) or a store to the cache
///   level (L1, L2, L3),
/// * I2: FMA combined with a load (L1, L2, L3, mem) or another register FMA,
/// * I3: right shift,
/// * I4: xor (reg) or pointer-increment add (cache/mem levels).
pub fn group_for_level(level: MemLevel) -> [Instr; 4] {
    match level {
        MemLevel::Reg => [
            Instr::fma_reg(),
            Instr::fma_reg(),
            Instr::shift_right(),
            Instr::xor_reg(),
        ],
        MemLevel::L1 | MemLevel::L2 | MemLevel::L3 => [
            Instr::store_avx(level),
            Instr::fma_load(level),
            Instr::shift_right(),
            Instr::add_ptr(),
        ],
        MemLevel::Mem => [
            Instr::fma_reg(),
            Instr::fma_load(MemLevel::Mem),
            Instr::shift_right(),
            Instr::add_ptr(),
        ],
    }
}

impl FirestarterKernel {
    /// Generate a loop of `total_groups` groups at the paper's level mix,
    /// interleaved with a largest-remainder schedule so the levels are
    /// spread evenly through the loop (as the real generator does).
    pub fn generate(total_groups: usize) -> Self {
        assert!(total_groups >= 8, "loop too short to realize the mix");
        let ratios = calib::FIRESTARTER_LEVEL_RATIOS;

        // Largest-remainder apportionment of groups to levels.
        let mut counts = [0usize; 5];
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(5);
        let mut assigned = 0;
        for (i, r) in ratios.iter().enumerate() {
            let exact = r * total_groups as f64;
            counts[i] = exact.floor() as usize;
            assigned += counts[i];
            remainders.push((i, exact - exact.floor()));
        }
        remainders.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (i, _) in remainders.iter().take(total_groups - assigned) {
            counts[*i] += 1;
        }

        // Interleave: error-diffusion scheduler emits the level whose
        // accumulated deficit is largest.
        let mut emitted = [0usize; 5];
        let mut instrs = Vec::with_capacity(total_groups * 4);
        for step in 1..=total_groups {
            let mut best = 0;
            let mut best_deficit = f64::MIN;
            for (i, &c) in counts.iter().enumerate() {
                if emitted[i] >= c {
                    continue;
                }
                let deficit = c as f64 * step as f64 / total_groups as f64 - emitted[i] as f64;
                if deficit > best_deficit {
                    best_deficit = deficit;
                    best = i;
                }
            }
            emitted[best] += 1;
            instrs.extend(group_for_level(MemLevel::ALL[best]));
        }

        FirestarterKernel {
            instrs,
            groups_per_level: counts,
        }
    }

    /// The default Haswell loop size: comfortably above the 1.5 K-µop cache
    /// yet within the 32 KiB L1I (paper Section VIII: "larger than the
    /// micro-op cache but small enough for the L1 instruction cache").
    pub fn default_haswell() -> Self {
        Self::generate(1000)
    }

    /// Total loop size in bytes.
    pub fn code_bytes(&self) -> usize {
        self.instrs.iter().map(|i| i.bytes as usize).sum()
    }

    /// Total unfused µops in the loop.
    pub fn uop_count(&self) -> usize {
        self.instrs.iter().map(|i| i.uops.len()).sum()
    }

    /// Fraction of instructions that are 256-bit AVX/FMA (drives the AVX
    /// license).
    pub fn avx_fraction(&self) -> f64 {
        let avx = self.instrs.iter().filter(|i| i.avx256).count();
        avx as f64 / self.instrs.len() as f64
    }

    /// Analyze the loop's throughput on a microarchitecture.
    pub fn analyze(&self, arch: &MicroArch, smt: bool, core_uncore_ratio: f64) -> ThroughputResult {
        throughput(arch, &self.instrs, smt, core_uncore_ratio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsw_hwspec::{calib, MicroArch, SkuSpec};
    use proptest::prelude::*;

    #[test]
    fn level_mix_matches_published_ratios() {
        let k = FirestarterKernel::generate(1000);
        let expect = [278, 627, 71, 8, 16];
        assert_eq!(k.groups_per_level, expect);
        assert_eq!(k.instrs.len(), 4000);
    }

    #[test]
    fn loop_exceeds_uop_cache_but_fits_l1i() {
        let k = FirestarterKernel::default_haswell();
        let arch = MicroArch::haswell_ep();
        let sku = SkuSpec::xeon_e5_2680_v3();
        assert!(
            k.uop_count() > arch.uop_cache_uops,
            "{} µops must exceed the {}-µop cache",
            k.uop_count(),
            arch.uop_cache_uops
        );
        assert!(
            k.code_bytes() < sku.cache.l1i_kib * 1024,
            "{} B must fit L1I",
            k.code_bytes()
        );
    }

    #[test]
    fn groups_fit_16_byte_fetch_windows() {
        for level in MemLevel::ALL {
            let bytes: usize = group_for_level(level)
                .iter()
                .map(|i| i.bytes as usize)
                .sum();
            assert!(bytes <= 16, "{}: {bytes} B", level.name());
        }
    }

    #[test]
    fn achieves_published_ipc_with_and_without_ht() {
        // Paper Section VIII: "We achieve 3.1 executed instructions per
        // cycle with Hyper-Threading enabled and 2.8 without."
        let k = FirestarterKernel::default_haswell();
        let arch = MicroArch::haswell_ep();
        let ht = k.analyze(&arch, true, 1.0);
        let no_ht = k.analyze(&arch, false, 1.0);
        assert!(
            (ht.ipc_core - calib::FIRESTARTER_IPC_HT).abs() < 0.1,
            "HT ipc = {}",
            ht.ipc_core
        );
        assert!(
            (no_ht.ipc_core - calib::FIRESTARTER_IPC_NO_HT).abs() < 0.1,
            "no-HT ipc = {}",
            no_ht.ipc_core
        );
    }

    #[test]
    fn ipc_rises_when_uncore_outpaces_core() {
        // The Table IV inversion: a faster uncore (relative to the core)
        // shortens the L3/mem group stalls.
        let k = FirestarterKernel::default_haswell();
        let arch = MicroArch::haswell_ep();
        let balanced = k.analyze(&arch, true, 2.31 / 2.34);
        let uncore_heavy = k.analyze(&arch, true, 2.09 / 3.00);
        assert!(uncore_heavy.ipc_core > balanced.ipc_core);
    }

    #[test]
    fn high_avx_fraction_triggers_license() {
        let k = FirestarterKernel::default_haswell();
        assert!(k.avx_fraction() > 0.4, "avx = {}", k.avx_fraction());
    }

    #[test]
    fn interleave_spreads_rare_levels() {
        // The 0.8 % L3 groups must not cluster: the gap between consecutive
        // L3 groups should stay close to 1/0.008 = 125 groups.
        let k = FirestarterKernel::generate(1000);
        let mut last = None;
        let mut max_gap = 0usize;
        for (g, chunk) in k.instrs.chunks(4).enumerate() {
            if chunk.iter().any(|i| i.level == Some(MemLevel::L3)) {
                if let Some(l) = last {
                    max_gap = max_gap.max(g - l);
                }
                last = Some(g);
            }
        }
        assert!(max_gap <= 140, "max L3 gap {max_gap}");
    }

    proptest! {
        #[test]
        fn prop_group_counts_sum_to_total(total in 8usize..2000) {
            let k = FirestarterKernel::generate(total);
            prop_assert_eq!(k.groups_per_level.iter().sum::<usize>(), total);
            prop_assert_eq!(k.instrs.len(), total * 4);
        }

        #[test]
        fn prop_mix_converges_to_ratios(total in 200usize..2000) {
            let k = FirestarterKernel::generate(total);
            for (i, r) in calib::FIRESTARTER_LEVEL_RATIOS.iter().enumerate() {
                let got = k.groups_per_level[i] as f64 / total as f64;
                prop_assert!((got - r).abs() < 0.01,
                    "level {i}: {got} vs {r}");
            }
        }
    }
}
