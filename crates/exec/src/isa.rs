//! Instruction and µop representation with per-generation port maps.

use hsw_hwspec::MicroArch;

/// The memory-hierarchy level an instruction's memory operand lives in —
/// FIRESTARTER's group classification (paper Section VIII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemLevel {
    Reg,
    L1,
    L2,
    L3,
    Mem,
}

impl MemLevel {
    pub const ALL: [MemLevel; 5] = [
        MemLevel::Reg,
        MemLevel::L1,
        MemLevel::L2,
        MemLevel::L3,
        MemLevel::Mem,
    ];

    pub fn name(self) -> &'static str {
        match self {
            MemLevel::Reg => "reg",
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::L3 => "L3",
            MemLevel::Mem => "mem",
        }
    }
}

/// Functional role of a µop, resolved to a port set by the generation's
/// [`PortMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopRole {
    /// 256-bit FMA (or multiply on non-FMA parts).
    FpFma,
    /// 256-bit FP add.
    FpAdd,
    /// 256-bit FP multiply.
    FpMul,
    /// SIMD shift.
    SimdShift,
    /// Divider/square-root unit (single, unpipelined, port 0).
    FpDivSqrt,
    /// Scalar integer ALU (xor, add, compare).
    Alu,
    /// Load AGU + data.
    Load,
    /// Store-address generation.
    StoreAddr,
    /// Store data.
    StoreData,
}

/// One macro-instruction: its µop roles, byte length, FLOP count and the
/// memory level it touches.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    pub mnemonic: &'static str,
    pub uops: Vec<UopRole>,
    pub bytes: u8,
    /// Double-precision FLOPs performed.
    pub flops: u8,
    /// Memory level of the data operand (None for register-only work).
    pub level: Option<MemLevel>,
    /// Whether this is a 256-bit AVX/FMA instruction (drives the AVX
    /// license, paper Section II-F).
    pub avx256: bool,
    /// Port occupancy in cycles per µop (1.0 for fully pipelined
    /// instructions; ~16 for the unpipelined divider/sqrt unit).
    pub occupancy: f64,
}

impl Instr {
    /// `vfmadd231pd ymm, ymm, ymm` — register-only packed FMA (4 muls +
    /// 4 adds on doubles = 8 FLOPs).
    pub fn fma_reg() -> Instr {
        Instr {
            mnemonic: "vfmadd231pd ymm,ymm,ymm",
            uops: vec![UopRole::FpFma],
            bytes: 5,
            flops: 8,
            level: Some(MemLevel::Reg),
            avx256: true,
            occupancy: 1.0,
        }
    }

    /// `vfmadd231pd ymm, ymm, [mem]` — FMA with a memory source
    /// (micro-fused load + FMA).
    pub fn fma_load(level: MemLevel) -> Instr {
        Instr {
            mnemonic: "vfmadd231pd ymm,ymm,[mem]",
            uops: vec![UopRole::Load, UopRole::FpFma],
            bytes: 5,
            flops: 8,
            level: Some(level),
            avx256: true,
            occupancy: 1.0,
        }
    }

    /// `vmovapd [mem], ymm` — 256-bit store to the given level.
    pub fn store_avx(level: MemLevel) -> Instr {
        Instr {
            mnemonic: "vmovapd [mem],ymm",
            uops: vec![UopRole::StoreAddr, UopRole::StoreData],
            bytes: 4,
            flops: 0,
            level: Some(level),
            avx256: true,
            occupancy: 1.0,
        }
    }

    /// `vpsrlq ymm, ymm, imm` — packed right shift (FIRESTARTER's I3).
    pub fn shift_right() -> Instr {
        Instr {
            mnemonic: "vpsrlq ymm,ymm,imm",
            uops: vec![UopRole::SimdShift],
            bytes: 4,
            flops: 0,
            level: Some(MemLevel::Reg),
            avx256: false,
            occupancy: 1.0,
        }
    }

    /// `xor r64, r64` (FIRESTARTER's I4 in register groups).
    pub fn xor_reg() -> Instr {
        Instr {
            mnemonic: "xor r,r",
            uops: vec![UopRole::Alu],
            bytes: 2,
            flops: 0,
            level: Some(MemLevel::Reg),
            avx256: false,
            occupancy: 1.0,
        }
    }

    /// `add r64, imm` — pointer increment (FIRESTARTER's I4 in memory
    /// groups).
    pub fn add_ptr() -> Instr {
        Instr {
            mnemonic: "add r,imm",
            uops: vec![UopRole::Alu],
            bytes: 2,
            flops: 0,
            level: Some(MemLevel::Reg),
            avx256: false,
            occupancy: 1.0,
        }
    }

    /// `vmulpd ymm, ymm, ymm` — packed multiply.
    pub fn mul_reg() -> Instr {
        Instr {
            mnemonic: "vmulpd ymm,ymm,ymm",
            uops: vec![UopRole::FpMul],
            bytes: 5,
            flops: 4,
            level: Some(MemLevel::Reg),
            avx256: true,
            occupancy: 1.0,
        }
    }

    /// `vaddpd ymm, ymm, ymm` — packed add (the port-asymmetric case).
    pub fn add_reg() -> Instr {
        Instr {
            mnemonic: "vaddpd ymm,ymm,ymm",
            uops: vec![UopRole::FpAdd],
            bytes: 5,
            flops: 4,
            level: Some(MemLevel::Reg),
            avx256: true,
            occupancy: 1.0,
        }
    }

    /// `vsqrtpd ymm, ymm` — the unpipelined divider/sqrt unit: one µop on
    /// the FP-multiply port that occupies it for ~16 cycles (the "sqrt"
    /// micro-benchmark of paper Fig. 2 is built from these).
    pub fn sqrt_pd() -> Instr {
        Instr {
            mnemonic: "vsqrtpd ymm,ymm",
            uops: vec![UopRole::FpDivSqrt],
            bytes: 4,
            flops: 4,
            level: Some(MemLevel::Reg),
            avx256: true,
            occupancy: 16.0,
        }
    }

    /// Scalar integer work (mprime-style, no AVX license pressure).
    pub fn scalar_alu() -> Instr {
        Instr {
            mnemonic: "add r,r",
            uops: vec![UopRole::Alu],
            bytes: 2,
            flops: 0,
            level: Some(MemLevel::Reg),
            avx256: false,
            occupancy: 1.0,
        }
    }
}

/// Port assignment table of one microarchitecture, as a bitmask of ports a
/// role may issue to.
#[derive(Debug, Clone, PartialEq)]
pub struct PortMap {
    pub num_ports: usize,
    masks: [u16; 9],
}

impl PortMap {
    /// Haswell: 8 ports; FMA on 0+1, dedicated FP add only on 1, shift on
    /// 0+6, ALU on 0/1/5/6, loads on 2+3, store-address on 2/3/7, store
    /// data on 4 (paper Table I: 8 µops/cycle issue).
    pub fn haswell() -> PortMap {
        let mut masks = [0u16; 9];
        masks[UopRole::FpFma as usize] = 0b0000_0011; // p0, p1
        masks[UopRole::FpAdd as usize] = 0b0000_0010; // p1 only
        masks[UopRole::FpMul as usize] = 0b0000_0011; // p0, p1
        masks[UopRole::SimdShift as usize] = 0b0100_0001; // p0, p6
        masks[UopRole::FpDivSqrt as usize] = 0b0000_0001; // p0 only
        masks[UopRole::Alu as usize] = 0b0110_0011; // p0, p1, p5, p6
        masks[UopRole::Load as usize] = 0b0000_1100; // p2, p3
        masks[UopRole::StoreAddr as usize] = 0b1000_1100; // p2, p3, p7
        masks[UopRole::StoreData as usize] = 0b0001_0000; // p4
        PortMap {
            num_ports: 8,
            masks,
        }
    }

    /// Sandy Bridge: 6 ports; FP mul on 0, FP add on 1 (no FMA), shift on
    /// 0+5, ALU on 0/1/5, loads on 2+3 (shared with store-address), store
    /// data on 4.
    pub fn sandy_bridge() -> PortMap {
        let mut masks = [0u16; 9];
        masks[UopRole::FpFma as usize] = 0b0000_0001; // decomposes to mul port
        masks[UopRole::FpAdd as usize] = 0b0000_0010;
        masks[UopRole::FpMul as usize] = 0b0000_0001;
        masks[UopRole::SimdShift as usize] = 0b0010_0001; // p0, p5
        masks[UopRole::FpDivSqrt as usize] = 0b0000_0001; // p0 only
        masks[UopRole::Alu as usize] = 0b0010_0011; // p0, p1, p5
        masks[UopRole::Load as usize] = 0b0000_1100;
        masks[UopRole::StoreAddr as usize] = 0b0000_1100;
        masks[UopRole::StoreData as usize] = 0b0001_0000;
        PortMap {
            num_ports: 6,
            masks,
        }
    }

    pub fn for_arch(arch: &MicroArch) -> PortMap {
        if arch.has_fma {
            PortMap::haswell()
        } else {
            PortMap::sandy_bridge()
        }
    }

    /// Ports a role may use, as a bitmask.
    pub fn mask(&self, role: UopRole) -> u16 {
        self.masks[role as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_has_two_fma_ports_but_one_add_port() {
        let pm = PortMap::haswell();
        assert_eq!(pm.mask(UopRole::FpFma).count_ones(), 2);
        assert_eq!(pm.mask(UopRole::FpAdd).count_ones(), 1);
    }

    #[test]
    fn sandy_bridge_has_single_mul_and_single_add_port() {
        let pm = PortMap::sandy_bridge();
        assert_eq!(pm.mask(UopRole::FpMul).count_ones(), 1);
        assert_eq!(pm.mask(UopRole::FpAdd).count_ones(), 1);
        assert_ne!(pm.mask(UopRole::FpMul), pm.mask(UopRole::FpAdd));
    }

    #[test]
    fn haswell_store_addr_has_dedicated_agu() {
        // Port 7's simple AGU is what lets Haswell sustain 2 loads + 1 store
        // per cycle (Table I).
        let pm = PortMap::haswell();
        assert_eq!(pm.mask(UopRole::StoreAddr).count_ones(), 3);
        assert_eq!(pm.mask(UopRole::Load).count_ones(), 2);
    }

    #[test]
    fn fma_counts_eight_flops() {
        assert_eq!(Instr::fma_reg().flops, 8);
        assert_eq!(Instr::add_reg().flops, 4);
        assert_eq!(Instr::mul_reg().flops, 4);
    }

    #[test]
    fn firestarter_group_instrs_fit_16_byte_window() {
        // Paper Section VIII: groups of four instructions fit the 16-byte
        // fetch window.
        let group = [
            Instr::fma_reg(),
            Instr::fma_load(MemLevel::L1),
            Instr::shift_right(),
            Instr::xor_reg(),
        ];
        let bytes: u32 = group.iter().map(|i| i.bytes as u32).sum();
        assert!(bytes <= 16, "group is {bytes} B"); // one 16 B fetch window per cycle
    }

    #[test]
    fn stores_take_two_uops_loads_fuse() {
        assert_eq!(Instr::store_avx(MemLevel::L1).uops.len(), 2);
        assert_eq!(Instr::fma_load(MemLevel::L2).uops.len(), 2);
        assert_eq!(Instr::fma_reg().uops.len(), 1);
    }
}
