//! Reference kernels: instruction-level realizations of the workload
//! classes the paper's experiments use, analyzable through the pipeline
//! model. These ground the aggregate [`crate::workloads`] profiles — tests
//! check that the profile-level IPC/FLOPS figures are consistent with what
//! the instruction streams actually achieve on the modeled ports.

use crate::isa::{Instr, MemLevel};
use crate::pipeline::{throughput, ThroughputResult};
use hsw_hwspec::MicroArch;

/// A dgemm register-blocked microkernel: 8 FMAs per 2 loads (a 4×3 blocking
/// streaming B from L1), the shape MKL-class kernels use.
pub fn dgemm_microkernel() -> Vec<Instr> {
    let mut k = Vec::new();
    for i in 0..8 {
        if i % 4 == 0 {
            k.push(Instr::fma_load(MemLevel::L1));
        } else {
            k.push(Instr::fma_reg());
        }
    }
    k
}

/// STREAM-triad inner loop: `a[i] = b[i] + s*c[i]` over DRAM-resident
/// arrays — two loads, one FMA, one store per 32 bytes.
pub fn stream_triad() -> Vec<Instr> {
    vec![
        Instr::fma_load(MemLevel::Mem),
        Instr::store_avx(MemLevel::Mem),
        Instr::add_ptr(),
        Instr::add_ptr(),
    ]
}

/// The "sqrt" micro-benchmark of Figure 2: a chain of packed square roots —
/// throughput-bound on the unpipelined divider unit.
pub fn sqrt_loop() -> Vec<Instr> {
    vec![
        Instr::sqrt_pd(),
        Instr::xor_reg(),
        Instr::xor_reg(),
        Instr::xor_reg(),
    ]
}

/// A spin loop: scalar test/increment work, unrolled as compilers emit it
/// (the per-iteration port pressure only shows with the unroll).
pub fn busy_wait_loop() -> Vec<Instr> {
    vec![Instr::scalar_alu(); 8]
}

/// Analyze a kernel on Haswell at balanced clocks.
pub fn analyze_haswell(kernel: &[Instr], smt: bool) -> ThroughputResult {
    throughput(&MicroArch::haswell_ep(), kernel, smt, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgemm_kernel_approaches_peak_flops() {
        // 8 FMAs over 2 FMA ports → 4 cycles minimum; loads micro-fuse.
        let r = analyze_haswell(&dgemm_microkernel(), false);
        assert!(
            r.flops_per_cycle > 12.0,
            "dgemm {:.1} FLOPs/cycle of 16 peak",
            r.flops_per_cycle
        );
    }

    #[test]
    fn dgemm_profile_ipc_is_consistent_with_the_kernel() {
        // The aggregate dgemm profile must agree with the instruction stream.
        let r = analyze_haswell(&dgemm_microkernel(), false);
        let profile = crate::workloads::WorkloadProfile::dgemm();
        let claimed = profile.ipc(false, 2.5, 3.0);
        assert!(
            (r.ipc_core - claimed).abs() < 0.3,
            "kernel {:.2} vs profile {claimed:.2}",
            r.ipc_core
        );
    }

    #[test]
    fn sqrt_loop_is_divider_bound() {
        let r = analyze_haswell(&sqrt_loop(), false);
        // One 16-cycle sqrt per 4 instructions → IPC = 0.25.
        assert!(r.ipc_core < 0.3, "sqrt ipc {:.2}", r.ipc_core);
        assert!(matches!(r.bottleneck, crate::pipeline::Bottleneck::Port(_)));
    }

    #[test]
    fn stream_triad_is_memory_stall_bound() {
        let r = analyze_haswell(&stream_triad(), false);
        assert_eq!(r.bottleneck, crate::pipeline::Bottleneck::MemoryStalls);
        assert!(r.ipc_core < 0.5, "triad ipc {:.2}", r.ipc_core);
    }

    #[test]
    fn busy_wait_is_frontend_bound_and_cheap() {
        let r = analyze_haswell(&busy_wait_loop(), false);
        assert!(r.ipc_core > 3.0);
        assert_eq!(r.flops_per_cycle, 0.0);
    }

    #[test]
    fn smt_doubles_nothing_for_divider_bound_code() {
        // The divider is shared: a second sqrt thread cannot help.
        let single = analyze_haswell(&sqrt_loop(), false);
        let smt = analyze_haswell(&sqrt_loop(), true);
        assert!(smt.ipc_core < single.ipc_core * 1.2);
    }
}
